// Ablation: fault-injection resilience of the "before" vs "after" kernel.
//
// For each canonical long-running operation the exhaustive preemption-point
// sweep injects an interrupt at every boundary the operation exposes. The
// "after" kernel (preemptible operations, Sections 3.3-3.5) shows many
// boundaries, a restart bound of one per injected line and a small worst
// observed interrupt response; the "before" kernel exposes no interior
// boundaries, so the sweep degenerates to a cycle-offset injection whose
// interrupt waits out the entire operation — the paper's latency pathology
// reproduced by the fault engine instead of a timer.
//
// Flags: --csv (machine-readable), --seed=N (cycle-offset draw),
// --jobs=N (checkpoint-fork the sweeps across N workers; same output).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fault/campaign.h"
#include "src/sim/rng.h"
#include "src/sim/report.h"

namespace pmk {
namespace {

struct CaseRow {
  const char* op;
  OpFactory factory;
};

std::vector<CaseRow> CasesFor(const KernelConfig& kc) {
  return {{"retype", MakeRetypeCase(kc)},
          {"ep-delete", MakeEpDeleteCase(kc)},
          {"badged-abort", MakeBadgedAbortCase(kc)}};
}

int Main(int argc, char** argv) {
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  std::uint64_t seed = 1;
  const std::string seed_str = FlagValue(argc, argv, "--seed=");
  if (!seed_str.empty()) {
    seed = std::stoull(seed_str);
  }

  Table table({"kernel", "operation", "preempt points", "sweep runs", "all ok", "max restarts",
               "worst irq latency"});
  SweepOptions opts;
  if (!FlagValue(argc, argv, "--jobs=").empty()) {
    // The canonical op factories are fork-safe, so the sweeps can run on the
    // checkpoint engine; the table is identical for any --jobs value.
    opts.jobs = flags.jobs;
    opts.checkpoint = true;
  }
  SplitMix64 rng(seed);

  const struct {
    const char* name;
    KernelConfig kc;
  } kernels[] = {{"before", KernelConfig::Before()}, {"after", KernelConfig::After()}};

  bool all_ok = true;
  for (const auto& k : kernels) {
    for (CaseRow& c : CasesFor(k.kc)) {
      SweepResult sweep = ExhaustiveIrqSweep(c.factory, opts);
      Cycles worst = sweep.dry_run.max_irq_latency;
      for (const RunRecord& r : sweep.runs) {
        worst = std::max(worst, r.max_irq_latency);
      }
      // With no interior boundary to sweep, fall back to one seeded
      // cycle-offset injection so the before-kernel's latency is measured.
      std::uint64_t runs = sweep.runs.size();
      if (sweep.preempt_points == 0) {
        InjectionPlan plan;
        InjectionAction a;
        a.trigger = InjectionAction::Trigger::kCycleAtLeast;
        a.at = 200 + rng.Below(800);  // early enough to land inside short ops
        a.line = opts.line;
        plan.actions.push_back(a);
        const RunRecord r = RunWithPlan(c.factory, plan, opts);
        worst = std::max(worst, r.max_irq_latency);
        runs = 1;
        all_ok = all_ok && r.ok();
      }
      all_ok = all_ok && sweep.AllOk();
      table.AddRow({k.name, c.op, std::to_string(sweep.preempt_points), std::to_string(runs),
                    sweep.AllOk() ? "yes" : "NO", std::to_string(sweep.MaxRestarts()),
                    Table::Cyc(worst)});
    }
  }

  if (flags.csv) {
    table.PrintCsv();
  } else {
    std::printf("Fault-injection ablation (exhaustive preemption-point sweep, seed=%llu)\n\n",
                static_cast<unsigned long long>(seed));
    table.Print();
    std::printf("\n'before' kernel: no interior preemption points -> the injected interrupt\n"
                "waits for the whole operation. 'after': bounded restarts, small latency.\n");
  }
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) { return pmk::Main(argc, argv); }
