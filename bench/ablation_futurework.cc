// Ablations for the paper's future-work directions (Sections 6.1, 6.4, 8)
// and the open-vs-closed-system claim (Section 6.1):
//
//  1. Lock the entire kernel into the L2 cache: "would drastically reduce
//     execution time even further ... while also reducing non-determinism".
//  2. Make the atomic send-receive operation preemptible: "could be almost
//     halved by inserting a preemption point between the send and receive
//     phases".
//  3. Open vs closed systems: before the paper's changes, only "closed"
//     systems (restricted to short IPC, shallow cspaces) had acceptable
//     latency; afterwards "the latencies for the open-system scenarios are
//     no more than that of the closed system" modulo the cap-decode worst
//     case, which authority confinement prevents.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

// Manual constraints that restrict the analysis to a "closed" system: no
// object invocations from untrusted code and at most two-level cspaces
// (paper Section 6.1: "most seL4-based systems would be designed to require
// at most one or two levels of decoding").
std::vector<ManualConstraint> ClosedSystem(const KernelImage& img) {
  std::vector<ManualConstraint> cons;
  ManualConstraint no_invoke;
  no_invoke.kind = ManualConstraint::Kind::kExecutes;
  no_invoke.a = img.b.inv.entry;
  no_invoke.n = 0;
  cons.push_back(no_invoke);
  ManualConstraint shallow;
  shallow.kind = ManualConstraint::Kind::kExecutes;
  shallow.a = img.b.dec.loop;
  // Up to (1 endpoint + kMaxExtraCaps) decodes per entry, 2 levels each.
  shallow.n = 2 * (1 + KernelConfig::kMaxExtraCaps) * 2;
  cons.push_back(shallow);
  return cons;
}

// Constraints that force the analysis onto the ReplyRecv (atomic
// send-receive) dispatcher branch only.
std::vector<ManualConstraint> OnlyReplyRecv(const KernelImage& img) {
  std::vector<ManualConstraint> cons;
  for (const BlockId b : {img.b.sys.do_call, img.b.sys.do_send, img.b.sys.do_recv,
                          img.b.sys.do_yield, img.b.sys.fast_do}) {
    if (b == kNoBlock) {
      continue;
    }
    ManualConstraint mc;
    mc.kind = ManualConstraint::Kind::kExecutes;
    mc.a = b;
    mc.n = 0;
    cons.push_back(mc);
  }
  return cons;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;
  const auto show = [csv](const Table& t) {
    if (csv) {
      t.PrintCsv();
    } else {
      t.Print();
    }
  };

  // ---- 1. Whole-kernel L2 pinning ----
  if (!csv) {
    std::printf("Future work 1 (Sections 4, 6.4, 8): lock the whole kernel into the L2\n\n");
  }
  {
    const auto img = BuildKernelImage(KernelConfig::After());
    AnalysisOptions l2_off;
    AnalysisOptions l2_on;
    l2_on.l2_enabled = true;
    AnalysisOptions l2_pinned = l2_on;
    l2_pinned.l2_kernel_pinning = true;
    WcetAnalyzer a_off(*img, l2_off);
    WcetAnalyzer a_on(*img, l2_on);
    WcetAnalyzer a_pin(*img, l2_pinned);
    Table t({"Event handler", "L2 off (us)", "L2 on (us)", "L2 on, kernel pinned (us)"});
    for (const auto e : {EntryPoint::kSyscall, EntryPoint::kUndefined, EntryPoint::kPageFault,
                         EntryPoint::kInterrupt}) {
      t.AddRow({EntryPointName(e), Table::Us(clk.ToMicros(a_off.Analyze(e).wcet)),
                Table::Us(clk.ToMicros(a_on.Analyze(e).wcet)),
                Table::Us(clk.ToMicros(a_pin.Analyze(e).wcet))});
    }
    show(t);
    // Runtime check: pin the kernel into the modelled L2 and observe.
    System sys(KernelConfig::After(), EvalMachine(true));
    sys.AttachTraceSink(&bench::GlobalTrace());  // representative modelled run
    const std::size_t pinned = sys.kernel().ApplyL2KernelPinning();
    auto w = sys.BuildWorstCaseIpc();
    sys.machine().PolluteCaches();
    const Cycles t0 = sys.machine().Now();
    sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
    if (!csv) {
      std::printf("\n%zu L2 lines pinned; observed worst-case IPC with kernel-in-L2:"
                  " %llu cycles\n", pinned,
                  static_cast<unsigned long long>(sys.machine().Now() - t0));
    }
  }

  // ---- 2. Preemptible atomic send-receive ----
  if (!csv) {
    std::printf("\nFuture work 2 (Sections 6.1, 8): split the atomic send-receive\n\n");
  }
  {
    KernelConfig split = KernelConfig::After();
    split.preemptible_send_receive = true;
    const auto atomic_img = BuildKernelImage(KernelConfig::After());
    const auto split_img = BuildKernelImage(split);
    Table t({"variant", "send-receive path WCET (us)", "full syscall WCET (us)"});
    for (const auto& [name, img] :
         {std::pair<const char*, const KernelImage*>{"atomic (as shipped)", atomic_img.get()},
          {"preemption point between phases", split_img.get()}}) {
      AnalysisOptions rr_only;
      rr_only.constraints = OnlyReplyRecv(*img);
      WcetAnalyzer a_rr(*img, rr_only);
      WcetAnalyzer a_all(*img, AnalysisOptions{});
      t.AddRow({name,
                Table::Us(clk.ToMicros(a_rr.Analyze(EntryPoint::kSyscall).wcet)),
                Table::Us(clk.ToMicros(a_all.Analyze(EntryPoint::kSyscall).wcet))});
    }
    show(t);
    if (!csv) {
      std::printf("(paper: \"the execution time of this operation could be almost halved\n"
                  " by inserting a preemption point between the send and receive phases\")\n");
    }
  }

  // ---- 3. Open vs closed systems ----
  if (!csv) {
    std::printf("\nOpen vs closed systems (Section 6.1)\n\n");
  }
  {
    Table t({"kernel", "closed system (us)", "open system (us)", "open/closed"});
    for (const auto& [name, kc] :
         {std::pair<const char*, KernelConfig>{"before", KernelConfig::Before()},
          {"after", KernelConfig::After()}}) {
      const auto img = BuildKernelImage(kc);
      AnalysisOptions open;
      AnalysisOptions closed;
      closed.constraints = ClosedSystem(*img);
      WcetAnalyzer a_open(*img, open);
      WcetAnalyzer a_closed(*img, closed);
      const Cycles wo = a_open.Analyze(EntryPoint::kSyscall).wcet;
      const Cycles wc = a_closed.Analyze(EntryPoint::kSyscall).wcet;
      t.AddRow({name, Table::Us(clk.ToMicros(wc)), Table::Us(clk.ToMicros(wo)),
                Table::Ratio(static_cast<double>(wo) / static_cast<double>(wc))});
    }
    show(t);
    if (!csv) {
      std::printf("(the paper's changes shrink the open/closed gap from orders of\n"
                  " magnitude to the cap-decode factor, which the authority model can\n"
                  " eliminate by denying adversaries their own cspaces)\n");
    }
  }
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
