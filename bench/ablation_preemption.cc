// Ablation: the effect of each preemption-point family (Sections 3.3-3.6)
// on OBSERVED interrupt response time, plus the clearing-chunk-size sweep of
// Section 3.5 (the paper preempts at 1 KiB multiples because the
// non-preemptible page-directory global-mapping copy is 1 KiB anyway).
//
// Each long-running operation runs under a periodic timer interrupt; we
// report the worst observed interrupt response (assert -> handler entry).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/latency.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

std::uint32_t RootCNodeCptr(System& sys) {
  Cap c;
  c.type = ObjType::kCNode;
  c.obj = sys.root()->base;
  return sys.AddCap(c);
}

// Worst observed interrupt response while retyping a 256 KiB frame.
Cycles RetypeLatency(KernelConfig kc, std::uint32_t chunk_bytes) {
  kc.clear_chunk_bytes = chunk_bytes;
  System sys(kc, EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(19);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;
  args.dest_index = 70;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 9000);
  return res.max_irq_latency;
}

Cycles EpDeleteLatency(KernelConfig kc) {
  System sys(kc, EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  sys.QueueSenders(ep, 128, {kBadgeNone});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);
  const std::uint32_t root_cptr = RootCNodeCptr(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = ep_cptr & 0xFF;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, args, 5000);
  return res.max_irq_latency;
}

Cycles BadgedAbortLatency(KernelConfig kc) {
  System sys(kc, EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  Cap badged = sys.SlotOf(ep_cptr)->cap;
  badged.badge = 5;
  const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
  sys.QueueSenders(ep, 128, {5, 6});
  TcbObj* t = sys.AddThread(10);
  sys.kernel().DirectSetCurrent(t);
  const std::uint32_t root_cptr = RootCNodeCptr(sys);
  SyscallArgs args;
  args.label = InvLabel::kCNodeRevoke;
  args.arg0 = badged_cptr & 0xFF;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, args, 5000);
  return res.max_irq_latency;
}

Cycles AsDeleteLatency(KernelConfig kc) {
  // Shadow design only: delete an address space with 4 PTs x 48 mappings.
  System sys(kc, EvalMachine(false));
  TcbObj* t = sys.AddThread(10);
  PageDirObj* pd = sys.kernel().DirectPageDir();
  for (int p = 0; p < 4; ++p) {
    PageTableObj* pt = sys.kernel().DirectPageTable();
    Cap pt_cap;
    pt_cap.type = ObjType::kPageTable;
    pt_cap.obj = pt->base;
    CapSlot* pt_slot = sys.kernel().DirectCap(sys.root(), 100 + p, pt_cap);
    sys.kernel().DirectMapPageTable(pd, 16 + p, pt, pt_slot);
    for (int fi = 0; fi < 32; ++fi) {
      FrameObj* f = sys.kernel().DirectFrame(12);
      Cap fc;
      fc.type = ObjType::kFrame;
      fc.obj = f->base;
      CapSlot* fs = sys.kernel().DirectCap(sys.root(), 110 + p * 32 + fi, fc);
      sys.kernel().DirectMapFrame(pd, (static_cast<Addr>(16 + p) << 20) | (fi << 12), f, fs);
    }
  }
  Cap pd_cap;
  pd_cap.type = ObjType::kPageDir;
  pd_cap.obj = pd->base;
  const std::uint32_t pd_cptr = sys.AddCap(pd_cap);
  const std::uint32_t root_cptr = RootCNodeCptr(sys);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kCNodeDelete;
  args.arg0 = pd_cptr & 0xFF;
  const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, args, 5000);
  return res.max_irq_latency;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;

  if (!csv) {
    std::printf("Ablation: observed worst interrupt response during long operations,\n");
    std::printf("with each preemption-point family disabled vs enabled\n\n");
  }

  Table t({"operation", "non-preemptible (us)", "preemptible (us)", "improvement"});
  {
    KernelConfig off = KernelConfig::After();
    off.preemptible_clearing = false;
    const Cycles a = RetypeLatency(off, 1024);
    const Cycles b = RetypeLatency(KernelConfig::After(), 1024);
    t.AddRow({"retype 256 KiB frame (3.5)", Table::Us(clk.ToMicros(a)),
              Table::Us(clk.ToMicros(b)),
              Table::Ratio(static_cast<double>(a) / static_cast<double>(b)) + "x"});
  }
  {
    KernelConfig off = KernelConfig::After();
    off.preemptible_deletion = false;
    const Cycles a = EpDeleteLatency(off);
    const Cycles b = EpDeleteLatency(KernelConfig::After());
    t.AddRow({"delete endpoint, 128 waiters (3.3)", Table::Us(clk.ToMicros(a)),
              Table::Us(clk.ToMicros(b)),
              Table::Ratio(static_cast<double>(a) / static_cast<double>(b)) + "x"});
  }
  {
    KernelConfig off = KernelConfig::After();
    off.preemptible_badged_abort = false;
    off.preemptible_deletion = false;
    const Cycles a = BadgedAbortLatency(off);
    const Cycles b = BadgedAbortLatency(KernelConfig::After());
    t.AddRow({"revoke badge, 128 waiters (3.4)", Table::Us(clk.ToMicros(a)),
              Table::Us(clk.ToMicros(b)),
              Table::Ratio(static_cast<double>(a) / static_cast<double>(b)) + "x"});
  }
  {
    KernelConfig off = KernelConfig::After();
    off.preemptible_deletion = false;
    const Cycles a = AsDeleteLatency(off);
    const Cycles b = AsDeleteLatency(KernelConfig::After());
    t.AddRow({"delete address space, 128 pages (3.6)", Table::Us(clk.ToMicros(a)),
              Table::Us(clk.ToMicros(b)),
              Table::Ratio(static_cast<double>(a) / static_cast<double>(b)) + "x"});
  }
  if (csv) {
    t.PrintCsv();
  } else {
    t.Print();
  }

  if (!csv) {
    std::printf("\nClearing-chunk sweep (Section 3.5): preempting more finely than the\n");
    std::printf("non-preemptible 1 KiB global-mapping copy buys nothing.\n\n");
  }
  Table t2({"chunk", "observed worst response (us)"});
  for (const std::uint32_t chunk : {4096u, 2048u, 1024u, 512u, 256u}) {
    const Cycles lat = RetypeLatency(KernelConfig::After(), chunk);
    t2.AddRow({std::to_string(chunk) + " B", Table::Us(clk.ToMicros(lat))});
  }
  if (csv) {
    t2.PrintCsv();
  } else {
    t2.Print();
  }
  {
    // The floor set by the 1 KiB page-directory copy: retype a PD instead.
    System sys(KernelConfig::After(), EvalMachine(false));
    sys.AttachTraceSink(&bench::GlobalTrace());  // representative modelled run
    TcbObj* t3 = sys.AddThread(10);
    const std::uint32_t ut_cptr = sys.AddUntyped(17);
    sys.kernel().DirectSetCurrent(t3);
    SyscallArgs args;
    args.label = InvLabel::kUntypedRetype;
    args.obj_type = ObjType::kPageDir;
    args.dest_index = 70;
    const LongOpResult res = RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 7000);
    if (!csv) {
      std::printf(
          "\npage-directory creation (non-preemptible 1 KiB global-mapping copy):\n"
          "  worst observed response %.1f us — the latency floor the paper accepts\n",
          clk.ToMicros(res.max_irq_latency));
      std::printf("  response distribution: %s\n",
                  res.irq_hist.FormatSummary(&clk).c_str());
    }
  }
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
