// Ablation: lazy scheduling (Figure 2) vs Benno scheduling (Figure 3), with
// and without the two-level priority bitmap (Section 3.2).
//
// Three measurements:
//  1. The pathological lazy reschedule: chooseThread must dequeue N stale
//     (blocked) threads — cost grows linearly with N; Benno is flat.
//  2. The scheduler-only cost of picking from 256 priority queues: the
//     bitmap's two loads + two CLZ vs a 256-entry scan.
//  3. The computed WCET of the interrupt path under each scheduler (what the
//     paper's Table 2 "other entry points also improve" refers to).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

Cycles LazyRescheduleCost(const KernelConfig& kc, std::uint32_t stale) {
  System sys(kc, EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  if (kc.scheduler == SchedulerKind::kLazy) {
    sys.MakeStaleRunQueue(ep, stale, 20);
  } else {
    // Benno never accumulates stale entries; same thread population, blocked
    // off-queue.
    sys.QueueSenders(ep, stale, {kBadgeNone}, 20);
  }
  TcbObj* runnable = sys.AddThread(20);
  sys.kernel().DirectResume(runnable);
  TcbObj* cur = sys.AddThread(5);
  sys.kernel().DirectSetCurrent(cur);
  sys.machine().PolluteCaches();
  const Cycles t0 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  return sys.machine().Now() - t0;
}

Cycles LowPrioWakeCost(const KernelConfig& kc) {
  // Reschedule that must scan from priority 255 down to 1 (no bitmap) or
  // jump straight there (bitmap).
  System sys(kc, EvalMachine(false));
  sys.AttachTraceSink(&bench::GlobalTrace());  // representative modelled run
  TcbObj* low = sys.AddThread(1);
  sys.kernel().DirectResume(low);
  TcbObj* cur = sys.AddThread(1);
  sys.kernel().DirectSetCurrent(cur);
  sys.machine().PolluteCaches();
  const Cycles t0 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kYield, 0, SyscallArgs{});
  return sys.machine().Now() - t0;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;
  const auto show = [csv](const Table& t) {
    if (csv) {
      t.PrintCsv();
    } else {
      t.Print();
    }
  };

  KernelConfig lazy = KernelConfig::Before();
  lazy.vspace = VSpaceKind::kShadow;  // isolate the scheduler change
  lazy.preemptible_clearing = true;
  lazy.preemptible_deletion = true;
  lazy.preemptible_badged_abort = true;
  KernelConfig benno_nb = KernelConfig::After();
  benno_nb.scheduler_bitmap = false;
  const KernelConfig benno = KernelConfig::After();

  if (!csv) {
    std::printf("Ablation 1: reschedule cost vs stale (blocked-but-queued) threads\n");
    std::printf("(the lazy-scheduling pathology of Section 3.1)\n\n");
  }
  Table t1({"stale threads", "lazy (cycles)", "Benno (cycles)", "lazy/Benno"});
  for (const std::uint32_t n : {0u, 8u, 32u, 64u, 100u}) {
    const Cycles cl = LazyRescheduleCost(lazy, n);
    const Cycles cb = LazyRescheduleCost(benno, n);
    t1.AddRow({std::to_string(n), Table::Cyc(cl), Table::Cyc(cb),
               Table::Ratio(static_cast<double>(cl) / static_cast<double>(cb))});
  }
  show(t1);

  if (!csv) {
    std::printf("\nAblation 2: picking a low-priority thread out of 256 queues\n\n");
  }
  Table t2({"scheduler", "reschedule-to-prio-1 (cycles)"});
  t2.AddRow({"Benno + bitmap (2 loads + 2 CLZ)", Table::Cyc(LowPrioWakeCost(benno))});
  t2.AddRow({"Benno, linear scan", Table::Cyc(LowPrioWakeCost(benno_nb))});
  show(t2);

  if (!csv) {
    std::printf("\nAblation 3: computed interrupt-path WCET per scheduler\n\n");
  }
  Table t3({"scheduler", "interrupt WCET (cycles)", "us"});
  for (const auto& [name, kc] :
       {std::pair<const char*, KernelConfig>{"lazy (Figure 2)", lazy},
        {"Benno, no bitmap", benno_nb},
        {"Benno + bitmap (Figure 3 + CLZ)", benno}}) {
    const auto img = BuildKernelImage(kc);
    WcetAnalyzer an(*img, AnalysisOptions{});
    const Cycles w = an.Analyze(EntryPoint::kInterrupt).wcet;
    t3.AddRow({name, Table::Cyc(w), Table::Us(clk.ToMicros(w))});
  }
  show(t3);

  if (!csv) {
    std::printf("\npaper shape: lazy's worst case grows with the stale population\n");
    std::printf("(\"theoretically only limited by the amount of memory\"); Benno is flat\n");
    std::printf("with the same best-case IPC performance.\n");
  }
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
