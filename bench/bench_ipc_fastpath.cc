// IPC microbenchmarks (Section 6.1): the fastpath vs the slowpath, and the
// claim that the paper's preemption points leave the fastpath untouched.
// Uses google-benchmark for host-side throughput; the modelled-cycle numbers
// (what the paper reports: ~200-250 cycles on the ARM1136) are exported as
// counters.

#include <benchmark/benchmark.h>

#include "src/sim/workload.h"

namespace pmk {
namespace {

struct PingPong {
  explicit PingPong(const KernelConfig& kc) : sys(kc, EvalMachine(false)) {
    const std::uint32_t c = sys.AddEndpoint(&ep);
    ep_cptr = c;
    server = sys.AddThread(60);
    client = sys.AddThread(10);
    sys.kernel().DirectBlockOnRecv(server, ep);
    sys.kernel().DirectSetCurrent(client);
    // Warm the caches with one round trip.
    SyscallArgs call;
    call.msg_len = 2;
    sys.kernel().Syscall(SysOp::kCall, ep_cptr, call);
    sys.kernel().Syscall(SysOp::kReplyRecv, ep_cptr, SyscallArgs{});
  }

  // One warm Call + ReplyRecv round trip; returns modelled cycles for the
  // Call half.
  Cycles RoundTrip(std::uint32_t msg_len) {
    SyscallArgs call;
    call.msg_len = msg_len;
    const Cycles t0 = sys.machine().Now();
    sys.kernel().Syscall(SysOp::kCall, ep_cptr, call);
    const Cycles call_cost = sys.machine().Now() - t0;
    sys.kernel().Syscall(SysOp::kReplyRecv, ep_cptr, SyscallArgs{});
    return call_cost;
  }

  System sys;
  EndpointObj* ep = nullptr;
  std::uint32_t ep_cptr = 0;
  TcbObj* server = nullptr;
  TcbObj* client = nullptr;
};

void BM_FastpathCall(benchmark::State& state) {
  PingPong pp(KernelConfig::After());
  Cycles cycles = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    cycles += pp.RoundTrip(2);  // fastpath-eligible
    n++;
  }
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
  state.counters["fastpath_hits"] =
      benchmark::Counter(static_cast<double>(pp.sys.kernel().fastpath_hits()));
}
BENCHMARK(BM_FastpathCall);

void BM_SlowpathCall(benchmark::State& state) {
  PingPong pp(KernelConfig::After());
  Cycles cycles = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    cycles += pp.RoundTrip(8);  // too long for the fastpath
    n++;
  }
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
}
BENCHMARK(BM_SlowpathCall);

void BM_FastpathDisabled(benchmark::State& state) {
  KernelConfig kc = KernelConfig::After();
  kc.ipc_fastpath = false;
  PingPong pp(kc);
  Cycles cycles = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    cycles += pp.RoundTrip(2);
    n++;
  }
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
}
BENCHMARK(BM_FastpathDisabled);

void BM_FastpathUnaffectedByPreemptionPoints(benchmark::State& state) {
  // Section 6.1: "The fastpath performance is not affected by our preemption
  // points" — compare fastpath cycles in the before- vs after-kernel.
  KernelConfig before = KernelConfig::Before();
  before.scheduler = SchedulerKind::kBenno;  // same IPC path shape
  before.scheduler_bitmap = true;
  before.vspace = VSpaceKind::kShadow;
  PingPong pre(before);
  PingPong post(KernelConfig::After());
  Cycles pre_c = 0;
  Cycles post_c = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    pre_c += pre.RoundTrip(2);
    post_c += post.RoundTrip(2);
    n++;
  }
  state.counters["before_cycles"] =
      benchmark::Counter(static_cast<double>(pre_c) / static_cast<double>(n));
  state.counters["after_cycles"] =
      benchmark::Counter(static_cast<double>(post_c) / static_cast<double>(n));
}
BENCHMARK(BM_FastpathUnaffectedByPreemptionPoints);

void BM_DeepDecodeSend(benchmark::State& state) {
  const std::uint32_t levels = static_cast<std::uint32_t>(state.range(0));
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(60);
  TcbObj* send = sys.AddThread(10);
  Cap target;
  target.type = ObjType::kEndpoint;
  target.obj = ep->base;
  const std::uint32_t cptr = sys.BuildDeepCapSpace(send, target, levels);
  Cycles cycles = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    sys.kernel().DirectBlockOnRecv(recv, ep);
    sys.kernel().DirectSetCurrent(send);
    const Cycles t0 = sys.machine().Now();
    SyscallArgs args;
    sys.kernel().Syscall(SysOp::kSend, cptr, args);
    cycles += sys.machine().Now() - t0;
    n++;
    recv->state = ThreadState::kRunning;
  }
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
}
BENCHMARK(BM_DeepDecodeSend)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace pmk

BENCHMARK_MAIN();
