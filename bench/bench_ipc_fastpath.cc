// IPC microbenchmarks (Section 6.1): the fastpath vs the slowpath, and the
// claim that the paper's preemption points leave the fastpath untouched.
// Uses google-benchmark for host-side throughput; the modelled-cycle numbers
// (what the paper reports: ~200-250 cycles on the ARM1136) are exported as
// counters.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/pmu.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

struct PingPong {
  explicit PingPong(const KernelConfig& kc) : sys(kc, EvalMachine(false)) {
    const std::uint32_t c = sys.AddEndpoint(&ep);
    ep_cptr = c;
    server = sys.AddThread(60);
    client = sys.AddThread(10);
    sys.kernel().DirectBlockOnRecv(server, ep);
    sys.kernel().DirectSetCurrent(client);
    // Warm the caches with one round trip.
    SyscallArgs call;
    call.msg_len = 2;
    sys.kernel().Syscall(SysOp::kCall, ep_cptr, call);
    sys.kernel().Syscall(SysOp::kReplyRecv, ep_cptr, SyscallArgs{});
  }

  // One warm Call + ReplyRecv round trip; returns modelled cycles for the
  // Call half.
  Cycles RoundTrip(std::uint32_t msg_len) {
    SyscallArgs call;
    call.msg_len = msg_len;
    const Cycles t0 = sys.machine().Now();
    sys.kernel().Syscall(SysOp::kCall, ep_cptr, call);
    const Cycles call_cost = sys.machine().Now() - t0;
    sys.kernel().Syscall(SysOp::kReplyRecv, ep_cptr, SyscallArgs{});
    return call_cost;
  }

  System sys;
  EndpointObj* ep = nullptr;
  std::uint32_t ep_cptr = 0;
  TcbObj* server = nullptr;
  TcbObj* client = nullptr;
};

void BM_FastpathCall(benchmark::State& state) {
  PingPong pp(KernelConfig::After());
  Cycles cycles = 0;
  std::uint64_t n = 0;
  const PmuSnapshot pmu0 = ReadPmu(pp.sys.machine());
  for (auto _ : state) {
    cycles += pp.RoundTrip(2);  // fastpath-eligible
    n++;
  }
  const PmuSnapshot pmu = ReadPmu(pp.sys.machine()) - pmu0;
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
  state.counters["fastpath_hits"] =
      benchmark::Counter(static_cast<double>(pp.sys.kernel().fastpath_hits()));
  const double dn = static_cast<double>(n);
  state.counters["instr_per_rt"] = benchmark::Counter(static_cast<double>(pmu.instructions) / dn);
  state.counters["l1i_miss_per_rt"] =
      benchmark::Counter(static_cast<double>(pmu.l1i_misses) / dn);
  state.counters["l1d_miss_per_rt"] =
      benchmark::Counter(static_cast<double>(pmu.l1d_misses) / dn);
  state.counters["stall_per_rt"] =
      benchmark::Counter(static_cast<double>(pmu.mem_stall_cycles) / dn);
}
BENCHMARK(BM_FastpathCall);

void BM_SlowpathCall(benchmark::State& state) {
  PingPong pp(KernelConfig::After());
  Cycles cycles = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    cycles += pp.RoundTrip(8);  // too long for the fastpath
    n++;
  }
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
}
BENCHMARK(BM_SlowpathCall);

void BM_FastpathDisabled(benchmark::State& state) {
  KernelConfig kc = KernelConfig::After();
  kc.ipc_fastpath = false;
  PingPong pp(kc);
  Cycles cycles = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    cycles += pp.RoundTrip(2);
    n++;
  }
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
}
BENCHMARK(BM_FastpathDisabled);

void BM_FastpathUnaffectedByPreemptionPoints(benchmark::State& state) {
  // Section 6.1: "The fastpath performance is not affected by our preemption
  // points" — compare fastpath cycles in the before- vs after-kernel.
  KernelConfig before = KernelConfig::Before();
  before.scheduler = SchedulerKind::kBenno;  // same IPC path shape
  before.scheduler_bitmap = true;
  before.vspace = VSpaceKind::kShadow;
  PingPong pre(before);
  PingPong post(KernelConfig::After());
  Cycles pre_c = 0;
  Cycles post_c = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    pre_c += pre.RoundTrip(2);
    post_c += post.RoundTrip(2);
    n++;
  }
  state.counters["before_cycles"] =
      benchmark::Counter(static_cast<double>(pre_c) / static_cast<double>(n));
  state.counters["after_cycles"] =
      benchmark::Counter(static_cast<double>(post_c) / static_cast<double>(n));
}
BENCHMARK(BM_FastpathUnaffectedByPreemptionPoints);

void BM_DeepDecodeSend(benchmark::State& state) {
  const std::uint32_t levels = static_cast<std::uint32_t>(state.range(0));
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  sys.AddEndpoint(&ep);
  TcbObj* recv = sys.AddThread(60);
  TcbObj* send = sys.AddThread(10);
  Cap target;
  target.type = ObjType::kEndpoint;
  target.obj = ep->base;
  const std::uint32_t cptr = sys.BuildDeepCapSpace(send, target, levels);
  Cycles cycles = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    sys.kernel().DirectBlockOnRecv(recv, ep);
    sys.kernel().DirectSetCurrent(send);
    const Cycles t0 = sys.machine().Now();
    SyscallArgs args;
    sys.kernel().Syscall(SysOp::kSend, cptr, args);
    cycles += sys.machine().Now() - t0;
    n++;
    recv->state = ThreadState::kRunning;
  }
  state.counters["modelled_cycles"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(n));
}
BENCHMARK(BM_DeepDecodeSend)->Arg(1)->Arg(8)->Arg(32);

// After the google-benchmark runs: one instrumented fastpath round trip with
// the PMU read around it and (optionally) a Chrome trace of the kernel path.
// The trace sink charges no modelled cycles, so the modelled_cycles counters
// above are identical whether or not tracing is requested.
void ReportObservability(bool csv, const std::string& trace_path) {
  PingPong pp(KernelConfig::After());
  ChromeTraceWriter writer(ClockSpec{});
  if (!trace_path.empty()) {
    pp.sys.AttachTraceSink(&writer);
  }
  const PmuSnapshot pmu0 = ReadPmu(pp.sys.machine());
  const Cycles call_cycles = pp.RoundTrip(2);
  const PmuSnapshot d = ReadPmu(pp.sys.machine()) - pmu0;

  Table t({"metric", "value"});
  t.AddRow({"fastpath_call_cycles", Table::Cyc(call_cycles)});
  t.AddRow({"roundtrip_cycles", Table::Cyc(d.cycles)});
  t.AddRow({"instructions", Table::Cyc(d.instructions)});
  t.AddRow({"l1i_misses", Table::Cyc(d.l1i_misses)});
  t.AddRow({"l1d_misses", Table::Cyc(d.l1d_misses)});
  t.AddRow({"branches", Table::Cyc(d.branches)});
  t.AddRow({"mem_stall_cycles", Table::Cyc(d.mem_stall_cycles)});
  if (csv) {
    t.PrintCsv();
  } else {
    std::printf("\nPMU, one warm fastpath round trip:\n");
    t.Print();
  }
  if (!trace_path.empty()) {
    if (writer.WriteFile(trace_path)) {
      std::printf("wrote %s (%zu events)\n", trace_path.c_str(), writer.events().size());
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
    }
  }
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  const pmk::bench::CommonFlags flags = pmk::bench::ParseCommonFlags(argc, argv);
  // Strip our flags before handing argv to google-benchmark.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && pmk::bench::IsCommonFlag(argv[i])) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pmk::ReportObservability(flags.csv, flags.trace_json);
  pmk::bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
