// bench_sim_hotpath — single-thread hot-path benchmark with self-check.
//
// Runs campaign-shaped workloads three times: through the retained reference
// path (the seed implementation's cost profile: division-based cache
// indexing, out-of-line per-access calls, tick-every-advance timer, generic
// per-execution span arithmetic), through the record-walking interpreter
// (SoA shift/mask cache, precomputed block spans, cached timer deadline,
// compiled backend forced off), and through the compiled threaded-code
// backend (the default: per-block charge streams with constant-folded cache
// geometry, computed-goto dispatch where available). All three passes must
// produce bit-identical modelled results — the benchmark digests every
// observable output and FAILS (nonzero exit) on any mismatch. The speedup
// numbers are informational; only the self-check gates.
//
//   $ bench_sim_hotpath [--quick] [--json=BENCH_hotpath.json] [--csv]
//                       [--obs-json=BENCH_obs.json]
//
// Writes BENCH_hotpath.json (ns per modelled cycle, runs/sec, before/after
// seconds, speedup, self-check verdict) unless --json= overrides the path.
//
// A second phase measures the telemetry layer itself: the same workloads run
// with the obs metrics registry disabled vs enabled (both on the optimised
// hot path, interleaved the same way), their digests must stay bit-identical
// — metrics are observers, never inputs — and the off-vs-on overhead is
// written to BENCH_obs.json. The repo's acceptance bar is <3% overhead on
// the best repetition of the hot-path workload.
//
// Timing convention: the three modes' repetitions are interleaved
// (ref, interp, compiled, ref, interp, compiled, ...) so ambient host load
// disturbs all paths alike, each repetition is timed individually, and the
// reported speedups are ratios of best (minimum) repetition times. All paths
// are deterministic and identical across repetitions, so the minimum is the
// run least disturbed by the host scheduler — total seconds are also
// reported. "speedup" is compiled vs reference (the acceptance gate);
// "interp speedup" is the interpreter vs reference for attribution.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/digest.h"
#include "src/fault/campaign.h"
#include "src/fault/scenario.h"
#include "src/hw/hotpath.h"
#include "src/kir/compiled.h"
#include "src/obs/metrics.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"

namespace pmk {
namespace {

// Digest helpers over the shared FNV-1a implementation (src/base/digest.h),
// keeping this file's historical (seed, data, len) argument order.
std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  return pmk::Fnv1a64(data, n, h);
}

using pmk::FnvU64;

constexpr std::uint64_t kFnvBasis = pmk::kFnv64Offset;

// One workload measured in one mode: wall-clock seconds, total modelled
// cycles simulated (0 where the workload has no single cycle counter) and a
// digest of every modelled observable.
struct Measurement {
  double seconds = 0;           // sum over repetitions
  double best_rep_seconds = 0;  // minimum single repetition
  std::uint64_t modelled_cycles = 0;
  std::uint64_t digest = kFnvBasis;

  void RecordRep(double dt) {
    seconds += dt;
    best_rep_seconds = best_rep_seconds == 0 ? dt : std::min(best_rep_seconds, dt);
  }
};

struct WorkloadResult {
  std::string name;
  std::uint32_t runs = 0;
  Measurement reference;  // seed cost profile
  Measurement interp;     // record-walking interpreter (compiled backend off)
  Measurement compiled;   // threaded-code backend (the default)

  bool identical() const {
    return reference.digest == interp.digest && reference.digest == compiled.digest;
  }
  // Ratios of best (least-disturbed) repetition times; see header comment.
  double Speedup() const {
    return compiled.best_rep_seconds > 0
               ? reference.best_rep_seconds / compiled.best_rep_seconds
               : 0;
  }
  double InterpSpeedup() const {
    return interp.best_rep_seconds > 0
               ? reference.best_rep_seconds / interp.best_rep_seconds
               : 0;
  }
  // ns of host time per modelled cycle on the compiled path.
  double NsPerCycle() const {
    return compiled.modelled_cycles > 0
               ? compiled.seconds * 1e9 / static_cast<double>(compiled.modelled_cycles)
               : 0;
  }
  double RunsPerSec() const {
    return compiled.seconds > 0 ? runs / compiled.seconds : 0;
  }
};

// --- Workload 1: runner-shaped timer-preempt loop -------------------------
// An attacker retypes large frames under a periodic timer while a
// high-priority thread services every firing; preemptions, restarts and
// interrupt latencies all feed the digest. This is the single-system shape
// every campaign run has, so its ns/modelled-cycle is the engine's unit cost.

std::uint64_t TimerPreemptOnce(std::uint64_t digest, std::uint64_t* cycles) {
  System sys(KernelConfig::After(), EvalMachine(true));
  EndpointObj* timer_ep = nullptr;
  const std::uint32_t timer_cptr = sys.AddEndpoint(&timer_ep);
  TcbObj* rt_task = sys.AddThread(250);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, timer_ep);
  sys.kernel().DirectBlockOnRecv(rt_task, timer_ep);
  const std::uint32_t ut_cptr = sys.AddUntyped(23);
  TcbObj* attacker = sys.AddThread(20);
  sys.kernel().DirectSetCurrent(attacker);

  sys.machine().timer().set_period(20'000);
  sys.machine().timer().Restart(sys.machine().Now());

  std::uint32_t dest = 40;
  std::uint32_t preemptions = 0;
  // Enough steps that modelled execution, not system construction, dominates
  // — the regime a long campaign is in.
  for (int step = 0; step < 1000; ++step) {
    if (sys.machine().irq().AnyPending() && sys.kernel().current() != rt_task) {
      sys.kernel().HandleIrqEntry();
    }
    if (sys.kernel().current() == rt_task) {
      sys.machine().RawCycles(200);
      sys.kernel().Syscall(SysOp::kRecv, timer_cptr, SyscallArgs{});
      sys.machine().irq().Unmask(InterruptController::kTimerLine);
      if (sys.kernel().current() == sys.kernel().idle()) {
        sys.kernel().DirectSetCurrent(attacker);
      }
      continue;
    }
    SyscallArgs args;
    args.label = InvLabel::kUntypedRetype;
    args.obj_type = ObjType::kFrame;
    args.obj_bits = 16;
    args.dest_index = dest;
    const KernelExit e = sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
    if (e == KernelExit::kPreempted) {
      preemptions++;
    } else if (attacker->last_error == KError::kOk) {
      dest++;
    }
    if (sys.kernel().current() == sys.kernel().idle()) {
      sys.kernel().DirectSetCurrent(attacker);
    }
    sys.machine().RawCycles(500);
  }
  sys.machine().timer().set_period(0);

  *cycles += sys.machine().Now();
  digest = FnvU64(digest, sys.machine().Now());
  digest = FnvU64(digest, preemptions);
  const HwCounters& hc = sys.machine().counters();
  digest = FnvU64(digest, hc.instructions);
  digest = FnvU64(digest, hc.l1i_accesses);
  digest = FnvU64(digest, hc.l1i_misses);
  digest = FnvU64(digest, hc.l1d_accesses);
  digest = FnvU64(digest, hc.l1d_misses);
  digest = FnvU64(digest, hc.l2_accesses);
  digest = FnvU64(digest, hc.l2_misses);
  digest = FnvU64(digest, hc.branches);
  digest = FnvU64(digest, hc.branch_mispredicts);
  digest = FnvU64(digest, hc.mem_stall_cycles);
  for (const Cycles lat : sys.kernel().irq_latencies()) {
    digest = FnvU64(digest, lat);
  }
  return digest;
}

void RepTimerPreempt(Measurement& m) {
  m.digest = TimerPreemptOnce(m.digest, &m.modelled_cycles);
}

// --- Workload 2: exhaustive IRQ sweep -------------------------------------
// The fault subsystem's tentpole: a dry run plus one injected run per
// preemption boundary of the canonical retype operation.

void RepIrqSweep(Measurement& m) {
  const SweepResult r = ExhaustiveIrqSweep(MakeRetypeCase(), SweepOptions{});
  m.digest = FnvU64(m.digest, r.preempt_points);
  m.digest = FnvU64(m.digest, r.dry_run.max_irq_latency);
  for (const RunRecord& run : r.runs) {
    m.digest = FnvU64(m.digest, run.ok() ? 1 : 0);
    m.digest = FnvU64(m.digest, run.restarts);
    m.digest = FnvU64(m.digest, run.preempt_points);
    m.digest = FnvU64(m.digest, run.max_irq_latency);
    m.digest = Fnv1a(m.digest, run.plan.data(), run.plan.size());
  }
}

// --- Workload 3: seeded mixed campaign ------------------------------------
// All five campaign modes at seed 42; the digest is the byte-exact CSV, the
// repository's canonical determinism artefact.

void RepCampaign(Measurement& m) {
  CampaignConfig cc;
  cc.seed = 42;
  cc.random_runs = 8;
  cc.storm_runs = 2;
  cc.hostile_runs = 32;
  cc.spurious_runs = 8;
  std::ostringstream csv;
  RunCampaign(cc).WriteCsv(csv);
  const std::string s = csv.str();
  m.digest = Fnv1a(m.digest, s.data(), s.size());
}

// Runs |reps| reference/interpreter/compiled repetition triples, interleaved
// so ambient host load disturbs all paths alike, and times each repetition
// individually. The digest chains per mode across repetitions, so mode
// switching between repetitions cannot mask a divergence.
WorkloadResult RunWorkload(const std::string& name, std::uint32_t reps,
                           void (*rep)(Measurement&)) {
  WorkloadResult r;
  r.name = name;
  r.runs = reps;
  for (std::uint32_t i = 0; i < reps; ++i) {
    hotpath::SetReferenceMode(true);
    auto t0 = std::chrono::steady_clock::now();
    rep(r.reference);
    r.reference.RecordRep(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    hotpath::SetReferenceMode(false);
    hotpath::SetCompiledMode(false);
    t0 = std::chrono::steady_clock::now();
    rep(r.interp);
    r.interp.RecordRep(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    hotpath::SetCompiledMode(true);
    t0 = std::chrono::steady_clock::now();
    rep(r.compiled);
    r.compiled.RecordRep(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  std::printf(
      "  %-24s ref %.3fs  interp %.3fs  compiled %.3fs  speedup %.2fx "
      "(interp %.2fx)  %s\n",
      name.c_str(), r.reference.seconds, r.interp.seconds, r.compiled.seconds,
      r.Speedup(), r.InterpSpeedup(),
      r.identical() ? "[outputs identical]" : "[OUTPUT MISMATCH]");
  return r;
}

// --- Telemetry overhead phase (BENCH_obs.json) ----------------------------
// The same workloads, both arms on the default (compiled) hot path, one with
// the obs metrics registry disabled and one with it enabled. Digests must
// match: telemetry is an observer of results already collected, never an
// input.

struct ObsResult {
  std::string name;
  std::uint32_t runs = 0;
  Measurement off;  // telemetry disabled
  Measurement on;   // telemetry enabled

  bool identical() const { return off.digest == on.digest; }
  // Overhead of the best (least-disturbed) enabled repetition over the best
  // disabled one.
  double OverheadPct() const {
    return off.best_rep_seconds > 0
               ? (on.best_rep_seconds / off.best_rep_seconds - 1.0) * 100.0
               : 0;
  }
};

ObsResult RunObsWorkload(const std::string& name, std::uint32_t reps,
                         void (*rep)(Measurement&)) {
  ObsResult r;
  r.name = name;
  r.runs = reps;
  hotpath::SetReferenceMode(false);
  hotpath::SetCompiledMode(true);
  for (std::uint32_t i = 0; i < reps; ++i) {
    obs::MetricsRegistry::SetEnabled(false);
    auto t0 = std::chrono::steady_clock::now();
    rep(r.off);
    r.off.RecordRep(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    obs::MetricsRegistry::SetEnabled(true);
    t0 = std::chrono::steady_clock::now();
    rep(r.on);
    r.on.RecordRep(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  std::printf("  %-24s off %.3fs  on %.3fs  overhead %+.2f%%  %s\n", name.c_str(),
              r.off.seconds, r.on.seconds, r.OverheadPct(),
              r.identical() ? "[outputs identical]" : "[OUTPUT MISMATCH]");
  return r;
}

void WriteObsJson(std::ostream& os, const std::vector<ObsResult>& results) {
  os << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ObsResult& r = results[i];
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "    {\n"
                  "      \"name\": \"%s\",\n"
                  "      \"runs\": %u,\n"
                  "      \"telemetry_off_seconds\": %.6f,\n"
                  "      \"telemetry_on_seconds\": %.6f,\n"
                  "      \"telemetry_off_best_rep_seconds\": %.6f,\n"
                  "      \"telemetry_on_best_rep_seconds\": %.6f,\n"
                  "      \"overhead_pct\": %.2f,\n"
                  "      \"identical_output\": %s\n"
                  "    }%s\n",
                  r.name.c_str(), r.runs, r.off.seconds, r.on.seconds,
                  r.off.best_rep_seconds, r.on.best_rep_seconds, r.OverheadPct(),
                  r.identical() ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

void WriteJson(std::ostream& os, const std::vector<WorkloadResult>& results) {
  os << "{\n  \"dispatch\": \"" << CompiledProgram::DispatchName() << "\",\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "    {\n"
                  "      \"name\": \"%s\",\n"
                  "      \"runs\": %u,\n"
                  "      \"modelled_cycles\": %llu,\n"
                  "      \"reference_seconds\": %.6f,\n"
                  "      \"interpreter_seconds\": %.6f,\n"
                  "      \"optimized_seconds\": %.6f,\n"
                  "      \"reference_best_rep_seconds\": %.6f,\n"
                  "      \"interpreter_best_rep_seconds\": %.6f,\n"
                  "      \"optimized_best_rep_seconds\": %.6f,\n"
                  "      \"speedup\": %.2f,\n"
                  "      \"interpreter_speedup\": %.2f,\n"
                  "      \"ns_per_modelled_cycle\": %.3f,\n"
                  "      \"runs_per_sec\": %.1f,\n"
                  "      \"identical_output\": %s\n"
                  "    }%s\n",
                  r.name.c_str(), r.runs,
                  static_cast<unsigned long long>(r.compiled.modelled_cycles),
                  r.reference.seconds, r.interp.seconds, r.compiled.seconds,
                  r.reference.best_rep_seconds, r.interp.best_rep_seconds,
                  r.compiled.best_rep_seconds,
                  r.Speedup(), r.InterpSpeedup(), r.NsPerCycle(),
                  r.RunsPerSec(), r.identical() ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool quick = flags.quick;
  std::string json_path = FlagValue(argc, argv, "--json=");
  if (json_path.empty()) {
    json_path = "BENCH_hotpath.json";
  }
  std::string obs_json_path = FlagValue(argc, argv, "--obs-json=");
  if (obs_json_path.empty()) {
    obs_json_path = "BENCH_obs.json";
  }

  std::printf(
      "Hot-path benchmark: reference (seed cost profile) vs interpreter vs\n"
      "compiled threaded-code backend (%s dispatch).\n",
      CompiledProgram::DispatchName());
  std::printf("Mode: %s\n\n", quick ? "quick (CI smoke)" : "full");

  std::vector<WorkloadResult> results;
  results.push_back(
      RunWorkload("timer-preempt-runner", quick ? 5 : 40, RepTimerPreempt));
  results.push_back(RunWorkload("irq-sweep-retype", quick ? 3 : 30, RepIrqSweep));
  results.push_back(RunWorkload("campaign-mixed-seed42", quick ? 1 : 8, RepCampaign));

  Table t({"workload", "runs", "ref s", "interp s", "compiled s", "speedup", "interp x",
           "ns/cycle", "runs/s", "identical"});
  for (const WorkloadResult& r : results) {
    char ref_s[32], interp_s[32], comp_s[32], ns[32], rps[32];
    std::snprintf(ref_s, sizeof(ref_s), "%.3f", r.reference.seconds);
    std::snprintf(interp_s, sizeof(interp_s), "%.3f", r.interp.seconds);
    std::snprintf(comp_s, sizeof(comp_s), "%.3f", r.compiled.seconds);
    std::snprintf(ns, sizeof(ns), "%.3f", r.NsPerCycle());
    std::snprintf(rps, sizeof(rps), "%.1f", r.RunsPerSec());
    t.AddRow({r.name, std::to_string(r.runs), ref_s, interp_s, comp_s,
              Table::Ratio(r.Speedup()), Table::Ratio(r.InterpSpeedup()), ns, rps,
              r.identical() ? "yes" : "NO"});
  }
  std::printf("\n");
  if (flags.csv) {
    t.PrintCsv();
  } else {
    t.Print();
  }

  std::ofstream json(json_path);
  WriteJson(json, results);
  std::printf("\nWrote %s\n", json_path.c_str());

  // Telemetry overhead: the same workloads, metrics registry off vs on.
  std::printf("\nTelemetry overhead (obs registry off vs on, optimised hot path):\n");
  std::vector<ObsResult> obs_results;
  obs_results.push_back(
      RunObsWorkload("timer-preempt-runner", quick ? 5 : 40, RepTimerPreempt));
  obs_results.push_back(RunObsWorkload("irq-sweep-retype", quick ? 3 : 30, RepIrqSweep));
  obs_results.push_back(
      RunObsWorkload("campaign-mixed-seed42", quick ? 1 : 8, RepCampaign));
  // Leave the registry in the state the --no-telemetry flag asked for.
  obs::MetricsRegistry::SetEnabled(!flags.no_telemetry);

  std::ofstream obs_json(obs_json_path);
  WriteObsJson(obs_json, obs_results);
  std::printf("Wrote %s\n", obs_json_path.c_str());

  bench::ExportMetricsJson(flags.metrics_json);

  bool all_identical = true;
  for (const WorkloadResult& r : results) {
    all_identical = all_identical && r.identical();
  }
  for (const ObsResult& r : obs_results) {
    all_identical = all_identical && r.identical();
  }
  if (!all_identical) {
    std::printf("SELF-CHECK FAILED: reference, interpreter and compiled outputs differ.\n");
    return 1;
  }
  std::printf(
      "Self-check passed: all modelled outputs bit-identical across the\n"
      "reference, interpreter and compiled (%s) paths and with telemetry on\n"
      "vs off.\n",
      CompiledProgram::DispatchName());
  return 0;
}
