// bench_traffic — offered-load vs interrupt-response-tail trajectory.
//
// Runs the src/load saturation sweep (badged client fleet + modelled NIC
// ring + two-phase driver) across the full scenario grid and records, per
// arrival shape, the trajectory of throughput / drops / goodput / IRQ tail
// percentiles as the device inter-frame gap shrinks — the repo's evidence
// that interrupt response stays under the analyzed bound while the system
// saturates. Writes the trajectory in the BENCH_*.json house format.
//
//   $ bench_traffic [--quick] [--jobs=N] [--seed=N] [--json=BENCH_traffic.json]
//                   [--csv] [--metrics-json=F] [--no-telemetry]
//
// stdout carries the deterministic sweep table (modelled values only);
// wall-clock timing lives in the JSON, which is regenerated per host.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/load/traffic.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

int Main(int argc, char** argv) {
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);

  load::TrafficOptions opts;
  opts.jobs = flags.jobs;
  if (const std::string s = FlagValue(argc, argv, "--seed="); !s.empty()) {
    opts.seed = std::stoull(s);
  }
  std::string json_path = FlagValue(argc, argv, "--json=");
  if (json_path.empty() && !HasFlag(argc, argv, "--no-json")) {
    json_path = "BENCH_traffic.json";
  }
  if (flags.quick) {
    opts.clients = 1000;
    opts.run_cycles = 260'000;
  } else {
    opts.clients = 2000;
    opts.servers = 16;
    // A denser load axis for the committed trajectory.
    opts.load_gaps = {32768, 16384, 8192, 4096, 2048, 1024, 512, 384};
  }

  const auto img = BuildKernelImage(KernelConfig::After());
  const Cycles bound = WcetAnalyzer(*img, AnalysisOptions{}).InterruptResponseBound();

  const auto t0 = std::chrono::steady_clock::now();
  const load::TrafficReport report = load::RunTrafficSweep(opts);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (flags.csv) {
    load::WriteTrafficCsv(report, std::cout);
  } else {
    std::printf("traffic sweep: %zu scenarios, %u clients, bound %llu cycles\n\n",
                report.results.size(), opts.clients,
                static_cast<unsigned long long>(bound));
    std::printf("%s", load::RenderTrafficTable(report).c_str());
  }
  std::fprintf(stderr, "sweep wall time: %.3f s (jobs=%u)\n", wall, opts.jobs);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    load::WriteTrafficBenchJson(report, bound, wall, out);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) { return pmk::Main(argc, argv); }
