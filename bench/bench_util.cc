#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/engine/job_pool.h"
#include "src/obs/metrics.h"
#include "src/sim/report.h"

namespace pmk::bench {

CommonFlags ParseCommonFlags(int argc, char** argv) {
  CommonFlags f;
  f.csv = HasFlag(argc, argv, "--csv");
  f.quick = HasFlag(argc, argv, "--quick");
  f.progress = HasFlag(argc, argv, "--progress");
  f.no_telemetry = HasFlag(argc, argv, "--no-telemetry");
  if (const std::string j = FlagValue(argc, argv, "--jobs="); !j.empty()) {
    f.jobs = static_cast<unsigned>(std::strtoul(j.c_str(), nullptr, 10));
    if (f.jobs == 0) {
      f.jobs = 1;
    }
  }
  f.trace_json = FlagValue(argc, argv, "--trace-json=");
  f.metrics_json = FlagValue(argc, argv, "--metrics-json=");

  obs::MetricsRegistry::SetEnabled(!f.no_telemetry);
  engine::SetProgress(f.progress);
  return f;
}

bool IsCommonFlag(const std::string& arg) {
  if (arg == "--csv" || arg == "--quick" || arg == "--progress" ||
      arg == "--no-telemetry") {
    return true;
  }
  for (const char* prefix : {"--jobs=", "--trace-json=", "--metrics-json="}) {
    if (arg.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

void ExportMetricsJson(const std::string& path) {
  if (path.empty()) {
    return;
  }
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "failed to open %s\n", path.c_str());
    return;
  }
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
  snap.WriteJsonl(os);
  std::fprintf(stderr, "wrote %s (%zu metrics)\n", path.c_str(), snap.rows.size());
}

ChromeTraceWriter& GlobalTrace() {
  static ChromeTraceWriter writer{ClockSpec{}};
  return writer;
}

void WriteTraceJson(const ChromeTraceWriter& writer, const std::string& path) {
  if (path.empty()) {
    return;
  }
  if (writer.WriteFile(path)) {
    std::fprintf(stderr, "wrote %s (%zu events)\n", path.c_str(), writer.events().size());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
}

}  // namespace pmk::bench
