// Shared driver plumbing for the bench/ and examples/ binaries.
//
// Every driver historically grew its own ad-hoc flag parsing; --trace-json=
// in particular was supported by only two of twelve binaries. This helper
// centralises the common flag family:
//
//   --csv            machine-readable stdout (driver-specific meaning)
//   --quick          reduced iteration counts for CI smoke runs
//   --jobs=N         worker threads for engine fan-outs
//   --progress       decile progress lines on stderr (stdout untouched)
//   --no-telemetry   disable the obs metrics registry for this process
//   --trace-json=F   Chrome trace of a representative modelled run
//   --metrics-json=F JSONL snapshot of every metric at driver exit
//
// ParseCommonFlags also APPLIES the side-effecting flags (telemetry on/off,
// engine progress), so a driver's main starts with one call. All notes about
// exported files go to stderr: stdout stays byte-identical for goldens.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <string>

#include "src/obs/chrome_trace.h"

namespace pmk::bench {

struct CommonFlags {
  bool csv = false;
  bool quick = false;
  bool progress = false;
  bool no_telemetry = false;
  unsigned jobs = 1;
  std::string trace_json;    // empty = no trace export
  std::string metrics_json;  // empty = no metrics export
};

// Parses the common flag family and applies the side-effecting ones
// (MetricsRegistry::SetEnabled, engine::SetProgress). Unknown arguments are
// ignored — drivers keep parsing their own flags from the same argv.
CommonFlags ParseCommonFlags(int argc, char** argv);

// True if |arg| belongs to the common family (used by the google-benchmark
// driver to strip our flags before benchmark::Initialize).
bool IsCommonFlag(const std::string& arg);

// Writes the process-wide metrics snapshot as JSONL to |path| (no-op when
// empty); logs the outcome to stderr. Call once, at driver exit.
void ExportMetricsJson(const std::string& path);

// Writes |writer|'s buffered events to |path| (no-op when empty); logs the
// outcome to stderr.
void WriteTraceJson(const ChromeTraceWriter& writer, const std::string& path);

// Process-wide trace buffer for drivers whose representative System lives
// deep inside a helper: attach it with sys.AttachTraceSink(&GlobalTrace())
// at the run worth inspecting, then WriteTraceJson(GlobalTrace(), path) at
// exit. Drivers with no modelled execution write a valid empty trace.
ChromeTraceWriter& GlobalTrace();

}  // namespace pmk::bench

#endif  // BENCH_BENCH_UTIL_H_
