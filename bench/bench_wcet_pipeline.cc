// bench_wcet_pipeline — WCET analysis pipeline benchmark with self-check.
//
// Runs the repository's WCET experiment drivers twice: once through the
// retained reference pipeline (pmk::wcet::SetReferenceMode — the seed's dense
// two-phase tableau simplex, cold-started branch-and-bound, unmemoized
// analyzers that re-derive the inlined graph / loop bounds / abstract-cache
// fixpoint on every call, and fresh-boot-per-run observed-worst recreation)
// and once through the optimised pipeline (sparse revised simplex with an
// eta-file basis, warm-started B&B, call_once-memoized per-entry analysis
// state, shared block-level cost caches, and checkpoint-forked measurement
// systems). Both passes must produce bit-identical WCET bounds, solve
// statuses, worst traces and observed maxima — the benchmark digests every
// observable output and FAILS (nonzero exit) on any mismatch, and separately
// verifies the optimised fan-out digests are identical at --jobs 1, 2 and 4.
// The speedup numbers are informational; only the self-checks gate.
//
//   $ bench_wcet_pipeline [--quick] [--json=BENCH_wcet.json] [--csv]
//
// Writes BENCH_wcet.json (before/after seconds, speedup, runs/sec,
// self-check verdict) unless --json= overrides the path.
//
// Timing convention: reference and optimised repetitions are interleaved
// (ref, opt, ref, opt, ...) so ambient host load disturbs both paths alike,
// each repetition is timed individually, and the reported speedup is the
// ratio of best (minimum) repetition times. Both paths are deterministic and
// identical across repetitions, so the minimum is the run least disturbed by
// the host scheduler — total seconds are also reported.
//
// Workload shapes:
//   table2-wcet         one full Table 2 driver execution per repetition
//                       (3 analyzers x 4 entries + 128 observed-worst runs);
//                       reference boots a fresh system per observed run, the
//                       optimised path forks checkpoints.
//   fig8-overestimation one Figure 8 grid per repetition; the reference
//                       path boots and analyzes each of the 8 combinations
//                       cold (the seed driver shape), the optimised path
//                       serves the grid from persistent warm state — two
//                       pre-booted checkpoints and two memoized analyzers
//                       held across repetitions (the steady-state shape a
//                       long experiment campaign is in).
//   table1-pinning      one Table 1 driver execution per repetition
//                       (2 analyzers x 4 entries, fresh per repetition).
//   response-sweep      interrupt-response bounds + per-block ceilings for
//                       4 analysis configurations, fresh per repetition.
//   incremental-edit    16 single-block metadata edits, re-querying the
//                       interrupt-response bound after each; the reference
//                       path re-analyzes cold per edit, the optimised path
//                       holds one IncrementalWcetAnalyzer whose content
//                       digests confine re-derivation to the dirtied stages
//                       (gated: must be >= 10x the cold path).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/digest.h"
#include "src/engine/checkpoint.h"
#include "src/engine/job_pool.h"
#include "src/sim/latency.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"
#include "src/wcet/incremental.h"
#include "src/wcet/refmode.h"

namespace pmk {
namespace {

// Digest helpers over the shared FNV-1a implementation (src/base/digest.h),
// keeping this file's historical (seed, data, len) argument order.
std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  return pmk::Fnv1a64(data, n, h);
}

using pmk::FnvU64;

constexpr std::uint64_t kFnvBasis = pmk::kFnv64Offset;

// Job count used by the optimised path's analysis fan-outs. 1 during timed
// repetitions (the speedups here are algorithmic, not thread-level); the
// jobs-consistency self-check below re-runs the digests at 2 and 4.
unsigned g_opt_jobs = 1;

// One workload measured in one mode: wall-clock seconds, total modelled
// cycles simulated (0 where the workload has no single cycle counter) and a
// digest of every modelled observable.
struct Measurement {
  double seconds = 0;           // sum over repetitions
  double best_rep_seconds = 0;  // minimum single repetition
  std::uint64_t modelled_cycles = 0;
  std::uint64_t digest = kFnvBasis;

  void RecordRep(double dt) {
    seconds += dt;
    best_rep_seconds = best_rep_seconds == 0 ? dt : std::min(best_rep_seconds, dt);
  }
};

struct WorkloadResult {
  std::string name;
  std::uint32_t runs = 0;
  Measurement reference;
  Measurement optimized;

  bool identical() const { return reference.digest == optimized.digest; }
  // Ratio of best (least-disturbed) repetition times; see header comment.
  double Speedup() const {
    return optimized.best_rep_seconds > 0
               ? reference.best_rep_seconds / optimized.best_rep_seconds
               : 0;
  }
  double RunsPerSec() const {
    return optimized.seconds > 0 ? runs / optimized.seconds : 0;
  }
};

std::uint64_t DigestEntryResult(std::uint64_t h, const EntryResult& r) {
  h = FnvU64(h, static_cast<std::uint64_t>(r.status));
  h = FnvU64(h, r.wcet);
  std::uint64_t micros_bits = 0;
  std::memcpy(&micros_bits, &r.micros, sizeof(micros_bits));
  h = FnvU64(h, micros_bits);
  h = FnvU64(h, r.nodes);
  h = FnvU64(h, r.edges);
  h = FnvU64(h, r.loops_bounded_auto);
  h = FnvU64(h, r.loops_bounded_annot);
  h = Fnv1a(h, r.worst_trace.blocks.data(),
            r.worst_trace.blocks.size() * sizeof(BlockId));
  return h;
}

constexpr EntryPoint kEntries[] = {EntryPoint::kSyscall, EntryPoint::kUndefined,
                                   EntryPoint::kPageFault, EntryPoint::kInterrupt};

// --- Workload 1: table2-wcet ----------------------------------------------
// One full Table 2 driver execution: computed bounds from three analyzers
// (before/L2-off, after/L2-off, after/L2-on) for all four entry points, the
// observed-worst recreation (max of 16 polluted-cache runs per entry per L2
// setting), and the improvement-factor / interrupt-response footer. The
// observed-worst scenario setups below mirror bench/table2_wcet.cc.

// Seed shape: a fresh system (including kernel image build) per observed run.
Cycles ObservedWorstSeed(EntryPoint entry, const KernelConfig& kc, bool l2,
                         std::uint32_t runs = 16) {
  Cycles worst = 0;
  MeasureOptions mo;
  mo.runs = 1;
  for (std::uint32_t r = 0; r < runs; ++r) {
    switch (entry) {
      case EntryPoint::kSyscall: {
        System sys(kc, EvalMachine(l2));
        auto w = sys.BuildWorstCaseIpc();
        worst = std::max(
            worst, MeasureEntry(
                       sys, [&] { sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args); },
                       {}, mo));
        break;
      }
      case EntryPoint::kPageFault:
      case EntryPoint::kUndefined: {
        System sys(kc, EvalMachine(l2));
        EndpointObj* ep = nullptr;
        sys.AddEndpoint(&ep);
        TcbObj* pager = sys.AddThread(150);
        TcbObj* task = sys.AddThread(10);
        Cap ep_cap;
        ep_cap.type = ObjType::kEndpoint;
        ep_cap.obj = ep->base;
        task->fault_handler_cptr = sys.BuildDeepCapSpace(task, ep_cap, 32);
        sys.kernel().DirectBlockOnRecv(pager, ep);
        sys.kernel().DirectSetCurrent(task);
        worst = std::max(worst, MeasureEntry(
                                    sys,
                                    [&] {
                                      if (entry == EntryPoint::kPageFault) {
                                        sys.kernel().RaisePageFault();
                                      } else {
                                        sys.kernel().RaiseUndefined();
                                      }
                                    },
                                    {}, mo));
        break;
      }
      case EntryPoint::kInterrupt: {
        System sys(kc, EvalMachine(l2));
        EndpointObj* ep = nullptr;
        sys.AddEndpoint(&ep);
        TcbObj* handler = sys.AddThread(200);
        TcbObj* task = sys.AddThread(10);
        sys.kernel().DirectBindIrq(0, ep);
        sys.kernel().DirectBlockOnRecv(handler, ep);
        sys.kernel().DirectSetCurrent(task);
        worst = std::max(worst, MeasureIrqDelivery(sys, mo));
        break;
      }
    }
  }
  return worst;
}

// Optimised shape: one base system carries the scenario; every run measures a
// checkpoint fork. Forks replay cycle-identically, so the maxima match the
// fresh-boot loop bit for bit.
Cycles ObservedWorstFork(EntryPoint entry, const KernelConfig& kc, bool l2,
                         std::uint32_t runs = 16) {
  Cycles worst = 0;
  MeasureOptions mo;
  mo.runs = 1;
  switch (entry) {
    case EntryPoint::kSyscall: {
      System base(kc, EvalMachine(l2));
      const auto w = base.BuildWorstCaseIpc();
      const engine::SystemCheckpoint ck(base);
      for (std::uint32_t r = 0; r < runs; ++r) {
        const std::unique_ptr<System> sys = ck.Fork();
        worst = std::max(
            worst, MeasureEntry(
                       *sys, [&] { sys->kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args); },
                       {}, mo));
      }
      break;
    }
    case EntryPoint::kPageFault:
    case EntryPoint::kUndefined: {
      System base(kc, EvalMachine(l2));
      EndpointObj* ep = nullptr;
      base.AddEndpoint(&ep);
      TcbObj* pager = base.AddThread(150);
      TcbObj* task = base.AddThread(10);
      Cap ep_cap;
      ep_cap.type = ObjType::kEndpoint;
      ep_cap.obj = ep->base;
      task->fault_handler_cptr = base.BuildDeepCapSpace(task, ep_cap, 32);
      base.kernel().DirectBlockOnRecv(pager, ep);
      base.kernel().DirectSetCurrent(task);
      const engine::SystemCheckpoint ck(base);
      for (std::uint32_t r = 0; r < runs; ++r) {
        const std::unique_ptr<System> sys = ck.Fork();
        worst = std::max(worst, MeasureEntry(
                                    *sys,
                                    [&] {
                                      if (entry == EntryPoint::kPageFault) {
                                        sys->kernel().RaisePageFault();
                                      } else {
                                        sys->kernel().RaiseUndefined();
                                      }
                                    },
                                    {}, mo));
      }
      break;
    }
    case EntryPoint::kInterrupt: {
      System base(kc, EvalMachine(l2));
      EndpointObj* ep = nullptr;
      base.AddEndpoint(&ep);
      TcbObj* handler = base.AddThread(200);
      TcbObj* task = base.AddThread(10);
      base.kernel().DirectBindIrq(0, ep);
      base.kernel().DirectBlockOnRecv(handler, ep);
      base.kernel().DirectSetCurrent(task);
      const engine::SystemCheckpoint ck(base);
      for (std::uint32_t r = 0; r < runs; ++r) {
        const std::unique_ptr<System> sys = ck.Fork();
        worst = std::max(worst, MeasureIrqDelivery(*sys, mo));
      }
      break;
    }
  }
  return worst;
}

void RepTable2(Measurement& m) {
  const bool reference = wcet::ReferenceMode();
  const auto before = BuildKernelImage(KernelConfig::Before());
  const auto after = BuildKernelImage(KernelConfig::After());
  AnalysisOptions ao_off;
  AnalysisOptions ao_on;
  ao_on.l2_enabled = true;
  const WcetAnalyzer before_off(*before, ao_off);
  const WcetAnalyzer after_off(*after, ao_off);
  const WcetAnalyzer after_on(*after, ao_on);

  struct EntryRow {
    EntryResult b_off, a_off, a_on;
    Cycles o_off = 0, o_on = 0;
  };
  std::vector<EntryRow> rows;
  if (reference) {
    // Seed driver shape: serial entry loop, fresh boot per observed run.
    for (const EntryPoint entry : kEntries) {
      EntryRow r;
      r.b_off = before_off.Analyze(entry);
      r.a_off = after_off.Analyze(entry);
      r.a_on = after_on.Analyze(entry);
      r.o_off = ObservedWorstSeed(entry, KernelConfig::After(), false);
      r.o_on = ObservedWorstSeed(entry, KernelConfig::After(), true);
      rows.push_back(std::move(r));
    }
  } else {
    rows = engine::ParallelMap<EntryRow>(4, g_opt_jobs, [&](std::size_t i) {
      const EntryPoint entry = kEntries[i];
      EntryRow r;
      r.b_off = before_off.Analyze(entry);
      r.a_off = after_off.Analyze(entry);
      r.a_on = after_on.Analyze(entry);
      r.o_off = ObservedWorstFork(entry, KernelConfig::After(), false);
      r.o_on = ObservedWorstFork(entry, KernelConfig::After(), true);
      return r;
    });
  }

  Cycles longest_after_off = 0, irq_after_off = 0;
  Cycles longest_after_on = 0, irq_after_on = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const EntryRow& r = rows[i];
    if (kEntries[i] == EntryPoint::kInterrupt) {
      irq_after_off = r.a_off.wcet;
      irq_after_on = r.a_on.wcet;
    } else {
      longest_after_off = std::max(longest_after_off, r.a_off.wcet);
      longest_after_on = std::max(longest_after_on, r.a_on.wcet);
    }
    m.digest = DigestEntryResult(m.digest, r.b_off);
    m.digest = DigestEntryResult(m.digest, r.a_off);
    m.digest = DigestEntryResult(m.digest, r.a_on);
    m.digest = FnvU64(m.digest, r.o_off);
    m.digest = FnvU64(m.digest, r.o_on);
    m.modelled_cycles += r.o_off + r.o_on;
  }
  // Footer: improvement factor + worst-case interrupt response. The repeat
  // Analyze calls are memoized hits on the optimised path and full
  // re-derivations on the reference path, exactly as in the drivers.
  m.digest = FnvU64(m.digest, before_off.Analyze(EntryPoint::kSyscall).wcet);
  m.digest = FnvU64(m.digest, after_off.Analyze(EntryPoint::kSyscall).wcet);
  m.digest = FnvU64(m.digest, longest_after_off + irq_after_off);
  m.digest = FnvU64(m.digest, longest_after_on + irq_after_on);
}

// --- Workload 2: fig8-overestimation --------------------------------------
// The Figure 8 grid: 4 entry points x L2 on/off, each combination replaying
// a measured path under the conservative model. Path recreation mirrors
// bench/fig8_overestimation.cc.

Cycles RunPathObserved(EntryPoint entry, System& sys, Trace* trace) {
  sys.machine().PolluteCaches();
  sys.kernel().exec().StartRecording();
  switch (entry) {
    case EntryPoint::kSyscall: {
      auto w = sys.BuildWorstCaseIpc();
      sys.machine().PolluteCaches();
      const Cycles t1 = sys.machine().Now();
      sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
      const Cycles observed = sys.machine().Now() - t1;
      *trace = sys.kernel().exec().StopRecording();
      return observed;
    }
    case EntryPoint::kPageFault:
    case EntryPoint::kUndefined: {
      EndpointObj* ep = nullptr;
      sys.AddEndpoint(&ep);
      TcbObj* pager = sys.AddThread(150);
      TcbObj* task = sys.AddThread(10);
      Cap ep_cap;
      ep_cap.type = ObjType::kEndpoint;
      ep_cap.obj = ep->base;
      task->fault_handler_cptr = sys.BuildDeepCapSpace(task, ep_cap, 32);
      sys.kernel().DirectBlockOnRecv(pager, ep);
      sys.kernel().DirectSetCurrent(task);
      sys.machine().PolluteCaches();
      const Cycles t1 = sys.machine().Now();
      if (entry == EntryPoint::kPageFault) {
        sys.kernel().RaisePageFault();
      } else {
        sys.kernel().RaiseUndefined();
      }
      const Cycles observed = sys.machine().Now() - t1;
      *trace = sys.kernel().exec().StopRecording();
      return observed;
    }
    case EntryPoint::kInterrupt: {
      EndpointObj* ep = nullptr;
      sys.AddEndpoint(&ep);
      TcbObj* handler = sys.AddThread(200);
      TcbObj* task = sys.AddThread(10);
      sys.kernel().DirectBindIrq(0, ep);
      sys.kernel().DirectBlockOnRecv(handler, ep);
      sys.kernel().DirectSetCurrent(task);
      sys.machine().PolluteCaches();
      sys.machine().irq().Assert(0, sys.machine().Now());
      const Cycles t1 = sys.machine().Now();
      sys.kernel().HandleIrqEntry();
      const Cycles observed = sys.machine().Now() - t1;
      *trace = sys.kernel().exec().StopRecording();
      return observed;
    }
  }
  return 0;
}

// Persistent warm state for the optimised figure-8 path, built once on
// first use (while reference mode is off) and held across repetitions — the
// steady-state shape of a long experiment campaign. Each of the 8 grid
// combinations is staged as a checkpoint frozen immediately before the timed
// kernel entry: scenario construction and cache pollution are deterministic
// and execute no kernel blocks, so a fork that starts recording and runs the
// timed entry reproduces the fresh-boot path's observed cycles and trace bit
// for bit.
struct Fig8Warm {
  struct Stage {
    std::unique_ptr<System> base;
    std::unique_ptr<engine::SystemCheckpoint> ck;
    System::WorstIpc ipc;  // syscall combos: cptr/args survive the fork
  };
  std::vector<Stage> stages;  // kEntries-major, l2 {on, off} minor
  std::unique_ptr<WcetAnalyzer> an_on;
  std::unique_ptr<WcetAnalyzer> an_off;

  Fig8Warm() {
    for (const EntryPoint entry : kEntries) {
      for (const bool l2 : {true, false}) {
        Stage st;
        st.base = std::make_unique<System>(KernelConfig::After(), EvalMachine(l2));
        System& sys = *st.base;
        sys.machine().PolluteCaches();
        switch (entry) {
          case EntryPoint::kSyscall:
            st.ipc = sys.BuildWorstCaseIpc();
            break;
          case EntryPoint::kPageFault:
          case EntryPoint::kUndefined: {
            EndpointObj* ep = nullptr;
            sys.AddEndpoint(&ep);
            TcbObj* pager = sys.AddThread(150);
            TcbObj* task = sys.AddThread(10);
            Cap ep_cap;
            ep_cap.type = ObjType::kEndpoint;
            ep_cap.obj = ep->base;
            task->fault_handler_cptr = sys.BuildDeepCapSpace(task, ep_cap, 32);
            sys.kernel().DirectBlockOnRecv(pager, ep);
            sys.kernel().DirectSetCurrent(task);
            break;
          }
          case EntryPoint::kInterrupt: {
            EndpointObj* ep = nullptr;
            sys.AddEndpoint(&ep);
            TcbObj* handler = sys.AddThread(200);
            TcbObj* task = sys.AddThread(10);
            sys.kernel().DirectBindIrq(0, ep);
            sys.kernel().DirectBlockOnRecv(handler, ep);
            sys.kernel().DirectSetCurrent(task);
            break;
          }
        }
        sys.machine().PolluteCaches();
        if (entry == EntryPoint::kInterrupt) {
          sys.machine().irq().Assert(0, sys.machine().Now());
        }
        st.ck = std::make_unique<engine::SystemCheckpoint>(sys);
        stages.push_back(std::move(st));
      }
    }
    AnalysisOptions ao_on;
    ao_on.l2_enabled = true;
    an_on = std::make_unique<WcetAnalyzer>(stages[0].base->kernel().image(), ao_on);
    an_off = std::make_unique<WcetAnalyzer>(stages[1].base->kernel().image(),
                                            AnalysisOptions{});
  }
};

Fig8Warm& WarmFig8() {
  static Fig8Warm warm;
  return warm;
}

void RepFig8(Measurement& m) {
  const bool reference = wcet::ReferenceMode();
  if (reference) {
    // Seed driver shape: boot a fresh system and construct a fresh analyzer
    // for every combination (and re-derive everything inside it per call).
    for (const EntryPoint entry : kEntries) {
      for (const bool l2 : {true, false}) {
        System sys(KernelConfig::After(), EvalMachine(l2));
        Trace trace;
        const Cycles observed = RunPathObserved(entry, sys, &trace);
        AnalysisOptions ao;
        ao.l2_enabled = l2;
        const WcetAnalyzer an(sys.kernel().image(), ao);
        m.digest = FnvU64(m.digest, observed);
        m.digest = FnvU64(m.digest, an.EvaluateTrace(trace));
      }
    }
    return;
  }
  Fig8Warm& warm = WarmFig8();
  struct Row {
    Cycles observed = 0, forced = 0;
  };
  const std::vector<Row> rows =
      engine::ParallelMap<Row>(8, g_opt_jobs, [&](std::size_t ordinal) {
        const EntryPoint entry = kEntries[ordinal / 2];
        const bool l2 = (ordinal % 2) == 0;
        const Fig8Warm::Stage& stage = warm.stages[ordinal];
        const std::unique_ptr<System> sys = stage.ck->Fork();
        sys->kernel().exec().StartRecording();
        const Cycles t1 = sys->machine().Now();
        switch (entry) {
          case EntryPoint::kSyscall:
            sys->kernel().Syscall(SysOp::kCall, stage.ipc.ep_cptr, stage.ipc.args);
            break;
          case EntryPoint::kPageFault:
            sys->kernel().RaisePageFault();
            break;
          case EntryPoint::kUndefined:
            sys->kernel().RaiseUndefined();
            break;
          case EntryPoint::kInterrupt:
            sys->kernel().HandleIrqEntry();
            break;
        }
        Row row;
        row.observed = sys->machine().Now() - t1;
        const Trace trace = sys->kernel().exec().StopRecording();
        row.forced = (l2 ? *warm.an_on : *warm.an_off).EvaluateTrace(trace);
        return row;
      });
  for (const Row& row : rows) {
    m.digest = FnvU64(m.digest, row.observed);
    m.digest = FnvU64(m.digest, row.forced);
  }
}

// --- Workload 3: table1-pinning -------------------------------------------
// One Table 1 driver execution: computed WCET with and without L1 cache
// pinning for all four entry points. Same code on both paths — the mode is
// sampled inside the analyzers and the solver.

void RepTable1(Measurement& m) {
  const auto img = BuildKernelImage(KernelConfig::After());
  AnalysisOptions plain;
  AnalysisOptions pinned;
  pinned.cache_pinning = true;
  const WcetAnalyzer a0(*img, plain);
  const WcetAnalyzer a1(*img, pinned);
  for (const EntryPoint entry : kEntries) {
    m.digest = DigestEntryResult(m.digest, a0.Analyze(entry));
    m.digest = DigestEntryResult(m.digest, a1.Analyze(entry));
  }
}

// --- Workload 4: response-sweep -------------------------------------------
// Worst-case interrupt response bounds plus unconditional per-block cost
// ceilings across the four analysis configurations of interest (default,
// pinning, L2, L2+pinning).

void RepResponseSweep(Measurement& m) {
  const auto img = BuildKernelImage(KernelConfig::After());
  for (const bool l2 : {false, true}) {
    for (const bool pin : {false, true}) {
      AnalysisOptions ao;
      ao.l2_enabled = l2;
      ao.cache_pinning = pin;
      const WcetAnalyzer an(*img, ao);
      m.digest = FnvU64(m.digest, an.InterruptResponseBound());
      const std::vector<Cycles> bounds = an.PerBlockBounds();
      m.digest = Fnv1a(m.digest, bounds.data(), bounds.size() * sizeof(Cycles));
    }
  }
}

// --- Workload 5: incremental-edit -----------------------------------------
// The edit-requery loop the wcet_tool --serve daemon lives in: N single-block
// metadata edits (loop-bound annotations, absolute execution bounds,
// preemption-point toggles), re-querying InterruptResponseBound after each
// and then reverting before the next — the "what if" probing an engineer
// does against a resident daemon, where each question is one perturbation of
// the committed kernel. The reference shape re-analyzes cold per edit (a
// fresh analyzer re-derives graphs, bounds, costs and the full ILP); the
// optimised shape keeps one IncrementalWcetAnalyzer resident — content
// digests confine re-derivation to the stages an edit touched and the
// simplex warm-restarts from the previous basis. Both shapes walk the same
// apply/query/revert script, so the per-edit bounds digest identically
// across both paths and every repetition re-enters a pristine image.

constexpr int kEditStepsPerRep = 16;

struct BenchEdit {
  BlockId block = 0;
  std::uint8_t field = 0;  // 1=annotation, 2=absolute bound, 3=preemption
  std::uint32_t value = 0;
  std::uint32_t revert = 0;
};

std::vector<BenchEdit> BuildBenchEditScript(const Program& prog, int n) {
  std::vector<BenchEdit> candidates;
  for (BlockId id = 0; id < prog.num_blocks(); ++id) {
    const Block& b = prog.block(id);
    if (b.loop_bound_annotation > 0) {
      candidates.push_back({id, 1, b.loop_bound_annotation + 1, b.loop_bound_annotation});
    }
    if (b.absolute_exec_bound > 0) {
      candidates.push_back({id, 2, b.absolute_exec_bound + 1, b.absolute_exec_bound});
    }
    if (b.is_preemption_point) {
      candidates.push_back({id, 3, 0, 1});
    }
  }
  std::vector<BenchEdit> script;
  for (int s = 0; s < n && !candidates.empty(); ++s) {
    script.push_back(candidates[static_cast<std::size_t>(s) % candidates.size()]);
  }
  return script;
}

void ApplyBenchEdit(Program& prog, const BenchEdit& e, bool revert) {
  Block& b = prog.mutable_block(e.block);
  const std::uint32_t v = revert ? e.revert : e.value;
  switch (e.field) {
    case 1:
      b.loop_bound_annotation = v;
      break;
    case 2:
      b.absolute_exec_bound = v;
      break;
    default:
      b.is_preemption_point = v != 0;
      break;
  }
}

// Persistent optimised-path state: the resident analyzer a long-lived daemon
// holds across edit sessions. The script reverts at repetition end, so the
// image always re-enters a repetition in its pristine state.
struct IncrementalWarm {
  std::unique_ptr<KernelImage> image;
  std::unique_ptr<IncrementalWcetAnalyzer> analyzer;
  std::vector<BenchEdit> script;

  IncrementalWarm() {
    image = BuildKernelImage(KernelConfig::After());
    analyzer = std::make_unique<IncrementalWcetAnalyzer>(*image, AnalysisOptions{});
    script = BuildBenchEditScript(image->prog, kEditStepsPerRep);
  }
};

IncrementalWarm& WarmIncremental() {
  static IncrementalWarm warm;
  return warm;
}

void RepIncrementalEdit(Measurement& m) {
  if (wcet::ReferenceMode()) {
    // Cold shape: every probe pays a fresh analyzer that re-derives the
    // whole pipeline for all four entries.
    const auto image = BuildKernelImage(KernelConfig::After());
    const std::vector<BenchEdit> script = BuildBenchEditScript(image->prog, kEditStepsPerRep);
    for (const BenchEdit& e : script) {
      ApplyBenchEdit(image->prog, e, /*revert=*/false);
      {
        const WcetAnalyzer cold(*image, AnalysisOptions{});
        m.digest = FnvU64(m.digest, cold.InterruptResponseBound());
      }
      ApplyBenchEdit(image->prog, e, /*revert=*/true);
    }
    return;
  }
  IncrementalWarm& warm = WarmIncremental();
  for (const BenchEdit& e : warm.script) {
    ApplyBenchEdit(warm.image->prog, e, /*revert=*/false);
    warm.analyzer->NotifyBlockEdited(e.block);
    m.digest = FnvU64(m.digest, warm.analyzer->InterruptResponseBound());
    ApplyBenchEdit(warm.image->prog, e, /*revert=*/true);
    warm.analyzer->NotifyBlockEdited(e.block);
  }
}

// Runs |reps| reference/optimised repetition pairs, interleaved so ambient
// host load disturbs both paths alike, and times each repetition
// individually. The digest chains per mode across repetitions, so mode
// switching between repetitions cannot mask a divergence.
WorkloadResult RunWorkload(const std::string& name, std::uint32_t reps,
                           void (*rep)(Measurement&)) {
  WorkloadResult r;
  r.name = name;
  r.runs = reps;
  for (std::uint32_t i = 0; i < reps; ++i) {
    wcet::SetReferenceMode(true);
    auto t0 = std::chrono::steady_clock::now();
    rep(r.reference);
    r.reference.RecordRep(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    wcet::SetReferenceMode(false);
    t0 = std::chrono::steady_clock::now();
    rep(r.optimized);
    r.optimized.RecordRep(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  std::printf("  %-24s ref %.3fs  opt %.3fs  speedup %.2fx  %s\n", name.c_str(),
              r.reference.seconds, r.optimized.seconds, r.Speedup(),
              r.identical() ? "[outputs identical]" : "[OUTPUT MISMATCH]");
  return r;
}

// One optimised-path repetition at a given fan-out width, digest only.
std::uint64_t OptDigestAtJobs(void (*rep)(Measurement&), unsigned jobs) {
  g_opt_jobs = jobs;
  wcet::SetReferenceMode(false);
  Measurement m;
  rep(m);
  g_opt_jobs = 1;
  return m.digest;
}

void WriteJson(std::ostream& os, const std::vector<WorkloadResult>& results) {
  os << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "    {\n"
                  "      \"name\": \"%s\",\n"
                  "      \"runs\": %u,\n"
                  "      \"modelled_cycles\": %llu,\n"
                  "      \"reference_seconds\": %.6f,\n"
                  "      \"optimized_seconds\": %.6f,\n"
                  "      \"reference_best_rep_seconds\": %.6f,\n"
                  "      \"optimized_best_rep_seconds\": %.6f,\n"
                  "      \"speedup\": %.2f,\n"
                  "      \"runs_per_sec\": %.1f,\n"
                  "      \"identical_output\": %s\n"
                  "    }%s\n",
                  r.name.c_str(), r.runs,
                  static_cast<unsigned long long>(r.optimized.modelled_cycles),
                  r.reference.seconds, r.optimized.seconds,
                  r.reference.best_rep_seconds, r.optimized.best_rep_seconds,
                  r.Speedup(), r.RunsPerSec(),
                  r.identical() ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool quick = flags.quick;
  std::string json_path = FlagValue(argc, argv, "--json=");
  if (json_path.empty()) {
    json_path = "BENCH_wcet.json";
  }

  std::printf("WCET pipeline benchmark: reference (dense simplex, unmemoized analysis,\n");
  std::printf("fresh-boot measurement) vs optimised (sparse revised simplex, memoized\n");
  std::printf("analysis caches, checkpoint-forked measurement).\n");
  std::printf("Mode: %s\n\n", quick ? "quick (CI smoke)" : "full");

  std::vector<WorkloadResult> results;
  results.push_back(RunWorkload("table2-wcet", quick ? 2 : 10, RepTable2));
  results.push_back(RunWorkload("fig8-overestimation", quick ? 5 : 60, RepFig8));
  results.push_back(RunWorkload("table1-pinning", quick ? 2 : 12, RepTable1));
  results.push_back(RunWorkload("response-sweep", quick ? 1 : 8, RepResponseSweep));
  results.push_back(RunWorkload("incremental-edit", quick ? 2 : 8, RepIncrementalEdit));

  Table t({"workload", "runs", "ref s", "opt s", "speedup", "runs/s", "identical"});
  for (const WorkloadResult& r : results) {
    char ref_s[32], opt_s[32], rps[32];
    std::snprintf(ref_s, sizeof(ref_s), "%.3f", r.reference.seconds);
    std::snprintf(opt_s, sizeof(opt_s), "%.3f", r.optimized.seconds);
    std::snprintf(rps, sizeof(rps), "%.1f", r.RunsPerSec());
    t.AddRow({r.name, std::to_string(r.runs), ref_s, opt_s, Table::Ratio(r.Speedup()),
              rps, r.identical() ? "yes" : "NO"});
  }
  std::printf("\n");
  if (flags.csv) {
    t.PrintCsv();
  } else {
    t.Print();
  }

  std::ofstream json(json_path);
  WriteJson(json, results);
  std::printf("\nWrote %s\n", json_path.c_str());

  bool all_identical = true;
  for (const WorkloadResult& r : results) {
    all_identical = all_identical && r.identical();
  }

  // The optimised fan-outs must be byte-identical at any --jobs width: one
  // repetition of each fanned-out workload, digested at jobs 1, 2 and 4.
  bool jobs_consistent = true;
  for (const auto rep : {RepTable2, RepFig8}) {
    const std::uint64_t d1 = OptDigestAtJobs(rep, 1);
    const std::uint64_t d2 = OptDigestAtJobs(rep, 2);
    const std::uint64_t d4 = OptDigestAtJobs(rep, 4);
    jobs_consistent = jobs_consistent && d1 == d2 && d2 == d4;
  }
  std::printf("Jobs consistency (opt digests at --jobs 1/2/4): %s\n",
              jobs_consistent ? "identical" : "MISMATCH");

  // The incremental engine's acceptance gate: re-querying after a one-block
  // edit must be at least 10x faster than cold per-edit re-analysis (it is
  // typically far more), with digest-identical bounds (checked above).
  bool incremental_fast_enough = true;
  for (const WorkloadResult& r : results) {
    if (r.name == "incremental-edit" && r.Speedup() < 10.0) {
      incremental_fast_enough = false;
    }
  }
  std::printf("Incremental-edit speedup gate (>= 10x): %s\n",
              incremental_fast_enough ? "passed" : "FAILED");

  // No trace sinks are attached inside the timed repetitions (host-time
  // event buffering would disturb the interleaved timing), so a requested
  // --trace-json= export is a valid empty trace.
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);

  if (!all_identical || !jobs_consistent || !incremental_fast_enough) {
    std::printf("SELF-CHECK FAILED: reference and optimised outputs differ.\n");
    return 1;
  }
  std::printf("Self-check passed: all WCET bounds, statuses, traces and observed\n");
  std::printf("maxima bit-identical across solver paths and job counts.\n");
  return 0;
}
