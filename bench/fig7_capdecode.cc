// Figure 7: the worst-case capability-address decode. A crafted capability
// space makes every one of the 32 address bits require a separate CNode
// lookup; each level is a fresh set of cache misses. This bench sweeps the
// decode depth from 1 to 32 levels and reports the observed cost of a Send
// through such a cspace (cold, polluted caches), plus the cost of the
// paper's worst-case IPC where up to (1 + kMaxExtraCaps) such decodes stack
// up in one system call.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;

  if (!csv) {
    std::printf("Figure 7: cost of capability decode vs cspace depth\n");
    std::printf("(Send through a chain of 1-bit CNodes; cold polluted caches)\n\n");
  }

  Table t({"levels", "syscall cycles", "us", ""});
  Cycles depth32 = 0;
  Cycles depth1 = 0;
  for (std::uint32_t levels = 1; levels <= 32; ++levels) {
    System sys(KernelConfig::After(), EvalMachine(false));
    EndpointObj* ep = nullptr;
    sys.AddEndpoint(&ep);
    TcbObj* recv = sys.AddThread(10);
    TcbObj* send = sys.AddThread(10);
    sys.kernel().DirectBlockOnRecv(recv, ep);
    Cap target;
    target.type = ObjType::kEndpoint;
    target.obj = ep->base;
    const std::uint32_t cptr = sys.BuildDeepCapSpace(send, target, levels);
    if (levels == 32) {
      sys.AttachTraceSink(&bench::GlobalTrace());  // deepest decode is the figure's point
    }
    sys.kernel().DirectSetCurrent(send);

    SyscallArgs args;
    args.msg_len = 0;
    sys.machine().PolluteCaches();
    const Cycles t0 = sys.machine().Now();
    sys.kernel().Syscall(SysOp::kSend, cptr, args);
    const Cycles cost = sys.machine().Now() - t0;
    if (levels == 1) {
      depth1 = cost;
    }
    if (levels == 32) {
      depth32 = cost;
    }
    if (levels == 1 || levels % 4 == 0) {
      t.AddRow({std::to_string(levels), Table::Cyc(cost), Table::Us(clk.ToMicros(cost)),
                Bar(static_cast<double>(cost), 12000.0, 30)});
    }
  }
  if (csv) {
    t.PrintCsv();
    bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
    bench::ExportMetricsJson(flags.metrics_json);
    return 0;
  }
  t.Print();
  std::printf("\n32-level decode costs %.1fx a 1-level decode\n",
              static_cast<double>(depth32) / static_cast<double>(depth1));

  // The paper's Section 6.1 worst case: several decodes in one syscall.
  {
    System sys(KernelConfig::After(), EvalMachine(false));
    auto w = sys.BuildWorstCaseIpc();
    sys.machine().PolluteCaches();
    const Cycles t0 = sys.machine().Now();
    sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
    const Cycles cost = sys.machine().Now() - t0;
    std::printf(
        "\nworst-case IPC (full message + %u granted caps, every decode 32 levels):\n"
        "  %llu cycles = %.1f us — %u separate 32-level decodes in one syscall\n",
        KernelConfig::kMaxExtraCaps, static_cast<unsigned long long>(cost),
        clk.ToMicros(cost), 1 + KernelConfig::kMaxExtraCaps);
  }
  std::printf(
      "\nNote: practical systems use 1-2 level cspaces; only an adversary crafting\n"
      "its own capability space reaches this worst case (paper Section 6.1).\n");
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
