// Figure 8: overestimation of the hardware model for static analysis, with
// the L2 cache enabled and disabled. Each bar is a REALISABLE path: the
// analysis is forced onto the exact path a measured run took (by replaying
// its recorded trace under the conservative cost model), and the bar shows
// the percentage difference between the model's prediction and the observed
// execution time of the same path.
//
// Paper shape: per-path overestimation between ~25% and ~225%; the system
// call path overestimates the most (longest path: most cache-set contention
// under the 1-way-conservative model); L2 on is worse than L2 off.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/engine/checkpoint.h"
#include "src/engine/job_pool.h"
#include "src/obs/chrome_trace.h"
#include "src/sim/latency.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

struct PathRun {
  Cycles observed = 0;
  Trace trace;
  const KernelImage* image = nullptr;
};

PathRun RunPath(EntryPoint entry, System& sys) {
  PathRun out;
  out.image = &sys.kernel().image();
  sys.machine().PolluteCaches();
  sys.kernel().exec().StartRecording();
  const Cycles t0 = sys.machine().Now();
  switch (entry) {
    case EntryPoint::kSyscall: {
      auto w = sys.BuildWorstCaseIpc();
      sys.machine().PolluteCaches();
      const Cycles t1 = sys.machine().Now();
      sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
      out.observed = sys.machine().Now() - t1;
      out.trace = sys.kernel().exec().StopRecording();
      return out;
    }
    case EntryPoint::kPageFault:
    case EntryPoint::kUndefined: {
      EndpointObj* ep = nullptr;
      sys.AddEndpoint(&ep);
      TcbObj* pager = sys.AddThread(150);
      TcbObj* task = sys.AddThread(10);
      Cap ep_cap;
      ep_cap.type = ObjType::kEndpoint;
      ep_cap.obj = ep->base;
      task->fault_handler_cptr = sys.BuildDeepCapSpace(task, ep_cap, 32);
      sys.kernel().DirectBlockOnRecv(pager, ep);
      sys.kernel().DirectSetCurrent(task);
      sys.machine().PolluteCaches();
      const Cycles t1 = sys.machine().Now();
      if (entry == EntryPoint::kPageFault) {
        sys.kernel().RaisePageFault();
      } else {
        sys.kernel().RaiseUndefined();
      }
      out.observed = sys.machine().Now() - t1;
      out.trace = sys.kernel().exec().StopRecording();
      return out;
    }
    case EntryPoint::kInterrupt: {
      EndpointObj* ep = nullptr;
      sys.AddEndpoint(&ep);
      TcbObj* handler = sys.AddThread(200);
      TcbObj* task = sys.AddThread(10);
      sys.kernel().DirectBindIrq(0, ep);
      sys.kernel().DirectBlockOnRecv(handler, ep);
      sys.kernel().DirectSetCurrent(task);
      sys.machine().PolluteCaches();
      sys.machine().irq().Assert(0, sys.machine().Now());
      const Cycles t1 = sys.machine().Now();
      sys.kernel().HandleIrqEntry();
      out.observed = sys.machine().Now() - t1;
      out.trace = sys.kernel().exec().StopRecording();
      return out;
    }
  }
  (void)t0;
  return out;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;

  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;
  // --trace-json=FILE: dump a Chrome trace of the system-call path run
  // (L2 off) — the figure's most-overestimated bar — for Perfetto inspection.
  const std::string trace_path = flags.trace_json;
  const unsigned jobs = flags.jobs;

  if (!csv) {
    std::printf("Figure 8: %% overestimation of the hardware model on realisable paths\n");
    std::printf("(forced-path computed cost vs observed execution of the same path)\n\n");
  }

  // The 8-combination grid (4 entry points x L2 on/off) fans out over the
  // job pool: each combination forks its System from one of two pre-booted
  // checkpoints (per L2 setting) instead of rebooting and rebuilding the
  // kernel image, replays its path, and evaluates the forced-path bound
  // against a shared per-L2 analyzer (memoization is call_once-protected).
  // Forks replay cycle-identically to the system they were frozen from, and
  // rows are collected in ordinal order, so the output is byte-identical to
  // the boot-per-combination loop for any --jobs count.
  System base_on(KernelConfig::After(), EvalMachine(true));
  System base_off(KernelConfig::After(), EvalMachine(false));
  const engine::SystemCheckpoint ck_on(base_on);
  const engine::SystemCheckpoint ck_off(base_off);
  AnalysisOptions ao_on;
  ao_on.l2_enabled = true;
  const WcetAnalyzer an_on(base_on.kernel().image(), ao_on);
  const WcetAnalyzer an_off(base_off.kernel().image(), AnalysisOptions{});

  struct Combo {
    EntryPoint entry;
    bool l2;
  };
  std::vector<Combo> combos;
  for (const auto entry : {EntryPoint::kSyscall, EntryPoint::kUndefined,
                           EntryPoint::kPageFault, EntryPoint::kInterrupt}) {
    for (const bool l2 : {true, false}) {
      combos.push_back({entry, l2});
    }
  }
  struct Row {
    std::string name;
    Cycles observed = 0;
    Cycles forced = 0;
    bool l2 = false;
    double pct = 0;
  };
  const std::vector<Row> rows = engine::ParallelMap<Row>(
      combos.size(), jobs, [&](std::size_t ordinal) {
        const auto [entry, l2] = combos[ordinal];
        const std::unique_ptr<System> sys = (l2 ? ck_on : ck_off).Fork();
        ChromeTraceWriter writer(ClockSpec{});
        const bool trace_this = !trace_path.empty() && entry == EntryPoint::kSyscall && !l2;
        if (trace_this) {
          sys->AttachTraceSink(&writer);
        }
        const PathRun run = RunPath(entry, *sys);
        if (trace_this && !writer.WriteFile(trace_path)) {
          std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
        }
        Row row;
        row.name = std::string(EntryPointName(entry)) + (l2 ? " (L2 on)" : " (L2 off)");
        row.observed = run.observed;
        row.forced = (l2 ? an_on : an_off).EvaluateTrace(run.trace);
        row.l2 = l2;
        row.pct =
            (static_cast<double>(row.forced) / static_cast<double>(row.observed) - 1.0) * 100.0;
        return row;
      });

  Table t({"Path", "L2", "observed (cyc)", "forced-path computed", "overestimation"});
  double max_pct = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    t.AddRow({EntryPointName(combos[i].entry), r.l2 ? "on" : "off", Table::Cyc(r.observed),
              Table::Cyc(r.forced), Table::Ratio(r.pct) + "%"});
    max_pct = std::max(max_pct, r.pct);
  }
  if (csv) {
    t.PrintCsv();
    bench::ExportMetricsJson(flags.metrics_json);
    return 0;
  }
  t.Print();

  std::printf("\n");
  for (const Row& r : rows) {
    std::printf("%-28s |%s %.0f%%\n", r.name.c_str(), Bar(r.pct, max_pct).c_str(), r.pct);
  }
  std::printf("\npaper shape: 25%%-225%% overestimation; system call worst; L2 on > L2 off\n");
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
