// Figure 9: effect of enabling the L2 cache and/or branch prediction on
// OBSERVED worst-case execution times, normalised to the baseline (both
// disabled). Cold, polluted caches before every run — the paper's worst-case
// measurement condition.
//
// Paper shape: the L2 can HURT these cold-cache worst cases (memory latency
// rises from 60 to 96 cycles and the L2 provides little reuse on short,
// non-repetitive kernel paths — up to +8% on the page-fault path); the
// branch predictor helps only marginally (cold predictor, initial
// mispredictions offset the wins).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/latency.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

// Max over repeated in-place runs: the first (unmeasured) execution primes
// the L2, as the paper's maxima over 100,000 executions inevitably do; the
// L1 caches are fully polluted before every measured run, the 128 KiB L2
// only partially displaced.
Cycles Observe(EntryPoint entry, bool l2, bool bpred) {
  const KernelConfig kc = KernelConfig::After();
  const MachineConfig mc = EvalMachine(l2, bpred);
  constexpr int kRuns = 8;
  Cycles worst = 0;
  switch (entry) {
    case EntryPoint::kSyscall: {
      System sys(kc, mc);
      sys.AttachTraceSink(&bench::GlobalTrace());  // representative modelled run
      auto w = sys.BuildWorstCaseIpc();
      for (int run = -1; run < kRuns; ++run) {
        sys.machine().PolluteCaches();
        const Cycles t0 = sys.machine().Now();
        sys.kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args);
        if (run >= 0) {
          worst = std::max(worst, sys.machine().Now() - t0);
        }
        // The receiver replies and re-blocks, restoring the scenario.
        sys.kernel().Syscall(SysOp::kReplyRecv, w.reply_cptr, SyscallArgs{});
      }
      break;
    }
    case EntryPoint::kPageFault:
    case EntryPoint::kUndefined: {
      System sys(kc, mc);
      EndpointObj* ep = nullptr;
      const std::uint32_t pager_cptr = sys.AddEndpoint(&ep);
      TcbObj* pager = sys.AddThread(150);
      TcbObj* task = sys.AddThread(10);
      Cap ep_cap;
      ep_cap.type = ObjType::kEndpoint;
      ep_cap.obj = ep->base;
      task->fault_handler_cptr = sys.BuildDeepCapSpace(task, ep_cap, 32);
      sys.kernel().DirectBlockOnRecv(pager, ep);
      sys.kernel().DirectSetCurrent(task);
      for (int run = -1; run < kRuns; ++run) {
        sys.machine().PolluteCaches();
        const Cycles t0 = sys.machine().Now();
        if (entry == EntryPoint::kPageFault) {
          sys.kernel().RaisePageFault();
        } else {
          sys.kernel().RaiseUndefined();
        }
        if (run >= 0) {
          worst = std::max(worst, sys.machine().Now() - t0);
        }
        // The pager handles the fault and waits again; the task resumes.
        sys.kernel().Syscall(SysOp::kReplyRecv, pager_cptr, SyscallArgs{});
        sys.kernel().DirectSetCurrent(task);
      }
      break;
    }
    case EntryPoint::kInterrupt: {
      System sys(kc, mc);
      EndpointObj* ep = nullptr;
      sys.AddEndpoint(&ep);
      TcbObj* handler = sys.AddThread(200);
      TcbObj* task = sys.AddThread(10);
      sys.kernel().DirectBindIrq(0, ep);
      for (int run = -1; run < kRuns; ++run) {
        sys.kernel().DirectBlockOnRecv(handler, ep);
        sys.kernel().DirectSetCurrent(task);
        sys.machine().PolluteCaches();
        sys.machine().irq().Unmask(0);
        sys.machine().irq().Assert(0, sys.machine().Now());
        const Cycles t0 = sys.machine().Now();
        sys.kernel().HandleIrqEntry();
        if (run >= 0) {
          worst = std::max(worst, sys.machine().Now() - t0);
        }
      }
      break;
    }
  }
  return worst;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;

  if (!csv) {
    std::printf("Figure 9: observed worst-case execution times with the L2 cache and/or\n");
    std::printf("branch predictor enabled, normalised to the baseline (both disabled)\n\n");
  }

  Table t({"Path", "Baseline (cyc)", "L2 on", "B-pred on", "L2+B-pred"});
  for (const auto entry : {EntryPoint::kSyscall, EntryPoint::kUndefined,
                           EntryPoint::kPageFault, EntryPoint::kInterrupt}) {
    const Cycles base = Observe(entry, false, false);
    const Cycles l2 = Observe(entry, true, false);
    const Cycles bp = Observe(entry, false, true);
    const Cycles both = Observe(entry, true, true);
    const auto norm = [&](Cycles c) {
      return Table::Ratio(static_cast<double>(c) / static_cast<double>(base));
    };
    t.AddRow({EntryPointName(entry), Table::Cyc(base), norm(l2), norm(bp), norm(both)});
  }
  if (csv) {
    t.PrintCsv();
    bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
    bench::ExportMetricsJson(flags.metrics_json);
    return 0;
  }
  t.Print();

  std::printf("\npaper shape: L2 on can exceed 1.00 on these cold-cache worst cases\n");
  std::printf("(up to 1.08 on the page-fault path); the branch predictor is a minor,\n");
  std::printf("sometimes sub-1.00 effect. In the average case both features help —\n");
  std::printf("the detriment is specific to cold polluted caches.\n");
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
