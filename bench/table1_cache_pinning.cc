// Table 1: improvement in computed worst-case latency from pinning the
// frequently-used (interrupt-delivery) cache lines into the L1 caches
// (Section 4).
//
// Paper reference values (computed WCET, L2 off):
//   System call            421.6 -> 378.0 us   (10% gain)
//   Undefined instruction   70.4 ->  48.8 us   (30%)
//   Page fault              69.0 ->  50.1 us   (27%)
//   Interrupt               36.2 ->  19.5 us   (46%)
// Shape to reproduce: every entry point improves; the interrupt path gains
// by far the most; the syscall path (dominated by unpinnable dynamic
// accesses) gains least.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/engine/job_pool.h"
#include "src/sim/report.h"
#include "src/wcet/analysis.h"

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;
  const unsigned jobs = flags.jobs;

  const auto img = BuildKernelImage(KernelConfig::After());
  AnalysisOptions plain;
  AnalysisOptions pinned;
  pinned.cache_pinning = true;
  WcetAnalyzer a0(*img, plain);
  WcetAnalyzer a1(*img, pinned);

  // Report how much actually fits into the locked quarter of the I-cache.
  const PinnedLines pins = SelectPinnedLines(*img, 32, 4096 / 32);
  if (!csv) {
    std::printf("Table 1: computed WCET with and without L1 cache pinning\n");
    std::printf("(%zu instruction lines + %zu data lines locked into 1/4 of each L1;\n",
                pins.ilines.size(), pins.dlines.size());
    std::printf(" the paper pins 118 instruction lines, 256 B of stack and key data)\n\n");
  }

  // Both ablation arms of all four entry points fan out over the job pool.
  // The two analyzers are shared across workers (their memoization is
  // call_once-protected) and rows are collected in ordinal order, so the
  // output is byte-identical for any --jobs count.
  const std::vector<EntryPoint> entries = {EntryPoint::kSyscall, EntryPoint::kUndefined,
                                           EntryPoint::kPageFault, EntryPoint::kInterrupt};
  struct Row {
    Cycles w0 = 0;
    Cycles w1 = 0;
  };
  const std::vector<Row> rows =
      engine::ParallelMap<Row>(entries.size(), jobs, [&](std::size_t ordinal) {
        const EntryPoint entry = entries[ordinal];
        return Row{a0.Analyze(entry).wcet, a1.Analyze(entry).wcet};
      });

  Table t({"Event handler", "Without pinning (us)", "With pinning (us)", "% gain"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Cycles w0 = rows[i].w0;
    const Cycles w1 = rows[i].w1;
    t.AddRow({EntryPointName(entries[i]), Table::Us(clk.ToMicros(w0)),
              Table::Us(clk.ToMicros(w1)),
              Table::Pct(1.0 - static_cast<double>(w1) / static_cast<double>(w0))});
  }
  if (csv) {
    t.PrintCsv();
    bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
    bench::ExportMetricsJson(flags.metrics_json);
    return 0;
  }
  t.Print();
  std::printf("\npaper gains for comparison: 10%% / 30%% / 27%% / 46%%\n");
  // Pure-analysis driver: the trace export (if requested) is a valid empty
  // trace, so tooling that expects the flag everywhere keeps working.
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
