// Table 1: improvement in computed worst-case latency from pinning the
// frequently-used (interrupt-delivery) cache lines into the L1 caches
// (Section 4).
//
// Paper reference values (computed WCET, L2 off):
//   System call            421.6 -> 378.0 us   (10% gain)
//   Undefined instruction   70.4 ->  48.8 us   (30%)
//   Page fault              69.0 ->  50.1 us   (27%)
//   Interrupt               36.2 ->  19.5 us   (46%)
// Shape to reproduce: every entry point improves; the interrupt path gains
// by far the most; the syscall path (dominated by unpinnable dynamic
// accesses) gains least.

#include <cstdio>

#include "src/sim/report.h"
#include "src/wcet/analysis.h"

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const bool csv = HasFlag(argc, argv, "--csv");

  const auto img = BuildKernelImage(KernelConfig::After());
  AnalysisOptions plain;
  AnalysisOptions pinned;
  pinned.cache_pinning = true;
  WcetAnalyzer a0(*img, plain);
  WcetAnalyzer a1(*img, pinned);

  // Report how much actually fits into the locked quarter of the I-cache.
  const PinnedLines pins = SelectPinnedLines(*img, 32, 4096 / 32);
  if (!csv) {
    std::printf("Table 1: computed WCET with and without L1 cache pinning\n");
    std::printf("(%zu instruction lines + %zu data lines locked into 1/4 of each L1;\n",
                pins.ilines.size(), pins.dlines.size());
    std::printf(" the paper pins 118 instruction lines, 256 B of stack and key data)\n\n");
  }

  Table t({"Event handler", "Without pinning (us)", "With pinning (us)", "% gain"});
  for (const auto entry : {EntryPoint::kSyscall, EntryPoint::kUndefined,
                           EntryPoint::kPageFault, EntryPoint::kInterrupt}) {
    const Cycles w0 = a0.Analyze(entry).wcet;
    const Cycles w1 = a1.Analyze(entry).wcet;
    t.AddRow({EntryPointName(entry), Table::Us(clk.ToMicros(w0)), Table::Us(clk.ToMicros(w1)),
              Table::Pct(1.0 - static_cast<double>(w1) / static_cast<double>(w0))});
  }
  if (csv) {
    t.PrintCsv();
    return 0;
  }
  t.Print();
  std::printf("\npaper gains for comparison: 10%% / 30%% / 27%% / 46%%\n");
  return 0;
}
