// Table 2: WCET for each kernel entry point in the "before" and "after"
// kernels, computed (sound upper bound) and observed (best-effort worst-case
// recreation on the machine model), with the L2 cache disabled and enabled.
//
// Paper reference values (532 MHz i.MX31):
//   entry      before(L2 off)  after L2 off: computed/observed/ratio  after L2 on
//   syscall          3851 us         332.4 / 101.9 / 3.26             436.3 / 80.5 / 5.42
//   undefined         394.5 us        44.4 /  42.6 / 1.04              76.8 / 43.1 / 1.78
//   page fault        396.1 us        44.9 /  42.9 / 1.05              77.5 / 41.1 / 1.89
//   interrupt         143.1 us        23.2 /  17.7 / 1.31              44.8 / 14.3 / 3.13
// The absolute numbers differ (our substrate is a model, not the authors'
// board); the shape — before >> after, syscall dominating, ratios growing
// with L2 — is the reproduced result.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/engine/checkpoint.h"
#include "src/engine/job_pool.h"
#include "src/sim/latency.h"
#include "src/sim/report.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

// Best-effort worst-case recreation: polluted caches, max over |runs|
// executions (paper Section 5.4). One base System carries the scenario;
// every run measures a checkpoint fork instead of rebooting (and rebuilding
// the kernel image) from scratch. Forks replay cycle-identically to the
// system they were frozen from, so the observed maxima match the seed's
// fresh-boot-per-run loop bit for bit.
Cycles ObservedWorst(EntryPoint entry, const KernelConfig& kc, bool l2,
                     std::uint32_t runs = 16) {
  Cycles worst = 0;
  MeasureOptions mo;
  mo.runs = 1;
  switch (entry) {
    case EntryPoint::kSyscall: {
      System base(kc, EvalMachine(l2));
      const auto w = base.BuildWorstCaseIpc();
      const engine::SystemCheckpoint ck(base);
      for (std::uint32_t r = 0; r < runs; ++r) {
        const std::unique_ptr<System> sys = ck.Fork();
        worst = std::max(
            worst, MeasureEntry(
                       *sys, [&] { sys->kernel().Syscall(SysOp::kCall, w.ep_cptr, w.args); },
                       {}, mo));
      }
      break;
    }
    case EntryPoint::kPageFault:
    case EntryPoint::kUndefined: {
      System base(kc, EvalMachine(l2));
      EndpointObj* ep = nullptr;
      base.AddEndpoint(&ep);
      TcbObj* pager = base.AddThread(150);
      TcbObj* task = base.AddThread(10);
      Cap ep_cap;
      ep_cap.type = ObjType::kEndpoint;
      ep_cap.obj = ep->base;
      task->fault_handler_cptr = base.BuildDeepCapSpace(task, ep_cap, 32);
      base.kernel().DirectBlockOnRecv(pager, ep);
      base.kernel().DirectSetCurrent(task);
      const engine::SystemCheckpoint ck(base);
      for (std::uint32_t r = 0; r < runs; ++r) {
        const std::unique_ptr<System> sys = ck.Fork();
        worst = std::max(worst, MeasureEntry(
                                    *sys,
                                    [&] {
                                      if (entry == EntryPoint::kPageFault) {
                                        sys->kernel().RaisePageFault();
                                      } else {
                                        sys->kernel().RaiseUndefined();
                                      }
                                    },
                                    {}, mo));
      }
      break;
    }
    case EntryPoint::kInterrupt: {
      System base(kc, EvalMachine(l2));
      if (!l2) {
        base.AttachTraceSink(&bench::GlobalTrace());  // representative modelled run
      }
      EndpointObj* ep = nullptr;
      base.AddEndpoint(&ep);
      TcbObj* handler = base.AddThread(200);
      TcbObj* task = base.AddThread(10);
      base.kernel().DirectBindIrq(0, ep);
      base.kernel().DirectBlockOnRecv(handler, ep);
      base.kernel().DirectSetCurrent(task);
      const engine::SystemCheckpoint ck(base);
      for (std::uint32_t r = 0; r < runs; ++r) {
        const std::unique_ptr<System> sys = ck.Fork();
        worst = std::max(worst, MeasureIrqDelivery(*sys, mo));
      }
      break;
    }
  }
  return worst;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  const bool csv = flags.csv;
  const unsigned jobs = flags.jobs;

  if (!csv) {
    std::printf("Table 2: WCET per kernel entry point, before vs after the paper's changes\n");
    std::printf("(computed = sound bound from the static analysis; observed = best-effort\n");
    std::printf(" worst-case recreation, max of 16 polluted-cache runs; us @ 532 MHz)\n\n");
  }

  Table t({"Event handler", "Before;L2 off (us)", "After;L2 off comp", "obs", "ratio",
           "After;L2 on comp", "obs", "ratio"});

  const auto before = BuildKernelImage(KernelConfig::Before());
  const auto after = BuildKernelImage(KernelConfig::After());

  AnalysisOptions ao_off;
  AnalysisOptions ao_on;
  ao_on.l2_enabled = true;
  WcetAnalyzer before_off(*before, ao_off);
  WcetAnalyzer after_off(*after, ao_off);
  WcetAnalyzer after_on(*after, ao_on);

  Cycles longest_after_off = 0;
  Cycles irq_after_off = 0;
  Cycles longest_after_on = 0;
  Cycles irq_after_on = 0;

  // The per-entry pipeline — three LP solves plus 32 polluted-cache
  // measurement boots — is independent across entries: fan it out over the
  // job pool and collect in entry order, so the table is identical for any
  // --jobs value.
  const EntryPoint entries[] = {EntryPoint::kSyscall, EntryPoint::kUndefined,
                                EntryPoint::kPageFault, EntryPoint::kInterrupt};
  struct EntryRow {
    Cycles b_off = 0, a_off = 0, a_on = 0, o_off = 0, o_on = 0;
  };
  const auto rows = engine::ParallelMap<EntryRow>(4, jobs, [&](std::size_t i) {
    const EntryPoint entry = entries[i];
    EntryRow r;
    r.b_off = before_off.Analyze(entry).wcet;
    r.a_off = after_off.Analyze(entry).wcet;
    r.a_on = after_on.Analyze(entry).wcet;
    r.o_off = ObservedWorst(entry, KernelConfig::After(), false);
    r.o_on = ObservedWorst(entry, KernelConfig::After(), true);
    return r;
  });

  for (std::size_t i = 0; i < 4; ++i) {
    const EntryPoint entry = entries[i];
    const Cycles b_off = rows[i].b_off;
    const Cycles a_off = rows[i].a_off;
    const Cycles a_on = rows[i].a_on;
    const Cycles o_off = rows[i].o_off;
    const Cycles o_on = rows[i].o_on;

    if (entry == EntryPoint::kInterrupt) {
      irq_after_off = a_off;
      irq_after_on = a_on;
    } else {
      longest_after_off = std::max(longest_after_off, a_off);
      longest_after_on = std::max(longest_after_on, a_on);
    }

    t.AddRow({EntryPointName(entry), Table::Us(clk.ToMicros(b_off)),
              Table::Us(clk.ToMicros(a_off)), Table::Us(clk.ToMicros(o_off)),
              Table::Ratio(static_cast<double>(a_off) / static_cast<double>(o_off)),
              Table::Us(clk.ToMicros(a_on)), Table::Us(clk.ToMicros(o_on)),
              Table::Ratio(static_cast<double>(a_on) / static_cast<double>(o_on))});
  }
  if (csv) {
    t.PrintCsv();
    bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
    bench::ExportMetricsJson(flags.metrics_json);
    return 0;
  }
  t.Print();

  const Cycles b_sys = before_off.Analyze(EntryPoint::kSyscall).wcet;
  const Cycles a_sys = after_off.Analyze(EntryPoint::kSyscall).wcet;
  std::printf("\nimprovement factor on the system-call path (L2 off): %.1fx",
              static_cast<double>(b_sys) / static_cast<double>(a_sys));
  std::printf("  (paper: 11.6x)\n");

  const Cycles resp_off = longest_after_off + irq_after_off;
  const Cycles resp_on = longest_after_on + irq_after_on;
  std::printf("\nworst-case interrupt response (after kernel):\n");
  std::printf("  L2 off: %llu cycles = %.1f us  (paper: 356 us)\n",
              static_cast<unsigned long long>(resp_off), clk.ToMicros(resp_off));
  std::printf("  L2 on:  %llu cycles = %.1f us  (paper: 481 us)\n",
              static_cast<unsigned long long>(resp_on), clk.ToMicros(resp_on));
  bench::WriteTraceJson(bench::GlobalTrace(), flags.trace_json);
  bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
