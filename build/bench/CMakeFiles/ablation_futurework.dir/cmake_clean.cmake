file(REMOVE_RECURSE
  "CMakeFiles/ablation_futurework.dir/ablation_futurework.cc.o"
  "CMakeFiles/ablation_futurework.dir/ablation_futurework.cc.o.d"
  "ablation_futurework"
  "ablation_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
