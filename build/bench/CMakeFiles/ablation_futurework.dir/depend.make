# Empty dependencies file for ablation_futurework.
# This may be replaced when dependencies are built.
