file(REMOVE_RECURSE
  "CMakeFiles/ablation_preemption.dir/ablation_preemption.cc.o"
  "CMakeFiles/ablation_preemption.dir/ablation_preemption.cc.o.d"
  "ablation_preemption"
  "ablation_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
