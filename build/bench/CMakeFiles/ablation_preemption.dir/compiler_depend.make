# Empty compiler generated dependencies file for ablation_preemption.
# This may be replaced when dependencies are built.
