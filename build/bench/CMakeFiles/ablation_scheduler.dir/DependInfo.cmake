
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_scheduler.cc" "bench/CMakeFiles/ablation_scheduler.dir/ablation_scheduler.cc.o" "gcc" "bench/CMakeFiles/ablation_scheduler.dir/ablation_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pmk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wcet/CMakeFiles/pmk_wcet.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/pmk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/pmk_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pmk_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
