# Empty dependencies file for ablation_scheduler.
# This may be replaced when dependencies are built.
