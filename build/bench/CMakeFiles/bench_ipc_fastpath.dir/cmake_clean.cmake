file(REMOVE_RECURSE
  "CMakeFiles/bench_ipc_fastpath.dir/bench_ipc_fastpath.cc.o"
  "CMakeFiles/bench_ipc_fastpath.dir/bench_ipc_fastpath.cc.o.d"
  "bench_ipc_fastpath"
  "bench_ipc_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipc_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
