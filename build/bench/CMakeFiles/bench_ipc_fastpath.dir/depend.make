# Empty dependencies file for bench_ipc_fastpath.
# This may be replaced when dependencies are built.
