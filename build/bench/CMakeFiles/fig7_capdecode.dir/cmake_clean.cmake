file(REMOVE_RECURSE
  "CMakeFiles/fig7_capdecode.dir/fig7_capdecode.cc.o"
  "CMakeFiles/fig7_capdecode.dir/fig7_capdecode.cc.o.d"
  "fig7_capdecode"
  "fig7_capdecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_capdecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
