# Empty compiler generated dependencies file for fig7_capdecode.
# This may be replaced when dependencies are built.
