file(REMOVE_RECURSE
  "CMakeFiles/fig8_overestimation.dir/fig8_overestimation.cc.o"
  "CMakeFiles/fig8_overestimation.dir/fig8_overestimation.cc.o.d"
  "fig8_overestimation"
  "fig8_overestimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overestimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
