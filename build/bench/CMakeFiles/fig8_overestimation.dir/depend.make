# Empty dependencies file for fig8_overestimation.
# This may be replaced when dependencies are built.
