file(REMOVE_RECURSE
  "CMakeFiles/fig9_l2_bpred.dir/fig9_l2_bpred.cc.o"
  "CMakeFiles/fig9_l2_bpred.dir/fig9_l2_bpred.cc.o.d"
  "fig9_l2_bpred"
  "fig9_l2_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_l2_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
