# Empty dependencies file for fig9_l2_bpred.
# This may be replaced when dependencies are built.
