file(REMOVE_RECURSE
  "CMakeFiles/table1_cache_pinning.dir/table1_cache_pinning.cc.o"
  "CMakeFiles/table1_cache_pinning.dir/table1_cache_pinning.cc.o.d"
  "table1_cache_pinning"
  "table1_cache_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cache_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
