# Empty dependencies file for table1_cache_pinning.
# This may be replaced when dependencies are built.
