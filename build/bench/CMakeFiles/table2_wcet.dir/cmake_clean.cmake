file(REMOVE_RECURSE
  "CMakeFiles/table2_wcet.dir/table2_wcet.cc.o"
  "CMakeFiles/table2_wcet.dir/table2_wcet.cc.o.d"
  "table2_wcet"
  "table2_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
