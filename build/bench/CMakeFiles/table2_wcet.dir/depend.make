# Empty dependencies file for table2_wcet.
# This may be replaced when dependencies are built.
