file(REMOVE_RECURSE
  "CMakeFiles/badge_server.dir/badge_server.cpp.o"
  "CMakeFiles/badge_server.dir/badge_server.cpp.o.d"
  "badge_server"
  "badge_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/badge_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
