# Empty compiler generated dependencies file for badge_server.
# This may be replaced when dependencies are built.
