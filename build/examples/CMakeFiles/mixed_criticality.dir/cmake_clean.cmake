file(REMOVE_RECURSE
  "CMakeFiles/mixed_criticality.dir/mixed_criticality.cpp.o"
  "CMakeFiles/mixed_criticality.dir/mixed_criticality.cpp.o.d"
  "mixed_criticality"
  "mixed_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
