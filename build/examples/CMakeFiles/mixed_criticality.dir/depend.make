# Empty dependencies file for mixed_criticality.
# This may be replaced when dependencies are built.
