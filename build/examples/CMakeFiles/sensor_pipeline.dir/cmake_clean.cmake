file(REMOVE_RECURSE
  "CMakeFiles/sensor_pipeline.dir/sensor_pipeline.cpp.o"
  "CMakeFiles/sensor_pipeline.dir/sensor_pipeline.cpp.o.d"
  "sensor_pipeline"
  "sensor_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
