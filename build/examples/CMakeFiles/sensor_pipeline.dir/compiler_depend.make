# Empty compiler generated dependencies file for sensor_pipeline.
# This may be replaced when dependencies are built.
