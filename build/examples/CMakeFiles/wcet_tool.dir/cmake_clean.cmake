file(REMOVE_RECURSE
  "CMakeFiles/wcet_tool.dir/wcet_tool.cpp.o"
  "CMakeFiles/wcet_tool.dir/wcet_tool.cpp.o.d"
  "wcet_tool"
  "wcet_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
