# Empty dependencies file for wcet_tool.
# This may be replaced when dependencies are built.
