
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/branch_predictor.cc" "src/hw/CMakeFiles/pmk_hw.dir/branch_predictor.cc.o" "gcc" "src/hw/CMakeFiles/pmk_hw.dir/branch_predictor.cc.o.d"
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/pmk_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/pmk_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/irq.cc" "src/hw/CMakeFiles/pmk_hw.dir/irq.cc.o" "gcc" "src/hw/CMakeFiles/pmk_hw.dir/irq.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/pmk_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/pmk_hw.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
