file(REMOVE_RECURSE
  "CMakeFiles/pmk_hw.dir/branch_predictor.cc.o"
  "CMakeFiles/pmk_hw.dir/branch_predictor.cc.o.d"
  "CMakeFiles/pmk_hw.dir/cache.cc.o"
  "CMakeFiles/pmk_hw.dir/cache.cc.o.d"
  "CMakeFiles/pmk_hw.dir/irq.cc.o"
  "CMakeFiles/pmk_hw.dir/irq.cc.o.d"
  "CMakeFiles/pmk_hw.dir/machine.cc.o"
  "CMakeFiles/pmk_hw.dir/machine.cc.o.d"
  "libpmk_hw.a"
  "libpmk_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmk_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
