file(REMOVE_RECURSE
  "libpmk_hw.a"
)
