# Empty dependencies file for pmk_hw.
# This may be replaced when dependencies are built.
