
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/cap.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/cap.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/cap.cc.o.d"
  "/root/repo/src/kernel/image.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/image.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/image.cc.o.d"
  "/root/repo/src/kernel/invariants.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/invariants.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/invariants.cc.o.d"
  "/root/repo/src/kernel/ipc.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/ipc.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/ipc.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/objects.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/objects.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/objects.cc.o.d"
  "/root/repo/src/kernel/objops.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/objops.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/objops.cc.o.d"
  "/root/repo/src/kernel/sched.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/sched.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/sched.cc.o.d"
  "/root/repo/src/kernel/vspace.cc" "src/kernel/CMakeFiles/pmk_kernel.dir/vspace.cc.o" "gcc" "src/kernel/CMakeFiles/pmk_kernel.dir/vspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kir/CMakeFiles/pmk_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pmk_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
