file(REMOVE_RECURSE
  "CMakeFiles/pmk_kernel.dir/cap.cc.o"
  "CMakeFiles/pmk_kernel.dir/cap.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/image.cc.o"
  "CMakeFiles/pmk_kernel.dir/image.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/invariants.cc.o"
  "CMakeFiles/pmk_kernel.dir/invariants.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/ipc.cc.o"
  "CMakeFiles/pmk_kernel.dir/ipc.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/kernel.cc.o"
  "CMakeFiles/pmk_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/objects.cc.o"
  "CMakeFiles/pmk_kernel.dir/objects.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/objops.cc.o"
  "CMakeFiles/pmk_kernel.dir/objops.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/sched.cc.o"
  "CMakeFiles/pmk_kernel.dir/sched.cc.o.d"
  "CMakeFiles/pmk_kernel.dir/vspace.cc.o"
  "CMakeFiles/pmk_kernel.dir/vspace.cc.o.d"
  "libpmk_kernel.a"
  "libpmk_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmk_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
