file(REMOVE_RECURSE
  "libpmk_kernel.a"
)
