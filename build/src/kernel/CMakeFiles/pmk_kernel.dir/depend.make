# Empty dependencies file for pmk_kernel.
# This may be replaced when dependencies are built.
