
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kir/executor.cc" "src/kir/CMakeFiles/pmk_kir.dir/executor.cc.o" "gcc" "src/kir/CMakeFiles/pmk_kir.dir/executor.cc.o.d"
  "/root/repo/src/kir/program.cc" "src/kir/CMakeFiles/pmk_kir.dir/program.cc.o" "gcc" "src/kir/CMakeFiles/pmk_kir.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pmk_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
