file(REMOVE_RECURSE
  "CMakeFiles/pmk_kir.dir/executor.cc.o"
  "CMakeFiles/pmk_kir.dir/executor.cc.o.d"
  "CMakeFiles/pmk_kir.dir/program.cc.o"
  "CMakeFiles/pmk_kir.dir/program.cc.o.d"
  "libpmk_kir.a"
  "libpmk_kir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmk_kir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
