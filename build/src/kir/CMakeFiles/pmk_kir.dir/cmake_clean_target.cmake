file(REMOVE_RECURSE
  "libpmk_kir.a"
)
