# Empty compiler generated dependencies file for pmk_kir.
# This may be replaced when dependencies are built.
