
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/latency.cc" "src/sim/CMakeFiles/pmk_sim.dir/latency.cc.o" "gcc" "src/sim/CMakeFiles/pmk_sim.dir/latency.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/pmk_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/pmk_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/pmk_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/pmk_sim.dir/runner.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/pmk_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/pmk_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/pmk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/pmk_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pmk_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
