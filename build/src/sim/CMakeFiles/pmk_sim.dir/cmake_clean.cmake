file(REMOVE_RECURSE
  "CMakeFiles/pmk_sim.dir/latency.cc.o"
  "CMakeFiles/pmk_sim.dir/latency.cc.o.d"
  "CMakeFiles/pmk_sim.dir/report.cc.o"
  "CMakeFiles/pmk_sim.dir/report.cc.o.d"
  "CMakeFiles/pmk_sim.dir/runner.cc.o"
  "CMakeFiles/pmk_sim.dir/runner.cc.o.d"
  "CMakeFiles/pmk_sim.dir/workload.cc.o"
  "CMakeFiles/pmk_sim.dir/workload.cc.o.d"
  "libpmk_sim.a"
  "libpmk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
