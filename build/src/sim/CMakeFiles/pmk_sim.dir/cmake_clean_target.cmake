file(REMOVE_RECURSE
  "libpmk_sim.a"
)
