# Empty compiler generated dependencies file for pmk_sim.
# This may be replaced when dependencies are built.
