
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wcet/analysis.cc" "src/wcet/CMakeFiles/pmk_wcet.dir/analysis.cc.o" "gcc" "src/wcet/CMakeFiles/pmk_wcet.dir/analysis.cc.o.d"
  "/root/repo/src/wcet/cfg.cc" "src/wcet/CMakeFiles/pmk_wcet.dir/cfg.cc.o" "gcc" "src/wcet/CMakeFiles/pmk_wcet.dir/cfg.cc.o.d"
  "/root/repo/src/wcet/cost.cc" "src/wcet/CMakeFiles/pmk_wcet.dir/cost.cc.o" "gcc" "src/wcet/CMakeFiles/pmk_wcet.dir/cost.cc.o.d"
  "/root/repo/src/wcet/ilp.cc" "src/wcet/CMakeFiles/pmk_wcet.dir/ilp.cc.o" "gcc" "src/wcet/CMakeFiles/pmk_wcet.dir/ilp.cc.o.d"
  "/root/repo/src/wcet/ipet.cc" "src/wcet/CMakeFiles/pmk_wcet.dir/ipet.cc.o" "gcc" "src/wcet/CMakeFiles/pmk_wcet.dir/ipet.cc.o.d"
  "/root/repo/src/wcet/loopbound.cc" "src/wcet/CMakeFiles/pmk_wcet.dir/loopbound.cc.o" "gcc" "src/wcet/CMakeFiles/pmk_wcet.dir/loopbound.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/pmk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/pmk_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pmk_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
