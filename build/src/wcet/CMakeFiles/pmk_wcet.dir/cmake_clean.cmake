file(REMOVE_RECURSE
  "CMakeFiles/pmk_wcet.dir/analysis.cc.o"
  "CMakeFiles/pmk_wcet.dir/analysis.cc.o.d"
  "CMakeFiles/pmk_wcet.dir/cfg.cc.o"
  "CMakeFiles/pmk_wcet.dir/cfg.cc.o.d"
  "CMakeFiles/pmk_wcet.dir/cost.cc.o"
  "CMakeFiles/pmk_wcet.dir/cost.cc.o.d"
  "CMakeFiles/pmk_wcet.dir/ilp.cc.o"
  "CMakeFiles/pmk_wcet.dir/ilp.cc.o.d"
  "CMakeFiles/pmk_wcet.dir/ipet.cc.o"
  "CMakeFiles/pmk_wcet.dir/ipet.cc.o.d"
  "CMakeFiles/pmk_wcet.dir/loopbound.cc.o"
  "CMakeFiles/pmk_wcet.dir/loopbound.cc.o.d"
  "libpmk_wcet.a"
  "libpmk_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmk_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
