file(REMOVE_RECURSE
  "libpmk_wcet.a"
)
