# Empty compiler generated dependencies file for pmk_wcet.
# This may be replaced when dependencies are built.
