file(REMOVE_RECURSE
  "CMakeFiles/config_sweep_test.dir/config_sweep_test.cc.o"
  "CMakeFiles/config_sweep_test.dir/config_sweep_test.cc.o.d"
  "config_sweep_test"
  "config_sweep_test.pdb"
  "config_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
