# Empty dependencies file for config_sweep_test.
# This may be replaced when dependencies are built.
