file(REMOVE_RECURSE
  "CMakeFiles/hw_test.dir/hw_test.cc.o"
  "CMakeFiles/hw_test.dir/hw_test.cc.o.d"
  "hw_test"
  "hw_test.pdb"
  "hw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
