file(REMOVE_RECURSE
  "CMakeFiles/kernel_extensions_test.dir/kernel_extensions_test.cc.o"
  "CMakeFiles/kernel_extensions_test.dir/kernel_extensions_test.cc.o.d"
  "kernel_extensions_test"
  "kernel_extensions_test.pdb"
  "kernel_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
