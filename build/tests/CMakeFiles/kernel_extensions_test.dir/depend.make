# Empty dependencies file for kernel_extensions_test.
# This may be replaced when dependencies are built.
