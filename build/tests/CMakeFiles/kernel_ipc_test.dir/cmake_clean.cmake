file(REMOVE_RECURSE
  "CMakeFiles/kernel_ipc_test.dir/kernel_ipc_test.cc.o"
  "CMakeFiles/kernel_ipc_test.dir/kernel_ipc_test.cc.o.d"
  "kernel_ipc_test"
  "kernel_ipc_test.pdb"
  "kernel_ipc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_ipc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
