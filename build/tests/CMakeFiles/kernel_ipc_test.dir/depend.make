# Empty dependencies file for kernel_ipc_test.
# This may be replaced when dependencies are built.
