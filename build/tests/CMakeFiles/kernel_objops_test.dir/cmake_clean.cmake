file(REMOVE_RECURSE
  "CMakeFiles/kernel_objops_test.dir/kernel_objops_test.cc.o"
  "CMakeFiles/kernel_objops_test.dir/kernel_objops_test.cc.o.d"
  "kernel_objops_test"
  "kernel_objops_test.pdb"
  "kernel_objops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_objops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
