file(REMOVE_RECURSE
  "CMakeFiles/kernel_sched_test.dir/kernel_sched_test.cc.o"
  "CMakeFiles/kernel_sched_test.dir/kernel_sched_test.cc.o.d"
  "kernel_sched_test"
  "kernel_sched_test.pdb"
  "kernel_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
