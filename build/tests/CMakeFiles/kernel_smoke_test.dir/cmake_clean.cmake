file(REMOVE_RECURSE
  "CMakeFiles/kernel_smoke_test.dir/kernel_smoke_test.cc.o"
  "CMakeFiles/kernel_smoke_test.dir/kernel_smoke_test.cc.o.d"
  "kernel_smoke_test"
  "kernel_smoke_test.pdb"
  "kernel_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
