# Empty dependencies file for kernel_smoke_test.
# This may be replaced when dependencies are built.
