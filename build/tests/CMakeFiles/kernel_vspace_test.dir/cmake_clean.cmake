file(REMOVE_RECURSE
  "CMakeFiles/kernel_vspace_test.dir/kernel_vspace_test.cc.o"
  "CMakeFiles/kernel_vspace_test.dir/kernel_vspace_test.cc.o.d"
  "kernel_vspace_test"
  "kernel_vspace_test.pdb"
  "kernel_vspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_vspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
