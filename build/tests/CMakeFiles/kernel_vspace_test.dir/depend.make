# Empty dependencies file for kernel_vspace_test.
# This may be replaced when dependencies are built.
