file(REMOVE_RECURSE
  "CMakeFiles/kir_test.dir/kir_test.cc.o"
  "CMakeFiles/kir_test.dir/kir_test.cc.o.d"
  "kir_test"
  "kir_test.pdb"
  "kir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
