# Empty dependencies file for kir_test.
# This may be replaced when dependencies are built.
