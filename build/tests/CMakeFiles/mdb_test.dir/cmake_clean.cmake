file(REMOVE_RECURSE
  "CMakeFiles/mdb_test.dir/mdb_test.cc.o"
  "CMakeFiles/mdb_test.dir/mdb_test.cc.o.d"
  "mdb_test"
  "mdb_test.pdb"
  "mdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
