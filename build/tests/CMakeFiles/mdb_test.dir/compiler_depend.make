# Empty compiler generated dependencies file for mdb_test.
# This may be replaced when dependencies are built.
