file(REMOVE_RECURSE
  "CMakeFiles/wcet_pipeline_test.dir/wcet_pipeline_test.cc.o"
  "CMakeFiles/wcet_pipeline_test.dir/wcet_pipeline_test.cc.o.d"
  "wcet_pipeline_test"
  "wcet_pipeline_test.pdb"
  "wcet_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
