# Empty dependencies file for wcet_pipeline_test.
# This may be replaced when dependencies are built.
