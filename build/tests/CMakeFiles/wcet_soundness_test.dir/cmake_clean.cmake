file(REMOVE_RECURSE
  "CMakeFiles/wcet_soundness_test.dir/wcet_soundness_test.cc.o"
  "CMakeFiles/wcet_soundness_test.dir/wcet_soundness_test.cc.o.d"
  "wcet_soundness_test"
  "wcet_soundness_test.pdb"
  "wcet_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
