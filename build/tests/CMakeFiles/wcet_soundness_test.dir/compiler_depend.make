# Empty compiler generated dependencies file for wcet_soundness_test.
# This may be replaced when dependencies are built.
