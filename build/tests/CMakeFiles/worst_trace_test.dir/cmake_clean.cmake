file(REMOVE_RECURSE
  "CMakeFiles/worst_trace_test.dir/worst_trace_test.cc.o"
  "CMakeFiles/worst_trace_test.dir/worst_trace_test.cc.o.d"
  "worst_trace_test"
  "worst_trace_test.pdb"
  "worst_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worst_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
