# Empty dependencies file for worst_trace_test.
# This may be replaced when dependencies are built.
