# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/config_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/mdb_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_ipc_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_objops_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_vspace_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_sched_test[1]_include.cmake")
include("/root/repo/build/tests/kir_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/sim_util_test[1]_include.cmake")
include("/root/repo/build/tests/wcet_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/worst_trace_test[1]_include.cmake")
include("/root/repo/build/tests/wcet_soundness_test[1]_include.cmake")
