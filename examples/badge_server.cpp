// badge_server — badged endpoints as authenticated client sessions
// (Section 3.4's motivating use case).
//
// A server mints one badged capability per client, serves requests while
// verifying each sender's badge, then revokes one client's badge while other
// clients keep IPC in flight. The revocation aborts exactly the matching
// pending requests, preempts under a periodic timer without hurting
// interrupt response, and afterwards the badge can be re-issued safely.
//
//   $ badge_server

#include <cstdio>

#include "src/load/fleet.h"
#include "src/sim/latency.h"
#include "src/sim/workload.h"

int main() {
  using namespace pmk;
  const ClockSpec clk;

  System sys(KernelConfig::After(), EvalMachine(false));

  // Endpoint, server thread, kernel-minted badges, client threads — the
  // load::ClientFleet kernel-mint path is this example's historical boot
  // sequence, so the generator builds the world for us.
  load::FleetSpec spec;
  spec.clients = 3;
  spec.servers = 1;
  spec.client_prio = 50;
  spec.server_prio = 100;
  spec.badge_base = 100;
  spec.mint_via_kernel = true;
  spec.first_mint_slot = 30;
  spec.resume_threads = false;  // this example drives scheduling by hand
  spec.on_mint = [](std::uint32_t badge, std::uint32_t client, std::uint32_t slot) {
    std::printf("minted badge %u for client %u at slot %u\n", badge, client, slot);
  };
  const load::Fleet fleet = load::BuildClientFleet(sys, spec);

  EndpointObj* ep = fleet.endpoints[0];
  const std::uint32_t ep_cptr = fleet.ep_cptrs[0];
  TcbObj* server = fleet.servers[0];
  const std::uint32_t root_cptr = fleet.root_cptr;
  const std::vector<std::uint32_t>& client_cptr = fleet.client_cptrs;
  const std::vector<TcbObj*>& clients = fleet.clients;
  for (int round = 0; round < 3; ++round) {
    const std::uint32_t c = static_cast<std::uint32_t>(round) % 3;
    if (server->blocked_on != ep->base) {
      sys.kernel().DirectBlockOnRecv(server, ep);
    }
    sys.kernel().DirectSetCurrent(clients[c]);
    SyscallArgs call;
    call.msg_len = 2;
    clients[c]->mrs[0] = 0xC0DE + static_cast<std::uint64_t>(round);
    sys.kernel().Syscall(SysOp::kCall, client_cptr[c], call);
    // The server (higher priority) was switched to directly.
    std::printf("server got request 0x%llx from badge %llu\n",
                static_cast<unsigned long long>(server->mrs[0]),
                static_cast<unsigned long long>(server->recv_badge));
    // Reply and wait for the next request.
    sys.kernel().Syscall(SysOp::kReplyRecv, ep_cptr, SyscallArgs{});
  }

  // Now: client 1 misbehaves. Revoke its badge while a pile of requests
  // (from client 1 AND the others) is already queued. Pull the server off
  // the receive queue first so the senders pile up.
  sys.kernel().DirectUnblock(server);
  auto flood = sys.QueueSenders(ep, 60, {101, 100, 102});  // mixed badges
  std::printf("\n60 requests queued (badges 101/100/102 interleaved)\n");

  sys.kernel().DirectSetCurrent(server);
  SyscallArgs revoke;
  revoke.label = InvLabel::kCNodeRevoke;
  revoke.arg0 = client_cptr[1];  // badge 101
  const LongOpResult res =
      RunLongOpWithTimer(sys, SysOp::kCall, root_cptr, revoke, /*timer_period=*/4000);
  std::printf("revoked badge 101: %u preemptions, worst interrupt response %.1f us\n",
              res.preemptions, clk.ToMicros(res.max_irq_latency));

  std::uint32_t aborted = 0;
  std::uint32_t untouched = 0;
  for (TcbObj* t : flood) {
    if (t->state == ThreadState::kRestart && t->last_error == KError::kAborted) {
      aborted++;
    } else if (t->state == ThreadState::kBlockedOnSend) {
      untouched++;
    }
  }
  std::printf("aborted %u in-flight requests with badge 101; %u other-badge requests"
              " untouched\n", aborted, untouched);
  sys.kernel().CheckInvariants();

  // The badge can now be re-issued with full authenticity guarantees.
  SyscallArgs remint;
  remint.label = InvLabel::kCNodeMint;
  remint.arg0 = ep_cptr;
  remint.dest_index = 35;
  remint.badge = 101;
  sys.kernel().Syscall(SysOp::kCall, root_cptr, remint);
  std::printf("badge 101 re-issued at slot 35 (error=%s)\n",
              KErrorName(server->last_error));
  sys.kernel().CheckInvariants();
  std::printf("kernel invariants: OK\n");
  return 0;
}
