// Fault-injection campaign driver.
//
// Runs the seeded adversarial campaign (exhaustive preemption-point sweeps,
// random injection schedules, IRQ storms, hostile syscall inputs, spurious
// acks) and prints a per-mode summary. Also demonstrates the shrinker: with
// --demo-shrink a deliberately sabotaged run (an injection callback corrupts
// an endpoint queue length) produces a failing schedule that is shrunk to a
// minimal reproducer.
//
// Usage:
//   fault_campaign [--seed=N] [--csv[=path]] [--quick] [--demo-shrink]
//
// The report for a fixed seed is byte-identical across runs: pipe --csv
// output to a file and diff it to audit reproducibility.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/fault/campaign.h"
#include "src/sim/report.h"

namespace pmk {
namespace {

int DemoShrink() {
  // Sabotage: on every injection, corrupt the endpoint queue-length counter
  // of the first endpoint we can find through a sender. The invariant audit
  // must catch it, and the shrinker must reduce a noisy 6-action schedule to
  // a single action.
  const OpFactory factory = MakeEpDeleteCase();
  const auto sabotage = [](System& sys) {
    for (const auto& [base, obj] : sys.kernel().objects().objects()) {
      if (obj->type == ObjType::kEndpoint) {
        static_cast<EndpointObj*>(obj.get())->q_len += 1;
        return;
      }
    }
  };

  InjectionPlan noisy;
  for (std::uint64_t i = 0; i < 6; ++i) {
    InjectionAction a;
    a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
    a.at = 3 + 5 * i;
    a.line = 4 + static_cast<std::uint32_t>(i);
    noisy.actions.push_back(a);
  }

  SweepOptions opts;
  const RunRecord failing = RunWithPlan(factory, noisy, opts, sabotage);
  std::printf("sabotaged run: plan=%s -> %s\n", failing.plan.c_str(),
              failing.ok() ? "PASSED (unexpected!)" : failing.detail.c_str());
  if (failing.ok()) {
    return 1;
  }
  const InjectionPlan minimal = ShrinkPlan(factory, noisy, opts, sabotage);
  std::printf("shrunk %zu actions -> %zu: %s\n", noisy.actions.size(), minimal.actions.size(),
              minimal.ToString().c_str());
  const RunRecord re = RunWithPlan(factory, minimal, opts, sabotage);
  std::printf("minimal reproducer still fails: %s\n", re.ok() ? "NO (bug!)" : "yes");
  return re.ok() ? 1 : 0;
}

int Main(int argc, char** argv) {
  CampaignConfig cfg;
  const std::string seed_str = FlagValue(argc, argv, "--seed=");
  if (!seed_str.empty()) {
    cfg.seed = std::stoull(seed_str);
  }
  if (HasFlag(argc, argv, "--quick")) {
    cfg.random_runs = 8;
    cfg.storm_runs = 2;
    cfg.hostile_runs = 32;
    cfg.spurious_runs = 4;
  }
  if (HasFlag(argc, argv, "--demo-shrink")) {
    return DemoShrink();
  }

  const CampaignReport report = RunCampaign(cfg);

  const std::string csv_path = FlagValue(argc, argv, "--csv=");
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    report.WriteCsv(f);
  } else if (HasFlag(argc, argv, "--csv")) {
    report.WriteCsv(std::cout);
    return report.failures() == 0 ? 0 : 1;
  }

  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_mode;  // mode -> {runs, fail}
  for (const ScenarioResult& r : report.results) {
    auto& [runs, fails] = by_mode[r.mode];
    ++runs;
    if (!r.ok) {
      ++fails;
    }
  }
  std::printf("%s\n", report.Summary().c_str());
  for (const auto& [mode, counts] : by_mode) {
    std::printf("  %-11s %6llu scenarios, %llu failures\n", mode.c_str(),
                static_cast<unsigned long long>(counts.first),
                static_cast<unsigned long long>(counts.second));
  }
  for (const ScenarioResult& r : report.results) {
    if (!r.ok) {
      std::printf("  FAIL [%s/%s] plan=%s: %s\n", r.mode.c_str(), r.op.c_str(), r.plan.c_str(),
                  r.detail.c_str());
    }
  }
  return report.failures() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) { return pmk::Main(argc, argv); }
