// Fault-injection campaign driver.
//
// Runs the seeded adversarial campaign (exhaustive preemption-point sweeps,
// random injection schedules, IRQ storms, hostile syscall inputs, spurious
// acks) and prints a per-mode summary. Also demonstrates the shrinker: with
// --demo-shrink a deliberately sabotaged run (an injection callback corrupts
// an endpoint queue length) produces a failing schedule that is shrunk to a
// minimal reproducer.
//
// Usage:
//   fault_campaign [--seed=N] [--jobs=N] [--csv[=path]] [--quick]
//                  [--demo-shrink] [--bench-parallel[=path]]
//                  [--metrics-json=F] [--progress] [--no-telemetry]
//                  [--shards=N] [--journal=DIR] [--resume]
//                  [--shard-transport=fork|serial] [--shard-timeout-ms=N]
//                  [--shard-max-attempts=N] [--poison=ORDINAL]
//                  [--chaos-kill-shard=N] [--chaos-kill-after=N]
//
// Sharding: --shards=N forks N supervised worker processes (engine shard
// supervisor: watchdog timeouts, bounded retries with backoff, quarantine of
// poison runs). --journal=DIR persists each completed run to a crash-safe
// journal; with --resume an existing journal is reused so a campaign killed
// mid-flight re-executes only missing runs (without --resume the journal is
// cleared first). The CSV on stdout is byte-identical for any --shards value
// and across resumes; supervision stats go to stderr. The chaos/poison flags
// are CI hooks that deliberately kill a worker or abort one run.
//
// The human-readable report ends with the tail observatory: per-scenario
// interrupt-response percentiles against the WCET analyzer's
// InterruptResponseBound for the campaign's kernel. An enforced row whose
// observed max exceeds the bound fails the run (nonzero exit).
//
// The report for a fixed seed is byte-identical across runs AND across
// --jobs values: pipe --csv output to a file and diff it to audit
// reproducibility (CI diffs --jobs=1 against --jobs=4).
//
// --bench-parallel measures the campaign engine: for each exhaustive sweep
// scenario it times the boot-per-run serial baseline against the
// checkpoint-fork engine at --jobs workers, verifies the outputs are
// identical, and writes BENCH_parallel.json.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/engine/journal.h"

#include "bench/bench_util.h"
#include "src/engine/parallel_bench.h"
#include "src/fault/campaign.h"
#include "src/obs/tail_observatory.h"
#include "src/sim/report.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

int DemoShrink() {
  // Sabotage: on every injection, corrupt the endpoint queue-length counter
  // of the first endpoint we can find through a sender. The invariant audit
  // must catch it, and the shrinker must reduce a noisy 6-action schedule to
  // a single action.
  const OpFactory factory = MakeEpDeleteCase();
  const auto sabotage = [](System& sys) {
    for (const auto& [base, obj] : sys.kernel().objects().objects()) {
      if (obj->type == ObjType::kEndpoint) {
        static_cast<EndpointObj*>(obj.get())->q_len += 1;
        return;
      }
    }
  };

  InjectionPlan noisy;
  for (std::uint64_t i = 0; i < 6; ++i) {
    InjectionAction a;
    a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
    a.at = 3 + 5 * i;
    a.line = 4 + static_cast<std::uint32_t>(i);
    noisy.actions.push_back(a);
  }

  SweepOptions opts;
  const RunRecord failing = RunWithPlan(factory, noisy, opts, sabotage);
  std::printf("sabotaged run: plan=%s -> %s\n", failing.plan.c_str(),
              failing.ok() ? "PASSED (unexpected!)" : failing.detail.c_str());
  if (failing.ok()) {
    return 1;
  }
  const InjectionPlan minimal = ShrinkPlan(factory, noisy, opts, sabotage);
  std::printf("shrunk %zu actions -> %zu: %s\n", noisy.actions.size(), minimal.actions.size(),
              minimal.ToString().c_str());
  const RunRecord re = RunWithPlan(factory, minimal, opts, sabotage);
  std::printf("minimal reproducer still fails: %s\n", re.ok() ? "NO (bug!)" : "yes");
  return re.ok() ? 1 : 0;
}

// One shard of a large campaign: a system with substantial resident state
// (30 endpoints with 50 queued senders each) whose common prefix every run
// shares, plus a victim endpoint whose deletion is the swept operation. This
// is the configuration the checkpoint engine exists for — boot builds ~1500
// threads once, each sweep run forks it instead of rebuilding.
OpFactory MakeShardBootCase() {
  return [] {
    OpInstance inst;
    inst.sys = std::make_unique<System>(KernelConfig::After(), EvalMachine(false));
    System& sys = *inst.sys;
    for (int e = 0; e < 30; ++e) {
      EndpointObj* ep = nullptr;
      sys.AddEndpoint(&ep);
      sys.QueueSenders(ep, 50, {1, 2, 3});
    }
    EndpointObj* victim = nullptr;
    const std::uint32_t victim_cptr = sys.AddEndpoint(&victim);
    sys.QueueSenders(victim, 48, {7});
    inst.actor = sys.AddThread(50);
    sys.kernel().DirectSetCurrent(inst.actor);

    Cap root_cap;
    root_cap.type = ObjType::kCNode;
    root_cap.obj = sys.root()->base;
    inst.op = SysOp::kCall;
    inst.cptr = sys.AddCap(root_cap);
    inst.args.label = InvLabel::kCNodeDelete;
    inst.args.arg0 = victim_cptr & 0xFF;

    const Addr victim_base = victim->base;
    inst.check_done = [victim_base](System& s) {
      if (s.kernel().objects().Get<EndpointObj>(victim_base) != nullptr) {
        throw std::logic_error("shard-boot: victim endpoint survived deletion");
      }
    };
    return inst;
  };
}

// Everything a sweep observed, in a stable text form, for byte-identity
// comparison between the baseline and engine paths.
std::string SweepSignature(const SweepResult& res) {
  std::ostringstream os;
  const auto rec = [&os](const RunRecord& r) {
    os << r.plan << '|' << r.completed << r.invariant_violation << r.exec_error << r.kernel_error
       << r.restart_overrun << '|' << r.restarts << '|' << r.actions_fired << '|'
       << r.lines_asserted << '|' << r.preempt_points << '|' << r.max_irq_latency << '|'
       << r.detail << '\n';
  };
  os << res.preempt_points << '\n';
  rec(res.dry_run);
  for (const RunRecord& r : res.runs) {
    rec(r);
  }
  return os.str();
}

int BenchParallel(unsigned jobs, const std::string& path) {
  struct BenchCase {
    std::string name;
    OpFactory factory;
  };
  std::vector<BenchCase> cases;
  for (auto& [name, factory] : CanonicalOps()) {
    cases.push_back({name, factory});
  }
  cases.push_back({"shard-boot", MakeShardBootCase()});

  std::vector<engine::ParallelBenchResult> rows;
  engine::ParallelBenchResult total;
  total.name = "exhaustive-sweep/total";
  total.jobs = jobs;
  total.identical = true;
  for (const BenchCase& c : cases) {
    SweepOptions baseline_opts;  // boot-per-run, serial
    SweepOptions engine_opts;
    engine_opts.checkpoint = true;
    engine_opts.jobs = jobs;

    SweepResult baseline_res;
    SweepResult engine_res;
    engine::ParallelBenchResult r;
    r.name = "exhaustive-sweep/" + c.name;
    r.jobs = jobs;
    r.baseline_seconds =
        engine::TimeSeconds([&] { baseline_res = ExhaustiveIrqSweep(c.factory, baseline_opts); });
    r.engine_seconds =
        engine::TimeSeconds([&] { engine_res = ExhaustiveIrqSweep(c.factory, engine_opts); });
    r.runs = 1 + baseline_res.runs.size();
    r.identical = SweepSignature(baseline_res) == SweepSignature(engine_res) &&
                  baseline_res.AllOk() && engine_res.AllOk();
    std::printf("  %-28s %4zu runs: baseline %.3fs, engine %.3fs -> %.2fx%s\n", r.name.c_str(),
                r.runs, r.baseline_seconds, r.engine_seconds, r.Speedup(),
                r.identical ? "" : "  OUTPUT MISMATCH");
    total.runs += r.runs;
    total.baseline_seconds += r.baseline_seconds;
    total.engine_seconds += r.engine_seconds;
    total.identical = total.identical && r.identical;
    rows.push_back(std::move(r));
  }
  rows.push_back(total);
  std::printf("  %-28s %4zu runs: baseline %.3fs, engine %.3fs -> %.2fx\n", total.name.c_str(),
              total.runs, total.baseline_seconds, total.engine_seconds, total.Speedup());

  std::ofstream f(path);
  engine::WriteParallelBenchJson(f, rows);
  std::printf("wrote %s\n", path.c_str());
  return total.identical ? 0 : 1;
}

int Main(int argc, char** argv) {
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  CampaignConfig cfg;
  const std::string seed_str = FlagValue(argc, argv, "--seed=");
  if (!seed_str.empty()) {
    cfg.seed = std::stoull(seed_str);
  }
  const std::string jobs_str = FlagValue(argc, argv, "--jobs=");
  if (!jobs_str.empty()) {
    cfg.jobs = flags.jobs;
  }
  if (HasFlag(argc, argv, "--bench-parallel") || !FlagValue(argc, argv, "--bench-parallel=").empty()) {
    std::string path = FlagValue(argc, argv, "--bench-parallel=");
    if (path.empty()) {
      path = "BENCH_parallel.json";
    }
    return BenchParallel(cfg.jobs > 1 ? cfg.jobs : 4, path);
  }
  if (HasFlag(argc, argv, "--quick")) {
    cfg.random_runs = 8;
    cfg.storm_runs = 2;
    cfg.hostile_runs = 32;
    cfg.spurious_runs = 4;
  }
  if (HasFlag(argc, argv, "--demo-shrink")) {
    return DemoShrink();
  }

  const std::string shards_str = FlagValue(argc, argv, "--shards=");
  if (!shards_str.empty()) {
    cfg.shards = static_cast<std::uint32_t>(std::stoul(shards_str));
  }
  cfg.journal_dir = FlagValue(argc, argv, "--journal=");
  if (!cfg.journal_dir.empty() && !HasFlag(argc, argv, "--resume")) {
    // Fresh campaign: drop any previous journal so old results cannot be
    // replayed. --resume keeps it and re-executes only missing runs.
    std::error_code ec;
    std::filesystem::remove(
        std::filesystem::path(cfg.journal_dir) / engine::ResultJournal::kFileName, ec);
  }
  if (FlagValue(argc, argv, "--shard-transport=") == "serial") {
    cfg.shard_serial_images = true;
  }
  const std::string timeout_str = FlagValue(argc, argv, "--shard-timeout-ms=");
  if (!timeout_str.empty()) {
    cfg.shard_timeout_ms = static_cast<std::uint32_t>(std::stoul(timeout_str));
  }
  const std::string attempts_str = FlagValue(argc, argv, "--shard-max-attempts=");
  if (!attempts_str.empty()) {
    cfg.shard_max_attempts = static_cast<std::uint32_t>(std::stoul(attempts_str));
  }
  const std::string poison_str = FlagValue(argc, argv, "--poison=");
  if (!poison_str.empty()) {
    cfg.poison_ordinal = std::stoll(poison_str);
  }
  const std::string chaos_shard_str = FlagValue(argc, argv, "--chaos-kill-shard=");
  if (!chaos_shard_str.empty()) {
    cfg.chaos_kill_shard = static_cast<std::int32_t>(std::stol(chaos_shard_str));
  }
  const std::string chaos_after_str = FlagValue(argc, argv, "--chaos-kill-after=");
  if (!chaos_after_str.empty()) {
    cfg.chaos_kill_after_results = static_cast<std::uint32_t>(std::stoul(chaos_after_str));
  }

  // The campaign runs the canonical operations on the "after" kernel; its
  // observed interrupt-response tails are checked against the WCET
  // analyzer's bound for that kernel (modelled cycles on both sides).
  obs::TailObservatory observatory;
  {
    const auto img = BuildKernelImage(KernelConfig::After());
    const WcetAnalyzer analyzer(*img, AnalysisOptions{});
    observatory.SetBound(cfg.config_label, analyzer.InterruptResponseBound());
  }
  cfg.observatory = &observatory;

  const CampaignReport report = RunCampaign(cfg);

  if (cfg.shards > 0 || !cfg.journal_dir.empty()) {
    // stderr, so stdout CSV byte-identity is untouched.
    std::fprintf(stderr, "%s\n", report.shard.Summary().c_str());
  }

  const std::string csv_path = FlagValue(argc, argv, "--csv=");
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    report.WriteCsv(f);
  } else if (flags.csv) {
    report.WriteCsv(std::cout);
    bench::ExportMetricsJson(flags.metrics_json);
    return (report.failures() == 0 && !observatory.AnyExceedance()) ? 0 : 1;
  }

  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_mode;  // mode -> {runs, fail}
  for (const ScenarioResult& r : report.results) {
    auto& [runs, fails] = by_mode[r.mode];
    ++runs;
    if (!r.ok) {
      ++fails;
    }
  }
  std::printf("%s\n", report.Summary().c_str());
  for (const auto& [mode, counts] : by_mode) {
    std::printf("  %-11s %6llu scenarios, %llu failures\n", mode.c_str(),
                static_cast<unsigned long long>(counts.first),
                static_cast<unsigned long long>(counts.second));
  }
  for (const ScenarioResult& r : report.results) {
    if (!r.ok) {
      std::printf("  FAIL [%s/%s] plan=%s: %s\n", r.mode.c_str(), r.op.c_str(), r.plan.c_str(),
                  r.detail.c_str());
    }
  }
  std::printf("\n%s", observatory.RenderTable().c_str());
  if (observatory.AnyExceedance()) {
    std::printf("BOUND EXCEEDED: an enforced scenario's observed max passed the WCET bound.\n");
  }
  bench::ExportMetricsJson(flags.metrics_json);
  return (report.failures() == 0 && !observatory.AnyExceedance()) ? 0 : 1;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) { return pmk::Main(argc, argv); }
