// mixed_criticality — the paper's motivating scenario (Section 1, Figure 1).
//
// A hard real-time control task and untrusted best-effort tasks share one
// processor under the protected microkernel. The untrusted tasks hammer the
// kernel with the longest operations they are authorized to perform (object
// creation, endpoint teardown, badge revocation, worst-case IPC) while a
// periodic timer drives the real-time task. We measure every interrupt
// response, compare the distribution against the statically computed bound,
// and show the difference between the "before" and "after" kernels.
//
//   $ mixed_criticality

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

struct RunResult {
  std::vector<Cycles> latencies;
  Cycles bound = 0;
  std::uint32_t preemptions = 0;
};

RunResult RunScenario(const KernelConfig& kc, Cycles timer_period, int steps) {
  System sys(kc, EvalMachine(false));

  // The real-time task: highest priority, waits on the timer endpoint.
  EndpointObj* timer_ep = nullptr;
  const std::uint32_t timer_cptr = sys.AddEndpoint(&timer_ep);
  TcbObj* rt_task = sys.AddThread(/*prio=*/250);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, timer_ep);
  sys.kernel().DirectBlockOnRecv(rt_task, timer_ep);

  // Untrusted best-effort tasks with authority over their own objects.
  EndpointObj* victim_ep = nullptr;
  std::uint32_t victim_cptr = sys.AddEndpoint(&victim_ep);
  const std::uint32_t ut_cptr = sys.AddUntyped(21);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);
  TcbObj* attacker = sys.AddThread(/*prio=*/20);
  sys.kernel().DirectSetCurrent(attacker);

  // Deep-cspace sender for worst-case IPC decodes.
  System::WorstIpc worst = sys.BuildWorstCaseIpc();

  RunResult out;
  sys.machine().timer().set_period(timer_period);
  sys.machine().timer().Restart(sys.machine().Now());

  std::mt19937 rng(7);
  std::uint32_t dest = 40;
  int pending_retype = 0;
  for (int step = 0; step < steps; ++step) {
    // Service any timer interrupt that fired while "user code" ran: the
    // RT task wakes, does its control work, and waits again.
    if (sys.machine().irq().AnyPending() &&
        sys.kernel().current() != rt_task) {
      sys.kernel().HandleIrqEntry();
    }
    if (sys.kernel().current() == rt_task) {
      sys.machine().RawCycles(200);  // control-loop work
      sys.kernel().Syscall(SysOp::kRecv, timer_cptr, SyscallArgs{});
      sys.machine().irq().Unmask(InterruptController::kTimerLine);
      if (sys.kernel().current() == sys.kernel().idle()) {
        sys.kernel().DirectSetCurrent(attacker);
      }
      continue;
    }

    // The attacker picks a nasty kernel operation.
    SyscallArgs args;
    switch (pending_retype > 0 ? 0 : rng() % 4) {
      case 0: {  // create a large frame (long clear)
        args.label = InvLabel::kUntypedRetype;
        args.obj_type = ObjType::kFrame;
        args.obj_bits = 18;
        args.dest_index = dest;
        const KernelExit e = sys.kernel().Syscall(SysOp::kCall, ut_cptr, args);
        if (e == KernelExit::kPreempted) {
          out.preemptions++;
          pending_retype = 1;  // restart the same syscall next step
        } else {
          pending_retype = 0;
          if (attacker->last_error == KError::kOk) {
            dest++;
          }
        }
        break;
      }
      case 1: {  // worst-case IPC through 32-level cspaces
        sys.kernel().DirectSetCurrent(worst.caller);
        if (worst.receiver->state != ThreadState::kBlockedOnRecv) {
          // re-arm receiver
          worst.receiver->state = ThreadState::kRunning;
          worst.receiver->reply_to = nullptr;
          sys.kernel().Syscall(SysOp::kReplyRecv, worst.reply_cptr, SyscallArgs{});
        }
        sys.kernel().DirectSetCurrent(worst.caller);
        if (worst.caller->state == ThreadState::kBlockedOnReply) {
          worst.caller->state = ThreadState::kRunning;
        }
        sys.kernel().Syscall(SysOp::kCall, worst.ep_cptr, worst.args);
        sys.kernel().DirectSetCurrent(attacker);
        break;
      }
      case 2: {  // queue senders, then tear the endpoint down
        if (victim_ep != nullptr && sys.kernel().objects().Get<EndpointObj>(
                                        sys.SlotOf(victim_cptr)->cap.obj) != nullptr) {
          args.label = InvLabel::kCNodeDelete;
          args.arg0 = victim_cptr & 0xFF;
          while (sys.kernel().Syscall(SysOp::kCall, root_cptr, args) ==
                 KernelExit::kPreempted) {
            out.preemptions++;
            sys.machine().irq().Unmask(InterruptController::kTimerLine);
          }
        }
        break;
      }
      default:  // plain noise
        sys.kernel().Syscall(SysOp::kYield, 0, args);
        break;
    }
    if (sys.kernel().current() == sys.kernel().idle()) {
      sys.kernel().DirectSetCurrent(attacker);
    }
    sys.machine().RawCycles(500);  // user-mode time between syscalls
  }
  sys.machine().timer().set_period(0);

  out.latencies = sys.kernel().irq_latencies();
  WcetAnalyzer analyzer(sys.kernel().image(), AnalysisOptions{});
  out.bound = analyzer.InterruptResponseBound();
  return out;
}

void Report(const char* name, const RunResult& r) {
  const ClockSpec clk;
  if (r.latencies.empty()) {
    std::printf("%s: no interrupts delivered?\n", name);
    return;
  }
  std::vector<Cycles> sorted = r.latencies;
  std::sort(sorted.begin(), sorted.end());
  const Cycles max = sorted.back();
  const Cycles p50 = sorted[sorted.size() / 2];
  const Cycles p99 = sorted[sorted.size() * 99 / 100];
  std::printf("%-16s  interrupts=%4zu  preemptions=%3u  p50=%7.1fus  p99=%7.1fus"
              "  max=%8.1fus  bound=%8.1fus  %s\n",
              name, sorted.size(), r.preemptions, clk.ToMicros(p50), clk.ToMicros(p99),
              clk.ToMicros(max), clk.ToMicros(r.bound),
              max <= r.bound ? "[within bound]" : "[BOUND VIOLATED]");
}

}  // namespace
}  // namespace pmk

int main() {
  using namespace pmk;
  std::printf("Mixed-criticality scenario: a 250-prio real-time task under attack from\n");
  std::printf("untrusted tasks running the kernel's longest operations.\n");
  std::printf("Timer period: 50,000 cycles (~94 us @ 532 MHz); 400 attack steps.\n\n");

  const RunResult after = RunScenario(KernelConfig::After(), 50'000, 400);
  Report("after kernel", after);

  const RunResult before = RunScenario(KernelConfig::Before(), 50'000, 400);
  Report("before kernel", before);

  std::printf(
      "\nThe 'after' kernel preempts its long operations, so even an adversarial\n"
      "workload cannot push interrupt response past the computed bound — the\n"
      "paper's mixed-criticality claim. The 'before' kernel's worst response is\n"
      "set by its longest non-preemptible operation (a multi-millisecond object\n"
      "clear), orders of magnitude above the 'after' kernel's.\n");
  return 0;
}
