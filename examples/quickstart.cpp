// quickstart — the smallest end-to-end tour of the public API.
//
// Builds a two-thread system on the modelled machine, exchanges IPC through
// an endpoint (hitting the fastpath), delivers a timer interrupt to a
// handler thread, and runs the WCET analyzer to print the kernel's
// worst-case interrupt response bound.
//
//   $ quickstart

#include <cstdio>

#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

int main() {
  using namespace pmk;
  const ClockSpec clk;

  // 1. A machine (ARM1136-like, L2 off, branch predictor off) plus the
  //    "after" kernel: Benno scheduling, bitmaps, shadow page tables, and
  //    preemption points everywhere the paper adds them.
  System sys(KernelConfig::After(), EvalMachine(/*l2_enabled=*/false));
  std::printf("kernel image: %zu blocks, %llu bytes of text\n",
              sys.kernel().image().prog.num_blocks(),
              static_cast<unsigned long long>(sys.kernel().image().prog.text_bytes()));

  // 2. Two threads talking through an endpoint.
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(/*prio=*/60);
  TcbObj* client = sys.AddThread(/*prio=*/10);
  sys.kernel().DirectBlockOnRecv(server, ep);
  sys.kernel().DirectSetCurrent(client);

  SyscallArgs call;
  call.msg_len = 2;
  client->mrs[0] = 0x1234;
  const Cycles t0 = sys.machine().Now();
  sys.kernel().Syscall(SysOp::kCall, ep_cptr, call);
  std::printf("client -> server Call took %llu cycles (fastpath hits: %llu)\n",
              static_cast<unsigned long long>(sys.machine().Now() - t0),
              static_cast<unsigned long long>(sys.kernel().fastpath_hits()));
  std::printf("server received mr0=0x%llx from badge %llu; replying...\n",
              static_cast<unsigned long long>(server->mrs[0]),
              static_cast<unsigned long long>(server->recv_badge));

  server->mrs[0] = 0x5678;
  SyscallArgs reply;
  reply.msg_len = 1;
  sys.kernel().Syscall(SysOp::kReplyRecv, ep_cptr, reply);
  std::printf("client resumed with mr0=0x%llx\n",
              static_cast<unsigned long long>(client->mrs[0]));

  // 3. An interrupt: bind line 0 to an endpoint with a waiting handler.
  EndpointObj* irq_ep = nullptr;
  sys.AddEndpoint(&irq_ep);
  TcbObj* handler = sys.AddThread(/*prio=*/200);
  sys.kernel().DirectBlockOnRecv(handler, irq_ep);
  sys.kernel().DirectBindIrq(0, irq_ep);
  sys.machine().irq().Assert(0, sys.machine().Now());
  sys.kernel().HandleIrqEntry();
  std::printf("interrupt delivered to handler in %llu cycles (%.2f us)\n",
              static_cast<unsigned long long>(sys.kernel().irq_latencies().back()),
              clk.ToMicros(sys.kernel().irq_latencies().back()));

  // 4. The kernel's proof invariants hold (checked dynamically here).
  sys.kernel().CheckInvariants();
  std::printf("kernel invariants: OK\n");

  // 5. Static analysis: a sound bound on the worst-case interrupt response.
  WcetAnalyzer analyzer(sys.kernel().image(), AnalysisOptions{});
  const Cycles bound = analyzer.InterruptResponseBound();
  std::printf("computed worst-case interrupt response: %llu cycles = %.1f us @ 532 MHz\n",
              static_cast<unsigned long long>(bound), clk.ToMicros(bound));
  return 0;
}
