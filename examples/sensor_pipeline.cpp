// sensor_pipeline — a periodic control pipeline built on the Runner.
//
// A sensor interrupt (line 3) wakes a driver thread, which forwards samples
// over IPC to a control thread; a best-effort logger churns kernel objects
// (retype/delete) in the background. The pipeline's end-to-end deadline
// depends on the kernel's interrupt response staying bounded while the
// logger runs long operations — the paper's thesis, as an application.
//
//   $ sensor_pipeline

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/sim/runner.h"
#include "src/wcet/analysis.h"

int main() {
  using namespace pmk;
  const ClockSpec clk;

  System sys(KernelConfig::After(), EvalMachine(false));
  constexpr std::uint32_t kSensorLine = InterruptController::kTimerLine;

  // Sensor IRQ -> driver (prio 200) -> control (prio 150); logger at 10.
  EndpointObj* sensor_ep = nullptr;
  const std::uint32_t sensor_cptr = sys.AddEndpoint(&sensor_ep);
  EndpointObj* data_ep = nullptr;
  const std::uint32_t data_cptr = sys.AddEndpoint(&data_ep);

  TcbObj* driver = sys.AddThread(200);
  TcbObj* control = sys.AddThread(150);
  TcbObj* logger = sys.AddThread(10);
  sys.kernel().DirectBindIrq(kSensorLine, sensor_ep);
  sys.kernel().DirectBlockOnRecv(driver, sensor_ep);
  sys.kernel().DirectBlockOnRecv(control, data_ep);
  sys.kernel().DirectSetCurrent(logger);

  const std::uint32_t ut_cptr = sys.AddUntyped(22);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t root_cptr = sys.AddCap(root_cap);

  Runner runner(&sys);

  // Driver: read the sample (compute), push it to the control loop, wait.
  SyscallArgs push;
  push.msg_len = 4;
  runner.SetProgram(driver, {
                                UserStep::Compute(300),  // talk to the device
                                UserStep::Syscall(SysOp::kSend, data_cptr, push),
                                UserStep::Syscall(SysOp::kRecv, sensor_cptr),
                            });
  // The driver acks (re-enables) the sensor line when it waits again.
  runner.SetStepHook([&](TcbObj* t, std::size_t step) {
    if (t == driver && step == 2) {
      sys.machine().irq().Unmask(kSensorLine);
    }
  });

  // Control loop: consume a sample, compute the actuation, wait for more.
  runner.SetProgram(control, {
                                 UserStep::Compute(800),  // control law
                                 UserStep::Syscall(SysOp::kRecv, data_cptr),
                             });

  // Logger: allocate a 64 KiB buffer, "fill" it, delete it — a stream of
  // exactly the long-running kernel operations Section 3.5/3.3 make safe.
  SyscallArgs mk;
  mk.label = InvLabel::kUntypedRetype;
  mk.obj_type = ObjType::kFrame;
  mk.obj_bits = 16;
  mk.dest_index = 200;
  SyscallArgs del;
  del.label = InvLabel::kCNodeDelete;
  del.arg0 = 200;
  SyscallArgs rvk;
  rvk.label = InvLabel::kCNodeRevoke;
  rvk.arg0 = ut_cptr & 0xFF;
  runner.SetProgram(logger, {
                                UserStep::Syscall(SysOp::kCall, ut_cptr, mk),
                                UserStep::Compute(2'000),
                                UserStep::Syscall(SysOp::kCall, root_cptr, del),
                                UserStep::Syscall(SysOp::kCall, root_cptr, rvk),
                            });

  // Sensor fires every 40,000 cycles (~75 us @ 532 MHz).
  sys.machine().timer().set_period(40'000);
  sys.machine().timer().Restart(sys.machine().Now());
  runner.Run(8'000'000);
  sys.machine().timer().set_period(0);

  const auto& lats = sys.kernel().irq_latencies();
  std::vector<Cycles> sorted(lats.begin(), lats.end());
  std::sort(sorted.begin(), sorted.end());

  WcetAnalyzer analyzer(sys.kernel().image(), AnalysisOptions{});
  const Cycles bound = analyzer.InterruptResponseBound();

  std::printf("sensor pipeline over %.1f ms of modelled time:\n",
              clk.ToMicros(8'000'000) / 1000.0);
  std::printf("  samples pushed by driver: %llu\n",
              static_cast<unsigned long long>(runner.StepsCompleted(driver) / 3));
  std::printf("  control iterations:       %llu\n",
              static_cast<unsigned long long>(runner.StepsCompleted(control) / 2));
  std::printf("  logger alloc/free cycles: %llu (each clearing 64 KiB preemptibly)\n",
              static_cast<unsigned long long>(runner.StepsCompleted(logger) / 4));
  if (!sorted.empty()) {
    std::printf("  sensor IRQ response: median %.1f us, worst %.1f us"
                " — computed bound %.1f us\n",
                clk.ToMicros(sorted[sorted.size() / 2]), clk.ToMicros(sorted.back()),
                clk.ToMicros(bound));
    std::printf("  %s\n", sorted.back() <= bound ? "every response within the bound"
                                                 : "BOUND VIOLATED");
  }
  sys.kernel().CheckInvariants();
  std::printf("kernel invariants: OK\n");
  return 0;
}
