// telemetry_report — the interrupt-response tail observatory.
//
// The paper's result is a statically analyzed *worst-case* interrupt-response
// bound; this driver tells the tail story around it. It collects every
// modelled IRQ assert->deliver span from three sources —
//
//   1. the exhaustive preemption-point sweep of each canonical long-running
//      operation (one injected interrupt per boundary),
//   2. a timer-driven retype run harvested live through a TailSink attached
//      to the System's trace stream (zero modelled-cycle cost),
//   3. all five fault-campaign modes (exhaustive / random / storm / hostile /
//      spurious) at a fixed seed,
//
// — into per-(kernel config, scenario) histograms, fetches
// WcetAnalyzer::InterruptResponseBound() for the kernel under test and
// renders observed p50/p90/p99/max against the bound with a headroom ratio.
// An *enforced* scenario whose observed max exceeds the bound fails the run
// loudly (nonzero exit): the soundness claim, checked on every invocation.
// Storm-mode rows are informational — their latencies include device-side
// masking windows the kernel analysis deliberately excludes.
//
// Everything printed is modelled cycles, so the output is byte-identical
// across hosts and --jobs values and is kept as a golden
// (tests/goldens/telemetry_report_quick.txt for --quick --seed=42).
//
// Usage:
//   telemetry_report [--quick] [--seed=N] [--jobs=N] [--csv]
//                    [--metrics-json=F] [--progress] [--no-telemetry]

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/fault/campaign.h"
#include "src/obs/tail_observatory.h"
#include "src/sim/latency.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

// A timer-preempted 256 KiB frame retype, observed through a TailSink on the
// live trace stream instead of the run's result record — exercising the
// third collection path end to end.
void TimerRetypeThroughSink(obs::TailObservatory& observatory) {
  System sys(KernelConfig::After(), EvalMachine(false));
  obs::TailSink sink(&observatory, "after", "timer/retype");
  sys.AttachTraceSink(&sink);
  TcbObj* t = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(19);
  sys.kernel().DirectSetCurrent(t);
  SyscallArgs args;
  args.label = InvLabel::kUntypedRetype;
  args.obj_type = ObjType::kFrame;
  args.obj_bits = 18;
  args.dest_index = 70;
  RunLongOpWithTimer(sys, SysOp::kCall, ut_cptr, args, 9000);
  sink.Flush();
}

int Main(int argc, char** argv) {
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);
  std::uint64_t seed = 42;
  if (const std::string s = FlagValue(argc, argv, "--seed="); !s.empty()) {
    seed = std::stoull(s);
  }

  obs::TailObservatory observatory;
  const auto img = BuildKernelImage(KernelConfig::After());
  const WcetAnalyzer analyzer(*img, AnalysisOptions{});
  const Cycles bound = analyzer.InterruptResponseBound();
  observatory.SetBound("after", bound);

  // 1. Exhaustive IRQ sweep of the three canonical operations.
  SweepOptions sweep;
  if (flags.jobs > 1) {
    sweep.jobs = flags.jobs;
    sweep.checkpoint = true;
  }
  for (const auto& [name, factory] : CanonicalOps()) {
    const std::string scenario = "sweep/" + name;
    observatory.Touch("after", scenario);
    const SweepResult res = ExhaustiveIrqSweep(factory, sweep);
    observatory.RecordHistogram("after", scenario, res.dry_run.irq_hist);
    for (const RunRecord& r : res.runs) {
      observatory.RecordHistogram("after", scenario, r.irq_hist);
    }
  }

  // 2. Live TailSink harvest from a timer-preempted long operation.
  TimerRetypeThroughSink(observatory);

  // 3. All five campaign modes feed the observatory themselves.
  CampaignConfig cc;
  cc.seed = seed;
  cc.jobs = flags.jobs;
  cc.observatory = &observatory;
  if (flags.quick) {
    cc.random_runs = 8;
    cc.storm_runs = 2;
    cc.hostile_runs = 32;
    cc.spurious_runs = 4;
  }
  const CampaignReport report = RunCampaign(cc);

  if (flags.csv) {
    observatory.WriteCsv(std::cout);
  } else {
    std::printf("Interrupt-response tail observatory (seed=%llu)\n",
                static_cast<unsigned long long>(seed));
    std::printf("analyzed bound (after kernel, L2 off): %llu cycles = %.1f us\n\n",
                static_cast<unsigned long long>(bound),
                ClockSpec{}.ToMicros(bound));
    std::printf("%s", observatory.RenderTable().c_str());
    std::printf("\ncampaign: %s\n", report.Summary().c_str());
  }

  const bool exceeded = observatory.AnyExceedance();
  if (exceeded) {
    std::fprintf(stderr,
                 "BOUND EXCEEDED: an enforced scenario's observed interrupt response\n"
                 "passed the statically analyzed worst-case bound.\n");
  }
  bench::ExportMetricsJson(flags.metrics_json);
  return (report.failures() == 0 && !exceeded) ? 0 : 1;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) { return pmk::Main(argc, argv); }
