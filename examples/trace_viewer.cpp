// trace_viewer — the observability stack end to end (src/obs).
//
// Runs a small mixed workload under full tracing: a timer-driven real-time
// handler (bound interrupt), a ping-pong IPC pair, and a worker whose large
// frame retype is preempted at the paper's preemption points. One MultiSink
// fans the kernel's event stream out to
//   - a ChromeTraceWriter  -> Chrome trace_event JSON (open in Perfetto),
//   - a BlockProfiler      -> hot-block table vs the static per-block bounds,
//   - an EventLog          -> structural self-checks below.
// Also reads the modelled PMU around the run and prints the interrupt
// response distribution as an HDR histogram.
//
// The example double-checks the observability contract and fails (non-zero
// exit) if any part is violated:
//   1. kernel entry/exit events pair up and timestamps are monotone;
//   2. at least one IRQ assert -> deliver span exists, ids and cycles match;
//   3. every profiled block's per-execution cost is within its static bound;
//   4. tracing charges zero modelled cycles (same final cycle count as an
//      identical untraced run).
//
//   $ trace_viewer [out.trace.json]

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/obs/block_profile.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/histogram.h"
#include "src/obs/pmu.h"
#include "src/obs/trace_sink.h"
#include "src/sim/runner.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

struct ScenarioResult {
  Cycles final_cycle = 0;
  std::vector<Cycles> irq_latencies;
};

// The workload; |sink| may be null (untraced baseline for the overhead check).
ScenarioResult RunScenario(System& sys, TraceSink* sink) {
  sys.AttachTraceSink(sink);

  EndpointObj* timer_ep = nullptr;
  const std::uint32_t timer_cptr = sys.AddEndpoint(&timer_ep);
  TcbObj* rt = sys.AddThread(200);
  sys.kernel().DirectBindIrq(InterruptController::kTimerLine, timer_ep);
  sys.kernel().DirectBlockOnRecv(rt, timer_ep);

  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  TcbObj* server = sys.AddThread(60);
  TcbObj* client = sys.AddThread(20);
  sys.kernel().DirectBlockOnRecv(server, ep);

  TcbObj* worker = sys.AddThread(10);
  const std::uint32_t ut_cptr = sys.AddUntyped(19);
  sys.kernel().DirectSetCurrent(client);

  sys.machine().timer().set_period(20'000);
  sys.machine().timer().Restart(sys.machine().Now());

  Runner r(&sys);
  r.set_trace_sink(sink);
  r.SetProgram(rt, {UserStep::Compute(100), UserStep::Syscall(SysOp::kRecv, timer_cptr)});
  r.SetStepHook([&sys, rt](TcbObj* t, std::size_t) {
    if (t == rt) {
      sys.machine().irq().Unmask(InterruptController::kTimerLine);
    }
  });
  SyscallArgs call;
  call.msg_len = 2;
  r.SetProgram(client, {UserStep::Compute(400), UserStep::Syscall(SysOp::kCall, ep_cptr, call)});
  r.SetProgram(server, {UserStep::Syscall(SysOp::kReplyRecv, ep_cptr)});
  SyscallArgs mk;
  mk.label = InvLabel::kUntypedRetype;
  mk.obj_type = ObjType::kFrame;
  mk.obj_bits = 18;  // long clear: preempted at the Section 3.5 points
  mk.dest_index = 70;
  r.SetProgram(worker, {UserStep::Syscall(SysOp::kCall, ut_cptr, mk)}, /*loop=*/false);

  r.Run(400'000);
  sys.machine().timer().set_period(0);

  ScenarioResult out;
  out.final_cycle = sys.machine().Now();
  out.irq_latencies = sys.kernel().irq_latencies();
  sys.AttachTraceSink(nullptr);
  return out;
}

// Check 1: every kKernelEntry has a matching kKernelExit and cycles never
// decrease across the event stream.
bool CheckEntryExitPairing(const std::vector<TraceEvent>& events) {
  int depth = 0;
  int pairs = 0;
  Cycles last = 0;
  for (const TraceEvent& e : events) {
    if (e.cycle < last) {
      std::fprintf(stderr, "FAIL: event timestamps not monotone (%llu after %llu)\n",
                   static_cast<unsigned long long>(e.cycle),
                   static_cast<unsigned long long>(last));
      return false;
    }
    last = e.cycle;
    if (e.kind == TraceEventKind::kKernelEntry) {
      depth++;
    } else if (e.kind == TraceEventKind::kKernelExit) {
      depth--;
      pairs++;
      if (depth < 0) {
        std::fprintf(stderr, "FAIL: kernel exit without entry\n");
        return false;
      }
    }
  }
  if (depth != 0) {
    std::fprintf(stderr, "FAIL: %d unmatched kernel entries\n", depth);
    return false;
  }
  if (pairs == 0) {
    std::fprintf(stderr, "FAIL: no kernel entry/exit pairs traced\n");
    return false;
  }
  std::printf("  [ok] %d kernel entry/exit pairs, timestamps monotone\n", pairs);
  return true;
}

// Check 2: at least one assert -> deliver span per the paper's definition of
// interrupt response time; the deliver event must carry the assert cycle.
bool CheckIrqSpans(const std::vector<TraceEvent>& events) {
  int spans = 0;
  std::vector<Cycles> open(InterruptController::kNumLines, ~Cycles{0});
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kIrqAssert) {
      open[e.id] = e.cycle;
    } else if (e.kind == TraceEventKind::kIrqDeliver) {
      if (open[e.id] == ~Cycles{0}) {
        std::fprintf(stderr, "FAIL: IRQ deliver on line %u without assert\n", e.id);
        return false;
      }
      if (e.arg0 != open[e.id] || e.arg1 != e.cycle - open[e.id]) {
        std::fprintf(stderr, "FAIL: IRQ span on line %u inconsistent\n", e.id);
        return false;
      }
      open[e.id] = ~Cycles{0};
      spans++;
    }
  }
  if (spans == 0) {
    std::fprintf(stderr, "FAIL: no IRQ assert->deliver spans traced\n");
    return false;
  }
  std::printf("  [ok] %d IRQ assert->deliver spans, cycles consistent\n", spans);
  return true;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) {
  using namespace pmk;
  const ClockSpec clk;
  const std::string out_path = argc > 1 ? argv[1] : "trace_viewer.trace.json";

  std::printf("trace_viewer: tracing a mixed workload (timer-driven RT handler +\n");
  std::printf("IPC ping-pong + preempted long retype) for %s\n\n", out_path.c_str());

  // Traced run: one event stream into three consumers.
  ChromeTraceWriter writer(clk);
  BlockProfiler profiler;
  EventLog log;
  MultiSink sink({&writer, &profiler, &log});

  System sys(KernelConfig::After(), EvalMachine(false));
  const PmuSnapshot pmu0 = ReadPmu(sys.machine());
  const ScenarioResult traced = RunScenario(sys, &sink);
  const PmuSnapshot pmu = ReadPmu(sys.machine()) - pmu0;

  // Identical untraced run for the zero-overhead check.
  System bare(KernelConfig::After(), EvalMachine(false));
  const ScenarioResult untraced = RunScenario(bare, nullptr);

  if (!writer.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events) — load it at ui.perfetto.dev\n\n", out_path.c_str(),
              writer.events().size());

  std::printf("PMU over the traced run:\n%s\n", FormatPmuDelta(pmu, clk).c_str());

  LatencyHistogram hist;
  for (const Cycles c : traced.irq_latencies) {
    hist.Record(c);
  }
  std::printf("interrupt response distribution:\n  %s\n%s\n",
              hist.FormatSummary(&clk).c_str(), hist.FormatAscii().c_str());

  WcetAnalyzer analyzer(sys.kernel().image(), AnalysisOptions{});
  const std::vector<Cycles> bounds = analyzer.PerBlockBounds();
  std::printf("hottest kernel blocks (observed vs per-block all-miss bound):\n");
  profiler.PrintHotBlocks(sys.kernel().image().prog, 12, &bounds, std::cout);

  std::printf("\nself-checks:\n");
  bool ok = CheckEntryExitPairing(log.events());
  ok = CheckIrqSpans(log.events()) && ok;
  if (profiler.CheckAgainstBounds(bounds, &std::cerr)) {
    std::printf("  [ok] %zu profiled blocks all within their static bounds\n",
                profiler.Ranked().size());
  } else {
    ok = false;
  }
  if (traced.final_cycle == untraced.final_cycle) {
    std::printf("  [ok] tracing charged zero modelled cycles (%llu in both runs)\n",
                static_cast<unsigned long long>(traced.final_cycle));
  } else {
    std::fprintf(stderr, "FAIL: traced run ended at %llu cycles, untraced at %llu\n",
                 static_cast<unsigned long long>(traced.final_cycle),
                 static_cast<unsigned long long>(untraced.final_cycle));
    ok = false;
  }
  return ok ? 0 : 1;
}
