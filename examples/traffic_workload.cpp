// traffic_workload — saturating traffic against the modelled kernel.
//
// Boots a badged IPC client fleet (1000+ clients round-robined over a server
// pool through a dedicated one-level fleet CNode) plus a modelled NIC: an
// SPSC descriptor ring fed by a rate-controlled frame source on the device
// seam, drained by a two-phase driver (minimal-ISR ack at delivery, heavy
// per-frame work deferred to the driver loop). The harness then sweeps
// offered load — every arrival shape (open-loop, closed-loop, bursty storm)
// at every device inter-frame gap — with each scenario forked from one
// checkpointed boot, and checks the kernel-measured interrupt-response tail
// of every non-storm scenario against WcetAnalyzer::InterruptResponseBound()
// live. An enforced exceedance fails the run with a nonzero exit.
//
// Everything printed to stdout is modelled cycles/counts, byte-identical
// across hosts and across --jobs / --shards values for a fixed seed (golden:
// tests/goldens/traffic_workload_quick.txt for --quick --seed=42). Shard
// supervision statistics vary with parallelism and go to stderr only.
//
// Usage:
//   traffic_workload [--quick] [--seed=N] [--jobs=N] [--csv]
//                    [--shards=N] [--journal=DIR] [--resume]
//                    [--metrics-json=F] [--progress] [--no-telemetry]

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/engine/journal.h"
#include "src/load/traffic.h"
#include "src/obs/tail_observatory.h"
#include "src/sim/report.h"
#include "src/sim/workload.h"
#include "src/wcet/analysis.h"

namespace pmk {
namespace {

int Main(int argc, char** argv) {
  const bench::CommonFlags flags = bench::ParseCommonFlags(argc, argv);

  load::TrafficOptions opts;
  opts.jobs = flags.jobs;
  if (const std::string s = FlagValue(argc, argv, "--seed="); !s.empty()) {
    opts.seed = std::stoull(s);
  }
  if (const std::string s = FlagValue(argc, argv, "--shards="); !s.empty()) {
    opts.shards = static_cast<std::uint32_t>(std::stoul(s));
  }
  opts.journal_dir = FlagValue(argc, argv, "--journal=");
  if (!opts.journal_dir.empty() && !HasFlag(argc, argv, "--resume")) {
    // Fresh sweep: drop any previous journal so stale results cannot leak in.
    std::error_code ec;
    std::filesystem::remove(
        std::filesystem::path(opts.journal_dir) / engine::ResultJournal::kFileName, ec);
  }
  if (flags.quick) {
    // CI smoke shape: still a full thousand-client fleet over the whole
    // scenario grid, but a shorter modelled duration per scenario.
    opts.clients = 1000;
    opts.run_cycles = 260'000;
  } else {
    opts.clients = 2000;
    opts.servers = 16;
  }

  const auto img = BuildKernelImage(KernelConfig::After());
  const WcetAnalyzer analyzer(*img, AnalysisOptions{});
  const Cycles bound = analyzer.InterruptResponseBound();

  const load::TrafficReport report = load::RunTrafficSweep(opts);

  obs::TailObservatory observatory;
  observatory.SetBound("after", bound);
  load::FeedObservatory(report, observatory, "after");

  if (flags.csv) {
    load::WriteTrafficCsv(report, std::cout);
  } else {
    std::printf("Saturating traffic workload (seed=%llu, %u clients, %u servers)\n",
                static_cast<unsigned long long>(opts.seed), opts.clients, opts.servers);
    std::printf("analyzed bound (after kernel, L2 off): %llu cycles = %.1f us\n\n",
                static_cast<unsigned long long>(bound), ClockSpec{}.ToMicros(bound));
    std::printf("%s", load::RenderTrafficTable(report).c_str());
    std::printf("\n%s", observatory.RenderTable().c_str());
  }

  if (report.shard.sharded) {
    std::fprintf(stderr,
                 "shards: %llu tasks, %llu journal hits, %llu retries, %llu timeouts, "
                 "%llu worker deaths, %llu workers%s%s\n",
                 static_cast<unsigned long long>(report.shard.tasks),
                 static_cast<unsigned long long>(report.shard.journal_hits),
                 static_cast<unsigned long long>(report.shard.retries),
                 static_cast<unsigned long long>(report.shard.timeouts),
                 static_cast<unsigned long long>(report.shard.worker_deaths),
                 static_cast<unsigned long long>(report.shard.workers_spawned),
                 report.shard.used_fallback ? ", in-process fallback" : "",
                 report.shard.resumed ? ", resumed" : "");
  }

  const bool exceeded = observatory.AnyExceedance();
  if (exceeded) {
    std::fprintf(stderr,
                 "BOUND EXCEEDED: an enforced traffic scenario's observed interrupt\n"
                 "response passed the statically analyzed worst-case bound.\n");
  }
  bench::ExportMetricsJson(flags.metrics_json);
  return exceeded ? 1 : 0;
}

}  // namespace
}  // namespace pmk

int main(int argc, char** argv) { return pmk::Main(argc, argv); }
