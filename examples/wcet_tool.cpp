// wcet_tool — command-line front end for the WCET analysis pipeline.
//
// Computes the interrupt-latency WCET bound for each kernel entry point of a
// chosen kernel configuration, prints the loop-bound statistics and the
// worst-case interrupt response time (paper Section 6).
//
// Usage: wcet_tool [before|after] [--l2] [--pin] [--functional] [--trace]
//                  [--jobs=N] [--metrics-json=F] [--progress] [--no-telemetry]
//
// --metrics-json exposes the pipeline's own counters (memo hits/misses,
// simplex pivots and refactorisations, B&B nodes, per-stage wall time).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/job_pool.h"
#include "src/wcet/analysis.h"

int main(int argc, char** argv) {
  const pmk::bench::CommonFlags flags = pmk::bench::ParseCommonFlags(argc, argv);
  pmk::KernelConfig kc = pmk::KernelConfig::After();
  pmk::AnalysisOptions opts;
  bool dump_trace = false;
  const unsigned jobs = flags.jobs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "before") == 0) {
      kc = pmk::KernelConfig::Before();
    } else if (std::strcmp(argv[i], "after") == 0) {
      kc = pmk::KernelConfig::After();
    } else if (std::strcmp(argv[i], "--l2") == 0) {
      opts.l2_enabled = true;
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      opts.cache_pinning = true;
    } else if (std::strcmp(argv[i], "--l2pin") == 0) {
      opts.l2_enabled = true;
      opts.l2_kernel_pinning = true;
    } else if (std::strcmp(argv[i], "--sendrecv") == 0) {
      kc.preemptible_send_receive = true;
    } else if (std::strcmp(argv[i], "--timeslice") == 0) {
      kc.kernel_timer_line = 7;
    } else if (std::strcmp(argv[i], "--functional") == 0) {
      opts.irq_pending = false;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      dump_trace = true;
    } else if (pmk::bench::IsCommonFlag(argv[i])) {
      // Already handled by ParseCommonFlags (--jobs=, --metrics-json=, ...).
    } else {
      std::fprintf(stderr,
                   "usage: %s [before|after] [--l2] [--pin] [--l2pin] [--sendrecv]"
                   " [--timeslice] [--functional] [--trace] [--jobs=N]"
                   " [--metrics-json=F] [--progress] [--no-telemetry]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto image = pmk::BuildKernelImage(kc);
  std::printf("kernel image: %zu functions, %zu blocks, %llu bytes of text\n",
              image->prog.num_functions(), image->prog.num_blocks(),
              static_cast<unsigned long long>(image->prog.text_bytes()));

  pmk::WcetAnalyzer analyzer(*image, opts);
  std::printf("%-24s %12s %10s %8s %8s %6s %6s\n", "Entry point", "WCET (cyc)", "WCET (us)",
              "nodes", "edges", "auto", "annot");
  pmk::Cycles longest = 0;
  pmk::Cycles irq_wcet = 0;
  // Entry analyses are independent; fan them out and print in entry order
  // (identical output for any --jobs value).
  const std::vector<pmk::EntryPoint> entries = {
      pmk::EntryPoint::kSyscall, pmk::EntryPoint::kUndefined, pmk::EntryPoint::kPageFault,
      pmk::EntryPoint::kInterrupt};
  const auto results = pmk::engine::ParallelMap<pmk::EntryResult>(
      entries.size(), jobs, [&](std::size_t i) { return analyzer.Analyze(entries[i]); });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const pmk::EntryPoint entry = entries[i];
    const pmk::EntryResult& r = results[i];
    if (r.status != pmk::SolveStatus::kOptimal) {
      std::printf("%-24s  solver status %d\n", pmk::EntryPointName(entry),
                  static_cast<int>(r.status));
      return 1;
    }
    std::printf("%-24s %12llu %10.1f %8zu %8zu %6zu %6zu\n", pmk::EntryPointName(entry),
                static_cast<unsigned long long>(r.wcet), r.micros, r.nodes, r.edges,
                r.loops_bounded_auto, r.loops_bounded_annot);
    if (entry == pmk::EntryPoint::kInterrupt) {
      irq_wcet = r.wcet;
    } else {
      longest = std::max(longest, r.wcet);
    }
    if (dump_trace && entry == pmk::EntryPoint::kSyscall) {
      std::printf("  worst path (%zu blocks):\n", r.worst_trace.blocks.size());
      for (pmk::BlockId b : r.worst_trace.blocks) {
        std::printf("    %s\n", image->prog.block(b).name.c_str());
      }
    }
  }
  const pmk::Cycles response = longest + irq_wcet;
  std::printf("\nworst-case interrupt response: %llu cycles (%.1f us @ 532 MHz)\n",
              static_cast<unsigned long long>(response), pmk::ClockSpec{}.ToMicros(response));
  pmk::bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
