// wcet_tool — command-line front end for the WCET analysis pipeline.
//
// One-shot mode computes the interrupt-latency WCET bound for each kernel
// entry point of a chosen kernel configuration, prints the loop-bound
// statistics and the worst-case interrupt response time (paper Section 6).
//
// Daemon mode (--serve=SOCK) keeps an IncrementalWcetAnalyzer resident
// behind an AF_UNIX socket speaking the framed kWcetQuery/kWcetReply
// protocol (src/wcet/serve.h): clients re-query bounds after edits without
// paying a cold re-analysis. --connect=SOCK prints the same report from the
// daemon's answers, byte-identical to a one-shot run on the same
// configuration; --shutdown=SOCK stops a daemon. --edit-demo=N replays a
// deterministic self-reverting edit script (in-process, or against a daemon
// with --connect), diffing every incremental answer against a cold fresh
// analyzer and exiting nonzero on any mismatch.
//
// Usage: wcet_tool [before|after] [--l2] [--pin] [--l2pin] [--sendrecv]
//                  [--timeslice] [--functional] [--trace] [--jobs=N]
//                  [--serve=SOCK | --connect=SOCK | --shutdown=SOCK]
//                  [--edit-demo=N]
//                  [--metrics-json=F] [--progress] [--no-telemetry]
//
// --metrics-json exposes the pipeline's own counters (memo and incremental
// stage hits/misses, simplex pivots, warm vs cold solves, B&B nodes,
// per-stage wall time).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/job_pool.h"
#include "src/engine/wire.h"
#include "src/wcet/analysis.h"
#include "src/wcet/incremental.h"
#include "src/wcet/serve.h"

namespace {

using pmk::engine::AppendFrame;
using pmk::engine::DecodeFrame;
using pmk::engine::FrameType;
using pmk::engine::WireReader;
using pmk::engine::WireWriter;
using pmk::wcet::EditField;
using pmk::wcet::ServeOp;
using pmk::wcet::WcetService;

constexpr std::size_t kIoChunk = 64 * 1024;

// ------------------------------------------------------------------ framing IO

bool WriteAll(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads bytes into |buf| until it holds one complete frame; pops and returns
// it. Returns false on EOF / error / corrupt bytes.
bool ReadFrame(int fd, std::vector<std::uint8_t>& buf, pmk::engine::Frame& out) {
  for (;;) {
    try {
      if (auto frame = DecodeFrame(buf.data(), buf.size())) {
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(frame->encoded_size));
        out = std::move(*frame);
        return true;
      }
    } catch (const pmk::engine::WireError& e) {
      std::fprintf(stderr, "wcet_tool: corrupt frame: %s\n", e.what());
      return false;
    }
    std::uint8_t chunk[kIoChunk];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    buf.insert(buf.end(), chunk, chunk + n);
  }
}

// ------------------------------------------------------------------ daemon

void ServeClient(WcetService& service, int listen_fd, int fd) {
  std::vector<std::uint8_t> buf;
  pmk::engine::Frame frame;
  while (ReadFrame(fd, buf, frame)) {
    if (frame.type != FrameType::kWcetQuery) {
      break;
    }
    std::vector<std::uint8_t> out;
    AppendFrame(out, FrameType::kWcetReply, service.Handle(frame.payload));
    if (!WriteAll(fd, out)) {
      break;
    }
    if (service.shutdown_requested()) {
      // Wake the accept loop: a half-closed listener makes accept() fail.
      ::shutdown(listen_fd, SHUT_RDWR);
      break;
    }
  }
  ::close(fd);
}

int RunServe(std::unique_ptr<pmk::KernelImage> image, const pmk::AnalysisOptions& opts,
             const std::string& path) {
  WcetService service(std::move(image), opts);
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("wcet_tool: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "wcet_tool: socket path too long: %s\n", path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    std::perror("wcet_tool: bind/listen");
    return 1;
  }
  std::fprintf(stderr, "wcet_tool: serving on %s\n", path.c_str());
  std::vector<std::thread> clients;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener shut down (or failed): drain and exit
    }
    clients.emplace_back(ServeClient, std::ref(service), listen_fd, fd);
  }
  for (std::thread& t : clients) {
    t.join();
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  std::fprintf(stderr, "wcet_tool: daemon exiting\n");
  return 0;
}

// ------------------------------------------------------------------ client

class ServeClientConn {
 public:
  explicit ServeClientConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      std::fprintf(stderr, "wcet_tool: cannot connect to %s: %s\n", path.c_str(),
                   std::strerror(errno));
      if (fd_ >= 0) {
        ::close(fd_);
      }
      fd_ = -1;
    }
  }
  ~ServeClientConn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  bool ok() const { return fd_ >= 0; }

  // Sends one request payload; returns the reply payload. Throws WireError on
  // transport/protocol failure.
  std::vector<std::uint8_t> Call(const std::vector<std::uint8_t>& request) {
    std::vector<std::uint8_t> out;
    AppendFrame(out, FrameType::kWcetQuery, request);
    pmk::engine::Frame frame;
    if (!WriteAll(fd_, out) || !ReadFrame(fd_, buf_, frame) ||
        frame.type != FrameType::kWcetReply) {
      throw pmk::engine::WireError(pmk::engine::WireFault::kTruncated, "daemon connection lost");
    }
    return std::move(frame.payload);
  }

  pmk::Cycles ResponseBound() {
    WireWriter w;
    w.U8(static_cast<std::uint8_t>(ServeOp::kResponseBound));
    const std::vector<std::uint8_t> reply = Call(w.Take());
    WireReader r(reply);
    Expect(r);
    const pmk::Cycles c = r.U64();
    r.ExpectEnd("response-bound reply");
    return c;
  }

  pmk::wcet::AnalyzeReply Analyze(pmk::EntryPoint e) {
    WireWriter w;
    w.U8(static_cast<std::uint8_t>(ServeOp::kAnalyze));
    w.U8(static_cast<std::uint8_t>(e));
    return WcetService::ParseAnalyzeReply(Call(w.Take()));
  }

  bool Edit(pmk::BlockId block, EditField field, std::uint64_t value) {
    WireWriter w;
    w.U8(static_cast<std::uint8_t>(ServeOp::kEdit));
    w.U32(block);
    w.U8(static_cast<std::uint8_t>(field));
    w.U64(value);
    const std::vector<std::uint8_t> reply = Call(w.Take());
    WireReader r(reply);
    Expect(r);
    const bool moved = r.U8() != 0;
    r.ExpectEnd("edit reply");
    return moved;
  }

 private:
  static void Expect(WireReader& r) {
    if (r.U8() != 0) {
      throw pmk::engine::WireError(pmk::engine::WireFault::kBadValue,
                                   "daemon error: " + r.Str());
    }
  }

  int fd_ = -1;
  std::vector<std::uint8_t> buf_;
};

int RunShutdown(const std::string& path) {
  ServeClientConn conn(path);
  if (!conn.ok()) {
    return 1;
  }
  WireWriter w;
  w.U8(static_cast<std::uint8_t>(ServeOp::kShutdown));
  const std::vector<std::uint8_t> reply = conn.Call(w.Take());
  WireReader r(reply);
  if (r.U8() != 0) {
    std::fprintf(stderr, "wcet_tool: shutdown refused: %s\n", r.Str().c_str());
    return 1;
  }
  std::printf("daemon shutdown requested\n");
  return 0;
}

// ------------------------------------------------------------------ edit demo

struct DemoEdit {
  pmk::BlockId block = 0;
  EditField field = EditField::kLoopBoundAnnotation;
  std::uint64_t value = 0;   // applied at this step
  std::uint64_t revert = 0;  // original value, restored after the demo
};

// Deterministic, self-reverting edit script over the analysis-only metadata
// the post-layout mutation contract allows: bump existing loop-bound
// annotations, bump absolute execution bounds, toggle existing preemption
// points. Round-robin across candidates so N edits spread over the kernel.
std::vector<DemoEdit> BuildEditScript(const pmk::Program& prog, int n) {
  std::vector<DemoEdit> candidates;
  for (pmk::BlockId id = 0; id < prog.num_blocks(); ++id) {
    const pmk::Block& b = prog.block(id);
    if (b.loop_bound_annotation > 0) {
      candidates.push_back({id, EditField::kLoopBoundAnnotation, b.loop_bound_annotation + 1,
                            b.loop_bound_annotation});
    }
    if (b.absolute_exec_bound > 0) {
      candidates.push_back(
          {id, EditField::kAbsoluteExecBound, b.absolute_exec_bound + 1, b.absolute_exec_bound});
    }
    if (b.is_preemption_point) {
      candidates.push_back({id, EditField::kIsPreemptionPoint, 0, 1});
    }
  }
  std::vector<DemoEdit> script;
  for (int s = 0; s < n && !candidates.empty(); ++s) {
    DemoEdit e = candidates[static_cast<std::size_t>(s) % candidates.size()];
    // Later rounds over the same candidate push the value further so every
    // step's digest actually moves.
    if (e.field != EditField::kIsPreemptionPoint) {
      e.value += static_cast<std::uint64_t>(s) / candidates.size();
    }
    script.push_back(e);
  }
  return script;
}

void ApplyEdit(pmk::Program& prog, const DemoEdit& e, bool revert) {
  pmk::Block& b = prog.mutable_block(e.block);
  const std::uint64_t v = revert ? e.revert : e.value;
  switch (e.field) {
    case EditField::kLoopBoundAnnotation:
      b.loop_bound_annotation = static_cast<std::uint32_t>(v);
      break;
    case EditField::kAbsoluteExecBound:
      b.absolute_exec_bound = static_cast<std::uint32_t>(v);
      break;
    case EditField::kIsPreemptionPoint:
      b.is_preemption_point = v != 0;
      break;
  }
}

// Replays the edit script, checking every incremental answer against a cold
// fresh analyzer on an identically-edited mirror image. |conn| directs the
// incremental side at a daemon; null runs it in-process.
int RunEditDemo(const pmk::KernelConfig& kc, const pmk::AnalysisOptions& opts, int steps,
                ServeClientConn* conn) {
  // The mirror carries the cold reference; in-process mode also hosts the
  // incremental analyzer on a second image so the two never share state.
  const auto mirror = pmk::BuildKernelImage(kc);
  auto local_image = conn ? nullptr : pmk::BuildKernelImage(kc);
  std::unique_ptr<pmk::IncrementalWcetAnalyzer> local;
  if (!conn) {
    local = std::make_unique<pmk::IncrementalWcetAnalyzer>(*local_image, opts);
  }
  const auto incremental_bound = [&]() -> pmk::Cycles {
    return conn ? conn->ResponseBound() : local->InterruptResponseBound();
  };
  const auto apply = [&](const DemoEdit& e, bool revert) {
    if (conn) {
      conn->Edit(e.block, e.field, revert ? e.revert : e.value);
    } else {
      ApplyEdit(local_image->prog, e, revert);
      local->NotifyBlockEdited(e.block);
    }
    ApplyEdit(mirror->prog, e, revert);
  };

  const pmk::Cycles baseline = incremental_bound();
  const std::vector<DemoEdit> script = BuildEditScript(mirror->prog, steps);
  std::printf("edit-demo: %zu scripted edits, baseline response %llu cycles\n", script.size(),
              static_cast<unsigned long long>(baseline));
  int failures = 0;
  for (std::size_t s = 0; s < script.size(); ++s) {
    const DemoEdit& e = script[s];
    apply(e, /*revert=*/false);
    const pmk::Cycles inc = incremental_bound();
    const pmk::Cycles cold = pmk::WcetAnalyzer(*mirror, opts).InterruptResponseBound();
    const bool ok = inc == cold;
    failures += ok ? 0 : 1;
    std::printf("  step %2zu: block %4u field %u -> incremental %llu, cold %llu  %s\n", s + 1,
                e.block, static_cast<unsigned>(e.field), static_cast<unsigned long long>(inc),
                static_cast<unsigned long long>(cold), ok ? "ok" : "MISMATCH");
  }
  for (auto it = script.rbegin(); it != script.rend(); ++it) {
    apply(*it, /*revert=*/true);
  }
  const pmk::Cycles restored = incremental_bound();
  const bool back = restored == baseline;
  std::printf("edit-demo: reverted, response %llu cycles  %s\n",
              static_cast<unsigned long long>(restored), back ? "ok" : "MISMATCH");
  if (failures > 0 || !back) {
    std::fprintf(stderr, "wcet_tool: edit-demo FAILED (%d mismatches)\n",
                 failures + (back ? 0 : 1));
    return 1;
  }
  std::printf("edit-demo: all incremental answers identical to cold re-analysis\n");
  return 0;
}

// ------------------------------------------------------------------ report

struct EntryRow {
  pmk::Cycles wcet = 0;
  double micros = 0;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t loops_auto = 0;
  std::size_t loops_annot = 0;
  int status = static_cast<int>(pmk::SolveStatus::kOptimal);
};

// Prints the standard report given per-entry rows; shared by the one-shot
// and --connect paths so their stdout cannot drift.
int PrintReport(const std::vector<EntryRow>& rows, pmk::Cycles response) {
  std::printf("%-24s %12s %10s %8s %8s %6s %6s\n", "Entry point", "WCET (cyc)", "WCET (us)",
              "nodes", "edges", "auto", "annot");
  const pmk::EntryPoint entries[] = {pmk::EntryPoint::kSyscall, pmk::EntryPoint::kUndefined,
                                     pmk::EntryPoint::kPageFault, pmk::EntryPoint::kInterrupt};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EntryRow& r = rows[i];
    if (r.status != static_cast<int>(pmk::SolveStatus::kOptimal)) {
      std::printf("%-24s  solver status %d\n", pmk::EntryPointName(entries[i]), r.status);
      return 1;
    }
    std::printf("%-24s %12llu %10.1f %8zu %8zu %6zu %6zu\n", pmk::EntryPointName(entries[i]),
                static_cast<unsigned long long>(r.wcet), r.micros, r.nodes, r.edges, r.loops_auto,
                r.loops_annot);
  }
  std::printf("\nworst-case interrupt response: %llu cycles (%.1f us @ 532 MHz)\n",
              static_cast<unsigned long long>(response), pmk::ClockSpec{}.ToMicros(response));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const pmk::bench::CommonFlags flags = pmk::bench::ParseCommonFlags(argc, argv);
  pmk::KernelConfig kc = pmk::KernelConfig::After();
  pmk::AnalysisOptions opts;
  bool dump_trace = false;
  std::string serve_path;
  std::string connect_path;
  std::string shutdown_path;
  int edit_demo = 0;
  const unsigned jobs = flags.jobs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "before") == 0) {
      kc = pmk::KernelConfig::Before();
    } else if (std::strcmp(argv[i], "after") == 0) {
      kc = pmk::KernelConfig::After();
    } else if (std::strcmp(argv[i], "--l2") == 0) {
      opts.l2_enabled = true;
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      opts.cache_pinning = true;
    } else if (std::strcmp(argv[i], "--l2pin") == 0) {
      opts.l2_enabled = true;
      opts.l2_kernel_pinning = true;
    } else if (std::strcmp(argv[i], "--sendrecv") == 0) {
      kc.preemptible_send_receive = true;
    } else if (std::strcmp(argv[i], "--timeslice") == 0) {
      kc.kernel_timer_line = 7;
    } else if (std::strcmp(argv[i], "--functional") == 0) {
      opts.irq_pending = false;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      dump_trace = true;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--shutdown=", 11) == 0) {
      shutdown_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--edit-demo=", 12) == 0) {
      edit_demo = std::atoi(argv[i] + 12);
    } else if (pmk::bench::IsCommonFlag(argv[i])) {
      // Already handled by ParseCommonFlags (--jobs=, --metrics-json=, ...).
    } else {
      std::fprintf(stderr,
                   "usage: %s [before|after] [--l2] [--pin] [--l2pin] [--sendrecv]"
                   " [--timeslice] [--functional] [--trace] [--jobs=N]"
                   " [--serve=SOCK | --connect=SOCK | --shutdown=SOCK] [--edit-demo=N]"
                   " [--metrics-json=F] [--progress] [--no-telemetry]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!shutdown_path.empty()) {
    return RunShutdown(shutdown_path);
  }
  if (!serve_path.empty()) {
    return RunServe(pmk::BuildKernelImage(kc), opts, serve_path);
  }
  if (edit_demo > 0) {
    if (!connect_path.empty()) {
      ServeClientConn conn(connect_path);
      if (!conn.ok()) {
        return 1;
      }
      const int rc = RunEditDemo(kc, opts, edit_demo, &conn);
      pmk::bench::ExportMetricsJson(flags.metrics_json);
      return rc;
    }
    const int rc = RunEditDemo(kc, opts, edit_demo, nullptr);
    pmk::bench::ExportMetricsJson(flags.metrics_json);
    return rc;
  }

  if (!connect_path.empty()) {
    ServeClientConn conn(connect_path);
    if (!conn.ok()) {
      return 1;
    }
    try {
      WireWriter w;
      w.U8(static_cast<std::uint8_t>(ServeOp::kImageInfo));
      const std::vector<std::uint8_t> reply = conn.Call(w.Take());
      WireReader r(reply);
      if (r.U8() != 0) {
        std::fprintf(stderr, "wcet_tool: image-info failed: %s\n", r.Str().c_str());
        return 1;
      }
      const auto funcs = r.U64();
      const auto blocks = r.U64();
      const auto text = r.U64();
      std::printf("kernel image: %zu functions, %zu blocks, %llu bytes of text\n",
                  static_cast<std::size_t>(funcs), static_cast<std::size_t>(blocks),
                  static_cast<unsigned long long>(text));
      std::vector<EntryRow> rows;
      for (pmk::EntryPoint e : {pmk::EntryPoint::kSyscall, pmk::EntryPoint::kUndefined,
                                pmk::EntryPoint::kPageFault, pmk::EntryPoint::kInterrupt}) {
        const pmk::wcet::AnalyzeReply a = conn.Analyze(e);
        rows.push_back({a.wcet, a.micros, static_cast<std::size_t>(a.nodes),
                        static_cast<std::size_t>(a.edges),
                        static_cast<std::size_t>(a.loops_bounded_auto),
                        static_cast<std::size_t>(a.loops_bounded_annot),
                        static_cast<int>(a.status)});
      }
      const int rc = PrintReport(rows, conn.ResponseBound());
      pmk::bench::ExportMetricsJson(flags.metrics_json);
      return rc;
    } catch (const pmk::engine::WireError& e) {
      std::fprintf(stderr, "wcet_tool: %s\n", e.what());
      return 1;
    }
  }

  const auto image = pmk::BuildKernelImage(kc);
  std::printf("kernel image: %zu functions, %zu blocks, %llu bytes of text\n",
              image->prog.num_functions(), image->prog.num_blocks(),
              static_cast<unsigned long long>(image->prog.text_bytes()));

  pmk::WcetAnalyzer analyzer(*image, opts);
  // Entry analyses are independent; fan them out and print in entry order
  // (identical output for any --jobs value).
  const std::vector<pmk::EntryPoint> entries = {
      pmk::EntryPoint::kSyscall, pmk::EntryPoint::kUndefined, pmk::EntryPoint::kPageFault,
      pmk::EntryPoint::kInterrupt};
  const auto results = pmk::engine::ParallelMap<pmk::EntryResult>(
      entries.size(), jobs, [&](std::size_t i) { return analyzer.Analyze(entries[i]); });
  std::vector<EntryRow> rows;
  pmk::Cycles longest = 0;
  pmk::Cycles irq_wcet = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const pmk::EntryResult& r = results[i];
    rows.push_back({r.wcet, r.micros, r.nodes, r.edges, r.loops_bounded_auto,
                    r.loops_bounded_annot, static_cast<int>(r.status)});
    if (entries[i] == pmk::EntryPoint::kInterrupt) {
      irq_wcet = r.wcet;
    } else {
      longest = std::max(longest, r.wcet);
    }
  }
  const int rc = PrintReport(rows, longest + irq_wcet);
  if (rc != 0) {
    return rc;
  }
  if (dump_trace) {
    const pmk::EntryResult& r = results[0];
    std::printf("  worst path (%zu blocks):\n", r.worst_trace.blocks.size());
    for (pmk::BlockId b : r.worst_trace.blocks) {
      std::printf("    %s\n", image->prog.block(b).name.c_str());
    }
  }
  pmk::bench::ExportMetricsJson(flags.metrics_json);
  return 0;
}
