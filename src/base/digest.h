// FNV-1a 64-bit content digests, chainable via |seed| for multi-part hashes.
//
// One implementation serves every digest consumer in the tree: the wire
// layer's journal keys and checkpoint digests (src/engine), the kir
// per-block content digests that key the incremental WCET caches
// (src/kir/digest.h), and the bench drivers' output-equivalence gates.
// Header-only so the kir layer can digest blocks without depending on the
// engine library.

#ifndef SRC_BASE_DIGEST_H_
#define SRC_BASE_DIGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace pmk {

inline constexpr std::uint64_t kFnv64Offset = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001B3ull;

inline std::uint64_t Fnv1a64(const void* data, std::size_t n,
                             std::uint64_t seed = kFnv64Offset) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv64Prime;
  }
  return h;
}

inline std::uint64_t Fnv1a64(const std::string& s, std::uint64_t seed = kFnv64Offset) {
  return Fnv1a64(s.data(), s.size(), seed);
}

// Chains one little-endian u64 into a running digest — the common idiom for
// digesting a sequence of scalar observables.
inline std::uint64_t FnvU64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnv64Prime;
  }
  return h;
}

}  // namespace pmk

#endif  // SRC_BASE_DIGEST_H_
