// Machine-state checkpointing: boot once, fork many.
//
// A SystemCheckpoint freezes a fully-built System (machine + kernel heap) by
// deep-cloning it, then stamps out independent copies on demand. Forking
// skips everything a fresh boot would repeat — BuildKernelImage, direct
// object construction, queue setup — which is what makes an exhaustive sweep
// of P preemption points cost one boot plus P cheap forks instead of P+1
// boots.
//
// Checkpoints capture state between kernel entries only (System::Clone
// throws if the executor is mid-path). The frozen image is immutable after
// construction, so Fork() may be called concurrently from worker threads.

#ifndef SRC_ENGINE_CHECKPOINT_H_
#define SRC_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/engine/serialize.h"
#include "src/engine/wire.h"
#include "src/obs/metrics.h"
#include "src/sim/workload.h"

namespace pmk::engine {

class SystemCheckpoint {
 public:
  // Freezes a deep copy of |sys|; the original remains usable and later
  // mutations to it do not affect the checkpoint.
  explicit SystemCheckpoint(const System& sys) : frozen_(sys.Clone()) {
    static obs::Counter freezes("engine.checkpoint.freezes");
    freezes.Inc();
  }

  // Adopts an already-built System as the frozen image (deserialized shard
  // transport, test fixtures). |frozen| must not be mid-kernel-entry.
  explicit SystemCheckpoint(std::unique_ptr<System> frozen) : frozen_(std::move(frozen)) {
    static obs::Counter adoptions("engine.checkpoint.adoptions");
    adoptions.Inc();
  }

  // Framed, checksummed byte image of the frozen System (FrameType
  // kSystemImage wrapping a StateSerializer payload), suitable for a pipe,
  // a journal, or a file. Deserialize() inverts it; corrupt bytes throw
  // WireError. The round trip is canonical: Serialize() of the deserialized
  // checkpoint reproduces the same bytes.
  std::vector<std::uint8_t> Serialize() const {
    static obs::Timer ser_nanos("engine.checkpoint.serialize_nanos");
    const auto scope = ser_nanos.Measure();
    std::vector<std::uint8_t> out;
    AppendFrame(out, FrameType::kSystemImage, StateSerializer::SerializeSystem(*frozen_));
    return out;
  }

  static SystemCheckpoint Deserialize(const std::uint8_t* data, std::size_t n) {
    static obs::Timer de_nanos("engine.checkpoint.deserialize_nanos");
    const auto scope = de_nanos.Measure();
    const std::vector<std::uint8_t> payload = DecodeWholeFrame(data, n, FrameType::kSystemImage);
    return SystemCheckpoint(StateSerializer::DeserializeSystem(payload));
  }
  static SystemCheckpoint Deserialize(const std::vector<std::uint8_t>& bytes) {
    return Deserialize(bytes.data(), bytes.size());
  }

  // An independent System that replays cycle-for-cycle identically to the
  // frozen state. Thread-safe: only const reads of the frozen image.
  std::unique_ptr<System> Fork() const {
    static obs::Counter forks("engine.checkpoint.forks");
    static obs::Timer fork_nanos("engine.checkpoint.fork_nanos");
    forks.Inc();
    const auto scope = fork_nanos.Measure();
    return frozen_->Clone();
  }

  const System& frozen() const { return *frozen_; }

 private:
  std::unique_ptr<System> frozen_;
};

}  // namespace pmk::engine

#endif  // SRC_ENGINE_CHECKPOINT_H_
