// Machine-state checkpointing: boot once, fork many.
//
// A SystemCheckpoint freezes a fully-built System (machine + kernel heap) by
// deep-cloning it, then stamps out independent copies on demand. Forking
// skips everything a fresh boot would repeat — BuildKernelImage, direct
// object construction, queue setup — which is what makes an exhaustive sweep
// of P preemption points cost one boot plus P cheap forks instead of P+1
// boots.
//
// Checkpoints capture state between kernel entries only (System::Clone
// throws if the executor is mid-path). The frozen image is immutable after
// construction, so Fork() may be called concurrently from worker threads.

#ifndef SRC_ENGINE_CHECKPOINT_H_
#define SRC_ENGINE_CHECKPOINT_H_

#include <memory>

#include "src/obs/metrics.h"
#include "src/sim/workload.h"

namespace pmk::engine {

class SystemCheckpoint {
 public:
  // Freezes a deep copy of |sys|; the original remains usable and later
  // mutations to it do not affect the checkpoint.
  explicit SystemCheckpoint(const System& sys) : frozen_(sys.Clone()) {
    static obs::Counter freezes("engine.checkpoint.freezes");
    freezes.Inc();
  }

  // An independent System that replays cycle-for-cycle identically to the
  // frozen state. Thread-safe: only const reads of the frozen image.
  std::unique_ptr<System> Fork() const {
    static obs::Counter forks("engine.checkpoint.forks");
    static obs::Timer fork_nanos("engine.checkpoint.fork_nanos");
    forks.Inc();
    const auto scope = fork_nanos.Measure();
    return frozen_->Clone();
  }

  const System& frozen() const { return *frozen_; }

 private:
  std::unique_ptr<System> frozen_;
};

}  // namespace pmk::engine

#endif  // SRC_ENGINE_CHECKPOINT_H_
