#include "src/engine/job_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace pmk::engine {

void RunJobs(std::size_t n, unsigned jobs, const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (jobs <= 1 || n == 1) {
    // Inline path: no threads, index order. This is the reference execution
    // the parallel path must be observably identical to.
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  // Lowest throwing index wins, matching what serial execution would surface.
  std::mutex err_mu;
  std::size_t err_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (i < err_index) {
          err_index = i;
          err = std::current_exception();
        }
      }
    }
  };

  const std::size_t n_threads = std::min<std::size_t>(jobs, n);
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  if (err) {
    std::rethrow_exception(err);
  }
}

}  // namespace pmk::engine
