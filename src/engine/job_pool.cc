#include "src/engine/job_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "src/obs/metrics.h"

namespace pmk::engine {

namespace {

std::atomic<bool> g_progress{false};

// Telemetry around the pool: batch counts/durations, total jobs executed and
// a live queue-depth gauge. Observers only — nothing here feeds back into
// job inputs or collection order.
obs::Counter& BatchCounter() {
  static obs::Counter c("engine.jobs.batches");
  return c;
}
obs::Counter& JobCounter() {
  static obs::Counter c("engine.jobs.executed");
  return c;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge g("engine.jobs.queue_depth");
  return g;
}
obs::Timer& BatchTimer() {
  static obs::Timer t("engine.jobs.batch_nanos");
  return t;
}
// Per-job wall time, inline and threaded paths alike. The snapshot exporters
// derive p50/p90/p99 from it (--metrics-json), making stragglers — one slow
// run dominating a shard — visible without any per-run printing.
obs::Timer& JobWallTimer() {
  static obs::Timer t("engine.jobs.job_wall_nanos");
  return t;
}

// Decile progress lines on stderr; |done| is the post-increment count.
void MaybeReportProgress(std::size_t done, std::size_t n) {
  if (n < 2) {
    return;
  }
  const std::size_t step = std::max<std::size_t>(1, n / 10);
  if (done == n || done % step == 0) {
    std::fprintf(stderr, "  progress %zu/%zu\n", done, n);
  }
}

}  // namespace

void SetProgress(bool on) { g_progress.store(on, std::memory_order_relaxed); }
bool ProgressEnabled() { return g_progress.load(std::memory_order_relaxed); }

void RunJobs(std::size_t n, unsigned jobs, const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  BatchCounter().Inc();
  QueueDepthGauge().Set(static_cast<std::int64_t>(n));
  const auto batch_scope = BatchTimer().Measure();
  const bool progress = ProgressEnabled();
  if (jobs <= 1 || n == 1) {
    // Inline path: no threads, index order. This is the reference execution
    // the parallel path must be observably identical to.
    for (std::size_t i = 0; i < n; ++i) {
      {
        const auto job_scope = JobWallTimer().Measure();
        fn(i);
      }
      JobCounter().Inc();
      if (progress) {
        MaybeReportProgress(i + 1, n);
      }
    }
    QueueDepthGauge().Set(0);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // Lowest throwing index wins, matching what serial execution would surface.
  std::mutex err_mu;
  std::size_t err_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;

  // Dynamic chunked claiming: each claim takes a contiguous run of indices,
  // amortizing the shared-counter contention over |chunk| jobs while staying
  // load-balanced (a straggler chunk only delays its own worker; idle workers
  // keep draining the counter). ~8 chunks per worker keeps the tail short.
  // Outputs stay byte-identical at any --jobs: inputs are still a pure
  // function of the ordinal and results land in per-index slots, so chunk
  // geometry affects only execution order, which nothing observable reads.
  const std::size_t n_threads = std::min<std::size_t>(jobs, n);
  const std::size_t chunk = std::max<std::size_t>(1, n / (n_threads * 8));
  const auto worker = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) {
        return;
      }
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          const auto job_scope = JobWallTimer().Measure();
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (i < err_index) {
            err_index = i;
            err = std::current_exception();
          }
        }
        JobCounter().Inc();
        const std::size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
        QueueDepthGauge().Set(static_cast<std::int64_t>(n - completed));
        if (progress) {
          MaybeReportProgress(completed, n);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  if (err) {
    std::rethrow_exception(err);
  }
}

}  // namespace pmk::engine
