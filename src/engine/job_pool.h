// Deterministic job pool: ordinal-indexed fan-out over a std::thread pool.
//
// The campaign engine's determinism contract is built on one rule: a job's
// INPUTS are a pure function of its ordinal index (plans precomputed
// serially, RNG streams derived via SplitMix64::Split(index)), and its
// OUTPUT is written to a preallocated slot at that index. Threads claim
// index chunks off a shared atomic counter, so execution order is arbitrary, but
// nothing observable depends on it — `jobs=N` output is byte-identical to
// `jobs=1` for any N.

#ifndef SRC_ENGINE_JOB_POOL_H_
#define SRC_ENGINE_JOB_POOL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace pmk::engine {

// Progress reporting for long fan-outs (the --progress flag family). When
// enabled, RunJobs prints "  progress <done>/<n>" lines to stderr — stderr
// only, so stdout goldens and CSV byte-identity are untouched. Off by
// default.
void SetProgress(bool on);
bool ProgressEnabled();

// Invokes fn(i) once for every i in [0, n). With jobs <= 1 (or n <= 1) the
// calls run inline on the calling thread in index order; otherwise
// min(jobs, n) worker threads dynamically claim contiguous index chunks
// (~8 per worker) from an atomic counter — contention amortized over the
// chunk, load balancing preserved because idle workers keep claiming. All
// calls complete before RunJobs returns. fn must confine its effects to
// per-index state (e.g. results[i]); it is invoked concurrently.
//
// Exceptions: every throwing index is captured; after all workers join, the
// exception from the LOWEST index is rethrown — the same one a serial
// in-order execution would have surfaced first.
void RunJobs(std::size_t n, unsigned jobs, const std::function<void(std::size_t)>& fn);

// results[i] = fn(i), in ordinal order regardless of execution order.
// T must be default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(std::size_t n, unsigned jobs, Fn&& fn) {
  std::vector<T> results(n);
  RunJobs(n, jobs, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace pmk::engine

#endif  // SRC_ENGINE_JOB_POOL_H_
