#include "src/engine/journal.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.h"

namespace pmk::engine {

namespace {

std::vector<std::uint8_t> ReadWholeFile(const std::string& path) {
  std::vector<std::uint8_t> data;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return data;  // absent file == empty journal
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size > 0) {
    data.resize(static_cast<std::size_t>(size));
    if (std::fread(data.data(), 1, data.size(), f) != data.size()) {
      data.clear();  // unreadable == recover from scratch
    }
  }
  std::fclose(f);
  return data;
}

void AppendToFile(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("ResultJournal: cannot open for append: " + path);
  }
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (n != bytes.size() || !flushed) {
    throw std::runtime_error("ResultJournal: short write to " + path);
  }
}

void TruncateFile(const std::string& path, std::uint64_t keep_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, keep_bytes, ec);
  // Best-effort: if truncation fails the torn tail stays on disk, and the
  // next Open() simply re-truncates in memory. Entries already indexed are
  // unaffected.
}

std::vector<std::uint8_t> EncodeHeader(std::uint64_t digest) {
  WireWriter w;
  w.U32(ResultJournal::kFormatVersion);
  w.U64(digest);
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, FrameType::kJournalHeader, w.bytes());
  return frame;
}

std::vector<std::uint8_t> EncodeEntry(std::uint64_t key,
                                      const std::vector<std::uint8_t>& payload) {
  WireWriter w;
  w.U64(key);
  w.Bytes(payload.data(), payload.size());
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, FrameType::kJournalEntry, w.bytes());
  return frame;
}

}  // namespace

std::uint64_t ResultJournal::Key(std::uint64_t context_digest, const std::string& task_key,
                                 std::uint64_t seed) {
  WireWriter w;
  w.U64(context_digest);
  w.Str(task_key);
  w.U64(seed);
  return Fnv1a64(w.bytes().data(), w.bytes().size());
}

ResultJournal::ResultJournal(const std::string& dir, std::uint64_t context_digest)
    : context_digest_(context_digest) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  path_ = (std::filesystem::path(dir) / kFileName).string();

  const std::vector<std::uint8_t> data = ReadWholeFile(path_);

  // Replay: header first, then entries, stopping at the first frame that is
  // torn (DecodeFrame -> nullopt) or corrupt (WireError). Everything before
  // the stop point is intact by CRC and is kept.
  std::size_t off = 0;
  bool valid_header = false;
  if (!data.empty()) {
    try {
      const auto header = DecodeFrame(data.data(), data.size());
      if (header.has_value() && header->type == FrameType::kJournalHeader) {
        WireReader r(header->payload.data(), header->payload.size());
        const std::uint32_t version = r.U32();
        const std::uint64_t digest = r.U64();
        r.ExpectEnd("journal header");
        if (version == kFormatVersion && digest == context_digest_) {
          valid_header = true;
          off = header->encoded_size;
        }
      }
    } catch (const WireError&) {
      // Unreadable header (garbage file): treated as foreign below.
    }
    if (!valid_header) {
      // Foreign journal (different kernel/config/format, or not a journal at
      // all): its results are meaningless for this context. Start over.
      invalidated_ = true;
    }
  }
  if (valid_header) {
    try {
      while (off < data.size()) {
        const auto frame = DecodeFrame(data.data() + off, data.size() - off);
        if (!frame.has_value() || frame->type != FrameType::kJournalEntry) {
          break;  // torn tail (mid-append kill) or foreign frame: truncate here
        }
        WireReader r(frame->payload.data(), frame->payload.size());
        const std::uint64_t key = r.U64();
        std::vector<std::uint8_t> payload = r.Bytes();
        r.ExpectEnd("journal entry");
        entries_.emplace(key, std::move(payload));
        off += frame->encoded_size;
      }
    } catch (const WireError&) {
      // Corrupt frame (bit rot, overlapping writers): keep what replayed
      // cleanly, drop the rest.
    }
  }

  if (invalidated_) {
    obs::Counter("engine.journal.invalidated").Inc();
    RewriteEmpty();
  } else if (data.empty()) {
    AppendToFile(path_, EncodeHeader(context_digest_));
  } else if (off < data.size()) {
    truncated_bytes_ = data.size() - off;
    obs::Counter("engine.journal.truncated_bytes").Inc(truncated_bytes_);
    TruncateFile(path_, off);
  }
}

void ResultJournal::RewriteEmpty() {
  std::remove(path_.c_str());
  entries_.clear();
  AppendToFile(path_, EncodeHeader(context_digest_));
}

std::optional<std::vector<std::uint8_t>> ResultJournal::Lookup(std::uint64_t key) {
  static obs::Counter hits("engine.journal.hits");
  static obs::Counter misses("engine.journal.misses");
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses.Inc();
    return std::nullopt;
  }
  hits.Inc();
  return it->second;
}

void ResultJournal::Append(std::uint64_t key, const std::vector<std::uint8_t>& payload) {
  if (!entries_.emplace(key, payload).second) {
    return;  // already journaled; deterministic re-execution, same payload
  }
  static obs::Counter appends("engine.journal.appends");
  appends.Inc();
  AppendToFile(path_, EncodeEntry(key, payload));
}

}  // namespace pmk::engine
