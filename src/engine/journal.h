// Content-addressed, append-only, crash-safe result journal.
//
// A ResultJournal persists one opaque result payload per campaign run so that
// a sharded campaign killed mid-flight (worker SIGKILL, supervisor crash,
// power loss) can resume and re-execute only the runs whose results never
// reached disk. Results are keyed by a 64-bit content address derived from
// (kernel image digest, task key, seed): any change to the kernel being
// modelled, the run's plan encoding, or the campaign seed changes the key, so
// stale results are never replayed against a different experiment.
//
// On-disk format (DIR/journal.pmkj): a header frame followed by entry frames,
// each CRC-framed by src/engine/wire.h:
//
//   [kJournalHeader: u32 format version | u64 context digest]
//   [kJournalEntry:  u64 key | u32 len | payload bytes]*
//
// Crash safety is by construction rather than by fsync discipline: entries
// are only ever appended, and Open() scans the file frame by frame, keeping
// every intact entry and TRUNCATING at the first torn or corrupt frame (a
// torn tail is exactly what a mid-append kill leaves behind). A header whose
// digest does not match the caller's context invalidates the whole file: it
// is rewritten empty rather than resumed from.
//
// Telemetry: engine.journal.{hits,misses,appends,truncated_bytes,invalidated}.

#ifndef SRC_ENGINE_JOURNAL_H_
#define SRC_ENGINE_JOURNAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/engine/wire.h"

namespace pmk::engine {

class ResultJournal {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr const char* kFileName = "journal.pmkj";

  // Content address of one run: FNV-1a64 chained over the context digest,
  // the task key string and the seed. Pure function of its inputs.
  static std::uint64_t Key(std::uint64_t context_digest, const std::string& task_key,
                           std::uint64_t seed);

  // Opens (creating if absent) DIR/journal.pmkj and replays every intact
  // entry into the in-memory index. |dir| is created if missing. A torn or
  // corrupt tail is truncated away; a version or digest mismatch rewrites
  // the journal empty. Throws std::runtime_error only on real I/O failure
  // (unwritable directory), never on corrupt contents.
  ResultJournal(const std::string& dir, std::uint64_t context_digest);

  // Result payload for |key|, if one was journaled.
  std::optional<std::vector<std::uint8_t>> Lookup(std::uint64_t key);

  // True if |key| is present without counting a telemetry hit/miss.
  bool Contains(std::uint64_t key) const { return entries_.count(key) != 0; }

  // Appends (key, payload) and flushes it to disk before returning: once
  // Append returns, a crash cannot lose this result. Duplicate keys are
  // ignored (the first result wins — re-executed runs are deterministic, so
  // the payloads are identical anyway).
  void Append(std::uint64_t key, const std::vector<std::uint8_t>& payload);

  std::size_t size() const { return entries_.size(); }
  const std::string& path() const { return path_; }
  std::uint64_t context_digest() const { return context_digest_; }

  // Bytes dropped by torn-tail recovery during Open (0 on a clean file).
  std::uint64_t truncated_bytes() const { return truncated_bytes_; }
  // True if Open() discarded a whole journal with a foreign digest/version.
  bool invalidated() const { return invalidated_; }

 private:
  void RewriteEmpty();

  std::string path_;
  std::uint64_t context_digest_ = 0;
  std::map<std::uint64_t, std::vector<std::uint8_t>> entries_;
  std::uint64_t truncated_bytes_ = 0;
  bool invalidated_ = false;
};

}  // namespace pmk::engine

#endif  // SRC_ENGINE_JOURNAL_H_
