#include "src/engine/parallel_bench.h"

#include <iomanip>

namespace pmk::engine {

void WriteParallelBenchJson(std::ostream& os, const std::vector<ParallelBenchResult>& results) {
  os << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ParallelBenchResult& r = results[i];
    os << "    {\n"
       << "      \"name\": \"" << r.name << "\",\n"
       << "      \"runs\": " << r.runs << ",\n"
       << "      \"jobs\": " << r.jobs << ",\n"
       << std::fixed << std::setprecision(6)
       << "      \"baseline_seconds\": " << r.baseline_seconds << ",\n"
       << "      \"engine_seconds\": " << r.engine_seconds << ",\n"
       << std::setprecision(2)
       << "      \"speedup\": " << r.Speedup() << ",\n"
       << "      \"identical_output\": " << (r.identical ? "true" : "false") << "\n"
       << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace pmk::engine
