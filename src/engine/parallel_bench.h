// Wall-clock speedup measurement for the parallel campaign engine.
//
// Times a baseline (serial, no checkpointing) against the engine path
// (checkpoint fork + job pool) and emits a stable-format BENCH_parallel.json.
// Wall-clock seconds are the ONLY nondeterministic values in the engine's
// output, and they are confined to this file's JSON — campaign CSVs stay
// byte-identical across runs and job counts.

#ifndef SRC_ENGINE_PARALLEL_BENCH_H_
#define SRC_ENGINE_PARALLEL_BENCH_H_

#include <chrono>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pmk::engine {

// Seconds consumed by fn(), measured on the steady clock.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ParallelBenchResult {
  std::string name;            // e.g. "exhaustive-sweep/retype"
  std::size_t runs = 0;        // scenario runs in each variant
  unsigned jobs = 1;           // worker threads in the engine variant
  double baseline_seconds = 0; // serial, boot-per-run
  double engine_seconds = 0;   // checkpointed, |jobs| workers
  bool identical = false;      // engine output byte-identical to baseline

  double Speedup() const {
    return engine_seconds > 0 ? baseline_seconds / engine_seconds : 0.0;
  }
};

// Writes the results as JSON (fixed field order, 6-decimal seconds).
void WriteParallelBenchJson(std::ostream& os, const std::vector<ParallelBenchResult>& results);

}  // namespace pmk::engine

#endif  // SRC_ENGINE_PARALLEL_BENCH_H_
