#include "src/engine/serialize.h"

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/hw/machine.h"
#include "src/kernel/image.h"
#include "src/kernel/kernel.h"
#include "src/kernel/objects.h"
#include "src/kernel/types.h"
#include "src/kir/executor.h"

namespace pmk::engine {

namespace {

// Address sentinel for a null intrusive pointer. Distinct from 0, which is
// the idle thread's base address (real objects start at 0x0100'0000).
constexpr std::uint64_t kNullAddr = ~std::uint64_t{0};

// Defensive ceilings on decoded container sizes: reject a corrupt length
// before it turns into a multi-gigabyte allocation. Generous vs. anything the
// model can produce (the modelled board has 128 MiB of physical memory).
constexpr std::uint32_t kMaxCNodeRadixBits = 16;
constexpr std::uint32_t kMaxVectorElems = 1u << 26;

[[noreturn]] void Bad(const std::string& detail) {
  throw WireError(WireFault::kBadValue, detail);
}

std::uint8_t CheckedEnum(std::uint8_t v, std::uint8_t max, const char* what) {
  if (v > max) {
    Bad(std::string(what) + " out of range: " + std::to_string(v));
  }
  return v;
}

// Bounds-checks an element count against both the defensive ceiling and the
// bytes actually remaining in the reader (each element needs at least
// |min_elem_bytes|), so a corrupt length can neither over-allocate nor force
// a long decode loop that only fails at the end.
std::uint32_t CheckedCount(WireReader& r, std::uint32_t count, std::size_t min_elem_bytes,
                           const char* what) {
  if (count > kMaxVectorElems) {
    Bad(std::string(what) + " count too large: " + std::to_string(count));
  }
  if (static_cast<std::uint64_t>(count) * min_elem_bytes > r.remaining()) {
    throw WireError(WireFault::kTruncated,
                    std::string(what) + " count exceeds remaining payload");
  }
  return count;
}

}  // namespace

// ---------------------------------------------------------------------------
// KernelConfig
// ---------------------------------------------------------------------------

void StateSerializer::WriteKernelConfig(WireWriter& w, const KernelConfig& c) {
  w.U8(static_cast<std::uint8_t>(c.scheduler));
  w.Bool(c.scheduler_bitmap);
  w.U8(static_cast<std::uint8_t>(c.vspace));
  w.Bool(c.preemptible_clearing);
  w.Bool(c.preemptible_deletion);
  w.Bool(c.preemptible_badged_abort);
  w.Bool(c.ipc_fastpath);
  w.Bool(c.cache_pinning);
  w.Bool(c.preemptible_send_receive);
  w.U32(c.clear_chunk_bytes);
  w.U32(c.kernel_timer_line);
  w.U32(c.timeslice_ticks);
  w.U32(c.max_ep_queue);
  w.U32(c.max_lazy_stale);
  w.U32(c.max_revoke_descendants);
  w.U32(c.max_asid_pools);
  w.U32(c.max_object_bits);
}

KernelConfig StateSerializer::ReadKernelConfig(WireReader& r) {
  KernelConfig c;
  c.scheduler = static_cast<SchedulerKind>(CheckedEnum(r.U8(), 1, "SchedulerKind"));
  c.scheduler_bitmap = r.Bool();
  c.vspace = static_cast<VSpaceKind>(CheckedEnum(r.U8(), 1, "VSpaceKind"));
  c.preemptible_clearing = r.Bool();
  c.preemptible_deletion = r.Bool();
  c.preemptible_badged_abort = r.Bool();
  c.ipc_fastpath = r.Bool();
  c.cache_pinning = r.Bool();
  c.preemptible_send_receive = r.Bool();
  c.clear_chunk_bytes = r.U32();
  c.kernel_timer_line = r.U32();
  c.timeslice_ticks = r.U32();
  c.max_ep_queue = r.U32();
  c.max_lazy_stale = r.U32();
  c.max_revoke_descendants = r.U32();
  c.max_asid_pools = r.U32();
  c.max_object_bits = r.U32();
  return c;
}

// ---------------------------------------------------------------------------
// Histogram (sparse bucket pairs)
// ---------------------------------------------------------------------------

void StateSerializer::WriteHistogram(WireWriter& w, const LatencyHistogram& h) {
  w.U64(h.count_);
  w.U64(h.min_);
  w.U64(h.max_);
  w.F64(h.sum_);
  std::uint32_t n = 0;
  for (const std::uint64_t b : h.buckets_) {
    if (b != 0) {
      n++;
    }
  }
  w.U32(n);
  for (std::uint32_t i = 0; i < h.buckets_.size(); ++i) {
    if (h.buckets_[i] != 0) {
      w.U32(i);
      w.U64(h.buckets_[i]);
    }
  }
}

LatencyHistogram StateSerializer::ReadHistogram(WireReader& r) {
  LatencyHistogram h;
  h.count_ = r.U64();
  h.min_ = r.U64();
  h.max_ = r.U64();
  h.sum_ = r.F64();
  const std::uint32_t n = CheckedCount(r, r.U32(), 12, "histogram bucket");
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t index = r.U32();
    const std::uint64_t count = r.U64();
    if (index > kMaxVectorElems || count == 0) {
      Bad("histogram bucket entry invalid");
    }
    if (index >= h.buckets_.size()) {
      h.buckets_.resize(index + 1);
    }
    if (h.buckets_[index] != 0) {
      Bad("histogram bucket index repeated");
    }
    h.buckets_[index] = count;
    total += count;
  }
  if (total != h.count_) {
    Bad("histogram bucket sum disagrees with count");
  }
  return h;
}

// ---------------------------------------------------------------------------
// SerializeSystem
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> StateSerializer::SerializeSystem(const System& sys) {
  const Kernel& k = *sys.kernel_;
  const Machine& m = *sys.machine_;
  if (k.exec_.InPath()) {
    throw std::logic_error("SerializeSystem: executor is mid-path; serialize between kernel entries");
  }

  WireWriter w;
  w.U32(kSystemImageVersion);

  // --- configs ---
  WriteKernelConfig(w, sys.kernel_config);

  const auto write_cache_config = [&w](const CacheConfig& c) {
    w.Str(c.name);
    w.U32(c.size_bytes);
    w.U32(c.ways);
    w.U32(c.line_bytes);
    w.U8(static_cast<std::uint8_t>(c.policy));
  };
  const MachineConfig& mc = m.config_;
  w.U64(mc.clock.hz);
  write_cache_config(mc.l1i);
  write_cache_config(mc.l1d);
  write_cache_config(mc.l2);
  w.Bool(mc.l2_enabled);
  w.Bool(mc.bpred.enabled);
  w.U32(mc.bpred.btb_entries);
  w.U64(mc.bpred.disabled_cost);
  w.U64(mc.bpred.correct_taken);
  w.U64(mc.bpred.correct_not_taken);
  w.U64(mc.bpred.mispredict);
  w.U64(mc.memory.l2_hit_latency);
  w.U64(mc.memory.mem_latency_l2_off);
  w.U64(mc.memory.mem_latency_l2_on);
  w.U64(mc.memory.load_use_stall);
  w.U64(mc.timer_period);

  // --- machine state ---
  w.U64(m.now_);
  w.U64(m.counters_.instructions);
  w.U64(m.counters_.l1i_accesses);
  w.U64(m.counters_.l1i_misses);
  w.U64(m.counters_.l1d_accesses);
  w.U64(m.counters_.l1d_misses);
  w.U64(m.counters_.l2_accesses);
  w.U64(m.counters_.l2_misses);
  w.U64(m.counters_.branches);
  w.U64(m.counters_.branch_mispredicts);
  w.U64(m.counters_.mem_stall_cycles);

  const auto write_cache = [&w](const Cache& c) {
    w.U32(static_cast<std::uint32_t>(c.tags_.size()));
    // Tags are stored 32-bit in memory but stay 64-bit on the wire; the
    // all-ones invalid sentinel round-trips through the truncating decode.
    for (const std::uint32_t t : c.tags_) {
      w.U64(t);
    }
    w.U32(static_cast<std::uint32_t>(c.rr_next_.size()));
    for (const std::uint32_t v : c.rr_next_) {
      w.U32(v);
    }
    w.U32(c.locked_ways_);
    w.U64(c.lfsr_);
    w.U64(c.stats_.accesses);
    w.U64(c.stats_.hits);
    w.U64(c.stats_.misses);
    // ref_lines_ is a derived mirror of tags_, rebuilt on decode; writing it
    // would make the payload depend on the host's benchmark-reference mode.
  };
  write_cache(m.l1i_);
  write_cache(m.l1d_);
  write_cache(m.l2_);

  w.U32(static_cast<std::uint32_t>(m.bpred_.btb_.size()));
  for (const auto& e : m.bpred_.btb_) {
    w.U64(e.pc);
    w.U8(e.counter);
    w.Bool(e.valid);
  }
  w.U64(m.bpred_.mispredicts_);

  w.U32(m.irq_.pending_bits_);
  w.U32(m.irq_.masked_bits_);
  for (const Cycles t : m.irq_.assert_time_) {
    w.U64(t);
  }
  w.U64(m.irq_.spurious_acks_);
  w.U64(m.irq_.coalesced_asserts_);

  w.U64(m.timer_.period_);
  w.U64(m.timer_.next_fire_);
  w.Bool(m.timer_.always_due_);
  // deadline_ is derived; RecomputeDeadline() restores it on decode.

  // --- kernel scalar state ---
  w.U8(static_cast<std::uint8_t>(k.exec_.charge_mode()));
  w.U64(k.alloc_next_);
  w.U32(k.bitmap_l1_);
  for (const std::uint32_t b : k.bitmap_l2_) {
    w.U32(b);
  }
  w.Bool(k.choose_new_);
  for (const Addr a : k.irq_bindings_) {
    w.U64(a);
  }
  w.U64(k.asid_pool_);
  w.U32(static_cast<std::uint32_t>(k.irq_latencies_.size()));
  for (const Cycles c : k.irq_latencies_) {
    w.U64(c);
  }
  w.U64(k.fastpath_hits_);

  // --- object heap ---
  const auto tcb_addr = [](const TcbObj* t) -> std::uint64_t {
    return t == nullptr ? kNullAddr : t->base;
  };
  const auto slot_addr = [](const CapSlot* s) -> std::uint64_t {
    return s == nullptr ? kNullAddr : s->addr;
  };
  const auto write_cap = [&w](const Cap& c) {
    w.U8(static_cast<std::uint8_t>(c.type));
    w.U64(c.obj);
    w.U64(c.badge);
    w.Bool(c.rights.read);
    w.Bool(c.rights.write);
    w.Bool(c.rights.grant);
  };
  const auto write_tcb = [&](const TcbObj& t) {
    w.U8(static_cast<std::uint8_t>(t.state));
    w.U8(t.prio);
    w.U64(t.cspace_root);
    w.U64(t.vspace);
    w.U64(tcb_addr(t.sched_next));
    w.U64(tcb_addr(t.sched_prev));
    w.Bool(t.in_run_queue);
    w.U64(tcb_addr(t.ep_next));
    w.U64(tcb_addr(t.ep_prev));
    w.U64(t.blocked_on);
    w.U64(t.blocked_badge);
    w.Bool(t.blocked_is_call);
    w.U64(tcb_addr(t.reply_to));
    for (const std::uint64_t mr : t.mrs) {
      w.U64(mr);
    }
    w.U32(t.msg_len);
    w.U64(t.recv_badge);
    w.U8(static_cast<std::uint8_t>(t.last_error));
    w.U32(t.timeslice);
    w.U32(t.recv_slot);
    w.U32(t.fault_handler_cptr);
  };
  const auto write_object = [&](const KObject& o) {
    w.U8(static_cast<std::uint8_t>(o.type));
    w.U64(o.base);
    w.U8(o.size_bits);
    switch (o.type) {
      case ObjType::kUntyped: {
        const auto& u = static_cast<const UntypedObj&>(o);
        w.U64(u.watermark);
        w.Bool(u.retype_active);
        w.U8(static_cast<std::uint8_t>(u.retype_type));
        w.U8(u.retype_bits);
        w.U64(u.retype_base);
        w.U64(u.cleared_bytes);
        break;
      }
      case ObjType::kCNode: {
        const auto& cn = static_cast<const CNodeObj&>(o);
        w.U8(cn.radix_bits);
        w.U8(cn.guard_bits);
        w.U32(cn.guard_value);
        for (const CapSlot& s : cn.slots) {
          write_cap(s.cap);
          w.U64(slot_addr(s.mdb_prev));
          w.U64(slot_addr(s.mdb_next));
          w.U16(s.mdb_depth);
          w.U64(s.addr);
        }
        break;
      }
      case ObjType::kEndpoint: {
        const auto& ep = static_cast<const EndpointObj&>(o);
        w.U8(static_cast<std::uint8_t>(ep.qstate));
        w.U64(tcb_addr(ep.q_head));
        w.U64(tcb_addr(ep.q_tail));
        w.U32(ep.q_len);
        w.Bool(ep.active);
        w.U64(ep.pending_notifications);
        w.Bool(ep.abort.valid);
        w.U64(ep.abort.badge);
        w.U64(tcb_addr(ep.abort.resume));
        w.U64(tcb_addr(ep.abort.end_marker));
        w.U64(tcb_addr(ep.abort.aborter));
        break;
      }
      case ObjType::kTcb:
        write_tcb(static_cast<const TcbObj&>(o));
        break;
      case ObjType::kFrame: {
        const auto& f = static_cast<const FrameObj&>(o);
        w.Bool(f.mapped);
        w.U32(f.asid);
        w.U64(f.mapped_pd);
        w.U64(f.vaddr);
        break;
      }
      case ObjType::kPageTable: {
        const auto& pt = static_cast<const PageTableObj&>(o);
        for (const Addr p : pt.pte) {
          w.U64(p);
        }
        for (const CapSlot* s : pt.shadow) {
          w.U64(slot_addr(s));
        }
        w.U32(pt.mapped_count);
        w.U32(pt.lowest_mapped);
        w.Bool(pt.mapped_in_pd);
        w.U64(pt.parent_pd);
        w.U32(pt.pd_index);
        break;
      }
      case ObjType::kPageDir: {
        const auto& pd = static_cast<const PageDirObj&>(o);
        for (const Addr p : pd.pde) {
          w.U64(p);
        }
        for (const bool s : pd.is_section) {
          w.Bool(s);
        }
        for (const CapSlot* s : pd.shadow) {
          w.U64(slot_addr(s));
        }
        w.U32(pd.mapped_count);
        w.U32(pd.lowest_mapped);
        w.Bool(pd.global_mappings_present);
        w.U32(pd.asid);
        break;
      }
      case ObjType::kAsidPool: {
        const auto& ap = static_cast<const AsidPoolObj&>(o);
        for (const Addr p : ap.pd) {
          w.U64(p);
        }
        break;
      }
      case ObjType::kIrqHandler: {
        const auto& ih = static_cast<const IrqHandlerObj&>(o);
        w.U32(ih.line);
        w.U64(ih.notify_ep);
        break;
      }
      default:
        throw std::logic_error("SerializeSystem: unserializable object type in heap");
    }
  };

  // Idle thread (not part of the object table; base 0 by construction).
  write_tcb(*k.idle_);

  const ObjectTable& objs = k.objs_;
  w.U32(static_cast<std::uint32_t>(objs.objects().size() + objs.untypeds().size()));
  for (const auto& [base, obj] : objs.objects()) {
    write_object(*obj);
  }
  for (const auto& [base, obj] : objs.untypeds()) {
    write_object(*obj);
  }

  // --- kernel roots ---
  for (const auto& q : k.queues_) {
    w.U64(tcb_addr(q.head));
    w.U64(tcb_addr(q.tail));
  }
  w.U64(tcb_addr(k.current_));
  w.U64(tcb_addr(k.sched_action_));

  // --- system roots ---
  w.U64(sys.root_->base);
  w.U32(sys.next_slot_);

  return w.Take();
}

// ---------------------------------------------------------------------------
// DeserializeSystem
// ---------------------------------------------------------------------------

std::unique_ptr<System> StateSerializer::DeserializeSystem(const std::uint8_t* data,
                                                           std::size_t n) {
  try {
    WireReader r(data, n);

    const std::uint32_t version = r.U32();
    if (version != kSystemImageVersion) {
      throw WireError(WireFault::kBadVersion,
                      "system image version " + std::to_string(version) + ", expected " +
                          std::to_string(kSystemImageVersion));
    }

    // --- configs ---
    const KernelConfig kc = ReadKernelConfig(r);

    const auto read_cache_config = [&r](CacheConfig& c) {
      c.name = r.Str();
      c.size_bytes = r.U32();
      c.ways = r.U32();
      c.line_bytes = r.U32();
      c.policy = static_cast<ReplacementPolicy>(CheckedEnum(r.U8(), 1, "ReplacementPolicy"));
    };
    MachineConfig mc;
    mc.clock.hz = r.U64();
    read_cache_config(mc.l1i);
    read_cache_config(mc.l1d);
    read_cache_config(mc.l2);
    mc.l2_enabled = r.Bool();
    mc.bpred.enabled = r.Bool();
    mc.bpred.btb_entries = r.U32();
    mc.bpred.disabled_cost = r.U64();
    mc.bpred.correct_taken = r.U64();
    mc.bpred.correct_not_taken = r.U64();
    mc.bpred.mispredict = r.U64();
    mc.memory.l2_hit_latency = r.U64();
    mc.memory.mem_latency_l2_off = r.U64();
    mc.memory.mem_latency_l2_on = r.U64();
    mc.memory.load_use_stall = r.U64();
    mc.timer_period = r.U64();
    if (mc.bpred.btb_entries == 0 || mc.bpred.btb_entries > kMaxVectorElems) {
      Bad("btb_entries out of range");
    }
    if (static_cast<std::uint64_t>(mc.l1i.size_bytes) + mc.l1d.size_bytes + mc.l2.size_bytes >
        (std::uint64_t{1} << 30)) {
      Bad("cache geometry too large");
    }

    // Cache geometry validation happens in the Machine constructor
    // (CacheConfig::Validate throws std::invalid_argument, mapped to
    // kBadValue by the outer catch).
    auto machine = std::make_unique<Machine>(mc);

    // --- machine state ---
    Machine& m = *machine;
    m.now_ = r.U64();
    m.counters_.instructions = r.U64();
    m.counters_.l1i_accesses = r.U64();
    m.counters_.l1i_misses = r.U64();
    m.counters_.l1d_accesses = r.U64();
    m.counters_.l1d_misses = r.U64();
    m.counters_.l2_accesses = r.U64();
    m.counters_.l2_misses = r.U64();
    m.counters_.branches = r.U64();
    m.counters_.branch_mispredicts = r.U64();
    m.counters_.mem_stall_cycles = r.U64();

    const auto read_cache = [&r](Cache& c) {
      const std::uint32_t n_tags = CheckedCount(r, r.U32(), 8, "cache tag");
      if (n_tags != c.tags_.size()) {
        Bad("cache tag count disagrees with geometry");
      }
      for (std::uint32_t& t : c.tags_) {
        t = static_cast<std::uint32_t>(r.U64());
      }
      const std::uint32_t n_rr = CheckedCount(r, r.U32(), 4, "cache rr pointer");
      if (n_rr != c.rr_next_.size()) {
        Bad("cache rr pointer count disagrees with geometry");
      }
      for (std::uint32_t& v : c.rr_next_) {
        v = r.U32();
        if (v >= c.ways_) {
          Bad("cache rr pointer out of range");
        }
      }
      c.locked_ways_ = r.U32();
      c.lfsr_ = r.U64();
      // The restore rewrote tags_: advance the line-state generation so any
      // hit memo keyed on the old contents (Cache::Gen) is invalidated.
      c.gen_++;
      c.stats_.accesses = r.U64();
      c.stats_.hits = r.U64();
      c.stats_.misses = r.U64();
      if (!c.ref_lines_.empty()) {
        c.SyncRefMirror();  // the host is in reference mode: rebuild the mirror
      }
    };
    read_cache(m.l1i_);
    read_cache(m.l1d_);
    read_cache(m.l2_);

    const std::uint32_t n_btb = CheckedCount(r, r.U32(), 10, "btb entry");
    if (n_btb != m.bpred_.btb_.size()) {
      Bad("btb entry count disagrees with config");
    }
    for (auto& e : m.bpred_.btb_) {
      e.pc = r.U64();
      e.counter = r.U8();
      e.valid = r.Bool();
      if (e.counter > 3) {
        Bad("btb counter out of range");
      }
    }
    m.bpred_.mispredicts_ = r.U64();

    m.irq_.pending_bits_ = r.U32();
    m.irq_.masked_bits_ = r.U32();
    for (Cycles& t : m.irq_.assert_time_) {
      t = r.U64();
    }
    m.irq_.spurious_acks_ = r.U64();
    m.irq_.coalesced_asserts_ = r.U64();

    m.timer_.period_ = r.U64();
    m.timer_.next_fire_ = r.U64();
    m.timer_.always_due_ = r.Bool();
    m.timer_.RecomputeDeadline();

    // --- kernel ---
    auto kernel = std::make_unique<Kernel>(kc, machine.get());
    Kernel& k = *kernel;
    k.exec_.set_charge_mode(
        static_cast<Executor::ChargeMode>(CheckedEnum(r.U8(), 3, "ChargeMode")));
    k.alloc_next_ = r.U64();
    k.bitmap_l1_ = r.U32();
    for (std::uint32_t& b : k.bitmap_l2_) {
      b = r.U32();
    }
    k.choose_new_ = r.Bool();
    for (Addr& a : k.irq_bindings_) {
      a = r.U64();
    }
    k.asid_pool_ = r.U64();
    const std::uint32_t n_lat = CheckedCount(r, r.U32(), 8, "irq latency");
    k.irq_latencies_.resize(n_lat);
    for (Cycles& c : k.irq_latencies_) {
      c = r.U64();
    }
    k.fastpath_hits_ = r.U64();

    // --- object heap ---
    // Pointer fields arrive as addresses; record fixups and resolve them once
    // every object exists (the same remap discipline as snapshot.cc).
    struct TcbFixup {
      TcbObj** where;
      std::uint64_t target;
    };
    struct SlotFixup {
      CapSlot** where;
      std::uint64_t target;
    };
    std::vector<TcbFixup> tcb_fixups;
    std::vector<SlotFixup> slot_fixups;
    std::map<std::uint64_t, TcbObj*> tcb_by_base;
    std::map<std::uint64_t, CapSlot*> slot_by_addr;

    const auto tcb_ref = [&](TcbObj** where) { tcb_fixups.push_back({where, r.U64()}); };
    const auto slot_ref = [&](CapSlot** where) { slot_fixups.push_back({where, r.U64()}); };

    const auto read_cap = [&](Cap& c) {
      c.type = static_cast<ObjType>(
          CheckedEnum(r.U8(), static_cast<std::uint8_t>(ObjType::kReply), "cap ObjType"));
      c.obj = r.U64();
      c.badge = r.U64();
      c.rights.read = r.Bool();
      c.rights.write = r.Bool();
      c.rights.grant = r.Bool();
    };
    const auto read_tcb = [&](TcbObj& t) {
      t.state = static_cast<ThreadState>(
          CheckedEnum(r.U8(), static_cast<std::uint8_t>(ThreadState::kIdle), "ThreadState"));
      t.prio = r.U8();
      t.cspace_root = r.U64();
      t.vspace = r.U64();
      tcb_ref(&t.sched_next);
      tcb_ref(&t.sched_prev);
      t.in_run_queue = r.Bool();
      tcb_ref(&t.ep_next);
      tcb_ref(&t.ep_prev);
      t.blocked_on = r.U64();
      t.blocked_badge = r.U64();
      t.blocked_is_call = r.Bool();
      tcb_ref(&t.reply_to);
      for (std::uint64_t& mr : t.mrs) {
        mr = r.U64();
      }
      t.msg_len = r.U32();
      t.recv_badge = r.U64();
      t.last_error = static_cast<KError>(
          CheckedEnum(r.U8(), static_cast<std::uint8_t>(KError::kDeleted), "KError"));
      t.timeslice = r.U32();
      t.recv_slot = r.U32();
      t.fault_handler_cptr = r.U32();
    };

    // Idle thread: overwrite the freshly-constructed kernel's idle TCB.
    read_tcb(*k.idle_storage_);
    if (k.idle_storage_->state != ThreadState::kIdle || k.idle_storage_->base != 0) {
      Bad("idle thread record malformed");
    }
    tcb_by_base[0] = k.idle_;

    const std::uint32_t n_objects = CheckedCount(r, r.U32(), 10, "kernel object");
    for (std::uint32_t i = 0; i < n_objects; ++i) {
      const auto type = static_cast<ObjType>(r.U8());
      const Addr base = r.U64();
      const std::uint8_t size_bits = r.U8();
      if (size_bits > 63) {
        Bad("object size_bits out of range");
      }
      std::unique_ptr<KObject> holder;
      switch (type) {
        case ObjType::kUntyped: {
          auto u = std::make_unique<UntypedObj>();
          u->watermark = r.U64();
          u->retype_active = r.Bool();
          u->retype_type = static_cast<ObjType>(
              CheckedEnum(r.U8(), static_cast<std::uint8_t>(ObjType::kReply), "retype ObjType"));
          u->retype_bits = r.U8();
          u->retype_base = r.U64();
          u->cleared_bytes = r.U64();
          holder = std::move(u);
          break;
        }
        case ObjType::kCNode: {
          auto cn = std::make_unique<CNodeObj>();
          cn->radix_bits = r.U8();
          if (cn->radix_bits > kMaxCNodeRadixBits) {
            Bad("cnode radix_bits out of range");
          }
          cn->guard_bits = r.U8();
          cn->guard_value = r.U32();
          cn->slots.resize(std::size_t{1} << cn->radix_bits);
          for (CapSlot& s : cn->slots) {
            read_cap(s.cap);
            slot_ref(&s.mdb_prev);
            slot_ref(&s.mdb_next);
            s.mdb_depth = r.U16();
            s.addr = r.U64();
          }
          holder = std::move(cn);
          break;
        }
        case ObjType::kEndpoint: {
          auto ep = std::make_unique<EndpointObj>();
          ep->qstate = static_cast<EndpointObj::QState>(CheckedEnum(r.U8(), 2, "QState"));
          tcb_ref(&ep->q_head);
          tcb_ref(&ep->q_tail);
          ep->q_len = r.U32();
          ep->active = r.Bool();
          ep->pending_notifications = r.U64();
          ep->abort.valid = r.Bool();
          ep->abort.badge = r.U64();
          tcb_ref(&ep->abort.resume);
          tcb_ref(&ep->abort.end_marker);
          tcb_ref(&ep->abort.aborter);
          holder = std::move(ep);
          break;
        }
        case ObjType::kTcb: {
          auto t = std::make_unique<TcbObj>();
          read_tcb(*t);
          holder = std::move(t);
          break;
        }
        case ObjType::kFrame: {
          auto f = std::make_unique<FrameObj>();
          f->mapped = r.Bool();
          f->asid = r.U32();
          f->mapped_pd = r.U64();
          f->vaddr = r.U64();
          holder = std::move(f);
          break;
        }
        case ObjType::kPageTable: {
          auto pt = std::make_unique<PageTableObj>();
          for (Addr& p : pt->pte) {
            p = r.U64();
          }
          for (CapSlot*& s : pt->shadow) {
            slot_ref(&s);
          }
          pt->mapped_count = r.U32();
          pt->lowest_mapped = r.U32();
          pt->mapped_in_pd = r.Bool();
          pt->parent_pd = r.U64();
          pt->pd_index = r.U32();
          holder = std::move(pt);
          break;
        }
        case ObjType::kPageDir: {
          auto pd = std::make_unique<PageDirObj>();
          for (Addr& p : pd->pde) {
            p = r.U64();
          }
          for (bool& s : pd->is_section) {
            s = r.Bool();
          }
          for (CapSlot*& s : pd->shadow) {
            slot_ref(&s);
          }
          pd->mapped_count = r.U32();
          pd->lowest_mapped = r.U32();
          pd->global_mappings_present = r.Bool();
          pd->asid = r.U32();
          holder = std::move(pd);
          break;
        }
        case ObjType::kAsidPool: {
          auto ap = std::make_unique<AsidPoolObj>();
          for (Addr& p : ap->pd) {
            p = r.U64();
          }
          holder = std::move(ap);
          break;
        }
        case ObjType::kIrqHandler: {
          auto ih = std::make_unique<IrqHandlerObj>();
          ih->line = r.U32();
          ih->notify_ep = r.U64();
          holder = std::move(ih);
          break;
        }
        default:
          Bad("heap ObjType out of range: " + std::to_string(static_cast<unsigned>(type)));
      }
      holder->type = type;
      holder->base = base;
      holder->size_bits = size_bits;

      // InsertUnchecked silently ignores a duplicate key (std::map::emplace),
      // so duplicates must be rejected here.
      const bool dup = type == ObjType::kUntyped ? k.objs_.untypeds().count(base) != 0
                                                 : k.objs_.objects().count(base) != 0;
      if (dup) {
        Bad("duplicate object base " + std::to_string(base));
      }
      KObject* inserted = k.objs_.InsertUnchecked(std::move(holder));
      if (auto* t = dynamic_cast<TcbObj*>(inserted)) {
        if (t->base == 0 || !tcb_by_base.emplace(t->base, t).second) {
          Bad("tcb base collides");
        }
      } else if (auto* cn = dynamic_cast<CNodeObj*>(inserted)) {
        for (CapSlot& s : cn->slots) {
          if (!slot_by_addr.emplace(s.addr, &s).second) {
            Bad("cap slot address collides");
          }
        }
      }
    }

    // --- resolve pointer fixups ---
    for (const TcbFixup& f : tcb_fixups) {
      if (f.target == kNullAddr) {
        *f.where = nullptr;
        continue;
      }
      const auto it = tcb_by_base.find(f.target);
      if (it == tcb_by_base.end()) {
        Bad("dangling tcb pointer to base " + std::to_string(f.target));
      }
      *f.where = it->second;
    }
    for (const SlotFixup& f : slot_fixups) {
      if (f.target == kNullAddr) {
        *f.where = nullptr;
        continue;
      }
      const auto it = slot_by_addr.find(f.target);
      if (it == slot_by_addr.end()) {
        Bad("dangling cap slot pointer to addr " + std::to_string(f.target));
      }
      *f.where = it->second;
    }

    // --- kernel roots ---
    const auto tcb_at = [&](std::uint64_t addr, const char* what) -> TcbObj* {
      if (addr == kNullAddr) {
        return nullptr;
      }
      const auto it = tcb_by_base.find(addr);
      if (it == tcb_by_base.end()) {
        Bad(std::string("dangling ") + what + " pointer");
      }
      return it->second;
    };
    for (auto& q : k.queues_) {
      q.head = tcb_at(r.U64(), "run queue head");
      q.tail = tcb_at(r.U64(), "run queue tail");
    }
    k.current_ = tcb_at(r.U64(), "current thread");
    if (k.current_ == nullptr) {
      Bad("current thread is null");
    }
    k.sched_action_ = tcb_at(r.U64(), "scheduler action");

    // --- system roots ---
    auto sys = std::unique_ptr<System>(new System());
    sys->kernel_config = kc;
    sys->machine_config = mc;
    const Addr root_base = r.U64();
    sys->next_slot_ = r.U32();
    r.ExpectEnd("system image");

    sys->machine_ = std::move(machine);
    sys->kernel_ = std::move(kernel);
    sys->root_ = sys->kernel_->objects().Get<CNodeObj>(root_base);
    if (sys->root_ == nullptr) {
      Bad("root cnode missing from heap");
    }

    // Decoded state must satisfy the kernel's own invariants; a payload that
    // decodes cleanly but describes an inconsistent heap is still corrupt.
    sys->kernel_->CheckInvariants();
    return sys;
  } catch (const WireError&) {
    throw;
  } catch (const std::exception& e) {
    // Cache geometry rejections, invariant violations, anything else the
    // constructors throw: surface uniformly as corrupt-payload errors.
    throw WireError(WireFault::kBadValue, e.what());
  }
}

// ---------------------------------------------------------------------------
// KernelImageDigest
// ---------------------------------------------------------------------------

std::uint64_t StateSerializer::KernelImageDigest(const KernelConfig& config) {
  WireWriter w;
  w.U32(kSystemImageVersion);
  WriteKernelConfig(w, config);
  const std::shared_ptr<const KernelImage> image = SharedKernelImage(config);
  const Program& prog = image->prog;
  w.U64(prog.num_blocks());
  w.U64(prog.text_bytes());
  for (std::size_t i = 0; i < prog.num_blocks(); ++i) {
    const HotBlock& h = prog.hot(static_cast<BlockId>(i));
    w.U64(h.branch_pc);
    w.U64(h.ifetch_first_line);
    w.U32(h.ifetch_line_count);
    w.U32(h.instr_count);
    w.U32(h.raw_cycles);
    w.U32(static_cast<std::uint32_t>(h.succ0));
    w.U32(static_cast<std::uint32_t>(h.succ1));
    w.U8(h.nsuccs);
    w.U8(static_cast<std::uint8_t>(h.branch));
    w.Bool(h.is_return);
    w.Bool(h.is_preemption_point);
  }
  return Fnv1a64(w.bytes().data(), w.bytes().size());
}

}  // namespace pmk::engine
