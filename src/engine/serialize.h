// Full-fidelity System serialization: the shard engine's checkpoint wire
// format.
//
// SerializeSystem captures EVERYTHING a System::Clone would copy — machine
// microarchitecture (cache tag arrays and replacement state, branch
// predictor, pending IRQs with assertion times, timer phase, cycle and PMU
// counters), the complete kernel object heap, scheduler queues/bitmaps and
// roots — as a flat byte payload, and DeserializeSystem rebuilds a System
// that replays cycle-for-cycle identically. Intrusive pointers are encoded
// structurally (a TcbObj* as its object's base address, a CapSlot* as the
// slot's physical address) and re-resolved after decoding, mirroring
// src/kernel/snapshot.cc's remap passes; a dangling encoded pointer throws
// rather than aliasing.
//
// The payload is CANONICAL: serialize(deserialize(serialize(s))) ==
// serialize(s) byte-for-byte, which the round-trip tests exploit. Corrupt
// input throws engine::WireError (never crashes); the framed form produced
// by SystemCheckpoint::Serialize additionally CRC-protects the payload so a
// single flipped bit is detected before any field is interpreted.
//
// StateSerializer is a friend of every class whose private state it moves;
// it has no instance state and no public constructor.

#ifndef SRC_ENGINE_SERIALIZE_H_
#define SRC_ENGINE_SERIALIZE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/engine/wire.h"
#include "src/obs/histogram.h"
#include "src/sim/workload.h"

namespace pmk::engine {

class StateSerializer {
 public:
  StateSerializer() = delete;

  // Version stamped into every payload; bumped on any layout change so a
  // stale journal or checkpoint image fails loudly with kBadVersion.
  static constexpr std::uint32_t kSystemImageVersion = 1;

  // Raw (unframed) payload. Throws std::logic_error if the executor is
  // mid-path (checkpoints exist between kernel entries only).
  static std::vector<std::uint8_t> SerializeSystem(const System& sys);

  // Rebuilds a System from SerializeSystem's payload. Throws WireError on
  // any corruption: truncation, out-of-range enums, dangling encoded
  // pointers, or a decoded heap that fails Kernel::CheckInvariants.
  static std::unique_ptr<System> DeserializeSystem(const std::uint8_t* data, std::size_t n);
  static std::unique_ptr<System> DeserializeSystem(const std::vector<std::uint8_t>& payload) {
    return DeserializeSystem(payload.data(), payload.size());
  }

  // Digest identifying the kernel-image/analysis context a campaign result
  // depends on: FNV-1a64 over the serialized KernelConfig and every laid-out
  // block of its kernel image (costs, CFG edges, preemption points). Editing
  // src/kernel/image.cc or flipping a config switch changes the digest, so
  // journaled results from the old kernel are never replayed against the new.
  static std::uint64_t KernelImageDigest(const KernelConfig& config);

  // LatencyHistogram payload helpers (sparse bucket encoding), shared by the
  // campaign's ScenarioResult wire format.
  static void WriteHistogram(WireWriter& w, const LatencyHistogram& h);
  static LatencyHistogram ReadHistogram(WireReader& r);

 private:
  // KernelConfig codec, shared by SerializeSystem and KernelImageDigest.
  static void WriteKernelConfig(WireWriter& w, const KernelConfig& c);
  static KernelConfig ReadKernelConfig(WireReader& r);
};

}  // namespace pmk::engine

#endif  // SRC_ENGINE_SERIALIZE_H_
