#include "src/engine/shard.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "src/engine/job_pool.h"
#include "src/engine/journal.h"
#include "src/engine/wire.h"
#include "src/obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define PMK_SHARD_HAVE_FORK 1
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace pmk::engine {

namespace {

bool g_in_worker = false;

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

// ------------------------------------------------------------- pipe protocol
//
// Worker -> supervisor stream. Every frame resets the worker's watchdog, so
// the protocol doubles as a heartbeat: a worker making progress is never
// killed, however long the whole shard takes.

std::vector<std::uint8_t> EncodeStart(std::uint32_t ordinal) {
  WireWriter w;
  w.U32(ordinal);
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, FrameType::kTaskStart, w.bytes());
  return frame;
}

std::vector<std::uint8_t> EncodeResult(std::uint32_t ordinal,
                                       const std::vector<std::uint8_t>& payload) {
  WireWriter w;
  w.U32(ordinal);
  w.Bytes(payload);
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, FrameType::kTaskResult, w.bytes());
  return frame;
}

std::vector<std::uint8_t> EncodeDone(std::uint32_t n_completed) {
  WireWriter w;
  w.U32(n_completed);
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, FrameType::kWorkerDone, w.bytes());
  return frame;
}

#if PMK_SHARD_HAVE_FORK

bool WriteAll(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;  // supervisor gone (EPIPE) or fd broken
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Worker body. Never returns: _exit() skips atexit/static destructors (and
// sanitizer leak sweeps) in the forked copy — the parent owns process-level
// cleanup; the child's only contract is the frame stream.
[[noreturn]] void WorkerMain(const std::vector<ShardTask>& tasks,
                             const std::vector<std::uint32_t>& ordinals, int write_fd,
                             const ShardOptions& opts) {
  g_in_worker = true;
  ::signal(SIGPIPE, SIG_IGN);  // a dead supervisor surfaces as EPIPE, not SIGPIPE
  try {
    if (opts.prepare_worker) {
      opts.prepare_worker();
    }
    std::mutex pipe_mu;
    bool write_failed = false;
    RunJobs(ordinals.size(), opts.jobs_per_shard, [&](std::size_t k) {
      const std::uint32_t ord = ordinals[k];
      {
        const std::lock_guard<std::mutex> lock(pipe_mu);
        if (write_failed || !WriteAll(write_fd, EncodeStart(ord))) {
          write_failed = true;
          return;
        }
      }
      const std::vector<std::uint8_t> payload = tasks[ord].execute();
      const std::lock_guard<std::mutex> lock(pipe_mu);
      if (!write_failed && !WriteAll(write_fd, EncodeResult(ord, payload))) {
        write_failed = true;
      }
    });
    if (write_failed) {
      ::_exit(3);
    }
    WriteAll(write_fd, EncodeDone(static_cast<std::uint32_t>(ordinals.size())));
  } catch (...) {
    // A throwing task (or checkpoint deserialization failure in
    // prepare_worker) is a worker death: the supervisor blames the in-flight
    // ordinals and retries/quarantines them. No unwinding past fork().
    ::_exit(2);
  }
  ::_exit(0);
}

#endif  // PMK_SHARD_HAVE_FORK

// ------------------------------------------------------------- supervisor

struct Metrics {
  obs::Counter workers_spawned{"engine.shard.workers_spawned"};
  obs::Counter retries{"engine.shard.retries"};
  obs::Counter timeouts{"engine.shard.timeouts"};
  obs::Counter quarantines{"engine.shard.quarantines"};
  obs::Counter worker_deaths{"engine.shard.worker_deaths"};
  obs::Counter fallbacks{"engine.shard.fallbacks"};
  obs::Counter tasks_executed{"engine.shard.tasks_executed"};
  obs::Timer worker_wall{"engine.shard.worker_wall_nanos"};
};

Metrics& M() {
  static Metrics m;
  return m;
}

class ShardRun {
 public:
  ShardRun(const std::vector<ShardTask>& tasks, const ShardOptions& opts, ShardOutcome& out)
      : tasks_(tasks), opts_(opts), out_(out) {
    if (!opts_.journal_dir.empty()) {
      journal_ = std::make_unique<ResultJournal>(opts_.journal_dir, opts_.journal_digest);
    }
  }

  void Execute() {
    out_.payloads.assign(tasks_.size(), {});
    out_.completed.assign(tasks_.size(), 0);

    // Resume pass: anything already journaled (same kernel digest, task key
    // and seed) is a hit and is never re-executed.
    if (journal_ != nullptr) {
      for (std::uint32_t i = 0; i < tasks_.size(); ++i) {
        auto hit = journal_->Lookup(JournalKey(i));
        if (hit.has_value()) {
          out_.payloads[i] = std::move(*hit);
          out_.completed[i] = 1;
          ++out_.journal_hits;
          out_.resumed = true;
        }
      }
    }

    std::vector<std::uint32_t> missing;
    for (std::uint32_t i = 0; i < tasks_.size(); ++i) {
      if (!out_.completed[i]) {
        missing.push_back(i);
      }
    }
    if (missing.empty()) {
      return;
    }

    if (opts_.shards == 0) {
      RunInProcess(missing, /*fallback=*/false);
      return;
    }

#if PMK_SHARD_HAVE_FORK
    // Deterministic partition: ordinal % shards. A resumed campaign assigns
    // each surviving run to the same shard it had originally.
    const std::uint32_t shards =
        std::min<std::uint32_t>(opts_.shards, static_cast<std::uint32_t>(missing.size()));
    std::vector<std::vector<std::uint32_t>> assignment(shards);
    for (const std::uint32_t ord : missing) {
      assignment[ord % shards].push_back(ord);
    }
    if (!RunWave(assignment, /*allow_retry=*/true)) {
      return;  // fork unavailable: RunWave already fell back in-process
    }

    // Quarantine wave: every ordinal that exhausted max_attempts gets one
    // final attempt in an isolated single-run worker, so a poison run's blast
    // radius is exactly itself.
    std::vector<std::vector<std::uint32_t>> isolated;
    for (const std::uint32_t ord : out_.quarantined) {
      if (!out_.completed[ord]) {
        isolated.push_back({ord});
      }
    }
    if (!isolated.empty()) {
      RunWave(isolated, /*allow_retry=*/false);
    }
#else
    RunInProcess(missing, /*fallback=*/true);
#endif
  }

 private:
  std::uint64_t JournalKey(std::uint32_t ordinal) const {
    return ResultJournal::Key(opts_.journal_digest, tasks_[ordinal].key, opts_.seed);
  }

  void Record(std::uint32_t ordinal, std::vector<std::uint8_t> payload) {
    if (out_.completed[ordinal]) {
      return;  // duplicate delivery (retry raced a slow frame): first wins
    }
    if (journal_ != nullptr) {
      journal_->Append(JournalKey(ordinal), payload);
    }
    out_.payloads[ordinal] = std::move(payload);
    out_.completed[ordinal] = 1;
    M().tasks_executed.Inc();
  }

  void Quarantine(std::uint32_t ordinal) {
    if (quarantined_set_.insert(ordinal).second) {
      out_.quarantined.push_back(ordinal);
      M().quarantines.Inc();
    }
  }

  // In-process execution with per-task exception isolation: the reference
  // path (shards=0) and the degraded path when fork is unavailable. Runs fan
  // out over the job pool (jobs_per_shard threads) but results are recorded
  // in ordinal order, preserving byte-identical output. A throwing task is
  // quarantined-and-failed immediately — re-running a deterministic throw in
  // the same process cannot change the outcome, and there is no process
  // boundary to absorb an abort.
  void RunInProcess(const std::vector<std::uint32_t>& ordinals, bool fallback) {
    if (fallback) {
      out_.used_fallback = true;
      M().fallbacks.Inc();
    }
    struct Slot {
      std::vector<std::uint8_t> payload;
      bool ok = false;
    };
    auto slots = ParallelMap<Slot>(ordinals.size(), opts_.jobs_per_shard,
                                         [&](std::size_t k) {
                                           Slot s;
                                           if (out_.completed[ordinals[k]]) {
                                             return s;
                                           }
                                           try {
                                             s.payload = tasks_[ordinals[k]].execute();
                                             s.ok = true;
                                           } catch (...) {
                                           }
                                           return s;
                                         });
    for (std::size_t k = 0; k < ordinals.size(); ++k) {
      const std::uint32_t ord = ordinals[k];
      if (out_.completed[ord]) {
        continue;
      }
      if (slots[k].ok) {
        Record(ord, std::move(slots[k].payload));
      } else {
        Quarantine(ord);
        out_.failed.push_back(ord);
      }
    }
  }

#if PMK_SHARD_HAVE_FORK

  struct Worker {
    pid_t pid = -1;
    int fd = -1;  // supervisor's read end
    std::uint32_t shard = 0;
    std::vector<std::uint32_t> assigned;
    std::set<std::uint32_t> in_flight;
    std::vector<std::uint8_t> buf;
    std::size_t buf_off = 0;
    std::uint64_t deadline_ms = 0;
    std::uint64_t started_ms = 0;
    std::uint32_t results_delivered = 0;
    bool done_frame = false;
    bool eof = false;
    bool chaos_killed = false;
  };

  struct Respawn {
    std::uint64_t ready_ms = 0;
    std::uint32_t shard = 0;
    std::vector<std::uint32_t> ordinals;
  };

  bool Spawn(std::uint32_t shard, std::vector<std::uint32_t> ordinals, std::uint64_t now,
             std::vector<Worker>& workers) {
    int fds[2];
    if (::pipe(fds) != 0) {
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: drop the read end and every sibling's read end; the write end
      // is the only fd this process needs.
      ::close(fds[0]);
      for (const Worker& w : workers) {
        if (w.fd >= 0) {
          ::close(w.fd);
        }
      }
      WorkerMain(tasks_, ordinals, fds[1], opts_);  // [[noreturn]]
    }
    ::close(fds[1]);  // parent keeps no write end: worker exit == pipe EOF
    const int fl = ::fcntl(fds[0], F_GETFL);
    ::fcntl(fds[0], F_SETFL, fl | O_NONBLOCK);

    Worker w;
    w.pid = pid;
    w.fd = fds[0];
    w.shard = shard;
    w.assigned = std::move(ordinals);
    w.deadline_ms = now + opts_.task_timeout_ms;
    w.started_ms = now;
    workers.push_back(std::move(w));
    ++out_.workers_spawned;
    M().workers_spawned.Inc();
    return true;
  }

  void Kill(Worker& w) {
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
    }
  }

  void Reap(Worker& w) {
    if (w.pid > 0) {
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    M().worker_wall.RecordNanos((NowMs() - w.started_ms) * 1'000'000ull);
  }

  // A worker died without draining its list (crash, SIGKILL, watchdog, torn
  // stream). Blames the in-flight ordinals, requeues the remainder with
  // exponential backoff, quarantines repeat offenders.
  void HandleDeath(const Worker& w, std::uint64_t now, std::deque<Respawn>& respawns,
                   bool allow_retry) {
    ++out_.worker_deaths;
    M().worker_deaths.Inc();
    for (const std::uint32_t ord : w.in_flight) {
      if (out_.completed[ord]) {
        continue;
      }
      if (++attempts_[ord] >= opts_.max_attempts) {
        Quarantine(ord);
      }
    }
    std::vector<std::uint32_t> remaining;
    for (const std::uint32_t ord : w.assigned) {
      if (!out_.completed[ord] && quarantined_set_.count(ord) == 0) {
        remaining.push_back(ord);
      }
    }
    if (!allow_retry) {
      // Quarantine wave: the isolated attempt was the last one.
      for (const std::uint32_t ord : w.assigned) {
        if (!out_.completed[ord]) {
          out_.failed.push_back(ord);
        }
      }
      return;
    }
    if (remaining.empty()) {
      return;
    }
    out_.retries += remaining.size();
    M().retries.Inc(remaining.size());
    const std::uint32_t deaths = ++shard_deaths_[w.shard];
    std::uint64_t backoff = opts_.backoff_base_ms;
    for (std::uint32_t i = 1; i < deaths && backoff < opts_.backoff_cap_ms; ++i) {
      backoff *= 2;
    }
    backoff = std::min<std::uint64_t>(backoff, opts_.backoff_cap_ms);
    respawns.push_back({now + backoff, w.shard, std::move(remaining)});
  }

  // Drains the worker's pipe, decoding frames incrementally. Returns false if
  // the stream is provably corrupt (WireError) — caller kills the worker.
  bool Drain(Worker& w, std::uint64_t now) {
    std::uint8_t chunk[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;  // EAGAIN: drained for now
      }
      if (n == 0) {
        w.eof = true;
        break;
      }
      w.buf.insert(w.buf.end(), chunk, chunk + n);
    }
    try {
      while (w.buf_off < w.buf.size()) {
        const auto frame = DecodeFrame(w.buf.data() + w.buf_off, w.buf.size() - w.buf_off);
        if (!frame.has_value()) {
          break;  // incomplete frame: more bytes on the way
        }
        w.buf_off += frame->encoded_size;
        w.deadline_ms = now + opts_.task_timeout_ms;  // any frame is a heartbeat
        WireReader r(frame->payload.data(), frame->payload.size());
        switch (frame->type) {
          case FrameType::kTaskStart:
            w.in_flight.insert(r.U32());
            break;
          case FrameType::kTaskResult: {
            const std::uint32_t ord = r.U32();
            std::vector<std::uint8_t> payload = r.Bytes();
            r.ExpectEnd("task result");
            w.in_flight.erase(ord);
            Record(ord, std::move(payload));
            ++w.results_delivered;
            if (MaybeChaosKill(w)) {
              // The stream is truncated at the kill point: frames the worker
              // managed to buffer after it are discarded, exactly as if an
              // external SIGKILL had landed here.
              return false;
            }
            break;
          }
          case FrameType::kWorkerDone:
            w.done_frame = true;
            break;
          default:
            return false;  // foreign frame type on the result pipe
        }
      }
      // Compact the consumed prefix occasionally so long campaigns don't
      // accumulate the whole result stream in memory.
      if (w.buf_off > (1u << 20)) {
        w.buf.erase(w.buf.begin(), w.buf.begin() + static_cast<std::ptrdiff_t>(w.buf_off));
        w.buf_off = 0;
      }
    } catch (const WireError&) {
      return false;
    }
    return true;
  }

  bool MaybeChaosKill(Worker& w) {
    if (chaos_fired_ || opts_.chaos_kill_shard < 0 ||
        w.shard != static_cast<std::uint32_t>(opts_.chaos_kill_shard) ||
        w.results_delivered < opts_.chaos_kill_after_results) {
      return false;
    }
    chaos_fired_ = true;
    w.chaos_killed = true;
    Kill(w);
    return true;
  }

  // Supervises one wave of workers to completion. Returns false only when the
  // very first spawn of the wave fails (fork/pipe exhaustion) — the wave then
  // degrades to in-process execution.
  bool RunWave(const std::vector<std::vector<std::uint32_t>>& assignment, bool allow_retry) {
    const std::uint64_t t0 = NowMs();
    std::vector<Worker> workers;
    std::deque<Respawn> respawns;
    bool spawned_any = false;
    for (std::uint32_t shard = 0; shard < assignment.size(); ++shard) {
      if (assignment[shard].empty()) {
        continue;
      }
      if (!Spawn(shard, assignment[shard], t0, workers)) {
        if (!spawned_any) {
          for (Worker& w : workers) {  // unreachable, but keep the invariant
            Kill(w);
            Reap(w);
          }
          std::vector<std::uint32_t> all;
          for (const auto& a : assignment) {
            all.insert(all.end(), a.begin(), a.end());
          }
          RunInProcess(all, /*fallback=*/true);
          return false;
        }
        // Partial spawn failure: run this shard's list degraded, keep the
        // workers that did launch.
        out_.used_fallback = true;
        M().fallbacks.Inc();
        RunInProcess(assignment[shard], /*fallback=*/false);
        continue;
      }
      spawned_any = true;
    }

    while (!workers.empty() || !respawns.empty()) {
      const std::uint64_t now = NowMs();

      // Launch due respawns.
      for (std::size_t i = 0; i < respawns.size();) {
        if (respawns[i].ready_ms > now) {
          ++i;
          continue;
        }
        Respawn r = std::move(respawns[i]);
        respawns.erase(respawns.begin() + static_cast<std::ptrdiff_t>(i));
        std::vector<std::uint32_t> still;
        for (const std::uint32_t ord : r.ordinals) {
          if (!out_.completed[ord] && quarantined_set_.count(ord) == 0) {
            still.push_back(ord);
          }
        }
        if (still.empty()) {
          continue;
        }
        if (!Spawn(r.shard, still, now, workers)) {
          out_.used_fallback = true;
          M().fallbacks.Inc();
          RunInProcess(still, /*fallback=*/false);
        }
      }
      if (workers.empty()) {
        if (respawns.empty()) {
          break;
        }
        std::uint64_t next = respawns.front().ready_ms;
        for (const Respawn& r : respawns) {
          next = std::min(next, r.ready_ms);
        }
        const std::uint64_t now2 = NowMs();
        if (next > now2) {
          ::poll(nullptr, 0, static_cast<int>(std::min<std::uint64_t>(next - now2, 1'000)));
        }
        continue;
      }

      // Poll timeout: earliest watchdog deadline or respawn due time.
      std::uint64_t wake = now + 1'000;
      for (const Worker& w : workers) {
        wake = std::min(wake, w.deadline_ms);
      }
      for (const Respawn& r : respawns) {
        wake = std::min(wake, r.ready_ms);
      }
      const int timeout_ms = wake > now ? static_cast<int>(std::min<std::uint64_t>(wake - now, 1'000))
                                        : 0;

      std::vector<pollfd> pfds(workers.size());
      for (std::size_t i = 0; i < workers.size(); ++i) {
        pfds[i] = {workers[i].fd, POLLIN, 0};
      }
      ::poll(pfds.data(), pfds.size(), timeout_ms);
      const std::uint64_t after = NowMs();

      for (std::size_t i = 0; i < workers.size();) {
        Worker& w = workers[i];
        bool dead = false;
        bool clean = false;
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          if (!Drain(w, after)) {
            Kill(w);  // corrupt stream: treat as a crash
            dead = true;
          }
        }
        if (!dead && w.eof) {
          // Worker exited. Clean iff it sent kWorkerDone and nothing assigned
          // to it is still missing.
          clean = w.done_frame;
          if (clean) {
            for (const std::uint32_t ord : w.assigned) {
              if (!out_.completed[ord]) {
                clean = false;
                break;
              }
            }
          }
          dead = !clean;
        }
        if (!dead && !clean && after >= w.deadline_ms) {
          ++out_.timeouts;
          M().timeouts.Inc();
          Kill(w);
          // Blame whatever is running; if the worker wedged between tasks,
          // blame the next undone assigned ordinal so progress is guaranteed.
          if (w.in_flight.empty()) {
            for (const std::uint32_t ord : w.assigned) {
              if (!out_.completed[ord]) {
                w.in_flight.insert(ord);
                break;
              }
            }
          }
          dead = true;
        }
        if (clean) {
          Reap(w);
          workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
          pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        if (dead) {
          // Drain any result frames that raced the kill before blaming — but
          // not past a chaos kill, whose stream is truncated by design.
          if (!w.chaos_killed) {
            Drain(w, after);
          }
          Reap(w);
          HandleDeath(w, after, respawns, allow_retry);
          workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
          pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        ++i;
      }
    }
    return true;
  }

  std::map<std::uint32_t, std::uint32_t> shard_deaths_;
  bool chaos_fired_ = false;

#endif  // PMK_SHARD_HAVE_FORK

  const std::vector<ShardTask>& tasks_;
  const ShardOptions& opts_;
  ShardOutcome& out_;
  std::unique_ptr<ResultJournal> journal_;
  std::map<std::uint32_t, std::uint32_t> attempts_;
  std::set<std::uint32_t> quarantined_set_;
};

}  // namespace

bool ShardOutcome::AllCompleted() const {
  for (const std::uint8_t c : completed) {
    if (!c) {
      return false;
    }
  }
  return true;
}

ShardSupervisor::ShardSupervisor(std::vector<ShardTask> tasks, ShardOptions options)
    : tasks_(std::move(tasks)), opts_(std::move(options)) {}

ShardOutcome ShardSupervisor::Run() {
  ShardOutcome out;
  ShardRun run(tasks_, opts_, out);
  run.Execute();
  std::sort(out.quarantined.begin(), out.quarantined.end());
  std::sort(out.failed.begin(), out.failed.end());
  out.failed.erase(std::unique(out.failed.begin(), out.failed.end()), out.failed.end());
  return out;
}

bool ShardSupervisor::InWorker() { return g_in_worker; }

}  // namespace pmk::engine
