// Fault-tolerant multi-process campaign sharding.
//
// A ShardSupervisor partitions an ordered list of deterministic tasks across
// worker PROCESSES (fork(2)), so that a crashing, hanging or deliberately
// hostile run takes down one worker — not the campaign. The supervisor:
//
//  - partitions tasks deterministically by ordinal (ordinal % shards), so a
//    given (task list, shard count) always yields the same assignment;
//  - streams results back over a pipe as CRC-framed records (kTaskStart /
//    kTaskResult / kWorkerDone, src/engine/wire.h) — the frame stream doubles
//    as a heartbeat for the per-run watchdog;
//  - watches a per-run timeout per worker: a worker that goes silent longer
//    than task_timeout_ms is SIGKILLed and its in-flight runs are blamed;
//  - retries blamed runs with exponential backoff (base doubling up to a
//    cap), up to max_attempts attempts;
//  - quarantines runs that keep killing workers: each is re-run once more in
//    an isolated single-run worker, and if it STILL fails it is reported as
//    failed while every other run completes normally — a poison run cannot
//    sink the campaign;
//  - journals every completed result through an optional ResultJournal, so a
//    supervisor killed mid-campaign resumes re-executing only missing runs;
//  - degrades gracefully to in-process execution when fork/pipe setup fails
//    (or on non-POSIX hosts), with per-task exception isolation.
//
// Tasks must be deterministic pure functions of their closure state: the
// supervisor re-executes them freely (retry, resume, quarantine) and relies
// on re-execution producing byte-identical payloads.
//
// Telemetry: engine.shard.{workers_spawned,retries,timeouts,quarantines,
// worker_deaths,fallbacks,tasks_executed} counters and the
// engine.shard.worker_wall_nanos timer (one sample per worker lifetime).

#ifndef SRC_ENGINE_SHARD_H_
#define SRC_ENGINE_SHARD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pmk::engine {

// One schedulable unit of campaign work.
struct ShardTask {
  // Stable content key for journal addressing; must identify the run across
  // processes and sessions (e.g. "mode|op|plan").
  std::string key;
  // Executes the run and returns its encoded result. Runs in a forked worker
  // (or in-process under fallback); must be deterministic.
  std::function<std::vector<std::uint8_t>()> execute;
};

struct ShardOptions {
  // Worker processes. 0 = in-process execution (no fork), the bit-identical
  // reference path; 1..N = supervised fork workers.
  std::uint32_t shards = 0;

  // Threads inside each worker (engine::RunJobs over the worker's run list);
  // result frames are serialized by a pipe-write mutex.
  std::uint32_t jobs_per_shard = 1;

  // Per-run watchdog: a worker with work outstanding that produces no frame
  // for this long is killed and its in-flight runs blamed.
  std::uint32_t task_timeout_ms = 30'000;

  // Attempts per run before quarantine (the quarantine wave grants one more).
  std::uint32_t max_attempts = 2;

  // Respawn backoff after a worker death: base * 2^(deaths-1), capped.
  std::uint32_t backoff_base_ms = 50;
  std::uint32_t backoff_cap_ms = 1'000;

  // Crash-safe journal directory; empty disables journaling. Results are
  // keyed by ResultJournal::Key(journal_digest, task.key, seed).
  std::string journal_dir;
  std::uint64_t journal_digest = 0;
  std::uint64_t seed = 0;

  // Runs once inside each forked worker before any task (e.g. deserializing
  // checkpoints shipped as bytes instead of relying on copy-on-write
  // inheritance). Not invoked on the in-process path.
  std::function<void()> prepare_worker;

  // Chaos hooks (tests / CI): once worker |chaos_kill_shard| has delivered
  // |chaos_kill_after_results| results, the supervisor SIGKILLs it — a
  // deterministic stand-in for an external kill. One-shot; -1 disables.
  std::int32_t chaos_kill_shard = -1;
  std::uint32_t chaos_kill_after_results = 0;
};

struct ShardOutcome {
  // Per-ordinal result payloads; meaningful where completed[i] != 0.
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::uint8_t> completed;

  // Ordinals that exhausted max_attempts and were isolated; the subset in
  // |failed| also failed their isolated attempt (completed stays 0 — the
  // caller decides how to report them).
  std::vector<std::uint32_t> quarantined;
  std::vector<std::uint32_t> failed;

  std::uint64_t journal_hits = 0;
  std::uint64_t retries = 0;        // runs re-queued after a worker death
  std::uint64_t timeouts = 0;       // watchdog kills
  std::uint64_t worker_deaths = 0;  // involuntary worker exits (kill, crash)
  std::uint64_t workers_spawned = 0;
  bool used_fallback = false;  // degraded to in-process execution
  bool resumed = false;        // journal pre-populated at least one result

  bool AllCompleted() const;
};

class ShardSupervisor {
 public:
  ShardSupervisor(std::vector<ShardTask> tasks, ShardOptions options);

  // Executes every task (or fetches it from the journal) and returns the
  // outcome. Blocks until all tasks completed or were quarantined-and-failed.
  ShardOutcome Run();

  // True inside a forked shard worker. Lets task code behave differently
  // under supervision (e.g. a test's poison run only aborts when isolated).
  static bool InWorker();

 private:
  std::vector<ShardTask> tasks_;
  ShardOptions opts_;
};

}  // namespace pmk::engine

#endif  // SRC_ENGINE_SHARD_H_
