#include "src/engine/wire.h"

#include <array>
#include <cstring>

namespace pmk::engine {

const char* WireFaultName(WireFault f) {
  switch (f) {
    case WireFault::kTruncated:
      return "Truncated";
    case WireFault::kBadMagic:
      return "BadMagic";
    case WireFault::kBadLength:
      return "BadLength";
    case WireFault::kBadChecksum:
      return "BadChecksum";
    case WireFault::kBadVersion:
      return "BadVersion";
    case WireFault::kBadValue:
      return "BadValue";
  }
  return "?";
}

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------- writer

void WireWriter::F64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::Bytes(const std::uint8_t* data, std::size_t n) {
  U32(static_cast<std::uint32_t>(n));
  buf_.insert(buf_.end(), data, data + n);
}

// ---------------------------------------------------------------- reader

void WireReader::Need(std::size_t n, const char* what) const {
  if (end_ - pos_ < n) {
    throw WireError(WireFault::kTruncated, what);
  }
}

std::uint8_t WireReader::U8() {
  Need(1, "u8");
  return data_[pos_++];
}

std::uint16_t WireReader::U16() {
  Need(2, "u16");
  const std::uint16_t v =
      static_cast<std::uint16_t>(data_[pos_]) | static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::U32() {
  Need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::U64() {
  Need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

bool WireReader::Bool() {
  const std::uint8_t v = U8();
  if (v > 1) {
    throw WireError(WireFault::kBadValue, "bool out of range");
  }
  return v != 0;
}

double WireReader::F64() {
  const std::uint64_t bits = U64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const std::uint32_t n = U32();
  if (n > remaining()) {
    throw WireError(WireFault::kBadLength, "string length exceeds buffer");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> WireReader::Bytes() {
  const std::uint32_t n = U32();
  if (n > remaining()) {
    throw WireError(WireFault::kBadLength, "byte-array length exceeds buffer");
  }
  std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

void WireReader::ExpectEnd(const char* what) const {
  if (!AtEnd()) {
    throw WireError(WireFault::kBadLength, std::string(what) + ": trailing bytes");
  }
}

// ---------------------------------------------------------------- framing

void AppendFrame(std::vector<std::uint8_t>& out, FrameType type, const std::uint8_t* payload,
                 std::size_t n) {
  if (n > kMaxFramePayload) {
    throw WireError(WireFault::kBadLength, "frame payload over size cap");
  }
  WireWriter header;
  header.U32(kFrameMagic);
  header.U8(static_cast<std::uint8_t>(type));
  header.U32(static_cast<std::uint32_t>(n));
  header.U32(Crc32(payload, n));
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), payload, payload + n);
}

std::optional<Frame> DecodeFrame(const std::uint8_t* data, std::size_t n) {
  if (n < kFrameHeaderBytes) {
    // Check what bytes ARE present against the magic so a corrupt stream is
    // reported as corrupt even when short.
    for (std::size_t i = 0; i < n && i < 4; ++i) {
      if (data[i] != (kFrameMagic >> (8 * i) & 0xFFu)) {
        throw WireError(WireFault::kBadMagic, "frame does not start with PMKF");
      }
    }
    return std::nullopt;
  }
  WireReader r(data, kFrameHeaderBytes);
  if (r.U32() != kFrameMagic) {
    throw WireError(WireFault::kBadMagic, "frame does not start with PMKF");
  }
  const std::uint8_t type = r.U8();
  const std::uint32_t len = r.U32();
  const std::uint32_t crc = r.U32();
  if (len > kMaxFramePayload) {
    throw WireError(WireFault::kBadLength, "frame payload over size cap");
  }
  if (type < static_cast<std::uint8_t>(FrameType::kSystemImage) ||
      type > static_cast<std::uint8_t>(FrameType::kWcetReply)) {
    throw WireError(WireFault::kBadValue, "unknown frame type");
  }
  if (n - kFrameHeaderBytes < len) {
    return std::nullopt;  // payload still in flight
  }
  const std::uint8_t* payload = data + kFrameHeaderBytes;
  if (Crc32(payload, len) != crc) {
    throw WireError(WireFault::kBadChecksum, "frame payload CRC mismatch");
  }
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.payload.assign(payload, payload + len);
  f.encoded_size = kFrameHeaderBytes + len;
  return f;
}

std::vector<std::uint8_t> DecodeWholeFrame(const std::uint8_t* data, std::size_t n,
                                           FrameType want) {
  std::optional<Frame> f = DecodeFrame(data, n);
  if (!f.has_value()) {
    throw WireError(WireFault::kTruncated, "incomplete frame");
  }
  if (f->encoded_size != n) {
    throw WireError(WireFault::kBadLength, "trailing bytes after frame");
  }
  if (f->type != want) {
    throw WireError(WireFault::kBadValue, "unexpected frame type");
  }
  return std::move(f->payload);
}

}  // namespace pmk::engine
