// Framed, checksummed binary records for the shard engine.
//
// One encoding serves three consumers: the worker-to-supervisor result pipe,
// the on-disk result journal, and serialized SystemCheckpoint images. Every
// record travels inside a frame —
//
//   [magic u32 "PMKF"] [type u8] [payload_len u32] [crc32(payload) u32] [payload]
//
// — so a reader can always distinguish "not all bytes arrived yet" (pipes
// buffer, a crashed writer leaves a torn tail) from "these bytes are wrong"
// (a flipped bit anywhere in the payload fails the CRC; a flipped header bit
// fails the magic/length checks). Corruption surfaces as a structured
// WireError, mirroring src/kernel/error.h's KernelError: robustness code
// switches on fault(), never parses messages, and no malformed input may
// crash the process.
//
// All integers are little-endian and written byte-by-byte, so the format is
// host-independent and free of alignment/aliasing hazards.

#ifndef SRC_ENGINE_WIRE_H_
#define SRC_ENGINE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/base/digest.h"

namespace pmk::engine {

enum class WireFault : std::uint8_t {
  kTruncated,    // fewer bytes than the structure requires
  kBadMagic,     // frame does not start with "PMKF"
  kBadLength,    // a declared length exceeds its container
  kBadChecksum,  // payload CRC mismatch
  kBadVersion,   // format version this build does not speak
  kBadValue,     // structurally valid bytes with an impossible value
};

const char* WireFaultName(WireFault f);

class WireError : public std::runtime_error {
 public:
  WireError(WireFault fault, const std::string& detail)
      : std::runtime_error(std::string(WireFaultName(fault)) + ": " + detail), fault_(fault) {}

  WireFault fault() const { return fault_; }

 private:
  WireFault fault_;
};

// CRC-32 (IEEE 802.3, reflected) over |n| bytes.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t n);

// FNV-1a 64-bit, chainable via |seed| for multi-part digests. The
// implementation lives in src/base/digest.h (shared with the kir block
// digests); re-exported here so existing engine::Fnv1a64 callers compile
// unchanged.
using ::pmk::Fnv1a64;
using ::pmk::kFnv64Offset;

// ---------------------------------------------------------------- primitives

class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v) {
    U8(static_cast<std::uint8_t>(v));
    U8(static_cast<std::uint8_t>(v >> 8));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v));
    U16(static_cast<std::uint16_t>(v >> 16));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v));
    U32(static_cast<std::uint32_t>(v >> 32));
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v);  // IEEE-754 bit pattern as U64
  void Str(const std::string& s);
  void Bytes(const std::uint8_t* data, std::size_t n);
  void Bytes(const std::vector<std::uint8_t>& b) { Bytes(b.data(), b.size()); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked reader over a borrowed byte range. Every primitive throws
// WireError(kTruncated) past the end and WireError(kBadLength) on a declared
// length that cannot fit in the remaining bytes — a reader can never read
// out of bounds, whatever the input.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t n) : data_(data), end_(n) {}
  explicit WireReader(const std::vector<std::uint8_t>& b) : WireReader(b.data(), b.size()) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  bool Bool();
  double F64();
  std::string Str();
  std::vector<std::uint8_t> Bytes();

  std::size_t remaining() const { return end_ - pos_; }
  bool AtEnd() const { return pos_ == end_; }
  // Throws WireError(kBadLength) unless every byte was consumed — trailing
  // garbage after a structure is corruption, not padding.
  void ExpectEnd(const char* what) const;

 private:
  void Need(std::size_t n, const char* what) const;

  const std::uint8_t* data_;
  std::size_t end_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------- framing

inline constexpr std::uint32_t kFrameMagic = 0x464B4D50u;  // "PMKF" little-endian
inline constexpr std::size_t kFrameHeaderBytes = 13;       // magic + type + len + crc
// One frame's payload is capped so a corrupted length field can never drive
// a reader into allocating gigabytes before the CRC check runs.
inline constexpr std::uint32_t kMaxFramePayload = 256u * 1024 * 1024;

// Frame types shared by the pipe protocol, journal and checkpoint images.
enum class FrameType : std::uint8_t {
  kSystemImage = 1,    // serialized SystemCheckpoint
  kJournalHeader = 2,  // journal file preamble (version + context digest)
  kJournalEntry = 3,   // one journaled result: key + payload
  kTaskStart = 4,      // worker -> supervisor: run |ordinal| is in flight
  kTaskResult = 5,     // worker -> supervisor: run |ordinal| finished
  kWorkerDone = 6,     // worker -> supervisor: assigned list drained
  kWcetQuery = 7,      // client -> wcet daemon: one query / edit notification
  kWcetReply = 8,      // wcet daemon -> client: the answer
};

struct Frame {
  FrameType type = FrameType::kSystemImage;
  std::vector<std::uint8_t> payload;
  std::size_t encoded_size = 0;  // header + payload bytes consumed
};

void AppendFrame(std::vector<std::uint8_t>& out, FrameType type, const std::uint8_t* payload,
                 std::size_t n);
inline void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                        const std::vector<std::uint8_t>& payload) {
  AppendFrame(out, type, payload.data(), payload.size());
}

// Decodes the frame starting at |data|. Returns nullopt when the buffer holds
// only a PREFIX of a structurally valid frame (more bytes may still arrive);
// throws WireError when the bytes present are already provably corrupt (bad
// magic, oversize length, failed CRC).
std::optional<Frame> DecodeFrame(const std::uint8_t* data, std::size_t n);

// Decodes a complete buffer that must contain exactly one frame of |want|'s
// type: truncation, trailing bytes and type mismatches all throw.
std::vector<std::uint8_t> DecodeWholeFrame(const std::uint8_t* data, std::size_t n,
                                           FrameType want);

}  // namespace pmk::engine

#endif  // SRC_ENGINE_WIRE_H_
