#include "src/fault/campaign.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "src/engine/checkpoint.h"
#include "src/engine/job_pool.h"
#include "src/obs/metrics.h"
#include "src/sim/rng.h"
#include "src/kernel/error.h"
#include "src/sim/runner.h"

namespace pmk {

namespace {

// Keep CSV cells single-token: commas and newlines in failure details would
// break the column structure (and with it byte-identical diffing).
std::string Sanitize(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') {
      c = ';';
    }
  }
  return s;
}

ScenarioResult FromRun(const std::string& mode, const std::string& op, const RunRecord& rec) {
  ScenarioResult r;
  r.mode = mode;
  r.op = op;
  r.plan = rec.plan;
  r.ok = rec.ok();
  r.restarts = rec.restarts;
  r.preempt_points = rec.preempt_points;
  r.irq_hist = rec.irq_hist;
  r.detail = Sanitize(rec.detail);
  return r;
}

void RunExhaustive(const CampaignConfig& cfg, CampaignReport& report) {
  // The canonical ops are fork-safe, so the sweep boots each scenario once
  // and forks every run from the checkpoint, fanned out over the job pool.
  SweepOptions opts = cfg.sweep;
  opts.checkpoint = true;
  opts.jobs = cfg.jobs;
  for (const auto& [name, factory] : CanonicalOps()) {
    const SweepResult sweep = ExhaustiveIrqSweep(factory, opts);
    report.results.push_back(FromRun("exhaustive", name + "/dry", sweep.dry_run));
    for (const RunRecord& rec : sweep.runs) {
      report.results.push_back(FromRun("exhaustive", name, rec));
    }
  }
}

void RunRandom(const CampaignConfig& cfg, CampaignReport& report) {
  SplitMix64 rng(cfg.seed ^ 0xA5A5'0001ull);
  for (const auto& [name, factory] : CanonicalOps()) {
    const ScenarioCheckpoint ckpt(factory);
    const std::uint64_t pp =
        RunWithInstance(ckpt.Fork(), InjectionPlan{}, cfg.sweep).preempt_points;
    // Plans are drawn serially before any run executes: the RNG stream is a
    // function of the seed alone, never of run results or thread timing.
    std::vector<InjectionPlan> plans(cfg.random_runs);
    for (InjectionPlan& plan : plans) {
      const std::uint64_t n_actions = 1 + rng.Below(3);
      for (std::uint64_t i = 0; i < n_actions; ++i) {
        InjectionAction a;
        if (rng.Below(2) == 0 && pp > 0) {
          a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
          a.at = rng.Below(pp);
        } else {
          a.trigger = InjectionAction::Trigger::kCycleAtLeast;
          a.at = rng.Below(60'000);
        }
        a.line = 1 + static_cast<std::uint32_t>(rng.Below(20));
        a.burst = 1 + static_cast<std::uint32_t>(rng.Below(4));
        plan.actions.push_back(a);
      }
    }
    const auto rows = engine::ParallelMap<ScenarioResult>(
        plans.size(), cfg.jobs, [&](std::size_t r) {
          return FromRun("random", name, RunWithInstance(ckpt.Fork(), plans[r], cfg.sweep));
        });
    report.results.insert(report.results.end(), rows.begin(), rows.end());
  }
}

void RunStorm(const CampaignConfig& cfg, CampaignReport& report) {
  // Storm draws interleave with execution, so the runs cannot share one RNG
  // stream without becoming schedule-dependent. Each run owns a child stream
  // split off by its ordinal: a pure function of (seed, run), identical no
  // matter which thread executes it or in what order.
  const SplitMix64 base(cfg.seed ^ 0xA5A5'0002ull);
  const auto rows = engine::ParallelMap<ScenarioResult>(
      cfg.storm_runs, cfg.jobs, [&](std::size_t run) {
    SplitMix64 rng = base.Split(run);
    System sys(KernelConfig::After(), EvalMachine(false));
    const std::uint32_t ut_cptr = sys.AddUntyped(16, nullptr);
    // Equal priorities: Yield round-robins all three under the storm.
    TcbObj* a = sys.AddThread(30);
    TcbObj* b = sys.AddThread(30);
    TcbObj* c = sys.AddThread(30);
    sys.kernel().DirectSetCurrent(a);

    Runner runner(&sys);
    runner.SetProgram(a, {UserStep::Compute(400), UserStep::Syscall(SysOp::kYield, 0)});
    runner.SetProgram(b, {UserStep::Compute(700), UserStep::Syscall(SysOp::kYield, 0)});
    // c retypes repeatedly: the first iteration exercises the preemptible
    // clear under storm, later ones fail fast on the occupied slot.
    SyscallArgs retype;
    retype.label = InvLabel::kUntypedRetype;
    retype.obj_type = ObjType::kFrame;
    retype.obj_bits = 15;
    retype.dest_index = 90;
    runner.SetProgram(c, {UserStep::Compute(300), UserStep::Syscall(SysOp::kCall, ut_cptr, retype)});

    runner.SetDisturbance([&rng, &sys](Cycles now) {
      if (rng.Below(100) < 25) {
        // Bursty multi-line assertion.
        const std::uint32_t first = 1 + static_cast<std::uint32_t>(rng.Below(20));
        const std::uint32_t burst = 1 + static_cast<std::uint32_t>(rng.Below(6));
        for (std::uint32_t i = 0; i < burst; ++i) {
          sys.machine().irq().Assert((first + i) % InterruptController::kNumLines, now);
        }
      }
      if (rng.Below(100) < 15) {
        // Misbehaving driver: acknowledge a line it does not own — usually
        // never-asserted, occasionally racing a real pending assertion.
        sys.machine().irq().Acknowledge(1 + static_cast<std::uint32_t>(rng.Below(20)));
      }
    });

    ScenarioResult res;
    res.mode = "storm";
    res.op = "runner";
    res.plan = "storm#" + std::to_string(run);
    std::uint64_t steps = 0;
    try {
      steps = runner.Run(150'000);
      sys.kernel().CheckInvariants();
      res.ok = steps > 0;
      if (!res.ok) {
        res.detail = "no userland progress under storm";
      }
    } catch (const std::exception& ex) {
      res.ok = false;
      res.detail = Sanitize(ex.what());
    }
    res.spurious_acks = sys.machine().irq().spurious_acks();
    res.coalesced = sys.machine().irq().coalesced_asserts();
    for (const Cycles lat : sys.kernel().irq_latencies()) {
      res.irq_hist.Record(lat);
    }
    return res;
  });
  report.results.insert(report.results.end(), rows.begin(), rows.end());
}

void RunHostile(const CampaignConfig& cfg, CampaignReport& report) {
  SplitMix64 rng(cfg.seed ^ 0xA5A5'0003ull);
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  const std::uint32_t ut_cptr = sys.AddUntyped(19, nullptr);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t cnode_cptr = sys.AddCap(root_cap);
  TcbObj* actor = sys.AddThread(50);
  TcbObj* deep_actor = sys.AddThread(50);
  const std::uint32_t deep_cptr =
      sys.BuildDeepCapSpace(deep_actor, sys.SlotOf(ep_cptr)->cap, 32);
  sys.kernel().DirectSetCurrent(actor);

  // Freeze the built system; every hostile syscall executes against its own
  // fork, so runs are independent (a malformed input that somehow mutated
  // state could never leak into the next run) and free to execute on any
  // worker thread. The actors are re-resolved per fork by base address.
  const engine::SystemCheckpoint ckpt(sys);
  const Addr actor_base = actor->base;
  const Addr deep_actor_base = deep_actor->base;

  // Inputs are drawn serially up front, a pure function of the seed.
  struct HostileCase {
    std::string kind;
    std::uint32_t cptr = 0;
    SyscallArgs args;
    bool deep = false;
  };
  std::vector<HostileCase> cases(cfg.hostile_runs);
  for (HostileCase& hc : cases) {
    SyscallArgs& args = hc.args;
    std::uint32_t& cptr = hc.cptr;
    std::string& kind = hc.kind;
    bool& deep = hc.deep;
    cptr = ep_cptr;
    switch (rng.Below(8)) {
      case 0:
        kind = "huge-msg-len";
        args.msg_len = 65 + static_cast<std::uint32_t>(rng.Below(1u << 20));
        break;
      case 1:
        kind = "huge-n-extra";
        args.msg_len = static_cast<std::uint32_t>(rng.Below(65));
        args.n_extra = 4 + static_cast<std::uint32_t>(rng.Below(1000));
        break;
      case 2:
        kind = "huge-obj-bits";
        cptr = ut_cptr;
        args.label = InvLabel::kUntypedRetype;
        args.obj_type = ObjType::kFrame;
        args.obj_bits = static_cast<std::uint8_t>(20 + rng.Below(236));
        args.dest_index = 1000 + static_cast<std::uint32_t>(rng.Below(1u << 20));
        break;
      case 3:
        kind = "huge-obj-count";
        cptr = ut_cptr;
        args.label = InvLabel::kUntypedRetype;
        args.obj_type = ObjType::kEndpoint;
        args.obj_count = 9 + static_cast<std::uint32_t>(rng.Below(1u << 20));
        args.dest_index = 120;
        break;
      case 4:
        kind = "delete-oob-index";
        cptr = cnode_cptr;
        args.label = InvLabel::kCNodeDelete;
        args.arg0 = 256 + rng.Below(1u << 24);
        break;
      case 5:
        kind = "revoke-oob-index";
        cptr = cnode_cptr;
        args.label = InvLabel::kCNodeRevoke;
        args.arg0 = 256 + rng.Below(1u << 24);
        break;
      case 6:
        // Guard mismatch in the one-level root cspace: the top 24 bits must
        // be zero, so this cptr always fails decode (never a stray send).
        kind = "garbage-cptr";
        cptr = 0xFF00'0000u | static_cast<std::uint32_t>(rng.Below(1u << 24));
        break;
      default:
        // One bit flipped somewhere along a 32-level decode chain: the walk
        // diverges from the installed path and dies mid-depth.
        kind = "deep-decode-miss";
        deep = true;
        cptr = deep_cptr ^ (1u << rng.Below(32));
        break;
    }
  }

  const auto rows = engine::ParallelMap<ScenarioResult>(
      cases.size(), cfg.jobs, [&](std::size_t run) {
    const HostileCase& hc = cases[run];
    ScenarioResult res;
    res.mode = "hostile";
    res.op = hc.kind;
    res.plan = "h#" + std::to_string(run);
    std::unique_ptr<System> fork = ckpt.Fork();
    TcbObj* run_actor =
        fork->kernel().objects().Get<TcbObj>(hc.deep ? deep_actor_base : actor_base);
    fork->kernel().DirectSetCurrent(run_actor);
    try {
      fork->kernel().Syscall(SysOp::kCall, hc.cptr, hc.args);
      fork->kernel().CheckInvariants();
      res.ok = run_actor->last_error != KError::kOk;
      if (!res.ok) {
        res.detail = "hostile input reported success";
      }
    } catch (const std::exception& ex) {
      // Any escaping exception — ExecError, KernelError or a bare assert
      // surrogate — means the malformed input crossed the structured-error
      // boundary: a defect by definition in this mode.
      res.ok = false;
      res.detail = Sanitize(ex.what());
    }
    return res;
  });
  report.results.insert(report.results.end(), rows.begin(), rows.end());
}

void RunSpurious(const CampaignConfig& cfg, CampaignReport& report) {
  // Per-run child streams (see RunStorm): draws interleave with the shadow
  // model, so every run gets a stream derived from its ordinal.
  const SplitMix64 base(cfg.seed ^ 0xA5A5'0004ull);
  const auto rows = engine::ParallelMap<ScenarioResult>(
      cfg.spurious_runs, cfg.jobs, [&](std::size_t run) {
    SplitMix64 rng = base.Split(run);
    // Property test of the controller against a shadow model: interleaved
    // asserts, spurious acks, masks. Acknowledge must return the first
    // assertion time iff the line was pending, nullopt otherwise.
    InterruptController ic;
    std::array<bool, InterruptController::kNumLines> shadow_pending{};
    std::array<Cycles, InterruptController::kNumLines> shadow_time{};
    std::uint64_t expected_spurious = 0;
    std::uint64_t expected_coalesced = 0;
    ScenarioResult res;
    res.mode = "spurious";
    res.op = "controller";
    res.plan = "sp#" + std::to_string(run);
    res.ok = true;
    Cycles now = 0;
    for (std::uint32_t step = 0; step < 200 && res.ok; ++step) {
      now += 1 + rng.Below(50);
      const std::uint32_t line = static_cast<std::uint32_t>(rng.Below(InterruptController::kNumLines));
      switch (rng.Below(3)) {
        case 0:
          ic.Assert(line, now);
          if (shadow_pending[line]) {
            ++expected_coalesced;
          } else {
            shadow_pending[line] = true;
            shadow_time[line] = now;
          }
          break;
        case 1: {
          const auto got = ic.Acknowledge(line);
          if (shadow_pending[line]) {
            if (!got.has_value() || *got != shadow_time[line]) {
              res.ok = false;
              res.detail = "ack of pending line returned wrong assert time";
            }
            shadow_pending[line] = false;
          } else {
            ++expected_spurious;
            if (got.has_value()) {
              res.ok = false;
              res.detail = "spurious ack returned a value";
            }
          }
          break;
        }
        default:
          if (ic.IsPending(line) != shadow_pending[line]) {
            res.ok = false;
            res.detail = "pending state diverged from model";
          }
          break;
      }
    }
    if (res.ok && (ic.spurious_acks() != expected_spurious ||
                   ic.coalesced_asserts() != expected_coalesced)) {
      res.ok = false;
      res.detail = "spurious/coalesce counters diverged from model";
    }
    res.spurious_acks = ic.spurious_acks();
    res.coalesced = ic.coalesced_asserts();
    return res;
  });
  report.results.insert(report.results.end(), rows.begin(), rows.end());

  // One kernel-level spurious entry: an IRQ kernel entry with nothing
  // pending must take the h.spurious path and leave the kernel consistent.
  ScenarioResult res;
  res.mode = "spurious";
  res.op = "kernel-entry";
  res.plan = "sp#kernel";
  try {
    System sys(KernelConfig::After(), EvalMachine(false));
    TcbObj* t = sys.AddThread(10);
    sys.kernel().DirectSetCurrent(t);
    sys.kernel().HandleIrqEntry();
    sys.kernel().CheckInvariants();
    res.ok = true;
  } catch (const std::exception& ex) {
    res.ok = false;
    res.detail = Sanitize(ex.what());
  }
  report.results.push_back(res);
}

}  // namespace

std::vector<std::pair<std::string, OpFactory>> CanonicalOps() {
  std::vector<std::pair<std::string, OpFactory>> ops;
  ops.emplace_back("retype", MakeRetypeCase());
  ops.emplace_back("ep-delete", MakeEpDeleteCase());
  ops.emplace_back("badged-abort", MakeBadgedAbortCase());
  return ops;
}

std::uint64_t CampaignReport::failures() const {
  std::uint64_t n = 0;
  for (const ScenarioResult& r : results) {
    if (!r.ok) {
      ++n;
    }
  }
  return n;
}

void CampaignReport::WriteCsv(std::ostream& os) const {
  os << "mode,op,plan,ok,restarts,preempt_points,spurious_acks,coalesced,detail\n";
  for (const ScenarioResult& r : results) {
    os << r.mode << ',' << r.op << ',' << r.plan << ',' << (r.ok ? 1 : 0) << ',' << r.restarts
       << ',' << r.preempt_points << ',' << r.spurious_acks << ',' << r.coalesced << ','
       << r.detail << '\n';
  }
}

std::string CampaignReport::Summary() const {
  std::ostringstream os;
  os << "fault campaign seed=" << seed << ": " << results.size() << " scenarios, " << failures()
     << " failures";
  return os.str();
}

namespace {

// The observatory scenario label for one result row: per-op for the modes
// that sweep the canonical operations, per-mode for the rest (hostile fans
// out over dozens of input kinds; one row each would drown the report).
std::string ObservatoryScenario(const ScenarioResult& r) {
  if (r.mode == "exhaustive" || r.mode == "random") {
    std::string op = r.op;
    const std::string dry = "/dry";
    if (op.size() > dry.size() && op.compare(op.size() - dry.size(), dry.size(), dry) == 0) {
      op.resize(op.size() - dry.size());
    }
    return r.mode + "/" + op;
  }
  return r.mode;
}

}  // namespace

CampaignReport RunCampaign(const CampaignConfig& config) {
  CampaignReport report;
  report.seed = config.seed;
  if (config.exhaustive) {
    RunExhaustive(config, report);
  }
  if (config.random_runs > 0) {
    RunRandom(config, report);
  }
  if (config.storm_runs > 0) {
    RunStorm(config, report);
  }
  if (config.hostile_runs > 0) {
    RunHostile(config, report);
  }
  if (config.spurious_runs > 0) {
    RunSpurious(config, report);
  }

  // Telemetry + observatory feed: both consume the assembled report, after
  // every deterministic byte of it is fixed.
  for (const ScenarioResult& r : report.results) {
    obs::Counter(obs::ObsLabeled("fault.campaign.scenarios", "mode", r.mode).c_str()).Inc();
  }
  if (config.observatory != nullptr) {
    config.observatory->SetUnenforced("storm");
    for (const ScenarioResult& r : report.results) {
      const std::string scenario = ObservatoryScenario(r);
      config.observatory->Touch(config.config_label, scenario);
      config.observatory->RecordHistogram(config.config_label, scenario, r.irq_hist);
    }
  }
  return report;
}

}  // namespace pmk
