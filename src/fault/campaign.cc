#include "src/fault/campaign.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/engine/checkpoint.h"
#include "src/engine/job_pool.h"
#include "src/engine/journal.h"
#include "src/engine/serialize.h"
#include "src/engine/shard.h"
#include "src/engine/wire.h"
#include "src/kernel/error.h"
#include "src/obs/metrics.h"
#include "src/sim/latency.h"
#include "src/sim/rng.h"
#include "src/sim/runner.h"

namespace pmk {

namespace {

// Keep CSV cells single-token: commas and newlines in failure details would
// break the column structure (and with it byte-identical diffing).
std::string Sanitize(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') {
      c = ';';
    }
  }
  return s;
}

ScenarioResult FromRun(const std::string& mode, const std::string& op, const RunRecord& rec) {
  ScenarioResult r;
  r.mode = mode;
  r.op = op;
  r.plan = rec.plan;
  r.ok = rec.ok();
  r.restarts = rec.restarts;
  r.preempt_points = rec.preempt_points;
  r.irq_hist = rec.irq_hist;
  r.detail = Sanitize(rec.detail);
  return r;
}

// ------------------------------------------------------------- task model
//
// Every CSV row is one CampaignTask: a (mode, op, plan) identity — which is
// also its journal key — plus a closure that produces the row. Closures are
// pure functions of their captured state, so a row computes identically
// in-process, in a forked shard worker, on a retry after a worker death, or
// never (journal hit). The task list order IS the historical row order.

struct CampaignTask {
  std::string mode;
  std::string op;
  std::string plan;
  std::function<ScenarioResult()> run;

  std::string Key() const { return mode + "|" + op + "|" + plan; }
};

// Per-operation scenario state shared by that op's task closures. The
// checkpoint is built lazily — a fully-journaled resume never boots at all —
// and under serial-image transport shard workers rebuild it from the
// serialized frozen image instead of inheriting the parent's memory.
class ScenarioBank {
 public:
  ScenarioBank(std::string name, OpFactory factory)
      : name_(std::move(name)), factory_(std::move(factory)) {}

  // Serializes the frozen image now (boots if needed) so workers can
  // deserialize instead of relying on copy-on-write inheritance.
  void EnableSerialTransport() {
    image_ = std::make_shared<const std::vector<std::uint8_t>>(Direct().SerializeFrozen());
  }

  const ScenarioCheckpoint& Get() const {
    if (image_ != nullptr && engine::ShardSupervisor::InWorker()) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (from_image_ == nullptr) {
        from_image_ = std::make_shared<const ScenarioCheckpoint>(factory_, *image_);
      }
      return *from_image_;
    }
    return Direct();
  }

  const std::string& name() const { return name_; }

 private:
  const ScenarioCheckpoint& Direct() const {
    const std::lock_guard<std::mutex> lock(mu_);
    if (direct_ == nullptr) {
      direct_ = std::make_shared<const ScenarioCheckpoint>(factory_);
    }
    return *direct_;
  }

  std::string name_;
  OpFactory factory_;
  std::shared_ptr<const std::vector<std::uint8_t>> image_;
  mutable std::mutex mu_;
  mutable std::shared_ptr<const ScenarioCheckpoint> direct_;
  mutable std::shared_ptr<const ScenarioCheckpoint> from_image_;
};

// Same, for a bare system checkpoint (the hostile mode's shared fixture).
class SystemBank {
 public:
  explicit SystemBank(const System& sys)
      : direct_(std::make_shared<const engine::SystemCheckpoint>(sys)) {}

  void EnableSerialTransport() {
    image_ = std::make_shared<const std::vector<std::uint8_t>>(direct_->Serialize());
  }

  const engine::SystemCheckpoint& Get() const {
    if (image_ != nullptr && engine::ShardSupervisor::InWorker()) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (from_image_ == nullptr) {
        from_image_ = std::make_shared<const engine::SystemCheckpoint>(
            engine::SystemCheckpoint::Deserialize(*image_));
      }
      return *from_image_;
    }
    return *direct_;
  }

 private:
  std::shared_ptr<const engine::SystemCheckpoint> direct_;
  std::shared_ptr<const std::vector<std::uint8_t>> image_;
  mutable std::mutex mu_;
  mutable std::shared_ptr<const engine::SystemCheckpoint> from_image_;
};

// Plan-time journal peek: lets the builders skip work whose only purpose is
// feeding later rows (the exhaustive dry run pins the boundary count) when a
// resumed journal already holds the row.
class PlanPeek {
 public:
  PlanPeek(const CampaignConfig& cfg, std::uint64_t digest) : seed_(cfg.seed), digest_(digest) {
    if (!cfg.journal_dir.empty()) {
      journal_ = std::make_unique<engine::ResultJournal>(cfg.journal_dir, digest);
    }
  }

  std::optional<ScenarioResult> Row(const std::string& mode, const std::string& op,
                                    const std::string& plan) const {
    if (journal_ == nullptr) {
      return std::nullopt;
    }
    const auto hit =
        journal_->Lookup(engine::ResultJournal::Key(digest_, mode + "|" + op + "|" + plan, seed_));
    if (!hit.has_value()) {
      return std::nullopt;
    }
    try {
      return DecodeScenarioResult(*hit);
    } catch (const engine::WireError&) {
      return std::nullopt;  // corrupt entry: fall back to re-execution
    }
  }

 private:
  std::uint64_t seed_;
  std::uint64_t digest_;
  std::unique_ptr<engine::ResultJournal> journal_;
};

InjectionPlan BoundaryPlan(std::uint64_t k, std::uint32_t line) {
  InjectionPlan plan;
  InjectionAction a;
  a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
  a.at = k;
  a.line = line;
  plan.actions.push_back(a);
  return plan;
}

// ------------------------------------------------------------- builders
//
// Each builder appends its mode's tasks in the exact historical row order and
// reproduces the historical RNG draw sequence (plans drawn serially at build
// time, or per-ordinal child streams), so the assembled CSV is byte-identical
// to the pre-sharding in-process campaign.

struct BuildState {
  std::vector<CampaignTask> tasks;
  std::vector<std::shared_ptr<ScenarioBank>> banks;
  std::map<std::string, std::uint64_t> pp_by_op;  // boundary counts, once known

  std::shared_ptr<ScenarioBank> Bank(const std::string& name, const OpFactory& factory,
                                     bool serial_images) {
    for (const auto& b : banks) {
      if (b->name() == name) {
        return b;
      }
    }
    auto bank = std::make_shared<ScenarioBank>(name, factory);
    if (serial_images) {
      bank->EnableSerialTransport();
    }
    banks.push_back(bank);
    return bank;
  }
};

void BuildExhaustive(const CampaignConfig& cfg, const PlanPeek& peek, BuildState& bs) {
  SweepOptions opts = cfg.sweep;
  opts.checkpoint = true;
  opts.jobs = cfg.jobs;
  for (const auto& [name, factory] : CanonicalOps()) {
    auto bank = bs.Bank(name, factory, cfg.shard_serial_images);
    const std::string dry_op = name + "/dry";
    const std::string dry_plan = InjectionPlan{}.ToString();

    // The dry run pins the boundary count every other row of this op depends
    // on, so it executes at build time — unless a resumed journal already
    // holds it, in which case nothing boots here at all.
    std::shared_ptr<const ScenarioResult> dry;
    std::uint64_t pp = 0;
    if (const auto hit = peek.Row("exhaustive", dry_op, dry_plan)) {
      pp = hit->preempt_points;
    } else {
      dry = std::make_shared<const ScenarioResult>(
          FromRun("exhaustive", dry_op, RunWithInstance(bank->Get().Fork(), InjectionPlan{}, opts)));
      pp = dry->preempt_points;
    }
    bs.pp_by_op[name] = pp;

    bs.tasks.push_back({"exhaustive", dry_op, dry_plan, [dry, bank, opts, dry_op] {
                          if (dry != nullptr) {
                            return *dry;  // computed at build time; don't redo the boot
                          }
                          return FromRun("exhaustive", dry_op,
                                         RunWithInstance(bank->Get().Fork(), InjectionPlan{}, opts));
                        }});
    for (std::uint64_t k = 0; k < pp; ++k) {
      InjectionPlan plan = BoundaryPlan(k, opts.line);
      std::string plan_str = plan.ToString();
      bs.tasks.push_back({"exhaustive", name, plan_str, [bank, plan, opts, name = name] {
                            return FromRun("exhaustive", name,
                                           RunWithInstance(bank->Get().Fork(), plan, opts));
                          }});
    }
  }
}

void BuildRandom(const CampaignConfig& cfg, BuildState& bs) {
  SplitMix64 rng(cfg.seed ^ 0xA5A5'0001ull);
  for (const auto& [name, factory] : CanonicalOps()) {
    auto bank = bs.Bank(name, factory, cfg.shard_serial_images);
    // Boundary count: pinned by the exhaustive dry run when that mode ran,
    // else measured here with an uninjected run (the historical draw).
    std::uint64_t pp = 0;
    const auto it = bs.pp_by_op.find(name);
    if (it != bs.pp_by_op.end()) {
      pp = it->second;
    } else {
      pp = RunWithInstance(bank->Get().Fork(), InjectionPlan{}, cfg.sweep).preempt_points;
      bs.pp_by_op[name] = pp;
    }
    // Plans are drawn serially before any run executes: the RNG stream is a
    // function of the seed alone, never of run results or thread timing.
    std::vector<InjectionPlan> plans(cfg.random_runs);
    for (InjectionPlan& plan : plans) {
      const std::uint64_t n_actions = 1 + rng.Below(3);
      for (std::uint64_t i = 0; i < n_actions; ++i) {
        InjectionAction a;
        if (rng.Below(2) == 0 && pp > 0) {
          a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
          a.at = rng.Below(pp);
        } else {
          a.trigger = InjectionAction::Trigger::kCycleAtLeast;
          a.at = rng.Below(60'000);
        }
        a.line = 1 + static_cast<std::uint32_t>(rng.Below(20));
        a.burst = 1 + static_cast<std::uint32_t>(rng.Below(4));
        plan.actions.push_back(a);
      }
    }
    for (InjectionPlan& plan : plans) {
      std::string plan_str = plan.ToString();
      bs.tasks.push_back(
          {"random", name, plan_str, [bank, plan, sweep = cfg.sweep, name = name] {
             return FromRun("random", name, RunWithInstance(bank->Get().Fork(), plan, sweep));
           }});
    }
  }
}

ScenarioResult RunStormOrdinal(const SplitMix64& base, std::size_t run) {
  // Storm draws interleave with execution, so the runs cannot share one RNG
  // stream without becoming schedule-dependent. Each run owns a child stream
  // split off by its ordinal: a pure function of (seed, run), identical no
  // matter which thread — or process — executes it, or in what order.
  SplitMix64 rng = base.Split(run);
  System sys(KernelConfig::After(), EvalMachine(false));
  const std::uint32_t ut_cptr = sys.AddUntyped(16, nullptr);
  // Equal priorities: Yield round-robins all three under the storm.
  TcbObj* a = sys.AddThread(30);
  TcbObj* b = sys.AddThread(30);
  TcbObj* c = sys.AddThread(30);
  sys.kernel().DirectSetCurrent(a);

  Runner runner(&sys);
  runner.SetProgram(a, {UserStep::Compute(400), UserStep::Syscall(SysOp::kYield, 0)});
  runner.SetProgram(b, {UserStep::Compute(700), UserStep::Syscall(SysOp::kYield, 0)});
  // c retypes repeatedly: the first iteration exercises the preemptible
  // clear under storm, later ones fail fast on the occupied slot.
  SyscallArgs retype;
  retype.label = InvLabel::kUntypedRetype;
  retype.obj_type = ObjType::kFrame;
  retype.obj_bits = 15;
  retype.dest_index = 90;
  runner.SetProgram(c, {UserStep::Compute(300), UserStep::Syscall(SysOp::kCall, ut_cptr, retype)});

  runner.SetDisturbance([&rng, &sys](Cycles now) {
    if (rng.Below(100) < 25) {
      // Bursty multi-line assertion.
      const std::uint32_t first = 1 + static_cast<std::uint32_t>(rng.Below(20));
      const std::uint32_t burst = 1 + static_cast<std::uint32_t>(rng.Below(6));
      for (std::uint32_t i = 0; i < burst; ++i) {
        sys.machine().irq().Assert((first + i) % InterruptController::kNumLines, now);
      }
    }
    if (rng.Below(100) < 15) {
      // Misbehaving driver: acknowledge a line it does not own — usually
      // never-asserted, occasionally racing a real pending assertion.
      sys.machine().irq().Acknowledge(1 + static_cast<std::uint32_t>(rng.Below(20)));
    }
  });

  ScenarioResult res;
  res.mode = "storm";
  res.op = "runner";
  res.plan = "storm#" + std::to_string(run);
  std::uint64_t steps = 0;
  try {
    steps = runner.Run(150'000);
    sys.kernel().CheckInvariants();
    res.ok = steps > 0;
    if (!res.ok) {
      res.detail = "no userland progress under storm";
    }
  } catch (const std::exception& ex) {
    res.ok = false;
    res.detail = Sanitize(ex.what());
  }
  res.spurious_acks = sys.machine().irq().spurious_acks();
  res.coalesced = sys.machine().irq().coalesced_asserts();
  for (const Cycles lat : sys.kernel().irq_latencies()) {
    res.irq_hist.Record(lat);
  }
  return res;
}

void BuildStorm(const CampaignConfig& cfg, BuildState& bs) {
  const SplitMix64 base(cfg.seed ^ 0xA5A5'0002ull);
  for (std::size_t run = 0; run < cfg.storm_runs; ++run) {
    bs.tasks.push_back({"storm", "runner", "storm#" + std::to_string(run),
                        [base, run] { return RunStormOrdinal(base, run); }});
  }
}

void BuildHostile(const CampaignConfig& cfg, BuildState& bs) {
  SplitMix64 rng(cfg.seed ^ 0xA5A5'0003ull);
  System sys(KernelConfig::After(), EvalMachine(false));
  EndpointObj* ep = nullptr;
  const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
  const std::uint32_t ut_cptr = sys.AddUntyped(19, nullptr);
  Cap root_cap;
  root_cap.type = ObjType::kCNode;
  root_cap.obj = sys.root()->base;
  const std::uint32_t cnode_cptr = sys.AddCap(root_cap);
  TcbObj* actor = sys.AddThread(50);
  TcbObj* deep_actor = sys.AddThread(50);
  const std::uint32_t deep_cptr =
      sys.BuildDeepCapSpace(deep_actor, sys.SlotOf(ep_cptr)->cap, 32);
  sys.kernel().DirectSetCurrent(actor);

  // Freeze the built system; every hostile syscall executes against its own
  // fork, so runs are independent (a malformed input that somehow mutated
  // state could never leak into the next run) and free to execute on any
  // worker thread or shard. The actors are re-resolved per fork by base.
  auto bank = std::make_shared<SystemBank>(sys);
  if (cfg.shard_serial_images) {
    bank->EnableSerialTransport();
  }
  const Addr actor_base = actor->base;
  const Addr deep_actor_base = deep_actor->base;

  // Inputs are drawn serially up front, a pure function of the seed.
  struct HostileCase {
    std::string kind;
    std::uint32_t cptr = 0;
    SyscallArgs args;
    bool deep = false;
  };
  std::vector<HostileCase> cases(cfg.hostile_runs);
  for (HostileCase& hc : cases) {
    SyscallArgs& args = hc.args;
    std::uint32_t& cptr = hc.cptr;
    std::string& kind = hc.kind;
    bool& deep = hc.deep;
    cptr = ep_cptr;
    switch (rng.Below(8)) {
      case 0:
        kind = "huge-msg-len";
        args.msg_len = 65 + static_cast<std::uint32_t>(rng.Below(1u << 20));
        break;
      case 1:
        kind = "huge-n-extra";
        args.msg_len = static_cast<std::uint32_t>(rng.Below(65));
        args.n_extra = 4 + static_cast<std::uint32_t>(rng.Below(1000));
        break;
      case 2:
        kind = "huge-obj-bits";
        cptr = ut_cptr;
        args.label = InvLabel::kUntypedRetype;
        args.obj_type = ObjType::kFrame;
        args.obj_bits = static_cast<std::uint8_t>(20 + rng.Below(236));
        args.dest_index = 1000 + static_cast<std::uint32_t>(rng.Below(1u << 20));
        break;
      case 3:
        kind = "huge-obj-count";
        cptr = ut_cptr;
        args.label = InvLabel::kUntypedRetype;
        args.obj_type = ObjType::kEndpoint;
        args.obj_count = 9 + static_cast<std::uint32_t>(rng.Below(1u << 20));
        args.dest_index = 120;
        break;
      case 4:
        kind = "delete-oob-index";
        cptr = cnode_cptr;
        args.label = InvLabel::kCNodeDelete;
        args.arg0 = 256 + rng.Below(1u << 24);
        break;
      case 5:
        kind = "revoke-oob-index";
        cptr = cnode_cptr;
        args.label = InvLabel::kCNodeRevoke;
        args.arg0 = 256 + rng.Below(1u << 24);
        break;
      case 6:
        // Guard mismatch in the one-level root cspace: the top 24 bits must
        // be zero, so this cptr always fails decode (never a stray send).
        kind = "garbage-cptr";
        cptr = 0xFF00'0000u | static_cast<std::uint32_t>(rng.Below(1u << 24));
        break;
      default:
        // One bit flipped somewhere along a 32-level decode chain: the walk
        // diverges from the installed path and dies mid-depth.
        kind = "deep-decode-miss";
        deep = true;
        cptr = deep_cptr ^ (1u << rng.Below(32));
        break;
    }
  }

  for (std::size_t run = 0; run < cases.size(); ++run) {
    const HostileCase hc = cases[run];
    bs.tasks.push_back(
        {"hostile", hc.kind, "h#" + std::to_string(run),
         [bank, hc, run, actor_base, deep_actor_base] {
           ScenarioResult res;
           res.mode = "hostile";
           res.op = hc.kind;
           res.plan = "h#" + std::to_string(run);
           std::unique_ptr<System> fork = bank->Get().Fork();
           TcbObj* run_actor =
               fork->kernel().objects().Get<TcbObj>(hc.deep ? deep_actor_base : actor_base);
           fork->kernel().DirectSetCurrent(run_actor);
           try {
             fork->kernel().Syscall(SysOp::kCall, hc.cptr, hc.args);
             fork->kernel().CheckInvariants();
             res.ok = run_actor->last_error != KError::kOk;
             if (!res.ok) {
               res.detail = "hostile input reported success";
             }
           } catch (const std::exception& ex) {
             // Any escaping exception — ExecError, KernelError or a bare
             // assert surrogate — means the malformed input crossed the
             // structured-error boundary: a defect by definition here.
             res.ok = false;
             res.detail = Sanitize(ex.what());
           }
           return res;
         }});
  }
}

ScenarioResult RunSpuriousOrdinal(const SplitMix64& base, std::size_t run) {
  // Per-run child streams (see the storm mode): draws interleave with the
  // shadow model, so every run gets a stream derived from its ordinal.
  SplitMix64 rng = base.Split(run);
  // Property test of the controller against a shadow model: interleaved
  // asserts, spurious acks, masks. Acknowledge must return the first
  // assertion time iff the line was pending, nullopt otherwise.
  InterruptController ic;
  std::array<bool, InterruptController::kNumLines> shadow_pending{};
  std::array<Cycles, InterruptController::kNumLines> shadow_time{};
  std::uint64_t expected_spurious = 0;
  std::uint64_t expected_coalesced = 0;
  ScenarioResult res;
  res.mode = "spurious";
  res.op = "controller";
  res.plan = "sp#" + std::to_string(run);
  res.ok = true;
  Cycles now = 0;
  for (std::uint32_t step = 0; step < 200 && res.ok; ++step) {
    now += 1 + rng.Below(50);
    const std::uint32_t line =
        static_cast<std::uint32_t>(rng.Below(InterruptController::kNumLines));
    switch (rng.Below(3)) {
      case 0:
        ic.Assert(line, now);
        if (shadow_pending[line]) {
          ++expected_coalesced;
        } else {
          shadow_pending[line] = true;
          shadow_time[line] = now;
        }
        break;
      case 1: {
        const auto got = ic.Acknowledge(line);
        if (shadow_pending[line]) {
          if (!got.has_value() || *got != shadow_time[line]) {
            res.ok = false;
            res.detail = "ack of pending line returned wrong assert time";
          }
          shadow_pending[line] = false;
        } else {
          ++expected_spurious;
          if (got.has_value()) {
            res.ok = false;
            res.detail = "spurious ack returned a value";
          }
        }
        break;
      }
      default:
        if (ic.IsPending(line) != shadow_pending[line]) {
          res.ok = false;
          res.detail = "pending state diverged from model";
        }
        break;
    }
  }
  if (res.ok && (ic.spurious_acks() != expected_spurious ||
                 ic.coalesced_asserts() != expected_coalesced)) {
    res.ok = false;
    res.detail = "spurious/coalesce counters diverged from model";
  }
  res.spurious_acks = ic.spurious_acks();
  res.coalesced = ic.coalesced_asserts();
  return res;
}

void BuildSpurious(const CampaignConfig& cfg, BuildState& bs) {
  const SplitMix64 base(cfg.seed ^ 0xA5A5'0004ull);
  for (std::size_t run = 0; run < cfg.spurious_runs; ++run) {
    bs.tasks.push_back({"spurious", "controller", "sp#" + std::to_string(run),
                        [base, run] { return RunSpuriousOrdinal(base, run); }});
  }

  // One kernel-level spurious entry: an IRQ kernel entry with nothing
  // pending must take the h.spurious path and leave the kernel consistent.
  bs.tasks.push_back({"spurious", "kernel-entry", "sp#kernel", [] {
                        ScenarioResult res;
                        res.mode = "spurious";
                        res.op = "kernel-entry";
                        res.plan = "sp#kernel";
                        try {
                          System sys(KernelConfig::After(), EvalMachine(false));
                          TcbObj* t = sys.AddThread(10);
                          sys.kernel().DirectSetCurrent(t);
                          sys.kernel().HandleIrqEntry();
                          sys.kernel().CheckInvariants();
                          res.ok = true;
                        } catch (const std::exception& ex) {
                          res.ok = false;
                          res.detail = Sanitize(ex.what());
                        }
                        return res;
                      }});
}

}  // namespace

std::vector<std::pair<std::string, OpFactory>> CanonicalOps() {
  std::vector<std::pair<std::string, OpFactory>> ops;
  ops.emplace_back("retype", MakeRetypeCase());
  ops.emplace_back("ep-delete", MakeEpDeleteCase());
  ops.emplace_back("badged-abort", MakeBadgedAbortCase());
  return ops;
}

std::uint64_t CampaignReport::failures() const {
  std::uint64_t n = 0;
  for (const ScenarioResult& r : results) {
    if (!r.ok) {
      ++n;
    }
  }
  return n;
}

void CampaignReport::WriteCsv(std::ostream& os) const {
  os << "mode,op,plan,ok,restarts,preempt_points,spurious_acks,coalesced,detail\n";
  for (const ScenarioResult& r : results) {
    os << r.mode << ',' << r.op << ',' << r.plan << ',' << (r.ok ? 1 : 0) << ',' << r.restarts
       << ',' << r.preempt_points << ',' << r.spurious_acks << ',' << r.coalesced << ','
       << r.detail << '\n';
  }
}

std::string CampaignReport::Summary() const {
  std::ostringstream os;
  os << "fault campaign seed=" << seed << ": " << results.size() << " scenarios, " << failures()
     << " failures";
  return os.str();
}

std::string CampaignShardStats::Summary() const {
  std::ostringstream os;
  os << "shard supervisor: tasks=" << tasks << " journal_hits=" << journal_hits
     << " retries=" << retries << " timeouts=" << timeouts << " worker_deaths=" << worker_deaths
     << " workers=" << workers_spawned << " quarantined=" << quarantined << " failed=" << failed;
  if (used_fallback) {
    os << " fallback";
  }
  if (resumed) {
    os << " resumed";
  }
  return os.str();
}

std::vector<std::uint8_t> EncodeScenarioResult(const ScenarioResult& r) {
  engine::WireWriter w;
  w.Str(r.mode);
  w.Str(r.op);
  w.Str(r.plan);
  w.Bool(r.ok);
  w.U32(r.restarts);
  w.U64(r.preempt_points);
  w.U64(r.spurious_acks);
  w.U64(r.coalesced);
  engine::StateSerializer::WriteHistogram(w, r.irq_hist);
  w.Str(r.detail);
  return w.Take();
}

ScenarioResult DecodeScenarioResult(const std::vector<std::uint8_t>& bytes) {
  engine::WireReader rd(bytes.data(), bytes.size());
  ScenarioResult r;
  r.mode = rd.Str();
  r.op = rd.Str();
  r.plan = rd.Str();
  r.ok = rd.Bool();
  r.restarts = rd.U32();
  r.preempt_points = rd.U64();
  r.spurious_acks = rd.U64();
  r.coalesced = rd.U64();
  r.irq_hist = engine::StateSerializer::ReadHistogram(rd);
  r.detail = rd.Str();
  rd.ExpectEnd("scenario result");
  return r;
}

std::uint64_t CampaignContextDigest(const CampaignConfig& config) {
  engine::WireWriter w;
  w.U64(engine::StateSerializer::KernelImageDigest(KernelConfig::After()));
  w.Bool(config.exhaustive);
  w.U32(config.random_runs);
  w.U32(config.storm_runs);
  w.U32(config.hostile_runs);
  w.U32(config.spurious_runs);
  w.U32(config.sweep.line);
  w.U32(config.sweep.restart_slack);
  return engine::Fnv1a64(w.bytes().data(), w.bytes().size());
}

namespace {

// The observatory scenario label for one result row: per-op for the modes
// that sweep the canonical operations, per-mode for the rest (hostile fans
// out over dozens of input kinds; one row each would drown the report).
std::string ObservatoryScenario(const ScenarioResult& r) {
  if (r.mode == "exhaustive" || r.mode == "random") {
    std::string op = r.op;
    const std::string dry = "/dry";
    if (op.size() > dry.size() && op.compare(op.size() - dry.size(), dry.size(), dry) == 0) {
      op.resize(op.size() - dry.size());
    }
    return r.mode + "/" + op;
  }
  return r.mode;
}

}  // namespace

CampaignReport RunCampaign(const CampaignConfig& config) {
  CampaignReport report;
  report.seed = config.seed;
  const std::uint64_t digest = CampaignContextDigest(config);

  // Build the complete run list — row order and RNG draws exactly match the
  // historical in-process campaign. Banks outlive the build via the
  // shared_ptr copies inside task closures.
  BuildState bs;
  {
    const PlanPeek peek(config, digest);
    if (config.exhaustive) {
      BuildExhaustive(config, peek, bs);
    }
    if (config.random_runs > 0) {
      BuildRandom(config, bs);
    }
    if (config.storm_runs > 0) {
      BuildStorm(config, bs);
    }
    if (config.hostile_runs > 0) {
      BuildHostile(config, bs);
    }
    if (config.spurious_runs > 0) {
      BuildSpurious(config, bs);
    }
  }
  std::vector<CampaignTask>& tasks = bs.tasks;

  // Poison hook: one designated run aborts when executing inside a shard
  // worker — the supervisor must quarantine exactly that row.
  if (config.poison_ordinal >= 0 &&
      static_cast<std::size_t>(config.poison_ordinal) < tasks.size()) {
    const auto inner = tasks[static_cast<std::size_t>(config.poison_ordinal)].run;
    tasks[static_cast<std::size_t>(config.poison_ordinal)].run = [inner] {
      if (engine::ShardSupervisor::InWorker()) {
        std::abort();
      }
      return inner();
    };
  }

  engine::ShardOptions sopts;
  sopts.shards = config.shards;
  sopts.jobs_per_shard = config.jobs;
  sopts.task_timeout_ms = config.shard_timeout_ms;
  sopts.max_attempts = config.shard_max_attempts;
  sopts.backoff_base_ms = config.shard_backoff_ms;
  sopts.journal_dir = config.journal_dir;
  sopts.journal_digest = digest;
  sopts.seed = config.seed;
  sopts.chaos_kill_shard = config.chaos_kill_shard;
  sopts.chaos_kill_after_results = config.chaos_kill_after_results;

  std::vector<engine::ShardTask> stasks;
  stasks.reserve(tasks.size());
  for (const CampaignTask& t : tasks) {
    stasks.push_back({t.Key(), [run = t.run] { return EncodeScenarioResult(run()); }});
  }
  const engine::ShardOutcome out = engine::ShardSupervisor(std::move(stasks), sopts).Run();

  report.results.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (out.completed[i]) {
      try {
        report.results.push_back(DecodeScenarioResult(out.payloads[i]));
        continue;
      } catch (const std::exception& ex) {
        ScenarioResult r;
        r.mode = tasks[i].mode;
        r.op = tasks[i].op;
        r.plan = tasks[i].plan;
        r.ok = false;
        r.detail = Sanitize(std::string("result decode failed: ") + ex.what());
        report.results.push_back(r);
        continue;
      }
    }
    // Quarantined-and-failed: the run kept killing workers (or aborted in
    // isolation). It is reported — visibly failed — without sinking any
    // other row.
    ScenarioResult r;
    r.mode = tasks[i].mode;
    r.op = tasks[i].op;
    r.plan = tasks[i].plan;
    r.ok = false;
    r.detail = "quarantined: run failed its isolated attempt";
    report.results.push_back(r);
  }

  report.shard.sharded = config.shards > 0;
  report.shard.tasks = tasks.size();
  report.shard.journal_hits = out.journal_hits;
  report.shard.retries = out.retries;
  report.shard.timeouts = out.timeouts;
  report.shard.worker_deaths = out.worker_deaths;
  report.shard.workers_spawned = out.workers_spawned;
  report.shard.quarantined = out.quarantined.size();
  report.shard.failed = out.failed.size();
  report.shard.used_fallback = out.used_fallback;
  report.shard.resumed = out.resumed;

  // Telemetry + observatory feed: both consume the assembled report, after
  // every deterministic byte of it is fixed.
  std::uint64_t total_spurious = 0;
  std::uint64_t total_coalesced = 0;
  for (const ScenarioResult& r : report.results) {
    obs::Counter(obs::ObsLabeled("fault.campaign.scenarios", "mode", r.mode).c_str()).Inc();
    total_spurious += r.spurious_acks;
    total_coalesced += r.coalesced;
  }
  RecordIrqControllerMetrics(total_spurious, total_coalesced);
  if (config.observatory != nullptr) {
    config.observatory->SetUnenforced("storm");
    for (const ScenarioResult& r : report.results) {
      const std::string scenario = ObservatoryScenario(r);
      config.observatory->Touch(config.config_label, scenario);
      config.observatory->RecordHistogram(config.config_label, scenario, r.irq_hist);
      config.observatory->RecordIrqCounters(config.config_label, scenario,
                                            r.spurious_acks, r.coalesced);
    }
  }
  return report;
}

}  // namespace pmk
