// Seeded fault campaign: thousands of deterministic adversarial scenarios.
//
// Five modes, all driven by one SplitMix64 seed:
//   exhaustive  one run per preemption-point boundary of each canonical
//               long-running operation (the tentpole sweep)
//   random      seeded plans mixing preempt-ordinal and cycle-offset
//               injections, bursts included
//   storm       Runner-driven workload under a device-side IRQ storm with
//               interleaved spurious acknowledges
//   hostile     malformed syscall arguments, out-of-range indices and
//               depth-exhausted capability decodes — must surface as
//               structured in-kernel errors, never as host exceptions
//   spurious    controller-level spurious-ack and coalescing semantics
//
// The report is a plain table with a stable ordering and no pointers or
// wall-clock values: identical seeds produce byte-identical CSV output.

#ifndef SRC_FAULT_CAMPAIGN_H_
#define SRC_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/scenario.h"
#include "src/obs/tail_observatory.h"

namespace pmk {

struct CampaignConfig {
  std::uint64_t seed = 1;
  bool exhaustive = true;
  std::uint32_t random_runs = 32;    // per canonical operation
  std::uint32_t storm_runs = 4;
  std::uint32_t hostile_runs = 128;  // hostile syscalls, forked from one system
  std::uint32_t spurious_runs = 16;
  SweepOptions sweep;

  // Worker threads for scenario execution (src/engine job pool). Plans and
  // RNG streams are precomputed serially and results collected in ordinal
  // order, so the report is byte-identical for any value — jobs=4 produces
  // exactly the jobs=1 CSV, just faster.
  unsigned jobs = 1;

  // Optional interrupt-response tail observatory. When set, every run's IRQ
  // latency histogram is merged under (config_label, "<mode>[/<op>]") after
  // the report is assembled — an observer of results already collected, so
  // attaching it cannot change a single CSV byte. Storm-mode rows are marked
  // unenforced: their latencies include device-side masking windows the
  // kernel WCET analysis deliberately excludes.
  obs::TailObservatory* observatory = nullptr;
  std::string config_label = "after";
};

struct ScenarioResult {
  std::string mode;
  std::string op;
  std::string plan;
  bool ok = false;
  std::uint32_t restarts = 0;
  std::uint64_t preempt_points = 0;
  std::uint64_t spurious_acks = 0;
  std::uint64_t coalesced = 0;
  // All assert->service latencies of the run (modelled cycles). Not part of
  // the CSV; feeds CampaignConfig::observatory.
  LatencyHistogram irq_hist;
  std::string detail;
};

struct CampaignReport {
  std::uint64_t seed = 0;
  std::vector<ScenarioResult> results;

  std::uint64_t failures() const;
  // Stable CSV: header + one row per scenario, in execution order.
  void WriteCsv(std::ostream& os) const;
  std::string Summary() const;
};

// The three canonical long-running operations by name, in report order.
std::vector<std::pair<std::string, OpFactory>> CanonicalOps();

CampaignReport RunCampaign(const CampaignConfig& config);

}  // namespace pmk

#endif  // SRC_FAULT_CAMPAIGN_H_
