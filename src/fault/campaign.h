// Seeded fault campaign: thousands of deterministic adversarial scenarios.
//
// Five modes, all driven by one SplitMix64 seed:
//   exhaustive  one run per preemption-point boundary of each canonical
//               long-running operation (the tentpole sweep)
//   random      seeded plans mixing preempt-ordinal and cycle-offset
//               injections, bursts included
//   storm       Runner-driven workload under a device-side IRQ storm with
//               interleaved spurious acknowledges
//   hostile     malformed syscall arguments, out-of-range indices and
//               depth-exhausted capability decodes — must surface as
//               structured in-kernel errors, never as host exceptions
//   spurious    controller-level spurious-ack and coalescing semantics
//
// The report is a plain table with a stable ordering and no pointers or
// wall-clock values: identical seeds produce byte-identical CSV output.

#ifndef SRC_FAULT_CAMPAIGN_H_
#define SRC_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/scenario.h"
#include "src/obs/tail_observatory.h"

namespace pmk {

struct CampaignConfig {
  std::uint64_t seed = 1;
  bool exhaustive = true;
  std::uint32_t random_runs = 32;    // per canonical operation
  std::uint32_t storm_runs = 4;
  std::uint32_t hostile_runs = 128;  // hostile syscalls, forked from one system
  std::uint32_t spurious_runs = 16;
  SweepOptions sweep;

  // Worker threads for scenario execution (src/engine job pool). Plans and
  // RNG streams are precomputed serially and results collected in ordinal
  // order, so the report is byte-identical for any value — jobs=4 produces
  // exactly the jobs=1 CSV, just faster.
  unsigned jobs = 1;

  // ---- fault-tolerant sharding (engine::ShardSupervisor) ----
  //
  // shards=0 keeps the historical in-process path (the byte-identical
  // reference); shards>=1 forks that many supervised worker processes, each
  // executing its deterministic slice of the run list and streaming framed
  // results back. Either way the CSV is byte-identical for a given seed —
  // supervision, retries and resume are invisible in the report body.
  std::uint32_t shards = 0;

  // Crash-safe result journal directory; empty disables. Completed runs are
  // persisted as they land, keyed by (kernel image digest, run key, seed):
  // re-running after a crash re-executes only missing runs, and a journal
  // from a different kernel/config/seed is invalidated on open.
  std::string journal_dir;

  // Supervision knobs (see engine::ShardOptions).
  std::uint32_t shard_timeout_ms = 120'000;
  std::uint32_t shard_max_attempts = 2;
  std::uint32_t shard_backoff_ms = 50;

  // Ship scenario state to workers as serialized SystemCheckpoint images
  // (engine::StateSerializer) instead of relying on fork()'s copy-on-write
  // memory: each worker deserializes the frozen system before forking runs
  // off it. Slower; exercises the full wire path end-to-end.
  bool shard_serial_images = false;

  // Chaos/test hooks. poison_ordinal: that run ordinal calls abort() when
  // executing inside a shard worker (never in-process) — the supervisor must
  // quarantine it and complete every other run. chaos_kill_*: forwarded to
  // engine::ShardOptions (SIGKILL a worker mid-campaign).
  std::int64_t poison_ordinal = -1;
  std::int32_t chaos_kill_shard = -1;
  std::uint32_t chaos_kill_after_results = 0;

  // Optional interrupt-response tail observatory. When set, every run's IRQ
  // latency histogram is merged under (config_label, "<mode>[/<op>]") after
  // the report is assembled — an observer of results already collected, so
  // attaching it cannot change a single CSV byte. Storm-mode rows are marked
  // unenforced: their latencies include device-side masking windows the
  // kernel WCET analysis deliberately excludes.
  obs::TailObservatory* observatory = nullptr;
  std::string config_label = "after";
};

struct ScenarioResult {
  std::string mode;
  std::string op;
  std::string plan;
  bool ok = false;
  std::uint32_t restarts = 0;
  std::uint64_t preempt_points = 0;
  std::uint64_t spurious_acks = 0;
  std::uint64_t coalesced = 0;
  // All assert->service latencies of the run (modelled cycles). Not part of
  // the CSV; feeds CampaignConfig::observatory.
  LatencyHistogram irq_hist;
  std::string detail;
};

// Supervision outcome of a sharded campaign (all zero on the historical
// in-process path without a journal). Not part of the CSV.
struct CampaignShardStats {
  bool sharded = false;
  std::uint64_t tasks = 0;
  std::uint64_t journal_hits = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t workers_spawned = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t failed = 0;
  bool used_fallback = false;
  bool resumed = false;

  std::string Summary() const;
};

struct CampaignReport {
  std::uint64_t seed = 0;
  std::vector<ScenarioResult> results;
  CampaignShardStats shard;

  std::uint64_t failures() const;
  // Stable CSV: header + one row per scenario, in execution order.
  void WriteCsv(std::ostream& os) const;
  std::string Summary() const;
};

// Wire codec for one result row: the payload format of the shard result pipe
// and the on-disk journal. Round-trips every field, histogram included;
// corrupt bytes throw engine::WireError.
std::vector<std::uint8_t> EncodeScenarioResult(const ScenarioResult& r);
ScenarioResult DecodeScenarioResult(const std::vector<std::uint8_t>& bytes);

// Stable identity of a campaign for journal addressing: the kernel image
// digest plus every config knob that changes row content. Seeds are part of
// the per-entry key, not the digest.
std::uint64_t CampaignContextDigest(const CampaignConfig& config);

// The three canonical long-running operations by name, in report order.
std::vector<std::pair<std::string, OpFactory>> CanonicalOps();

CampaignReport RunCampaign(const CampaignConfig& config);

}  // namespace pmk

#endif  // SRC_FAULT_CAMPAIGN_H_
