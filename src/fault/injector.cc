#include "src/fault/injector.h"

#include "src/hw/irq.h"
#include "src/obs/trace_sink.h"

namespace pmk {

std::string InjectionPlan::ToString() const {
  std::string s;
  for (const InjectionAction& a : actions) {
    if (!s.empty()) {
      s += ';';
    }
    s += a.trigger == InjectionAction::Trigger::kPreemptOrdinal ? "pp@" : "cyc@";
    s += std::to_string(a.at);
    s += ":l" + std::to_string(a.line);
    if (a.burst != 1) {
      s += "x" + std::to_string(a.burst);
    }
  }
  return s.empty() ? "none" : s;
}

std::uint64_t InjectionPlan::TotalLines() const {
  std::uint64_t n = 0;
  for (const InjectionAction& a : actions) {
    n += a.burst;
  }
  return n;
}

void FaultInjector::SetPlan(InjectionPlan plan) {
  plan_ = std::move(plan);
  fired_.assign(plan_.actions.size(), false);
  preempt_points_seen_ = 0;
  actions_fired_ = 0;
  lines_asserted_ = 0;
}

void FaultInjector::OnBlock(BlockId b, bool is_preemption_point) {
  (void)b;
  const std::uint64_t pp_ordinal = preempt_points_seen_;
  if (is_preemption_point) {
    ++preempt_points_seen_;
  }
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    if (fired_[i]) {
      continue;
    }
    const InjectionAction& a = plan_.actions[i];
    const bool due =
        a.trigger == InjectionAction::Trigger::kPreemptOrdinal
            ? (is_preemption_point && pp_ordinal == a.at)
            : machine_->Now() >= a.at;
    if (due) {
      fired_[i] = true;
      Fire(a);
    }
  }
}

void FaultInjector::Fire(const InjectionAction& a) {
  const Cycles now = machine_->Now();
  for (std::uint32_t i = 0; i < a.burst; ++i) {
    machine_->irq().Assert((a.line + i) % InterruptController::kNumLines, now);
    ++lines_asserted_;
  }
  ++actions_fired_;
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kFaultInject;
    e.cycle = now;
    e.name = "inject";
    e.id = a.line;
    e.arg0 = a.at;
    e.arg1 = a.burst;
    sink_->OnEvent(e);
  }
  if (on_inject_) {
    on_inject_(a);
  }
}

}  // namespace pmk
