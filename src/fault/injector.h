// Deterministic IRQ fault injector.
//
// A FaultInjector is a kir::FaultHook that asserts interrupt lines at exactly
// specified points of a kernel execution: either at the Nth preemption-point
// block the executor announces (kPreemptOrdinal — the adversarial placement
// the paper's incremental-consistency argument must survive) or at the first
// block boundary at or after a given machine cycle (kCycleAtLeast — the
// seeded-random offset mode). Asserting from the hook costs zero modelled
// cycles and lands before the kernel's PreemptPending() check for that block,
// so a kPreemptOrdinal action models an interrupt arriving precisely at that
// preemption-point boundary.

#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/kir/executor.h"

namespace pmk {

class TraceSink;

struct InjectionAction {
  enum class Trigger : std::uint8_t {
    kPreemptOrdinal,  // fire at the |at|-th preemption-point block (0-based)
    kCycleAtLeast,    // fire at the first block once Now() >= |at|
  };
  Trigger trigger = Trigger::kPreemptOrdinal;
  std::uint64_t at = 0;
  std::uint32_t line = 1;   // first line asserted (avoid 0: the timer line)
  std::uint32_t burst = 1;  // lines |line| .. |line|+burst-1 (mod kNumLines)
};

struct InjectionPlan {
  std::vector<InjectionAction> actions;

  // Stable, human-readable encoding, e.g. "pp@3:l5" or "cyc@1200:l7x4".
  // Used as the scenario key in campaign reports; must not depend on
  // pointers, timestamps or platform formatting.
  std::string ToString() const;

  // Total lines the plan can assert (sum of bursts): the restart bound a
  // correct kernel must respect, since each serviced line preempts at most
  // one restartable operation run.
  std::uint64_t TotalLines() const;
};

class FaultInjector : public FaultHook {
 public:
  explicit FaultInjector(Machine* machine) : machine_(machine) {}

  // Installs |plan| and resets all counters/firing state.
  void SetPlan(InjectionPlan plan);
  const InjectionPlan& plan() const { return plan_; }

  // Sabotage callback, invoked after each action fires. Tests use this to
  // corrupt kernel state at an exact injection point (the deliberately seeded
  // invariant bug of the acceptance criteria).
  void set_on_inject(std::function<void(const InjectionAction&)> cb) {
    on_inject_ = std::move(cb);
  }

  // Emits kFaultInject events for fired actions (optional).
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  // FaultHook: called by the executor for every announced block.
  void OnBlock(BlockId b, bool is_preemption_point) override;

  // Preemption-point blocks announced since SetPlan (across restarts).
  std::uint64_t preempt_points_seen() const { return preempt_points_seen_; }
  // Actions fired / lines actually asserted so far.
  std::uint32_t actions_fired() const { return actions_fired_; }
  std::uint64_t lines_asserted() const { return lines_asserted_; }

 private:
  void Fire(const InjectionAction& a);

  Machine* machine_;
  InjectionPlan plan_;
  std::vector<bool> fired_;
  std::uint64_t preempt_points_seen_ = 0;
  std::uint32_t actions_fired_ = 0;
  std::uint64_t lines_asserted_ = 0;
  std::function<void(const InjectionAction&)> on_inject_;
  TraceSink* sink_ = nullptr;
};

}  // namespace pmk

#endif  // SRC_FAULT_INJECTOR_H_
