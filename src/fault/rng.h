// Deterministic PRNG for fault campaigns.
//
// SplitMix64 (Steele/Lea/Flood): 64-bit state, one multiply-xorshift round
// per draw. Chosen over std::mt19937 because its output sequence is fixed by
// the algorithm itself, not by library implementation details — the campaign
// report for a given seed must be byte-identical across standard libraries
// and platforms.

#ifndef SRC_FAULT_RNG_H_
#define SRC_FAULT_RNG_H_

#include <cstdint>

namespace pmk {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform draw in [0, bound). |bound| must be nonzero. The modulo bias is
  // ~bound/2^64 — irrelevant for scheduling fuzz, and keeping the draw a
  // single Next() call makes the consumed-stream position easy to reason
  // about when reproducing a scenario by hand.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace pmk

#endif  // SRC_FAULT_RNG_H_
