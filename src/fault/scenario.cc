#include "src/fault/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "src/engine/job_pool.h"
#include "src/kernel/error.h"
#include "src/obs/metrics.h"

namespace pmk {

namespace {

// Fault-layer telemetry (observers only: recorded after the modelled run).
obs::Counter& RunCounter() {
  static obs::Counter c("fault.runs.executed");
  return c;
}
obs::Counter& InvariantCheckCounter() {
  static obs::Counter c("fault.invariant.checks");
  return c;
}
obs::Counter& ShrinkIterCounter() {
  static obs::Counter c("fault.shrink.iterations");
  return c;
}
obs::ValueHistogram& IrqResponseHist() {
  static obs::ValueHistogram h("fault.irq.response_cycles");
  return h;
}

// Root-CNode cap for CNode invocations (same idiom as the objops tests).
std::uint32_t CNodeCptrFor(System& sys) {
  Cap c;
  c.type = ObjType::kCNode;
  c.obj = sys.root()->base;
  return sys.AddCap(c);
}

void UnmaskPlanLines(System& sys, const InjectionPlan& plan) {
  for (const InjectionAction& a : plan.actions) {
    for (std::uint32_t i = 0; i < a.burst; ++i) {
      sys.machine().irq().Unmask((a.line + i) % InterruptController::kNumLines);
    }
  }
}

}  // namespace

ScenarioCheckpoint::ScenarioCheckpoint(const OpFactory& factory) : templ_(factory()) {
  if (templ_.actor != nullptr) {
    actor_base_ = templ_.actor->base;
  }
  ckpt_ = std::make_unique<engine::SystemCheckpoint>(*templ_.sys);
  templ_.sys.reset();       // the frozen image lives in ckpt_
  templ_.actor = nullptr;   // dangling once sys is gone; re-resolved per fork
}

ScenarioCheckpoint::ScenarioCheckpoint(const OpFactory& factory,
                                       const std::vector<std::uint8_t>& image)
    : templ_(factory()) {
  if (templ_.actor != nullptr) {
    actor_base_ = templ_.actor->base;
  }
  // The factory's freshly-booted system provided the template (and the actor
  // base); the frozen image the forks replay from is the deserialized one.
  ckpt_ = std::make_unique<engine::SystemCheckpoint>(engine::SystemCheckpoint::Deserialize(image));
  templ_.sys.reset();
  templ_.actor = nullptr;
}

std::vector<std::uint8_t> ScenarioCheckpoint::SerializeFrozen() const { return ckpt_->Serialize(); }

OpInstance ScenarioCheckpoint::Fork() const {
  OpInstance inst;
  inst.sys = ckpt_->Fork();
  inst.op = templ_.op;
  inst.cptr = templ_.cptr;
  inst.args = templ_.args;
  if (actor_base_ != 0) {
    inst.actor = inst.sys->kernel().objects().Get<TcbObj>(actor_base_);
    if (inst.actor == nullptr) {
      throw std::logic_error("ScenarioCheckpoint::Fork: actor missing from forked heap");
    }
  }
  inst.on_preempted = templ_.on_preempted;
  inst.check_done = templ_.check_done;
  return inst;
}

RunRecord RunWithPlan(const OpFactory& factory, const InjectionPlan& plan,
                      const SweepOptions& opts,
                      const std::function<void(System&)>& sabotage) {
  return RunWithInstance(factory(), plan, opts, sabotage);
}

RunRecord RunWithInstance(OpInstance inst, const InjectionPlan& plan,
                          const SweepOptions& opts,
                          const std::function<void(System&)>& sabotage) {
  System& sys = *inst.sys;

  FaultInjector inj(&sys.machine());
  inj.SetPlan(plan);
  if (sabotage) {
    inj.set_on_inject([&sys, &sabotage](const InjectionAction&) { sabotage(sys); });
  }
  sys.kernel().exec().set_fault_hook(&inj);

  RunRecord rec;
  rec.plan = plan.ToString();
  const std::uint64_t restart_bound = plan.TotalLines() + opts.restart_slack;

  for (;;) {
    KernelExit e;
    try {
      e = sys.kernel().Syscall(inst.op, inst.cptr, inst.args);
    } catch (const ExecError& ex) {
      rec.exec_error = true;
      rec.detail = ex.what();
      break;
    } catch (const KernelError& ex) {
      rec.kernel_error = true;
      rec.detail = ex.what();
      break;
    }
    try {
      sys.kernel().CheckInvariants();
    } catch (const std::logic_error& ex) {
      rec.invariant_violation = true;
      rec.detail = ex.what();
      break;
    }
    if (e != KernelExit::kPreempted) {
      rec.completed = true;
      break;
    }
    ++rec.restarts;
    if (rec.restarts > restart_bound) {
      // Progress audit: each injected line can preempt the operation at most
      // once (the kernel masks an unbound line when it services it), so more
      // restarts than injected lines plus slack means no forward progress.
      rec.restart_overrun = true;
      rec.detail = "restart bound exceeded (" + std::to_string(rec.restarts) + " restarts for " +
                   std::to_string(plan.TotalLines()) + " injectable lines)";
      break;
    }
    UnmaskPlanLines(sys, plan);
    if (inst.on_preempted) {
      inst.on_preempted(sys);
    }
    // The scenario actor outranks every other thread, so it is still current
    // and re-issues the restartable call — mirroring the hardware sequence
    // where the preempted thread traps straight back in.
  }

  if (rec.completed) {
    // Drain injected lines the operation outlived (on a non-preemptible
    // kernel that is all of them): the interrupt is finally taken here, so
    // its recorded latency spans the whole un-preempted operation.
    try {
      while (sys.machine().irq().AnyPending()) {
        sys.kernel().HandleIrqEntry();
      }
      sys.kernel().CheckInvariants();
    } catch (const ExecError& ex) {
      rec.exec_error = true;
      rec.detail = ex.what();
    } catch (const std::logic_error& ex) {
      rec.invariant_violation = true;
      rec.detail = ex.what();
    }
  }

  rec.actions_fired = inj.actions_fired();
  rec.lines_asserted = inj.lines_asserted();
  rec.preempt_points = inj.preempt_points_seen();
  for (const Cycles lat : sys.kernel().irq_latencies()) {
    rec.max_irq_latency = std::max(rec.max_irq_latency, lat);
    rec.irq_hist.Record(lat);
  }

  if (rec.completed && inst.check_done) {
    try {
      inst.check_done(sys);
    } catch (const std::logic_error& ex) {
      rec.invariant_violation = true;
      rec.detail = ex.what();
    }
  }
  sys.kernel().exec().set_fault_hook(nullptr);
  RunCounter().Inc();
  InvariantCheckCounter().Inc(rec.restarts + 1);  // one audit per kernel exit
  IrqResponseHist().Merge(rec.irq_hist);
  return rec;
}

bool SweepResult::AllOk() const {
  if (!dry_run.ok()) {
    return false;
  }
  for (const RunRecord& r : runs) {
    if (!r.ok()) {
      return false;
    }
  }
  return true;
}

std::uint32_t SweepResult::MaxRestarts() const {
  std::uint32_t m = dry_run.restarts;
  for (const RunRecord& r : runs) {
    m = std::max(m, r.restarts);
  }
  return m;
}

SweepResult ExhaustiveIrqSweep(const OpFactory& factory, const SweepOptions& opts) {
  SweepResult res;
  const auto plan_for = [&opts](std::uint64_t k) {
    InjectionPlan plan;
    InjectionAction a;
    a.trigger = InjectionAction::Trigger::kPreemptOrdinal;
    a.at = k;
    a.line = opts.line;
    plan.actions.push_back(a);
    return plan;
  };

  if (!opts.checkpoint) {
    // Legacy path: boot a fresh system per run (the BENCH_parallel baseline).
    res.dry_run = RunWithPlan(factory, InjectionPlan{}, opts);
    res.preempt_points = res.dry_run.preempt_points;
    res.runs.reserve(res.preempt_points);
    for (std::uint64_t k = 0; k < res.preempt_points; ++k) {
      res.runs.push_back(RunWithPlan(factory, plan_for(k), opts));
    }
    return res;
  }

  // Engine path: boot once, fork every run — including the dry run, so all
  // runs start from the identical frozen image — and execute on the job
  // pool, collecting results by ordinal.
  const ScenarioCheckpoint ckpt(factory);
  res.dry_run = RunWithInstance(ckpt.Fork(), InjectionPlan{}, opts);
  res.preempt_points = res.dry_run.preempt_points;
  res.runs.resize(res.preempt_points);
  engine::RunJobs(res.preempt_points, opts.jobs, [&](std::size_t k) {
    res.runs[k] = RunWithInstance(ckpt.Fork(), plan_for(k), opts);
  });
  return res;
}

InjectionPlan ShrinkPlan(const OpFactory& factory, const InjectionPlan& failing,
                         const SweepOptions& opts,
                         const std::function<void(System&)>& sabotage) {
  InjectionPlan cur = failing;
  bool shrunk = true;
  while (shrunk && cur.actions.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < cur.actions.size(); ++i) {
      ShrinkIterCounter().Inc();
      InjectionPlan candidate = cur;
      candidate.actions.erase(candidate.actions.begin() + static_cast<std::ptrdiff_t>(i));
      if (!RunWithPlan(factory, candidate, opts, sabotage).ok()) {
        cur = candidate;
        shrunk = true;
        break;  // restart the scan over the smaller plan
      }
    }
  }
  return cur;
}

// ---------- Canonical long-running operations ----------

OpFactory MakeRetypeCase(const KernelConfig& kc) {
  return [kc] {
    OpInstance inst;
    inst.sys = std::make_unique<System>(kc, EvalMachine(false));
    System& sys = *inst.sys;
    const std::uint32_t ut_cptr = sys.AddUntyped(19, nullptr);
    inst.actor = sys.AddThread(50);
    sys.kernel().DirectSetCurrent(inst.actor);

    inst.op = SysOp::kCall;
    inst.cptr = ut_cptr;
    inst.args.label = InvLabel::kUntypedRetype;
    inst.args.obj_type = ObjType::kFrame;
    inst.args.obj_bits = 18;  // 256 KiB -> 256 preemptible 1 KiB chunks
    inst.args.dest_index = 70;

    inst.check_done = [](System& s) {
      TcbObj* actor = s.kernel().current();
      if (actor->last_error != KError::kOk) {
        throw std::logic_error("retype: completed with error");
      }
      if (s.root()->slots[70].IsNull()) {
        throw std::logic_error("retype: destination slot still empty");
      }
    };
    return inst;
  };
}

OpFactory MakeEpDeleteCase(const KernelConfig& kc) {
  return [kc] {
    OpInstance inst;
    inst.sys = std::make_unique<System>(kc, EvalMachine(false));
    System& sys = *inst.sys;
    EndpointObj* ep = nullptr;
    const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
    sys.QueueSenders(ep, 40, {3, 5});
    inst.actor = sys.AddThread(50);
    sys.kernel().DirectSetCurrent(inst.actor);

    inst.op = SysOp::kCall;
    inst.cptr = CNodeCptrFor(sys);
    inst.args.label = InvLabel::kCNodeDelete;
    inst.args.arg0 = ep_cptr & 0xFF;

    const Addr ep_base = ep->base;
    inst.check_done = [ep_base](System& s) {
      if (s.kernel().objects().Get<EndpointObj>(ep_base) != nullptr) {
        throw std::logic_error("ep-delete: endpoint survived deletion");
      }
    };
    return inst;
  };
}

OpFactory MakeBadgedAbortCase(const KernelConfig& kc) {
  return [kc] {
    OpInstance inst;
    inst.sys = std::make_unique<System>(kc, EvalMachine(false));
    System& sys = *inst.sys;
    EndpointObj* ep = nullptr;
    const std::uint32_t ep_cptr = sys.AddEndpoint(&ep);
    Cap badged = sys.SlotOf(ep_cptr)->cap;
    badged.badge = 9;
    const std::uint32_t badged_cptr = sys.AddCap(badged, sys.SlotOf(ep_cptr));
    sys.QueueSenders(ep, 32, {9, 4});
    inst.actor = sys.AddThread(50);
    sys.kernel().DirectSetCurrent(inst.actor);

    inst.op = SysOp::kCall;
    inst.cptr = CNodeCptrFor(sys);
    inst.args.label = InvLabel::kCNodeRevoke;
    inst.args.arg0 = badged_cptr & 0xFF;

    const Addr ep_base = ep->base;
    inst.check_done = [ep_base](System& s) {
      EndpointObj* e = s.kernel().objects().Get<EndpointObj>(ep_base);
      if (e == nullptr) {
        throw std::logic_error("badged-abort: endpoint vanished");
      }
      if (e->abort.valid) {
        throw std::logic_error("badged-abort: resume state not cleared");
      }
    };
    return inst;
  };
}

}  // namespace pmk
