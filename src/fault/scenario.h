// Adversarial scenarios: one long-running kernel operation under injected
// interrupts, with the whole-kernel invariants audited at every kernel exit
// and the restart count bounded by the number of injected lines (the
// progress audit — a preempted restartable operation must not be restartable
// forever).
//
// A scenario is produced by an OpFactory: a callable that builds a FRESH
// System plus the operation to drive against it. Fresh state per run is what
// makes runs independent and seeds reproducible; factories must be pure
// (no shared mutable state between invocations).

#ifndef SRC_FAULT_SCENARIO_H_
#define SRC_FAULT_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/checkpoint.h"
#include "src/fault/injector.h"
#include "src/obs/histogram.h"
#include "src/sim/workload.h"

namespace pmk {

// One operation instance against a fresh system.
struct OpInstance {
  std::unique_ptr<System> sys;
  SysOp op = SysOp::kCall;
  std::uint32_t cptr = 0;
  SyscallArgs args;
  TcbObj* actor = nullptr;  // the thread issuing the operation

  // Called after every preempted exit, before the restart — scenarios use it
  // to model hostile concurrency (e.g. new senders arriving mid-abort).
  std::function<void(System&)> on_preempted;
  // Called once the operation completes; throws (std::logic_error) if the
  // operation's own post-conditions do not hold.
  std::function<void(System&)> check_done;
};

using OpFactory = std::function<OpInstance()>;

// Checkpointed scenario: invokes |factory| ONCE, freezes the built system via
// the engine's SystemCheckpoint, and stamps out independent OpInstances on
// demand. A fork deep-clones the system, re-resolves the actor by its base
// address in the cloned heap, and shares the on_preempted/check_done
// callbacks across forks.
//
// Requires a FORK-SAFE factory: because the factory runs once and its
// callbacks are shared, they must address objects via the System& they are
// handed (capturing base addresses, never object pointers) and must not
// carry per-run mutable state. The canonical operations below qualify;
// factories that track identity through captured pointers (some tests do)
// must stay on the boot-per-run path (SweepOptions::checkpoint = false).
// Fork() is const and thread-safe; the job pool calls it from worker threads.
class ScenarioCheckpoint {
 public:
  explicit ScenarioCheckpoint(const OpFactory& factory);

  // Rebuilds the scenario around a pre-serialized system image (shard
  // transport): |factory| supplies the operation template — op, args and the
  // shared callbacks, which cannot cross a process boundary as bytes — while
  // the frozen system comes from |image| (SystemCheckpoint::Serialize of a
  // checkpoint built from the same factory). Corrupt images throw WireError.
  ScenarioCheckpoint(const OpFactory& factory, const std::vector<std::uint8_t>& image);

  // Serialized frozen image, the input to the constructor above.
  std::vector<std::uint8_t> SerializeFrozen() const;

  OpInstance Fork() const;

 private:
  OpInstance templ_;  // op, args and callbacks; its sys is moved into ckpt_
  std::unique_ptr<engine::SystemCheckpoint> ckpt_;
  Addr actor_base_ = 0;
};

struct SweepOptions {
  std::uint32_t line = 5;           // unbound device line asserted by default
  std::uint32_t restart_slack = 4;  // allowed restarts beyond injected lines
  unsigned jobs = 1;                // worker threads for the sweep's runs
  // Boot once + fork every run off the frozen image. Opt-in: requires a
  // fork-safe factory (see ScenarioCheckpoint). Off, the sweep boots a
  // fresh system per run, which any factory supports.
  bool checkpoint = false;
};

// Outcome of driving one operation under one injection plan.
struct RunRecord {
  std::string plan;  // InjectionPlan::ToString()
  bool completed = false;
  bool invariant_violation = false;  // CheckInvariants or check_done failed
  bool exec_error = false;           // CFG divergence (host-level bug)
  bool kernel_error = false;         // structured KernelError escaped
  bool restart_overrun = false;      // progress audit failed
  std::uint32_t restarts = 0;
  std::uint32_t actions_fired = 0;
  std::uint64_t lines_asserted = 0;
  std::uint64_t preempt_points = 0;  // pp blocks seen across all restarts
  Cycles max_irq_latency = 0;        // worst assert->service latency observed
  // Every assert->service latency of the run, for the tail observatory.
  // Deterministic (modelled cycles), so safe to aggregate across jobs.
  LatencyHistogram irq_hist;
  std::string detail;                // first failure message

  bool ok() const {
    return completed && !invariant_violation && !exec_error && !kernel_error && !restart_overrun;
  }
};

// Drives factory()'s operation to completion under |plan|. After every kernel
// exit (completed or preempted) CheckInvariants() runs; after every preempted
// exit the plan's lines are re-enabled (the kernel masks serviced unbound
// lines) and on_preempted fires. |sabotage|, if set, is forwarded to the
// injector's on_inject hook.
RunRecord RunWithPlan(const OpFactory& factory, const InjectionPlan& plan,
                      const SweepOptions& opts,
                      const std::function<void(System&)>& sabotage = nullptr);

// Same, but drives an already-built instance (e.g. a checkpoint fork).
// Consumes |inst|: the run mutates its system beyond reuse.
RunRecord RunWithInstance(OpInstance inst, const InjectionPlan& plan,
                          const SweepOptions& opts,
                          const std::function<void(System&)>& sabotage = nullptr);

struct SweepResult {
  std::uint64_t preempt_points = 0;  // from the injection-free dry run
  RunRecord dry_run;
  std::vector<RunRecord> runs;  // runs[k] injected at preemption ordinal k

  bool AllOk() const;
  std::uint32_t MaxRestarts() const;
};

// The tentpole sweep: a dry run counts the P preemption-point boundaries the
// operation crosses, then P independent runs each assert an interrupt at
// exactly one boundary. Every run audits invariants and restart bounds.
//
// With opts.checkpoint the scenario is built once and every run forks from
// the frozen image; with opts.jobs > 1 the runs execute on a job pool,
// collected in ordinal order. Both knobs are invisible in the result: the
// sweep output is identical for any (checkpoint, jobs) combination.
SweepResult ExhaustiveIrqSweep(const OpFactory& factory, const SweepOptions& opts);

// Greedy subset minimisation: repeatedly drops actions whose removal keeps
// the plan failing, until no single removal preserves the failure. The result
// is subset-minimal (removing ANY remaining action makes the run pass) and
// deterministic. |sabotage| must match what made |failing| fail.
InjectionPlan ShrinkPlan(const OpFactory& factory, const InjectionPlan& failing,
                         const SweepOptions& opts,
                         const std::function<void(System&)>& sabotage = nullptr);

// Canonical long-running operations (paper Sections 3.3-3.5), each with >= a
// handful of preemption points (under the default "after" kernel) and
// self-checking post-conditions. The config parameter lets ablation
// benchmarks run the same scenarios against the non-preemptible "before"
// kernel, where the sweep degenerates to the dry run.
OpFactory MakeRetypeCase(const KernelConfig& kc = KernelConfig::After());
OpFactory MakeEpDeleteCase(const KernelConfig& kc = KernelConfig::After());
OpFactory MakeBadgedAbortCase(const KernelConfig& kc = KernelConfig::After());

}  // namespace pmk

#endif  // SRC_FAULT_SCENARIO_H_
