#include "src/hw/branch_predictor.h"

#include <cassert>

namespace pmk {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config)
    : config_(config), btb_(config.btb_entries) {
  assert(config_.btb_entries > 0);
}

void BranchPredictor::Reset() {
  for (Entry& e : btb_) {
    e = Entry{};
  }
  mispredicts_ = 0;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
Cycles BranchPredictor::OnBranchReference(Addr pc, BranchKind kind, bool taken) {
  if (kind == BranchKind::kNone) {
    return 0;
  }
  if (!config_.enabled) {
    return config_.disabled_cost;
  }
  return OnBranchEnabled(pc, kind, taken);
}

Cycles BranchPredictor::OnBranchEnabled(Addr pc, BranchKind kind, bool taken) {
  return OnBranchEnabledAt(static_cast<std::uint32_t>(pc % btb_.size()), pc, kind, taken);
}

}  // namespace pmk
