#include "src/hw/branch_predictor.h"

#include <cassert>

namespace pmk {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config)
    : config_(config), btb_(config.btb_entries) {
  assert(config_.btb_entries > 0);
}

void BranchPredictor::Reset() {
  for (Entry& e : btb_) {
    e = Entry{};
  }
  mispredicts_ = 0;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
Cycles BranchPredictor::OnBranchReference(Addr pc, BranchKind kind, bool taken) {
  if (kind == BranchKind::kNone) {
    return 0;
  }
  if (!config_.enabled) {
    return config_.disabled_cost;
  }
  return OnBranchEnabled(pc, kind, taken);
}

Cycles BranchPredictor::OnBranchEnabled(Addr pc, BranchKind kind, bool taken) {
  // Unconditional branches and returns hit the BTB / return stack; model them
  // as predicted correctly after first sight.
  Entry& e = btb_[pc % btb_.size()];
  const bool seen = e.valid && e.pc == pc;
  if (kind == BranchKind::kDirect || kind == BranchKind::kReturn) {
    e.pc = pc;
    e.valid = true;
    if (seen) {
      return config_.correct_taken;
    }
    mispredicts_++;
    return config_.mispredict;
  }
  // Conditional: 2-bit saturating counter.
  bool predicted_taken = false;
  if (seen) {
    predicted_taken = e.counter >= 2;
  } else {
    e.pc = pc;
    e.valid = true;
    e.counter = 1;
  }
  Cycles cost;
  if (seen && predicted_taken == taken) {
    cost = taken ? config_.correct_taken : config_.correct_not_taken;
  } else {
    mispredicts_++;
    cost = config_.mispredict;
  }
  if (taken && e.counter < 3) {
    e.counter++;
  } else if (!taken && e.counter > 0) {
    e.counter--;
  }
  return cost;
}

}  // namespace pmk
