// Branch predictor model for the ARM1136.
//
// The paper (Section 5.1) notes: with branch prediction disabled, all branches
// on the ARM1136 execute in a constant 5 cycles; with prediction enabled they
// vary between 0 and 7 cycles depending on branch kind and prediction outcome.
// The static analysis of the paper does not model the predictor, so
// measurements are taken with it disabled by default; Figure 9 quantifies the
// effect of enabling it.

#ifndef SRC_HW_BRANCH_PREDICTOR_H_
#define SRC_HW_BRANCH_PREDICTOR_H_

#include <cstdint>
#include <vector>

#include "src/hw/cache.h"
#include "src/hw/cycles.h"

namespace pmk {

enum class BranchKind : std::uint8_t {
  kNone,         // fall-through, no branch at block end
  kConditional,  // conditional direct branch
  kDirect,       // unconditional direct branch / call
  kReturn,       // indirect branch via LR (function return)
};

struct BranchPredictorConfig {
  bool enabled = false;
  std::uint32_t btb_entries = 128;
  // Costs, in cycles.
  Cycles disabled_cost = 5;       // constant when the predictor is off
  Cycles correct_taken = 1;       // predicted-taken branch, folded
  Cycles correct_not_taken = 0;   // correctly predicted fall-through
  Cycles mispredict = 7;          // flush of the 8-stage pipeline
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config);

  // Records the outcome of the branch terminating the block at |pc| and
  // returns its cost in cycles. |taken| reports the actual direction.
  // Inline: charged on every block transition, and the common
  // predictor-disabled configuration reduces to two compares.
  Cycles OnBranch(Addr pc, BranchKind kind, bool taken) {
    if (kind == BranchKind::kNone) {
      return 0;
    }
    if (!config_.enabled) {
      return config_.disabled_cost;
    }
    return OnBranchEnabled(pc, kind, taken);
  }

  // Slot-folded variant for the compiled executor backend: |slot| must equal
  // pc % btb_entries (the compiled stream precomputes it per block at
  // Program::CompiledFor time, removing the modulo from the hot path).
  // Identical outcome and state transitions to OnBranch(pc, kind, taken).
  Cycles OnBranchSlot(std::uint32_t slot, Addr pc, BranchKind kind, bool taken) {
    if (kind == BranchKind::kNone) {
      return 0;
    }
    if (!config_.enabled) {
      return config_.disabled_cost;
    }
    return OnBranchEnabledAt(slot, pc, kind, taken);
  }

  // Benchmark reference path: identical outcome to OnBranch but out of line,
  // the seed's per-branch call cost.
  Cycles OnBranchReference(Addr pc, BranchKind kind, bool taken);

  void Reset();

  const BranchPredictorConfig& config() const { return config_; }
  std::uint64_t mispredicts() const { return mispredicts_; }

 private:
  friend class engine::StateSerializer;

  // BTB/counter update for the predictor-enabled configuration.
  Cycles OnBranchEnabled(Addr pc, BranchKind kind, bool taken);

  // Body of the update with the BTB slot already computed. Inline: the
  // compiled executor charges one of these per block transition.
  Cycles OnBranchEnabledAt(std::uint32_t slot, Addr pc, BranchKind kind, bool taken) {
    // Unconditional branches and returns hit the BTB / return stack; model
    // them as predicted correctly after first sight.
    Entry& e = btb_[slot];
    const bool seen = e.valid && e.pc == pc;
    if (kind == BranchKind::kDirect || kind == BranchKind::kReturn) {
      e.pc = pc;
      e.valid = true;
      if (seen) {
        return config_.correct_taken;
      }
      mispredicts_++;
      return config_.mispredict;
    }
    // Conditional: 2-bit saturating counter.
    bool predicted_taken = false;
    if (seen) {
      predicted_taken = e.counter >= 2;
    } else {
      e.pc = pc;
      e.valid = true;
      e.counter = 1;
    }
    Cycles cost;
    if (seen && predicted_taken == taken) {
      cost = taken ? config_.correct_taken : config_.correct_not_taken;
    } else {
      mispredicts_++;
      cost = config_.mispredict;
    }
    if (taken && e.counter < 3) {
      e.counter++;
    } else if (!taken && e.counter > 0) {
      e.counter--;
    }
    return cost;
  }

  struct Entry {
    Addr pc = 0;
    std::uint8_t counter = 1;  // 2-bit saturating counter, weakly not-taken
    bool valid = false;
  };

  BranchPredictorConfig config_;
  std::vector<Entry> btb_;
  std::uint64_t mispredicts_ = 0;
};

}  // namespace pmk

#endif  // SRC_HW_BRANCH_PREDICTOR_H_
