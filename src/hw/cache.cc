#include "src/hw/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace pmk {

Cache::Cache(const CacheConfig& config)
    : config_(config),
      num_sets_(config.NumSets()),
      lines_(static_cast<std::size_t>(config.NumSets()) * config.ways),
      rr_next_(config.NumSets(), 0) {
  assert(std::has_single_bit(config_.line_bytes));
  assert(std::has_single_bit(num_sets_));
  assert(config_.ways >= 1);
}

std::uint32_t Cache::SetIndexOf(Addr addr) const {
  return static_cast<std::uint32_t>((addr / config_.line_bytes) & (num_sets_ - 1));
}

Addr Cache::TagOf(Addr addr) const { return addr / config_.line_bytes / num_sets_; }

bool Cache::Access(Addr addr) {
  stats_.accesses++;
  const std::uint32_t set = SetIndexOf(addr);
  const Addr tag = TagOf(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      stats_.hits++;
      return true;
    }
  }
  stats_.misses++;
  // Allocate, unless every way is locked (then the line bypasses the cache).
  const std::uint32_t all_ways = (config_.ways >= 32) ? ~0u : ((1u << config_.ways) - 1);
  if ((locked_ways_ & all_ways) == all_ways) {
    return false;
  }
  const std::uint32_t victim = PickVictim(set);
  base[victim].tag = tag;
  base[victim].valid = true;
  return false;
}

bool Cache::Contains(Addr addr) const {
  const std::uint32_t set = SetIndexOf(addr);
  const Addr tag = TagOf(addr);
  const Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return true;
    }
  }
  return false;
}

void Cache::InstallLine(Addr addr, std::uint32_t way) {
  assert(way < config_.ways);
  const std::uint32_t set = SetIndexOf(addr);
  Line& line = lines_[static_cast<std::size_t>(set) * config_.ways + way];
  line.tag = TagOf(addr);
  line.valid = true;
}

void Cache::LockWay(std::uint32_t way) {
  assert(way < config_.ways);
  locked_ways_ |= (1u << way);
}

void Cache::UnlockWay(std::uint32_t way) {
  assert(way < config_.ways);
  locked_ways_ &= ~(1u << way);
}

void Cache::InvalidateAll() {
  for (Line& line : lines_) {
    line.valid = false;
  }
}

void Cache::Pollute(Addr garbage_base, double fraction) {
  // Install a unique garbage tag in every unlocked way of |fraction| of the
  // sets (spread across the index space via a hash, the way a finite
  // polluting buffer strides through a large cache). Garbage tags are
  // derived from addresses far above anything the workloads use.
  const std::uint32_t threshold = static_cast<std::uint32_t>(fraction * 1024.0 + 0.5);
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    if ((set * 2654435761u >> 6) % 1024 >= threshold) {
      continue;
    }
    Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      if (locked_ways_ & (1u << w)) {
        continue;
      }
      const Addr addr = garbage_base +
                        (static_cast<Addr>(w) * num_sets_ + set) * config_.line_bytes;
      base[w].tag = TagOf(addr);
      base[w].valid = true;
    }
  }
}

std::uint32_t Cache::PickVictim(std::uint32_t set) {
  // Find an unlocked victim way according to the replacement policy.
  if (config_.policy == ReplacementPolicy::kRoundRobin) {
    std::uint32_t w = rr_next_[set];
    for (std::uint32_t tries = 0; tries < config_.ways; ++tries) {
      const std::uint32_t cand = (w + tries) % config_.ways;
      if (!(locked_ways_ & (1u << cand))) {
        rr_next_[set] = (cand + 1) % config_.ways;
        return cand;
      }
    }
  } else {
    for (std::uint32_t tries = 0; tries < 4 * config_.ways; ++tries) {
      // 16-bit Galois LFSR.
      lfsr_ = (lfsr_ >> 1) ^ (-(lfsr_ & 1u) & 0xB400u);
      const std::uint32_t cand = static_cast<std::uint32_t>(lfsr_) % config_.ways;
      if (!(locked_ways_ & (1u << cand))) {
        return cand;
      }
    }
    // Degenerate fallback: first unlocked way.
    for (std::uint32_t cand = 0; cand < config_.ways; ++cand) {
      if (!(locked_ways_ & (1u << cand))) {
        return cand;
      }
    }
  }
  assert(false && "PickVictim called with all ways locked");
  return 0;
}

}  // namespace pmk
