#include "src/hw/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "src/hw/hotpath.h"

namespace pmk {

void CacheConfig::Validate() const {
  if (ways < 1) {
    throw std::invalid_argument("CacheConfig '" + name + "': ways must be >= 1");
  }
  if (line_bytes == 0 || !std::has_single_bit(line_bytes)) {
    throw std::invalid_argument("CacheConfig '" + name + "': line_bytes (" +
                                std::to_string(line_bytes) + ") must be a power of two");
  }
  if (size_bytes == 0 || size_bytes % (ways * line_bytes) != 0) {
    throw std::invalid_argument("CacheConfig '" + name + "': size_bytes (" +
                                std::to_string(size_bytes) + ") must be a non-zero multiple of " +
                                "ways * line_bytes (" + std::to_string(ways * line_bytes) + ")");
  }
  if (!std::has_single_bit(NumSets())) {
    throw std::invalid_argument("CacheConfig '" + name + "': set count (" +
                                std::to_string(NumSets()) + ") must be a power of two");
  }
}

namespace {
// Validation must precede the member initializers below: NumSets() divides by
// ways * line_bytes, which an invalid config can make zero.
const CacheConfig& Validated(const CacheConfig& config) {
  config.Validate();
  return config;
}
}  // namespace

Cache::Cache(const CacheConfig& config)
    : config_(Validated(config)),
      num_sets_(config.NumSets()),
      ways_(config.ways),
      line_shift_(0),
      tag_shift_(0),
      set_mask_(0),
      all_ways_mask_(config.ways >= 32 ? ~0u : ((1u << config.ways) - 1)),
      tags_(static_cast<std::size_t>(config.NumSets()) * config.ways, kInvalidTag),
      rr_next_(config.NumSets(), 0) {
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config_.line_bytes));
  tag_shift_ = line_shift_ + static_cast<std::uint32_t>(std::countr_zero(num_sets_));
  set_mask_ = num_sets_ - 1;
  if (hotpath::ReferenceMode()) {
    ref_lines_.resize(tags_.size());
  }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
bool Cache::AccessReference(Addr addr) {
  // Mirrors the seed implementation byte-for-byte in behaviour and in host
  // cost: set and tag come from divisions by runtime values (the compiler
  // cannot reduce them to shifts), the lookup walks the array-of-structs
  // {tag, valid} mirror the seed stored lines in, and the whole thing runs
  // out of line. State changes land in both the mirror and the flat tag
  // array so every other entry point sees them. Keep in sync with
  // AccessLine(); hotpath_equivalence_test cross-checks the two.
  if (ref_lines_.empty()) {
    SyncRefMirror();
  }
  stats_.accesses++;
  const std::uint32_t set = static_cast<std::uint32_t>((addr / config_.line_bytes) & (num_sets_ - 1));
  const Addr tag = addr / config_.line_bytes / num_sets_;
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (ref_lines_[base + w].valid && ref_lines_[base + w].tag == tag) {
      stats_.hits++;
      return true;
    }
  }
  stats_.misses++;
  if ((locked_ways_ & all_ways_mask_) == all_ways_mask_) {
    return false;
  }
  const std::uint32_t victim = PickVictim<0>(set);
  ref_lines_[base + victim].tag = tag;
  ref_lines_[base + victim].valid = true;
  tags_[base + victim] = NarrowTag(tag);
  gen_++;
  return false;
}

void Cache::InstallLine(Addr addr, std::uint32_t way) {
  assert(way < ways_);
  const std::size_t idx = static_cast<std::size_t>(SetIndexOf(addr)) * ways_ + way;
  tags_[idx] = NarrowTag(TagOf(addr));
  gen_++;
  if (!ref_lines_.empty()) {
    ref_lines_[idx] = {TagOf(addr), true};
  }
}

void Cache::LockWay(std::uint32_t way) {
  assert(way < ways_);
  locked_ways_ |= (1u << way);
}

void Cache::UnlockWay(std::uint32_t way) {
  assert(way < ways_);
  locked_ways_ &= ~(1u << way);
}

void Cache::InvalidateAll() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(ref_lines_.begin(), ref_lines_.end(), RefLine{});
  gen_++;
}

void Cache::Pollute(Addr garbage_base, double fraction) {
  // Install a unique garbage tag in every unlocked way of |fraction| of the
  // sets (spread across the index space via a hash, the way a finite
  // polluting buffer strides through a large cache). Garbage tags are
  // derived from addresses far above anything the workloads use.
  const std::uint32_t threshold = static_cast<std::uint32_t>(fraction * 1024.0 + 0.5);
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    if ((set * 2654435761u >> 6) % 1024 >= threshold) {
      continue;
    }
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (locked_ways_ & (1u << w)) {
        continue;
      }
      const Addr addr = garbage_base +
                        (static_cast<Addr>(w) * num_sets_ + set) * config_.line_bytes;
      tags_[base + w] = NarrowTag(TagOf(addr));
      if (!ref_lines_.empty()) {
        ref_lines_[base + w] = {TagOf(addr), true};
      }
    }
  }
  gen_++;
}

void Cache::SyncRefMirror() {
  // Builds the seed-layout mirror from the flat tag array; used when
  // AccessReference is first called on a cache constructed outside reference
  // mode (equivalence tests exercise this).
  ref_lines_.resize(tags_.size());
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    ref_lines_[i] = tags_[i] == kInvalidTag ? RefLine{} : RefLine{tags_[i], true};
  }
}

std::uint32_t Cache::PickVictimFallback() {
  // First unlocked way; reached only from degenerate PickVictim exits
  // (callers guarantee at least one way is unlocked).
  for (std::uint32_t cand = 0; cand < ways_; ++cand) {
    if (!(locked_ways_ & (1u << cand))) {
      return cand;
    }
  }
  assert(false && "PickVictim called with all ways locked");
  return 0;
}

}  // namespace pmk
