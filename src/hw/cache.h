// Set-associative cache model with way-locking (cache pinning).
//
// Models the ARM1136 L1 caches (16 KiB, 4-way, configurable round-robin or
// pseudo-random replacement) and the i.MX31 unified L2 (128 KiB, 8-way). The
// ARM1136 allows a subset of ways to be excluded from replacement, which is
// how the paper pins the interrupt-delivery path into 1/4 of each L1 cache
// (Section 4).

#ifndef SRC_HW_CACHE_H_
#define SRC_HW_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmk {

using Addr = std::uint64_t;

enum class ReplacementPolicy {
  kRoundRobin,
  kPseudoRandom,
};

struct CacheConfig {
  std::string name = "cache";
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 32;
  ReplacementPolicy policy = ReplacementPolicy::kRoundRobin;

  std::uint32_t NumSets() const { return size_bytes / (ways * line_bytes); }
};

// Statistics counters for one cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  void Reset() { *this = CacheStats{}; }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Looks up |addr|; on a miss, allocates the line into a victim way chosen
  // among unlocked ways. Returns true on hit.
  bool Access(Addr addr);

  // Returns true if |addr|'s line is currently resident (no state change).
  bool Contains(Addr addr) const;

  // Loads |addr|'s line into way |way| and marks it resident, regardless of
  // locking. Used to pre-load lines that will then be pinned.
  void InstallLine(Addr addr, std::uint32_t way);

  // Excludes |way| from replacement: resident lines in it become pinned.
  void LockWay(std::uint32_t way);
  void UnlockWay(std::uint32_t way);
  std::uint32_t LockedWayMask() const { return locked_ways_; }

  // Invalidates all lines (locked ways included). Lock bits are retained.
  void InvalidateAll();

  // Fills the unlocked portion of the cache with garbage tags that collide
  // with nothing the caller will use. Used by worst-case test programs that
  // pollute the caches before measuring (paper Section 5.4). |fraction|
  // limits pollution to the first fraction of the sets: a finite polluting
  // buffer only partially displaces a large cache.
  void Pollute(Addr garbage_base, double fraction = 1.0);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  std::uint32_t SetIndexOf(Addr addr) const;
  Addr TagOf(Addr addr) const;

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
  };

  // Chooses the victim way among unlocked ways for |set|.
  std::uint32_t PickVictim(std::uint32_t set);

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways, way-major within a set.
  std::vector<std::uint32_t> rr_next_;  // per-set round-robin pointer
  std::uint32_t locked_ways_ = 0;       // bitmask of locked ways
  std::uint64_t lfsr_ = 0xACE1u;        // pseudo-random replacement state
  CacheStats stats_;
};

}  // namespace pmk

#endif  // SRC_HW_CACHE_H_
