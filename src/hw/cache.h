// Set-associative cache model with way-locking (cache pinning).
//
// Models the ARM1136 L1 caches (16 KiB, 4-way, configurable round-robin or
// pseudo-random replacement) and the i.MX31 unified L2 (128 KiB, 8-way). The
// ARM1136 allows a subset of ways to be excluded from replacement, which is
// how the paper pins the interrupt-delivery path into 1/4 of each L1 cache
// (Section 4).
//
// Hot-path layout: the line array is a flat tag array (way-major within a
// set) where an invalid line holds the unreachable sentinel kInvalidTag, so
// residency needs no separate valid bit — one load and one compare per way.
// The geometry is reduced to shifts and masks validated at construction, so
// a lookup is a handful of loads with no divisions. Every simulated memory
// access in the repository funnels through Access()/AccessLine(); they are
// defined inline here so the executor's inner loop does not pay a cross-TU
// call per access.

#ifndef SRC_HW_CACHE_H_
#define SRC_HW_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmk {

namespace engine {
class StateSerializer;  // full-state (de)serialization, src/engine/serialize.h
}

using Addr = std::uint64_t;

enum class ReplacementPolicy {
  kRoundRobin,
  kPseudoRandom,
};

struct CacheConfig {
  std::string name = "cache";
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 32;
  ReplacementPolicy policy = ReplacementPolicy::kRoundRobin;

  std::uint32_t NumSets() const { return size_bytes / (ways * line_bytes); }

  // Throws std::invalid_argument unless the geometry is modellable:
  // power-of-two line_bytes and NumSets(), ways >= 1, and size_bytes evenly
  // divisible by ways * line_bytes (silent truncation in NumSets() would
  // otherwise mis-size the cache).
  void Validate() const;
};

// Statistics counters for one cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  void Reset() { *this = CacheStats{}; }
};

class Cache {
 public:
  // Validates |config| (see CacheConfig::Validate) and precomputes the
  // shift/mask geometry.
  explicit Cache(const CacheConfig& config);

  // Looks up |addr|; on a miss, allocates the line into a victim way chosen
  // among unlocked ways. Returns true on hit.
  bool Access(Addr addr) { return AccessLine(SetIndexOf(addr), TagOf(addr)); }

  // Split entry point for callers that already know the line's set and tag
  // (e.g. precomputed instruction-fetch spans). Identical state transitions
  // and statistics to Access(); Access(a) == AccessLine(SetIndexOf(a),
  // TagOf(a)) by construction. Dispatches to a way-count-specialised body for
  // the two modelled geometries (4-way L1, 8-way L2) so the compiler unrolls
  // the tag scan.
  bool AccessLine(std::uint32_t set, Addr tag) {
    if (ways_ == 4) {
      return AccessLineImpl<4>(set, tag);
    }
    if (ways_ == 8) {
      return AccessLineImpl<8>(set, tag);
    }
    return AccessLineImpl<0>(set, tag);
  }

  // Returns true if |addr|'s line is currently resident (no state change).
  bool Contains(Addr addr) const {
    const std::size_t base = static_cast<std::size_t>(SetIndexOf(addr)) * ways_;
    const Addr tag = TagOf(addr);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag) {
        return true;
      }
    }
    return false;
  }

  // Benchmark reference path: the seed implementation's per-access cost
  // profile — an out-of-line call whose set/tag arithmetic divides by the
  // runtime line size and set count instead of using the precomputed shifts,
  // and whose lookups walk the seed's array-of-structs {tag, valid} line
  // array (ref_lines_) rather than the flat tag array. State transitions and
  // statistics are identical to Access(); only the host-side cost differs.
  // bench_sim_hotpath uses this as the pre-optimisation baseline and
  // self-checks output equality.
  bool AccessReference(Addr addr);

  // Loads |addr|'s line into way |way| and marks it resident, regardless of
  // locking. Used to pre-load lines that will then be pinned.
  void InstallLine(Addr addr, std::uint32_t way);

  // Excludes |way| from replacement: resident lines in it become pinned.
  void LockWay(std::uint32_t way);
  void UnlockWay(std::uint32_t way);
  std::uint32_t LockedWayMask() const { return locked_ways_; }

  // Invalidates all lines (locked ways included). Lock bits are retained.
  void InvalidateAll();

  // Fills the unlocked portion of the cache with garbage tags that collide
  // with nothing the caller will use. Used by worst-case test programs that
  // pollute the caches before measuring (paper Section 5.4). |fraction|
  // limits pollution to the first fraction of the sets: a finite polluting
  // buffer only partially displaces a large cache.
  void Pollute(Addr garbage_base, double fraction = 1.0);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  std::uint32_t SetIndexOf(Addr addr) const {
    return static_cast<std::uint32_t>((addr >> line_shift_) & set_mask_);
  }
  Addr TagOf(Addr addr) const { return addr >> tag_shift_; }

 private:
  friend class engine::StateSerializer;

  // Way-count-specialised lookup body; |kWays| == 0 means runtime ways_.
  template <std::uint32_t kWays>
  bool AccessLineImpl(std::uint32_t set, Addr tag) {
    const std::uint32_t ways = kWays != 0 ? kWays : ways_;
    stats_.accesses++;
    const std::size_t base = static_cast<std::size_t>(set) * ways;
    for (std::uint32_t w = 0; w < ways; ++w) {
      if (tags_[base + w] == tag) {
        stats_.hits++;
        return true;
      }
    }
    stats_.misses++;
    // Allocate, unless every way is locked (then the line bypasses the cache).
    if ((locked_ways_ & all_ways_mask_) == all_ways_mask_) {
      return false;
    }
    const std::uint32_t victim = PickVictim<kWays>(set);
    tags_[base + victim] = tag;
    return false;
  }

  // Chooses the victim way among unlocked ways for |set|. Inline: allocating
  // misses dominate streaming workloads, so this is as hot as the lookup.
  template <std::uint32_t kWays>
  std::uint32_t PickVictim(std::uint32_t set) {
    const std::uint32_t ways = kWays != 0 ? kWays : ways_;
    if (config_.policy == ReplacementPolicy::kRoundRobin) {
      const std::uint32_t w = rr_next_[set];
      if (locked_ways_ == 0) {
        // Nothing pinned (the common case): take the pointer as-is.
        rr_next_[set] = w + 1 == ways ? 0 : w + 1;
        return w;
      }
      for (std::uint32_t tries = 0; tries < ways; ++tries) {
        const std::uint32_t cand = (w + tries) % ways;
        if (!(locked_ways_ & (1u << cand))) {
          rr_next_[set] = (cand + 1) % ways;
          return cand;
        }
      }
      return PickVictimFallback();
    }
    for (std::uint32_t tries = 0; tries < 4 * ways; ++tries) {
      // 16-bit Galois LFSR.
      lfsr_ = (lfsr_ >> 1) ^ (-(lfsr_ & 1u) & 0xB400u);
      const std::uint32_t cand = static_cast<std::uint32_t>(lfsr_) % ways;
      if (!(locked_ways_ & (1u << cand))) {
        return cand;
      }
    }
    return PickVictimFallback();
  }

  // Degenerate cases (all-locked assertion, LFSR exhaustion): out of line.
  std::uint32_t PickVictimFallback();

  // Populates ref_lines_ from tags_ (first AccessReference on a cache built
  // outside reference mode).
  void SyncRefMirror();

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::uint32_t ways_;
  std::uint32_t line_shift_;      // log2(line_bytes)
  std::uint32_t tag_shift_;       // log2(line_bytes * num_sets)
  std::uint64_t set_mask_;        // num_sets - 1
  std::uint32_t all_ways_mask_;   // (1 << ways) - 1 (saturated at 32 ways)
  // Tag of an invalid (non-resident) line. Unreachable by construction: a
  // real line's tag is addr >> tag_shift_, and no modelled address has all
  // upper bits set.
  static constexpr Addr kInvalidTag = ~Addr{0};

  // Flat line array: num_sets * ways tags, way-major within a set
  // (index = set * ways + way). Invalid lines hold kInvalidTag.
  std::vector<Addr> tags_;
  // Seed-layout mirror for AccessReference: the pre-optimisation
  // array-of-structs line array. Sized only when the process is in reference
  // mode (empty otherwise, so clones copy nothing); every cold mutator that
  // touches tags_ keeps it in sync.
  struct RefLine {
    Addr tag = 0;
    bool valid = false;
  };
  std::vector<RefLine> ref_lines_;
  std::vector<std::uint32_t> rr_next_;  // per-set round-robin pointer
  std::uint32_t locked_ways_ = 0;       // bitmask of locked ways
  std::uint64_t lfsr_ = 0xACE1u;        // pseudo-random replacement state
  CacheStats stats_;
};

}  // namespace pmk

#endif  // SRC_HW_CACHE_H_
