// Set-associative cache model with way-locking (cache pinning).
//
// Models the ARM1136 L1 caches (16 KiB, 4-way, configurable round-robin or
// pseudo-random replacement) and the i.MX31 unified L2 (128 KiB, 8-way). The
// ARM1136 allows a subset of ways to be excluded from replacement, which is
// how the paper pins the interrupt-delivery path into 1/4 of each L1 cache
// (Section 4).
//
// Hot-path layout: the line array is a flat array of 32-bit tags (way-major
// within a set) where an invalid line holds the unreachable sentinel
// kInvalidTag, so residency needs no separate valid bit — one load and one
// compare per way. Tags fit 32 bits because every modelled address is below
// 2^31 (128 MiB of RAM plus the fixed pollution bases); narrow tags halve
// the tag-array footprint (the 128 KiB L2's array drops from 256 KiB to
// 128 KiB of host memory, which streaming workloads sweep every pass) and
// let the 4/8-way scans compare a whole set in one or two SSE2 loads.
// The geometry is reduced to shifts and masks validated at construction, so
// a lookup is a handful of loads with no divisions. Every simulated memory
// access in the repository funnels through Access()/AccessLine(); they are
// defined inline here so the executor's inner loop does not pay a cross-TU
// call per access.

#ifndef SRC_HW_CACHE_H_
#define SRC_HW_CACHE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace pmk {

namespace engine {
class StateSerializer;  // full-state (de)serialization, src/engine/serialize.h
}

using Addr = std::uint64_t;

enum class ReplacementPolicy {
  kRoundRobin,
  kPseudoRandom,
};

struct CacheConfig {
  std::string name = "cache";
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 32;
  ReplacementPolicy policy = ReplacementPolicy::kRoundRobin;

  std::uint32_t NumSets() const { return size_bytes / (ways * line_bytes); }

  // Throws std::invalid_argument unless the geometry is modellable:
  // power-of-two line_bytes and NumSets(), ways >= 1, and size_bytes evenly
  // divisible by ways * line_bytes (silent truncation in NumSets() would
  // otherwise mis-size the cache).
  void Validate() const;
};

// Statistics counters for one cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  void Reset() { *this = CacheStats{}; }
};

class Cache {
 public:
  // Validates |config| (see CacheConfig::Validate) and precomputes the
  // shift/mask geometry.
  explicit Cache(const CacheConfig& config);

  // Looks up |addr|; on a miss, allocates the line into a victim way chosen
  // among unlocked ways. Returns true on hit.
  bool Access(Addr addr) { return AccessLine(SetIndexOf(addr), TagOf(addr)); }

  // Split entry point for callers that already know the line's set and tag
  // (e.g. precomputed instruction-fetch spans). Identical state transitions
  // and statistics to Access(); Access(a) == AccessLine(SetIndexOf(a),
  // TagOf(a)) by construction. Dispatches to a way-count-specialised body for
  // the two modelled geometries (4-way L1, 8-way L2) so the compiler unrolls
  // the tag scan.
  bool AccessLine(std::uint32_t set, Addr tag) {
    if (ways_ == 4) {
      return AccessLineImpl<4, true>(set, tag);
    }
    if (ways_ == 8) {
      return AccessLineImpl<8, true>(set, tag);
    }
    return AccessLineImpl<0, true>(set, tag);
  }

  // Stats-deferred lookup for batching callers (Machine::DataAccessRun and
  // the compiled executor streams, src/kir/compiled.h): identical line-state
  // transitions to AccessLine(), but CacheStats is left untouched — the
  // caller tallies accesses/misses locally and flushes once per batch via
  // AddStats(). Every access increments exactly one of hits/misses, so
  // AddStats(n, misses) with hits = n - misses reproduces the per-access
  // counters exactly.
  bool AccessLineNoStats(std::uint32_t set, Addr tag) {
    if (ways_ == 4) {
      return AccessLineImpl<4, false>(set, tag);
    }
    if (ways_ == 8) {
      return AccessLineImpl<8, false>(set, tag);
    }
    return AccessLineImpl<0, false>(set, tag);
  }

  // True when SweepLines() below may replace a per-access AccessLineNoStats
  // loop: the SSE2 fast-scan geometry (4-way), the round-robin victim fast
  // path (nothing locked), and the tags fitting one 16-byte group per set.
  bool SweepEligible() const {
#if defined(__SSE2__)
    return ways_ == 4 && locked_ways_ == 0 &&
           config_.policy == ReplacementPolicy::kRoundRobin;
#else
    return false;
#endif
  }

  // Streaming batch probe: |count| accesses at base, base + line, base +
  // 2*line, ... — one access per consecutive cache line, the shape of the
  // kernel's object-clearing loops (Machine::DataAccessRun with stride ==
  // line_bytes). State transitions and miss outcomes are identical to the
  // equivalent AccessLineNoStats loop; stats stay deferred to the caller.
  // Returns the number of misses and writes their addresses to |missed|
  // (capacity >= count). Caller must check SweepEligible().
  //
  // Consecutive lines occupy consecutive sets, so the probe walks the tag
  // array linearly, 16 bytes per access, and the tag is constant until the
  // set index wraps: addr mod (line * num_sets) < line exactly when the set
  // wraps to zero, for any base alignment. That removes the per-access
  // set/tag arithmetic of the generic loop; the SSE compare is unchanged.
  std::uint32_t SweepLines(Addr base, std::uint32_t count, Addr* missed) {
#if defined(__SSE2__)
    const Addr line = config_.line_bytes;
    std::uint32_t set = SetIndexOf(base);
    Addr tag = TagOf(base);
    __m128i vtag = _mm_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(tag)));
    std::uint32_t n_missed = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t* group = tags_.data() + static_cast<std::size_t>(set) * 4;
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
      if (_mm_movemask_epi8(_mm_cmpeq_epi32(v, vtag)) == 0) {
        // Miss: round-robin install, as PickVictim with no locked ways.
        const std::uint32_t w = rr_next_[set];
        rr_next_[set] = w + 1 == 4 ? 0 : w + 1;
        group[w] = NarrowTag(tag);
        gen_++;
        missed[n_missed++] = base + static_cast<Addr>(i) * line;
      }
      if (++set == num_sets_) {
        set = 0;
        ++tag;
        vtag = _mm_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(tag)));
      }
    }
    return n_missed;
#else
    (void)base;
    (void)count;
    (void)missed;
    return 0;  // unreachable: SweepEligible() is false without SSE2
#endif
  }

  // Hints the host CPU to load |set|'s tag group ahead of an AccessLine call.
  // Batching callers (Machine::DataAccessRun) probe runs of sets and can hide
  // the tag-array load latency by prefetching the next probe's set. No
  // modelled effect whatsoever.
  void PrefetchSet(std::uint32_t set) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&tags_[static_cast<std::size_t>(set) * ways_]);
#endif
  }

  // Batched statistics flush paired with AccessLineNoStats().
  void AddStats(std::uint64_t accesses, std::uint64_t misses) {
    stats_.accesses += accesses;
    stats_.hits += accesses - misses;
    stats_.misses += misses;
  }

  // Returns true if |addr|'s line is currently resident (no state change).
  bool Contains(Addr addr) const {
    const std::size_t base = static_cast<std::size_t>(SetIndexOf(addr)) * ways_;
    const Addr tag = TagOf(addr);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag) {
        return true;
      }
    }
    return false;
  }

  // Benchmark reference path: the seed implementation's per-access cost
  // profile — an out-of-line call whose set/tag arithmetic divides by the
  // runtime line size and set count instead of using the precomputed shifts,
  // and whose lookups walk the seed's array-of-structs {tag, valid} line
  // array (ref_lines_) rather than the flat tag array. State transitions and
  // statistics are identical to Access(); only the host-side cost differs.
  // bench_sim_hotpath uses this as the pre-optimisation baseline and
  // self-checks output equality.
  bool AccessReference(Addr addr);

  // Loads |addr|'s line into way |way| and marks it resident, regardless of
  // locking. Used to pre-load lines that will then be pinned.
  void InstallLine(Addr addr, std::uint32_t way);

  // Excludes |way| from replacement: resident lines in it become pinned.
  void LockWay(std::uint32_t way);
  void UnlockWay(std::uint32_t way);
  std::uint32_t LockedWayMask() const { return locked_ways_; }

  // Invalidates all lines (locked ways included). Lock bits are retained.
  void InvalidateAll();

  // Fills the unlocked portion of the cache with garbage tags that collide
  // with nothing the caller will use. Used by worst-case test programs that
  // pollute the caches before measuring (paper Section 5.4). |fraction|
  // limits pollution to the first fraction of the sets: a finite polluting
  // buffer only partially displaces a large cache.
  void Pollute(Addr garbage_base, double fraction = 1.0);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Line-state generation: incremented whenever any line's residency can
  // change — an allocating miss, InstallLine, InvalidateAll, Pollute, or a
  // state restore. Hits never mutate line state (replacement metadata only
  // moves on installs), so a probe set that fully hit at generation G keeps
  // hitting, with zero state change, for as long as Gen() == G. The compiled
  // executor memoises per-block I-fetch outcomes on this.
  std::uint64_t Gen() const { return gen_; }

  std::uint32_t SetIndexOf(Addr addr) const {
    return static_cast<std::uint32_t>((addr >> line_shift_) & set_mask_);
  }
  Addr TagOf(Addr addr) const { return addr >> tag_shift_; }

 private:
  friend class engine::StateSerializer;

  // True if |tag| is resident in the |ways|-tag group at |base|. The 4- and
  // 8-way groups (the two modelled geometries) are compared whole with SSE2
  // — 16-byte loads, no data-dependent way-index branches. Tags are unique
  // within a set (installs happen only after a full-scan miss), so "any lane
  // equal" is exactly "hit"; a probe tag that exceeded 32 bits could alias
  // under the lane truncation, but modelled addresses are bounded below 2^31
  // (asserted at install time).
  template <std::uint32_t kWays>
  bool ScanWays(std::size_t base, Addr tag) const {
#if defined(__SSE2__)
    if constexpr (kWays == 4 || kWays == 8) {
      const __m128i t = _mm_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(tag)));
      const __m128i v0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags_.data() + base));
      __m128i eq = _mm_cmpeq_epi32(v0, t);
      if constexpr (kWays == 8) {
        const __m128i v1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags_.data() + base + 4));
        eq = _mm_or_si128(eq, _mm_cmpeq_epi32(v1, t));
      }
      return _mm_movemask_epi8(eq) != 0;
    }
#endif
    const std::uint32_t ways = kWays != 0 ? kWays : ways_;
    for (std::uint32_t w = 0; w < ways; ++w) {
      if (tags_[base + w] == tag) {
        return true;
      }
    }
    return false;
  }

  // Way-count-specialised lookup body; |kWays| == 0 means runtime ways_,
  // |kStats| == false defers CacheStats to the caller (AccessLineNoStats).
  template <std::uint32_t kWays, bool kStats>
  bool AccessLineImpl(std::uint32_t set, Addr tag) {
    const std::uint32_t ways = kWays != 0 ? kWays : ways_;
    if constexpr (kStats) {
      stats_.accesses++;
    }
    const std::size_t base = static_cast<std::size_t>(set) * ways;
    if (ScanWays<kWays>(base, tag)) {
      if constexpr (kStats) {
        stats_.hits++;
      }
      return true;
    }
    if constexpr (kStats) {
      stats_.misses++;
    }
    // Allocate, unless every way is locked (then the line bypasses the cache).
    if ((locked_ways_ & all_ways_mask_) == all_ways_mask_) {
      return false;
    }
    const std::uint32_t victim = PickVictim<kWays>(set);
    tags_[base + victim] = NarrowTag(tag);
    gen_++;
    return false;
  }

  // Narrows a tag to its 32-bit stored form. Lossless for every modelled
  // address (all below 2^31); the assert guards the invariant in debug
  // builds. kInvalidTag is reserved for invalid lines.
  static std::uint32_t NarrowTag(Addr tag) {
    assert(tag < kInvalidTag);
    return static_cast<std::uint32_t>(tag);
  }

  // Chooses the victim way among unlocked ways for |set|. Inline: allocating
  // misses dominate streaming workloads, so this is as hot as the lookup.
  template <std::uint32_t kWays>
  std::uint32_t PickVictim(std::uint32_t set) {
    const std::uint32_t ways = kWays != 0 ? kWays : ways_;
    if (config_.policy == ReplacementPolicy::kRoundRobin) {
      const std::uint32_t w = rr_next_[set];
      if (locked_ways_ == 0) {
        // Nothing pinned (the common case): take the pointer as-is.
        rr_next_[set] = w + 1 == ways ? 0 : w + 1;
        return w;
      }
      for (std::uint32_t tries = 0; tries < ways; ++tries) {
        const std::uint32_t cand = (w + tries) % ways;
        if (!(locked_ways_ & (1u << cand))) {
          rr_next_[set] = (cand + 1) % ways;
          return cand;
        }
      }
      return PickVictimFallback();
    }
    for (std::uint32_t tries = 0; tries < 4 * ways; ++tries) {
      // 16-bit Galois LFSR.
      lfsr_ = (lfsr_ >> 1) ^ (-(lfsr_ & 1u) & 0xB400u);
      const std::uint32_t cand = static_cast<std::uint32_t>(lfsr_) % ways;
      if (!(locked_ways_ & (1u << cand))) {
        return cand;
      }
    }
    return PickVictimFallback();
  }

  // Degenerate cases (all-locked assertion, LFSR exhaustion): out of line.
  std::uint32_t PickVictimFallback();

  // Populates ref_lines_ from tags_ (first AccessReference on a cache built
  // outside reference mode).
  void SyncRefMirror();

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::uint32_t ways_;
  std::uint32_t line_shift_;      // log2(line_bytes)
  std::uint32_t tag_shift_;       // log2(line_bytes * num_sets)
  std::uint64_t set_mask_;        // num_sets - 1
  std::uint32_t all_ways_mask_;   // (1 << ways) - 1 (saturated at 32 ways)
  // Tag of an invalid (non-resident) line. Unreachable by construction: a
  // real line's tag is addr >> tag_shift_, and every modelled address is
  // below 2^31, so no real tag has all 32 stored bits set.
  static constexpr std::uint32_t kInvalidTag = ~std::uint32_t{0};

  // Flat line array: num_sets * ways 32-bit tags, way-major within a set
  // (index = set * ways + way). Invalid lines hold kInvalidTag.
  std::vector<std::uint32_t> tags_;
  // Seed-layout mirror for AccessReference: the pre-optimisation
  // array-of-structs line array. Sized only when the process is in reference
  // mode (empty otherwise, so clones copy nothing); every cold mutator that
  // touches tags_ keeps it in sync.
  struct RefLine {
    Addr tag = 0;
    bool valid = false;
  };
  std::vector<RefLine> ref_lines_;
  std::vector<std::uint32_t> rr_next_;  // per-set round-robin pointer
  std::uint32_t locked_ways_ = 0;       // bitmask of locked ways
  std::uint64_t lfsr_ = 0xACE1u;        // pseudo-random replacement state
  std::uint64_t gen_ = 1;               // line-state generation, see Gen()
  CacheStats stats_;
};

}  // namespace pmk

#endif  // SRC_HW_CACHE_H_
