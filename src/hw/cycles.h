// Cycle and wall-clock time types for the modelled machine.
//
// The evaluation platform of the paper is a Freescale i.MX31 (ARM1136) clocked
// at 532 MHz; all results are reported both in cycles and in microseconds at
// that clock. We keep the clock configurable but default to the paper's.

#ifndef SRC_HW_CYCLES_H_
#define SRC_HW_CYCLES_H_

#include <cstdint>

namespace pmk {

using Cycles = std::uint64_t;

// Clock frequency of the modelled CPU.
struct ClockSpec {
  std::uint64_t hz = 532'000'000;  // i.MX31 / KZM board.

  // Converts a cycle count to microseconds at this clock.
  double ToMicros(Cycles c) const { return static_cast<double>(c) * 1e6 / static_cast<double>(hz); }
};

}  // namespace pmk

#endif  // SRC_HW_CYCLES_H_
