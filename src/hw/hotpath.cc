#include "src/hw/hotpath.h"

#include <atomic>

namespace pmk::hotpath {

namespace {
std::atomic<bool> g_reference_mode{false};
std::atomic<bool> g_compiled_mode{true};
}  // namespace

void SetReferenceMode(bool on) { g_reference_mode.store(on, std::memory_order_relaxed); }

bool ReferenceMode() { return g_reference_mode.load(std::memory_order_relaxed); }

void SetCompiledMode(bool on) { g_compiled_mode.store(on, std::memory_order_relaxed); }

bool CompiledMode() { return g_compiled_mode.load(std::memory_order_relaxed); }

}  // namespace pmk::hotpath
