// Process-wide hot-path mode switch for benchmarking.
//
// The simulator's inner loop (Executor::ChargeBlock -> Machine::InstrFetch /
// DataAccess -> Cache::Access) has an optimised implementation (precomputed
// block spans, shift/mask cache indexing, cached timer deadline) and a
// reference implementation that reproduces the seed's per-access cost profile
// (per-execution address arithmetic, division-based indexing, out-of-line
// calls, tick-every-advance timer). Both produce bit-identical modelled
// results; only host-side speed differs.
//
// bench_sim_hotpath flips this flag around whole workloads — campaigns and
// sweeps construct Machines and Executors internally, and both consult the
// flag at construction time. The flag is only ever toggled between workloads
// (never while simulations run), so a relaxed atomic suffices even when a
// workload fans out onto the job pool.

#ifndef SRC_HW_HOTPATH_H_
#define SRC_HW_HOTPATH_H_

namespace pmk::hotpath {

// When on, newly constructed Machines tick the timer on every Advance and
// newly constructed Executors charge blocks through the reference entry
// points. Defaults to off.
void SetReferenceMode(bool on);
bool ReferenceMode();

// When off, newly constructed Executors skip the compiled threaded-code
// backend (src/kir/compiled.h) and charge through the record-walking
// interpreter (kPrepared/kGeneric) instead. Defaults to on; reference mode
// takes precedence over both. Like SetReferenceMode, only flip this between
// whole workloads.
void SetCompiledMode(bool on);
bool CompiledMode();

}  // namespace pmk::hotpath

#endif  // SRC_HW_HOTPATH_H_
