#include "src/hw/irq.h"

#include <cassert>

#include "src/obs/trace_sink.h"

namespace pmk {

void InterruptController::Assert(std::uint32_t line, Cycles now) {
  assert(line < kNumLines);
  if (pending_[line]) {
    ++coalesced_asserts_;
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kIrqCoalesced;
      e.cycle = now;
      e.name = "irq";
      e.id = line;
      e.arg0 = assert_time_[line];  // the surviving (first) assertion time
      sink_->OnEvent(e);
    }
    return;
  }
  pending_[line] = true;
  assert_time_[line] = now;
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kIrqAssert;
    e.cycle = now;
    e.name = "irq";
    e.id = line;
    sink_->OnEvent(e);
  }
}

bool InterruptController::AnyPending() const {
  for (std::uint32_t i = 0; i < kNumLines; ++i) {
    if (pending_[i] && !masked_[i]) {
      return true;
    }
  }
  return false;
}

std::optional<std::uint32_t> InterruptController::PendingLine() const {
  for (std::uint32_t i = 0; i < kNumLines; ++i) {
    if (pending_[i] && !masked_[i]) {
      return i;
    }
  }
  return std::nullopt;
}

std::optional<Cycles> InterruptController::Acknowledge(std::uint32_t line) {
  assert(line < kNumLines);
  if (!pending_[line]) {
    ++spurious_acks_;
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kIrqSpuriousAck;
      e.cycle = assert_time_[line];  // best-effort context; line is idle
      e.name = "irq";
      e.id = line;
      sink_->OnEvent(e);
    }
    return std::nullopt;
  }
  pending_[line] = false;
  return assert_time_[line];
}

void InterruptController::Mask(std::uint32_t line) {
  assert(line < kNumLines);
  masked_[line] = true;
}

void InterruptController::Unmask(std::uint32_t line) {
  assert(line < kNumLines);
  masked_[line] = false;
}

bool InterruptController::IsPending(std::uint32_t line) const {
  assert(line < kNumLines);
  return pending_[line];
}

Cycles InterruptController::AssertTime(std::uint32_t line) const {
  assert(line < kNumLines);
  return assert_time_[line];
}

void InterruptController::Reset() {
  pending_.fill(false);
  masked_.fill(false);
  assert_time_.fill(0);
  spurious_acks_ = 0;
  coalesced_asserts_ = 0;
}

void IntervalTimer::Tick(Cycles now) {
  if (period_ == 0) {
    return;
  }
  while (next_fire_ <= now) {
    ic_->Assert(InterruptController::kTimerLine, next_fire_);
    next_fire_ += period_;
  }
}

}  // namespace pmk
