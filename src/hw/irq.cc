#include "src/hw/irq.h"

#include <bit>
#include <cassert>

#include "src/obs/trace_sink.h"

namespace pmk {

void InterruptController::Assert(std::uint32_t line, Cycles now) {
  assert(line < kNumLines);
  if (pending_bits_ & (1u << line)) {
    ++coalesced_asserts_;
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kIrqCoalesced;
      e.cycle = now;
      e.name = "irq";
      e.id = line;
      e.arg0 = assert_time_[line];  // the surviving (first) assertion time
      sink_->OnEvent(e);
    }
    return;
  }
  pending_bits_ |= 1u << line;
  assert_time_[line] = now;
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kIrqAssert;
    e.cycle = now;
    e.name = "irq";
    e.id = line;
    sink_->OnEvent(e);
  }
}

std::optional<std::uint32_t> InterruptController::PendingLine() const {
  const std::uint32_t live = pending_bits_ & ~masked_bits_;
  if (live == 0) {
    return std::nullopt;
  }
  return static_cast<std::uint32_t>(std::countr_zero(live));
}

std::optional<Cycles> InterruptController::Acknowledge(std::uint32_t line) {
  assert(line < kNumLines);
  if (!(pending_bits_ & (1u << line))) {
    ++spurious_acks_;
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kIrqSpuriousAck;
      e.cycle = assert_time_[line];  // best-effort context; line is idle
      e.name = "irq";
      e.id = line;
      sink_->OnEvent(e);
    }
    return std::nullopt;
  }
  pending_bits_ &= ~(1u << line);
  return assert_time_[line];
}

void InterruptController::Mask(std::uint32_t line) {
  assert(line < kNumLines);
  masked_bits_ |= 1u << line;
}

void InterruptController::Unmask(std::uint32_t line) {
  assert(line < kNumLines);
  masked_bits_ &= ~(1u << line);
}

bool InterruptController::IsPending(std::uint32_t line) const {
  assert(line < kNumLines);
  return (pending_bits_ >> line) & 1u;
}

Cycles InterruptController::AssertTime(std::uint32_t line) const {
  assert(line < kNumLines);
  return assert_time_[line];
}

void InterruptController::Reset() {
  pending_bits_ = 0;
  masked_bits_ = 0;
  assert_time_.fill(0);
  spurious_acks_ = 0;
  coalesced_asserts_ = 0;
}

void IntervalTimer::Tick(Cycles now) {
  if (period_ == 0) {
    return;
  }
  while (next_fire_ <= now) {
    ic_->Assert(InterruptController::kTimerLine, next_fire_);
    next_fire_ += period_;
  }
  RecomputeDeadline();
}

}  // namespace pmk
