// Interrupt controller and interval timer.
//
// Models an AVIC-style interrupt controller: lines can be asserted by devices
// (or the test harness), masked, acknowledged. The controller records the
// cycle at which each line was asserted so that the harness can measure
// interrupt response time: cycles from assertion to the kernel's interrupt
// handler entry.

#ifndef SRC_HW_IRQ_H_
#define SRC_HW_IRQ_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/hw/cycles.h"

namespace pmk {

namespace engine {
class StateSerializer;  // full-state (de)serialization, src/engine/serialize.h
}

class TraceSink;

class InterruptController {
 public:
  static constexpr std::uint32_t kNumLines = 32;
  static constexpr std::uint32_t kTimerLine = 0;

  // Asserts |line| at time |now|. Re-asserting a pending line coalesces: the
  // original assertion time is kept (response time is measured from the first
  // unserviced assertion) and coalesced_asserts() is bumped. Hardware with an
  // edge-triggered pending latch behaves the same way — the second edge is
  // absorbed into the already-pending state.
  void Assert(std::uint32_t line, Cycles now);

  // True if any unmasked line is pending. Inline: the kernel polls this at
  // every preemption point, so it must stay one mask-and-test.
  bool AnyPending() const { return (pending_bits_ & ~masked_bits_) != 0; }

  // Highest-priority (lowest-numbered) pending unmasked line, if any.
  std::optional<std::uint32_t> PendingLine() const;

  // Acknowledges |line|. If the line is pending, clears it and returns the
  // cycle it was asserted. Acknowledging a line that is NOT pending is a
  // *spurious ack*: the controller absorbs it (no state change), returns
  // std::nullopt, bumps spurious_acks() and emits a kIrqSpuriousAck trace
  // event. Real controllers see these from races between a device de-assert
  // and the handler's EOI write; drivers must tolerate them.
  std::optional<Cycles> Acknowledge(std::uint32_t line);

  void Mask(std::uint32_t line);
  void Unmask(std::uint32_t line);
  bool IsPending(std::uint32_t line) const;
  Cycles AssertTime(std::uint32_t line) const;

  void Reset();

  // Storm/robustness accounting (monotonic since construction or Reset()).
  std::uint64_t spurious_acks() const { return spurious_acks_; }
  std::uint64_t coalesced_asserts() const { return coalesced_asserts_; }

  // Optional observability sink: a fresh assertion emits kIrqAssert, a
  // re-assert of a pending line emits kIrqCoalesced, a spurious ack emits
  // kIrqSpuriousAck. Purely observational.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* trace_sink() const { return sink_; }

 private:
  friend class engine::StateSerializer;

  // Pending and mask state as 32-bit registers (bit i = line i), mirroring
  // the AVIC's INTSRCH/INTMSKH register layout; AnyPending()/PendingLine()
  // reduce to one mask-and-test / count-trailing-zeros.
  std::uint32_t pending_bits_ = 0;
  std::uint32_t masked_bits_ = 0;
  std::array<Cycles, kNumLines> assert_time_{};
  std::uint64_t spurious_acks_ = 0;
  std::uint64_t coalesced_asserts_ = 0;
  TraceSink* sink_ = nullptr;
};

// Periodic timer that asserts kTimerLine on the interrupt controller.
//
// The timer maintains a cached next-deadline so the machine's hot path only
// consults it (one load + compare, inline) instead of calling Tick() on every
// single Advance. Every mutation of the firing schedule — set_period(),
// Restart(), Tick() itself — recomputes the deadline, so direct pokes at
// machine.timer() can never leave a stale deadline behind. Assertion cycles
// are exactly those of the tick-every-advance scheme: between deadline
// crossings Tick() was a no-op anyway.
class IntervalTimer {
 public:
  // Deadline value when the timer can never fire (period 0).
  static constexpr Cycles kNever = ~Cycles{0};

  IntervalTimer(InterruptController* ic, Cycles period) : ic_(ic), period_(period) {
    RecomputeDeadline();
  }

  // Advances device time to |now|, asserting the timer line for every period
  // boundary crossed.
  void Tick(Cycles now);

  // The earliest cycle at which Tick() would assert a line; kNever when the
  // timer is disabled. Callers may skip Tick() entirely while now < this.
  Cycles next_deadline() const { return deadline_; }

  Cycles period() const { return period_; }
  void set_period(Cycles period) {
    period_ = period;
    RecomputeDeadline();
  }

  // Re-arms the timer so its next firing is at |now| + period.
  void Restart(Cycles now) {
    next_fire_ = now + period_;
    RecomputeDeadline();
  }

  // Re-targets the timer at |ic|. Machine's copy constructor uses this to
  // point a copied timer at the copy's own controller instead of the
  // original's (the one pointer a memberwise Machine copy would get wrong).
  void RebindController(InterruptController* ic) { ic_ = ic; }

  // Benchmark reference mode: forces next_deadline() to 0 so every Advance
  // consults Tick(), reproducing the seed's tick-every-advance behaviour.
  // Observable timer semantics are unchanged either way; bench_sim_hotpath
  // uses this as the pre-optimisation baseline.
  void set_reference_tick_mode(bool on) {
    always_due_ = on;
    RecomputeDeadline();
  }
  bool reference_tick_mode() const { return always_due_; }

 private:
  friend class engine::StateSerializer;

  void RecomputeDeadline() {
    deadline_ = always_due_ ? 0 : (period_ == 0 ? kNever : next_fire_);
  }

  InterruptController* ic_;
  Cycles period_;
  Cycles next_fire_ = 0;
  Cycles deadline_ = 0;
  bool always_due_ = false;
};

}  // namespace pmk

#endif  // SRC_HW_IRQ_H_
