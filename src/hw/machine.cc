#include "src/hw/machine.h"

#include <cassert>
#include <vector>

#include "src/hw/hotpath.h"

namespace pmk {

namespace {
constexpr std::uint32_t kInstrBytes = 4;
// Garbage address bases far above the 128 MiB of modelled RAM.
constexpr Addr kPolluteBaseI = 0x4000'0000;
constexpr Addr kPolluteBaseD = 0x5000'0000;
constexpr Addr kPolluteBaseL2 = 0x6000'0000;

#if defined(__GNUC__) || defined(__clang__)
#define PMK_NOINLINE __attribute__((noinline))
#else
#define PMK_NOINLINE
#endif
}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      bpred_(config.bpred),
      timer_(&irq_, config.timer_period) {
  if (hotpath::ReferenceMode()) {
    timer_.set_reference_tick_mode(true);
  }
}

Machine::Machine(const Machine& other)
    : config_(other.config_),
      l1i_(other.l1i_),
      l1d_(other.l1d_),
      l2_(other.l2_),
      bpred_(other.bpred_),
      irq_(other.irq_),
      timer_(other.timer_),
      now_(other.now_),
      counters_(other.counters_) {
  timer_.RebindController(&irq_);
  irq_.set_trace_sink(nullptr);
}

PMK_NOINLINE Cycles Machine::MissPenaltyReference(Addr addr) {
  Cycles penalty;
  if (!config_.l2_enabled) {
    penalty = config_.memory.mem_latency_l2_off;
  } else {
    counters_.l2_accesses++;
    if (l2_.AccessReference(addr)) {
      penalty = config_.memory.l2_hit_latency;
    } else {
      counters_.l2_misses++;
      penalty = config_.memory.mem_latency_l2_on;
    }
  }
  counters_.mem_stall_cycles += penalty;
  return penalty;
}

// Reference entries replicate the seed's per-execution cost profile: line
// bounds recomputed with divisions, the cache indexed through the out-of-line
// division-based AccessReference, and the result charged via an out-of-line
// Advance that ticks the timer unconditionally (the per-instance reference
// tick mode forces the deadline to 0 so the inline Advance's check always
// takes the Tick branch). Keep charging in sync with InstrFetchLines and
// DataAccess; hotpath_equivalence_test cross-checks them.
PMK_NOINLINE void Machine::InstrFetchReference(Addr addr, std::uint32_t n_instr) {
  const std::uint32_t line = config_.l1i.line_bytes;
  Cycles cost = n_instr;  // 1 cycle per instruction, pipelined.
  counters_.instructions += n_instr;
  const Addr first_line = addr / line;
  const Addr last_line = (addr + static_cast<Addr>(n_instr) * kInstrBytes - 1) / line;
  for (Addr l = first_line; l <= last_line; ++l) {
    counters_.l1i_accesses++;
    if (!l1i_.AccessReference(l * line)) {
      counters_.l1i_misses++;
      cost += MissPenaltyReference(l * line);
    }
  }
  Advance(cost);
}

PMK_NOINLINE void Machine::DataAccessReference(Addr addr, bool write) {
  (void)write;  // write-allocate: same penalty either way
  Cycles cost = config_.memory.load_use_stall;  // pipeline result latency
  counters_.l1d_accesses++;
  if (!l1d_.AccessReference(addr)) {
    counters_.l1d_misses++;
    cost += MissPenaltyReference(addr);
  }
  Advance(cost);
}

void Machine::DataAccessRun(Addr base, std::uint32_t count, std::uint32_t stride, bool write,
                            PathTally* tally) {
  (void)write;  // write-allocate: same penalty either way
  Cycles cost = config_.memory.load_use_stall * count;
  std::uint32_t misses = 0;
  std::uint32_t l2_acc = 0;
  std::uint32_t l2_miss = 0;
  std::uint64_t stall = 0;
  const bool l2on = config_.l2_enabled;
  // Phase-split probing: sweep the whole tile through the L1D first,
  // collecting the missing addresses, then sweep the misses through the L2.
  // The two caches share no state and each still sees its accesses in the
  // same relative order as the interleaved per-access loop, so line contents,
  // replacement state, statistics and charged cycles are all identical — but
  // each sweep walks one tag array with a regular stride. The L1 tag array
  // (8 KiB at the modelled 16 KiB/4-way geometry) lives in the host L1 and
  // needs no prefetching; the L2 sweep prefetches the next set's tag group.
  constexpr std::uint32_t kTile = 64;
  Addr missed[kTile];
  Addr addr = base;
  // One access per consecutive line — the object-clearing shape — probes the
  // L1D through the linear-walk sweep (Cache::SweepLines) when the geometry
  // allows; outcomes are identical to the generic per-access loop below.
  const bool sweep = stride == config_.l1d.line_bytes && l1d_.SweepEligible();
  for (std::uint32_t remaining = count; remaining != 0;) {
    const std::uint32_t tile = remaining < kTile ? remaining : kTile;
    std::uint32_t n_missed = 0;
    if (sweep) {
      n_missed = l1d_.SweepLines(addr, tile, missed);
      addr += static_cast<Addr>(tile) * stride;
    } else {
      for (std::uint32_t i = 0; i < tile; ++i) {
        if (!l1d_.AccessLineNoStats(l1d_.SetIndexOf(addr), l1d_.TagOf(addr))) {
          missed[n_missed++] = addr;
        }
        addr += stride;
      }
    }
    misses += n_missed;
    if (n_missed != 0) {
      if (!l2on) {
        const Cycles penalty =
            config_.memory.mem_latency_l2_off * static_cast<Cycles>(n_missed);
        stall += penalty;
        cost += penalty;
      } else {
        l2_acc += n_missed;
        for (std::uint32_t i = 0; i < n_missed; ++i) {
          if (i + 1 < n_missed) {
            l2_.PrefetchSet(l2_.SetIndexOf(missed[i + 1]));
          }
          Cycles penalty;
          if (l2_.AccessLineNoStats(l2_.SetIndexOf(missed[i]), l2_.TagOf(missed[i]))) {
            penalty = config_.memory.l2_hit_latency;
          } else {
            ++l2_miss;
            penalty = config_.memory.mem_latency_l2_on;
          }
          stall += penalty;
          cost += penalty;
        }
      }
    }
    remaining -= tile;
  }
  if (tally != nullptr) {
    tally->l1d_accesses += count;
    tally->l1d_misses += misses;
    tally->l2_accesses += l2_acc;
    tally->l2_misses += l2_miss;
    tally->mem_stall_cycles += stall;
  } else {
    counters_.l1d_accesses += count;
    counters_.l1d_misses += misses;
    counters_.l2_accesses += l2_acc;
    counters_.l2_misses += l2_miss;
    counters_.mem_stall_cycles += stall;
    l1d_.AddStats(count, misses);
    if (l2_acc != 0) {
      l2_.AddStats(l2_acc, l2_miss);
    }
  }
  Advance(cost);
}

PMK_NOINLINE void Machine::BranchReference(Addr pc, BranchKind kind, bool taken) {
  if (kind != BranchKind::kNone) {
    counters_.branches++;
  }
  const std::uint64_t mp_before = bpred_.mispredicts();
  const Cycles cost = bpred_.OnBranchReference(pc, kind, taken);
  counters_.branch_mispredicts += bpred_.mispredicts() - mp_before;
  Advance(cost);
}

void Machine::PinL1(std::span<const Addr> icache_lines, std::span<const Addr> dcache_lines,
                    std::uint32_t ways) {
  assert(ways >= 1 && ways < config_.l1i.ways);
  // Install lines round-robin across the locked ways, then lock them. A real
  // ARM1136 does this by restricting the replacement way while touching the
  // lines; the net state is identical.
  for (std::size_t i = 0; i < icache_lines.size(); ++i) {
    l1i_.InstallLine(icache_lines[i], static_cast<std::uint32_t>(i) % ways);
  }
  for (std::size_t i = 0; i < dcache_lines.size(); ++i) {
    l1d_.InstallLine(dcache_lines[i], static_cast<std::uint32_t>(i) % ways);
  }
  for (std::uint32_t w = 0; w < ways; ++w) {
    l1i_.LockWay(w);
    l1d_.LockWay(w);
  }
}

void Machine::UnpinL1() {
  for (std::uint32_t w = 0; w < config_.l1i.ways; ++w) {
    l1i_.UnlockWay(w);
    l1d_.UnlockWay(w);
  }
}

std::size_t Machine::PinL2Lines(std::span<const Addr> lines, std::uint32_t ways) {
  assert(ways >= 1 && ways < config_.l2.ways);
  std::vector<std::uint32_t> used(config_.l2.NumSets(), 0);
  std::size_t pinned = 0;
  for (Addr a : lines) {
    const std::uint32_t set = l2_.SetIndexOf(a);
    if (used[set] >= ways) {
      continue;  // locked ways full for this set
    }
    l2_.InstallLine(a, used[set]++);
    pinned++;
  }
  for (std::uint32_t w = 0; w < ways; ++w) {
    l2_.LockWay(w);
  }
  return pinned;
}

void Machine::PolluteCaches() {
  l1i_.Pollute(kPolluteBaseI);
  l1d_.Pollute(kPolluteBaseD);
  // A realistic polluting test program dirties the 16 KiB L1s completely but
  // only displaces part of the 128 KiB L2 between runs (paper Section 5.4).
  l2_.Pollute(kPolluteBaseL2, 0.5);
  bpred_.Reset();
}

void Machine::InvalidateCaches() {
  l1i_.InvalidateAll();
  l1d_.InvalidateAll();
  l2_.InvalidateAll();
  bpred_.Reset();
}

void Machine::ResetStats() {
  l1i_.ResetStats();
  l1d_.ResetStats();
  l2_.ResetStats();
}

}  // namespace pmk
