// The modelled ARM1136-class machine.
//
// Composes split L1 instruction/data caches (way-lockable), an optional
// unified L2, a branch predictor, the main-memory latency model, an interrupt
// controller and an interval timer. All kernel execution costs are charged
// through this class; it is the single source of truth for the cycle counter
// (the analogue of the ARM1136 PMU cycle counter the paper measures with).
//
// The cost-charging entries (InstrFetch/InstrFetchLines/DataAccess/RawCycles)
// are defined inline: they are the simulator's innermost loop and every
// modelled cycle of every experiment passes through them. Advance() only
// consults the interval timer when the cycle counter actually crosses its
// cached deadline — assertion cycles are identical to ticking on every
// advance (docs/performance.md).

#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <span>

#include "src/hw/branch_predictor.h"
#include "src/hw/cache.h"
#include "src/hw/cycles.h"
#include "src/hw/irq.h"
#include "src/hw/memory.h"

namespace pmk {

struct MachineConfig {
  ClockSpec clock;
  CacheConfig l1i{.name = "L1I", .size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32};
  CacheConfig l1d{.name = "L1D", .size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32};
  CacheConfig l2{.name = "L2", .size_bytes = 128 * 1024, .ways = 8, .line_bytes = 32};
  bool l2_enabled = false;
  BranchPredictorConfig bpred;
  MemoryConfig memory;
  Cycles timer_period = 0;  // 0 = no periodic timer
};

// Monotonic PMU-style event counters. Unlike the per-cache CacheStats these
// are never reset (PolluteCaches, InvalidateCaches and ResetStats leave them
// counting), so snapshot/delta measurement (src/obs/pmu.h) stays valid across
// the cache-polluting runs of Section 5.4.
struct HwCounters {
  std::uint64_t instructions = 0;
  std::uint64_t l1i_accesses = 0;  // I-cache line lookups
  std::uint64_t l1i_misses = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_accesses = 0;  // L1-miss refills reaching the L2
  std::uint64_t l2_misses = 0;
  std::uint64_t branches = 0;  // charged branch events
  std::uint64_t branch_mispredicts = 0;
  std::uint64_t mem_stall_cycles = 0;  // cycles stalled on cache refills
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  // Value-semantic snapshot support (src/engine checkpointing): copying a
  // Machine clones the full microarchitectural state — cache contents and
  // round-robin/LFSR replacement state, branch predictor tables, pending
  // interrupt lines and their assertion times, timer phase, cycle counter and
  // PMU counters — so a copy replays cycle-for-cycle identically to the
  // original. The trace sink attachment is deliberately dropped: sinks are
  // external observers, and forked copies run on worker threads where a
  // shared sink would race.
  Machine(const Machine& other);
  Machine& operator=(const Machine&) = delete;

  // --- Cost-charging interface (used by the kernel IR executor) ---

  // Fetches and executes |n_instr| sequential 4-byte instructions starting at
  // |addr|: 1 cycle per instruction plus I-cache refill penalties.
  void InstrFetch(Addr addr, std::uint32_t n_instr) {
    const std::uint32_t line = config_.l1i.line_bytes;
    const Addr first_line = addr / line;
    const Addr last_line = (addr + static_cast<Addr>(n_instr) * 4 - 1) / line;
    InstrFetchLines(first_line * line, static_cast<std::uint32_t>(last_line - first_line + 1),
                    n_instr);
  }

  // Prepared-span variant: the caller already decomposed the fetch into
  // |n_lines| consecutive I-cache lines starting at |first_line_addr| (the
  // kir Program precomputes each block's span at Layout() time). Identical
  // charging to InstrFetch.
  void InstrFetchLines(Addr first_line_addr, std::uint32_t n_lines, std::uint32_t n_instr) {
    Cycles cost = n_instr;  // 1 cycle per instruction, pipelined.
    counters_.instructions += n_instr;
    Addr line_addr = first_line_addr;
    for (std::uint32_t l = 0; l < n_lines; ++l) {
      counters_.l1i_accesses++;
      if (!l1i_.Access(line_addr)) {
        counters_.l1i_misses++;
        cost += MissPenalty(line_addr);
      }
      line_addr += config_.l1i.line_bytes;
    }
    Advance(cost);
  }

  // One data access (load or store). The access cycle itself is accounted as
  // part of the instruction; this charges only refill penalties.
  void DataAccess(Addr addr, bool write) {
    (void)write;  // write-allocate: same penalty either way
    Cycles cost = config_.memory.load_use_stall;  // pipeline result latency
    counters_.l1d_accesses++;
    if (!l1d_.Access(addr)) {
      counters_.l1d_misses++;
      cost += MissPenalty(addr);
    }
    Advance(cost);
  }

  // Benchmark reference entries: identical charging to InstrFetch/DataAccess
  // but through the seed's cost profile — out-of-line calls, division-based
  // cache indexing (Cache::AccessReference), per-line address arithmetic
  // recomputed per execution. bench_sim_hotpath drives these as the
  // pre-optimisation baseline; combine with
  // timer().set_reference_tick_mode(true) for the full seed hot path.
  void InstrFetchReference(Addr addr, std::uint32_t n_instr);
  void DataAccessReference(Addr addr, bool write);

  // Branch terminating the block at |pc| with actual direction |taken|.
  // Inline: one per block transition, and with the predictor disabled (the
  // paper's measurement configuration) the cost is a constant.
  void Branch(Addr pc, BranchKind kind, bool taken) {
    if (kind != BranchKind::kNone) {
      counters_.branches++;
    }
    const std::uint64_t mp_before = bpred_.mispredicts();
    const Cycles cost = bpred_.OnBranch(pc, kind, taken);
    counters_.branch_mispredicts += bpred_.mispredicts() - mp_before;
    Advance(cost);
  }

  // Seed cost profile of Branch: out of line, through the out-of-line
  // BranchPredictor::OnBranchReference. Identical state transitions.
  void BranchReference(Addr pc, BranchKind kind, bool taken);

  // Branch with the BTB slot precomputed (slot == pc % btb_entries); the
  // compiled executor backend folds the modulo at Program::CompiledFor time.
  // Identical charging and state transitions to Branch().
  void BranchSlot(std::uint32_t slot, Addr pc, BranchKind kind, bool taken) {
    if (kind != BranchKind::kNone) {
      counters_.branches++;
    }
    const std::uint64_t mp_before = bpred_.mispredicts();
    const Cycles cost = bpred_.OnBranchSlot(slot, pc, kind, taken);
    counters_.branch_mispredicts += bpred_.mispredicts() - mp_before;
    Advance(cost);
  }

  // Charges |n| raw cycles (e.g. coprocessor operations, TLB maintenance).
  void RawCycles(Cycles n) { Advance(n); }

  // --- Batched charging (compiled executor backend, src/kir/compiled) ---

  // Accumulated PMU-counter deltas and cycle cost of one charge batch (a
  // compiled block's stream, or one DataAccessRun). Equivalent, summed, to
  // the per-access counter updates and Advance() calls of the incremental
  // entries above: counter totals are order-independent sums, and fusing the
  // intra-batch Advance() calls is observable nowhere — the interval timer
  // asserts at its scheduled deadline (IntervalTimer::Tick), not at the
  // cycle count that crossed it, and all observers (fault hooks, trace
  // windows, preemption polls) run at batch boundaries.
  struct ChargeDelta {
    Cycles cost = 0;
    std::uint32_t instructions = 0;
    std::uint32_t l1i_accesses = 0;
    std::uint32_t l1i_misses = 0;
    std::uint32_t l1d_accesses = 0;
    std::uint32_t l1d_misses = 0;
    std::uint32_t l2_accesses = 0;
    std::uint32_t l2_misses = 0;
    std::uint64_t mem_stall = 0;
  };

  // Applies one batch: counter flush plus a single Advance(). The caller is
  // responsible for the matching Cache::AddStats() flushes.
  void ApplyChargeDelta(const ChargeDelta& d) {
    counters_.instructions += d.instructions;
    counters_.l1i_accesses += d.l1i_accesses;
    counters_.l1i_misses += d.l1i_misses;
    counters_.l1d_accesses += d.l1d_accesses;
    counters_.l1d_misses += d.l1d_misses;
    counters_.l2_accesses += d.l2_accesses;
    counters_.l2_misses += d.l2_misses;
    counters_.mem_stall_cycles += d.mem_stall;
    Advance(d.cost);
  }

  // Deferred path accounting (compiled executor backend): PMU-counter and
  // cache-statistics deltas accumulated across a whole kernel path and
  // flushed once at path end (Executor::End) instead of once per block.
  // Cycle advancement is NOT deferred — every charge entry still calls
  // Advance() immediately, so Now(), timer assertions and preemption
  // visibility are exact at every block boundary. Counters and stats are
  // order-independent sums with no mid-path reader (PMU snapshots are taken
  // between paths; trace-sink block windows force the eager path), so the
  // single flush is observationally identical.
  struct PathTally {
    std::uint64_t instructions = 0;
    std::uint64_t l1i_accesses = 0;
    std::uint64_t l1i_misses = 0;
    std::uint64_t l1d_accesses = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t branches = 0;
    std::uint64_t branch_mispredicts = 0;
    std::uint64_t mem_stall_cycles = 0;
  };

  // Flushes one path's accumulated deltas: PMU counters plus the matching
  // per-cache statistics (the tally's access/miss fields double as the
  // Cache::AddStats arguments — the charge entries count both from the same
  // probes).
  void ApplyPathTally(const PathTally& t) {
    counters_.instructions += t.instructions;
    counters_.l1i_accesses += t.l1i_accesses;
    counters_.l1i_misses += t.l1i_misses;
    counters_.l1d_accesses += t.l1d_accesses;
    counters_.l1d_misses += t.l1d_misses;
    counters_.l2_accesses += t.l2_accesses;
    counters_.l2_misses += t.l2_misses;
    counters_.branches += t.branches;
    counters_.branch_mispredicts += t.branch_mispredicts;
    counters_.mem_stall_cycles += t.mem_stall_cycles;
    if (t.l1i_accesses != 0) {
      l1i_.AddStats(t.l1i_accesses, t.l1i_misses);
    }
    if (t.l1d_accesses != 0) {
      l1d_.AddStats(t.l1d_accesses, t.l1d_misses);
    }
    if (t.l2_accesses != 0) {
      l2_.AddStats(t.l2_accesses, t.l2_misses);
    }
  }

  // BranchSlot twin that defers the two counter updates into |t|. Predictor
  // state (BTB, internal mispredict count) and Advance() stay immediate.
  void BranchSlotTallied(std::uint32_t slot, Addr pc, BranchKind kind, bool taken,
                         PathTally& t) {
    if (kind != BranchKind::kNone) {
      t.branches++;
    }
    const std::uint64_t mp_before = bpred_.mispredicts();
    const Cycles cost = bpred_.OnBranchSlot(slot, pc, kind, taken);
    t.branch_mispredicts += bpred_.mispredicts() - mp_before;
    Advance(cost);
  }

  // DataAccess twin with counters and cache stats deferred into |t|.
  void DataAccessTallied(Addr addr, bool write, PathTally& t) {
    (void)write;  // write-allocate: same penalty either way
    Cycles cost = config_.memory.load_use_stall;
    t.l1d_accesses++;
    if (!l1d_.AccessLineNoStats(l1d_.SetIndexOf(addr), l1d_.TagOf(addr))) {
      t.l1d_misses++;
      Cycles penalty;
      if (!config_.l2_enabled) {
        penalty = config_.memory.mem_latency_l2_off;
      } else {
        t.l2_accesses++;
        if (l2_.AccessLineNoStats(l2_.SetIndexOf(addr), l2_.TagOf(addr))) {
          penalty = config_.memory.l2_hit_latency;
        } else {
          t.l2_misses++;
          penalty = config_.memory.mem_latency_l2_on;
        }
      }
      t.mem_stall_cycles += penalty;
      cost += penalty;
    }
    Advance(cost);
  }

  // |count| data accesses at base, base+stride, ... — the object-clearing
  // loops of the kernel issue these as one call instead of one DataAccess
  // per modelled line. Identical modelled state to the per-access loop
  // (see ChargeDelta above for why the fused Advance is safe). With |tally|
  // set, counters and cache stats land in the tally instead of the machine
  // (deferred path accounting above).
  void DataAccessRun(Addr base, std::uint32_t count, std::uint32_t stride, bool write,
                     PathTally* tally = nullptr);

  // --- Cache pinning (paper Section 4) ---

  // Locks |ways| low ways of both L1 caches and installs the given line
  // addresses into them. Lines must fit within the locked ways.
  void PinL1(std::span<const Addr> icache_lines, std::span<const Addr> dcache_lines,
             std::uint32_t ways);
  void UnpinL1();

  // Locks the given lines into |ways| ways of the L2 — the paper's "lock the
  // entire seL4 microkernel into the L2 cache" future-work option (Sections
  // 4, 6.4, 8). Lines that overflow the locked ways' capacity in their set
  // are skipped; returns the number of lines actually pinned. Only
  // meaningful with the L2 enabled.
  std::size_t PinL2Lines(std::span<const Addr> lines, std::uint32_t ways);

  // --- Worst-case measurement support (paper Section 5.4) ---

  // Fills all caches with garbage and resets the branch predictor, emulating
  // the cache-polluting test programs used before each measured run.
  void PolluteCaches();
  void InvalidateCaches();

  // --- State access ---

  Cycles Now() const { return now_; }
  const MachineConfig& config() const { return config_; }
  const HwCounters& counters() const { return counters_; }
  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return l2_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }
  BranchPredictor& bpred() { return bpred_; }
  const BranchPredictor& bpred() const { return bpred_; }
  InterruptController& irq() { return irq_; }
  const InterruptController& irq() const { return irq_; }
  IntervalTimer& timer() { return timer_; }
  const IntervalTimer& timer() const { return timer_; }

  void set_l2_enabled(bool enabled) { config_.l2_enabled = enabled; }
  bool l2_enabled() const { return config_.l2_enabled; }

  void ResetStats();

 private:
  friend class engine::StateSerializer;

  // Refill penalty for a line missing in an L1 cache. Inline: streaming
  // workloads (object clears, cache-polluted campaign runs) miss on nearly
  // every access, so this sits on the hot path alongside Access().
  Cycles MissPenalty(Addr addr) {
    Cycles penalty;
    if (!config_.l2_enabled) {
      penalty = config_.memory.mem_latency_l2_off;
    } else {
      counters_.l2_accesses++;
      if (l2_.Access(addr)) {
        penalty = config_.memory.l2_hit_latency;
      } else {
        counters_.l2_misses++;
        penalty = config_.memory.mem_latency_l2_on;
      }
    }
    counters_.mem_stall_cycles += penalty;
    return penalty;
  }

  // Seed cost profile of the same computation: out of line, with the L2
  // lookup going through the division-based Cache::AccessReference. Identical
  // counter and cache state transitions.
  Cycles MissPenaltyReference(Addr addr);

  // Advances the cycle counter. The timer is only consulted when the counter
  // crosses its cached deadline (IntervalTimer::next_deadline): in between,
  // Tick() would be a no-op, so assertion cycles are exactly those of the
  // tick-every-advance scheme the seed used.
  void Advance(Cycles n) {
    now_ += n;
    if (now_ >= timer_.next_deadline()) {
      timer_.Tick(now_);
    }
  }

  MachineConfig config_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  BranchPredictor bpred_;
  InterruptController irq_;
  IntervalTimer timer_;
  Cycles now_ = 0;
  HwCounters counters_;
};

}  // namespace pmk

#endif  // SRC_HW_MACHINE_H_
