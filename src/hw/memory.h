// Main-memory latency model for the KZM / i.MX31 board.
//
// The board's external memory has a 60-cycle access latency when the L2 cache
// is disabled and 96 cycles when it is enabled (the L2 adds pipeline stages to
// the path to memory). An L2 hit costs 26 cycles (paper Sections 4 and 5.1).

#ifndef SRC_HW_MEMORY_H_
#define SRC_HW_MEMORY_H_

#include <cstdint>

#include "src/hw/cycles.h"

namespace pmk {

struct MemoryConfig {
  Cycles l2_hit_latency = 26;
  Cycles mem_latency_l2_off = 60;
  Cycles mem_latency_l2_on = 96;

  // ARM1136 pipeline: a load's result is available 3 cycles after issue
  // (2 stall cycles for an immediately-consuming instruction) even on an L1
  // hit. Charged per data access on top of the 1-cycle issue slot.
  Cycles load_use_stall = 2;
};

struct MemoryStats {
  std::uint64_t l2_hits = 0;
  std::uint64_t mem_accesses = 0;

  void Reset() { *this = MemoryStats{}; }
};

}  // namespace pmk

#endif  // SRC_HW_MEMORY_H_
