#include "src/kernel/cap.h"

#include <cassert>

namespace pmk {

void Mdb::InsertChild(CapSlot* parent, CapSlot* child) {
  assert(!parent->IsNull());
  assert(!child->cap.IsNull());
  child->mdb_depth = static_cast<std::uint16_t>(parent->mdb_depth + 1);
  child->mdb_prev = parent;
  child->mdb_next = parent->mdb_next;
  if (parent->mdb_next != nullptr) {
    parent->mdb_next->mdb_prev = child;
  }
  parent->mdb_next = child;
}

void Mdb::InsertSibling(CapSlot* original, CapSlot* sibling) {
  assert(!original->IsNull());
  assert(!sibling->cap.IsNull());
  sibling->mdb_depth = original->mdb_depth;
  sibling->mdb_prev = original;
  sibling->mdb_next = original->mdb_next;
  if (original->mdb_next != nullptr) {
    original->mdb_next->mdb_prev = sibling;
  }
  original->mdb_next = sibling;
}

void Mdb::Remove(CapSlot* slot) {
  // Reparent the slot's descendants one level up so depth contiguity (and
  // with it descendant enumeration) stays intact.
  for (CapSlot* n = slot->mdb_next; n != nullptr && n->mdb_depth > slot->mdb_depth;
       n = n->mdb_next) {
    n->mdb_depth--;
  }
  if (slot->mdb_prev != nullptr) {
    slot->mdb_prev->mdb_next = slot->mdb_next;
  }
  if (slot->mdb_next != nullptr) {
    slot->mdb_next->mdb_prev = slot->mdb_prev;
  }
  slot->mdb_prev = nullptr;
  slot->mdb_next = nullptr;
  slot->mdb_depth = 0;
  slot->cap = Cap{};
}

namespace {
// Object identity is (type, address): the first object retyped from an
// untyped region shares the region's base address, but an untyped cap is
// never "the same object" as a cap to a child (seL4's sameObjectAs).
bool SameObject(const Cap& a, const Cap& b) {
  return a.obj == b.obj && a.type == b.type;
}
}  // namespace

bool Mdb::IsFinal(const CapSlot* slot) {
  assert(!slot->IsNull());
  const CapSlot* p = slot->mdb_prev;
  const CapSlot* n = slot->mdb_next;
  if (p != nullptr && !p->IsNull() && SameObject(p->cap, slot->cap)) {
    return false;
  }
  if (n != nullptr && !n->IsNull() && SameObject(n->cap, slot->cap)) {
    return false;
  }
  return true;
}

void Mdb::Replace(CapSlot* old_slot, CapSlot* new_slot) {
  assert(!old_slot->IsNull());
  assert(new_slot->IsNull());
  new_slot->cap = old_slot->cap;
  new_slot->mdb_prev = old_slot->mdb_prev;
  new_slot->mdb_next = old_slot->mdb_next;
  new_slot->mdb_depth = old_slot->mdb_depth;
  if (new_slot->mdb_prev != nullptr) {
    new_slot->mdb_prev->mdb_next = new_slot;
  }
  if (new_slot->mdb_next != nullptr) {
    new_slot->mdb_next->mdb_prev = new_slot;
  }
  old_slot->cap = Cap{};
  old_slot->mdb_prev = nullptr;
  old_slot->mdb_next = nullptr;
  old_slot->mdb_depth = 0;
}

bool Mdb::HasChildren(const CapSlot* slot) {
  return slot->mdb_next != nullptr && slot->mdb_next->mdb_depth > slot->mdb_depth;
}

CapSlot* Mdb::FirstDescendant(const CapSlot* slot) {
  CapSlot* n = slot->mdb_next;
  return (n != nullptr && n->mdb_depth > slot->mdb_depth) ? n : nullptr;
}

CapSlot* Mdb::NextDescendant(const CapSlot* root, const CapSlot* cur) {
  CapSlot* n = cur->mdb_next;
  return (n != nullptr && n->mdb_depth > root->mdb_depth) ? n : nullptr;
}

bool Mdb::WellFormedAt(const CapSlot* slot) {
  if (slot->IsNull()) {
    return slot->mdb_prev == nullptr && slot->mdb_next == nullptr;
  }
  if (slot->mdb_prev != nullptr && slot->mdb_prev->mdb_next != slot) {
    return false;
  }
  if (slot->mdb_next != nullptr && slot->mdb_next->mdb_prev != slot) {
    return false;
  }
  if (slot->mdb_next != nullptr &&
      slot->mdb_next->mdb_depth > slot->mdb_depth + 1) {
    return false;
  }
  return true;
}

}  // namespace pmk
