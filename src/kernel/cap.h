// Mapping database (MDB): seL4's capability derivation tree.
//
// All capabilities are threaded on a global doubly-linked list in derivation
// order: a cap's descendants follow it contiguously with strictly greater
// depth, and caps referring to the same object are adjacent. This gives O(1)
// insert/remove/finality checks and linear descendant enumeration for revoke
// — the enumeration the paper makes preemptible (Section 3.4).
//
// These helpers are purely functional; callers in src/kernel charge the
// memory-access costs of touching slots through the executor.

#ifndef SRC_KERNEL_CAP_H_
#define SRC_KERNEL_CAP_H_

#include "src/kernel/objects.h"

namespace pmk {

class Mdb {
 public:
  // Links |child| (already holding its cap) as a derived child of |parent|.
  static void InsertChild(CapSlot* parent, CapSlot* child);

  // Links |sibling| as a copy at the same depth as |original| (e.g. plain
  // cap copies). Same-object contiguity is preserved.
  static void InsertSibling(CapSlot* original, CapSlot* sibling);

  // Unlinks |slot| from the list and nulls its cap.
  static void Remove(CapSlot* slot);

  // Moves |old_slot|'s cap and list position to |new_slot| (CNode Move).
  static void Replace(CapSlot* old_slot, CapSlot* new_slot);

  // True if |slot| holds the only cap to its object. Relies on same-object
  // caps being adjacent on the list.
  static bool IsFinal(const CapSlot* slot);

  // True if |slot| has derived descendants.
  static bool HasChildren(const CapSlot* slot);

  // First descendant of |slot|, or nullptr.
  static CapSlot* FirstDescendant(const CapSlot* slot);

  // Next descendant of |root| after |cur| (both already descendants), or
  // nullptr when |cur| was the last one.
  static CapSlot* NextDescendant(const CapSlot* root, const CapSlot* cur);

  // Validates list-structure invariants around |slot| (well-formed back
  // pointers, depth monotonicity). Used by the invariant checker.
  static bool WellFormedAt(const CapSlot* slot);
};

}  // namespace pmk

#endif  // SRC_KERNEL_CAP_H_
