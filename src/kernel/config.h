// Kernel configuration: selects between the paper's "before" and "after"
// kernels.
//
// Every improvement of Section 3 is an independent switch so ablation
// benchmarks can isolate each one:
//  - Section 3.1: lazy scheduling vs. Benno scheduling
//  - Section 3.2: scheduler priority bitmaps (two-level, CLZ)
//  - Section 3.3: preemptible endpoint deletion
//  - Section 3.4: preemptible badged-IPC abort
//  - Section 3.5: preemptible object clearing (1 KiB chunks), clearing moved
//    before bookkeeping
//  - Section 3.6: ASID lookup tables vs. shadow page tables with eager
//    back-pointers and preemptible address-space deletion
//  - Section 4:   L1 cache pinning of the interrupt path

#ifndef SRC_KERNEL_CONFIG_H_
#define SRC_KERNEL_CONFIG_H_

#include <cstdint>

namespace pmk {

enum class SchedulerKind : std::uint8_t {
  kLazy,   // Figure 2: blocked threads linger in the run queue
  kBenno,  // Figure 3: run queue holds only runnable threads
};

enum class VSpaceKind : std::uint8_t {
  kAsid,    // Figure 4: ASID lookup table, lazy address-space deletion
  kShadow,  // Figure 5: shadow page tables, eager back-pointers
};

struct KernelConfig {
  SchedulerKind scheduler = SchedulerKind::kBenno;
  bool scheduler_bitmap = true;
  VSpaceKind vspace = VSpaceKind::kShadow;
  bool preemptible_clearing = true;
  bool preemptible_deletion = true;     // endpoint cancel-all, revoke, AS delete
  bool preemptible_badged_abort = true;
  bool ipc_fastpath = true;
  bool cache_pinning = false;

  // Future-work option (Sections 6.1, 8): a preemption point between the
  // send (reply) and receive phases of the atomic send-receive operation,
  // almost halving that operation's contribution to interrupt latency.
  bool preemptible_send_receive = false;

  // Preemption granularity for block clear/copy operations (Section 3.5:
  // multiples of 1 KiB, matched to the non-preemptible global-mapping copy).
  std::uint32_t clear_chunk_bytes = 1024;

  // Kernel-owned preemption-timer line for timeslice round-robin (the
  // fixed-priority preemptive scheduler's tick). kNoKernelTimer disables
  // timeslicing; any other line is consumed by the kernel itself rather
  // than delivered to a bound endpoint.
  static constexpr std::uint32_t kNoKernelTimer = 0xFFFF'FFFF;
  std::uint32_t kernel_timer_line = kNoKernelTimer;
  std::uint32_t timeslice_ticks = 5;

  // Closed-system bounds assumed by the static analysis for loops that have
  // no preemption point (the "before" kernel): maximum threads queued on one
  // endpoint (also a global bound on endpoint-cancellation work, since the
  // thread population bounds the sum over all queues), maximum threads that
  // lazy scheduling can leave stranded in the run queues, and maximum
  // descendants of a revoked capability.
  std::uint32_t max_ep_queue = 256;
  std::uint32_t max_lazy_stale = 100;
  std::uint32_t max_revoke_descendants = 256;
  std::uint32_t max_asid_pools = 1;  // ASID-pool deletions per kernel path

  // Largest object the kernel will create. ARM supports frames to 16 MiB;
  // the static analysis of the non-preemptible "before" kernel needs this
  // closed-system bound to be finite, and 512 KiB calibrates its worst-case
  // system call to the paper's magnitude (milliseconds at 532 MHz).
  std::uint32_t max_object_bits = 19;

  // Number of message registers transferred by a full-length IPC.
  static constexpr std::uint32_t kMaxMsgWords = 64;
  // Maximum caps transferred per IPC.
  static constexpr std::uint32_t kMaxExtraCaps = 3;
  // Maximum objects created by one retype invocation.
  static constexpr std::uint32_t kMaxRetypeCount = 8;
  // Thread priorities (Section 3.2).
  static constexpr std::uint32_t kNumPriorities = 256;

  // The paper's kernel before the changes of Sections 3 and 4.
  static KernelConfig Before() {
    KernelConfig c;
    c.scheduler = SchedulerKind::kLazy;
    c.scheduler_bitmap = false;
    c.vspace = VSpaceKind::kAsid;
    c.preemptible_clearing = false;
    c.preemptible_deletion = false;
    c.preemptible_badged_abort = false;
    c.cache_pinning = false;
    return c;
  }

  // The paper's improved kernel (pinning is orthogonal; see Table 1).
  static KernelConfig After() { return KernelConfig{}; }

  // Memberwise equality keys the process-wide kernel-image cache
  // (SharedKernelImage): equal configs build byte-identical images.
  friend bool operator==(const KernelConfig&, const KernelConfig&) = default;
};

}  // namespace pmk

#endif  // SRC_KERNEL_CONFIG_H_
