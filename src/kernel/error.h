// Structured kernel faults.
//
// The Direct* construction helpers and other modelled-kernel code paths used
// to signal misuse with a mix of bare std::runtime_error / std::logic_error.
// Harness code (and especially the fault-injection campaign, src/fault/)
// needs to distinguish a *modelled* kernel fault — the kernel correctly
// rejecting a hostile or impossible request — from a host-level bug in the
// reproduction itself (ExecError, failed invariant, ...). KernelError carries
// a machine-readable fault code for that purpose.
//
// KernelError derives from std::runtime_error so existing catch sites keep
// working; new code should catch KernelError and switch on fault().

#ifndef SRC_KERNEL_ERROR_H_
#define SRC_KERNEL_ERROR_H_

#include <stdexcept>
#include <string>

namespace pmk {

enum class KernelFault : std::uint8_t {
  kOutOfPhysicalMemory,  // DirectAlloc exhausted the modelled board RAM
  kCapIndexOutOfRange,   // DirectCap index beyond the CNode's slots
  kCapSlotOccupied,      // DirectCap into a non-null slot
  kBadDirectMapping,     // DirectMapPageTable/DirectMapFrame misuse
  kNoAsidPool,           // DirectAssignAsid with no registered pool
  kAsidPoolExhausted,    // DirectAssignAsid found no free ASID
  kBadIrqLine,           // interrupt line outside the controller's range
};

inline const char* KernelFaultName(KernelFault f) {
  switch (f) {
    case KernelFault::kOutOfPhysicalMemory:
      return "OutOfPhysicalMemory";
    case KernelFault::kCapIndexOutOfRange:
      return "CapIndexOutOfRange";
    case KernelFault::kCapSlotOccupied:
      return "CapSlotOccupied";
    case KernelFault::kBadDirectMapping:
      return "BadDirectMapping";
    case KernelFault::kNoAsidPool:
      return "NoAsidPool";
    case KernelFault::kAsidPoolExhausted:
      return "AsidPoolExhausted";
    case KernelFault::kBadIrqLine:
      return "BadIrqLine";
  }
  return "?";
}

class KernelError : public std::runtime_error {
 public:
  KernelError(KernelFault fault, const std::string& detail)
      : std::runtime_error(std::string(KernelFaultName(fault)) + ": " + detail),
        fault_(fault) {}

  KernelFault fault() const { return fault_; }

 private:
  KernelFault fault_;
};

}  // namespace pmk

#endif  // SRC_KERNEL_ERROR_H_
