#include "src/kernel/image.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

#include "src/kernel/objects.h"

namespace pmk {

namespace {

// Register allocation for loop-control semantics (per function, saved and
// restored across calls by the executor).
constexpr std::uint8_t kRegDecode = 0;
constexpr std::uint8_t kRegMsg = 1;
constexpr std::uint8_t kRegCaps = 2;
constexpr std::uint8_t kRegSched = 3;
constexpr std::uint8_t kRegAsid = 4;
constexpr std::uint8_t kRegPt = 5;
constexpr std::uint8_t kRegPd = 6;
constexpr std::uint8_t kRegChunks = 7;
constexpr std::uint8_t kRegEp = 8;
constexpr std::uint8_t kRegRevoke = 9;

// Fluent helper for declaring one kir function's blocks.
class FB {
 public:
  FB(Program& p, FuncId fn, const char* prefix) : p_(p), fn_(fn), prefix_(prefix) {}

  // Plain block with |instr| instructions, |dyn| dynamic accesses and a
  // handful of stack accesses proportional to its size.
  BlockId b(const char* n, std::uint32_t instr, std::uint32_t dyn = 0) {
    Block blk;
    blk.name = std::string(prefix_) + "." + n;
    blk.instr_count = instr;
    blk.max_dynamic_accesses = dyn;
    const std::uint32_t stack_accesses = std::min<std::uint32_t>(instr / 8, 6);
    for (std::uint32_t i = 0; i < stack_accesses; ++i) {
      StaticAccess a;
      a.region = StaticAccess::Region::kStack;
      a.offset = i * 8;
      a.write = (i % 2) == 1;
      blk.static_accesses.push_back(a);
    }
    return p_.AddBlock(fn_, std::move(blk));
  }

  BlockId ret(const char* n, std::uint32_t instr, std::uint32_t dyn = 0) {
    const BlockId id = b(n, instr, dyn);
    p_.mutable_block(id).is_return = true;
    return id;
  }

  BlockId call(const char* n, FuncId callee, std::uint32_t instr = 4) {
    const BlockId id = b(n, instr);
    p_.mutable_block(id).callee = callee;
    return id;
  }

  // Preemption point: reads the interrupt controller's pending word;
  // succs[0] continues, succs[1] takes the preempted exit.
  BlockId preempt(const char* n, SymId irq_state) {
    const BlockId id = b(n, 5);
    Block& blk = p_.mutable_block(id);
    blk.is_preemption_point = true;
    StaticAccess a;
    a.region = StaticAccess::Region::kGlobal;
    a.symbol = irq_state;
    a.offset = 0;
    blk.static_accesses.push_back(a);
    return id;
  }

  void e(BlockId from, BlockId to) { p_.AddEdge(from, to); }

  Block& m(BlockId id) { return p_.mutable_block(id); }

  // Adds a global static access.
  void g(BlockId id, SymId sym, std::uint32_t off, bool write = false) {
    StaticAccess a;
    a.region = StaticAccess::Region::kGlobal;
    a.symbol = sym;
    a.offset = off;
    a.write = write;
    m(id).static_accesses.push_back(a);
  }

  void rconst(BlockId id, std::uint8_t r, std::int64_t v) {
    m(id).reg_ops.push_back({RegOp::Kind::kConst, r, 0, v});
  }
  void rdec(BlockId id, std::uint8_t r) {
    m(id).reg_ops.push_back({RegOp::Kind::kAdd, r, 0, -1});
  }
  // Guard "r >= 1" deciding the taken edge. |one_sided| allows early exit.
  void guard(BlockId id, std::uint8_t r, bool one_sided) {
    Block& blk = m(id);
    blk.cond.cmp = BranchCond::Cmp::kGe;
    blk.cond.lhs = r;
    blk.cond.rhs_is_imm = true;
    blk.cond.rhs_imm = 1;
    blk.cond.one_sided = one_sided;
  }
  void input(BlockId loop_head, std::uint8_t r, std::int64_t lo, std::int64_t hi) {
    m(loop_head).loop_inputs.push_back({r, lo, hi});
  }

 private:
  Program& p_;
  FuncId fn_;
  const char* prefix_;
};

}  // namespace

std::unique_ptr<KernelImage> BuildKernelImage(const KernelConfig& config) {
  auto img = std::make_unique<KernelImage>();
  img->config = config;
  Program& p = img->prog;
  KernelSyms& s = img->syms;
  KernelBlocks& kb = img->b;

  // ---- Data symbols ----
  s.cur_thread = p.AddSymbol("ksCurThread", 8);
  s.sched_action = p.AddSymbol("ksSchedulerAction", 8);
  s.bitmap_l1 = p.AddSymbol("ksReadyQueuesL1Bitmap", 4);
  s.bitmap_l2 = p.AddSymbol("ksReadyQueuesL2Bitmap", 32);
  s.runqueues = p.AddSymbol("ksReadyQueues", 256 * 8);
  s.irq_state = p.AddSymbol("avicRegs", 64);
  s.irq_bindings = p.AddSymbol("intStateIRQNode", 32 * 8);
  s.asid_root = p.AddSymbol("armKSASIDTable", 256 * 4);
  s.globals = p.AddSymbol("ksGlobals", 128);
  s.fastpath = p.AddSymbol("fastpathScratch", 64);

  const bool lazy = config.scheduler == SchedulerKind::kLazy;
  const bool bitmap = config.scheduler_bitmap;
  const bool asid = config.vspace == VSpaceKind::kAsid;
  const bool pclear = config.preemptible_clearing;
  const bool pdel = config.preemptible_deletion;
  const bool pbadge = config.preemptible_badged_abort;
  const std::uint32_t max_chunks =
      (1u << config.max_object_bits) / config.clear_chunk_bytes;

  // ---- Function ids (created first so call blocks can reference them) ----
  kb.sys.fn = p.AddFunction("sys_entry", 96);
  kb.irq.fn = p.AddFunction("irq_entry", 64);
  kb.fault.fn = p.AddFunction("fault_entry", 64);
  kb.undef.fn = p.AddFunction("undef_entry", 64);
  kb.call_h.fn = p.AddFunction("handle_call", 48);
  kb.send_h.fn = p.AddFunction("handle_send", 48);
  kb.recv_h.fn = p.AddFunction("handle_recv", 48);
  kb.rr_h.fn = p.AddFunction("handle_reply_recv", 48);
  kb.yield_h.fn = p.AddFunction("handle_yield", 32);
  kb.dec.fn = p.AddFunction("decode_cap", 40);
  kb.send.fn = p.AddFunction("ipc_send", 56);
  kb.recv.fn = p.AddFunction("ipc_recv", 56);
  kb.reply.fn = p.AddFunction("do_reply", 40);
  kb.xfer.fn = p.AddFunction("do_transfer", 56);
  if (config.ipc_fastpath) {
    kb.fast.fn = p.AddFunction("fastpath_call", 48);
  }
  kb.choose.fn = p.AddFunction("sched_choose", 32);
  kb.enq.fn = p.AddFunction("sched_enqueue", 32);
  kb.deq.fn = p.AddFunction("sched_dequeue", 32);
  kb.asw.fn = p.AddFunction("attempt_switch", 32);
  kb.sched.fn = p.AddFunction("schedule", 40);
  kb.hirq.fn = p.AddFunction("handle_interrupt", 40);
  kb.ntf.fn = p.AddFunction("notify", 40);
  kb.inv.fn = p.AddFunction("invoke", 48);
  kb.retype.fn = p.AddFunction("untyped_retype", 64);
  kb.capdel.fn = p.AddFunction("cap_delete", 48);
  kb.cnodedel.fn = p.AddFunction("cnode_delete", 40);
  kb.revoke.fn = p.AddFunction("cnode_revoke", 48);
  kb.mint.fn = p.AddFunction("cnode_mint", 48);
  kb.destroy.fn = p.AddFunction("destroy_object", 48);
  kb.epcall.fn = p.AddFunction("ep_cancel_all", 48);
  kb.epcb.fn = p.AddFunction("ep_cancel_badged", 56);
  kb.tcb.fn = p.AddFunction("tcb_invoke", 48);
  kb.irqinv.fn = p.AddFunction("irq_invoke", 32);
  if (asid) {
    kb.asid_alloc.fn = p.AddFunction("asid_alloc", 32);
    kb.pool_del.fn = p.AddFunction("asid_pool_delete", 32);
    kb.pdda.fn = p.AddFunction("pd_delete_asid", 32);
  } else {
    kb.ptdel.fn = p.AddFunction("pt_delete", 48);
    kb.pdds.fn = p.AddFunction("pd_delete_shadow", 56);
  }
  kb.fmap.fn = p.AddFunction("frame_map", 40);
  kb.funmap.fn = p.AddFunction("frame_unmap", 40);
  kb.ptmap.fn = p.AddFunction("pt_map", 40);

  // ---- decode_cap (Figure 7) ----
  {
    FB f(p, kb.dec.fn, "dec");
    auto& d = kb.dec;
    d.entry = f.b("entry", 8, 1);
    f.rconst(d.entry, kRegDecode, 32);
    d.loop = f.b("loop", 12, 2);  // guard check + slot fetch, one level
    f.rdec(d.loop, kRegDecode);
    f.guard(d.loop, kRegDecode, /*one_sided=*/true);
    d.done = f.b("done", 5, 1);
    d.ok = f.ret("ok", 3);
    d.fail = f.ret("fail", 3);
    f.e(d.entry, d.loop);  // fall: walk the cspace
    f.e(d.entry, d.done);  // taken: no valid root, fail fast
    f.e(d.loop, d.done);   // fall-through: lookup finished
    f.e(d.loop, d.loop);   // taken: another level
    f.e(d.done, d.ok);     // fall-through: valid
    f.e(d.done, d.fail);   // taken: lookup fault
  }

  // ---- do_transfer ----
  {
    FB f(p, kb.xfer.fn, "xfer");
    auto& x = kb.xfer;
    x.entry = f.b("entry", 10, 2);
    f.guard(x.entry, kRegMsg, /*one_sided=*/false);
    x.loop = f.b("loop", 6, 2);  // copy one message register
    f.rdec(x.loop, kRegMsg);
    f.guard(x.loop, kRegMsg, /*one_sided=*/false);
    f.input(x.loop, kRegMsg, 0, KernelConfig::kMaxMsgWords);
    x.caps_check = f.b("caps_check", 5, 1);
    f.guard(x.caps_check, kRegCaps, /*one_sided=*/false);
    x.cap_one = f.call("cap_one", kb.dec.fn, 6);
    f.input(x.cap_one, kRegCaps, 0, KernelConfig::kMaxExtraCaps);
    x.cap_ins = f.b("cap_ins", 10, 4);  // derive + MDB insert
    f.rdec(x.cap_ins, kRegCaps);
    f.guard(x.cap_ins, kRegCaps, /*one_sided=*/false);
    x.done = f.ret("done", 4);
    f.e(x.entry, x.caps_check);  // fall: empty message
    f.e(x.entry, x.loop);        // taken: copy words
    f.e(x.loop, x.caps_check);   // fall: done copying
    f.e(x.loop, x.loop);         // taken: next word
    f.e(x.caps_check, x.done);   // fall: no caps
    f.e(x.caps_check, x.cap_one);
    f.e(x.cap_one, x.cap_ins);
    f.e(x.cap_ins, x.done);     // fall: no more caps
    f.e(x.cap_ins, x.cap_one);  // taken: next cap
  }

  // ---- sched_enqueue / sched_dequeue ----
  for (int which = 0; which < 2; ++which) {
    auto& q = which == 0 ? kb.enq : kb.deq;
    FB f(p, q.fn, which == 0 ? "enq" : "deq");
    q.entry = f.b("entry", 6, 2);  // cond: nothing to do?
    q.link = f.b("link", 9, 3);    // head/tail/neighbour links
    f.g(q.link, s.runqueues, 0, true);
    q.ret = f.ret("ret", 2);
    if (bitmap) {
      q.bitmap = f.b("bitmap", 5, 0);
      f.g(q.bitmap, s.bitmap_l1, 0, true);
      f.g(q.bitmap, s.bitmap_l2, 0, true);
      f.e(q.entry, q.link);  // fall: do the work
      f.e(q.entry, q.ret);   // taken: early out
      f.e(q.link, q.bitmap);
      f.e(q.bitmap, q.ret);
    } else {
      f.e(q.entry, q.link);
      f.e(q.entry, q.ret);
      f.e(q.link, q.ret);
    }
  }

  // ---- sched_choose (Sections 3.1, 3.2) ----
  {
    FB f(p, kb.choose.fn, "choose");
    auto& c = kb.choose;
    if (lazy) {
      c.lz_entry = f.b("lz_entry", 4, 0);
      // +1: the guard is evaluated before each priority is examined (in
      // lz_head), so visiting all 256 priorities takes 257 loop entries.
      f.rconst(c.lz_entry, kRegSched, KernelConfig::kNumPriorities + 1);
      c.lz_outer = f.b("lz_outer", 4, 0);
      f.rdec(c.lz_outer, kRegSched);
      f.guard(c.lz_outer, kRegSched, /*one_sided=*/true);
      c.lz_head = f.b("lz_head", 4, 1);
      c.lz_runnable = f.b("lz_runnable", 6, 2);
      c.lz_deq = f.b("lz_deq", 9, 3);
      f.m(c.lz_deq).absolute_exec_bound = config.max_lazy_stale;
      f.g(c.lz_deq, s.runqueues, 0, true);
      c.lz_found = f.ret("lz_found", 3);
      c.lz_idle = f.ret("lz_idle", 3);
      f.e(c.lz_entry, c.lz_outer);
      f.e(c.lz_outer, c.lz_idle);  // fall: priorities exhausted
      f.e(c.lz_outer, c.lz_head);  // taken: examine this priority
      f.e(c.lz_head, c.lz_outer);      // fall: queue empty, next priority
      f.e(c.lz_head, c.lz_runnable);   // taken: head exists
      f.e(c.lz_runnable, c.lz_deq);    // fall: blocked, dequeue it
      f.e(c.lz_runnable, c.lz_found);  // taken: runnable
      f.e(c.lz_deq, c.lz_head);
    } else if (bitmap) {
      c.bb_entry = f.b("bb_entry", 8, 0);  // two loads + two CLZ
      f.g(c.bb_entry, s.bitmap_l1, 0, false);
      f.g(c.bb_entry, s.bitmap_l2, 0, false);
      c.bb_empty = f.b("bb_empty", 2, 0);
      // Found: read the head and dequeue it (switchToThread dequeues).
      c.bb_found = f.ret("bb_found", 9, 3);
      f.g(c.bb_found, s.bitmap_l1, 0, true);
      f.g(c.bb_found, s.bitmap_l2, 0, true);
      c.bb_idle = f.ret("bb_idle", 3, 0);
      f.e(c.bb_entry, c.bb_empty);
      f.e(c.bb_empty, c.bb_found);  // fall: bitmap non-zero
      f.e(c.bb_empty, c.bb_idle);   // taken: nothing runnable
    } else {
      c.bn_entry = f.b("bn_entry", 4, 0);
      f.rconst(c.bn_entry, kRegSched, KernelConfig::kNumPriorities);
      c.bn_loop = f.b("bn_loop", 5, 1);  // read head of this priority
      f.rdec(c.bn_loop, kRegSched);
      f.guard(c.bn_loop, kRegSched, /*one_sided=*/true);
      c.bn_done = f.b("bn_done", 2, 0);
      c.bn_found = f.ret("bn_found", 8, 3);  // dequeue the chosen head
      c.bn_idle = f.ret("bn_idle", 3, 0);
      f.e(c.bn_entry, c.bn_loop);
      f.e(c.bn_loop, c.bn_done);  // fall: found or exhausted
      f.e(c.bn_loop, c.bn_loop);  // taken: next priority
      f.e(c.bn_done, c.bn_idle);   // fall: exhausted
      f.e(c.bn_done, c.bn_found);  // taken: found
    }
  }

  // ---- attempt_switch ----
  {
    FB f(p, kb.asw.fn, "asw");
    auto& a = kb.asw;
    a.entry = f.b("entry", 6, 2);
    a.ret = f.ret("ret", 2);
    a.enqueue = f.call("enqueue", kb.enq.fn);
    if (lazy) {
      a.lazy_skip = f.b("lazy_skip", 5, 1);
      f.e(a.entry, a.lazy_skip);
      f.e(a.lazy_skip, a.enqueue);  // fall: not in queue, enqueue
      f.e(a.lazy_skip, a.ret);      // taken: already queued, nothing to do
      f.e(a.enqueue, a.ret);
    } else {
      a.higher = f.b("higher", 4, 0);
      a.direct = f.b("direct", 5, 0);
      f.g(a.direct, s.sched_action, 0, true);
      f.e(a.entry, a.higher);
      f.e(a.higher, a.enqueue);  // fall: lower priority, queue it
      f.e(a.higher, a.direct);   // taken: direct switch
      f.e(a.direct, a.ret);
      f.e(a.enqueue, a.ret);
    }
  }

  // ---- schedule ----
  {
    FB f(p, kb.sched.fn, "sched");
    auto& c = kb.sched;
    c.entry = f.b("entry", 5, 1);
    f.g(c.entry, s.cur_thread, 0, false);
    c.fast = f.b("fast", 4, 0);
    f.g(c.fast, s.sched_action, 0, false);
    c.requeue = f.b("requeue", 4, 1);
    c.requeue_call = f.call("requeue_call", kb.enq.fn);
    c.choose = f.call("choose", kb.choose.fn);
    c.switch_to = f.b("switch_to", 12, 3);
    f.m(c.switch_to).raw_cycles = 10;
    f.g(c.switch_to, s.cur_thread, 0, true);
    f.g(c.switch_to, s.sched_action, 0, true);
    c.ret = f.ret("ret", 3);
    // Re-enter the (still runnable) outgoing thread first — this is Benno
    // scheduling's lazy enqueue of the preempted thread (Section 3.1) — then
    // honour a pending direct-switch action, else pick from the run queues.
    f.e(c.entry, c.requeue);
    f.e(c.requeue, c.fast);          // fall: nothing to requeue
    f.e(c.requeue, c.requeue_call);  // taken: re-enter current thread
    f.e(c.requeue_call, c.fast);
    f.e(c.fast, c.choose);     // fall: no direct-switch action
    f.e(c.fast, c.switch_to);  // taken: direct switch
    f.e(c.choose, c.switch_to);
    f.e(c.switch_to, c.ret);
  }

  // ---- notify ----
  {
    FB f(p, kb.ntf.fn, "ntf");
    auto& n = kb.ntf;
    n.entry = f.b("entry", 6, 2);
    n.waiter = f.b("waiter", 4, 1);
    n.deq = f.b("deq", 8, 3);
    n.wake = f.call("wake", kb.asw.fn);
    n.pend = f.b("pend", 4, 1);
    n.ret = f.ret("ret", 2);
    f.e(n.entry, n.waiter);
    f.e(n.waiter, n.pend);  // fall: nobody waiting, latch the bit
    f.e(n.waiter, n.deq);   // taken: wake the waiter
    f.e(n.deq, n.wake);
    f.e(n.wake, n.ret);
    f.e(n.pend, n.ret);
  }

  // ---- handle_interrupt ----
  {
    FB f(p, kb.hirq.fn, "hirq");
    auto& h = kb.hirq;
    h.entry = f.b("entry", 9, 0);
    f.g(h.entry, s.irq_state, 0, false);
    f.g(h.entry, s.irq_state, 4, true);  // ack
    h.valid = f.b("valid", 3, 0);
    h.binding = f.b("binding", 6, 1);
    h.notify = f.call("notify", kb.ntf.fn);
    h.spurious = f.b("spurious", 2, 0);
    h.ret = f.ret("ret", 3, 0);
    f.e(h.entry, h.valid);
    if (config.kernel_timer_line != KernelConfig::kNoKernelTimer) {
      // Kernel preemption timer: timeslice accounting and round-robin.
      h.d_timer = f.b("d_timer", 2, 0);
      h.tick = f.b("tick", 8, 1);
      f.g(h.tick, s.cur_thread, 0, false);
      f.e(h.valid, h.spurious);  // fall: no/unbound line
      f.e(h.valid, h.d_timer);   // taken
      f.e(h.d_timer, h.binding);  // fall: device interrupt
      f.e(h.d_timer, h.tick);     // taken: the kernel's own timer
      f.e(h.tick, h.ret);
    } else {
      f.e(h.valid, h.spurious);  // fall: no/unbound line
      f.e(h.valid, h.binding);   // taken
    }
    f.e(h.binding, h.notify);
    f.e(h.notify, h.ret);
    f.e(h.spurious, h.ret);
  }

  // ---- ipc_send ----
  {
    FB f(p, kb.send.fn, "send");
    auto& i = kb.send;
    i.entry = f.b("entry", 10, 2);
    i.active = f.b("active", 3, 0);
    i.err = f.ret("err", 3, 1);
    i.has_recv = f.b("has_recv", 4, 1);
    i.deq = f.b("deq", 8, 3);
    i.xfer = f.call("xfer", kb.xfer.fn);
    i.wake = f.call("wake", kb.asw.fn);
    i.reply_setup = f.b("reply_setup", 6, 2);  // cond: is this a Call?
    i.block_caller = f.b("block_caller", 5, 1);
    i.no_reply = f.b("no_reply", 2, 0);
    i.queue = f.b("queue", 10, 3);
    i.ret = f.ret("ret", 3);
    f.e(i.entry, i.active);
    f.e(i.active, i.has_recv);  // fall: endpoint live
    f.e(i.active, i.err);       // taken: deactivated
    f.e(i.has_recv, i.queue);   // fall: no receiver, block
    f.e(i.has_recv, i.deq);     // taken: receiver waiting
    f.e(i.deq, i.xfer);
    f.e(i.xfer, i.wake);
    f.e(i.wake, i.reply_setup);
    f.e(i.reply_setup, i.no_reply);      // fall: plain send
    f.e(i.reply_setup, i.block_caller);  // taken: Call
    f.e(i.block_caller, i.ret);
    f.e(i.no_reply, i.ret);
    f.e(i.queue, i.ret);
  }

  // ---- ipc_recv ----
  {
    FB f(p, kb.recv.fn, "recv");
    auto& i = kb.recv;
    i.entry = f.b("entry", 10, 2);
    i.active = f.b("active", 3, 0);
    i.err = f.ret("err", 3, 1);
    i.notif = f.b("notif", 4, 1);
    i.notif_deliver = f.ret("notif_deliver", 6, 1);
    i.has_send = f.b("has_send", 4, 1);
    i.deq = f.b("deq", 8, 3);
    i.xfer = f.call("xfer", kb.xfer.fn);
    i.sender_call = f.b("sender_call", 4, 1);
    i.sender_set = f.b("sender_set", 6, 2);
    i.sender_wake = f.call("sender_wake", kb.asw.fn);
    i.queue = f.b("queue", 8, 3);
    i.ret = f.ret("ret", 3);
    f.e(i.entry, i.active);
    f.e(i.active, i.notif);  // fall: endpoint live
    f.e(i.active, i.err);    // taken: deactivated
    f.e(i.notif, i.has_send);      // fall: no pending notification
    f.e(i.notif, i.notif_deliver); // taken: deliver latched notification
    f.e(i.has_send, i.queue);  // fall: nobody sending, block
    f.e(i.has_send, i.deq);    // taken
    f.e(i.deq, i.xfer);
    f.e(i.xfer, i.sender_call);
    f.e(i.sender_call, i.sender_wake);  // fall: plain sender, wake it
    f.e(i.sender_call, i.sender_set);   // taken: Call; it awaits reply
    f.e(i.sender_set, i.ret);
    f.e(i.sender_wake, i.ret);
    f.e(i.queue, i.ret);
  }

  // ---- do_reply ----
  {
    FB f(p, kb.reply.fn, "reply");
    auto& r = kb.reply;
    r.entry = f.b("entry", 5, 1);
    r.none = f.ret("none", 2, 0);
    r.xfer = f.call("xfer", kb.xfer.fn);
    r.wake = f.call("wake", kb.asw.fn);
    r.ret = f.ret("ret", 3, 1);
    f.e(r.entry, r.none);  // fall: nobody awaiting a reply
    f.e(r.entry, r.xfer);  // taken
    f.e(r.xfer, r.wake);
    f.e(r.wake, r.ret);
  }

  // ---- fastpath ----
  if (config.ipc_fastpath) {
    FB f(p, kb.fast.fn, "fast");
    auto& fp = kb.fast;
    fp.entry = f.b("entry", 40, 4);
    f.g(fp.entry, s.fastpath, 0, false);
    fp.do_it = f.b("do_it", 60, 8);
    f.g(fp.do_it, s.cur_thread, 0, true);
    fp.hit = f.ret("hit", 10, 1);
    fp.miss = f.ret("miss", 3, 0);
    f.e(fp.entry, fp.do_it);  // fall: eligible
    f.e(fp.entry, fp.miss);   // taken: bail to slowpath
    f.e(fp.do_it, fp.hit);
  }

  // ---- asid functions / shadow delete functions (Section 3.6) ----
  if (asid) {
    {
      FB f(p, kb.asid_alloc.fn, "aal");
      auto& a = kb.asid_alloc;
      a.entry = f.b("entry", 6, 1);
      f.g(a.entry, s.asid_root, 0, false);
      f.rconst(a.entry, kRegAsid, AsidPoolObj::kEntries);
      a.loop = f.b("loop", 5, 1);
      f.rdec(a.loop, kRegAsid);
      f.guard(a.loop, kRegAsid, /*one_sided=*/true);
      a.chk = f.b("chk", 2, 0);
      a.found = f.ret("found", 6, 2);
      a.fail = f.ret("fail", 3, 0);
      f.e(a.entry, a.loop);
      f.e(a.loop, a.chk);   // fall: stop scanning
      f.e(a.loop, a.loop);  // taken: next slot
      f.e(a.chk, a.fail);   // fall: exhausted
      f.e(a.chk, a.found);  // taken
    }
    {
      FB f(p, kb.pool_del.fn, "apd");
      auto& a = kb.pool_del;
      a.entry = f.b("entry", 6, 1);
      f.m(a.entry).absolute_exec_bound = config.max_asid_pools;
      f.rconst(a.entry, kRegAsid, AsidPoolObj::kEntries);
      a.loop = f.b("loop", 6, 2);
      f.m(a.loop).raw_cycles = 4;  // per-entry TLB maintenance
      f.rdec(a.loop, kRegAsid);
      f.guard(a.loop, kRegAsid, /*one_sided=*/false);
      a.ret = f.ret("ret", 3, 0);
      f.e(a.entry, a.loop);
      f.e(a.loop, a.ret);   // fall: all 1024 entries visited
      f.e(a.loop, a.loop);  // taken
    }
    {
      FB f(p, kb.pdda.fn, "pdd");
      auto& a = kb.pdda;
      a.entry = f.b("entry", 8, 2);
      f.m(a.entry).raw_cycles = 50;  // TLB flush by ASID
      a.ret = f.ret("ret", 3, 0);
      f.e(a.entry, a.ret);
    }
  } else {
    {
      FB f(p, kb.ptdel.fn, "ptd");
      auto& t = kb.ptdel;
      t.entry = f.b("entry", 8, 2);
      t.head = f.b("head", 4, 0);
      f.guard(t.head, kRegPt, /*one_sided=*/true);
      f.input(t.head, kRegPt, 0, PageTableObj::kEntries);
      t.unmap = f.b("unmap", 10, 4);
      f.rdec(t.unmap, kRegPt);
      t.done = f.b("done", 6, 2);
      t.ret = f.ret("ret", 3, 0);
      if (pdel) {
        t.preempt = f.preempt("preempt", s.irq_state);
        t.preempted = f.ret("preempted", 4, 0);
        f.e(t.entry, t.head);
        f.e(t.head, t.done);   // fall: finished
        f.e(t.head, t.unmap);  // taken
        f.e(t.unmap, t.preempt);
        f.e(t.preempt, t.head);       // fall: continue
        f.e(t.preempt, t.preempted);  // taken: IRQ pending
        f.e(t.done, t.ret);
      } else {
        f.e(t.entry, t.head);
        f.e(t.head, t.done);
        f.e(t.head, t.unmap);
        f.e(t.unmap, t.head);
        f.e(t.done, t.ret);
      }
    }
    {
      FB f(p, kb.pdds.fn, "pds");
      auto& d = kb.pdds;
      d.entry = f.b("entry", 8, 2);
      d.head = f.b("head", 4, 0);
      f.guard(d.head, kRegPd, /*one_sided=*/true);
      f.input(d.head, kRegPd, 0, PageDirObj::kUserEntries);
      d.read = f.b("read", 6, 2);
      f.rdec(d.read, kRegPd);
      d.is_sec = f.b("is_sec", 3, 0);
      d.sec = f.b("sec", 8, 3);
      f.m(d.sec).raw_cycles = 10;
      d.pt = f.call("pt", kb.ptdel.fn);
      d.ptchk = f.b("ptchk", 3, 0);
      d.next = f.b("next", 3, 1);
      d.done = f.b("done", 6, 1);
      f.m(d.done).raw_cycles = 50;  // full TLB flush
      d.ret = f.ret("ret", 3, 0);
      d.preempted = f.ret("preempted", 4, 0);
      f.e(d.entry, d.head);
      f.e(d.head, d.done);  // fall: finished
      f.e(d.head, d.read);  // taken
      f.e(d.read, d.next);    // fall: entry empty
      f.e(d.read, d.is_sec);  // taken: present
      f.e(d.is_sec, d.pt);   // fall: page table
      f.e(d.is_sec, d.sec);  // taken: section
      f.e(d.sec, d.next);
      f.e(d.pt, d.ptchk);
      f.e(d.ptchk, d.next);       // fall: pt done
      f.e(d.ptchk, d.preempted);  // taken: propagate preemption
      if (pdel) {
        d.preempt = f.preempt("preempt", s.irq_state);
        f.e(d.next, d.preempt);
        f.e(d.preempt, d.head);       // fall: continue
        f.e(d.preempt, d.preempted);  // taken
      } else {
        f.e(d.next, d.head);
      }
      f.e(d.done, d.ret);
    }
  }

  // ---- frame_map / frame_unmap / pt_map ----
  {
    FB f(p, kb.fmap.fn, "fmap");
    auto& m = kb.fmap;
    // ASID variant walks the two-level ASID table first (extra accesses).
    m.entry = f.b("entry", asid ? 14 : 12, asid ? 4 : 3);
    if (asid) {
      f.g(m.entry, s.asid_root, 0, false);
    }
    m.bad = f.ret("bad", 3, 0);
    m.set = f.b("set", 10, 3);
    f.m(m.set).raw_cycles = 5;
    m.ret = f.ret("ret", 3, 0);
    f.e(m.entry, m.set);  // fall: valid
    f.e(m.entry, m.bad);  // taken: invalid
    f.e(m.set, m.ret);
  }
  {
    FB f(p, kb.funmap.fn, "funmap");
    auto& m = kb.funmap;
    m.entry = f.b("entry", 10, asid ? 4 : 3);
    if (asid) {
      f.g(m.entry, s.asid_root, 0, false);
    }
    m.stale = f.ret("stale", 3, 0);
    m.clear = f.b("clear", 8, 3);
    f.m(m.clear).raw_cycles = 10;  // TLB invalidate by MVA
    m.ret = f.ret("ret", 3, 0);
    f.e(m.entry, m.clear);  // fall: live mapping
    f.e(m.entry, m.stale);  // taken: stale / unmapped
    f.e(m.clear, m.ret);
  }
  {
    FB f(p, kb.ptmap.fn, "ptmap");
    auto& m = kb.ptmap;
    m.entry = f.b("entry", 10, 3);
    m.bad = f.ret("bad", 3, 0);
    m.set = f.b("set", 8, 3);
    m.ret = f.ret("ret", 3, 0);
    f.e(m.entry, m.set);
    f.e(m.entry, m.bad);
    f.e(m.set, m.ret);
  }

  // ---- ep_cancel_all (Section 3.3) ----
  {
    FB f(p, kb.epcall.fn, "eca");
    auto& c = kb.epcall;
    c.entry = f.b("entry", 8, 2);  // deactivate; r8 = queue length
    c.head = f.b("head", 4, 1);
    f.guard(c.head, kRegEp, /*one_sided=*/false);
    f.input(c.head, kRegEp, 0, config.max_ep_queue);
    c.deq = f.b("deq", 10, 4);
    f.rdec(c.deq, kRegEp);
    // Closed-system bound: the thread population bounds the total work of
    // endpoint cancellation across a whole path, not just per endpoint.
    f.m(c.deq).absolute_exec_bound = config.max_ep_queue;
    c.enq = f.call("enq", kb.enq.fn);
    c.done = f.b("done", 4, 1);
    c.ret = f.ret("ret", 3, 0);
    f.e(c.entry, c.head);
    f.e(c.head, c.done);  // fall: queue drained
    f.e(c.head, c.deq);   // taken
    f.e(c.deq, c.enq);
    if (pdel) {
      c.preempt = f.preempt("preempt", s.irq_state);
      c.preempted = f.ret("preempted", 4, 0);
      f.e(c.enq, c.preempt);
      f.e(c.preempt, c.head);       // fall: continue
      f.e(c.preempt, c.preempted);  // taken
    } else {
      f.e(c.enq, c.head);
    }
    f.e(c.done, c.ret);
  }

  // ---- ep_cancel_badged (Section 3.4) ----
  {
    FB f(p, kb.epcb.fn, "ecb");
    auto& c = kb.epcb;
    c.entry = f.b("entry", 10, 3);
    c.resume = f.b("resume", 4, 1);  // cond: abort already in progress?
    c.setup = f.b("setup", 8, 3);
    c.head = f.b("head", 4, 1);
    f.guard(c.head, kRegEp, /*one_sided=*/false);
    f.input(c.head, kRegEp, 0, config.max_ep_queue);
    c.check = f.b("check", 8, 3);
    f.m(c.check).absolute_exec_bound = config.max_ep_queue;  // thread bound
    c.remove = f.b("remove", 10, 4);
    f.rdec(c.remove, kRegEp);
    c.enq = f.call("enq", kb.enq.fn);
    c.next = f.b("next", 4, 1);
    f.rdec(c.next, kRegEp);
    c.done = f.b("done", 6, 2);
    c.ret = f.ret("ret", 3, 0);
    f.e(c.entry, c.resume);
    f.e(c.resume, c.setup);  // fall: fresh operation
    f.e(c.resume, c.head);  // taken: continue stored operation
    f.e(c.setup, c.head);
    f.e(c.head, c.done);   // fall: reached end marker
    f.e(c.head, c.check);  // taken
    f.e(c.check, c.next);    // fall: badge differs
    f.e(c.check, c.remove);  // taken: badge matches
    f.e(c.remove, c.enq);
    c.preempted = f.ret("preempted", 5, 2);  // store resume state / restart
    if (pbadge) {
      c.preempt = f.preempt("preempt", s.irq_state);
      f.e(c.enq, c.preempt);
      f.e(c.next, c.preempt);
      f.e(c.preempt, c.head);       // fall: continue
      f.e(c.preempt, c.preempted);  // taken
    } else {
      f.e(c.enq, c.head);
      f.e(c.next, c.head);
    }
    // A second aborter first completes the stored operation (Section 3.4's
    // fourth resume field); its own abort then runs when its restartable
    // system call re-executes. done's taken edge reports that restart.
    f.e(c.done, c.ret);        // fall: the completed operation was ours
    f.e(c.done, c.preempted);  // taken: completed another's; restart ours
  }

  // ---- untyped_retype (Section 3.5) ----
  {
    FB f(p, kb.retype.fn, "urt");
    auto& r = kb.retype;
    r.entry = f.b("entry", 15, 3);
    r.bad = f.ret("bad", 3, 0);
    r.init = f.b("init", 8, 2);  // r7 = chunks to clear (SetReg at runtime)
    r.more = f.b("more", 4, 1);
    f.guard(r.more, kRegChunks, /*one_sided=*/false);
    f.input(r.more, kRegChunks, 0, max_chunks);
    f.m(r.more).loop_bound_annotation = max_chunks;
    // One chunk: clear_chunk_bytes/4 stores at line granularity.
    const std::uint32_t chunk_instr = config.clear_chunk_bytes / 4 + 24;
    const std::uint32_t chunk_dyn = config.clear_chunk_bytes / 32 + 1;
    r.clear_chunk = f.b("clear_chunk", chunk_instr, chunk_dyn);
    f.rdec(r.clear_chunk, kRegChunks);
    r.is_pd = f.b("is_pd", 3, 0);
    r.global_copy = f.b("global_copy", 280, 65);  // 1 KiB copy (32r + 32w + cap)
    r.book = f.b("book", 16, 3);
    // One created object per iteration; r10 = objects remaining (0..count).
    r.book_loop = f.b("book_loop", 12, 4);
    f.rdec(r.book_loop, 10);
    f.guard(r.book_loop, 10, /*one_sided=*/false);
    f.input(r.book_loop, 10, 0, KernelConfig::kMaxRetypeCount);
    r.ret = f.ret("ret", 4, 2);
    if (pclear) {
      // "After" shape: clear first, resume support, preemption point.
      r.resume = f.b("resume", 6, 1);
      r.preempt = f.preempt("preempt", s.irq_state);
      r.preempted = f.ret("preempted", 4, 1);
      f.e(r.entry, r.resume);  // fall: valid
      f.e(r.entry, r.bad);     // taken: invalid
      f.e(r.resume, r.init);   // fall: fresh retype
      f.e(r.resume, r.more);   // taken: resume previous progress
      f.e(r.init, r.more);
      f.e(r.more, r.is_pd);        // fall: clearing finished
      f.e(r.more, r.clear_chunk);  // taken
      f.e(r.clear_chunk, r.preempt);
      f.e(r.preempt, r.more);       // fall: continue
      f.e(r.preempt, r.preempted);  // taken
    } else {
      // "Before" shape: early bookkeeping, non-preemptible clear.
      r.book1 = f.b("book1", 10, 3);
      f.e(r.entry, r.book1);  // fall: valid
      f.e(r.entry, r.bad);    // taken
      f.e(r.book1, r.init);
      f.e(r.init, r.more);
      f.e(r.more, r.is_pd);
      f.e(r.more, r.clear_chunk);
      f.e(r.clear_chunk, r.more);
    }
    f.e(r.is_pd, r.book);         // fall: not a page directory
    f.e(r.is_pd, r.global_copy);  // taken: copy kernel mappings
    f.e(r.global_copy, r.book);
    // book validates and sets r10 = number of objects to create (0 on a
    // validation error); book_loop creates one object per iteration.
    f.guard(r.book, 10, /*one_sided=*/false);
    f.e(r.book, r.ret);        // fall: nothing to create (error)
    f.e(r.book, r.book_loop);  // taken
    f.e(r.book_loop, r.ret);        // fall: batch complete
    f.e(r.book_loop, r.book_loop);  // taken: next object
  }

  // ---- destroy_object ----
  {
    FB f(p, kb.destroy.fn, "des");
    auto& d = kb.destroy;
    d.entry = f.b("entry", 6, 1);
    d.d_ep = f.b("d_ep", 2, 0);
    d.d_pd = f.b("d_pd", 2, 0);
    if (!asid) {
      d.d_pt = f.b("d_pt", 2, 0);
    } else {
      d.d_pool = f.b("d_pool", 2, 0);
    }
    d.d_frame = f.b("d_frame", 2, 0);
    d.d_tcb = f.b("d_tcb", 2, 0);
    d.c_ep = f.call("c_ep", kb.epcall.fn);
    d.c_pd = f.call("c_pd", asid ? kb.pdda.fn : kb.pdds.fn);
    if (!asid) {
      d.c_pt = f.call("c_pt", kb.ptdel.fn);
    } else {
      d.c_pool = f.call("c_pool", kb.pool_del.fn);
    }
    d.c_frame = f.call("c_frame", kb.funmap.fn);
    d.t_tcb = f.b("t_tcb", 8, 2);
    d.t_deq = f.call("t_deq", kb.deq.fn);
    d.simple = f.b("simple", 4, 1);
    d.check = f.b("check", 3, 0);
    d.preempted = f.ret("preempted", 3, 0);
    d.free = f.b("free", 8, 2);
    d.ret = f.ret("ret", 3, 0);
    f.e(d.entry, d.d_ep);
    f.e(d.d_ep, d.d_pd);  // fall
    f.e(d.d_ep, d.c_ep);  // taken: endpoint
    f.e(d.c_ep, d.check);
    f.e(d.d_pd, asid ? d.d_pool : d.d_pt);  // fall
    f.e(d.d_pd, d.c_pd);                    // taken: page directory
    f.e(d.c_pd, d.check);
    if (!asid) {
      f.e(d.d_pt, d.d_frame);  // fall
      f.e(d.d_pt, d.c_pt);     // taken: page table
      f.e(d.c_pt, d.check);
    } else {
      f.e(d.d_pool, d.d_frame);  // fall
      f.e(d.d_pool, d.c_pool);   // taken: ASID pool
      f.e(d.c_pool, d.check);
    }
    f.e(d.d_frame, d.d_tcb);    // fall
    f.e(d.d_frame, d.c_frame);  // taken: frame
    f.e(d.c_frame, d.check);
    f.e(d.d_tcb, d.simple);  // fall: cnode/untyped/irq handler
    f.e(d.d_tcb, d.t_tcb);   // taken: TCB
    f.e(d.t_tcb, d.t_deq);
    f.e(d.t_deq, d.check);
    f.e(d.simple, d.check);
    f.e(d.check, d.free);       // fall: completed
    f.e(d.check, d.preempted);  // taken
    f.e(d.free, d.ret);
  }

  // ---- cap_delete ----
  {
    FB f(p, kb.capdel.fn, "del");
    auto& d = kb.capdel;
    d.entry = f.b("entry", 6, 2);
    d.null = f.b("null", 3, 0);
    d.final = f.b("final", 6, 2);
    d.destroy = f.call("destroy", kb.destroy.fn);
    d.check = f.b("check", 3, 0);
    d.preempted = f.ret("preempted", 3, 0);
    d.unlink = f.b("unlink", 8, 3);
    d.ret = f.ret("ret", 3, 0);
    f.e(d.entry, d.null);
    f.e(d.null, d.final);  // fall: slot occupied
    f.e(d.null, d.ret);    // taken: empty slot, done
    f.e(d.final, d.unlink);   // fall: other caps remain
    f.e(d.final, d.destroy);  // taken: final cap, destroy object
    f.e(d.destroy, d.check);
    f.e(d.check, d.unlink);     // fall
    f.e(d.check, d.preempted);  // taken
    f.e(d.unlink, d.ret);
  }

  // ---- cnode_delete ----
  {
    FB f(p, kb.cnodedel.fn, "cnd");
    auto& d = kb.cnodedel;
    d.entry = f.b("entry", 8, 2);
    d.bad = f.ret("bad", 3, 0);
    d.del = f.call("del", kb.capdel.fn);
    d.ret = f.ret("ret", 3, 0);
    f.e(d.entry, d.del);  // fall: valid index
    f.e(d.entry, d.bad);  // taken
    f.e(d.del, d.ret);
  }

  // ---- cnode_revoke ----
  {
    FB f(p, kb.revoke.fn, "rvk");
    auto& r = kb.revoke;
    r.entry = f.b("entry", 8, 2);  // r9 = descendant count
    r.bad = f.ret("bad", 3, 0);
    r.badged = f.b("badged", 4, 1);
    r.abort = f.call("abort", kb.epcb.fn);
    r.abort_check = f.b("abort_check", 3, 0);
    r.loop = f.b("loop", 4, 1);
    f.guard(r.loop, kRegRevoke, /*one_sided=*/false);
    f.input(r.loop, kRegRevoke, 0, config.max_revoke_descendants);
    f.m(r.loop).loop_bound_annotation = config.max_revoke_descendants;
    r.child = f.b("child", 6, 2);
    f.rdec(r.child, kRegRevoke);
    r.del = f.call("del", kb.capdel.fn);
    r.del_check = f.b("del_check", 3, 0);
    r.preempted = f.ret("preempted", 3, 0);
    // Revoking an untyped's children resets its watermark (seL4 freeIndex).
    r.ret = f.ret("ret", 4, 1);
    f.e(r.entry, r.badged);  // fall: valid
    f.e(r.entry, r.bad);     // taken
    f.e(r.badged, r.loop);   // fall: not a badged endpoint cap
    f.e(r.badged, r.abort);  // taken: abort in-flight badged IPC first
    f.e(r.abort, r.abort_check);
    f.e(r.abort_check, r.loop);       // fall
    f.e(r.abort_check, r.preempted);  // taken
    f.e(r.loop, r.ret);    // fall: no descendants left
    f.e(r.loop, r.child);  // taken
    f.e(r.child, r.del);
    f.e(r.del, r.del_check);
    if (pdel) {
      r.preempt = f.preempt("preempt", s.irq_state);
      f.e(r.del_check, r.preempt);    // fall: delete completed
      f.e(r.del_check, r.preempted);  // taken: delete preempted
      f.e(r.preempt, r.loop);         // fall: continue
      f.e(r.preempt, r.preempted);    // taken
    } else {
      f.e(r.del_check, r.loop);
      f.e(r.del_check, r.preempted);
    }
  }

  // ---- cnode_mint ----
  {
    FB f(p, kb.mint.fn, "mnt");
    auto& m = kb.mint;
    m.entry = f.b("entry", 8, 2);
    m.decode = f.call("decode", kb.dec.fn);
    m.chk = f.b("chk", 4, 1);
    m.err = f.ret("err", 3, 0);
    m.insert = f.b("insert", 10, 4);
    m.ret = f.ret("ret", 3, 0);
    f.e(m.entry, m.decode);
    f.e(m.decode, m.chk);
    f.e(m.chk, m.insert);  // fall: ok
    f.e(m.chk, m.err);     // taken
    f.e(m.insert, m.ret);
  }

  // ---- tcb_invoke ----
  {
    FB f(p, kb.tcb.fn, "tcb");
    auto& t = kb.tcb;
    t.entry = f.b("entry", 6, 1);
    t.d_config = f.b("d_config", 2, 0);
    t.d_resume = f.b("d_resume", 2, 0);
    t.d_suspend = f.b("d_suspend", 2, 0);
    t.d_setprio = f.b("d_setprio", 2, 0);
    t.config = f.b("config", 10, 3);
    if (asid) {
      t.config_asid = f.call("config_asid", kb.asid_alloc.fn);
    }
    t.resume = f.b("resume", 6, 2);
    t.resume_enq = f.call("resume_enq", kb.enq.fn);
    t.suspend = f.b("suspend", 6, 2);
    t.suspend_deq = f.call("suspend_deq", kb.deq.fn);
    t.setprio = f.b("setprio", 8, 2);
    t.sp_deq = f.call("sp_deq", kb.deq.fn);
    t.sp_enq = f.call("sp_enq", kb.enq.fn);
    t.bad = f.b("bad", 3, 0);
    t.ret = f.ret("ret", 3, 0);
    f.e(t.entry, t.d_config);
    f.e(t.d_config, t.d_resume);  // fall
    f.e(t.d_config, t.config);    // taken
    if (asid) {
      f.e(t.config, t.ret);          // fall: vspace already has an ASID
      f.e(t.config, t.config_asid);  // taken: allocate one
      f.e(t.config_asid, t.ret);
    } else {
      f.e(t.config, t.ret);
    }
    f.e(t.d_resume, t.d_suspend);  // fall
    f.e(t.d_resume, t.resume);     // taken
    f.e(t.resume, t.resume_enq);
    f.e(t.resume_enq, t.ret);
    f.e(t.d_suspend, t.d_setprio);  // fall
    f.e(t.d_suspend, t.suspend);    // taken
    f.e(t.suspend, t.suspend_deq);
    f.e(t.suspend_deq, t.ret);
    f.e(t.d_setprio, t.bad);      // fall
    f.e(t.d_setprio, t.setprio);  // taken
    f.e(t.setprio, t.sp_deq);
    f.e(t.sp_deq, t.sp_enq);
    f.e(t.sp_enq, t.ret);
    f.e(t.bad, t.ret);
  }

  // ---- irq_invoke ----
  {
    FB f(p, kb.irqinv.fn, "irqv");
    auto& i = kb.irqinv;
    i.entry = f.b("entry", 5, 1);
    i.d_set = f.b("d_set", 2, 0);
    i.set = f.b("set", 6, 1);
    i.ack = f.b("ack", 5, 0);
    f.g(i.ack, s.irq_state, 8, true);
    i.ret = f.ret("ret", 3, 0);
    f.e(i.entry, i.d_set);
    f.e(i.d_set, i.ack);  // fall: Ack
    f.e(i.d_set, i.set);  // taken: SetHandler
    f.e(i.set, i.ret);
    f.e(i.ack, i.ret);
  }

  // ---- invoke dispatcher ----
  {
    FB f(p, kb.inv.fn, "inv");
    auto& v = kb.inv;
    v.entry = f.b("entry", 10, 1);
    v.d_retype = f.b("d_retype", 2, 0);
    v.d_delete = f.b("d_delete", 2, 0);
    v.d_revoke = f.b("d_revoke", 2, 0);
    v.d_mint = f.b("d_mint", 2, 0);
    v.d_tcb = f.b("d_tcb", 2, 0);
    v.d_frame_map = f.b("d_frame_map", 2, 0);
    v.d_frame_unmap = f.b("d_frame_unmap", 2, 0);
    v.d_pt_map = f.b("d_pt_map", 2, 0);
    v.d_irq = f.b("d_irq", 2, 0);
    v.c_retype = f.call("c_retype", kb.retype.fn);
    v.c_delete = f.call("c_delete", kb.cnodedel.fn);
    v.c_revoke = f.call("c_revoke", kb.revoke.fn);
    v.c_mint = f.call("c_mint", kb.mint.fn);
    v.c_tcb = f.call("c_tcb", kb.tcb.fn);
    v.c_frame_map = f.call("c_frame_map", kb.fmap.fn);
    v.c_frame_unmap = f.call("c_frame_unmap", kb.funmap.fn);
    v.c_pt_map = f.call("c_pt_map", kb.ptmap.fn);
    v.c_irq = f.call("c_irq", kb.irqinv.fn);
    v.bad = f.b("bad", 3, 0);
    v.ret = f.ret("ret", 3, 0);
    f.e(v.entry, v.d_retype);
    const BlockId ds[] = {v.d_retype,    v.d_delete, v.d_revoke,      v.d_mint,
                          v.d_tcb,       v.d_frame_map, v.d_frame_unmap, v.d_pt_map,
                          v.d_irq};
    const BlockId cs[] = {v.c_retype,    v.c_delete, v.c_revoke,      v.c_mint,
                          v.c_tcb,       v.c_frame_map, v.c_frame_unmap, v.c_pt_map,
                          v.c_irq};
    for (std::size_t i = 0; i < std::size(ds); ++i) {
      const BlockId next = (i + 1 < std::size(ds)) ? ds[i + 1] : v.bad;
      f.e(ds[i], next);   // fall: try next label
      f.e(ds[i], cs[i]);  // taken: dispatch
      f.e(cs[i], v.ret);
    }
    f.e(v.bad, v.ret);
  }

  // ---- syscall operation handlers ----
  auto build_handler = [&](KernelBlocks::OpHandler& h, const char* prefix, bool with_reply,
                           bool is_call, FuncId ipc_fn) {
    FB f(p, h.fn, prefix);
    h.entry = f.b("entry", 6, 1);
    if (with_reply) {
      h.reply = f.call("reply", kb.reply.fn);
      if (config.preemptible_send_receive) {
        // Future work (Sections 6.1, 8): split the atomic send-receive at a
        // preemption point between its phases.
        h.preempt = f.preempt("preempt", s.irq_state);
        h.preempted = f.ret("preempted", 4, 0);
      }
    }
    h.decode = f.call("decode", kb.dec.fn);
    h.chk = f.b("chk", 3, 0);
    h.err = f.ret("err", 4, 1);
    h.type = f.b("type", 3, 0);
    h.ipc = f.call("ipc", ipc_fn);
    if (is_call) {
      h.invoke = f.call("invoke", kb.inv.fn);
    }
    h.ret = f.ret("ret", 3, 0);
    if (with_reply) {
      f.e(h.entry, h.reply);
      if (config.preemptible_send_receive) {
        f.e(h.reply, h.preempt);
        f.e(h.preempt, h.decode);     // fall: continue into the receive phase
        f.e(h.preempt, h.preempted);  // taken: IRQ pending
      } else {
        f.e(h.reply, h.decode);
      }
    } else {
      f.e(h.entry, h.decode);
    }
    f.e(h.decode, h.chk);
    f.e(h.chk, h.type);  // fall: decode ok
    f.e(h.chk, h.err);   // taken: lookup fault
    if (is_call) {
      f.e(h.type, h.invoke);  // fall: object invocation
      f.e(h.type, h.ipc);     // taken: endpoint
      f.e(h.invoke, h.ret);
    } else {
      f.e(h.type, h.err);  // fall: wrong cap type
      f.e(h.type, h.ipc);  // taken: endpoint
    }
    f.e(h.ipc, h.ret);
  };
  build_handler(kb.call_h, "hcall", /*with_reply=*/false, /*is_call=*/true, kb.send.fn);
  build_handler(kb.send_h, "hsend", /*with_reply=*/false, /*is_call=*/false, kb.send.fn);
  build_handler(kb.recv_h, "hrecv", /*with_reply=*/false, /*is_call=*/false, kb.recv.fn);
  build_handler(kb.rr_h, "hrr", /*with_reply=*/true, /*is_call=*/false, kb.recv.fn);

  // ---- yield ----
  {
    FB f(p, kb.yield_h.fn, "yld");
    auto& y = kb.yield_h;
    y.entry = f.b("entry", 4, 1);
    y.deq = f.call("deq", kb.deq.fn);
    y.enq = f.call("enq", kb.enq.fn);
    y.ret = f.ret("ret", 2, 0);
    f.e(y.entry, y.deq);
    f.e(y.deq, y.enq);
    f.e(y.enq, y.ret);
  }

  // ---- sys_entry ----
  {
    FB f(p, kb.sys.fn, "sys");
    auto& e = kb.sys;
    e.save = f.b("save", 40, 1);
    f.m(e.save).raw_cycles = 20;  // exception entry / mode switch
    if (config.ipc_fastpath) {
      e.fast_check = f.b("fast_check", 8, 2);
      e.fast_do = f.call("fast_do", kb.fast.fn);
      e.fast_ok = f.b("fast_ok", 3, 0);
    }
    e.d_call = f.b("d_call", 2, 0);
    e.do_call = f.call("do_call", kb.call_h.fn);
    e.d_send = f.b("d_send", 2, 0);
    e.do_send = f.call("do_send", kb.send_h.fn);
    e.d_recv = f.b("d_recv", 2, 0);
    e.do_recv = f.call("do_recv", kb.recv_h.fn);
    e.d_replyrecv = f.b("d_replyrecv", 2, 0);
    e.do_replyrecv = f.call("do_replyrecv", kb.rr_h.fn);
    e.d_yield = f.b("d_yield", 2, 0);
    e.do_yield = f.call("do_yield", kb.yield_h.fn);
    e.bad_op = f.b("bad_op", 3, 0);
    e.post = f.b("post", 3, 0);
    e.preempted = f.b("preempted", 6, 0);
    f.m(e.preempted).is_path_end = true;
    e.irq_call = f.call("irq_call", kb.hirq.fn);
    e.sched = f.call("sched", kb.sched.fn);
    e.exit = f.ret("exit", 25, 1);
    f.m(e.exit).raw_cycles = 15;
    f.m(e.exit).is_path_end = true;
    if (config.ipc_fastpath) {
      f.e(e.save, e.fast_check);
      f.e(e.fast_check, e.d_call);   // fall: not eligible
      f.e(e.fast_check, e.fast_do);  // taken
      f.e(e.fast_do, e.fast_ok);
      f.e(e.fast_ok, e.d_call);  // fall: fastpath bailed
      f.e(e.fast_ok, e.exit);    // taken: handled
    } else {
      f.e(e.save, e.d_call);
    }
    const BlockId ds[] = {e.d_call, e.d_send, e.d_recv, e.d_replyrecv, e.d_yield};
    const BlockId cs[] = {e.do_call, e.do_send, e.do_recv, e.do_replyrecv, e.do_yield};
    for (std::size_t i = 0; i < std::size(ds); ++i) {
      const BlockId next = (i + 1 < std::size(ds)) ? ds[i + 1] : e.bad_op;
      f.e(ds[i], next);
      f.e(ds[i], cs[i]);
      f.e(cs[i], e.post);
    }
    f.e(e.bad_op, e.post);
    f.e(e.post, e.sched);      // fall: completed
    f.e(e.post, e.preempted);  // taken: operation was preempted
    f.e(e.preempted, e.irq_call);
    f.e(e.irq_call, e.sched);
    f.e(e.sched, e.exit);
  }

  // ---- irq_entry ----
  {
    FB f(p, kb.irq.fn, "irq");
    auto& e = kb.irq;
    e.save = f.b("save", 35, 1);
    f.m(e.save).raw_cycles = 20;
    f.m(e.save).is_irq_handler_start = true;
    e.handle = f.call("handle", kb.hirq.fn);
    e.sched = f.call("sched", kb.sched.fn);
    e.exit = f.ret("exit", 25, 1);
    f.m(e.exit).raw_cycles = 15;
    f.m(e.exit).is_path_end = true;
    f.e(e.save, e.handle);
    f.e(e.handle, e.sched);
    f.e(e.sched, e.exit);
  }

  // ---- fault_entry / undef_entry ----
  for (int which = 0; which < 2; ++which) {
    auto& e = which == 0 ? kb.fault : kb.undef;
    FB f(p, e.fn, which == 0 ? "flt" : "und");
    e.save = f.b("save", which == 0 ? 38 : 36, 1);
    f.m(e.save).raw_cycles = 20;
    e.lookup = f.call("lookup", kb.dec.fn);
    e.valid = f.b("valid", 3, 0);
    e.send = f.call("send", kb.send.fn);
    e.kill = f.b("kill", 6, 2);
    e.post = f.b("post", 3, 0);
    e.preempted = f.b("preempted", 6, 0);
    f.m(e.preempted).is_path_end = true;
    e.irq_call = f.call("irq_call", kb.hirq.fn);
    e.sched = f.call("sched", kb.sched.fn);
    e.exit = f.ret("exit", 25, 1);
    f.m(e.exit).raw_cycles = 15;
    f.m(e.exit).is_path_end = true;
    f.e(e.save, e.lookup);
    f.e(e.lookup, e.valid);
    f.e(e.valid, e.kill);  // fall: no handler
    f.e(e.valid, e.send);  // taken: send fault message
    f.e(e.send, e.post);
    f.e(e.kill, e.post);
    f.e(e.post, e.sched);
    f.e(e.post, e.preempted);
    f.e(e.preempted, e.irq_call);
    f.e(e.irq_call, e.sched);
    f.e(e.sched, e.exit);
  }

  p.Layout();
  return img;
}

PinnedLines SelectPinnedLines(const KernelImage& image, std::uint32_t line_bytes,
                              std::size_t iline_capacity) {
  const Program& p = image.prog;
  const KernelBlocks& kb = image.b;
  PinnedLines out;

  // The interrupt-delivery path first — irq_entry, handle_interrupt, notify,
  // attempt_switch, schedule, the scheduler queue operations — then the
  // commonly-executed IPC machinery (capability decode, send/receive,
  // transfer), chosen the way the paper selects its 118 lines: from
  // execution traces of typical and worst-case deliveries. SelectPinnedLines
  // truncates at the locked ways' capacity, so the order is the priority.
  std::vector<FuncId> pinned_fns = {kb.irq.fn,   kb.hirq.fn,   kb.ntf.fn, kb.asw.fn,
                                    kb.sched.fn, kb.choose.fn, kb.enq.fn, kb.deq.fn,
                                    kb.dec.fn,   kb.xfer.fn,   kb.send.fn, kb.recv.fn,
                                    kb.reply.fn};
  if (kb.fast.fn != kNoFunc) {
    pinned_fns.push_back(kb.fast.fn);
  }
  for (FuncId fn : pinned_fns) {
    for (BlockId bid : p.function(fn).blocks) {
      for (Addr a : p.BlockLineAddrs(bid, line_bytes)) {
        if (out.ilines.empty() || out.ilines.back() != a) {
          out.ilines.push_back(a);
        }
      }
    }
  }
  if (out.ilines.size() > iline_capacity) {
    out.ilines.resize(iline_capacity);
  }

  // First 256 bytes of the kernel stack.
  for (Addr a = Program::kStackTop - 256; a < Program::kStackTop; a += line_bytes) {
    out.dlines.push_back(a);
  }
  // Hot globals.
  const SymId hot[] = {image.syms.cur_thread, image.syms.sched_action, image.syms.bitmap_l1,
                       image.syms.bitmap_l2,  image.syms.irq_state,    image.syms.irq_bindings};
  for (SymId sym : hot) {
    const DataSymbol& d = p.symbol(sym);
    for (Addr a = d.address / line_bytes * line_bytes; a < d.address + d.size;
         a += line_bytes) {
      out.dlines.push_back(a);
    }
  }
  return out;
}

std::shared_ptr<const KernelImage> SharedKernelImage(const KernelConfig& config) {
  // A flat list suffices: a process touches a handful of distinct configs
  // (the ablation sweep's single-switch variants at most), so linear scan
  // under a mutex is cheaper than hashing the whole struct.
  static std::mutex mu;
  static std::vector<std::shared_ptr<const KernelImage>>* cache =
      new std::vector<std::shared_ptr<const KernelImage>>();
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& img : *cache) {
    if (img->config == config) {
      return img;
    }
  }
  std::shared_ptr<const KernelImage> img = BuildKernelImage(config);
  cache->push_back(img);
  return img;
}

}  // namespace pmk
