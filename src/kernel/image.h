// The kernel "binary image": kir declaration of every kernel code path.
//
// BuildKernelImage() constructs the kernel's functions, basic blocks, CFG
// edges, loop metadata and data symbols for a given KernelConfig. The image
// differs between configurations exactly where the paper's kernels differ:
// lazy vs. Benno scheduling, bitmaps, ASID vs. shadow-page-table address
// spaces, and presence of preemption points. The same image is executed by
// the kernel (src/kernel charges each block it passes through) and analyzed
// by the WCET pipeline (src/wcet).
//
// Unused variant members are kNoBlock / kNoFunc in a given configuration.
//
// CFG conventions (see src/kir/block.h): succs[0] is the fall-through /
// not-taken edge, succs[1] the taken edge; a call block has exactly one
// successor (the resume block).

#ifndef SRC_KERNEL_IMAGE_H_
#define SRC_KERNEL_IMAGE_H_

#include <memory>

#include "src/kernel/config.h"
#include "src/kir/program.h"

namespace pmk {

// Data symbols (kernel globals) referenced by block static accesses and by
// the kernel runtime for dynamic touches.
struct KernelSyms {
  SymId cur_thread = 0;     // pointer to the running TCB
  SymId sched_action = 0;   // deferred direct-switch target (Benno)
  SymId bitmap_l1 = 0;      // 8-bit top-level priority bitmap (Section 3.2)
  SymId bitmap_l2 = 0;      // 8 x 32-bit bucket bitmaps
  SymId runqueues = 0;      // 256 x {head,tail}
  SymId irq_state = 0;      // interrupt controller registers (pending word)
  SymId irq_bindings = 0;   // per-line notification endpoint
  SymId asid_root = 0;      // ASID lookup table root (ASID variant)
  SymId globals = 0;        // miscellaneous kernel state
  SymId fastpath = 0;       // fastpath scratch state
};

struct KernelBlocks {
  // --- Kernel entry points (the four analyzed exception vectors) ---
  struct SysEntry {
    FuncId fn = kNoFunc;
    BlockId save = kNoBlock;        // context save (entry)
    BlockId fast_check = kNoBlock;  // fastpath eligibility test
    BlockId fast_do = kNoBlock;     // call fastpath
    BlockId fast_ok = kNoBlock;     // did the fastpath complete it?
    BlockId d_call = kNoBlock;      // dispatcher conditionals
    BlockId d_send = kNoBlock;
    BlockId d_recv = kNoBlock;
    BlockId d_replyrecv = kNoBlock;
    BlockId d_yield = kNoBlock;
    BlockId do_call = kNoBlock;  // dispatcher call blocks
    BlockId do_send = kNoBlock;
    BlockId do_recv = kNoBlock;
    BlockId do_replyrecv = kNoBlock;
    BlockId do_yield = kNoBlock;
    BlockId bad_op = kNoBlock;
    BlockId post = kNoBlock;       // preempted?
    BlockId preempted = kNoBlock;  // transfer to IRQ handling (path end)
    BlockId irq_call = kNoBlock;   // call handle_interrupt
    BlockId sched = kNoBlock;      // call schedule
    BlockId exit = kNoBlock;       // restore + eret (path end)
  } sys;

  struct IrqEntry {
    FuncId fn = kNoFunc;
    BlockId save = kNoBlock;  // is_irq_handler_start
    BlockId handle = kNoBlock;
    BlockId sched = kNoBlock;
    BlockId exit = kNoBlock;  // path end
  } irq;

  struct FaultEntry {
    FuncId fn = kNoFunc;
    BlockId save = kNoBlock;
    BlockId lookup = kNoBlock;  // call decode_cap (fault handler endpoint)
    BlockId valid = kNoBlock;
    BlockId send = kNoBlock;  // call ipc_send (fault message)
    BlockId kill = kNoBlock;  // no handler: suspend thread
    BlockId post = kNoBlock;
    BlockId preempted = kNoBlock;  // path end
    BlockId irq_call = kNoBlock;
    BlockId sched = kNoBlock;
    BlockId exit = kNoBlock;  // path end
  } fault, undef;

  // --- Syscall operation handlers ---
  struct OpHandler {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId reply = kNoBlock;      // ReplyRecv only: call do_reply first
    BlockId preempt = kNoBlock;    // ReplyRecv only, if preemptible_send_receive
    BlockId preempted = kNoBlock;  // return kPreempted between the phases
    BlockId decode = kNoBlock;     // call decode_cap
    BlockId chk = kNoBlock;        // decode succeeded?
    BlockId err = kNoBlock;        // return with error
    BlockId type = kNoBlock;       // endpoint cap?
    BlockId ipc = kNoBlock;        // call ipc_send / ipc_recv
    BlockId invoke = kNoBlock;     // Call only: call invoke
    BlockId ret = kNoBlock;
  } call_h, send_h, recv_h, rr_h;

  struct YieldH {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId deq = kNoBlock;  // call sched_dequeue
    BlockId enq = kNoBlock;  // call sched_enqueue (to queue tail)
    BlockId ret = kNoBlock;
  } yield_h;

  // --- Capability decode (Figure 7 worst case) ---
  struct DecodeCap {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // r0 = 32 remaining bits
    BlockId loop = kNoBlock;   // one level of lookup; guard r0 >= 1
    BlockId done = kNoBlock;   // lookup landed: valid?
    BlockId ok = kNoBlock;     // return (valid cap)
    BlockId fail = kNoBlock;   // return (lookup fault)
  } dec;

  // --- IPC (Sections 3.3, 3.4, 6.1) ---
  struct IpcSend {  // Send, Call's send phase, fault messages
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId active = kNoBlock;    // endpoint active?
    BlockId err = kNoBlock;       // inactive: abort
    BlockId has_recv = kNoBlock;  // receiver waiting?
    BlockId deq = kNoBlock;       // dequeue receiver
    BlockId xfer = kNoBlock;      // call do_transfer
    BlockId wake = kNoBlock;      // call attempt_switch (receiver)
    BlockId reply_setup = kNoBlock;   // cond: is this a Call?
    BlockId block_caller = kNoBlock;  // Call: block on reply
    BlockId no_reply = kNoBlock;      // plain send
    BlockId queue = kNoBlock;         // no receiver: enqueue sender
    BlockId ret = kNoBlock;
  } send;

  struct IpcRecv {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId active = kNoBlock;
    BlockId err = kNoBlock;
    BlockId notif = kNoBlock;          // pending notification bits?
    BlockId notif_deliver = kNoBlock;  // deliver + return
    BlockId has_send = kNoBlock;       // sender waiting?
    BlockId deq = kNoBlock;
    BlockId xfer = kNoBlock;
    BlockId sender_call = kNoBlock;  // cond: sender was a Call?
    BlockId sender_set = kNoBlock;   // link reply; sender stays blocked
    BlockId sender_wake = kNoBlock;  // call attempt_switch (plain sender)
    BlockId queue = kNoBlock;        // no sender: enqueue receiver
    BlockId ret = kNoBlock;
  } recv;

  struct DoReply {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // cond: caller waiting?
    BlockId none = kNoBlock;   // nobody to reply to
    BlockId xfer = kNoBlock;   // call do_transfer
    BlockId wake = kNoBlock;   // call attempt_switch
    BlockId ret = kNoBlock;
  } reply;

  struct DoTransfer {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;       // cond: r1 (message words, 0..64) >= 1
    BlockId loop = kNoBlock;        // copy one message register
    BlockId caps_check = kNoBlock;  // cond: r2 (extra caps, 0..3) >= 1
    BlockId cap_one = kNoBlock;     // call decode_cap
    BlockId cap_ins = kNoBlock;     // derive + MDB insert; loop back
    BlockId done = kNoBlock;
  } xfer;

  struct Fastpath {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // eligibility checks (cond)
    BlockId do_it = kNoBlock;  // transfer + direct switch
    BlockId hit = kNoBlock;    // return (handled)
    BlockId miss = kNoBlock;   // return (fall back to slowpath)
  } fast;

  // --- Scheduler (Sections 3.1, 3.2) ---
  struct SchedChoose {
    FuncId fn = kNoFunc;
    // Benno + bitmap (Figure 3 + CLZ): straight line.
    BlockId bb_entry = kNoBlock;
    BlockId bb_empty = kNoBlock;  // cond: bitmap all zero?
    BlockId bb_found = kNoBlock;
    BlockId bb_idle = kNoBlock;
    // Benno without bitmap: scan 256 priorities.
    BlockId bn_entry = kNoBlock;
    BlockId bn_loop = kNoBlock;  // guard r3 >= 1
    BlockId bn_done = kNoBlock;  // cond: found?
    BlockId bn_found = kNoBlock;
    BlockId bn_idle = kNoBlock;
    // Lazy (Figure 2): scan priorities, dequeue blocked threads.
    BlockId lz_entry = kNoBlock;
    BlockId lz_outer = kNoBlock;     // next priority; guard r3 >= 1
    BlockId lz_head = kNoBlock;      // queue head exists?
    BlockId lz_runnable = kNoBlock;  // head runnable?
    BlockId lz_found = kNoBlock;
    BlockId lz_deq = kNoBlock;  // dequeue blocked thread (absolute bound)
    BlockId lz_idle = kNoBlock;
  } choose;

  struct SchedQueueOp {  // enqueue / dequeue with early-out guard
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;   // cond: nothing to do?
    BlockId link = kNoBlock;    // list manipulation
    BlockId bitmap = kNoBlock;  // bitmap maintenance (if enabled)
    BlockId ret = kNoBlock;
  } enq, deq;

  struct AttemptSwitch {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId higher = kNoBlock;     // Benno: woken prio >= current?
    BlockId direct = kNoBlock;     // Benno: set direct-switch action
    BlockId lazy_skip = kNoBlock;  // lazy: already in run queue?
    BlockId enqueue = kNoBlock;    // call sched_enqueue
    BlockId ret = kNoBlock;
  } asw;

  struct Schedule {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId fast = kNoBlock;     // cond: direct-switch action pending?
    BlockId requeue = kNoBlock;  // cond: re-enter current thread? (Benno)
    BlockId requeue_call = kNoBlock;  // call sched_enqueue
    BlockId choose = kNoBlock;        // call sched_choose
    BlockId switch_to = kNoBlock;
    BlockId ret = kNoBlock;
  } sched;

  // --- Interrupt handling ---
  struct HandleIrq {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;    // read + ack pending line
    BlockId valid = kNoBlock;    // cond: real line?
    BlockId d_timer = kNoBlock;  // cond: kernel preemption timer?
    BlockId tick = kNoBlock;     // timeslice accounting / round-robin
    BlockId spurious = kNoBlock;
    BlockId binding = kNoBlock;
    BlockId notify = kNoBlock;  // call notify
    BlockId ret = kNoBlock;
  } hirq;

  struct Notify {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId waiter = kNoBlock;  // cond: receiver waiting?
    BlockId deq = kNoBlock;
    BlockId wake = kNoBlock;  // call attempt_switch
    BlockId pend = kNoBlock;  // set pending bit
    BlockId ret = kNoBlock;
  } ntf;

  // --- Object invocations ---
  struct Invoke {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId d_retype = kNoBlock;
    BlockId d_delete = kNoBlock;
    BlockId d_revoke = kNoBlock;
    BlockId d_mint = kNoBlock;
    BlockId d_tcb = kNoBlock;
    BlockId d_frame_map = kNoBlock;
    BlockId d_frame_unmap = kNoBlock;
    BlockId d_pt_map = kNoBlock;
    BlockId d_irq = kNoBlock;
    BlockId c_retype = kNoBlock;
    BlockId c_delete = kNoBlock;
    BlockId c_revoke = kNoBlock;
    BlockId c_mint = kNoBlock;
    BlockId c_tcb = kNoBlock;
    BlockId c_frame_map = kNoBlock;
    BlockId c_frame_unmap = kNoBlock;
    BlockId c_pt_map = kNoBlock;
    BlockId c_irq = kNoBlock;
    BlockId bad = kNoBlock;
    BlockId ret = kNoBlock;
  } inv;

  // --- Untyped retype (Section 3.5) ---
  struct Retype {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // cond: args invalid?
    BlockId bad = kNoBlock;
    BlockId book1 = kNoBlock;        // "before" only: early state update
    BlockId resume = kNoBlock;       // "after" only: retype in progress?
    BlockId init = kNoBlock;         // record retype; r7 = chunks
    BlockId more = kNoBlock;         // cond: r7 >= 1 (loop head)
    BlockId clear_chunk = kNoBlock;  // clear one chunk
    BlockId preempt = kNoBlock;      // preemption point ("after" only)
    BlockId preempted = kNoBlock;    // return kPreempted
    BlockId is_pd = kNoBlock;        // cond: creating a page directory?
    BlockId global_copy = kNoBlock;  // copy kernel global mappings (1 KiB)
    BlockId book = kNoBlock;       // atomic bookkeeping pass (setup)
    BlockId book_loop = kNoBlock;  // one created object per iteration
    BlockId ret = kNoBlock;
  } retype;

  // --- Capability deletion / revocation ---
  struct CapDelete {  // delete the cap in a slot
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId null = kNoBlock;     // cond: empty slot?
    BlockId final = kNoBlock;    // cond: last cap to the object?
    BlockId destroy = kNoBlock;  // call destroy_object
    BlockId check = kNoBlock;    // cond: destroy preempted?
    BlockId preempted = kNoBlock;
    BlockId unlink = kNoBlock;  // MDB remove
    BlockId ret = kNoBlock;
  } capdel;

  struct CNodeDelete {  // invocation wrapper: locate slot, delete
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // cond: index invalid?
    BlockId bad = kNoBlock;
    BlockId del = kNoBlock;  // call cap_delete
    BlockId ret = kNoBlock;
  } cnodedel;

  struct Revoke {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // cond: index invalid? (r9 = descendants)
    BlockId bad = kNoBlock;
    BlockId badged = kNoBlock;  // cond: badged endpoint cap?
    BlockId abort = kNoBlock;   // call ep_cancel_badged
    BlockId abort_check = kNoBlock;  // cond: preempted?
    BlockId loop = kNoBlock;         // cond: descendants remain? guard r9
    BlockId child = kNoBlock;        // fetch next descendant
    BlockId del = kNoBlock;          // call cap_delete
    BlockId del_check = kNoBlock;    // cond: preempted?
    BlockId preempt = kNoBlock;
    BlockId preempted = kNoBlock;
    BlockId ret = kNoBlock;
  } revoke;

  struct Mint {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId decode = kNoBlock;  // call decode_cap (source)
    BlockId chk = kNoBlock;     // cond: decode failed / dest occupied?
    BlockId err = kNoBlock;
    BlockId insert = kNoBlock;
    BlockId ret = kNoBlock;
  } mint;

  struct Destroy {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId d_ep = kNoBlock;
    BlockId d_pd = kNoBlock;
    BlockId d_pt = kNoBlock;
    BlockId d_pool = kNoBlock;
    BlockId d_frame = kNoBlock;
    BlockId d_tcb = kNoBlock;
    BlockId c_ep = kNoBlock;     // call ep_cancel_all
    BlockId c_pd = kNoBlock;     // call pd_delete (variant)
    BlockId c_pt = kNoBlock;     // call pt_delete (shadow)
    BlockId c_pool = kNoBlock;   // call asid_pool_delete (ASID)
    BlockId c_frame = kNoBlock;  // call frame_unmap
    BlockId t_tcb = kNoBlock;    // suspend
    BlockId t_deq = kNoBlock;    // call sched_dequeue
    BlockId simple = kNoBlock;   // cnode/untyped/irq: validate only
    BlockId check = kNoBlock;    // cond: preempted?
    BlockId preempted = kNoBlock;
    BlockId free = kNoBlock;  // release object
    BlockId ret = kNoBlock;
  } destroy;

  // --- Endpoint cancellation (Sections 3.3, 3.4) ---
  struct EpCancelAll {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // deactivate endpoint; r8 = queue length
    BlockId head = kNoBlock;   // cond: r8 >= 1 (loop head)
    BlockId deq = kNoBlock;    // dequeue + restart one thread
    BlockId enq = kNoBlock;    // call sched_enqueue
    BlockId preempt = kNoBlock;
    BlockId preempted = kNoBlock;
    BlockId done = kNoBlock;
    BlockId ret = kNoBlock;
  } epcall;

  struct EpCancelBadged {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId resume = kNoBlock;  // cond: abort already in progress?
    BlockId setup = kNoBlock;   // record badge/end marker/aborter
    BlockId head = kNoBlock;    // cond: nodes remain before end marker?
    BlockId check = kNoBlock;   // cond: badge match?
    BlockId remove = kNoBlock;  // dequeue + restart
    BlockId enq = kNoBlock;     // call sched_enqueue
    BlockId next = kNoBlock;
    BlockId preempt = kNoBlock;
    BlockId preempted = kNoBlock;  // store resume state on endpoint
    BlockId done = kNoBlock;       // clear abort state
    BlockId ret = kNoBlock;
  } epcb;

  // --- TCB / IRQ invocations ---
  struct TcbInvoke {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId d_config = kNoBlock;
    BlockId d_resume = kNoBlock;
    BlockId d_suspend = kNoBlock;
    BlockId d_setprio = kNoBlock;
    BlockId config = kNoBlock;       // ASID variant: cond (needs ASID?)
    BlockId config_asid = kNoBlock;  // call asid_alloc
    BlockId resume = kNoBlock;
    BlockId resume_enq = kNoBlock;  // call sched_enqueue
    BlockId suspend = kNoBlock;
    BlockId suspend_deq = kNoBlock;  // call sched_dequeue
    BlockId setprio = kNoBlock;
    BlockId sp_deq = kNoBlock;  // call sched_dequeue
    BlockId sp_enq = kNoBlock;  // call sched_enqueue
    BlockId bad = kNoBlock;
    BlockId ret = kNoBlock;
  } tcb;

  struct IrqInvoke {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId d_set = kNoBlock;  // cond: SetHandler?
    BlockId set = kNoBlock;
    BlockId ack = kNoBlock;
    BlockId ret = kNoBlock;
  } irqinv;

  // --- Address spaces (Section 3.6) ---
  struct AsidAlloc {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // r4 = 1024
    BlockId loop = kNoBlock;   // scan pool; guard r4 >= 1
    BlockId chk = kNoBlock;    // cond: found?
    BlockId found = kNoBlock;
    BlockId fail = kNoBlock;
  } asid_alloc;

  struct AsidPoolDelete {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // r4 = 1024
    BlockId loop = kNoBlock;   // clear one entry + TLB flush
    BlockId ret = kNoBlock;
  } pool_del;

  struct PdDeleteAsid {  // O(1) lazy deletion via the ASID table
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;
    BlockId ret = kNoBlock;
  } pdda;

  struct FrameMap {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // cond: target invalid?
    BlockId bad = kNoBlock;
    BlockId set = kNoBlock;  // write PTE (+ shadow back-pointer)
    BlockId ret = kNoBlock;
  } fmap;

  struct FrameUnmap {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // cond: stale / not mapped?
    BlockId stale = kNoBlock;  // nothing to do (harmless dangling ref)
    BlockId clear = kNoBlock;
    BlockId ret = kNoBlock;
  } funmap;

  struct PtMap {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // cond: slot occupied / invalid?
    BlockId bad = kNoBlock;
    BlockId set = kNoBlock;
    BlockId ret = kNoBlock;
  } ptmap;

  struct PtDelete {  // shadow variant
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // r5 = entries to scan
    BlockId head = kNoBlock;   // cond: guard r5 >= 1 (loop head)
    BlockId unmap = kNoBlock;  // clear PTE + shadow + frame cap
    BlockId preempt = kNoBlock;
    BlockId preempted = kNoBlock;
    BlockId done = kNoBlock;  // unlink from PD
    BlockId ret = kNoBlock;
  } ptdel;

  struct PdDeleteShadow {
    FuncId fn = kNoFunc;
    BlockId entry = kNoBlock;  // r6 = user entries to scan
    BlockId head = kNoBlock;   // cond: guard r6 >= 1 (loop head)
    BlockId read = kNoBlock;   // cond: entry present?
    BlockId is_sec = kNoBlock; // cond: section mapping?
    BlockId sec = kNoBlock;    // unmap section frame
    BlockId pt = kNoBlock;     // call pt_delete
    BlockId ptchk = kNoBlock;  // cond: pt_delete preempted?
    BlockId next = kNoBlock;
    BlockId preempt = kNoBlock;
    BlockId preempted = kNoBlock;
    BlockId done = kNoBlock;  // TLB flush
    BlockId ret = kNoBlock;
  } pdds;
};

struct KernelImage {
  Program prog;
  KernelConfig config;
  KernelSyms syms;
  KernelBlocks b;

  Addr SymAddr(SymId s) const { return prog.symbol(s).address; }
};

// Builds and lays out the kernel image for |config|.
std::unique_ptr<KernelImage> BuildKernelImage(const KernelConfig& config);

// Process-wide memoisation of BuildKernelImage. Image construction is
// deterministic in |config| and the result is immutable, so every Kernel
// with an equal config can share one image — and, through it, one Program
// and one compiled-program cache — instead of re-building and re-compiling
// per System (sweep and campaign workloads construct hundreds of Systems
// per run). Thread-safe; the handful of distinct configs a process ever
// uses stay cached until exit.
std::shared_ptr<const KernelImage> SharedKernelImage(const KernelConfig& config);

// Selects the I- and D-cache lines pinned by the Section 4 configuration:
// the interrupt-delivery path's code plus hot globals and the top of the
// kernel stack. Shared by the kernel runtime (which locks them into the
// modelled caches) and the WCET analyzer (which treats them as always-hit).
struct PinnedLines {
  std::vector<Addr> ilines;
  std::vector<Addr> dlines;
};
PinnedLines SelectPinnedLines(const KernelImage& image, std::uint32_t line_bytes,
                              std::size_t iline_capacity);

}  // namespace pmk

#endif  // SRC_KERNEL_IMAGE_H_
