// Runtime checks of the kernel invariants the seL4 proof maintains
// (Section 2.2) plus the new invariants the paper's changes introduce:
// Benno scheduling's "run queue holds only runnable threads" (Section 3.1)
// and "the bitmap precisely reflects the run queues" (Section 3.2).
//
// CheckInvariants() may be called at any kernel-idle instant (between kernel
// entries); the property tests call it at every preemption point boundary.

#include <set>
#include <sstream>
#include <stdexcept>

#include "src/kernel/kernel.h"

namespace pmk {

namespace {
[[noreturn]] void Violate(const std::string& what) {
  throw std::logic_error("kernel invariant violated: " + what);
}
}  // namespace

void Kernel::CheckInvariants() const {
  // --- The running thread is runnable (or the idle thread) ---
  if (current_ != nullptr && current_ != idle_ &&
      !(current_->state == ThreadState::kRunning || current_->state == ThreadState::kRestart)) {
    Violate("current thread is not runnable: " +
            std::string(ThreadStateName(current_->state)));
  }

  // --- Run-queue well-formedness and scheduling invariants ---
  std::set<const TcbObj*> queued;
  for (std::uint32_t prio = 0; prio < KernelConfig::kNumPriorities; ++prio) {
    const TcbObj* prev = nullptr;
    for (const TcbObj* t = queues_[prio].head; t != nullptr; t = t->sched_next) {
      if (t->sched_prev != prev) {
        Violate("run queue back-pointer broken at prio " + std::to_string(prio));
      }
      if (t->prio != prio) {
        Violate("thread queued at wrong priority");
      }
      if (!t->in_run_queue) {
        Violate("queued thread not flagged in_run_queue");
      }
      if (!queued.insert(t).second) {
        Violate("thread appears twice in run queues (circular link?)");
      }
      if (config_.scheduler == SchedulerKind::kBenno &&
          !(t->state == ThreadState::kRunning || t->state == ThreadState::kRestart)) {
        Violate("Benno invariant: non-runnable thread on the run queue: " +
                std::string(ThreadStateName(t->state)));
      }
      prev = t;
    }
    if (queues_[prio].tail != prev) {
      Violate("run queue tail pointer broken at prio " + std::to_string(prio));
    }
    // Bitmap agreement (Section 3.2).
    if (config_.scheduler_bitmap) {
      const bool has = queues_[prio].head != nullptr;
      const bool l2 = (bitmap_l2_[prio / 32] >> (prio % 32)) & 1u;
      if (has != l2) {
        Violate("bitmap L2 disagrees with queue at prio " + std::to_string(prio));
      }
    }
  }
  if (config_.scheduler_bitmap) {
    for (std::uint32_t bucket = 0; bucket < 8; ++bucket) {
      const bool l1 = (bitmap_l1_ >> bucket) & 1u;
      if (l1 != (bitmap_l2_[bucket] != 0)) {
        Violate("bitmap L1 disagrees with L2 bucket " + std::to_string(bucket));
      }
    }
  }

  // --- Per-thread state consistency; all-runnable-threads-reachable ---
  for (const auto& [base, obj] : objs_.objects()) {
    const TcbObj* t = dynamic_cast<const TcbObj*>(obj.get());
    if (t == nullptr) {
      continue;
    }
    const bool runnable =
        t->state == ThreadState::kRunning || t->state == ThreadState::kRestart;
    if (t->in_run_queue != (queued.count(t) != 0)) {
      Violate("in_run_queue flag disagrees with queue membership");
    }
    // "All runnable threads are either on the run queue or currently
    // executing" — holds for both schedulers; a pending direct-switch target
    // is about to become current and is exempt mid-entry.
    if (runnable && !t->in_run_queue && t != current_ && t != sched_action_) {
      Violate("runnable thread neither queued nor current");
    }
    const bool blocked = t->state == ThreadState::kBlockedOnSend ||
                         t->state == ThreadState::kBlockedOnRecv;
    if (blocked && t->blocked_on == 0) {
      Violate("blocked thread not on any endpoint");
    }
    if (!blocked && t->blocked_on != 0) {
      Violate("non-blocked thread still linked to an endpoint");
    }
    if (blocked && t->in_run_queue && config_.scheduler == SchedulerKind::kBenno) {
      Violate("Benno invariant: blocked thread in run queue");
    }
  }

  // --- Endpoint queues ---
  for (const auto& [base, obj] : objs_.objects()) {
    const EndpointObj* ep = dynamic_cast<const EndpointObj*>(obj.get());
    if (ep == nullptr) {
      continue;
    }
    std::uint32_t n = 0;
    const TcbObj* prev = nullptr;
    std::set<const TcbObj*> seen;
    for (const TcbObj* t = ep->q_head; t != nullptr; t = t->ep_next) {
      if (t->ep_prev != prev) {
        Violate("endpoint queue back-pointer broken");
      }
      if (!seen.insert(t).second) {
        Violate("endpoint queue circular");
      }
      if (t->blocked_on != ep->base) {
        Violate("queued thread's blocked_on does not name this endpoint");
      }
      const ThreadState expect = ep->qstate == EndpointObj::QState::kSend
                                     ? ThreadState::kBlockedOnSend
                                     : ThreadState::kBlockedOnRecv;
      if (t->state != expect) {
        Violate("endpoint queue member in wrong state: " +
                std::string(ThreadStateName(t->state)));
      }
      prev = t;
      n++;
    }
    if (ep->q_tail != prev) {
      Violate("endpoint queue tail broken");
    }
    if (n != ep->q_len) {
      Violate("endpoint q_len bookkeeping wrong");
    }
    if (n == 0 && ep->qstate != EndpointObj::QState::kIdle) {
      Violate("empty endpoint queue not idle");
    }
    if (n != 0 && ep->qstate == EndpointObj::QState::kIdle) {
      Violate("idle endpoint with queued threads");
    }
    if (ep->abort.valid) {
      if (!ep->active ? false : true) {
        // A badged abort may be in progress on an active endpoint; its
        // resume pointer must be in the queue or null.
        if (ep->abort.resume != nullptr && seen.count(ep->abort.resume) == 0) {
          Violate("badged-abort resume pointer not in endpoint queue");
        }
      }
    }
  }

  // --- MDB (derivation tree) well-formedness ---
  for (const auto& [base, obj] : objs_.objects()) {
    const CNodeObj* cn = dynamic_cast<const CNodeObj*>(obj.get());
    if (cn == nullptr) {
      continue;
    }
    for (const CapSlot& slot : cn->slots) {
      if (!Mdb::WellFormedAt(&slot)) {
        Violate("MDB link structure broken in CNode at " + std::to_string(cn->base));
      }
      // Caps must reference live objects (untyped regions exempt: their
      // object identity is the region itself).
      if (!slot.IsNull() && slot.cap.type != ObjType::kNull) {
        if (objs_.Find(slot.cap.obj) == nullptr) {
          std::ostringstream os;
          os << "cap to dead object: " << ObjTypeName(slot.cap.type) << " at " << slot.cap.obj;
          Violate(os.str());
        }
      }
    }
  }

  // --- Page-table shadow consistency (Section 3.6) ---
  if (config_.vspace == VSpaceKind::kShadow) {
    for (const auto& [base, obj] : objs_.objects()) {
      const PageTableObj* pt = dynamic_cast<const PageTableObj*>(obj.get());
      if (pt == nullptr) {
        continue;
      }
      std::uint32_t mapped = 0;
      for (std::uint32_t i = 0; i < PageTableObj::kEntries; ++i) {
        if (pt->pte[i] != 0) {
          mapped++;
          if (i < pt->lowest_mapped) {
            Violate("page-table lowest_mapped above a live entry");
          }
          if (pt->shadow[i] == nullptr) {
            Violate("mapped PTE without shadow back-pointer");
          }
          if (pt->shadow[i]->cap.obj != pt->pte[i]) {
            Violate("shadow back-pointer names the wrong frame cap");
          }
        } else if (pt->shadow[i] != nullptr) {
          Violate("empty PTE with stale shadow back-pointer");
        }
      }
      if (mapped != pt->mapped_count) {
        Violate("page-table mapped_count bookkeeping wrong");
      }
    }
  }

  // --- Untyped watermarks ---
  for (const auto& [base, ut] : objs_.untypeds()) {
    if (ut->watermark < ut->base || ut->watermark > ut->End()) {
      Violate("untyped watermark outside its region");
    }
  }
}

}  // namespace pmk
