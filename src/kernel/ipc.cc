// IPC: endpoint queues, message/cap transfer, the atomic send-receive
// operation, the fastpath (Section 6.1) and interrupt notification delivery.

#include <cassert>

#include "src/kernel/kernel.h"
#include "src/obs/trace_sink.h"

namespace pmk {

void Kernel::EpEnqueue(EndpointObj* ep, TcbObj* t, EndpointObj::QState as) {
  assert(ep->qstate == EndpointObj::QState::kIdle || ep->qstate == as);
  ep->qstate = as;
  t->ep_prev = ep->q_tail;
  t->ep_next = nullptr;
  if (ep->q_tail != nullptr) {
    ep->q_tail->ep_next = t;
  } else {
    ep->q_head = t;
  }
  ep->q_tail = t;
  ep->q_len++;
  t->blocked_on = ep->base;
}

void Kernel::EpRemove(EndpointObj* ep, TcbObj* t) {
  if (t->ep_prev != nullptr) {
    t->ep_prev->ep_next = t->ep_next;
  } else {
    ep->q_head = t->ep_next;
  }
  if (t->ep_next != nullptr) {
    t->ep_next->ep_prev = t->ep_prev;
  } else {
    ep->q_tail = t->ep_prev;
  }
  t->ep_prev = t->ep_next = nullptr;
  t->blocked_on = 0;
  ep->q_len--;
  if (ep->q_head == nullptr) {
    ep->qstate = EndpointObj::QState::kIdle;
  }
}

OpStatus Kernel::DoTransfer(TcbObj* from, TcbObj* to, std::uint32_t msg_len,
                            const SyscallArgs& args, bool grant) {
  const auto& t = b().xfer;
  x(t.entry);
  T(from->base + 48);
  T(to->base + 48, /*write=*/true);
  exec_.SetReg(1, msg_len);

  // Message registers: the first 8 are stored functionally; the remainder
  // (up to kMaxMsgWords) live in the IPC buffer and are charged only.
  for (std::uint32_t w = 0; w < msg_len; ++w) {
    x(t.loop);
    T(from->base + 64 + w * 8);
    T(to->base + 64 + w * 8, /*write=*/true);
    if (w < to->mrs.size()) {
      to->mrs[w] = from->mrs[w];
    }
  }
  to->msg_len = msg_len;

  x(t.caps_check);
  T(from->base + 56);
  const std::uint32_t ncaps = grant ? args.n_extra : 0;
  exec_.SetReg(2, ncaps);

  for (std::uint32_t i = 0; i < ncaps; ++i) {
    x(t.cap_one);
    CapSlot* src = DecodeCap(from, args.extra_caps[i]);
    x(t.cap_ins);
    if (src != nullptr) {
      // Receive slot: a fixed slot in the receiver's root CNode. Transfer
      // only into an empty slot.
      CNodeObj* root = objs_.Get<CNodeObj>(to->cspace_root);
      if (root != nullptr) {
        const std::uint32_t dest = (to->recv_slot + i) % root->NumSlots();
        CapSlot* dslot = &root->slots[dest];
        T(dslot->addr, /*write=*/true);
        T(src->addr);
        if (dslot->IsNull()) {
          dslot->cap = src->cap;
          Mdb::InsertChild(src, dslot);
          T(src->addr, /*write=*/true);
        }
      }
    }
  }
  x(t.done);
  return OpStatus::kDone;
}

OpStatus Kernel::IpcSend(EndpointObj* ep, const Cap& ep_cap, bool is_call,
                         const SyscallArgs& args) {
  const auto& i = b().send;
  x(i.entry);
  T(ep->base);
  T(current_->base);
  x(i.active);
  if (ep == nullptr || !ep->active) {
    x(i.err);
    T(current_->base, /*write=*/true);
    current_->last_error = KError::kDeleted;
    return OpStatus::kDone;
  }
  x(i.has_recv);
  T(ep->base);
  if (ep->qstate == EndpointObj::QState::kRecv && ep->q_head != nullptr) {
    x(i.deq);
    TcbObj* receiver = ep->q_head;
    T(receiver->base, /*write=*/true);
    T(ep->base, /*write=*/true);
    EpRemove(ep, receiver);
    receiver->state = ThreadState::kRunning;
    receiver->recv_badge = ep_cap.badge;

    x(i.xfer);
    DoTransfer(current_, receiver, args.msg_len, args, ep_cap.rights.grant);

    x(i.wake);
    AttemptSwitch(receiver);

    x(i.reply_setup);
    if (is_call) {
      T(receiver->base, /*write=*/true);
      T(current_->base, /*write=*/true);
      receiver->reply_to = current_;
      x(i.block_caller);
      T(current_->base, /*write=*/true);
      current_->state = ThreadState::kBlockedOnReply;
      if (sched_action_ == nullptr) {
        choose_new_ = true;  // caller blocked; if no direct switch, pick anew
      }
    } else {
      x(i.no_reply);
    }
    x(i.ret);
    return OpStatus::kDone;
  }
  // No receiver: block the sender on the endpoint.
  x(i.queue);
  T(ep->base, /*write=*/true);
  T(current_->base, /*write=*/true);
  if (ep->q_tail != nullptr) {
    T(ep->q_tail->base, /*write=*/true);
  }
  current_->state = ThreadState::kBlockedOnSend;
  current_->blocked_badge = ep_cap.badge;
  current_->blocked_is_call = is_call;
  current_->msg_len = args.msg_len;
  EpEnqueue(ep, current_, EndpointObj::QState::kSend);
  choose_new_ = true;
  x(i.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::IpcRecv(EndpointObj* ep, const SyscallArgs& args) {
  const auto& i = b().recv;
  x(i.entry);
  T(ep->base);
  T(current_->base);
  x(i.active);
  if (ep == nullptr || !ep->active) {
    x(i.err);
    T(current_->base, /*write=*/true);
    current_->last_error = KError::kDeleted;
    return OpStatus::kDone;
  }
  x(i.notif);
  T(ep->base);
  if (ep->pending_notifications != 0) {
    x(i.notif_deliver);
    T(current_->base, /*write=*/true);
    const int bit = std::countr_zero(ep->pending_notifications);
    ep->pending_notifications &= ep->pending_notifications - 1;
    current_->recv_badge = static_cast<std::uint64_t>(bit);
    current_->msg_len = 0;
    return OpStatus::kDone;
  }
  x(i.has_send);
  T(ep->base);
  if (ep->qstate == EndpointObj::QState::kSend && ep->q_head != nullptr) {
    x(i.deq);
    TcbObj* sender = ep->q_head;
    T(sender->base, /*write=*/true);
    T(ep->base, /*write=*/true);
    EpRemove(ep, sender);
    current_->recv_badge = sender->blocked_badge;

    x(i.xfer);
    SyscallArgs sender_args;  // queued senders transfer message registers only
    DoTransfer(sender, current_, sender->msg_len, sender_args, /*grant=*/false);

    x(i.sender_call);
    T(sender->base);
    if (sender->blocked_is_call) {
      x(i.sender_set);
      T(sender->base, /*write=*/true);
      T(current_->base, /*write=*/true);
      sender->state = ThreadState::kBlockedOnReply;
      current_->reply_to = sender;
    } else {
      sender->state = ThreadState::kRunning;
      x(i.sender_wake);
      AttemptSwitch(sender);
    }
    x(i.ret);
    return OpStatus::kDone;
  }
  // Nobody sending: block the receiver.
  x(i.queue);
  T(ep->base, /*write=*/true);
  T(current_->base, /*write=*/true);
  if (ep->q_tail != nullptr) {
    T(ep->q_tail->base, /*write=*/true);
  }
  current_->state = ThreadState::kBlockedOnRecv;
  current_->msg_len = args.msg_len;
  EpEnqueue(ep, current_, EndpointObj::QState::kRecv);
  choose_new_ = true;
  x(i.ret);
  return OpStatus::kDone;
}

void Kernel::DoReply(const SyscallArgs& args) {
  const auto& r = b().reply;
  x(r.entry);
  T(current_->base);
  TcbObj* caller = current_->reply_to;
  if (caller == nullptr || caller->state != ThreadState::kBlockedOnReply) {
    x(r.none);
    return;
  }
  current_->reply_to = nullptr;
  x(r.xfer);
  DoTransfer(current_, caller, args.msg_len, args, /*grant=*/false);
  caller->state = ThreadState::kRunning;
  x(r.wake);
  AttemptSwitch(caller);
  x(r.ret);
  T(caller->base, /*write=*/true);
}

bool Kernel::Fastpath(std::uint32_t cptr, const SyscallArgs& args) {
  const auto& fp = b().fast;
  x(fp.entry);
  // One-level decode (the caller verified the cspace shape).
  CNodeObj* cn = objs_.Get<CNodeObj>(current_->cspace_root);
  const std::uint32_t index = cptr & ((1u << cn->radix_bits) - 1);
  CapSlot* slot = &cn->slots[index];
  T(slot->addr);
  EndpointObj* ep = objs_.Get<EndpointObj>(slot->cap.obj);
  T(ep->base);
  TcbObj* receiver = ep->q_head;
  bool ok = ep->active && ep->qstate == EndpointObj::QState::kRecv && receiver != nullptr;
  if (ok) {
    T(receiver->base);
    ok = receiver->prio >= current_->prio;
  }
  if (!ok) {
    x(fp.miss);
    return false;
  }
  x(fp.do_it);
  T(ep->base, /*write=*/true);
  T(receiver->base, /*write=*/true);
  EpRemove(ep, receiver);
  for (std::uint32_t w = 0; w < args.msg_len && w < 4; ++w) {
    T(receiver->base + 64 + w * 8, /*write=*/true);
    receiver->mrs[w] = current_->mrs[w];
  }
  receiver->msg_len = args.msg_len;
  receiver->recv_badge = slot->cap.badge;
  receiver->state = ThreadState::kRunning;
  receiver->reply_to = current_;
  current_->state = ThreadState::kBlockedOnReply;
  T(current_->base, /*write=*/true);
  // Direct switch, bypassing the scheduler entirely.
  current_ = receiver;
  sched_action_ = nullptr;
  choose_new_ = false;
  fastpath_hits_++;
  x(fp.hit);
  T(receiver->base, /*write=*/true);
  return true;
}

void Kernel::NotifyEp(EndpointObj* ep, std::uint64_t badge) {
  const auto& n = b().ntf;
  x(n.entry);
  T(ep->base);
  T(current_->base);
  x(n.waiter);
  if (ep->qstate == EndpointObj::QState::kRecv && ep->q_head != nullptr) {
    x(n.deq);
    TcbObj* waiter = ep->q_head;
    T(waiter->base, /*write=*/true);
    T(ep->base, /*write=*/true);
    EpRemove(ep, waiter);
    waiter->state = ThreadState::kRunning;
    waiter->recv_badge = badge;
    waiter->msg_len = 0;
    x(n.wake);
    AttemptSwitch(waiter);
  } else {
    x(n.pend);
    T(ep->base, /*write=*/true);
    ep->pending_notifications |= (std::uint64_t{1} << (badge % 64));
  }
  x(n.ret);
}

void Kernel::HandleInterruptImpl() {
  const auto& h = b().hirq;
  x(h.entry);
  const auto line = machine_->irq().PendingLine();
  x(h.valid);
  // Acknowledges |ln| and records the observed response latency, both in the
  // max-only kernel log and (when a sink is attached) as a kIrqDeliver event
  // paired with the controller's kIrqAssert.
  const auto ack = [&](std::uint32_t ln) {
    // |ln| came from PendingLine() this entry, so the ack cannot be spurious;
    // value_or keeps the latency well-defined even if a model bug breaks that.
    const Cycles asserted = machine_->irq().Acknowledge(ln).value_or(machine_->Now());
    const Cycles latency = machine_->Now() - asserted;
    irq_latencies_.push_back(latency);
    if (TraceSink* sink = exec_.trace_sink()) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kIrqDeliver;
      ev.cycle = machine_->Now();
      ev.name = "irq";
      ev.id = ln;
      ev.arg0 = asserted;
      ev.arg1 = latency;
      sink->OnEvent(ev);
    }
  };
  const bool timeslicing = config_.kernel_timer_line != KernelConfig::kNoKernelTimer;
  if (timeslicing && line.has_value() && *line == config_.kernel_timer_line) {
    // The kernel's own preemption timer: timeslice accounting (round-robin
    // among equal priorities). The line stays unmasked; it fires again next
    // period.
    ack(*line);
    x(h.d_timer);
    x(h.tick);
    T(current_->base, /*write=*/true);
    if (current_ != idle_ && current_->timeslice > 0 && --current_->timeslice == 0) {
      current_->timeslice = config_.timeslice_ticks;
      choose_new_ = true;  // requeue at the tail; pick the next head
    }
    x(h.ret);
    return;
  }
  if (line.has_value() && irq_bindings_[*line] != 0) {
    if (timeslicing) {
      x(h.d_timer);  // checked and found to be a device interrupt
    }
    ack(*line);
    machine_->irq().Mask(*line);
    x(h.binding);
    T(image_->SymAddr(image_->syms.irq_bindings) + static_cast<Addr>(*line) * 8);
    EndpointObj* ep = objs_.Get<EndpointObj>(irq_bindings_[*line]);
    x(h.notify);
    NotifyEp(ep, *line + 1);
  } else {
    if (line.has_value()) {
      ack(*line);
      machine_->irq().Mask(*line);
    }
    x(h.spurious);
  }
  x(h.ret);
}

}  // namespace pmk
