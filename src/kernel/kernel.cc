#include "src/kernel/kernel.h"

#include <cassert>
#include <stdexcept>

#include "src/hw/hotpath.h"
#include "src/kernel/error.h"
#include "src/obs/trace_sink.h"

namespace pmk {

namespace {
// Physical memory available for direct-setup objects (above the kernel).
constexpr Addr kUserMemBase = 0x0100'0000;
constexpr Addr kUserMemEnd = 0x0800'0000;  // 128 MiB board

Addr AlignUp(Addr a, Addr align) { return (a + align - 1) & ~(align - 1); }

// The seed implementation built the kernel image per Kernel; the process-wide
// SharedKernelImage cache is one of the measured optimisations, so the
// reference baseline keeps the per-instance build (identical bytes either
// way — image construction is deterministic in the config).
std::shared_ptr<const KernelImage> AcquireImage(const KernelConfig& config) {
  if (hotpath::ReferenceMode()) {
    return BuildKernelImage(config);
  }
  return SharedKernelImage(config);
}
}  // namespace

Kernel::Kernel(const KernelConfig& config, Machine* machine)
    : config_(config),
      machine_(machine),
      image_(AcquireImage(config)),
      exec_(&image_->prog, machine),
      alloc_next_(kUserMemBase) {
  // The idle thread is not an allocated kernel object; it exists from boot.
  idle_storage_ = std::make_unique<TcbObj>();
  idle_storage_->type = ObjType::kTcb;
  idle_storage_->base = 0;
  idle_storage_->size_bits = 9;
  idle_storage_->state = ThreadState::kIdle;
  idle_ = idle_storage_.get();
  current_ = idle_;
}

// ---------- Direct (uncharged) construction ----------

Addr Kernel::DirectAlloc(std::uint64_t size) {
  Addr a = AlignUp(alloc_next_, size);
  if (a + size > kUserMemEnd) {
    throw KernelError(KernelFault::kOutOfPhysicalMemory,
                      "DirectAlloc: out of modelled physical memory");
  }
  alloc_next_ = a + size;
  return a;
}

UntypedObj* Kernel::DirectUntyped(std::uint8_t size_bits) {
  auto o = std::make_unique<UntypedObj>();
  o->type = ObjType::kUntyped;
  o->size_bits = size_bits;
  o->base = DirectAlloc(std::uint64_t{1} << size_bits);
  o->watermark = o->base;
  return static_cast<UntypedObj*>(objs_.Insert(std::move(o)));
}

CNodeObj* Kernel::DirectCNode(std::uint8_t radix_bits, std::uint8_t guard_bits,
                              std::uint32_t guard_value) {
  auto o = std::make_unique<CNodeObj>();
  o->type = ObjType::kCNode;
  o->radix_bits = radix_bits;
  o->guard_bits = guard_bits;
  o->guard_value = guard_value;
  o->size_bits = ObjSizeBits(ObjType::kCNode, radix_bits, config_);
  o->base = DirectAlloc(o->SizeBytes());
  o->slots.resize(o->NumSlots());
  CNodeObj* cn = static_cast<CNodeObj*>(objs_.Insert(std::move(o)));
  for (std::uint32_t i = 0; i < cn->NumSlots(); ++i) {
    cn->slots[i].addr = cn->SlotAddr(i);
  }
  return cn;
}

TcbObj* Kernel::DirectTcb(std::uint8_t prio, CNodeObj* cspace) {
  auto o = std::make_unique<TcbObj>();
  o->type = ObjType::kTcb;
  o->size_bits = ObjSizeBits(ObjType::kTcb, 0, config_);
  o->base = DirectAlloc(o->SizeBytes());
  o->prio = prio;
  o->timeslice = config_.timeslice_ticks;
  o->cspace_root = cspace != nullptr ? cspace->base : 0;
  return static_cast<TcbObj*>(objs_.Insert(std::move(o)));
}

EndpointObj* Kernel::DirectEndpoint() {
  auto o = std::make_unique<EndpointObj>();
  o->type = ObjType::kEndpoint;
  o->size_bits = ObjSizeBits(ObjType::kEndpoint, 0, config_);
  o->base = DirectAlloc(o->SizeBytes());
  return static_cast<EndpointObj*>(objs_.Insert(std::move(o)));
}

FrameObj* Kernel::DirectFrame(std::uint8_t size_bits) {
  auto o = std::make_unique<FrameObj>();
  o->type = ObjType::kFrame;
  o->size_bits = size_bits;
  o->base = DirectAlloc(std::uint64_t{1} << size_bits);
  return static_cast<FrameObj*>(objs_.Insert(std::move(o)));
}

PageTableObj* Kernel::DirectPageTable() {
  auto o = std::make_unique<PageTableObj>();
  o->type = ObjType::kPageTable;
  o->size_bits = ObjSizeBits(ObjType::kPageTable, 0, config_);
  o->base = DirectAlloc(o->SizeBytes());
  return static_cast<PageTableObj*>(objs_.Insert(std::move(o)));
}

PageDirObj* Kernel::DirectPageDir() {
  auto o = std::make_unique<PageDirObj>();
  o->type = ObjType::kPageDir;
  o->size_bits = ObjSizeBits(ObjType::kPageDir, 0, config_);
  o->base = DirectAlloc(o->SizeBytes());
  o->global_mappings_present = true;
  return static_cast<PageDirObj*>(objs_.Insert(std::move(o)));
}

AsidPoolObj* Kernel::DirectAsidPool() {
  auto o = std::make_unique<AsidPoolObj>();
  o->type = ObjType::kAsidPool;
  o->size_bits = ObjSizeBits(ObjType::kAsidPool, 0, config_);
  o->base = DirectAlloc(o->SizeBytes());
  return static_cast<AsidPoolObj*>(objs_.Insert(std::move(o)));
}

IrqHandlerObj* Kernel::DirectIrqHandler(std::uint32_t line) {
  auto o = std::make_unique<IrqHandlerObj>();
  o->type = ObjType::kIrqHandler;
  o->size_bits = ObjSizeBits(ObjType::kIrqHandler, 0, config_);
  o->base = DirectAlloc(o->SizeBytes());
  o->line = line;
  return static_cast<IrqHandlerObj*>(objs_.Insert(std::move(o)));
}

CapSlot* Kernel::DirectCap(CNodeObj* cn, std::uint32_t index, Cap cap, CapSlot* parent) {
  if (index >= cn->NumSlots()) {
    throw KernelError(KernelFault::kCapIndexOutOfRange, "DirectCap: index out of range");
  }
  CapSlot* slot = &cn->slots[index];
  if (!slot->IsNull()) {
    throw KernelError(KernelFault::kCapSlotOccupied, "DirectCap: slot occupied");
  }
  slot->cap = cap;
  if (parent != nullptr) {
    Mdb::InsertChild(parent, slot);
  }
  return slot;
}

void Kernel::DirectResume(TcbObj* t) {
  t->state = ThreadState::kRunning;
  if (!t->in_run_queue && t != current_) {
    QueuePushBack(t);
  }
}

void Kernel::DirectBlockOnSend(TcbObj* t, EndpointObj* ep, std::uint64_t badge, bool is_call,
                               bool leave_in_run_queue) {
  if (t->in_run_queue && !leave_in_run_queue) {
    QueueRemove(t);
  }
  t->state = ThreadState::kBlockedOnSend;
  t->blocked_badge = badge;
  t->blocked_is_call = is_call;
  EpEnqueue(ep, t, EndpointObj::QState::kSend);
}

void Kernel::DirectBlockOnRecv(TcbObj* t, EndpointObj* ep) {
  if (t->in_run_queue) {
    QueueRemove(t);
  }
  t->state = ThreadState::kBlockedOnRecv;
  EpEnqueue(ep, t, EndpointObj::QState::kRecv);
}

void Kernel::DirectUnblock(TcbObj* t) {
  if (t->blocked_on != 0) {
    EndpointObj* ep = objs_.Get<EndpointObj>(t->blocked_on);
    if (ep != nullptr) {
      EpRemove(ep, t);
    }
  }
  t->state = ThreadState::kRunning;
  if (!t->in_run_queue && t != current_) {
    QueuePushBack(t);
  }
}

void Kernel::DirectSetCurrent(TcbObj* t) {
  // Keep the outgoing thread schedulable (Benno keeps current off-queue).
  if (current_ != nullptr && current_ != idle_ && current_ != t && Runnable(current_) &&
      !current_->in_run_queue) {
    QueuePushBack(current_);
  }
  if (t->in_run_queue && config_.scheduler == SchedulerKind::kBenno) {
    QueueRemove(t);
  }
  t->state = ThreadState::kRunning;
  current_ = t;
  // Lazy scheduling keeps the running thread in its run queue.
  if (config_.scheduler == SchedulerKind::kLazy && !t->in_run_queue) {
    QueuePushBack(t);
  }
}

void Kernel::DirectBindIrq(std::uint32_t line, EndpointObj* ep) {
  if (line >= InterruptController::kNumLines) {
    throw KernelError(KernelFault::kBadIrqLine, "DirectBindIrq: line out of range");
  }
  irq_bindings_[line] = ep != nullptr ? ep->base : 0;
  machine_->irq().Unmask(line);
}

void Kernel::DirectMapPageTable(PageDirObj* pd, std::uint32_t pd_index, PageTableObj* pt,
                                CapSlot* pt_slot) {
  if (pd_index >= PageDirObj::kUserEntries) {
    throw KernelError(KernelFault::kBadDirectMapping,
                      "DirectMapPageTable: index in kernel region");
  }
  pd->pde[pd_index] = pt->base;
  pd->is_section[pd_index] = false;
  pd->shadow[pd_index] = pt_slot;
  pd->mapped_count++;
  pd->lowest_mapped = std::min(pd->lowest_mapped, pd_index);
  pt->mapped_in_pd = true;
  pt->parent_pd = pd->base;
  pt->pd_index = pd_index;
}

void Kernel::DirectMapFrame(PageDirObj* pd, Addr vaddr, FrameObj* frame, CapSlot* frame_slot) {
  const std::uint32_t pd_index = static_cast<std::uint32_t>(vaddr >> 20);
  if (frame->size_bits >= 20) {
    pd->pde[pd_index] = frame->base;
    pd->is_section[pd_index] = true;
    pd->shadow[pd_index] = frame_slot;
    pd->mapped_count++;
    pd->lowest_mapped = std::min(pd->lowest_mapped, pd_index);
  } else {
    PageTableObj* pt = objs_.Get<PageTableObj>(pd->pde[pd_index]);
    if (pt == nullptr || pd->is_section[pd_index]) {
      throw KernelError(KernelFault::kBadDirectMapping, "DirectMapFrame: no page table at vaddr");
    }
    const std::uint32_t pt_index = static_cast<std::uint32_t>((vaddr >> 12) & 0xFF);
    pt->pte[pt_index] = frame->base;
    pt->shadow[pt_index] = frame_slot;
    pt->mapped_count++;
    pt->lowest_mapped = std::min(pt->lowest_mapped, pt_index);
  }
  frame->mapped = true;
  frame->mapped_pd = pd->base;
  frame->vaddr = vaddr;
  if (config_.vspace == VSpaceKind::kAsid) {
    frame->asid = pd->asid;
  }
}

void Kernel::DirectRegisterAsidPool(AsidPoolObj* pool) { asid_pool_ = pool->base; }

void Kernel::DirectAssignAsid(PageDirObj* pd) {
  AsidPoolObj* pool = objs_.Get<AsidPoolObj>(asid_pool_);
  if (pool == nullptr) {
    throw KernelError(KernelFault::kNoAsidPool, "DirectAssignAsid: no ASID pool registered");
  }
  for (std::uint32_t i = 1; i < AsidPoolObj::kEntries; ++i) {
    if (pool->pd[i] == 0) {
      pool->pd[i] = pd->base;
      pd->asid = i;
      return;
    }
  }
  throw KernelError(KernelFault::kAsidPoolExhausted, "DirectAssignAsid: pool exhausted");
}

EndpointObj* Kernel::irq_binding(std::uint32_t line) const {
  return irq_bindings_[line] != 0 ? objs_.Get<EndpointObj>(irq_bindings_[line]) : nullptr;
}

bool Kernel::PreemptPending() const { return machine_->irq().AnyPending(); }

// ---------- Capability decode (Figure 7) ----------

CapSlot* Kernel::DecodeCap(TcbObj* t, std::uint32_t cptr) {
  x(b().dec.entry);
  CNodeObj* cn = objs_.Get<CNodeObj>(t->cspace_root);
  if (cn != nullptr) {
    T(t->base + 16);  // read the cspace root cap out of the TCB
  }
  std::uint32_t bits = 32;
  CapSlot* slot = nullptr;
  bool fail = cn == nullptr;
  while (!fail) {
    x(b().dec.loop);
    T(cn->base);  // CNode header (guard / radix)
    const std::uint32_t level_bits = cn->guard_bits + cn->radix_bits;
    if (level_bits == 0 || level_bits > bits) {
      fail = true;
      break;
    }
    const std::uint32_t guard =
        (cn->guard_bits != 0)
            ? static_cast<std::uint32_t>((cptr >> (bits - cn->guard_bits)) &
                                         ((1ull << cn->guard_bits) - 1))
            : 0;
    if (guard != cn->guard_value) {
      fail = true;
      break;
    }
    const std::uint32_t index = static_cast<std::uint32_t>(
        (cptr >> (bits - level_bits)) & ((1ull << cn->radix_bits) - 1));
    slot = &cn->slots[index];
    T(slot->addr);
    bits -= level_bits;
    if (bits == 0) {
      break;
    }
    if (slot->cap.type != ObjType::kCNode) {
      fail = true;
      break;
    }
    cn = objs_.Get<CNodeObj>(slot->cap.obj);
    if (cn == nullptr) {
      fail = true;
      break;
    }
    // Loop again: taken edge of dec.loop.
  }
  x(b().dec.done);
  if (fail || slot == nullptr || slot->IsNull()) {
    x(b().dec.fail);
    return nullptr;
  }
  T(slot->addr);
  x(b().dec.ok);
  return slot;
}

// ---------- Syscall handlers ----------

OpStatus Kernel::HandleCall(std::uint32_t cptr, const SyscallArgs& args) {
  const auto& h = b().call_h;
  x(h.entry);
  x(h.decode);
  CapSlot* slot = DecodeCap(current_, cptr);
  x(h.chk);
  if (slot == nullptr) {
    x(h.err);
    current_->last_error = KError::kInvalidCap;
    return OpStatus::kDone;
  }
  x(h.type);
  if (slot->cap.type == ObjType::kEndpoint) {
    x(h.ipc);
    EndpointObj* ep = objs_.Get<EndpointObj>(slot->cap.obj);
    const OpStatus st = IpcSend(ep, slot->cap, /*is_call=*/true, args);
    x(h.ret);
    return st;
  }
  x(h.invoke);
  const OpStatus st = Invoke(slot, args);
  x(h.ret);
  return st;
}

OpStatus Kernel::HandleSend(std::uint32_t cptr, const SyscallArgs& args) {
  const auto& h = b().send_h;
  x(h.entry);
  x(h.decode);
  CapSlot* slot = DecodeCap(current_, cptr);
  x(h.chk);
  if (slot == nullptr) {
    x(h.err);
    current_->last_error = KError::kInvalidCap;
    return OpStatus::kDone;
  }
  x(h.type);
  if (slot->cap.type != ObjType::kEndpoint) {
    x(h.err);
    current_->last_error = KError::kInvalidCap;
    return OpStatus::kDone;
  }
  x(h.ipc);
  EndpointObj* ep = objs_.Get<EndpointObj>(slot->cap.obj);
  const OpStatus st = IpcSend(ep, slot->cap, /*is_call=*/false, args);
  x(h.ret);
  return st;
}

OpStatus Kernel::HandleRecv(std::uint32_t cptr, const SyscallArgs& args) {
  const auto& h = b().recv_h;
  x(h.entry);
  x(h.decode);
  CapSlot* slot = DecodeCap(current_, cptr);
  x(h.chk);
  if (slot == nullptr) {
    x(h.err);
    current_->last_error = KError::kInvalidCap;
    return OpStatus::kDone;
  }
  x(h.type);
  if (slot->cap.type != ObjType::kEndpoint) {
    x(h.err);
    current_->last_error = KError::kInvalidCap;
    return OpStatus::kDone;
  }
  x(h.ipc);
  EndpointObj* ep = objs_.Get<EndpointObj>(slot->cap.obj);
  const OpStatus st = IpcRecv(ep, args);
  x(h.ret);
  return st;
}

OpStatus Kernel::HandleReplyRecv(std::uint32_t cptr, const SyscallArgs& args) {
  const auto& h = b().rr_h;
  x(h.entry);
  x(h.reply);
  DoReply(args);
  if (config_.preemptible_send_receive) {
    // Between the send (reply) and receive phases (Sections 6.1, 8). The
    // restarted syscall's reply phase is a no-op (reply_to already cleared),
    // so only the receive phase remains.
    x(h.preempt);
    if (PreemptPending()) {
      x(h.preempted);
      return OpStatus::kPreempted;
    }
  }
  x(h.decode);
  CapSlot* slot = DecodeCap(current_, cptr);
  x(h.chk);
  if (slot == nullptr) {
    x(h.err);
    current_->last_error = KError::kInvalidCap;
    return OpStatus::kDone;
  }
  x(h.type);
  if (slot->cap.type != ObjType::kEndpoint) {
    x(h.err);
    current_->last_error = KError::kInvalidCap;
    return OpStatus::kDone;
  }
  x(h.ipc);
  EndpointObj* ep = objs_.Get<EndpointObj>(slot->cap.obj);
  const OpStatus st = IpcRecv(ep, args);
  x(h.ret);
  return st;
}

OpStatus Kernel::HandleYield() {
  const auto& y = b().yield_h;
  x(y.entry);
  T(current_->base);
  x(y.deq);
  SchedDequeue(current_);
  x(y.enq);
  SchedEnqueue(current_, /*allow_current=*/true);
  choose_new_ = true;
  x(y.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::Invoke(CapSlot* slot, const SyscallArgs& args) {
  const auto& v = b().inv;
  x(v.entry);
  T(slot->addr);

  struct Entry {
    InvLabel label;
    BlockId d;
    BlockId c;
  };
  const Entry table[] = {
      {InvLabel::kUntypedRetype, v.d_retype, v.c_retype},
      {InvLabel::kCNodeDelete, v.d_delete, v.c_delete},
      {InvLabel::kCNodeRevoke, v.d_revoke, v.c_revoke},
      {InvLabel::kCNodeMint, v.d_mint, v.c_mint},
      {InvLabel::kTcbConfigure, v.d_tcb, v.c_tcb},
      {InvLabel::kFrameMap, v.d_frame_map, v.c_frame_map},
      {InvLabel::kFrameUnmap, v.d_frame_unmap, v.c_frame_unmap},
      {InvLabel::kPageTableMap, v.d_pt_map, v.c_pt_map},
      {InvLabel::kIrqSetHandler, v.d_irq, v.c_irq},
  };
  // TCB invocations share one dispatcher slot; IRQ invocations likewise.
  auto canonical = [](InvLabel l) {
    switch (l) {
      case InvLabel::kTcbResume:
      case InvLabel::kTcbSuspend:
      case InvLabel::kTcbSetPriority:
        return InvLabel::kTcbConfigure;
      case InvLabel::kIrqAck:
        return InvLabel::kIrqSetHandler;
      case InvLabel::kCNodeCopy:
      case InvLabel::kCNodeMove:
        return InvLabel::kCNodeMint;  // same code-path shape, different MDB op
      default:
        return l;
    }
  };
  const InvLabel want = canonical(args.label);

  OpStatus st = OpStatus::kDone;
  bool handled = false;
  for (const Entry& e : table) {
    x(e.d);
    if (e.label == want) {
      x(e.c);
      switch (e.label) {
        case InvLabel::kUntypedRetype:
          st = UntypedRetype(slot, args);
          break;
        case InvLabel::kCNodeDelete:
          st = CNodeDelete(slot, args);
          break;
        case InvLabel::kCNodeRevoke:
          st = CNodeRevoke(slot, args);
          break;
        case InvLabel::kCNodeMint:
          st = CNodeMint(slot, args);
          break;
        case InvLabel::kTcbConfigure:
          st = TcbInvoke(slot, args);
          break;
        case InvLabel::kFrameMap:
          st = FrameMap(slot, args);
          break;
        case InvLabel::kFrameUnmap:
          st = FrameUnmap(slot);
          break;
        case InvLabel::kPageTableMap:
          st = PtMap(slot, args);
          break;
        case InvLabel::kIrqSetHandler:
          st = IrqInvoke(slot, args);
          break;
        default:
          break;
      }
      handled = true;
      break;
    }
  }
  if (!handled) {
    x(v.bad);
    current_->last_error = KError::kInvalidArg;
  }
  x(v.ret);
  return st;
}

// ---------- Kernel entries ----------

KernelExit Kernel::Syscall(SysOp op, std::uint32_t cptr, const SyscallArgs& args) {
  const auto& e = b().sys;
  exec_.Begin(e.fn);
  if (TraceSink* sink = exec_.trace_sink()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSyscallOp;
    ev.cycle = machine_->Now();
    ev.name = SysOpName(op);
    ev.id = static_cast<std::uint32_t>(op);
    ev.arg0 = cptr;
    sink->OnEvent(ev);
  }
  x(e.save);
  T(current_->base, /*write=*/true);
  current_->last_error = KError::kOk;

  // Hostile-argument screening: a real kernel validates the message-info word
  // at entry. Malformed lengths take the bad-op decode chain and surface as
  // KError::kInvalidArg instead of tripping host-level range checks deeper in
  // the transfer loop.
  const bool args_ok = args.msg_len <= KernelConfig::kMaxMsgWords &&
                       args.n_extra <= KernelConfig::kMaxExtraCaps;
  const SysOp eff_op = args_ok ? op : SysOp::kReply;

  if (config_.ipc_fastpath) {
    x(e.fast_check);
    bool eligible = false;
    if (op == SysOp::kCall) {
      // Peek the root CNode + slot: eligible only for one-level cspaces.
      CNodeObj* cn = objs_.Get<CNodeObj>(current_->cspace_root);
      if (cn != nullptr) {
        T(cn->base);
        if (cn->guard_bits + cn->radix_bits == 32) {
          const std::uint32_t index = cptr & ((1u << cn->radix_bits) - 1);
          T(cn->SlotAddr(index));
          eligible = cn->slots[index].cap.type == ObjType::kEndpoint &&
                     args.msg_len <= 4 && args.n_extra == 0;
        }
      }
    }
    if (eligible) {
      x(e.fast_do);
      const bool hit = Fastpath(cptr, args);
      x(e.fast_ok);
      if (hit) {
        x(e.exit);
        T(current_->base);
        exec_.End();
        return KernelExit::kDone;
      }
    }
  }

  OpStatus st = OpStatus::kDone;
  x(e.d_call);
  switch (eff_op) {
    case SysOp::kCall:
      x(e.do_call);
      st = HandleCall(cptr, args);
      break;
    case SysOp::kSend:
      x(e.d_send);
      x(e.do_send);
      st = HandleSend(cptr, args);
      break;
    case SysOp::kRecv:
      x(e.d_send);
      x(e.d_recv);
      x(e.do_recv);
      st = HandleRecv(cptr, args);
      break;
    case SysOp::kReplyRecv:
      x(e.d_send);
      x(e.d_recv);
      x(e.d_replyrecv);
      x(e.do_replyrecv);
      st = HandleReplyRecv(cptr, args);
      break;
    case SysOp::kYield:
      x(e.d_send);
      x(e.d_recv);
      x(e.d_replyrecv);
      x(e.d_yield);
      x(e.do_yield);
      st = HandleYield();
      break;
    case SysOp::kReply:
      x(e.d_send);
      x(e.d_recv);
      x(e.d_replyrecv);
      x(e.d_yield);
      x(e.bad_op);
      current_->last_error = KError::kInvalidArg;
      break;
  }

  x(e.post);
  if (st == OpStatus::kPreempted) {
    x(e.preempted);
    x(e.irq_call);
    HandleInterruptImpl();
  }
  x(e.sched);
  ScheduleImpl();
  x(e.exit);
  T(current_->base);
  exec_.End();
  return st == OpStatus::kPreempted ? KernelExit::kPreempted : KernelExit::kDone;
}

KernelExit Kernel::HandleIrqEntry() {
  const auto& e = b().irq;
  exec_.Begin(e.fn);
  x(e.save);
  T(current_->base, /*write=*/true);
  x(e.handle);
  HandleInterruptImpl();
  x(e.sched);
  ScheduleImpl();
  x(e.exit);
  T(current_->base);
  exec_.End();
  return KernelExit::kDone;
}

KernelExit Kernel::RaisePageFault() {
  const auto& e = b().fault;
  exec_.Begin(e.fn);
  x(e.save);
  T(current_->base, /*write=*/true);
  x(e.lookup);
  CapSlot* slot = DecodeCap(current_, current_->fault_handler_cptr);
  x(e.valid);
  OpStatus st = OpStatus::kDone;
  if (slot != nullptr && slot->cap.type == ObjType::kEndpoint) {
    x(e.send);
    EndpointObj* ep = objs_.Get<EndpointObj>(slot->cap.obj);
    SyscallArgs fault_msg;
    fault_msg.msg_len = 2;  // fault address + status
    st = IpcSend(ep, slot->cap, /*is_call=*/true, fault_msg);
  } else {
    x(e.kill);
    T(current_->base, /*write=*/true);
    current_->state = ThreadState::kInactive;
    choose_new_ = true;
  }
  x(e.post);
  if (st == OpStatus::kPreempted) {
    x(e.preempted);
    x(e.irq_call);
    HandleInterruptImpl();
  }
  x(e.sched);
  ScheduleImpl();
  x(e.exit);
  T(current_->base);
  exec_.End();
  return st == OpStatus::kPreempted ? KernelExit::kPreempted : KernelExit::kDone;
}

KernelExit Kernel::RaiseUndefined() {
  const auto& e = b().undef;
  exec_.Begin(e.fn);
  x(e.save);
  T(current_->base, /*write=*/true);
  x(e.lookup);
  CapSlot* slot = DecodeCap(current_, current_->fault_handler_cptr);
  x(e.valid);
  OpStatus st = OpStatus::kDone;
  if (slot != nullptr && slot->cap.type == ObjType::kEndpoint) {
    x(e.send);
    EndpointObj* ep = objs_.Get<EndpointObj>(slot->cap.obj);
    SyscallArgs fault_msg;
    fault_msg.msg_len = 1;
    st = IpcSend(ep, slot->cap, /*is_call=*/true, fault_msg);
  } else {
    x(e.kill);
    T(current_->base, /*write=*/true);
    current_->state = ThreadState::kInactive;
    choose_new_ = true;
  }
  x(e.post);
  if (st == OpStatus::kPreempted) {
    x(e.preempted);
    x(e.irq_call);
    HandleInterruptImpl();
  }
  x(e.sched);
  ScheduleImpl();
  x(e.exit);
  T(current_->base);
  exec_.End();
  return st == OpStatus::kPreempted ? KernelExit::kPreempted : KernelExit::kDone;
}

// ---------- Cache pinning (Section 4) ----------

std::size_t Kernel::ApplyCachePinning(std::uint32_t ways) {
  const std::uint32_t line = machine_->config().l1i.line_bytes;
  // Capacity of the locked region: |ways| ways of the I-cache.
  const std::size_t capacity =
      (machine_->config().l1i.size_bytes / machine_->config().l1i.ways) * ways / line;
  const PinnedLines pins = SelectPinnedLines(*image_, line, capacity);
  machine_->PinL1(pins.ilines, pins.dlines, ways);
  return pins.ilines.size();
}

std::size_t Kernel::ApplyL2KernelPinning(std::uint32_t ways) {
  const std::uint32_t line = machine_->config().l2.line_bytes;
  std::vector<Addr> lines;
  const auto add_range = [&](Addr lo, Addr hi) {
    for (Addr a = lo / line * line; a < hi; a += line) {
      lines.push_back(a);
    }
  };
  // Kernel text, data symbols and the kernel stack: everything the kernel
  // itself touches with statically-known addresses.
  add_range(Program::kTextBase, Program::kTextBase + image_->prog.text_bytes());
  if (image_->prog.num_symbols() != 0) {
    const DataSymbol& last = image_->prog.symbol(
        static_cast<SymId>(image_->prog.num_symbols() - 1));
    add_range(Program::kDataBase, last.address + last.size);
  }
  add_range(Program::kStackTop - 4096, Program::kStackTop);
  return machine_->PinL2Lines(lines, ways);
}

}  // namespace pmk
