// The protected microkernel runtime.
//
// A functional seL4-like kernel whose charged code paths mirror the kernel
// image (src/kernel/image.cc) block for block: every kernel function
// announces the basic blocks it passes through to the kir executor, which
// charges instruction fetches, data accesses and branches to the machine
// model and validates the path against the declared CFG.
//
// Two API layers:
//  - Direct* methods build system state without charging cycles (the state a
//    measurement run starts from);
//  - kernel entries (Syscall / HandleIrqEntry / RaisePageFault /
//    RaiseUndefined) are the four analyzed exception vectors and charge every
//    cycle, including preemption-point checks and restartable-syscall
//    behaviour.
//
// Deliberate simplifications vs. real seL4 (documented in DESIGN.md):
// object invocations address some auxiliary objects (page directories,
// notification endpoints) by kernel address rather than by a second
// capability lookup; message payload beyond 8 words is charged but not
// stored; CNode deletion does not recursively delete contained caps.

#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/kernel/cap.h"
#include "src/kernel/config.h"
#include "src/kernel/image.h"
#include "src/kernel/objects.h"
#include "src/kernel/types.h"
#include "src/kir/executor.h"

namespace pmk {

namespace engine {
class StateSerializer;  // full-state (de)serialization, src/engine/serialize.h
}

struct SyscallArgs {
  std::uint32_t msg_len = 0;
  std::array<std::uint32_t, KernelConfig::kMaxExtraCaps> extra_caps{};
  std::uint32_t n_extra = 0;

  InvLabel label = InvLabel::kNone;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;

  // Retype / Mint / Copy / Move.
  ObjType obj_type = ObjType::kNull;
  std::uint8_t obj_bits = 0;
  std::uint32_t obj_count = 1;  // objects per retype (contiguous dest slots)
  std::uint32_t dest_index = 0;
  std::uint64_t badge = 0;
};

class Kernel {
 public:
  Kernel(const KernelConfig& config, Machine* machine);

  // ---------- Snapshot support (src/engine checkpointing) ----------

  // Deep-copies the whole kernel state — object heap (with every intrusive
  // pointer remapped into the cloned heap), scheduler queues and bitmaps,
  // current/idle threads, pending scheduler action, IRQ bindings, latency
  // samples — onto |machine|, which must itself be a copy of this kernel's
  // machine. The immutable kernel image is shared, not rebuilt: that is what
  // makes forking a checkpoint orders of magnitude cheaper than booting a
  // fresh System. Must be called between kernel entries (the executor must
  // not be mid-path). Trace sinks and fault hooks are NOT carried over; the
  // clone starts unobserved.
  std::unique_ptr<Kernel> Clone(Machine* machine) const;

  // ---------- Direct (uncharged) system construction ----------

  // Bump-allocates |size| bytes of aligned physical memory for direct setup.
  Addr DirectAlloc(std::uint64_t size);

  UntypedObj* DirectUntyped(std::uint8_t size_bits);
  CNodeObj* DirectCNode(std::uint8_t radix_bits, std::uint8_t guard_bits,
                        std::uint32_t guard_value);
  TcbObj* DirectTcb(std::uint8_t prio, CNodeObj* cspace);
  EndpointObj* DirectEndpoint();
  FrameObj* DirectFrame(std::uint8_t size_bits);
  PageTableObj* DirectPageTable();
  PageDirObj* DirectPageDir();
  AsidPoolObj* DirectAsidPool();
  IrqHandlerObj* DirectIrqHandler(std::uint32_t line);

  // Installs |cap| in |cn|[index]; MDB-links it under |parent| (a derived
  // child) or as a root cap when |parent| is null.
  CapSlot* DirectCap(CNodeObj* cn, std::uint32_t index, Cap cap, CapSlot* parent = nullptr);

  // Makes |t| runnable and enqueues it.
  void DirectResume(TcbObj* t);
  // Blocks |t| on |ep|'s send or receive queue (for building deep queues).
  // |leave_in_run_queue| reproduces lazy scheduling's stale entries.
  void DirectBlockOnSend(TcbObj* t, EndpointObj* ep, std::uint64_t badge,
                         bool is_call = false, bool leave_in_run_queue = false);
  void DirectBlockOnRecv(TcbObj* t, EndpointObj* ep);
  // Pulls |t| off whatever endpoint queue it blocks on and makes it runnable.
  void DirectUnblock(TcbObj* t);
  void DirectSetCurrent(TcbObj* t);
  void DirectBindIrq(std::uint32_t line, EndpointObj* ep);
  // Uncharged frame/pt mapping for scenario setup.
  void DirectMapPageTable(PageDirObj* pd, std::uint32_t pd_index, PageTableObj* pt,
                          CapSlot* pt_slot);
  void DirectMapFrame(PageDirObj* pd, Addr vaddr, FrameObj* frame, CapSlot* frame_slot);
  // ASID-variant pool registration.
  void DirectRegisterAsidPool(AsidPoolObj* pool);
  void DirectAssignAsid(PageDirObj* pd);

  // ---------- Kernel entries (charged; the analyzed exception vectors) ----------

  // Current thread performs |op| on |cptr|. On kPreempted the operation was
  // interrupted at a preemption point and the caller must re-issue the same
  // syscall when the thread next runs (restartable system calls).
  KernelExit Syscall(SysOp op, std::uint32_t cptr, const SyscallArgs& args);

  // IRQ exception while the current thread runs in userland.
  KernelExit HandleIrqEntry();

  // Page fault / undefined instruction of the current thread.
  KernelExit RaisePageFault();
  KernelExit RaiseUndefined();

  // ---------- Cache pinning (Section 4) ----------

  // Pins the interrupt-delivery path and hot data into the first |ways| ways
  // of both L1 caches. Returns the number of I-cache lines pinned.
  std::size_t ApplyCachePinning(std::uint32_t ways = 1);

  // Locks the ENTIRE kernel (text, data, stack) into |ways| ways of the L2
  // cache — the paper's future-work option (Sections 4, 6.4, 8): the 36 KiB
  // kernel fits comfortably into the 128 KiB L2. Requires the L2 enabled.
  // Returns the number of L2 lines pinned.
  std::size_t ApplyL2KernelPinning(std::uint32_t ways = 2);

  // ---------- Invariants (Section 2.2) ----------

  // Throws std::logic_error with a description on any violated invariant.
  void CheckInvariants() const;

  // ---------- Accessors ----------

  const KernelConfig& config() const { return config_; }
  const KernelImage& image() const { return *image_; }
  Executor& exec() { return exec_; }
  Machine& machine() { return *machine_; }
  ObjectTable& objects() { return objs_; }
  TcbObj* current() const { return current_; }
  TcbObj* idle() const { return idle_; }
  EndpointObj* irq_binding(std::uint32_t line) const;

  const std::vector<Cycles>& irq_latencies() const { return irq_latencies_; }
  void ClearIrqLatencies() { irq_latencies_.clear(); }
  std::uint64_t fastpath_hits() const { return fastpath_hits_; }

  // Scheduler introspection for tests.
  TcbObj* queue_head(std::uint8_t prio) const { return queues_[prio].head; }
  std::uint32_t bitmap_l1() const { return bitmap_l1_; }
  std::uint32_t bitmap_l2(std::uint32_t bucket) const { return bitmap_l2_[bucket]; }

 private:
  friend class KernelTestPeer;
  friend class engine::StateSerializer;

  // Clone constructor (snapshot.cc): shares |other|'s immutable image and
  // copies all scalar state; the object heap is deep-copied by Clone().
  struct CloneTag {};
  Kernel(CloneTag, const Kernel& other, Machine* machine);

  // Shorthand: announce a block.
  void x(BlockId id) { exec_.At(id); }
  void T(Addr addr, bool write = false) { exec_.Touch(addr, write); }
  // Batched strided touches (clear loops): one executor call per chunk.
  void TRun(Addr base, std::uint32_t count, std::uint32_t stride, bool write = false) {
    exec_.TouchRun(base, count, stride, write);
  }
  const KernelBlocks& b() const { return image_->b; }

  static bool Runnable(const TcbObj* t) {
    return t->state == ThreadState::kRunning || t->state == ThreadState::kRestart;
  }

  // ----- scheduler (sched.cc) -----
  struct RunQueue {
    TcbObj* head = nullptr;
    TcbObj* tail = nullptr;
  };
  // Functional queue primitives (uncharged).
  void QueuePushBack(TcbObj* t);
  void QueueRemove(TcbObj* t);
  void BitmapSet(std::uint8_t prio);
  void BitmapClearIfEmpty(std::uint8_t prio);
  int HighestBitmapPrio() const;
  // Charged scheduler operations. Under Benno scheduling the running thread
  // stays out of the run queue; only the scheduler itself (requeue-on-
  // preemption, yield) may enqueue it, via |allow_current|.
  void SchedEnqueue(TcbObj* t, bool allow_current = false);
  void SchedDequeue(TcbObj* t);
  TcbObj* ChooseThread();
  void AttemptSwitch(TcbObj* woken);
  void ScheduleImpl();
  void SwitchTo(TcbObj* t);

  // ----- IPC (ipc.cc) -----
  void EpEnqueue(EndpointObj* ep, TcbObj* t, EndpointObj::QState as);
  void EpRemove(EndpointObj* ep, TcbObj* t);
  OpStatus DoTransfer(TcbObj* from, TcbObj* to, std::uint32_t msg_len,
                      const SyscallArgs& args, bool grant);
  OpStatus IpcSend(EndpointObj* ep, const Cap& ep_cap, bool is_call, const SyscallArgs& args);
  OpStatus IpcRecv(EndpointObj* ep, const SyscallArgs& args);
  void DoReply(const SyscallArgs& args);
  bool Fastpath(std::uint32_t cptr, const SyscallArgs& args);
  void NotifyEp(EndpointObj* ep, std::uint64_t badge);
  void HandleInterruptImpl();

  // ----- syscall dispatch (kernel.cc) -----
  CapSlot* DecodeCap(TcbObj* t, std::uint32_t cptr);
  OpStatus HandleCall(std::uint32_t cptr, const SyscallArgs& args);
  OpStatus HandleSend(std::uint32_t cptr, const SyscallArgs& args);
  OpStatus HandleRecv(std::uint32_t cptr, const SyscallArgs& args);
  OpStatus HandleReplyRecv(std::uint32_t cptr, const SyscallArgs& args);
  OpStatus HandleYield();
  OpStatus Invoke(CapSlot* slot, const SyscallArgs& args);

  // ----- object operations (objops.cc) -----
  OpStatus UntypedRetype(CapSlot* ut_slot, const SyscallArgs& args);
  OpStatus CNodeDelete(CapSlot* cn_slot, const SyscallArgs& args);
  OpStatus CNodeRevoke(CapSlot* cn_slot, const SyscallArgs& args);
  OpStatus CNodeMint(CapSlot* cn_slot, const SyscallArgs& args);
  OpStatus CapDelete(CapSlot* slot);
  OpStatus DestroyObject(CapSlot* slot);
  OpStatus EpCancelAll(EndpointObj* ep);
  OpStatus EpCancelBadged(EndpointObj* ep, std::uint64_t badge);
  OpStatus TcbInvoke(CapSlot* slot, const SyscallArgs& args);
  OpStatus IrqInvoke(CapSlot* slot, const SyscallArgs& args);
  std::unique_ptr<KObject> MakeObject(ObjType type, Addr base, std::uint8_t size_bits,
                                      std::uint8_t user_bits);

  // ----- address spaces (vspace.cc) -----
  OpStatus FrameMap(CapSlot* frame_slot, const SyscallArgs& args);
  OpStatus FrameUnmap(CapSlot* frame_slot);
  OpStatus PtMap(CapSlot* pt_slot, const SyscallArgs& args);
  OpStatus PtDelete(PageTableObj* pt);
  OpStatus PdDelete(PageDirObj* pd);
  OpStatus AsidPoolDelete(AsidPoolObj* pool);
  bool AsidAlloc(PageDirObj* pd);  // charged; true on success

  bool PreemptPending() const;

  // ----- state -----
  KernelConfig config_;
  Machine* machine_;
  // Shared, immutable after construction: clones of this kernel (and the
  // WCET analyzer) read the same image concurrently from worker threads.
  std::shared_ptr<const KernelImage> image_;
  Executor exec_;
  ObjectTable objs_;

  Addr alloc_next_;  // direct-setup bump allocator

  std::array<RunQueue, KernelConfig::kNumPriorities> queues_{};
  std::uint32_t bitmap_l1_ = 0;
  std::array<std::uint32_t, 8> bitmap_l2_{};

  TcbObj* current_ = nullptr;
  TcbObj* idle_ = nullptr;
  std::unique_ptr<TcbObj> idle_storage_;

  // Scheduler action: nullptr + choose_new_=false => resume current.
  TcbObj* sched_action_ = nullptr;
  bool choose_new_ = false;

  std::array<Addr, InterruptController::kNumLines> irq_bindings_{};

  // ASID variant: registered pool (a single pool suffices for the modelled
  // 18-bit space's first 1024 entries).
  Addr asid_pool_ = 0;

  std::vector<Cycles> irq_latencies_;
  std::uint64_t fastpath_hits_ = 0;
};

}  // namespace pmk

#endif  // SRC_KERNEL_KERNEL_H_
