#include "src/kernel/objects.h"

#include <stdexcept>
#include <string>

namespace pmk {

const char* ObjTypeName(ObjType t) {
  switch (t) {
    case ObjType::kNull:
      return "Null";
    case ObjType::kUntyped:
      return "Untyped";
    case ObjType::kCNode:
      return "CNode";
    case ObjType::kTcb:
      return "TCB";
    case ObjType::kEndpoint:
      return "Endpoint";
    case ObjType::kFrame:
      return "Frame";
    case ObjType::kPageTable:
      return "PageTable";
    case ObjType::kPageDir:
      return "PageDir";
    case ObjType::kAsidPool:
      return "ASIDPool";
    case ObjType::kIrqHandler:
      return "IRQHandler";
    case ObjType::kReply:
      return "Reply";
  }
  return "?";
}

const char* ThreadStateName(ThreadState s) {
  switch (s) {
    case ThreadState::kInactive:
      return "Inactive";
    case ThreadState::kRunning:
      return "Running";
    case ThreadState::kBlockedOnSend:
      return "BlockedOnSend";
    case ThreadState::kBlockedOnRecv:
      return "BlockedOnRecv";
    case ThreadState::kBlockedOnReply:
      return "BlockedOnReply";
    case ThreadState::kRestart:
      return "Restart";
    case ThreadState::kIdle:
      return "Idle";
  }
  return "?";
}

const char* KErrorName(KError e) {
  switch (e) {
    case KError::kOk:
      return "Ok";
    case KError::kInvalidCap:
      return "InvalidCap";
    case KError::kInvalidArg:
      return "InvalidArg";
    case KError::kNotEnoughMemory:
      return "NotEnoughMemory";
    case KError::kRevokeFirst:
      return "RevokeFirst";
    case KError::kAborted:
      return "Aborted";
    case KError::kDeleted:
      return "Deleted";
  }
  return "?";
}

std::uint8_t ObjSizeBits(ObjType type, std::uint8_t user_bits, const KernelConfig& config) {
  switch (type) {
    case ObjType::kUntyped:
      return user_bits;
    case ObjType::kCNode:
      // 16-byte slots: radix_bits + 4.
      return static_cast<std::uint8_t>(user_bits + 4);
    case ObjType::kTcb:
      return 9;  // 512 B
    case ObjType::kEndpoint:
      return 4;  // 16 B
    case ObjType::kFrame:
      return user_bits;  // 12 (4 KiB) .. 24 (16 MiB)
    case ObjType::kPageTable:
      // 1 KiB; doubled by the adjacent shadow (Section 3.6).
      return config.vspace == VSpaceKind::kShadow ? 11 : 10;
    case ObjType::kPageDir:
      // 16 KiB; doubled by the adjacent shadow.
      return config.vspace == VSpaceKind::kShadow ? 15 : 14;
    case ObjType::kAsidPool:
      return 12;  // 4 KiB (1024 x 4 B)
    case ObjType::kIrqHandler:
      return 4;
    case ObjType::kNull:
    case ObjType::kReply:
      break;
  }
  throw std::logic_error("ObjSizeBits: bad type");
}

KObject* ObjectTable::Insert(std::unique_ptr<KObject> obj) {
  memo_base_ = kNoMemo;
  memo_obj_ = nullptr;
  const Addr base = obj->base;
  const std::uint64_t size = obj->SizeBytes();
  if (base % size != 0) {
    throw std::logic_error("object misaligned: " + std::string(ObjTypeName(obj->type)) + " at " +
                           std::to_string(base));
  }
  if (obj->type == ObjType::kUntyped) {
    if (untypeds_.count(base) != 0) {
      throw std::logic_error("untyped region already registered at " + std::to_string(base));
    }
    UntypedObj* raw = static_cast<UntypedObj*>(obj.release());
    untypeds_.emplace(base, std::unique_ptr<UntypedObj>(raw));
    return raw;
  }
  if (Overlaps(base, size)) {
    throw std::logic_error("object overlap: " + std::string(ObjTypeName(obj->type)) + " at " +
                           std::to_string(base));
  }
  KObject* raw = obj.get();
  objects_.emplace(base, std::move(obj));
  return raw;
}

KObject* ObjectTable::InsertUnchecked(std::unique_ptr<KObject> obj) {
  const Addr base = obj->base;
  memo_base_ = kNoMemo;
  memo_obj_ = nullptr;
  if (obj->type == ObjType::kUntyped) {
    UntypedObj* raw = static_cast<UntypedObj*>(obj.release());
    untypeds_.emplace(base, std::unique_ptr<UntypedObj>(raw));
    return raw;
  }
  KObject* raw = obj.get();
  objects_.emplace(base, std::move(obj));
  return raw;
}

void ObjectTable::Remove(Addr base) {
  memo_base_ = kNoMemo;
  memo_obj_ = nullptr;
  if (const auto it = objects_.find(base); it != objects_.end()) {
    objects_.erase(it);
    return;
  }
  if (const auto it = untypeds_.find(base); it != untypeds_.end()) {
    untypeds_.erase(it);
    return;
  }
  throw std::logic_error("ObjectTable::Remove: no object at " + std::to_string(base));
}

KObject* ObjectTable::Find(Addr base) const {
  if (base == memo_base_) {
    return memo_obj_;
  }
  if (const auto it = objects_.find(base); it != objects_.end()) {
    memo_base_ = base;
    memo_obj_ = it->second.get();
    return memo_obj_;
  }
  if (const auto it = untypeds_.find(base); it != untypeds_.end()) {
    memo_base_ = base;
    memo_obj_ = it->second.get();
    return memo_obj_;
  }
  return nullptr;
}

bool ObjectTable::Overlaps(Addr base, std::uint64_t size, Addr ignore) const {
  // Untyped regions legitimately contain the objects retyped from them, so
  // overlap checks apply only between non-untyped objects; untyped-vs-untyped
  // nesting is governed by the derivation tree instead.
  const Addr end = base + size;
  for (const auto& [b, obj] : objects_) {
    if (obj->type == ObjType::kUntyped || b == ignore) {
      continue;
    }
    if (b < end && obj->End() > base) {
      return true;
    }
    if (b >= end) {
      break;
    }
  }
  return false;
}

}  // namespace pmk
