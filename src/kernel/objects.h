// Kernel objects, capabilities and the object table.
//
// Mirrors seL4's object model: all kernel memory is typed from untyped
// regions; capabilities (16 bytes: one word of metadata too small for frame
// mapping info, which motivates the ASID / shadow-page-table designs of
// Section 3.6) live in CNode slots and are linked into a derivation tree
// (seL4's MDB) supporting delete and revoke.
//
// Objects carry the incremental-consistency resume state the paper stores
// "within the object itself": untyped clearing progress (Section 3.5), the
// endpoint badged-abort four-tuple (Section 3.4), and page tables' lowest
// mapped index (Section 3.6).

#ifndef SRC_KERNEL_OBJECTS_H_
#define SRC_KERNEL_OBJECTS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/kernel/config.h"
#include "src/kernel/types.h"

namespace pmk {

struct TcbObj;

// A capability: type, object reference, badge, rights. seL4 packs this into
// 16 bytes (8 bytes of MDB links + 8 bytes of payload); we model the size for
// cache purposes via slot addresses, not via actual packing.
struct Cap {
  ObjType type = ObjType::kNull;
  Addr obj = 0;
  std::uint64_t badge = kBadgeNone;
  CapRights rights;

  bool IsNull() const { return type == ObjType::kNull; }
};

// A CNode slot holding a capability, threaded into the global mapping
// database (MDB): a doubly-linked list in derivation order where a cap's
// descendants follow it contiguously with greater depth.
struct CapSlot {
  Cap cap;
  CapSlot* mdb_prev = nullptr;
  CapSlot* mdb_next = nullptr;
  std::uint16_t mdb_depth = 0;
  Addr addr = 0;  // physical address of this 16-byte slot

  bool IsNull() const { return cap.IsNull(); }
};

struct KObject {
  ObjType type = ObjType::kNull;
  Addr base = 0;
  std::uint8_t size_bits = 0;

  virtual ~KObject() = default;

  // Polymorphic value copy (src/engine checkpointing). The copy carries the
  // original's intrusive pointers (queue links, MDB links, shadow slots)
  // verbatim; Kernel::Clone remaps them into the cloned heap afterwards.
  virtual std::unique_ptr<KObject> CloneObj() const = 0;

  std::uint64_t SizeBytes() const { return std::uint64_t{1} << size_bits; }
  Addr End() const { return base + SizeBytes(); }
};

struct UntypedObj : KObject {
  Addr watermark = 0;  // next free byte within the region (seL4 freeIndex)

  // Retype-in-progress state (Section 3.5): clearing happens before any other
  // kernel state is modified; its progress lives here so a preempted retype
  // resumes where it left off when the system call restarts.
  bool retype_active = false;
  ObjType retype_type = ObjType::kNull;
  std::uint8_t retype_bits = 0;
  Addr retype_base = 0;
  std::uint64_t cleared_bytes = 0;

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<UntypedObj>(*this); }
};

struct CNodeObj : KObject {
  std::uint8_t radix_bits = 0;
  std::uint8_t guard_bits = 0;
  std::uint32_t guard_value = 0;
  std::vector<CapSlot> slots;  // 1 << radix_bits

  std::uint32_t NumSlots() const { return 1u << radix_bits; }
  Addr SlotAddr(std::uint32_t index) const { return base + static_cast<Addr>(index) * 16; }

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<CNodeObj>(*this); }
};

struct EndpointObj : KObject {
  enum class QState : std::uint8_t { kIdle, kSend, kRecv };
  QState qstate = QState::kIdle;
  TcbObj* q_head = nullptr;
  TcbObj* q_tail = nullptr;
  std::uint32_t q_len = 0;  // bookkeeping mirror (not charged; metadata only)

  // Deactivated at the start of a delete so no thread can start a new IPC on
  // it (Section 3.3's forward-progress guarantee).
  bool active = true;

  // Pending IRQ-notification bits (badge = line + 1), delivered on next Recv.
  std::uint64_t pending_notifications = 0;

  // Badged-abort resume state (Section 3.4): (1) resume point in the list,
  // (2) end marker fixed when the operation commenced, (3) the badge being
  // removed, (4) the thread performing the abort.
  struct AbortState {
    bool valid = false;
    std::uint64_t badge = kBadgeNone;
    TcbObj* resume = nullptr;
    TcbObj* end_marker = nullptr;
    TcbObj* aborter = nullptr;
  };
  AbortState abort;

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<EndpointObj>(*this); }
};

struct TcbObj : KObject {
  ThreadState state = ThreadState::kInactive;
  std::uint8_t prio = 0;
  Addr cspace_root = 0;  // CNode
  Addr vspace = 0;       // PageDir (0 = none)

  // Scheduler queue links (intrusive, Section 3.1) + membership flag.
  TcbObj* sched_next = nullptr;
  TcbObj* sched_prev = nullptr;
  bool in_run_queue = false;

  // Endpoint queue links.
  TcbObj* ep_next = nullptr;
  TcbObj* ep_prev = nullptr;
  Addr blocked_on = 0;  // endpoint the thread is queued on

  // IPC state.
  std::uint64_t blocked_badge = kBadgeNone;  // badge of the blocked send
  bool blocked_is_call = false;
  TcbObj* reply_to = nullptr;  // caller awaiting our Reply
  std::array<std::uint64_t, 8> mrs{};
  std::uint32_t msg_len = 0;
  std::uint64_t recv_badge = 0;  // badge/sender info of last received message
  KError last_error = KError::kOk;

  // Remaining timeslice ticks (kernel preemption timer, round-robin).
  std::uint32_t timeslice = 5;

  // Receive slot: index in the root CNode where transferred caps land.
  std::uint32_t recv_slot = 0;

  // Fault handling.
  std::uint32_t fault_handler_cptr = 0;  // cap address of fault endpoint

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<TcbObj>(*this); }
};

struct PageTableObj : KObject {
  static constexpr std::uint32_t kEntries = 256;  // ARMv6: 1 KiB, 256 x 4 B

  std::array<Addr, kEntries> pte{};          // frame base or 0
  std::array<CapSlot*, kEntries> shadow{};   // back-pointer to the frame cap
  std::uint32_t mapped_count = 0;
  std::uint32_t lowest_mapped = kEntries;    // resume index (Section 3.6)

  bool mapped_in_pd = false;
  Addr parent_pd = 0;
  std::uint32_t pd_index = 0;

  Addr PteAddr(std::uint32_t i) const { return base + static_cast<Addr>(i) * 4; }
  // Shadow stored adjacent to the table itself (Figure 5).
  Addr ShadowAddr(std::uint32_t i) const { return base + 1024 + static_cast<Addr>(i) * 4; }

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<PageTableObj>(*this); }
};

struct PageDirObj : KObject {
  static constexpr std::uint32_t kEntries = 4096;  // ARMv6: 16 KiB, 4096 x 4 B
  // Top 256 entries (256 MiB) are the kernel's global mappings.
  static constexpr std::uint32_t kUserEntries = kEntries - 256;

  std::array<Addr, kEntries> pde{};         // page table (or section frame) base
  std::array<bool, kEntries> is_section{};  // large frame mapped directly
  std::array<CapSlot*, kEntries> shadow{};  // back-pointer for sections / PTs
  std::uint32_t mapped_count = 0;           // user entries only
  std::uint32_t lowest_mapped = kUserEntries;

  bool global_mappings_present = false;  // invariant: true once created
  std::uint32_t asid = 0;                // ASID variant only (0 = none)

  Addr PdeAddr(std::uint32_t i) const { return base + static_cast<Addr>(i) * 4; }
  Addr ShadowAddr(std::uint32_t i) const { return base + 16 * 1024 + static_cast<Addr>(i) * 4; }

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<PageDirObj>(*this); }
};

struct FrameObj : KObject {
  bool mapped = false;
  std::uint32_t asid = 0;   // ASID variant
  Addr mapped_pd = 0;       // shadow variant: containing address space
  Addr vaddr = 0;

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<FrameObj>(*this); }
};

struct AsidPoolObj : KObject {
  static constexpr std::uint32_t kEntries = 1024;
  std::array<Addr, kEntries> pd{};  // PageDir base or 0

  Addr EntryAddr(std::uint32_t i) const { return base + static_cast<Addr>(i) * 4; }

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<AsidPoolObj>(*this); }
};

struct IrqHandlerObj : KObject {
  std::uint32_t line = 0;
  Addr notify_ep = 0;  // endpoint notified on interrupt (0 = unbound)

  std::unique_ptr<KObject> CloneObj() const override { return std::make_unique<IrqHandlerObj>(*this); }
};

// Returns the object's size in bits for allocation/alignment. PT/PD sizes
// double in the shadow-page-table configuration (the paper's Section 3.6
// memory-overhead discussion).
std::uint8_t ObjSizeBits(ObjType type, std::uint8_t user_bits, const KernelConfig& config);

// Owns all kernel objects, keyed by base address. Enforces the paper's
// object-alignment and no-overlap invariants on insertion (Section 2.2).
// Untyped regions live in a separate index because the objects retyped from
// an untyped legitimately share addresses with it (the first child starts at
// the region base).
class ObjectTable {
 public:
  // Inserts |obj|; aborts (throws std::logic_error) on misalignment/overlap.
  KObject* Insert(std::unique_ptr<KObject> obj);

  // Inserts without the alignment/overlap audit. Only for cloning a table
  // whose invariants already hold (Kernel::Clone): the audit is O(n) per
  // object, which would make forking a checkpoint quadratic in heap size.
  KObject* InsertUnchecked(std::unique_ptr<KObject> obj);
  void Remove(Addr base);

  // Finds the non-untyped object at |base|, falling back to an untyped
  // region starting exactly there.
  KObject* Find(Addr base) const;

  template <typename T>
  T* Get(Addr base) const {
    if constexpr (std::is_same_v<T, UntypedObj>) {
      const auto it = untypeds_.find(base);
      return it == untypeds_.end() ? nullptr : it->second.get();
    } else {
      KObject* o = Find(base);
      return dynamic_cast<T*>(o);
    }
  }

  std::size_t Count() const { return objects_.size() + untypeds_.size(); }

  // True if [base, base+size) overlaps any existing non-untyped object.
  bool Overlaps(Addr base, std::uint64_t size, Addr ignore = 0) const;

  const std::map<Addr, std::unique_ptr<KObject>>& objects() const { return objects_; }
  const std::map<Addr, std::unique_ptr<UntypedObj>>& untypeds() const { return untypeds_; }

 private:
  std::map<Addr, std::unique_ptr<KObject>> objects_;
  std::map<Addr, std::unique_ptr<UntypedObj>> untypeds_;
  // Single-entry lookup memo: syscall decode resolves the same capability
  // object repeatedly (the invoked cap, the IRQ endpoint), so the last
  // successful Find short-circuits most tree walks. Invalidated by every
  // table mutation; no real object sits at ~0, so it doubles as the empty
  // sentinel. The table is non-copyable (unique_ptr values), so the cached
  // pointer can never leak into another table's memo.
  static constexpr Addr kNoMemo = ~Addr{0};
  mutable Addr memo_base_ = kNoMemo;
  mutable KObject* memo_obj_ = nullptr;
};

}  // namespace pmk

#endif  // SRC_KERNEL_OBJECTS_H_
