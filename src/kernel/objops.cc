// Object creation and destruction: untyped retype with preemptible clearing
// (Section 3.5), capability deletion/revocation, preemptible endpoint
// cancellation (Section 3.3) and badged-IPC abort (Section 3.4).

#include <cassert>

#include "src/kernel/kernel.h"

namespace pmk {

namespace {
Addr AlignUp(Addr a, Addr align) { return (a + align - 1) & ~(align - 1); }
}  // namespace

std::unique_ptr<KObject> Kernel::MakeObject(ObjType type, Addr base, std::uint8_t size_bits,
                                            std::uint8_t user_bits) {
  std::unique_ptr<KObject> o;
  switch (type) {
    case ObjType::kUntyped: {
      auto u = std::make_unique<UntypedObj>();
      u->watermark = base;
      o = std::move(u);
      break;
    }
    case ObjType::kCNode: {
      auto c = std::make_unique<CNodeObj>();
      c->radix_bits = user_bits;
      c->slots.resize(1u << user_bits);
      o = std::move(c);
      break;
    }
    case ObjType::kTcb: {
      auto t = std::make_unique<TcbObj>();
      t->timeslice = config_.timeslice_ticks;
      o = std::move(t);
      break;
    }
    case ObjType::kEndpoint:
      o = std::make_unique<EndpointObj>();
      break;
    case ObjType::kFrame:
      o = std::make_unique<FrameObj>();
      break;
    case ObjType::kPageTable:
      o = std::make_unique<PageTableObj>();
      break;
    case ObjType::kPageDir: {
      auto d = std::make_unique<PageDirObj>();
      d->global_mappings_present = true;  // established by the global copy
      o = std::move(d);
      break;
    }
    case ObjType::kAsidPool:
      o = std::make_unique<AsidPoolObj>();
      break;
    default:
      return nullptr;
  }
  o->type = type;
  o->base = base;
  o->size_bits = size_bits;
  if (type == ObjType::kCNode) {
    CNodeObj* c = static_cast<CNodeObj*>(o.get());
    for (std::uint32_t i = 0; i < c->NumSlots(); ++i) {
      c->slots[i].addr = c->SlotAddr(i);
    }
  }
  return o;
}

// ---------- Untyped retype (Section 3.5) ----------

OpStatus Kernel::UntypedRetype(CapSlot* ut_slot, const SyscallArgs& args) {
  const auto& r = b().retype;
  const std::uint32_t chunk = config_.clear_chunk_bytes;

  x(r.entry);
  UntypedObj* ut = objs_.Get<UntypedObj>(ut_slot->cap.obj);
  T(ut_slot->addr);
  const auto retypeable = [](ObjType t) {
    switch (t) {
      case ObjType::kUntyped:
      case ObjType::kCNode:
      case ObjType::kTcb:
      case ObjType::kEndpoint:
      case ObjType::kFrame:
      case ObjType::kPageTable:
      case ObjType::kPageDir:
      case ObjType::kAsidPool:
        return true;
      default:
        return false;
    }
  };
  const std::uint32_t count = args.obj_count;
  // obj_bits is attacker-controlled: screen it before it feeds a shift.
  bool valid = ut != nullptr && retypeable(args.obj_type) && count >= 1 &&
               count <= KernelConfig::kMaxRetypeCount &&
               (args.obj_type != ObjType::kPageDir || count == 1) &&
               args.obj_bits <= config_.max_object_bits;
  std::uint8_t size_bits = 0;
  Addr base = 0;
  std::uint64_t total = 0;
  if (valid) {
    T(ut->base);
    size_bits = ObjSizeBits(args.obj_type, args.obj_bits, config_);
    valid = size_bits <= config_.max_object_bits;
    total = valid ? static_cast<std::uint64_t>(count) << size_bits : 0;
    // The closed-system object-size bound applies to the whole batch, so the
    // clearing loop's analysis bound is count-independent.
    valid = valid && total <= (std::uint64_t{1} << config_.max_object_bits);
    if (valid) {
      base = AlignUp(ut->retype_active ? ut->retype_base : ut->watermark,
                     std::uint64_t{1} << size_bits);
      valid = base + total <= ut->End();
    }
  }
  if (!valid) {
    x(r.bad);
    current_->last_error = KError::kInvalidArg;
    if (ut != nullptr) {
      ut->retype_active = false;
    }
    return OpStatus::kDone;
  }
  const std::uint64_t total_chunks = (total + chunk - 1) / chunk;

  if (config_.preemptible_clearing) {
    // "After" shape: clear everything first — preemptibly — with progress
    // stored in the untyped object; then update kernel state atomically.
    x(r.resume);
    T(ut->base);
    if (!ut->retype_active) {
      x(r.init);
      T(ut->base, /*write=*/true);
      ut->retype_active = true;
      ut->retype_type = args.obj_type;
      ut->retype_bits = size_bits;
      ut->retype_base = base;
      ut->cleared_bytes = 0;
      exec_.SetReg(7, static_cast<std::int64_t>(total_chunks));
    } else {
      exec_.SetReg(7, static_cast<std::int64_t>(
                          (total - ut->cleared_bytes + chunk - 1) / chunk));
    }
    while (true) {
      x(r.more);
      T(ut->base);
      if (ut->cleared_bytes >= total) {
        break;
      }
      x(r.clear_chunk);
      const Addr chunk_base = ut->retype_base + ut->cleared_bytes;
      TRun(chunk_base, (chunk + 31) / 32, 32, /*write=*/true);
      ut->cleared_bytes += chunk;
      T(ut->base, /*write=*/true);
      x(r.preempt);
      if (PreemptPending()) {
        x(r.preempted);
        T(ut->base, /*write=*/true);
        return OpStatus::kPreempted;
      }
    }
  } else {
    // "Before" shape: kernel state partially updated before clearing, and
    // the clear itself is one long non-preemptible loop.
    x(r.book1);
    T(ut->base, /*write=*/true);
    T(ut_slot->addr, /*write=*/true);
    ut->retype_active = true;
    ut->retype_type = args.obj_type;
    ut->retype_bits = size_bits;
    ut->retype_base = base;
    x(r.init);
    T(ut->base, /*write=*/true);
    ut->cleared_bytes = 0;
    exec_.SetReg(7, static_cast<std::int64_t>(total_chunks));
    while (true) {
      x(r.more);
      T(ut->base);
      if (ut->cleared_bytes >= total) {
        break;
      }
      x(r.clear_chunk);
      const Addr chunk_base = ut->retype_base + ut->cleared_bytes;
      TRun(chunk_base, (chunk + 31) / 32, 32, /*write=*/true);
      ut->cleared_bytes += chunk;
      T(ut->base, /*write=*/true);
    }
  }

  x(r.is_pd);
  if (args.obj_type == ObjType::kPageDir) {
    // Copy the kernel's global mappings into the new page directory: 1 KiB,
    // non-preemptible (the 20 us compromise of Section 3.5).
    x(r.global_copy);
    const Addr kernel_pd = Program::kDataBase;  // template mappings
    for (std::uint32_t off = 0; off < 1024; off += 32) {
      T(kernel_pd + off);
      T(base + 15 * 1024 + off, /*write=*/true);
    }
    T(ut->base);
  }

  // Atomic bookkeeping pass: object table, destination caps, MDB, watermark.
  // One short pass per object (book_loop); no preemption inside — clearing,
  // the only long-running part, already happened (Section 3.5).
  x(r.book);
  T(ut->base);
  CNodeObj* root = objs_.Get<CNodeObj>(current_->cspace_root);
  bool dests_ok = root != nullptr &&
                  static_cast<std::uint64_t>(args.dest_index) + count <= root->NumSlots();
  if (dests_ok) {
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!root->slots[args.dest_index + i].IsNull()) {
        dests_ok = false;
        break;
      }
    }
  }
  exec_.SetReg(10, dests_ok ? count : 0);
  if (!dests_ok) {
    current_->last_error = KError::kInvalidArg;
    ut->retype_active = false;
    x(r.ret);
    T(ut->base, /*write=*/true);
    return OpStatus::kDone;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    x(r.book_loop);
    const Addr obj_base = base + (static_cast<Addr>(i) << size_bits);
    auto obj = MakeObject(args.obj_type, obj_base, size_bits, args.obj_bits);
    KObject* raw = objs_.Insert(std::move(obj));
    CapSlot* dest = &root->slots[args.dest_index + i];
    T(dest->addr, /*write=*/true);
    T(ut_slot->addr, /*write=*/true);
    T(raw->base, /*write=*/true);
    Cap cap;
    cap.type = args.obj_type;
    cap.obj = raw->base;
    dest->cap = cap;
    Mdb::InsertChild(ut_slot, dest);
  }
  x(r.ret);
  T(ut->base, /*write=*/true);
  T(ut_slot->addr, /*write=*/true);
  ut->watermark = base + total;
  ut->retype_active = false;
  current_->last_error = KError::kOk;
  return OpStatus::kDone;
}

// ---------- Endpoint cancellation ----------

OpStatus Kernel::EpCancelAll(EndpointObj* ep) {
  const auto& c = b().epcall;
  x(c.entry);
  T(ep->base, /*write=*/true);
  ep->active = false;  // forward progress: no new IPC can start (Section 3.3)
  exec_.SetReg(8, ep->q_len);
  while (true) {
    x(c.head);
    T(ep->base);
    if (ep->q_head == nullptr) {
      break;
    }
    x(c.deq);
    TcbObj* t = ep->q_head;
    T(t->base, /*write=*/true);
    T(ep->base, /*write=*/true);
    EpRemove(ep, t);
    t->state = ThreadState::kRestart;
    t->last_error = KError::kAborted;
    x(c.enq);
    SchedEnqueue(t);
    if (config_.preemptible_deletion) {
      x(c.preempt);
      if (PreemptPending()) {
        x(c.preempted);
        return OpStatus::kPreempted;
      }
    }
  }
  x(c.done);
  T(ep->base, /*write=*/true);
  ep->qstate = EndpointObj::QState::kIdle;
  x(c.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::EpCancelBadged(EndpointObj* ep, std::uint64_t badge) {
  const auto& c = b().epcb;
  x(c.entry);
  T(ep->base);
  T(current_->base);

  // Mirrors the number of queue nodes left to scan into r8.
  const auto set_remaining = [&] {
    std::uint32_t remaining = 0;
    for (TcbObj* t = ep->abort.resume; t != nullptr; t = t->ep_next) {
      remaining++;
      if (t == ep->abort.end_marker) {
        break;
      }
    }
    exec_.SetReg(8, remaining);
  };
  const auto setup_own = [&] {
    ep->abort.valid = true;
    ep->abort.badge = badge;
    ep->abort.resume = ep->q_head;
    ep->abort.end_marker = ep->q_tail;  // field 2: new arrivals not scanned
    ep->abort.aborter = current_;
  };

  bool ours;
  x(c.resume);
  T(ep->base);
  if (ep->abort.valid) {
    // Continue the stored operation (possibly another thread's: complete it
    // before starting our own — resume field 4).
    ours = ep->abort.aborter == current_ && ep->abort.badge == badge;
    set_remaining();
  } else {
    x(c.setup);
    T(ep->base, /*write=*/true);
    T(current_->base);
    setup_own();
    ours = true;
    set_remaining();
  }

  {
    const std::uint64_t scan_badge = ep->abort.badge;
    while (true) {
      x(c.head);
      T(ep->base);
      TcbObj* node = ep->abort.resume;
      if (node == nullptr) {
        break;
      }
      x(c.check);
      T(node->base);
      T(ep->base);
      const bool last = node == ep->abort.end_marker;
      TcbObj* nxt = node->ep_next;
      if (node->blocked_badge == scan_badge) {
        x(c.remove);
        T(node->base, /*write=*/true);
        T(ep->base, /*write=*/true);
        EpRemove(ep, node);
        node->state = ThreadState::kRestart;
        node->last_error = KError::kAborted;
        x(c.enq);
        SchedEnqueue(node);
      } else {
        x(c.next);
        T(node->base);
      }
      ep->abort.resume = last ? nullptr : nxt;  // field 1: forward progress
      if (config_.preemptible_badged_abort) {
        x(c.preempt);
        if (PreemptPending()) {
          x(c.preempted);
          T(ep->base, /*write=*/true);
          return OpStatus::kPreempted;
        }
      }
    }
    x(c.done);
    T(ep->base, /*write=*/true);
    ep->abort.valid = false;
    if (!ours) {
      // We completed another thread's stored operation; our own abort runs
      // when our restartable system call re-executes (done's taken edge).
      x(c.preempted);
      return OpStatus::kPreempted;
    }
  }
  x(c.ret);
  return OpStatus::kDone;
}

// ---------- Deletion / revocation ----------

OpStatus Kernel::DestroyObject(CapSlot* slot) {
  const auto& d = b().destroy;
  const bool asid = config_.vspace == VSpaceKind::kAsid;
  x(d.entry);
  T(slot->addr);
  OpStatus st = OpStatus::kDone;
  const ObjType type = slot->cap.type;

  x(d.d_ep);
  if (type == ObjType::kEndpoint) {
    x(d.c_ep);
    st = EpCancelAll(objs_.Get<EndpointObj>(slot->cap.obj));
  } else {
    x(d.d_pd);
    if (type == ObjType::kPageDir) {
      x(d.c_pd);
      PageDirObj* pd = objs_.Get<PageDirObj>(slot->cap.obj);
      st = PdDelete(pd);
    } else {
      x(asid ? d.d_pool : d.d_pt);
      if (asid && type == ObjType::kAsidPool) {
        x(d.c_pool);
        st = AsidPoolDelete(objs_.Get<AsidPoolObj>(slot->cap.obj));
      } else if (!asid && type == ObjType::kPageTable) {
        x(d.c_pt);
        st = PtDelete(objs_.Get<PageTableObj>(slot->cap.obj));
      } else {
        x(d.d_frame);
        if (type == ObjType::kFrame) {
          x(d.c_frame);
          st = FrameUnmap(slot);
        } else {
          x(d.d_tcb);
          if (type == ObjType::kTcb) {
            x(d.t_tcb);
            TcbObj* t = objs_.Get<TcbObj>(slot->cap.obj);
            T(t->base, /*write=*/true);
            T(t->base + 8);
            if (t->blocked_on != 0) {
              EndpointObj* ep = objs_.Get<EndpointObj>(t->blocked_on);
              if (ep != nullptr) {
                EpRemove(ep, t);
              }
            }
            t->state = ThreadState::kInactive;
            x(d.t_deq);
            SchedDequeue(t);
          } else {
            // CNode / untyped / IRQ handler: no long-running teardown.
            x(d.simple);
            T(slot->addr);
          }
        }
      }
    }
  }

  x(d.check);
  if (st == OpStatus::kPreempted) {
    x(d.preempted);
    return OpStatus::kPreempted;
  }
  x(d.free);
  T(slot->addr, /*write=*/true);
  if (objs_.Find(slot->cap.obj) != nullptr) {
    objs_.Remove(slot->cap.obj);
  }
  x(d.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::CapDelete(CapSlot* slot) {
  const auto& d = b().capdel;
  x(d.entry);
  T(slot->addr);
  x(d.null);
  if (slot->IsNull()) {
    x(d.ret);
    return OpStatus::kDone;
  }
  x(d.final);
  if (slot->mdb_prev != nullptr) {
    T(slot->mdb_prev->addr);
  }
  if (slot->mdb_next != nullptr) {
    T(slot->mdb_next->addr);
  }
  if (Mdb::IsFinal(slot)) {
    x(d.destroy);
    const OpStatus st = DestroyObject(slot);
    x(d.check);
    if (st == OpStatus::kPreempted) {
      x(d.preempted);
      return OpStatus::kPreempted;
    }
  }
  x(d.unlink);
  T(slot->addr, /*write=*/true);
  if (slot->mdb_prev != nullptr) {
    T(slot->mdb_prev->addr, /*write=*/true);
  }
  if (slot->mdb_next != nullptr) {
    T(slot->mdb_next->addr, /*write=*/true);
  }
  Mdb::Remove(slot);
  x(d.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::CNodeDelete(CapSlot* cn_slot, const SyscallArgs& args) {
  const auto& d = b().cnodedel;
  x(d.entry);
  CNodeObj* cn = objs_.Get<CNodeObj>(cn_slot->cap.obj);
  T(cn_slot->addr);
  if (cn == nullptr || args.arg0 >= cn->NumSlots()) {
    x(d.bad);
    current_->last_error = KError::kInvalidArg;
    return OpStatus::kDone;
  }
  CapSlot* victim = &cn->slots[args.arg0];
  T(victim->addr);
  x(d.del);
  const OpStatus st = CapDelete(victim);
  x(d.ret);
  return st;
}

OpStatus Kernel::CNodeRevoke(CapSlot* cn_slot, const SyscallArgs& args) {
  const auto& r = b().revoke;
  x(r.entry);
  CNodeObj* cn = objs_.Get<CNodeObj>(cn_slot->cap.obj);
  T(cn_slot->addr);
  if (cn == nullptr || args.arg0 >= cn->NumSlots() || cn->slots[args.arg0].IsNull()) {
    x(r.bad);
    current_->last_error = KError::kInvalidArg;
    return OpStatus::kDone;
  }
  CapSlot* root = &cn->slots[args.arg0];
  T(root->addr);
  // Count descendants for the loop-bound mirror.
  {
    std::uint32_t n = 0;
    for (CapSlot* s = Mdb::FirstDescendant(root); s != nullptr;
         s = Mdb::NextDescendant(root, s)) {
      n++;
    }
    exec_.SetReg(9, n);
  }

  x(r.badged);
  T(root->addr);
  if (root->cap.type == ObjType::kEndpoint && root->cap.badge != kBadgeNone) {
    // Revoking a badge: abort in-flight IPC using it first (Section 3.4).
    x(r.abort);
    EndpointObj* ep = objs_.Get<EndpointObj>(root->cap.obj);
    const OpStatus st = EpCancelBadged(ep, root->cap.badge);
    x(r.abort_check);
    if (st == OpStatus::kPreempted) {
      x(r.preempted);
      return OpStatus::kPreempted;
    }
  }

  while (true) {
    x(r.loop);
    T(root->addr);
    CapSlot* child = Mdb::FirstDescendant(root);
    if (child == nullptr) {
      break;
    }
    x(r.child);
    T(child->addr);
    x(r.del);
    const OpStatus st = CapDelete(child);
    x(r.del_check);
    if (st == OpStatus::kPreempted) {
      x(r.preempted);
      return OpStatus::kPreempted;
    }
    if (config_.preemptible_deletion) {
      x(r.preempt);
      if (PreemptPending()) {
        x(r.preempted);
        return OpStatus::kPreempted;
      }
    }
  }
  x(r.ret);
  // With all children gone, a revoked untyped's memory is reclaimed: the
  // watermark rewinds to the region base (seL4's freeIndex reset).
  if (root->cap.type == ObjType::kUntyped) {
    UntypedObj* ut = objs_.Get<UntypedObj>(root->cap.obj);
    if (ut != nullptr) {
      T(ut->base, /*write=*/true);
      ut->watermark = ut->base;
      ut->retype_active = false;
    }
  }
  return OpStatus::kDone;
}

OpStatus Kernel::CNodeMint(CapSlot* cn_slot, const SyscallArgs& args) {
  const auto& m = b().mint;
  x(m.entry);
  CNodeObj* cn = objs_.Get<CNodeObj>(cn_slot->cap.obj);
  T(cn_slot->addr);
  x(m.decode);
  CapSlot* src = DecodeCap(current_, static_cast<std::uint32_t>(args.arg0));
  x(m.chk);
  bool ok = cn != nullptr && src != nullptr && args.dest_index < cn->NumSlots() &&
            cn->slots[args.dest_index].IsNull();
  // A badged cap may not be re-badged (Mint only).
  if (ok && args.label == InvLabel::kCNodeMint && src->cap.type == ObjType::kEndpoint &&
      src->cap.badge != kBadgeNone && args.badge != src->cap.badge) {
    ok = false;
  }
  if (!ok) {
    x(m.err);
    current_->last_error = KError::kInvalidArg;
    return OpStatus::kDone;
  }
  x(m.insert);
  CapSlot* dest = &cn->slots[args.dest_index];
  T(src->addr);
  T(dest->addr, /*write=*/true);
  T(src->addr, /*write=*/true);
  switch (args.label) {
    case InvLabel::kCNodeMove:
      // The cap changes address but keeps its derivation-tree position.
      Mdb::Replace(src, dest);
      break;
    case InvLabel::kCNodeCopy:
      // A plain copy: a sibling at the same depth, badge preserved.
      dest->cap = src->cap;
      Mdb::InsertSibling(src, dest);
      break;
    default:  // kCNodeMint: a badged child.
      dest->cap = src->cap;
      dest->cap.badge = args.badge != kBadgeNone ? args.badge : src->cap.badge;
      Mdb::InsertChild(src, dest);
      break;
  }
  x(m.ret);
  return OpStatus::kDone;
}

// ---------- TCB / IRQ invocations ----------

OpStatus Kernel::TcbInvoke(CapSlot* slot, const SyscallArgs& args) {
  const auto& tb = b().tcb;
  TcbObj* t = objs_.Get<TcbObj>(slot->cap.obj);
  x(tb.entry);
  T(slot->addr);
  if (t == nullptr) {
    // Walk the dispatcher to bad.
    x(tb.d_config);
    x(tb.d_resume);
    x(tb.d_suspend);
    x(tb.d_setprio);
    x(tb.bad);
    current_->last_error = KError::kInvalidCap;
    x(tb.ret);
    return OpStatus::kDone;
  }
  switch (args.label) {
    case InvLabel::kTcbConfigure: {
      x(tb.d_config);
      x(tb.config);
      T(t->base, /*write=*/true);
      if (args.arg0 != 0) {
        t->cspace_root = args.arg0;
      }
      if (args.arg1 != 0) {
        t->vspace = args.arg1;
      }
      t->fault_handler_cptr = static_cast<std::uint32_t>(args.arg2);
      if (config_.vspace == VSpaceKind::kAsid && t->vspace != 0) {
        PageDirObj* pd = objs_.Get<PageDirObj>(t->vspace);
        T(t->base);
        if (pd != nullptr && pd->asid == 0) {
          x(tb.config_asid);
          if (!AsidAlloc(pd)) {
            current_->last_error = KError::kNotEnoughMemory;
          }
        }
      }
      break;
    }
    case InvLabel::kTcbResume: {
      x(tb.d_config);
      x(tb.d_resume);
      x(tb.resume);
      T(t->base, /*write=*/true);
      if (t->state == ThreadState::kInactive || t->state == ThreadState::kRestart) {
        t->state = ThreadState::kRunning;
      }
      x(tb.resume_enq);
      SchedEnqueue(t);
      break;
    }
    case InvLabel::kTcbSuspend: {
      x(tb.d_config);
      x(tb.d_resume);
      x(tb.d_suspend);
      x(tb.suspend);
      T(t->base, /*write=*/true);
      if (t->blocked_on != 0) {
        EndpointObj* ep = objs_.Get<EndpointObj>(t->blocked_on);
        if (ep != nullptr) {
          T(ep->base, /*write=*/true);
          EpRemove(ep, t);
        }
      }
      t->state = ThreadState::kInactive;
      if (t == current_) {
        choose_new_ = true;
      }
      x(tb.suspend_deq);
      SchedDequeue(t);
      break;
    }
    case InvLabel::kTcbSetPriority: {
      x(tb.d_config);
      x(tb.d_resume);
      x(tb.d_suspend);
      x(tb.d_setprio);
      x(tb.setprio);
      T(t->base, /*write=*/true);
      x(tb.sp_deq);
      SchedDequeue(t);
      t->prio = static_cast<std::uint8_t>(args.arg0 & 0xFF);
      x(tb.sp_enq);
      SchedEnqueue(t);
      // Priority changes can dethrone the running thread.
      if (t == current_ || (Runnable(t) && t->prio > current_->prio)) {
        choose_new_ = true;
      }
      break;
    }
    default: {
      x(tb.d_config);
      x(tb.d_resume);
      x(tb.d_suspend);
      x(tb.d_setprio);
      x(tb.bad);
      current_->last_error = KError::kInvalidArg;
      break;
    }
  }
  x(tb.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::IrqInvoke(CapSlot* slot, const SyscallArgs& args) {
  const auto& v = b().irqinv;
  IrqHandlerObj* h = objs_.Get<IrqHandlerObj>(slot->cap.obj);
  x(v.entry);
  T(slot->addr);
  // A handler cap for a line outside the controller is as invalid as a stale
  // cap: both would index past irq_bindings_ / the controller's mask array.
  if (h == nullptr || h->line >= InterruptController::kNumLines) {
    x(v.d_set);
    x(v.ack);
    current_->last_error = KError::kInvalidCap;
    x(v.ret);
    return OpStatus::kDone;
  }
  x(v.d_set);
  if (args.label == InvLabel::kIrqSetHandler) {
    x(v.set);
    T(image_->SymAddr(image_->syms.irq_bindings) + static_cast<Addr>(h->line) * 8,
      /*write=*/true);
    h->notify_ep = args.arg0;
    irq_bindings_[h->line] = args.arg0;
    machine_->irq().Unmask(h->line);
  } else {
    // Ack: re-enable the line after the handler finished.
    x(v.ack);
    machine_->irq().Unmask(h->line);
  }
  x(v.ret);
  return OpStatus::kDone;
}

}  // namespace pmk
