// Scheduler: lazy scheduling (Figure 2), Benno scheduling (Figure 3) and the
// two-level priority bitmap (Section 3.2).

#include <bit>
#include <cassert>
#include <stdexcept>

#include "src/kernel/kernel.h"

namespace pmk {

// ---------- Functional queue primitives (uncharged) ----------

void Kernel::QueuePushBack(TcbObj* t) {
  assert(!t->in_run_queue);
  RunQueue& q = queues_[t->prio];
  t->sched_prev = q.tail;
  t->sched_next = nullptr;
  if (q.tail != nullptr) {
    q.tail->sched_next = t;
  } else {
    q.head = t;
  }
  q.tail = t;
  t->in_run_queue = true;
  BitmapSet(t->prio);
}

void Kernel::QueueRemove(TcbObj* t) {
  assert(t->in_run_queue);
  RunQueue& q = queues_[t->prio];
  if (t->sched_prev != nullptr) {
    t->sched_prev->sched_next = t->sched_next;
  } else {
    q.head = t->sched_next;
  }
  if (t->sched_next != nullptr) {
    t->sched_next->sched_prev = t->sched_prev;
  } else {
    q.tail = t->sched_prev;
  }
  t->sched_prev = t->sched_next = nullptr;
  t->in_run_queue = false;
  BitmapClearIfEmpty(t->prio);
}

void Kernel::BitmapSet(std::uint8_t prio) {
  const std::uint32_t bucket = prio / 32u;
  bitmap_l2_[bucket] |= (1u << (prio % 32u));
  bitmap_l1_ |= (1u << bucket);
}

void Kernel::BitmapClearIfEmpty(std::uint8_t prio) {
  if (queues_[prio].head != nullptr) {
    return;
  }
  const std::uint32_t bucket = prio / 32u;
  bitmap_l2_[bucket] &= ~(1u << (prio % 32u));
  if (bitmap_l2_[bucket] == 0) {
    bitmap_l1_ &= ~(1u << bucket);
  }
}

int Kernel::HighestBitmapPrio() const {
  if (bitmap_l1_ == 0) {
    return -1;
  }
  // Two CLZ instructions: find the highest bucket, then the highest bit.
  const std::uint32_t bucket = 31u - static_cast<std::uint32_t>(std::countl_zero(bitmap_l1_));
  const std::uint32_t bit =
      31u - static_cast<std::uint32_t>(std::countl_zero(bitmap_l2_[bucket]));
  return static_cast<int>(bucket * 32u + bit);
}

// ---------- Charged scheduler operations ----------

void Kernel::SchedEnqueue(TcbObj* t, bool allow_current) {
  const auto& q = b().enq;
  x(q.entry);
  T(t->base);
  const bool skip_current =
      !allow_current && t == current_ && config_.scheduler == SchedulerKind::kBenno;
  if (t->in_run_queue || !Runnable(t) || skip_current) {
    x(q.ret);
    return;
  }
  x(q.link);
  RunQueue& rq = queues_[t->prio];
  T(image_->SymAddr(image_->syms.runqueues) + static_cast<Addr>(t->prio) * 8, /*write=*/true);
  if (rq.tail != nullptr) {
    T(rq.tail->base, /*write=*/true);
  }
  QueuePushBack(t);
  if (config_.scheduler_bitmap) {
    x(q.bitmap);
  }
  x(q.ret);
}

void Kernel::SchedDequeue(TcbObj* t) {
  const auto& q = b().deq;
  x(q.entry);
  T(t->base);
  if (!t->in_run_queue) {
    x(q.ret);
    return;
  }
  x(q.link);
  T(image_->SymAddr(image_->syms.runqueues) + static_cast<Addr>(t->prio) * 8, /*write=*/true);
  if (t->sched_prev != nullptr) {
    T(t->sched_prev->base, /*write=*/true);
  } else if (t->sched_next != nullptr) {
    T(t->sched_next->base, /*write=*/true);
  }
  QueueRemove(t);
  if (config_.scheduler_bitmap) {
    x(q.bitmap);
  }
  x(q.ret);
}

TcbObj* Kernel::ChooseThread() {
  const auto& c = b().choose;
  const Addr queues_base = image_->SymAddr(image_->syms.runqueues);

  if (config_.scheduler == SchedulerKind::kLazy) {
    // Figure 2: walk priorities; dequeue blocked threads found at the head.
    x(c.lz_entry);
    for (int prio = KernelConfig::kNumPriorities - 1; prio >= 0; --prio) {
      x(c.lz_outer);
      while (true) {
        x(c.lz_head);
        T(queues_base + static_cast<Addr>(prio) * 8);
        TcbObj* head = queues_[prio].head;
        if (head == nullptr) {
          break;
        }
        x(c.lz_runnable);
        T(head->base);
        T(head->base + 8);
        if (Runnable(head)) {
          x(c.lz_found);
          return head;  // lazy scheduling leaves the thread in the queue
        }
        x(c.lz_deq);
        T(head->base, /*write=*/true);
        QueueRemove(head);
      }
    }
    x(c.lz_outer);  // final iteration: guard fails, exit to idle
    x(c.lz_idle);
    return idle_;
  }

  if (config_.scheduler_bitmap) {
    // Figure 3 + Section 3.2: two loads, two CLZ.
    x(c.bb_entry);
    const int prio = HighestBitmapPrio();
    x(c.bb_empty);
    if (prio < 0) {
      x(c.bb_idle);
      return idle_;
    }
    x(c.bb_found);
    TcbObj* t = queues_[prio].head;
    T(queues_base + static_cast<Addr>(prio) * 8, /*write=*/true);
    T(t->base, /*write=*/true);
    QueueRemove(t);  // switchToThread dequeues the chosen thread
    return t;
  }

  // Figure 3 without the bitmap: scan priorities for the first head.
  x(c.bn_entry);
  TcbObj* found = nullptr;
  for (int prio = KernelConfig::kNumPriorities - 1; prio >= 0; --prio) {
    x(c.bn_loop);
    T(queues_base + static_cast<Addr>(prio) * 8);
    if (queues_[prio].head != nullptr) {
      found = queues_[prio].head;
      break;
    }
  }
  x(c.bn_done);
  if (found == nullptr) {
    x(c.bn_idle);
    return idle_;
  }
  x(c.bn_found);
  T(found->base, /*write=*/true);
  T(queues_base + static_cast<Addr>(found->prio) * 8, /*write=*/true);
  QueueRemove(found);
  return found;
}

void Kernel::AttemptSwitch(TcbObj* woken) {
  const auto& a = b().asw;
  x(a.entry);
  T(woken->base);
  T(current_->base);
  if (config_.scheduler == SchedulerKind::kLazy) {
    // No direct-switch trick: waking a higher-priority thread forces a full
    // scheduler pass at kernel exit.
    if (woken->prio > current_->prio) {
      choose_new_ = true;
    }
    x(a.lazy_skip);
    T(woken->base);
    if (woken->in_run_queue) {
      x(a.ret);
      return;
    }
    x(a.enqueue);
    SchedEnqueue(woken);
    x(a.ret);
    return;
  }
  x(a.higher);
  if (woken->prio >= current_->prio) {
    // Benno scheduling: switch directly, do not enqueue (Section 3.1).
    x(a.direct);
    sched_action_ = woken;
    choose_new_ = false;
    x(a.ret);
    return;
  }
  x(a.enqueue);
  SchedEnqueue(woken);
  x(a.ret);
}

void Kernel::SwitchTo(TcbObj* t) {
  current_ = t;
  sched_action_ = nullptr;
  choose_new_ = false;
}

void Kernel::ScheduleImpl() {
  const auto& s = b().sched;
  x(s.entry);
  T(current_->base);

  const bool resume_current = sched_action_ == nullptr && !choose_new_;
  x(s.requeue);
  if (!resume_current && current_ != idle_ && Runnable(current_) && !current_->in_run_queue) {
    x(s.requeue_call);
    SchedEnqueue(current_, /*allow_current=*/true);
  }
  x(s.fast);
  TcbObj* target;
  if (resume_current) {
    target = current_;
  } else if (sched_action_ != nullptr) {
    target = sched_action_;
  } else {
    x(s.choose);
    target = ChooseThread();
  }
  x(s.switch_to);
  T(target->base, /*write=*/true);
  if (target != current_ && target != idle_) {
    T(target->base + 32);  // context restore
  }
  SwitchTo(target);
  x(s.ret);
}

}  // namespace pmk
