// Kernel state snapshotting: the deep copy behind src/engine checkpoints.
//
// A clone must replay cycle-for-cycle identically to the original, so it
// copies the complete mutable kernel state and remaps every intrusive pointer
// — scheduler queue links, endpoint queue links and badged-abort four-tuples,
// reply chains, MDB derivation links, page-table shadow back-pointers — into
// the cloned heap. Identity is structural: a kernel object maps to its
// clone's object at the same physical base address, and a CapSlot maps to the
// same slot index of the cloned CNode. Any pointer that fails to resolve
// throws, so an unremapped field added later surfaces as a loud error in the
// snapshot-fidelity tests instead of silent cross-heap aliasing.

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/kernel/kernel.h"

namespace pmk {

namespace {

// old pointer (object or slot) -> its counterpart in the cloned heap.
using PtrMap = std::unordered_map<const void*, void*>;

template <typename T>
T* Remap(const PtrMap& map, T* old, const char* what) {
  if (old == nullptr) {
    return nullptr;
  }
  const auto it = map.find(old);
  if (it == map.end()) {
    throw std::logic_error(std::string("Kernel::Clone: dangling ") + what + " pointer");
  }
  return static_cast<T*>(it->second);
}

}  // namespace

Kernel::Kernel(CloneTag, const Kernel& other, Machine* machine)
    : config_(other.config_),
      machine_(machine),
      image_(other.image_),  // shared: immutable after construction
      exec_(&image_->prog, machine),
      alloc_next_(other.alloc_next_),
      queues_(other.queues_),
      bitmap_l1_(other.bitmap_l1_),
      bitmap_l2_(other.bitmap_l2_),
      current_(other.current_),
      idle_(nullptr),
      sched_action_(other.sched_action_),
      choose_new_(other.choose_new_),
      irq_bindings_(other.irq_bindings_),
      asid_pool_(other.asid_pool_),
      irq_latencies_(other.irq_latencies_),
      fastpath_hits_(other.fastpath_hits_) {
  // The fresh executor picked its charge mode from the global reference flag;
  // a clone must replay on the same path as its source regardless of when the
  // flag was flipped.
  exec_.set_charge_mode(other.exec_.charge_mode());
}

std::unique_ptr<Kernel> Kernel::Clone(Machine* machine) const {
  if (exec_.InPath()) {
    throw std::logic_error("Kernel::Clone: executor is mid-path; snapshot between entries only");
  }
  std::unique_ptr<Kernel> k(new Kernel(CloneTag{}, *this, machine));

  // Pass 1: clone every object (pointers still aimed at the old heap) and
  // record old -> new object identity. The source heap's alignment/overlap
  // invariants transfer to the clone, so the per-insert audit is skipped.
  PtrMap ptr;
  std::size_t n_slots = 0;
  for (const auto& [base, obj] : objs_.objects()) {
    if (obj->type == ObjType::kCNode) {
      n_slots += static_cast<const CNodeObj*>(obj.get())->slots.size();
    }
  }
  ptr.reserve(objs_.objects().size() + objs_.untypeds().size() + 1 + n_slots);
  for (const auto& [base, obj] : objs_.objects()) {
    ptr[obj.get()] = k->objs_.InsertUnchecked(obj->CloneObj());
  }
  for (const auto& [base, ut] : objs_.untypeds()) {
    ptr[ut.get()] = k->objs_.InsertUnchecked(ut->CloneObj());
  }
  // The idle thread exists from boot and lives outside the object table.
  k->idle_storage_ = std::make_unique<TcbObj>(*idle_storage_);
  k->idle_ = k->idle_storage_.get();
  ptr[idle_] = k->idle_;

  // Pass 2: slot identity — a slot maps to the same index of the cloned
  // CNode. (CapSlots live only inside CNode slot arrays.)
  for (const auto& [base, obj] : objs_.objects()) {
    if (obj->type != ObjType::kCNode) {
      continue;
    }
    const auto* oc = static_cast<const CNodeObj*>(obj.get());
    auto* nc = static_cast<CNodeObj*>(ptr.at(obj.get()));
    for (std::size_t i = 0; i < oc->slots.size(); ++i) {
      ptr[&oc->slots[i]] = &nc->slots[i];
    }
  }

  // Pass 3: remap every intrusive pointer in the cloned heap.
  const auto fix_tcb = [&ptr](TcbObj*& p) { p = Remap(ptr, p, "TCB"); };
  const auto fix_slot = [&ptr](CapSlot*& p) { p = Remap(ptr, p, "CapSlot"); };
  const auto fix_object = [&](const KObject* old_obj) {
    KObject* copy = static_cast<KObject*>(ptr.at(old_obj));
    switch (copy->type) {
      case ObjType::kEndpoint: {
        auto* ep = static_cast<EndpointObj*>(copy);
        fix_tcb(ep->q_head);
        fix_tcb(ep->q_tail);
        fix_tcb(ep->abort.resume);
        fix_tcb(ep->abort.end_marker);
        fix_tcb(ep->abort.aborter);
        break;
      }
      case ObjType::kTcb: {
        auto* t = static_cast<TcbObj*>(copy);
        fix_tcb(t->sched_next);
        fix_tcb(t->sched_prev);
        fix_tcb(t->ep_next);
        fix_tcb(t->ep_prev);
        fix_tcb(t->reply_to);
        break;
      }
      case ObjType::kCNode: {
        auto* cn = static_cast<CNodeObj*>(copy);
        for (CapSlot& s : cn->slots) {
          fix_slot(s.mdb_prev);
          fix_slot(s.mdb_next);
        }
        break;
      }
      case ObjType::kPageTable: {
        auto* pt = static_cast<PageTableObj*>(copy);
        for (CapSlot*& s : pt->shadow) {
          fix_slot(s);
        }
        break;
      }
      case ObjType::kPageDir: {
        auto* pd = static_cast<PageDirObj*>(copy);
        for (CapSlot*& s : pd->shadow) {
          fix_slot(s);
        }
        break;
      }
      default:
        break;  // untyped, frame, ASID pool, IRQ handler: address-based only
    }
  };
  for (const auto& [base, obj] : objs_.objects()) {
    fix_object(obj.get());
  }
  for (const auto& [base, ut] : objs_.untypeds()) {
    fix_object(ut.get());
  }
  {
    // Idle's links are normally null (it is never enqueued), but remap them
    // anyway so a future scheduler change cannot silently alias heaps.
    fix_tcb(k->idle_->sched_next);
    fix_tcb(k->idle_->sched_prev);
    fix_tcb(k->idle_->ep_next);
    fix_tcb(k->idle_->ep_prev);
    fix_tcb(k->idle_->reply_to);
  }

  // Pass 4: kernel-level roots.
  for (RunQueue& q : k->queues_) {
    fix_tcb(q.head);
    fix_tcb(q.tail);
  }
  fix_tcb(k->current_);
  fix_tcb(k->sched_action_);
  return k;
}

}  // namespace pmk
