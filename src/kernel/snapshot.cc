// Kernel state snapshotting: the deep copy behind src/engine checkpoints.
//
// A clone must replay cycle-for-cycle identically to the original, so it
// copies the complete mutable kernel state and remaps every intrusive pointer
// — scheduler queue links, endpoint queue links and badged-abort four-tuples,
// reply chains, MDB derivation links, page-table shadow back-pointers — into
// the cloned heap. Identity is structural: a kernel object maps to its
// clone's object at the same physical base address, and a CapSlot maps to the
// same slot index of the cloned CNode. Any pointer that fails to resolve
// throws, so an unremapped field added later surfaces as a loud error in the
// snapshot-fidelity tests instead of silent cross-heap aliasing.

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/kernel/kernel.h"

namespace pmk {

namespace {

// old pointer -> its counterpart in the cloned heap. Objects are a sorted
// flat vector probed by binary search; CapSlots (which live only inside
// CNode slot arrays) are whole-array ranges resolved by offset arithmetic,
// so remapping costs no per-slot table entry or allocation — forking a
// checkpoint is on the hot path of the measurement benches.
class PtrMap {
 public:
  void AddObj(const void* old_obj, void* new_obj) { objs_.push_back({old_obj, new_obj}); }
  void AddSlotRange(const CapSlot* old_begin, std::size_t n, CapSlot* new_begin) {
    slots_.push_back({old_begin, old_begin + n, new_begin});
  }
  void Seal() {
    std::sort(objs_.begin(), objs_.end(),
              [](const ObjEntry& a, const ObjEntry& b) {
                return std::less<const void*>()(a.old_obj, b.old_obj);
              });
    std::sort(slots_.begin(), slots_.end(),
              [](const SlotRange& a, const SlotRange& b) {
                return std::less<const CapSlot*>()(a.old_begin, b.old_begin);
              });
  }
  void* FindObj(const void* old_obj, const char* what) const {
    const auto it = std::partition_point(objs_.begin(), objs_.end(), [&](const ObjEntry& e) {
      return std::less<const void*>()(e.old_obj, old_obj);
    });
    if (it == objs_.end() || it->old_obj != old_obj) {
      throw std::logic_error(std::string("Kernel::Clone: dangling ") + what + " pointer");
    }
    return it->new_obj;
  }
  CapSlot* FindSlot(const CapSlot* old_slot, const char* what) const {
    const auto it =
        std::partition_point(slots_.begin(), slots_.end(), [&](const SlotRange& r) {
          return !std::less<const CapSlot*>()(old_slot, r.old_end);
        });
    if (it == slots_.end() || std::less<const CapSlot*>()(old_slot, it->old_begin)) {
      throw std::logic_error(std::string("Kernel::Clone: dangling ") + what + " pointer");
    }
    return it->new_begin + (old_slot - it->old_begin);
  }

 private:
  struct ObjEntry {
    const void* old_obj;
    void* new_obj;
  };
  struct SlotRange {
    const CapSlot* old_begin;
    const CapSlot* old_end;
    CapSlot* new_begin;
  };
  std::vector<ObjEntry> objs_;
  std::vector<SlotRange> slots_;
};

}  // namespace

Kernel::Kernel(CloneTag, const Kernel& other, Machine* machine)
    : config_(other.config_),
      machine_(machine),
      image_(other.image_),  // shared: immutable after construction
      exec_(&image_->prog, machine),
      alloc_next_(other.alloc_next_),
      queues_(other.queues_),
      bitmap_l1_(other.bitmap_l1_),
      bitmap_l2_(other.bitmap_l2_),
      current_(other.current_),
      idle_(nullptr),
      sched_action_(other.sched_action_),
      choose_new_(other.choose_new_),
      irq_bindings_(other.irq_bindings_),
      asid_pool_(other.asid_pool_),
      irq_latencies_(other.irq_latencies_),
      fastpath_hits_(other.fastpath_hits_) {
  // The fresh executor picked its charge mode from the global reference flag;
  // a clone must replay on the same path as its source regardless of when the
  // flag was flipped.
  exec_.set_charge_mode(other.exec_.charge_mode());
}

std::unique_ptr<Kernel> Kernel::Clone(Machine* machine) const {
  if (exec_.InPath()) {
    throw std::logic_error("Kernel::Clone: executor is mid-path; snapshot between entries only");
  }
  std::unique_ptr<Kernel> k(new Kernel(CloneTag{}, *this, machine));

  // Pass 1: clone every object (pointers still aimed at the old heap) and
  // record old -> new object identity. The source heap's alignment/overlap
  // invariants transfer to the clone, so the per-insert audit is skipped.
  PtrMap ptr;
  std::vector<std::pair<const CNodeObj*, CNodeObj*>> cnodes;
  for (const auto& [base, obj] : objs_.objects()) {
    KObject* copy = k->objs_.InsertUnchecked(obj->CloneObj());
    ptr.AddObj(obj.get(), copy);
    if (obj->type == ObjType::kCNode) {
      cnodes.emplace_back(static_cast<const CNodeObj*>(obj.get()),
                          static_cast<CNodeObj*>(copy));
    }
  }
  for (const auto& [base, ut] : objs_.untypeds()) {
    ptr.AddObj(ut.get(), k->objs_.InsertUnchecked(ut->CloneObj()));
  }
  // The idle thread exists from boot and lives outside the object table.
  k->idle_storage_ = std::make_unique<TcbObj>(*idle_storage_);
  k->idle_ = k->idle_storage_.get();
  ptr.AddObj(idle_, k->idle_);

  // Pass 2: slot identity — a slot maps to the same index of the cloned
  // CNode. (CapSlots live only inside CNode slot arrays.)
  for (const auto& [oc, nc] : cnodes) {
    ptr.AddSlotRange(oc->slots.data(), oc->slots.size(), nc->slots.data());
  }
  ptr.Seal();

  // Pass 3: remap every intrusive pointer in the cloned heap.
  const auto fix_tcb = [&ptr](TcbObj*& p) {
    if (p != nullptr) {
      p = static_cast<TcbObj*>(ptr.FindObj(p, "TCB"));
    }
  };
  const auto fix_slot = [&ptr](CapSlot*& p) {
    if (p != nullptr) {
      p = ptr.FindSlot(p, "CapSlot");
    }
  };
  const auto fix_object = [&](const KObject* old_obj) {
    KObject* copy = static_cast<KObject*>(ptr.FindObj(old_obj, "object"));
    switch (copy->type) {
      case ObjType::kEndpoint: {
        auto* ep = static_cast<EndpointObj*>(copy);
        fix_tcb(ep->q_head);
        fix_tcb(ep->q_tail);
        fix_tcb(ep->abort.resume);
        fix_tcb(ep->abort.end_marker);
        fix_tcb(ep->abort.aborter);
        break;
      }
      case ObjType::kTcb: {
        auto* t = static_cast<TcbObj*>(copy);
        fix_tcb(t->sched_next);
        fix_tcb(t->sched_prev);
        fix_tcb(t->ep_next);
        fix_tcb(t->ep_prev);
        fix_tcb(t->reply_to);
        break;
      }
      case ObjType::kCNode: {
        auto* cn = static_cast<CNodeObj*>(copy);
        for (CapSlot& s : cn->slots) {
          fix_slot(s.mdb_prev);
          fix_slot(s.mdb_next);
        }
        break;
      }
      case ObjType::kPageTable: {
        auto* pt = static_cast<PageTableObj*>(copy);
        for (CapSlot*& s : pt->shadow) {
          fix_slot(s);
        }
        break;
      }
      case ObjType::kPageDir: {
        auto* pd = static_cast<PageDirObj*>(copy);
        for (CapSlot*& s : pd->shadow) {
          fix_slot(s);
        }
        break;
      }
      default:
        break;  // untyped, frame, ASID pool, IRQ handler: address-based only
    }
  };
  for (const auto& [base, obj] : objs_.objects()) {
    fix_object(obj.get());
  }
  for (const auto& [base, ut] : objs_.untypeds()) {
    fix_object(ut.get());
  }
  {
    // Idle's links are normally null (it is never enqueued), but remap them
    // anyway so a future scheduler change cannot silently alias heaps.
    fix_tcb(k->idle_->sched_next);
    fix_tcb(k->idle_->sched_prev);
    fix_tcb(k->idle_->ep_next);
    fix_tcb(k->idle_->ep_prev);
    fix_tcb(k->idle_->reply_to);
  }

  // Pass 4: kernel-level roots.
  for (RunQueue& q : k->queues_) {
    fix_tcb(q.head);
    fix_tcb(q.tail);
  }
  fix_tcb(k->current_);
  fix_tcb(k->sched_action_);
  return k;
}

}  // namespace pmk
