// Core kernel value types: object kinds, rights, syscall numbers, results.

#ifndef SRC_KERNEL_TYPES_H_
#define SRC_KERNEL_TYPES_H_

#include <cstdint>

#include "src/hw/cache.h"  // for Addr

namespace pmk {

enum class ObjType : std::uint8_t {
  kNull,
  kUntyped,
  kCNode,
  kTcb,
  kEndpoint,
  kFrame,
  kPageTable,
  kPageDir,
  kAsidPool,
  kIrqHandler,
  kReply,
};

const char* ObjTypeName(ObjType t);

struct CapRights {
  bool read = true;
  bool write = true;
  bool grant = true;
};

// System calls (IPC primitives) and object invocations (decoded from the
// message label of a Call on an object capability, as in seL4).
enum class SysOp : std::uint8_t {
  kCall,
  kSend,
  kRecv,
  kReplyRecv,
  kReply,
  kYield,
};

inline const char* SysOpName(SysOp op) {
  switch (op) {
    case SysOp::kCall:
      return "Call";
    case SysOp::kSend:
      return "Send";
    case SysOp::kRecv:
      return "Recv";
    case SysOp::kReplyRecv:
      return "ReplyRecv";
    case SysOp::kReply:
      return "Reply";
    case SysOp::kYield:
      return "Yield";
  }
  return "?";
}

enum class InvLabel : std::uint8_t {
  kNone,
  kUntypedRetype,     // untyped cap: create objects (Section 3.5)
  kCNodeDelete,       // cnode cap: delete cap at index (Section 3.3 / 3.6)
  kCNodeRevoke,       // cnode cap: revoke descendants (Section 3.4)
  kCNodeMint,         // cnode cap: copy cap with new badge
  kCNodeCopy,         // cnode cap: plain copy (badge preserved)
  kCNodeMove,         // cnode cap: move cap between slots
  kTcbConfigure,
  kTcbResume,
  kTcbSuspend,
  kTcbSetPriority,
  kFrameMap,
  kFrameUnmap,
  kPageTableMap,
  kIrqSetHandler,
  kIrqAck,
};

enum class ThreadState : std::uint8_t {
  kInactive,
  kRunning,          // runnable (includes the currently-executing thread)
  kBlockedOnSend,
  kBlockedOnRecv,
  kBlockedOnReply,   // performed a Call, waiting for Reply
  kRestart,          // aborted/preempted; will re-execute current syscall
  kIdle,
};

const char* ThreadStateName(ThreadState s);

// Result of one kernel entry.
enum class KernelExit : std::uint8_t {
  kDone,       // operation completed (possibly with an error reported to user)
  kPreempted,  // operation hit a preemption point with an interrupt pending
};

// Error codes reported to user threads.
enum class KError : std::uint8_t {
  kOk,
  kInvalidCap,
  kInvalidArg,
  kNotEnoughMemory,
  kRevokeFirst,
  kAborted,     // IPC aborted by endpoint deletion / badge revocation
  kDeleted,
};

const char* KErrorName(KError e);

// Result of an internal (possibly preemptible) kernel operation.
enum class OpStatus : std::uint8_t {
  kDone,
  kPreempted,
  kError,
};

inline constexpr std::uint64_t kBadgeNone = 0;

}  // namespace pmk

#endif  // SRC_KERNEL_TYPES_H_
