// Address-space management (Section 3.6): the original ASID-table design
// (Figure 4) with lazy deletion, and the shadow-page-table design (Figure 5)
// with eager back-pointers and preemptible address-space deletion.

#include <cassert>

#include "src/kernel/kernel.h"

namespace pmk {

// ---------- ASID variant ----------

bool Kernel::AsidAlloc(PageDirObj* pd) {
  const auto& a = b().asid_alloc;
  x(a.entry);
  T(image_->SymAddr(image_->syms.asid_root));
  AsidPoolObj* pool = objs_.Get<AsidPoolObj>(asid_pool_);
  if (pool == nullptr) {
    // Scan finds nothing without a pool; walk the loop once for the check.
    x(a.loop);
    x(a.chk);
    x(a.fail);
    return false;
  }
  std::uint32_t found = 0;
  for (std::uint32_t i = 1; i < AsidPoolObj::kEntries; ++i) {
    x(a.loop);
    T(pool->EntryAddr(i));
    if (pool->pd[i] == 0) {
      found = i;
      break;
    }
  }
  x(a.chk);
  if (found == 0) {
    x(a.fail);
    return false;
  }
  x(a.found);
  T(pool->EntryAddr(found), /*write=*/true);
  T(pd->base, /*write=*/true);
  pool->pd[found] = pd->base;
  pd->asid = found;
  return true;
}

OpStatus Kernel::AsidPoolDelete(AsidPoolObj* pool) {
  const auto& a = b().pool_del;
  x(a.entry);
  T(pool->base);
  // Deleting a pool visits all 1024 entries, cleaning up every address space
  // registered in it — inherently hard to preempt (the paper's motivation
  // for abandoning ASIDs).
  for (std::uint32_t i = 0; i < AsidPoolObj::kEntries; ++i) {
    x(a.loop);
    T(pool->EntryAddr(i));
    if (pool->pd[i] != 0) {
      PageDirObj* pd = objs_.Get<PageDirObj>(pool->pd[i]);
      if (pd != nullptr) {
        T(pd->base, /*write=*/true);
        pd->asid = 0;
      }
      pool->pd[i] = 0;
    }
  }
  if (asid_pool_ == pool->base) {
    asid_pool_ = 0;
  }
  x(a.ret);
  return OpStatus::kDone;
}

// ---------- Deletion ----------

OpStatus Kernel::PdDelete(PageDirObj* pd) {
  if (config_.vspace == VSpaceKind::kAsid) {
    // Lazy deletion (Figure 4): drop the ASID table entry and flush the TLB.
    // Frame caps keep stale — harmless — references (checked on use).
    const auto& a = b().pdda;
    x(a.entry);
    T(pd->base, /*write=*/true);
    AsidPoolObj* pool = objs_.Get<AsidPoolObj>(asid_pool_);
    if (pool != nullptr && pd->asid != 0) {
      T(pool->EntryAddr(pd->asid), /*write=*/true);
      pool->pd[pd->asid] = 0;
    }
    pd->asid = 0;
    x(a.ret);
    return OpStatus::kDone;
  }

  // Shadow variant: eagerly clear every mapping so no back-pointer dangles,
  // preempting after each entry; resume from the lowest mapped index.
  const auto& d = b().pdds;
  x(d.entry);
  T(pd->base);
  const std::uint32_t start = pd->mapped_count != 0 ? pd->lowest_mapped : PageDirObj::kUserEntries;
  exec_.SetReg(6, PageDirObj::kUserEntries - start);
  for (std::uint32_t i = start; true; ++i) {
    x(d.head);
    if (i >= PageDirObj::kUserEntries || pd->mapped_count == 0) {
      break;
    }
    x(d.read);
    T(pd->PdeAddr(i));
    T(pd->ShadowAddr(i));
    if (pd->pde[i] != 0) {
      x(d.is_sec);
      if (pd->is_section[i]) {
        x(d.sec);
        T(pd->PdeAddr(i), /*write=*/true);
        CapSlot* fslot = pd->shadow[i];
        if (fslot != nullptr) {
          T(fslot->addr, /*write=*/true);
          FrameObj* frame = objs_.Get<FrameObj>(fslot->cap.obj);
          if (frame != nullptr) {
            frame->mapped = false;
            frame->mapped_pd = 0;
          }
        }
        pd->pde[i] = 0;
        pd->is_section[i] = false;
        pd->shadow[i] = nullptr;
        pd->mapped_count--;
      } else {
        x(d.pt);
        PageTableObj* pt = objs_.Get<PageTableObj>(pd->pde[i]);
        const OpStatus st = pt != nullptr ? PtDelete(pt) : OpStatus::kDone;
        x(d.ptchk);
        if (st == OpStatus::kPreempted) {
          x(d.preempted);
          return OpStatus::kPreempted;
        }
      }
    }
    x(d.next);
    T(pd->base, /*write=*/true);
    pd->lowest_mapped = i + 1;
    if (config_.preemptible_deletion) {
      x(d.preempt);
      if (PreemptPending()) {
        x(d.preempted);
        return OpStatus::kPreempted;
      }
    }
  }
  x(d.done);
  T(pd->base, /*write=*/true);
  pd->lowest_mapped = PageDirObj::kUserEntries;
  x(d.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::PtDelete(PageTableObj* pt) {
  assert(config_.vspace == VSpaceKind::kShadow);
  const auto& t = b().ptdel;
  x(t.entry);
  T(pt->base);
  const std::uint32_t start = pt->mapped_count != 0 ? pt->lowest_mapped : PageTableObj::kEntries;
  exec_.SetReg(5, PageTableObj::kEntries - start);
  for (std::uint32_t i = start; true; ++i) {
    x(t.head);
    if (i >= PageTableObj::kEntries || pt->mapped_count == 0) {
      break;
    }
    x(t.unmap);
    T(pt->PteAddr(i), /*write=*/true);
    T(pt->ShadowAddr(i), /*write=*/true);
    if (pt->pte[i] != 0) {
      CapSlot* fslot = pt->shadow[i];
      if (fslot != nullptr) {
        // Eager back-pointer update: purge the frame cap's mapping info so
        // no dangling reference survives (Figure 5).
        T(fslot->addr, /*write=*/true);
        FrameObj* frame = objs_.Get<FrameObj>(fslot->cap.obj);
        if (frame != nullptr) {
          frame->mapped = false;
          frame->mapped_pd = 0;
        }
      }
      pt->pte[i] = 0;
      pt->shadow[i] = nullptr;
      pt->mapped_count--;
    }
    pt->lowest_mapped = i + 1;
    if (config_.preemptible_deletion) {
      x(t.preempt);
      if (PreemptPending()) {
        x(t.preempted);
        return OpStatus::kPreempted;
      }
    }
  }
  x(t.done);
  T(pt->base, /*write=*/true);
  pt->lowest_mapped = PageTableObj::kEntries;
  if (pt->mapped_in_pd) {
    PageDirObj* pd = objs_.Get<PageDirObj>(pt->parent_pd);
    if (pd != nullptr) {
      T(pd->PdeAddr(pt->pd_index), /*write=*/true);
      pd->pde[pt->pd_index] = 0;
      pd->shadow[pt->pd_index] = nullptr;
      pd->mapped_count--;
    }
    pt->mapped_in_pd = false;
  }
  x(t.ret);
  return OpStatus::kDone;
}

// ---------- Map / unmap ----------

OpStatus Kernel::FrameMap(CapSlot* frame_slot, const SyscallArgs& args) {
  const auto& m = b().fmap;
  const bool asid_mode = config_.vspace == VSpaceKind::kAsid;
  x(m.entry);
  T(frame_slot->addr);
  FrameObj* frame = objs_.Get<FrameObj>(frame_slot->cap.obj);
  PageDirObj* pd = objs_.Get<PageDirObj>(args.arg0);
  const Addr vaddr = args.arg1;
  const std::uint32_t pd_index = static_cast<std::uint32_t>(vaddr >> 20);

  bool valid = frame != nullptr && pd != nullptr && !frame->mapped &&
               pd_index < PageDirObj::kUserEntries;
  PageTableObj* pt = nullptr;
  bool section = false;
  if (valid) {
    T(pd->base);
    if (asid_mode) {
      // Walk the two-level ASID structure to validate the address space.
      AsidPoolObj* pool = objs_.Get<AsidPoolObj>(asid_pool_);
      valid = pool != nullptr && pd->asid != 0 && pool->pd[pd->asid] == pd->base;
      if (valid) {
        T(pool->EntryAddr(pd->asid));
      }
    }
  }
  if (valid) {
    section = frame->size_bits >= 20;
    if (section) {
      valid = pd->pde[pd_index] == 0;
      T(pd->PdeAddr(pd_index));
    } else {
      pt = pd->is_section[pd_index] ? nullptr : objs_.Get<PageTableObj>(pd->pde[pd_index]);
      const std::uint32_t pt_index = static_cast<std::uint32_t>((vaddr >> 12) & 0xFF);
      valid = pt != nullptr && pt->pte[pt_index] == 0;
    }
  }
  if (!valid) {
    x(m.bad);
    current_->last_error = KError::kInvalidArg;
    return OpStatus::kDone;
  }

  x(m.set);
  if (section) {
    T(pd->PdeAddr(pd_index), /*write=*/true);
    pd->pde[pd_index] = frame->base;
    pd->is_section[pd_index] = true;
    pd->mapped_count++;
    pd->lowest_mapped = std::min(pd->lowest_mapped, pd_index);
    if (!asid_mode) {
      T(pd->ShadowAddr(pd_index), /*write=*/true);
      pd->shadow[pd_index] = frame_slot;
    }
  } else {
    const std::uint32_t pt_index = static_cast<std::uint32_t>((vaddr >> 12) & 0xFF);
    T(pt->PteAddr(pt_index), /*write=*/true);
    pt->pte[pt_index] = frame->base;
    pt->mapped_count++;
    pt->lowest_mapped = std::min(pt->lowest_mapped, pt_index);
    if (!asid_mode) {
      T(pt->ShadowAddr(pt_index), /*write=*/true);
      pt->shadow[pt_index] = frame_slot;
    }
  }
  T(frame_slot->addr, /*write=*/true);
  frame->mapped = true;
  frame->vaddr = vaddr;
  if (asid_mode) {
    frame->asid = pd->asid;  // small enough to fit in the cap (Section 3.6)
  } else {
    frame->mapped_pd = pd->base;
  }
  x(m.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::FrameUnmap(CapSlot* frame_slot) {
  const auto& m = b().funmap;
  const bool asid_mode = config_.vspace == VSpaceKind::kAsid;
  x(m.entry);
  T(frame_slot->addr);
  FrameObj* frame = objs_.Get<FrameObj>(frame_slot->cap.obj);

  PageDirObj* pd = nullptr;
  bool live = frame != nullptr && frame->mapped;
  if (live) {
    T(frame->base);
    if (asid_mode) {
      // The ASID in the cap may be stale: the address space could have been
      // deleted (lazily) or the ASID reused. Check that the mapping agrees.
      AsidPoolObj* pool = objs_.Get<AsidPoolObj>(asid_pool_);
      live = pool != nullptr && frame->asid != 0 && pool->pd[frame->asid] != 0;
      if (live) {
        T(pool->EntryAddr(frame->asid));
        pd = objs_.Get<PageDirObj>(pool->pd[frame->asid]);
        live = pd != nullptr;
      }
    } else {
      pd = objs_.Get<PageDirObj>(frame->mapped_pd);
      live = pd != nullptr;
    }
  }
  const std::uint32_t pd_index = live ? static_cast<std::uint32_t>(frame->vaddr >> 20) : 0;
  PageTableObj* pt = nullptr;
  std::uint32_t pt_index = 0;
  if (live) {
    if (pd->is_section[pd_index]) {
      live = pd->pde[pd_index] == frame->base;
    } else {
      pt = objs_.Get<PageTableObj>(pd->pde[pd_index]);
      pt_index = static_cast<std::uint32_t>((frame->vaddr >> 12) & 0xFF);
      live = pt != nullptr && pt->pte[pt_index] == frame->base;
    }
  }
  if (!live) {
    // Stale or absent mapping: dangling references are harmless by design.
    x(m.stale);
    if (frame != nullptr) {
      frame->mapped = false;
    }
    return OpStatus::kDone;
  }

  x(m.clear);
  if (pd->is_section[pd_index]) {
    T(pd->PdeAddr(pd_index), /*write=*/true);
    pd->pde[pd_index] = 0;
    pd->is_section[pd_index] = false;
    pd->shadow[pd_index] = nullptr;
    pd->mapped_count--;
  } else {
    T(pt->PteAddr(pt_index), /*write=*/true);
    pt->pte[pt_index] = 0;
    if (!asid_mode) {
      T(pt->ShadowAddr(pt_index), /*write=*/true);
      pt->shadow[pt_index] = nullptr;
    }
    pt->mapped_count--;
  }
  frame->mapped = false;
  frame->mapped_pd = 0;
  frame->asid = 0;
  x(m.ret);
  return OpStatus::kDone;
}

OpStatus Kernel::PtMap(CapSlot* pt_slot, const SyscallArgs& args) {
  const auto& m = b().ptmap;
  x(m.entry);
  T(pt_slot->addr);
  PageTableObj* pt = objs_.Get<PageTableObj>(pt_slot->cap.obj);
  PageDirObj* pd = objs_.Get<PageDirObj>(args.arg0);
  const std::uint32_t pd_index = static_cast<std::uint32_t>(args.arg1 >> 20);
  bool valid = pt != nullptr && pd != nullptr && !pt->mapped_in_pd &&
               pd_index < PageDirObj::kUserEntries && pd->pde[pd_index] == 0;
  if (valid) {
    T(pd->PdeAddr(pd_index));
    T(pt->base);
  }
  if (!valid) {
    x(m.bad);
    current_->last_error = KError::kInvalidArg;
    return OpStatus::kDone;
  }
  x(m.set);
  T(pd->PdeAddr(pd_index), /*write=*/true);
  pd->pde[pd_index] = pt->base;
  pd->is_section[pd_index] = false;
  pd->mapped_count++;
  pd->lowest_mapped = std::min(pd->lowest_mapped, pd_index);
  if (config_.vspace == VSpaceKind::kShadow) {
    T(pd->ShadowAddr(pd_index), /*write=*/true);
    pd->shadow[pd_index] = pt_slot;
  }
  pt->mapped_in_pd = true;
  pt->parent_pd = pd->base;
  pt->pd_index = pd_index;
  T(pt->base, /*write=*/true);
  x(m.ret);
  return OpStatus::kDone;
}

}  // namespace pmk
