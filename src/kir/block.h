// Kernel IR: basic-block descriptors.
//
// The paper analyzes the compiled seL4 binary: basic blocks with addresses,
// instruction counts, memory accesses and branches. We mirror that with a
// synthetic but structurally faithful "binary": every kernel code path in
// src/kernel is expressed as a graph of Block descriptors. The same
// descriptors are (a) executed against the machine model to charge cycles and
// (b) fed to the static WCET analysis. Tests verify that every dynamic
// execution is a path of the declared control-flow graph, which is the
// correspondence the paper gets for free by analyzing the real binary.

#ifndef SRC_KIR_BLOCK_H_
#define SRC_KIR_BLOCK_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/hw/branch_predictor.h"
#include "src/hw/cache.h"

namespace pmk {

using BlockId = std::uint32_t;
using FuncId = std::uint32_t;
using SymId = std::uint32_t;

inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();
inline constexpr FuncId kNoFunc = std::numeric_limits<FuncId>::max();

// A memory access whose address is statically known (stack slot or global
// data symbol). Dynamic accesses (heap objects, user frames) are performed by
// the kernel code via Executor::Touch and summarized per block by
// |max_dynamic_accesses|.
struct StaticAccess {
  enum class Region : std::uint8_t { kStack, kGlobal };
  Region region = Region::kStack;
  SymId symbol = 0;        // for kGlobal: data symbol id
  std::uint32_t offset = 0;  // byte offset within frame or symbol
  bool write = false;
};

// A static access with its address already resolved (frame or symbol base
// plus offset folded in at Program::Layout() time). The executor's prepared
// charge path iterates these instead of re-resolving per execution.
struct PreparedAccess {
  Addr addr = 0;
  bool write = false;
};

// A tiny register-machine operation. Blocks participating in counter loops
// carry these so the loop-bound analysis (paper Section 5.3) can slice out
// the loop-control computation and bound the iteration count automatically.
// The executor also interprets them and cross-checks predicted branch
// directions against the directions the real C++ code takes.
struct RegOp {
  enum class Kind : std::uint8_t { kConst, kAdd, kMovReg };
  Kind kind = Kind::kConst;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;    // for kMovReg
  std::int64_t imm = 0;    // for kConst (value) / kAdd (addend)
};

// Condition of a conditional branch, over the register machine.
struct BranchCond {
  enum class Cmp : std::uint8_t { kNone, kLt, kGe, kEq, kNe };
  Cmp cmp = Cmp::kNone;
  std::uint8_t lhs = 0;
  bool rhs_is_imm = true;
  std::uint8_t rhs_reg = 0;
  std::int64_t rhs_imm = 0;

  // One-sided ("guard") semantics: the condition is necessary for the taken
  // edge but the not-taken edge may be followed even when it holds (e.g. a
  // search loop that can exit early). Loop bounds derived from a one-sided
  // guard are still sound upper bounds.
  bool one_sided = false;

  bool HasSemantics() const { return cmp != Cmp::kNone; }
};

// Declares that register |reg| is an input of the loop headed at this block,
// with a guaranteed value range. The loop-bound analysis maximizes the
// iteration count over the declared range; the executor validates every
// runtime value the kernel injects (Executor::SetReg) against it.
struct LoopInput {
  std::uint8_t reg = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
};

struct Block {
  BlockId id = kNoBlock;
  FuncId func = kNoFunc;
  std::string name;

  std::uint32_t instr_count = 1;
  std::vector<StaticAccess> static_accesses;
  std::uint32_t max_dynamic_accesses = 0;

  BranchKind branch = BranchKind::kNone;
  BranchCond cond;               // optional semantics for kConditional
  std::vector<RegOp> reg_ops;    // executed before the branch condition

  // Intra-function successors. Convention: succs[0] is the fall-through /
  // not-taken edge, succs[1] (if present) is the taken edge.
  std::vector<BlockId> succs;

  // If this block ends in a call, the callee; control resumes at succs[0].
  FuncId callee = kNoFunc;

  bool is_return = false;  // function exit block (branch kind kReturn)

  // Manual loop-bound annotation for loops the automatic analysis cannot
  // bound (0 = none). Applied to the loop headed at this block.
  std::uint32_t loop_bound_annotation = 0;

  // Input-range declarations for the loop headed at this block.
  std::vector<LoopInput> loop_inputs;

  // Absolute execution-count bound across the whole path: the paper's
  // "a executes n times" manual ILP constraint form (Section 5.2). 0 = none.
  std::uint32_t absolute_exec_bound = 0;

  // Preemption point (Section 2): a conditional block that reads the pending
  // interrupt state; succs[0] continues the operation, succs[1] is the
  // preempted exit. Interrupt-latency analysis forbids continuing past one
  // (an interrupt is assumed pending for the whole analyzed path).
  bool is_preemption_point = false;

  // Terminates an analyzed path: either control returns to the user with
  // interrupts re-enabled, or the kernel's interrupt handler starts (the
  // paper's path-end conditions (a) and (b) in Section 5.2).
  bool is_path_end = false;

  // First block of the kernel's interrupt handler: interrupt response time is
  // measured from IRQ assertion to this block's execution.
  bool is_irq_handler_start = false;

  // Extra non-memory cycles (TLB ops, coprocessor writes) per execution.
  std::uint32_t raw_cycles = 0;

  // Assigned by Program::Layout().
  Addr address = 0;

  // --- Precomputed execution data, assigned by Program::Layout(). ---
  // Blocks must not be structurally mutated (instr_count, static_accesses,
  // addresses) after Layout(); post-layout mutation of analysis-only metadata
  // (loop bounds, path flags) is fine.

  // Address of the block's final (branching) instruction.
  Addr branch_pc = 0;

  // I-fetch footprint as consecutive Program::kPreparedLineBytes-sized lines:
  // first line address (line-aligned) and line count.
  Addr ifetch_first_line = 0;
  std::uint32_t ifetch_line_count = 0;

  // static_accesses with absolute addresses resolved (same order).
  std::vector<PreparedAccess> prepared_accesses;
};

struct Function {
  FuncId id = kNoFunc;
  std::string name;
  BlockId entry = kNoBlock;
  std::vector<BlockId> blocks;
  std::uint32_t frame_bytes = 32;
  // Assigned by Program::Layout(): fixed frame address (single kernel stack;
  // no recursion, so a per-function static frame address is sound).
  Addr frame_addr = 0;
};

struct DataSymbol {
  SymId id = 0;
  std::string name;
  std::uint32_t size = 4;
  Addr address = 0;  // assigned by Program::Layout()
};

}  // namespace pmk

#endif  // SRC_KIR_BLOCK_H_
