#include "src/kir/compiled.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "src/kir/compiled_dispatch.h"
#include "src/kir/program.h"
#include "src/obs/metrics.h"

namespace pmk {

namespace {

constexpr std::uint32_t kInstrBytes = 4;

bool SameGeometry(const CacheConfig& a, const CacheConfig& b) {
  return a.size_bytes == b.size_bytes && a.ways == b.ways && a.line_bytes == b.line_bytes &&
         a.policy == b.policy;
}

}  // namespace

CompiledSpec CompiledSpec::Of(const MachineConfig& mc) {
  CompiledSpec s;
  s.l1i = mc.l1i;
  s.l1d = mc.l1d;
  s.l2 = mc.l2;
  s.load_use_stall = mc.memory.load_use_stall;
  s.btb_entries = mc.bpred.btb_entries;
  return s;
}

bool CompiledSpec::Matches(const MachineConfig& mc) const {
  return SameGeometry(l1i, mc.l1i) && SameGeometry(l1d, mc.l1d) && SameGeometry(l2, mc.l2) &&
         load_use_stall == mc.memory.load_use_stall && btb_entries == mc.bpred.btb_entries;
}

bool CompiledProgram::Compilable(const MachineConfig& mc) {
  if (mc.bpred.btb_entries == 0) {
    return false;
  }
  try {
    mc.l1i.Validate();
    mc.l1d.Validate();
    mc.l2.Validate();
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

CompiledProgram::CompiledProgram(const Program& p, const MachineConfig& mc)
    : spec_(CompiledSpec::Of(mc)) {
  assert(p.laid_out());
  // Throwaway Cache instances provide the set/tag arithmetic, so the folded
  // indices agree with the runtime lookup by construction.
  const Cache l1i(mc.l1i);
  const Cache l1d(mc.l1d);
  const Cache l2(mc.l2);
  const std::uint32_t line = mc.l1i.line_bytes;

  std::size_t n_ops = 0;
  for (BlockId id = 0; id < p.num_blocks(); ++id) {
    const Block& b = p.block(id);
    const Addr first = b.address / line;
    const Addr last = (b.address + static_cast<Addr>(b.instr_count) * kInstrBytes - 1) / line;
    n_ops += static_cast<std::size_t>(last - first + 1) + b.prepared_accesses.size() +
             b.reg_ops.size() + 1;
  }
  ops_.reserve(n_ops);
  blocks_.resize(p.num_blocks());
  std::vector<std::size_t> begins(p.num_blocks());

  for (BlockId id = 0; id < p.num_blocks(); ++id) {
    const Block& b = p.block(id);
    begins[id] = ops_.size();

    const Addr first = b.address / line;
    const Addr last = (b.address + static_cast<Addr>(b.instr_count) * kInstrBytes - 1) / line;
    const std::uint32_t n_lines = static_cast<std::uint32_t>(last - first + 1);
    for (std::uint32_t l = 0; l < n_lines; ++l) {
      const Addr line_addr = (first + l) * line;
      CompiledOp op;
      op.kind = CompiledOp::Kind::kILine;
      op.u.mem = {l1i.SetIndexOf(line_addr), l2.SetIndexOf(line_addr), l1i.TagOf(line_addr),
                  l2.TagOf(line_addr)};
      ops_.push_back(op);
    }
    for (const PreparedAccess& a : b.prepared_accesses) {
      CompiledOp op;
      op.kind = CompiledOp::Kind::kDAcc;
      op.u.mem = {l1d.SetIndexOf(a.addr), l2.SetIndexOf(a.addr), l1d.TagOf(a.addr),
                  l2.TagOf(a.addr)};
      ops_.push_back(op);
    }
    for (const RegOp& r : b.reg_ops) {
      CompiledOp op;
      switch (r.kind) {
        case RegOp::Kind::kConst:
          op.kind = CompiledOp::Kind::kRegConst;
          break;
        case RegOp::Kind::kAdd:
          op.kind = CompiledOp::Kind::kRegAdd;
          break;
        case RegOp::Kind::kMovReg:
          op.kind = CompiledOp::Kind::kRegMov;
          break;
      }
      op.dst = r.dst;
      op.src = r.src;
      op.u.reg.imm = r.imm;
      ops_.push_back(op);
    }
    CompiledOp end;
    end.kind = CompiledOp::Kind::kEnd;
    const std::uint32_t n_accesses = static_cast<std::uint32_t>(b.prepared_accesses.size());
    end.u.end = {n_lines, n_accesses, b.instr_count,
                 static_cast<Cycles>(b.instr_count) + b.raw_cycles +
                     static_cast<Cycles>(n_accesses) * spec_.load_use_stall};
    ops_.push_back(end);

    CompiledBlock& cb = blocks_[id];
    const HotBlock& h = p.hot(id);
    cb.branch_pc = h.branch_pc;
    cb.btb_index = static_cast<std::uint32_t>(h.branch_pc % spec_.btb_entries);
    cb.max_dynamic_accesses = h.max_dynamic_accesses;
    cb.callee = h.callee;
    cb.callee_entry = h.callee_entry;
    cb.succ0 = h.succ0;
    cb.succ1 = h.succ1;
    cb.nsuccs = h.nsuccs;
    cb.branch = h.branch;
    cb.is_return = h.is_return;
    cb.is_preemption_point = h.is_preemption_point;
    cb.has_cond_semantics = h.has_cond_semantics;
    cb.cond = h.cond;
  }
  // The kILine-free twin streams for the executor's I-fetch memo: identical
  // op sequence minus the I-line probes; the kEnd op is shared by value so
  // the counts and base cost stay in lockstep.
  std::vector<std::size_t> hit_begins(p.num_blocks());
  hit_ops_.reserve(ops_.size());
  for (BlockId id = 0; id < p.num_blocks(); ++id) {
    hit_begins[id] = hit_ops_.size();
    for (const CompiledOp* op = ops_.data() + begins[id];; ++op) {
      if (op->kind != CompiledOp::Kind::kILine) {
        hit_ops_.push_back(*op);
      }
      if (op->kind == CompiledOp::Kind::kEnd) {
        break;
      }
    }
  }
  // ops_ and hit_ops_ are final; resolve the per-block stream pointers.
  for (BlockId id = 0; id < p.num_blocks(); ++id) {
    blocks_[id].ops = ops_.data() + begins[id];
    blocks_[id].hit_ops = hit_ops_.data() + hit_begins[id];
  }
}

// CompiledProgram::Run is defined in executor.cc, beside its only caller
// (Executor::AtCompiled), so the compiler can inline the dispatch loop into
// the per-block hot path. compiled_dispatch.h keeps the strategy selection
// shared with DispatchName below.

const char* CompiledProgram::DispatchName() {
#ifdef PMK_COMPUTED_GOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

// --- Program-side specialisation cache -------------------------------------
//
// One CompiledCache per Program, created eagerly at Layout() time (single-
// threaded by contract) so the shared_ptr itself is never written once the
// Program is shared across cloned Systems and campaign worker threads.
// Lookups walk a lock-free singly-linked list (acquire on the head, nodes are
// immutable once published); builders serialise on the mutex and publish with
// a release store. In practice the list holds one node per distinct machine
// geometry used against the image — almost always exactly one.

namespace detail {

struct CompiledCacheNode {
  CompiledProgram prog;
  CompiledCacheNode* next = nullptr;
};

struct CompiledCache {
  std::mutex mu;
  std::atomic<CompiledCacheNode*> head{nullptr};

  ~CompiledCache() {
    CompiledCacheNode* n = head.load(std::memory_order_relaxed);
    while (n != nullptr) {
      CompiledCacheNode* next = n->next;
      delete n;
      n = next;
    }
  }
};

std::shared_ptr<CompiledCache> NewCompiledCache() { return std::make_shared<CompiledCache>(); }

}  // namespace detail

const CompiledProgram* Program::CompiledFor(const MachineConfig& mc) const {
  assert(laid_out_ && compiled_ != nullptr);
  detail::CompiledCache& cache = *compiled_;
  for (const detail::CompiledCacheNode* n = cache.head.load(std::memory_order_acquire);
       n != nullptr; n = n->next) {
    if (n->prog.Matches(mc)) {
      return &n->prog;
    }
  }
  std::lock_guard<std::mutex> lock(cache.mu);
  for (const detail::CompiledCacheNode* n = cache.head.load(std::memory_order_relaxed);
       n != nullptr; n = n->next) {
    if (n->prog.Matches(mc)) {
      return &n->prog;
    }
  }
  static const obs::Timer compile_timer("sim.exec.compile_wall_nanos");
  detail::CompiledCacheNode* node;
  {
    const auto scope = compile_timer.Measure();
    node = new detail::CompiledCacheNode{CompiledProgram(*this, mc),
                                         cache.head.load(std::memory_order_relaxed)};
  }
  cache.head.store(node, std::memory_order_release);
  return &node->prog;
}

}  // namespace pmk
