// Compiled executor backend: threaded-code charge streams.
//
// Program::CompiledFor lowers every block, once per machine geometry, into a
// straight-lined "charge function": a flat stream of fixed-size fused ops in
// which everything that is constant for a (CacheConfig, policy) specialisation
// has been folded away at compile time —
//
//   * cache geometry: each I-fetch line and each resolved static access is
//     stored as its precomputed {L1 set, L1 tag, L2 set, L2 tag}, so the
//     runner performs no shift/mask address arithmetic at all;
//   * I-fetch line spans: one kILine op per consecutive line of the block's
//     instruction footprint;
//   * per-block base cost: instruction cycles + raw cycles + the load-use
//     stall of every static access, pre-summed into the terminating kEnd op;
//   * branch-predictor indices: branch_pc % btb_entries per block
//     (CompiledBlock::btb_index, consumed by Machine::BranchSlot).
//
// The runner (CompiledProgram::Run) executes a stream with computed-goto
// dispatch on GCC/Clang — one indirect jump per op, no loop bookkeeping — and
// a portable switch loop elsewhere or under -DPMK_FORCE_SWITCH_DISPATCH. PMU
// counters and cache statistics are tallied locally and flushed once per
// block (Machine::ApplyChargeDelta, Cache::AddStats), and the whole block
// advances the cycle counter once; docs/performance.md walks through why
// every observable (timer assertion times, fault hooks, trace windows,
// counter totals, cache state) is bit-identical to the interpreter's
// per-access charging. hotpath_equivalence_test and the bench_sim_hotpath
// digest gate enforce the identity.

#ifndef SRC_KIR_COMPILED_H_
#define SRC_KIR_COMPILED_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/hw/machine.h"
#include "src/kir/block.h"

namespace pmk {

class Program;

// The specialisation key: every machine parameter folded into the streams.
// Parameters consulted at run time through the live Machine (l2_enabled,
// bpred.enabled, miss latencies) are deliberately absent — they may change
// between runs without invalidating a compiled program.
struct CompiledSpec {
  CacheConfig l1i;
  CacheConfig l1d;
  CacheConfig l2;
  Cycles load_use_stall = 0;
  std::uint32_t btb_entries = 0;

  static CompiledSpec Of(const MachineConfig& mc);
  bool Matches(const MachineConfig& mc) const;
};

// One fused op of a block's charge stream. Fixed size; the field meaning
// depends on kind (mem for kILine/kDAcc, imm for register ops, end for the
// stream terminator).
struct CompiledOp {
  enum class Kind : std::uint8_t {
    kILine,     // one I-cache line lookup (miss path folded for the L2 too)
    kDAcc,      // one resolved static data access
    kRegConst,  // regs[dst] = imm
    kRegAdd,    // regs[dst] += imm
    kRegMov,    // regs[dst] = regs[src]
    kEnd,       // flush counters, advance base_cost + accumulated penalties
  };

  Kind kind = Kind::kEnd;
  std::uint8_t dst = 0;  // register ops
  std::uint8_t src = 0;  // kRegMov
  union {
    struct {
      std::uint32_t l1_set;
      std::uint32_t l2_set;
      Addr l1_tag;
      Addr l2_tag;
    } mem;
    struct {
      std::int64_t imm;
    } reg;
    struct {
      std::uint32_t n_lines;     // kILine ops in this stream
      std::uint32_t n_accesses;  // kDAcc ops in this stream
      std::uint32_t n_instr;     // instruction count (counter flush)
      Cycles base_cost;          // n_instr + raw_cycles + n_accesses * load_use_stall
    } end;
  } u = {};
};

// Per-block record: the CFG-validation fields the executor needs on every
// transition (a mirror of HotBlock, so AtCompiled touches one contiguous
// record) plus the block's charge stream and folded BTB index.
struct CompiledBlock {
  const CompiledOp* ops = nullptr;  // into CompiledProgram::ops_
  // The same stream with every kILine op removed. The executor runs this
  // instead of |ops| when its I-fetch memo proves all of the block's lines
  // are still resident (Cache::Gen unchanged since a fully-hitting run):
  // hits mutate no cache state, so skipping them is bit-identical, and the
  // shared kEnd counts still tally the full n_lines with zero misses.
  const CompiledOp* hit_ops = nullptr;
  Addr branch_pc = 0;
  std::uint32_t btb_index = 0;  // branch_pc % btb_entries
  std::uint32_t max_dynamic_accesses = 0;
  FuncId callee = kNoFunc;
  BlockId callee_entry = kNoBlock;
  BlockId succ0 = kNoBlock;
  BlockId succ1 = kNoBlock;
  std::uint8_t nsuccs = 0;
  BranchKind branch = BranchKind::kNone;
  bool is_return = false;
  bool is_preemption_point = false;
  bool has_cond_semantics = false;
  BranchCond cond;
};

class CompiledProgram {
 public:
  // True when |mc|'s cache geometry is modellable (CacheConfig::Validate) and
  // a specialisation can therefore be built. The executor falls back to the
  // interpreter when this is false.
  static bool Compilable(const MachineConfig& mc);

  // Lowers |p| (which must be laid out) for |mc|'s geometry. Prefer
  // Program::CompiledFor, which caches one instance per distinct geometry.
  CompiledProgram(const Program& p, const MachineConfig& mc);

  bool Matches(const MachineConfig& mc) const { return spec_.Matches(mc); }
  const CompiledSpec& spec() const { return spec_; }
  const CompiledBlock& block(BlockId id) const { return blocks_[id]; }
  std::size_t num_blocks() const { return blocks_.size(); }

  // Executes one charge stream against |m|: cache lookups in declaration
  // order, local counter tally, one flush. Register ops are interpreted into
  // |regs|/|written| exactly like the interpreter does. With |tally| set the
  // flush lands in the tally (deferred path accounting, flushed by
  // Executor::End via Machine::ApplyPathTally); otherwise counters and cache
  // stats flush eagerly per block (required when a trace sink needs
  // boundary-exact counters). The cycle Advance is immediate either way.
  // Returns the number of I-line misses the stream took, so the executor can
  // arm the hit_ops memo after a fully-hitting run.
  static std::uint32_t Run(const CompiledOp* op, Machine& m,
                           std::array<std::int64_t, 16>& regs, std::uint16_t& written,
                           Machine::PathTally* tally = nullptr);

  // The dispatch strategy Run() was compiled with: "computed-goto" on
  // GCC/Clang, "switch" elsewhere or under -DPMK_FORCE_SWITCH_DISPATCH=ON.
  // Benchmarks report it so committed results name their dispatch.
  static const char* DispatchName();

 private:
  CompiledSpec spec_;
  std::vector<CompiledBlock> blocks_;
  std::vector<CompiledOp> ops_;
  std::vector<CompiledOp> hit_ops_;  // kILine-free twins, see CompiledBlock::hit_ops
};

}  // namespace pmk

#endif  // SRC_KIR_COMPILED_H_
