// Dispatch-strategy selection for the compiled executor backend, shared by
// the runner definition (executor.cc, beside its only caller so the compiler
// can inline the dispatch loop into Executor::AtCompiled) and
// CompiledProgram::DispatchName (compiled.cc): computed goto (one indirect
// jump per op, no loop bookkeeping) on GCC/Clang; a portable switch loop
// elsewhere. -DPMK_FORCE_SWITCH_DISPATCH (CMake option of the same name)
// forces the switch loop on any compiler so CI can digest-gate both
// strategies.

#ifndef SRC_KIR_COMPILED_DISPATCH_H_
#define SRC_KIR_COMPILED_DISPATCH_H_

#if (defined(__GNUC__) || defined(__clang__)) && !defined(PMK_FORCE_SWITCH_DISPATCH)
#define PMK_COMPUTED_GOTO 1
#endif

#endif  // SRC_KIR_COMPILED_DISPATCH_H_
