#include "src/kir/digest.h"

#include <algorithm>

#include "src/base/digest.h"

namespace pmk {

namespace {

std::uint64_t ChainU64(std::uint64_t h, std::uint64_t v) { return FnvU64(h, v); }

std::uint64_t DigestStructure(const Program& prog, const Block& b) {
  std::uint64_t h = kFnv64Offset;
  const Function& fn = prog.function(b.func);
  h = ChainU64(h, b.func);
  h = ChainU64(h, fn.entry == b.id ? 1 : 0);
  h = ChainU64(h, static_cast<std::uint64_t>(b.branch));
  h = ChainU64(h, b.succs.size());
  for (BlockId s : b.succs) {
    h = ChainU64(h, s);
  }
  h = ChainU64(h, b.callee);
  h = ChainU64(h, b.is_return ? 1 : 0);
  h = ChainU64(h, b.is_path_end ? 1 : 0);
  h = ChainU64(h, b.is_irq_handler_start ? 1 : 0);
  return h;
}

std::uint64_t DigestLoops(const Block& b) {
  std::uint64_t h = kFnv64Offset;
  h = ChainU64(h, static_cast<std::uint64_t>(b.cond.cmp));
  h = ChainU64(h, b.cond.lhs);
  h = ChainU64(h, b.cond.rhs_is_imm ? 1 : 0);
  h = ChainU64(h, b.cond.rhs_reg);
  h = ChainU64(h, static_cast<std::uint64_t>(b.cond.rhs_imm));
  h = ChainU64(h, b.cond.one_sided ? 1 : 0);
  h = ChainU64(h, b.reg_ops.size());
  for (const RegOp& op : b.reg_ops) {
    h = ChainU64(h, static_cast<std::uint64_t>(op.kind));
    h = ChainU64(h, op.dst);
    h = ChainU64(h, op.src);
    h = ChainU64(h, static_cast<std::uint64_t>(op.imm));
  }
  h = ChainU64(h, b.loop_inputs.size());
  for (const LoopInput& in : b.loop_inputs) {
    h = ChainU64(h, in.reg);
    h = ChainU64(h, static_cast<std::uint64_t>(in.min));
    h = ChainU64(h, static_cast<std::uint64_t>(in.max));
  }
  h = ChainU64(h, b.loop_bound_annotation);
  // Absolute bounds feed the loop-bound stage too (LoopBoundResult's
  // Source::kAbsolute path), not just the ILP rows.
  h = ChainU64(h, b.absolute_exec_bound);
  return h;
}

std::uint64_t DigestCost(const Block& b) {
  std::uint64_t h = kFnv64Offset;
  h = ChainU64(h, b.address);
  h = ChainU64(h, b.instr_count);
  h = ChainU64(h, b.raw_cycles);
  h = ChainU64(h, b.max_dynamic_accesses);
  h = ChainU64(h, b.ifetch_first_line);
  h = ChainU64(h, b.ifetch_line_count);
  h = ChainU64(h, b.prepared_accesses.size());
  for (const PreparedAccess& a : b.prepared_accesses) {
    h = ChainU64(h, a.addr);
    h = ChainU64(h, a.write ? 1 : 0);
  }
  return h;
}

std::uint64_t DigestIpet(const Block& b) {
  std::uint64_t h = kFnv64Offset;
  h = ChainU64(h, b.is_preemption_point ? 1 : 0);
  h = ChainU64(h, b.absolute_exec_bound);
  return h;
}

}  // namespace

BlockStageDigests ComputeBlockDigests(const Program& prog, BlockId id) {
  const Block& b = prog.block(id);
  BlockStageDigests d;
  d.stage[static_cast<std::size_t>(DigestStage::kStructure)] = DigestStructure(prog, b);
  d.stage[static_cast<std::size_t>(DigestStage::kLoops)] = DigestLoops(b);
  d.stage[static_cast<std::size_t>(DigestStage::kCost)] = DigestCost(b);
  d.stage[static_cast<std::size_t>(DigestStage::kIpet)] = DigestIpet(b);
  return d;
}

std::vector<FuncId> CallClosure(const Program& prog, FuncId entry) {
  std::vector<FuncId> out;
  std::vector<bool> seen(prog.num_functions(), false);
  std::vector<FuncId> stack{entry};
  seen[entry] = true;
  while (!stack.empty()) {
    const FuncId f = stack.back();
    stack.pop_back();
    out.push_back(f);
    for (BlockId bid : prog.function(f).blocks) {
      const FuncId callee = prog.block(bid).callee;
      if (callee != kNoFunc && !seen[callee]) {
        seen[callee] = true;
        stack.push_back(callee);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> ClosureBlocks(const Program& prog, const std::vector<FuncId>& closure) {
  std::vector<BlockId> out;
  for (FuncId f : closure) {
    const Function& fn = prog.function(f);
    out.insert(out.end(), fn.blocks.begin(), fn.blocks.end());
  }
  return out;
}

ProgramDigests::ProgramDigests(const Program& prog) : prog_(&prog) {
  blocks_.reserve(prog.num_blocks());
  for (BlockId id = 0; id < prog.num_blocks(); ++id) {
    blocks_.push_back(ComputeBlockDigests(prog, id));
  }
}

bool ProgramDigests::Refresh(BlockId id) {
  const BlockStageDigests fresh = ComputeBlockDigests(*prog_, id);
  bool changed = false;
  for (std::size_t s = 0; s < kNumDigestStages; ++s) {
    changed = changed || fresh.stage[s] != blocks_[id].stage[s];
  }
  blocks_[id] = fresh;
  return changed;
}

std::uint64_t ProgramDigests::Chain(const std::vector<BlockId>& blocks, DigestStage s,
                                    std::uint64_t seed) const {
  std::uint64_t h = seed;
  for (BlockId id : blocks) {
    h = FnvU64(h, blocks_[id].of(s));
  }
  return h;
}

}  // namespace pmk
