// Content digests of laid-out kernel IR blocks.
//
// The incremental WCET engine (src/wcet/incremental.h) keys every analysis
// stage on WHAT the blocks say, not on which analyzer object derived it.
// Each block gets four chained FNV-1a digests, one per field subset a
// pipeline stage consumes:
//
//   kStructure — CFG shape: successor edges, callee, return/path-end flags.
//                Invalidates graph construction (and everything below).
//   kLoops     — loop-control semantics: branch condition, register ops,
//                loop-input ranges, manual annotations, absolute bounds.
//                Invalidates the loop-bound stage.
//   kCost      — cycle-cost inputs: addresses, instruction counts, memory
//                accesses, raw cycles. Invalidates the block-cost + cache
//                fixpoint stage.
//   kIpet      — ILP-only extras: preemption-point flag and absolute
//                execution bounds. Invalidates only the constraint rows.
//
// A stage cache key is the chain of that stage's digests (plus all digests
// of the stages above it) over the entry point's transitive call closure —
// an edit to one block re-derives only the stages whose chained key moved.

#ifndef SRC_KIR_DIGEST_H_
#define SRC_KIR_DIGEST_H_

#include <cstdint>
#include <vector>

#include "src/base/digest.h"
#include "src/kir/program.h"

namespace pmk {

enum class DigestStage : std::uint8_t { kStructure = 0, kLoops, kCost, kIpet };
inline constexpr std::size_t kNumDigestStages = 4;

struct BlockStageDigests {
  std::uint64_t stage[kNumDigestStages] = {0, 0, 0, 0};
  std::uint64_t of(DigestStage s) const { return stage[static_cast<std::size_t>(s)]; }
};

// Digests one block of a laid-out program. Deterministic in the block's
// field values only (host-independent: every scalar is chained as
// little-endian bytes).
BlockStageDigests ComputeBlockDigests(const Program& prog, BlockId id);

// The transitive callee closure of |entry| (including |entry| itself), as a
// sorted function-id list. Static after Layout(): callee edges are
// structural and may not change post-layout.
std::vector<FuncId> CallClosure(const Program& prog, FuncId entry);

// Every block of the closure functions, in (function id, declaration order)
// — the canonical order for chaining per-block digests into a stage key.
std::vector<BlockId> ClosureBlocks(const Program& prog, const std::vector<FuncId>& closure);

// Per-block digest table for one laid-out program, refreshable block-by-
// block after post-layout metadata edits (Program::mutable_block).
class ProgramDigests {
 public:
  explicit ProgramDigests(const Program& prog);

  // Recomputes |id|'s digests after an edit. Returns true if any stage
  // digest actually changed.
  bool Refresh(BlockId id);

  const BlockStageDigests& of(BlockId id) const { return blocks_[id]; }

  // Chained digest of |s| over |blocks| in order. Seeding with a previous
  // chain composes multi-stage keys.
  std::uint64_t Chain(const std::vector<BlockId>& blocks, DigestStage s,
                      std::uint64_t seed = kFnv64Offset) const;

 private:
  const Program* prog_;
  std::vector<BlockStageDigests> blocks_;
};

}  // namespace pmk

#endif  // SRC_KIR_DIGEST_H_
