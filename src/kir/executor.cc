#include "src/kir/executor.h"

#include <cassert>

#include "src/hw/hotpath.h"
#include "src/obs/trace_sink.h"

namespace pmk {

namespace {

std::int64_t EvalCmpSide(const std::array<std::int64_t, Executor::kNumRegs>& regs,
                         const BranchCond& c) {
  return c.rhs_is_imm ? c.rhs_imm : regs[c.rhs_reg];
}

bool EvalCond(const std::array<std::int64_t, Executor::kNumRegs>& regs, const BranchCond& c) {
  const std::int64_t lhs = regs[c.lhs];
  const std::int64_t rhs = EvalCmpSide(regs, c);
  switch (c.cmp) {
    case BranchCond::Cmp::kLt:
      return lhs < rhs;
    case BranchCond::Cmp::kGe:
      return lhs >= rhs;
    case BranchCond::Cmp::kEq:
      return lhs == rhs;
    case BranchCond::Cmp::kNe:
      return lhs != rhs;
    case BranchCond::Cmp::kNone:
      break;
  }
  return false;
}

std::uint16_t CondRegMask(const BranchCond& c) {
  std::uint16_t m = static_cast<std::uint16_t>(1u << c.lhs);
  if (!c.rhs_is_imm) {
    m |= static_cast<std::uint16_t>(1u << c.rhs_reg);
  }
  return m;
}

}  // namespace

Executor::Executor(const Program* program, Machine* machine)
    : program_(program), machine_(machine) {
  assert(program_->laid_out());
  if (hotpath::ReferenceMode()) {
    charge_mode_ = ChargeMode::kReference;
  } else if (machine_->config().l1i.line_bytes == Program::kPreparedLineBytes) {
    charge_mode_ = ChargeMode::kPrepared;
  } else {
    charge_mode_ = ChargeMode::kGeneric;
  }
}

void Executor::Fail(const std::string& msg) const {
  std::string ctx = msg;
  if (cur_ != kNoBlock) {
    ctx += " (current block: " + program_->block(cur_).name + ")";
  }
  throw ExecError(ctx);
}

void Executor::Begin(FuncId entry_func) {
  if (in_path_) {
    Fail("Begin() while already in a kernel path");
  }
  in_path_ = true;
  entry_func_ = entry_func;
  cur_ = kNoBlock;
  cur_block_ = nullptr;
  cur_hot_ = nullptr;
  dyn_count_ = 0;
  call_stack_.clear();
  regs_.fill(0);
  written_ = 0;
  if (recording_) {
    trace_.Clear();
    trace_.start_cycle = machine_->Now();
  }
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kKernelEntry;
    e.cycle = machine_->Now();
    e.name = program_->function(entry_func).name.c_str();
    e.id = entry_func;
    sink_->OnEvent(e);
  }
}

void Executor::OpenBlockWindow() {
  blk_start_cycle_ = machine_->Now();
  blk_start_imiss_ = machine_->counters().l1i_misses;
  blk_start_dmiss_ = machine_->counters().l1d_misses;
}

void Executor::CloseBlockWindow() {
  const Block& b = *cur_block_;
  TraceEvent e;
  e.kind = TraceEventKind::kBlockCost;
  e.cycle = machine_->Now();
  e.name = b.name.c_str();
  e.id = cur_;
  e.arg0 = machine_->Now() - blk_start_cycle_;
  e.arg1 = machine_->counters().l1i_misses - blk_start_imiss_;
  e.arg2 = machine_->counters().l1d_misses - blk_start_dmiss_;
  sink_->OnEvent(e);
}

void Executor::LeaveCurrent() {
  if (cur_ == kNoBlock) {
    return;
  }
  const Block& p = *cur_block_;
  if (dyn_count_ > p.max_dynamic_accesses) {
    Fail("block " + p.name + " exceeded its dynamic-access budget: " +
         std::to_string(dyn_count_) + " > " + std::to_string(p.max_dynamic_accesses));
  }
  dyn_count_ = 0;
}

void Executor::ChargeBranch(Addr pc, BranchKind kind, bool taken) {
  if (charge_mode_ == ChargeMode::kReference) {
    machine_->BranchReference(pc, kind, taken);
  } else {
    machine_->Branch(pc, kind, taken);
  }
}

void Executor::ChargeBlockPrepared(const HotBlock& h) {
  machine_->InstrFetchLines(h.ifetch_first_line, h.ifetch_line_count, h.instr_count);
  const PreparedAccess* pa = program_->prepared_pool() + h.prepared_begin;
  for (std::uint32_t i = 0; i < h.prepared_count; ++i) {
    machine_->DataAccess(pa[i].addr, pa[i].write);
  }
  if (h.raw_cycles != 0) {
    machine_->RawCycles(h.raw_cycles);
  }
  const RegOp* ro = program_->regop_pool() + h.regop_begin;
  for (std::uint32_t i = 0; i < h.regop_count; ++i) {
    const RegOp& op = ro[i];
    switch (op.kind) {
      case RegOp::Kind::kConst:
        regs_[op.dst] = op.imm;
        break;
      case RegOp::Kind::kAdd:
        regs_[op.dst] += op.imm;
        break;
      case RegOp::Kind::kMovReg:
        regs_[op.dst] = regs_[op.src];
        break;
    }
    written_ |= static_cast<std::uint16_t>(1u << op.dst);
  }
}

void Executor::ChargeBlock(const Block& b) {
  switch (charge_mode_) {
    case ChargeMode::kPrepared:
      machine_->InstrFetchLines(b.ifetch_first_line, b.ifetch_line_count, b.instr_count);
      for (const PreparedAccess& a : b.prepared_accesses) {
        machine_->DataAccess(a.addr, a.write);
      }
      break;
    case ChargeMode::kGeneric:
      machine_->InstrFetch(b.address, b.instr_count);
      for (const StaticAccess& a : b.static_accesses) {
        machine_->DataAccess(program_->ResolveStatic(b, a), a.write);
      }
      break;
    case ChargeMode::kReference:
      machine_->InstrFetchReference(b.address, b.instr_count);
      for (const StaticAccess& a : b.static_accesses) {
        machine_->DataAccessReference(program_->ResolveStatic(b, a), a.write);
      }
      break;
  }
  if (b.raw_cycles != 0) {
    machine_->RawCycles(b.raw_cycles);
  }
  // Interpret the register ops attached to this block.
  for (const RegOp& op : b.reg_ops) {
    switch (op.kind) {
      case RegOp::Kind::kConst:
        regs_[op.dst] = op.imm;
        break;
      case RegOp::Kind::kAdd:
        regs_[op.dst] += op.imm;
        break;
      case RegOp::Kind::kMovReg:
        regs_[op.dst] = regs_[op.src];
        break;
    }
    written_ |= static_cast<std::uint16_t>(1u << op.dst);
  }
}

void Executor::At(BlockId bid) {
  // Inner-loop discipline: the hot path below reads only the flat HotBlock
  // table (program_->hot) — the full Block (strings, per-block vectors) is
  // touched solely on error paths and behind the sink_/recording_ gates.
  if (charge_mode_ == ChargeMode::kReference) {
    AtReference(bid);
    return;
  }
  if (!in_path_) {
    Fail("At() outside a kernel path");
  }
  const HotBlock& h = program_->hot(bid);

  if (cur_ == kNoBlock) {
    const BlockId expect = program_->function(entry_func_).entry;
    if (bid != expect) {
      Fail("path must start at entry block " + program_->block(expect).name + ", got " +
           program_->block(bid).name);
    }
  } else {
    const HotBlock& p = *cur_hot_;
    if (dyn_count_ > p.max_dynamic_accesses) {
      FailDynBudget();
    }
    dyn_count_ = 0;
    if (p.callee != kNoFunc) {
      // Call edge.
      if (bid != p.callee_entry) {
        Fail("call block " + cur_block_->name + " must enter " +
             program_->function(p.callee).name + ", got " + program_->block(bid).name);
      }
      ChargeBranch(p.branch_pc, BranchKind::kDirect, true);
      Frame f;
      f.resume = p.succ0;
      f.regs = regs_;
      f.written = written_;
      call_stack_.push_back(f);
      written_ = 0;  // callee starts with no semantically-known registers
    } else if (p.is_return) {
      // Return edge.
      if (call_stack_.empty()) {
        Fail("return from " + cur_block_->name + " with empty call stack; expected End()");
      }
      const Frame f = call_stack_.back();
      call_stack_.pop_back();
      if (bid != f.resume) {
        Fail("return to " + program_->block(bid).name + " but resume block is " +
             program_->block(f.resume).name);
      }
      ChargeBranch(p.branch_pc, BranchKind::kReturn, true);
      regs_ = f.regs;
      written_ = f.written;
    } else {
      // Intra-function edge. succ1 is kNoBlock for single-successor blocks,
      // which no real block id equals, so two compares cover both arities.
      if (bid != p.succ0 && bid != p.succ1) {
        Fail("edge " + cur_block_->name + " -> " + program_->block(bid).name + " not in CFG");
      }
      if (p.nsuccs == 2) {
        const bool taken = (bid == p.succ1);
        // Cross-check semantic conditions where declared and where all
        // involved registers hold known values.
        if (p.has_cond_semantics && (written_ & CondRegMask(p.cond)) == CondRegMask(p.cond)) {
          const bool predicted = EvalCond(regs_, p.cond);
          if (p.cond.one_sided) {
            // Guard semantics: the condition must hold whenever the taken
            // edge is followed; early exit on the not-taken edge is allowed.
            if (taken && !predicted) {
              Fail("guard condition of " + cur_block_->name + " violated on taken edge");
            }
          } else if (predicted != taken) {
            Fail("semantic branch condition of " + cur_block_->name +
                 " disagrees with executed direction");
          }
        }
        ChargeBranch(p.branch_pc, BranchKind::kConditional, taken);
      } else if (p.branch == BranchKind::kDirect) {
        ChargeBranch(p.branch_pc, BranchKind::kDirect, true);
      }
      // Single-successor fall-through: no branch cost.
    }
  }

  if (sink_ != nullptr && cur_ != kNoBlock) {
    // The branch terminating the previous block has been charged above, so
    // the closing window attributes it (plus any Touch costs) to that block.
    CloseBlockWindow();
    const HotBlock& prev = *cur_hot_;
    if (prev.is_preemption_point && prev.nsuccs == 2 && bid == prev.succ1) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointTaken;
      e.cycle = machine_->Now();
      e.name = cur_block_->name.c_str();
      e.id = cur_;
      sink_->OnEvent(e);
    }
  }
  cur_ = bid;
  cur_block_ = &program_->block(bid);
  cur_hot_ = &h;
  if (recording_) {
    trace_.blocks.push_back(bid);
  }
  if (sink_ != nullptr) {
    if (h.is_preemption_point) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointHit;
      e.cycle = machine_->Now();
      e.name = cur_block_->name.c_str();
      e.id = bid;
      sink_->OnEvent(e);
    }
    OpenBlockWindow();
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->OnBlock(bid, h.is_preemption_point);
  }
  if (charge_mode_ == ChargeMode::kPrepared) {
    ChargeBlockPrepared(h);
  } else {
    ChargeBlock(*cur_block_);
  }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void Executor::AtReference(BlockId bid) {
  // Seed cost profile of At(): every edge check reads the full Block structs
  // (array-of-large-structs indexing, heap-allocated successor vectors), the
  // branch PC is recomputed from address/instr_count per edge, the budget
  // check goes through the out-of-line LeaveCurrent(), and block costs are
  // charged via the division-based reference machine entries (ChargeBlock in
  // kReference mode). Validation outcomes, hook invocations and all modelled
  // state transitions are identical to At(); only the host-side cost
  // differs. hotpath_equivalence_test cross-checks the two.
  if (!in_path_) {
    Fail("At() outside a kernel path");
  }
  const Block& b = program_->block(bid);

  if (cur_ == kNoBlock) {
    const BlockId expect = program_->function(entry_func_).entry;
    if (bid != expect) {
      Fail("path must start at entry block " + program_->block(expect).name + ", got " + b.name);
    }
  } else {
    const Block& p = program_->block(cur_);
    LeaveCurrent();
    if (p.callee != kNoFunc) {
      // Call edge.
      if (bid != program_->function(p.callee).entry) {
        Fail("call block " + p.name + " must enter " + program_->function(p.callee).name +
             ", got " + b.name);
      }
      const Addr branch_pc = p.address + (static_cast<Addr>(p.instr_count) - 1) * 4;
      machine_->BranchReference(branch_pc, BranchKind::kDirect, true);
      Frame f;
      f.resume = p.succs[0];
      f.regs = regs_;
      f.written = written_;
      call_stack_.push_back(f);
      written_ = 0;  // callee starts with no semantically-known registers
    } else if (p.is_return) {
      // Return edge.
      if (call_stack_.empty()) {
        Fail("return from " + p.name + " with empty call stack; expected End()");
      }
      const Frame f = call_stack_.back();
      call_stack_.pop_back();
      if (bid != f.resume) {
        Fail("return to " + b.name + " but resume block is " + program_->block(f.resume).name);
      }
      const Addr branch_pc = p.address + (static_cast<Addr>(p.instr_count) - 1) * 4;
      machine_->BranchReference(branch_pc, BranchKind::kReturn, true);
      regs_ = f.regs;
      written_ = f.written;
    } else {
      // Intra-function edge.
      bool found = false;
      for (BlockId s : p.succs) {
        if (s == bid) {
          found = true;
          break;
        }
      }
      if (!found) {
        Fail("edge " + p.name + " -> " + b.name + " not in CFG");
      }
      const Addr branch_pc = p.address + (static_cast<Addr>(p.instr_count) - 1) * 4;
      if (p.succs.size() == 2) {
        const bool taken = (bid == p.succs[1]);
        if (p.cond.HasSemantics() && (written_ & CondRegMask(p.cond)) == CondRegMask(p.cond)) {
          const bool predicted = EvalCond(regs_, p.cond);
          if (p.cond.one_sided) {
            if (taken && !predicted) {
              Fail("guard condition of " + p.name + " violated on taken edge");
            }
          } else if (predicted != taken) {
            Fail("semantic branch condition of " + p.name + " disagrees with executed direction");
          }
        }
        machine_->BranchReference(branch_pc, BranchKind::kConditional, taken);
      } else if (p.branch == BranchKind::kDirect) {
        machine_->BranchReference(branch_pc, BranchKind::kDirect, true);
      }
      // Single-successor fall-through: no branch cost.
    }
  }

  if (sink_ != nullptr && cur_ != kNoBlock) {
    CloseBlockWindow();
    const Block& prev = *cur_block_;
    if (prev.is_preemption_point && prev.succs.size() == 2 && bid == prev.succs[1]) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointTaken;
      e.cycle = machine_->Now();
      e.name = prev.name.c_str();
      e.id = cur_;
      sink_->OnEvent(e);
    }
  }
  cur_ = bid;
  cur_block_ = &b;
  cur_hot_ = &program_->hot(bid);
  if (recording_) {
    trace_.blocks.push_back(bid);
  }
  if (sink_ != nullptr) {
    if (b.is_preemption_point) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointHit;
      e.cycle = machine_->Now();
      e.name = b.name.c_str();
      e.id = bid;
      sink_->OnEvent(e);
    }
    OpenBlockWindow();
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->OnBlock(bid, b.is_preemption_point);
  }
  ChargeBlock(b);
}

void Executor::FailTouchOutsideBlock() const { Fail("Touch() outside a block"); }

void Executor::FailDynBudget() const {
  Fail("block " + cur_block_->name + " exceeded its dynamic-access budget: " +
       std::to_string(dyn_count_) + " > " +
       std::to_string(cur_block_->max_dynamic_accesses));
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void Executor::TouchReference(Addr addr, bool write) {
  if (!in_path_ || cur_ == kNoBlock) {
    FailTouchOutsideBlock();
  }
  dyn_count_++;
  machine_->DataAccessReference(addr, write);
}

void Executor::SetReg(std::uint8_t reg, std::int64_t value) {
  if (!in_path_ || cur_ == kNoBlock) {
    Fail("SetReg() outside a block");
  }
  // Validate against any loop-input declaration in the current function.
  const Function& f = program_->function(program_->block(cur_).func);
  for (BlockId bid : f.blocks) {
    for (const LoopInput& in : program_->block(bid).loop_inputs) {
      if (in.reg == reg && (value < in.min || value > in.max)) {
        Fail("SetReg r" + std::to_string(reg) + "=" + std::to_string(value) +
             " outside declared loop-input range [" + std::to_string(in.min) + "," +
             std::to_string(in.max) + "] of " + program_->block(bid).name);
      }
    }
  }
  regs_[reg] = value;
  written_ |= static_cast<std::uint16_t>(1u << reg);
}

void Executor::End() {
  if (!in_path_) {
    Fail("End() outside a kernel path");
  }
  if (cur_ == kNoBlock) {
    Fail("End() before any block executed");
  }
  const Block& p = *cur_block_;
  if (!p.is_return) {
    Fail("End() in non-return block " + p.name);
  }
  if (!call_stack_.empty()) {
    Fail("End() with non-empty call stack");
  }
  LeaveCurrent();
  if (sink_ != nullptr) {
    CloseBlockWindow();
    TraceEvent e;
    e.kind = TraceEventKind::kKernelExit;
    e.cycle = machine_->Now();
    e.name = program_->function(entry_func_).name.c_str();
    e.id = entry_func_;
    sink_->OnEvent(e);
  }
  in_path_ = false;
  cur_ = kNoBlock;
  cur_block_ = nullptr;
  if (recording_) {
    trace_.end_cycle = machine_->Now();
  }
}

Trace Executor::StopRecording() {
  recording_ = false;
  Trace t = trace_;
  trace_.Clear();
  return t;
}

}  // namespace pmk
