#include "src/kir/executor.h"

#include <cassert>

#include "src/hw/hotpath.h"
#include "src/kir/compiled.h"
#include "src/kir/compiled_dispatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_sink.h"

namespace pmk {

namespace {

std::int64_t EvalCmpSide(const std::array<std::int64_t, Executor::kNumRegs>& regs,
                         const BranchCond& c) {
  return c.rhs_is_imm ? c.rhs_imm : regs[c.rhs_reg];
}

bool EvalCond(const std::array<std::int64_t, Executor::kNumRegs>& regs, const BranchCond& c) {
  const std::int64_t lhs = regs[c.lhs];
  const std::int64_t rhs = EvalCmpSide(regs, c);
  switch (c.cmp) {
    case BranchCond::Cmp::kLt:
      return lhs < rhs;
    case BranchCond::Cmp::kGe:
      return lhs >= rhs;
    case BranchCond::Cmp::kEq:
      return lhs == rhs;
    case BranchCond::Cmp::kNe:
      return lhs != rhs;
    case BranchCond::Cmp::kNone:
      break;
  }
  return false;
}

std::uint16_t CondRegMask(const BranchCond& c) {
  std::uint16_t m = static_cast<std::uint16_t>(1u << c.lhs);
  if (!c.rhs_is_imm) {
    m |= static_cast<std::uint16_t>(1u << c.rhs_reg);
  }
  return m;
}

}  // namespace

Executor::Executor(const Program* program, Machine* machine)
    : program_(program), machine_(machine) {
  assert(program_->laid_out());
  if (hotpath::ReferenceMode()) {
    charge_mode_ = ChargeMode::kReference;
  } else if (hotpath::CompiledMode() && CompiledProgram::Compilable(machine_->config())) {
    compiled_ = program_->CompiledFor(machine_->config());
    iline_gen_.assign(compiled_->num_blocks(), 0);
    charge_mode_ = ChargeMode::kCompiled;
  } else if (machine_->config().l1i.line_bytes == Program::kPreparedLineBytes) {
    charge_mode_ = ChargeMode::kPrepared;
  } else {
    charge_mode_ = ChargeMode::kGeneric;
  }
  CountChargeMode(charge_mode_);
}

void Executor::CountChargeMode(ChargeMode mode) {
  // One static handle per mode: labeled-counter registration is idempotent
  // and the handles live for the process (metrics.h).
  switch (mode) {
    case ChargeMode::kPrepared: {
      static const obs::Counter c(
          obs::ObsLabeled("sim.exec.charge_mode", "mode", "prepared").c_str());
      c.Inc();
      break;
    }
    case ChargeMode::kGeneric: {
      static const obs::Counter c(
          obs::ObsLabeled("sim.exec.charge_mode", "mode", "generic").c_str());
      c.Inc();
      break;
    }
    case ChargeMode::kReference: {
      static const obs::Counter c(
          obs::ObsLabeled("sim.exec.charge_mode", "mode", "reference").c_str());
      c.Inc();
      break;
    }
    case ChargeMode::kCompiled: {
      static const obs::Counter c(
          obs::ObsLabeled("sim.exec.charge_mode", "mode", "compiled").c_str());
      c.Inc();
      break;
    }
  }
}

void Executor::FlushBlocksCharged() {
  static const obs::Counter blocks_charged("sim.exec.blocks_charged");
  if (blocks_pending_ != 0) {
    blocks_charged.Inc(blocks_pending_);
    blocks_pending_ = 0;
  }
}

void Executor::set_charge_mode(ChargeMode mode) {
  if (mode == ChargeMode::kPrepared &&
      machine_->config().l1i.line_bytes != Program::kPreparedLineBytes) {
    throw ExecError("set_charge_mode(kPrepared): machine L1I line size is " +
                    std::to_string(machine_->config().l1i.line_bytes) +
                    " bytes but the prepared I-fetch spans assume Program::kPreparedLineBytes = " +
                    std::to_string(Program::kPreparedLineBytes) +
                    " bytes; use kGeneric or kCompiled for this geometry");
  }
  if (mode == ChargeMode::kCompiled) {
    if (!CompiledProgram::Compilable(machine_->config())) {
      throw ExecError("set_charge_mode(kCompiled): machine geometry is not compilable (L1I " +
                      std::to_string(machine_->config().l1i.line_bytes) + "B lines, L1D " +
                      std::to_string(machine_->config().l1d.line_bytes) + "B, L2 " +
                      std::to_string(machine_->config().l2.line_bytes) + "B, " +
                      std::to_string(machine_->config().bpred.btb_entries) + " BTB entries)");
    }
    compiled_ = program_->CompiledFor(machine_->config());
    iline_gen_.assign(compiled_->num_blocks(), 0);
  }
  charge_mode_ = mode;
  // AtCompiled maintains only cur_/cur_cblock_; switching to an interpreter
  // mode mid-path must rebuild the Block/HotBlock views its At body reads.
  if (cur_ != kNoBlock) {
    cur_block_ = &program_->block(cur_);
    cur_hot_ = &program_->hot(cur_);
  }
  CountChargeMode(mode);
}

void Executor::Fail(const std::string& msg) const {
  // Land any deferred counters before unwinding so post-mortem PMU reads see
  // everything charged up to the failure point.
  FlushPathTally();
  std::string ctx = msg;
  if (cur_ != kNoBlock) {
    ctx += " (current block: " + program_->block(cur_).name + ")";
  }
  throw ExecError(ctx);
}

void Executor::Begin(FuncId entry_func) {
  if (in_path_) {
    Fail("Begin() while already in a kernel path");
  }
  in_path_ = true;
  entry_func_ = entry_func;
  cur_ = kNoBlock;
  cur_block_ = nullptr;
  cur_hot_ = nullptr;
  cur_cblock_ = nullptr;
  dyn_count_ = 0;
  call_stack_.clear();
  regs_.fill(0);
  written_ = 0;
  tally_ = Machine::PathTally{};
  if (recording_) {
    trace_.Clear();
    trace_.start_cycle = machine_->Now();
  }
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kKernelEntry;
    e.cycle = machine_->Now();
    e.name = program_->function(entry_func).name.c_str();
    e.id = entry_func;
    sink_->OnEvent(e);
  }
}

void Executor::OpenBlockWindow() {
  blk_start_cycle_ = machine_->Now();
  blk_start_imiss_ = machine_->counters().l1i_misses;
  blk_start_dmiss_ = machine_->counters().l1d_misses;
}

void Executor::CloseBlockWindow() {
  const Block& b = program_->block(cur_);
  TraceEvent e;
  e.kind = TraceEventKind::kBlockCost;
  e.cycle = machine_->Now();
  e.name = b.name.c_str();
  e.id = cur_;
  e.arg0 = machine_->Now() - blk_start_cycle_;
  e.arg1 = machine_->counters().l1i_misses - blk_start_imiss_;
  e.arg2 = machine_->counters().l1d_misses - blk_start_dmiss_;
  sink_->OnEvent(e);
}

void Executor::LeaveCurrent() {
  if (cur_ == kNoBlock) {
    return;
  }
  const Block& p = program_->block(cur_);
  if (dyn_count_ > p.max_dynamic_accesses) {
    Fail("block " + p.name + " exceeded its dynamic-access budget: " +
         std::to_string(dyn_count_) + " > " + std::to_string(p.max_dynamic_accesses));
  }
  dyn_count_ = 0;
}

void Executor::ChargeBranch(Addr pc, BranchKind kind, bool taken) {
  if (charge_mode_ == ChargeMode::kReference) {
    machine_->BranchReference(pc, kind, taken);
  } else {
    machine_->Branch(pc, kind, taken);
  }
}

void Executor::ChargeBlockPrepared(const HotBlock& h) {
  machine_->InstrFetchLines(h.ifetch_first_line, h.ifetch_line_count, h.instr_count);
  const PreparedAccess* pa = program_->prepared_pool() + h.prepared_begin;
  for (std::uint32_t i = 0; i < h.prepared_count; ++i) {
    machine_->DataAccess(pa[i].addr, pa[i].write);
  }
  if (h.raw_cycles != 0) {
    machine_->RawCycles(h.raw_cycles);
  }
  const RegOp* ro = program_->regop_pool() + h.regop_begin;
  for (std::uint32_t i = 0; i < h.regop_count; ++i) {
    const RegOp& op = ro[i];
    switch (op.kind) {
      case RegOp::Kind::kConst:
        regs_[op.dst] = op.imm;
        break;
      case RegOp::Kind::kAdd:
        regs_[op.dst] += op.imm;
        break;
      case RegOp::Kind::kMovReg:
        regs_[op.dst] = regs_[op.src];
        break;
    }
    written_ |= static_cast<std::uint16_t>(1u << op.dst);
  }
}

void Executor::ChargeBlock(const Block& b) {
  switch (charge_mode_) {
    case ChargeMode::kPrepared:
      machine_->InstrFetchLines(b.ifetch_first_line, b.ifetch_line_count, b.instr_count);
      for (const PreparedAccess& a : b.prepared_accesses) {
        machine_->DataAccess(a.addr, a.write);
      }
      break;
    case ChargeMode::kGeneric:
      machine_->InstrFetch(b.address, b.instr_count);
      for (const StaticAccess& a : b.static_accesses) {
        machine_->DataAccess(program_->ResolveStatic(b, a), a.write);
      }
      break;
    case ChargeMode::kReference:
      machine_->InstrFetchReference(b.address, b.instr_count);
      for (const StaticAccess& a : b.static_accesses) {
        machine_->DataAccessReference(program_->ResolveStatic(b, a), a.write);
      }
      break;
    case ChargeMode::kCompiled:
      // Unreachable: compiled mode charges through AtCompiled's stream.
      assert(false);
      break;
  }
  if (b.raw_cycles != 0) {
    machine_->RawCycles(b.raw_cycles);
  }
  // Interpret the register ops attached to this block.
  for (const RegOp& op : b.reg_ops) {
    switch (op.kind) {
      case RegOp::Kind::kConst:
        regs_[op.dst] = op.imm;
        break;
      case RegOp::Kind::kAdd:
        regs_[op.dst] += op.imm;
        break;
      case RegOp::Kind::kMovReg:
        regs_[op.dst] = regs_[op.src];
        break;
    }
    written_ |= static_cast<std::uint16_t>(1u << op.dst);
  }
}

void Executor::AtInterpreted(BlockId bid) {
  // Inner-loop discipline: the hot path below reads only the flat HotBlock
  // table (program_->hot) — the full Block (strings, per-block vectors) is
  // touched solely on error paths and behind the sink_/recording_ gates.
  if (charge_mode_ == ChargeMode::kReference) {
    AtReference(bid);
    return;
  }
  if (!in_path_) {
    Fail("At() outside a kernel path");
  }
  const HotBlock& h = program_->hot(bid);

  if (cur_ == kNoBlock) {
    const BlockId expect = program_->function(entry_func_).entry;
    if (bid != expect) {
      Fail("path must start at entry block " + program_->block(expect).name + ", got " +
           program_->block(bid).name);
    }
  } else {
    const HotBlock& p = *cur_hot_;
    if (dyn_count_ > p.max_dynamic_accesses) {
      FailDynBudget();
    }
    dyn_count_ = 0;
    if (p.callee != kNoFunc) {
      // Call edge.
      if (bid != p.callee_entry) {
        Fail("call block " + cur_block_->name + " must enter " +
             program_->function(p.callee).name + ", got " + program_->block(bid).name);
      }
      ChargeBranch(p.branch_pc, BranchKind::kDirect, true);
      Frame f;
      f.resume = p.succ0;
      f.regs = regs_;
      f.written = written_;
      call_stack_.push_back(f);
      written_ = 0;  // callee starts with no semantically-known registers
    } else if (p.is_return) {
      // Return edge.
      if (call_stack_.empty()) {
        Fail("return from " + cur_block_->name + " with empty call stack; expected End()");
      }
      const Frame f = call_stack_.back();
      call_stack_.pop_back();
      if (bid != f.resume) {
        Fail("return to " + program_->block(bid).name + " but resume block is " +
             program_->block(f.resume).name);
      }
      ChargeBranch(p.branch_pc, BranchKind::kReturn, true);
      regs_ = f.regs;
      written_ = f.written;
    } else {
      // Intra-function edge. succ1 is kNoBlock for single-successor blocks,
      // which no real block id equals, so two compares cover both arities.
      if (bid != p.succ0 && bid != p.succ1) {
        Fail("edge " + cur_block_->name + " -> " + program_->block(bid).name + " not in CFG");
      }
      if (p.nsuccs == 2) {
        const bool taken = (bid == p.succ1);
        // Cross-check semantic conditions where declared and where all
        // involved registers hold known values.
        if (p.has_cond_semantics && (written_ & CondRegMask(p.cond)) == CondRegMask(p.cond)) {
          const bool predicted = EvalCond(regs_, p.cond);
          if (p.cond.one_sided) {
            // Guard semantics: the condition must hold whenever the taken
            // edge is followed; early exit on the not-taken edge is allowed.
            if (taken && !predicted) {
              Fail("guard condition of " + cur_block_->name + " violated on taken edge");
            }
          } else if (predicted != taken) {
            Fail("semantic branch condition of " + cur_block_->name +
                 " disagrees with executed direction");
          }
        }
        ChargeBranch(p.branch_pc, BranchKind::kConditional, taken);
      } else if (p.branch == BranchKind::kDirect) {
        ChargeBranch(p.branch_pc, BranchKind::kDirect, true);
      }
      // Single-successor fall-through: no branch cost.
    }
  }

  if (sink_ != nullptr && cur_ != kNoBlock) {
    // The branch terminating the previous block has been charged above, so
    // the closing window attributes it (plus any Touch costs) to that block.
    CloseBlockWindow();
    const HotBlock& prev = *cur_hot_;
    if (prev.is_preemption_point && prev.nsuccs == 2 && bid == prev.succ1) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointTaken;
      e.cycle = machine_->Now();
      e.name = cur_block_->name.c_str();
      e.id = cur_;
      sink_->OnEvent(e);
    }
  }
  cur_ = bid;
  cur_block_ = &program_->block(bid);
  cur_hot_ = &h;
  if (recording_) {
    trace_.blocks.push_back(bid);
  }
  if (sink_ != nullptr) {
    if (h.is_preemption_point) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointHit;
      e.cycle = machine_->Now();
      e.name = cur_block_->name.c_str();
      e.id = bid;
      sink_->OnEvent(e);
    }
    OpenBlockWindow();
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->OnBlock(bid, h.is_preemption_point);
  }
  blocks_pending_++;
  if (charge_mode_ == ChargeMode::kPrepared) {
    ChargeBlockPrepared(h);
  } else {
    ChargeBlock(*cur_block_);
  }
}

// Defined here rather than in compiled.cc so the dispatch loop inlines into
// AtCompiled, its only caller: the per-block call, the l1i/l1d/l2 reference
// setup and the tally-pointer test all fold into the surrounding frame.
std::uint32_t CompiledProgram::Run(const CompiledOp* op, Machine& m,
                                   std::array<std::int64_t, 16>& regs, std::uint16_t& written,
                                   Machine::PathTally* tally) {
  Cache& l1i = m.l1i();
  Cache& l1d = m.l1d();
  Cache& l2 = m.l2();
  const MemoryConfig& mem = m.config().memory;
  const bool l2on = m.l2_enabled();
  Cycles penalties = 0;
  std::uint32_t imiss = 0;
  std::uint32_t dmiss = 0;
  std::uint32_t l2acc = 0;
  std::uint32_t l2miss = 0;
  std::uint64_t stall = 0;

  // The L1-miss path, with the L2 set/tag folded into the op. Mirrors
  // Machine::MissPenalty with stats deferred to the kEnd flush.
  const auto miss_penalty = [&](const CompiledOp& o) -> Cycles {
    Cycles p;
    if (!l2on) {
      p = mem.mem_latency_l2_off;
    } else {
      ++l2acc;
      if (l2.AccessLineNoStats(o.u.mem.l2_set, o.u.mem.l2_tag)) {
        p = mem.l2_hit_latency;
      } else {
        ++l2miss;
        p = mem.mem_latency_l2_on;
      }
    }
    stall += p;
    return p;
  };
  const auto flush = [&](const CompiledOp& o) {
    if (tally != nullptr) {
      tally->instructions += o.u.end.n_instr;
      tally->l1i_accesses += o.u.end.n_lines;
      tally->l1i_misses += imiss;
      tally->l1d_accesses += o.u.end.n_accesses;
      tally->l1d_misses += dmiss;
      tally->l2_accesses += l2acc;
      tally->l2_misses += l2miss;
      tally->mem_stall_cycles += stall;
      m.RawCycles(o.u.end.base_cost + penalties);
      return;
    }
    Machine::ChargeDelta d;
    d.cost = o.u.end.base_cost + penalties;
    d.instructions = o.u.end.n_instr;
    d.l1i_accesses = o.u.end.n_lines;
    d.l1i_misses = imiss;
    d.l1d_accesses = o.u.end.n_accesses;
    d.l1d_misses = dmiss;
    d.l2_accesses = l2acc;
    d.l2_misses = l2miss;
    d.mem_stall = stall;
    l1i.AddStats(o.u.end.n_lines, imiss);
    if (o.u.end.n_accesses != 0) {
      l1d.AddStats(o.u.end.n_accesses, dmiss);
    }
    if (l2acc != 0) {
      l2.AddStats(l2acc, l2miss);
    }
    m.ApplyChargeDelta(d);
  };

#ifdef PMK_COMPUTED_GOTO
  // Label table order must match CompiledOp::Kind declaration order.
  static_assert(static_cast<int>(CompiledOp::Kind::kILine) == 0);
  static_assert(static_cast<int>(CompiledOp::Kind::kEnd) == 5);
  static const void* const kDispatch[] = {&&op_iline, &&op_dacc,  &&op_rconst,
                                          &&op_radd,  &&op_rmov,  &&op_end};
#define PMK_NEXT() goto* kDispatch[static_cast<std::uint8_t>(op->kind)]
  PMK_NEXT();
op_iline:
  if (!l1i.AccessLineNoStats(op->u.mem.l1_set, op->u.mem.l1_tag)) {
    ++imiss;
    penalties += miss_penalty(*op);
  }
  ++op;
  PMK_NEXT();
op_dacc:
  if (!l1d.AccessLineNoStats(op->u.mem.l1_set, op->u.mem.l1_tag)) {
    ++dmiss;
    penalties += miss_penalty(*op);
  }
  ++op;
  PMK_NEXT();
op_rconst:
  regs[op->dst] = op->u.reg.imm;
  written |= static_cast<std::uint16_t>(1u << op->dst);
  ++op;
  PMK_NEXT();
op_radd:
  regs[op->dst] += op->u.reg.imm;
  written |= static_cast<std::uint16_t>(1u << op->dst);
  ++op;
  PMK_NEXT();
op_rmov:
  regs[op->dst] = regs[op->src];
  written |= static_cast<std::uint16_t>(1u << op->dst);
  ++op;
  PMK_NEXT();
op_end:
  flush(*op);
  return imiss;
#undef PMK_NEXT
#else
  for (;;) {
    const CompiledOp& o = *op;
    switch (o.kind) {
      case CompiledOp::Kind::kILine:
        if (!l1i.AccessLineNoStats(o.u.mem.l1_set, o.u.mem.l1_tag)) {
          ++imiss;
          penalties += miss_penalty(o);
        }
        break;
      case CompiledOp::Kind::kDAcc:
        if (!l1d.AccessLineNoStats(o.u.mem.l1_set, o.u.mem.l1_tag)) {
          ++dmiss;
          penalties += miss_penalty(o);
        }
        break;
      case CompiledOp::Kind::kRegConst:
        regs[o.dst] = o.u.reg.imm;
        written |= static_cast<std::uint16_t>(1u << o.dst);
        break;
      case CompiledOp::Kind::kRegAdd:
        regs[o.dst] += o.u.reg.imm;
        written |= static_cast<std::uint16_t>(1u << o.dst);
        break;
      case CompiledOp::Kind::kRegMov:
        regs[o.dst] = regs[o.src];
        written |= static_cast<std::uint16_t>(1u << o.dst);
        break;
      case CompiledOp::Kind::kEnd:
        flush(o);
        return imiss;
    }
    ++op;
  }
#endif
}

void Executor::AtCompiled(BlockId bid) {
  // Mirror of At(): identical validation outcomes, error messages, hook and
  // sink timing, and modelled state transitions — only the record read for
  // edge checks (CompiledBlock) and the charging implementation (the block's
  // precompiled stream) differ. Keep the three in sync; the equivalence test
  // and the bench digest gate cross-check them.
  if (!in_path_) {
    Fail("At() outside a kernel path");
  }
  const CompiledBlock& cb = compiled_->block(bid);
  // Without a sink, counters and cache stats defer into tally_ (flushed at
  // End); sink block windows need boundary-exact counters, so a sink forces
  // the eager per-block flush.
  Machine::PathTally* const tally = sink_ == nullptr ? &tally_ : nullptr;

  if (cur_ == kNoBlock) {
    const BlockId expect = program_->function(entry_func_).entry;
    if (bid != expect) {
      Fail("path must start at entry block " + program_->block(expect).name + ", got " +
           program_->block(bid).name);
    }
  } else {
    const CompiledBlock& p = *cur_cblock_;
    if (dyn_count_ > p.max_dynamic_accesses) {
      FailDynBudget();
    }
    dyn_count_ = 0;
    if (p.callee != kNoFunc) {
      // Call edge.
      if (bid != p.callee_entry) {
        Fail("call block " + program_->block(cur_).name + " must enter " +
             program_->function(p.callee).name + ", got " + program_->block(bid).name);
      }
      if (tally != nullptr) {
        machine_->BranchSlotTallied(p.btb_index, p.branch_pc, BranchKind::kDirect, true, *tally);
      } else {
        machine_->BranchSlot(p.btb_index, p.branch_pc, BranchKind::kDirect, true);
      }
      Frame f;
      f.resume = p.succ0;
      f.regs = regs_;
      f.written = written_;
      call_stack_.push_back(f);
      written_ = 0;  // callee starts with no semantically-known registers
    } else if (p.is_return) {
      // Return edge.
      if (call_stack_.empty()) {
        Fail("return from " + program_->block(cur_).name +
             " with empty call stack; expected End()");
      }
      const Frame f = call_stack_.back();
      call_stack_.pop_back();
      if (bid != f.resume) {
        Fail("return to " + program_->block(bid).name + " but resume block is " +
             program_->block(f.resume).name);
      }
      if (tally != nullptr) {
        machine_->BranchSlotTallied(p.btb_index, p.branch_pc, BranchKind::kReturn, true, *tally);
      } else {
        machine_->BranchSlot(p.btb_index, p.branch_pc, BranchKind::kReturn, true);
      }
      regs_ = f.regs;
      written_ = f.written;
    } else {
      // Intra-function edge. succ1 is kNoBlock for single-successor blocks,
      // which no real block id equals, so two compares cover both arities.
      if (bid != p.succ0 && bid != p.succ1) {
        Fail("edge " + program_->block(cur_).name + " -> " + program_->block(bid).name +
             " not in CFG");
      }
      if (p.nsuccs == 2) {
        const bool taken = (bid == p.succ1);
        if (p.has_cond_semantics && (written_ & CondRegMask(p.cond)) == CondRegMask(p.cond)) {
          const bool predicted = EvalCond(regs_, p.cond);
          if (p.cond.one_sided) {
            if (taken && !predicted) {
              Fail("guard condition of " + program_->block(cur_).name + " violated on taken edge");
            }
          } else if (predicted != taken) {
            Fail("semantic branch condition of " + program_->block(cur_).name +
                 " disagrees with executed direction");
          }
        }
        if (tally != nullptr) {
          machine_->BranchSlotTallied(p.btb_index, p.branch_pc, BranchKind::kConditional, taken,
                                      *tally);
        } else {
          machine_->BranchSlot(p.btb_index, p.branch_pc, BranchKind::kConditional, taken);
        }
      } else if (p.branch == BranchKind::kDirect) {
        if (tally != nullptr) {
          machine_->BranchSlotTallied(p.btb_index, p.branch_pc, BranchKind::kDirect, true,
                                      *tally);
        } else {
          machine_->BranchSlot(p.btb_index, p.branch_pc, BranchKind::kDirect, true);
        }
      }
      // Single-successor fall-through: no branch cost.
    }
  }

  if (sink_ != nullptr && cur_ != kNoBlock) {
    // The branch terminating the previous block has been charged above, so
    // the closing window attributes it (plus any Touch costs) to that block.
    CloseBlockWindow();
    const CompiledBlock& prev = *cur_cblock_;
    if (prev.is_preemption_point && prev.nsuccs == 2 && bid == prev.succ1) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointTaken;
      e.cycle = machine_->Now();
      e.name = program_->block(cur_).name.c_str();
      e.id = cur_;
      sink_->OnEvent(e);
    }
  }
  // The hot path maintains only cur_ and cur_cblock_; the Block/HotBlock
  // views (error messages, sink events, End()) are recomputed on demand from
  // cur_ — two stores per block saved on the innermost loop.
  cur_ = bid;
  cur_cblock_ = &cb;
  if (!plain_path_) {
    if (recording_) {
      trace_.blocks.push_back(bid);
    }
    if (sink_ != nullptr) {
      if (cb.is_preemption_point) {
        TraceEvent e;
        e.kind = TraceEventKind::kPreemptPointHit;
        e.cycle = machine_->Now();
        e.name = program_->block(bid).name.c_str();
        e.id = bid;
        sink_->OnEvent(e);
      }
      OpenBlockWindow();
    }
    if (fault_hook_ != nullptr) {
      fault_hook_->OnBlock(bid, cb.is_preemption_point);
    }
  }
  blocks_pending_++;
  // I-fetch memo: if this block's I-lines all hit the last time it ran and
  // the L1I's line state has not changed since (Cache::Gen — hits mutate
  // nothing, so only installs elsewhere can evict them), skip the I-line
  // probes entirely via the kILine-free twin stream. Steady-state loop
  // bodies reduce to their data accesses and the shared kEnd flush.
  const std::uint64_t l1i_gen = machine_->l1i().Gen();
  if (iline_gen_[bid] == l1i_gen) {
    const CompiledOp* h = cb.hit_ops;
    if (h->kind == CompiledOp::Kind::kEnd && tally != nullptr) {
      // Common fully-memoised shape: a block with no static accesses and no
      // register ops (data touched via dynamic Touch instead) reduces to its
      // kEnd op. n_accesses is zero by construction (kDAcc ops would
      // otherwise precede the kEnd), so the whole charge is two counter
      // adds and the cycle advance.
      tally->instructions += h->u.end.n_instr;
      tally->l1i_accesses += h->u.end.n_lines;
      machine_->RawCycles(h->u.end.base_cost);
    } else {
      CompiledProgram::Run(h, *machine_, regs_, written_, tally);
    }
  } else if (CompiledProgram::Run(cb.ops, *machine_, regs_, written_, tally) == 0) {
    // Zero I-misses: the run itself did not touch L1I line state, so the
    // generation read above is still current.
    iline_gen_[bid] = l1i_gen;
  }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void Executor::AtReference(BlockId bid) {
  // Seed cost profile of At(): every edge check reads the full Block structs
  // (array-of-large-structs indexing, heap-allocated successor vectors), the
  // branch PC is recomputed from address/instr_count per edge, the budget
  // check goes through the out-of-line LeaveCurrent(), and block costs are
  // charged via the division-based reference machine entries (ChargeBlock in
  // kReference mode). Validation outcomes, hook invocations and all modelled
  // state transitions are identical to At(); only the host-side cost
  // differs. hotpath_equivalence_test cross-checks the two.
  if (!in_path_) {
    Fail("At() outside a kernel path");
  }
  const Block& b = program_->block(bid);

  if (cur_ == kNoBlock) {
    const BlockId expect = program_->function(entry_func_).entry;
    if (bid != expect) {
      Fail("path must start at entry block " + program_->block(expect).name + ", got " + b.name);
    }
  } else {
    const Block& p = program_->block(cur_);
    LeaveCurrent();
    if (p.callee != kNoFunc) {
      // Call edge.
      if (bid != program_->function(p.callee).entry) {
        Fail("call block " + p.name + " must enter " + program_->function(p.callee).name +
             ", got " + b.name);
      }
      const Addr branch_pc = p.address + (static_cast<Addr>(p.instr_count) - 1) * 4;
      machine_->BranchReference(branch_pc, BranchKind::kDirect, true);
      Frame f;
      f.resume = p.succs[0];
      f.regs = regs_;
      f.written = written_;
      call_stack_.push_back(f);
      written_ = 0;  // callee starts with no semantically-known registers
    } else if (p.is_return) {
      // Return edge.
      if (call_stack_.empty()) {
        Fail("return from " + p.name + " with empty call stack; expected End()");
      }
      const Frame f = call_stack_.back();
      call_stack_.pop_back();
      if (bid != f.resume) {
        Fail("return to " + b.name + " but resume block is " + program_->block(f.resume).name);
      }
      const Addr branch_pc = p.address + (static_cast<Addr>(p.instr_count) - 1) * 4;
      machine_->BranchReference(branch_pc, BranchKind::kReturn, true);
      regs_ = f.regs;
      written_ = f.written;
    } else {
      // Intra-function edge.
      bool found = false;
      for (BlockId s : p.succs) {
        if (s == bid) {
          found = true;
          break;
        }
      }
      if (!found) {
        Fail("edge " + p.name + " -> " + b.name + " not in CFG");
      }
      const Addr branch_pc = p.address + (static_cast<Addr>(p.instr_count) - 1) * 4;
      if (p.succs.size() == 2) {
        const bool taken = (bid == p.succs[1]);
        if (p.cond.HasSemantics() && (written_ & CondRegMask(p.cond)) == CondRegMask(p.cond)) {
          const bool predicted = EvalCond(regs_, p.cond);
          if (p.cond.one_sided) {
            if (taken && !predicted) {
              Fail("guard condition of " + p.name + " violated on taken edge");
            }
          } else if (predicted != taken) {
            Fail("semantic branch condition of " + p.name + " disagrees with executed direction");
          }
        }
        machine_->BranchReference(branch_pc, BranchKind::kConditional, taken);
      } else if (p.branch == BranchKind::kDirect) {
        machine_->BranchReference(branch_pc, BranchKind::kDirect, true);
      }
      // Single-successor fall-through: no branch cost.
    }
  }

  if (sink_ != nullptr && cur_ != kNoBlock) {
    CloseBlockWindow();
    const Block& prev = *cur_block_;
    if (prev.is_preemption_point && prev.succs.size() == 2 && bid == prev.succs[1]) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointTaken;
      e.cycle = machine_->Now();
      e.name = prev.name.c_str();
      e.id = cur_;
      sink_->OnEvent(e);
    }
  }
  cur_ = bid;
  cur_block_ = &b;
  cur_hot_ = &program_->hot(bid);
  if (recording_) {
    trace_.blocks.push_back(bid);
  }
  if (sink_ != nullptr) {
    if (b.is_preemption_point) {
      TraceEvent e;
      e.kind = TraceEventKind::kPreemptPointHit;
      e.cycle = machine_->Now();
      e.name = b.name.c_str();
      e.id = bid;
      sink_->OnEvent(e);
    }
    OpenBlockWindow();
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->OnBlock(bid, b.is_preemption_point);
  }
  blocks_pending_++;
  ChargeBlock(b);
}

void Executor::FailTouchOutsideBlock() const { Fail("Touch() outside a block"); }

void Executor::FailDynBudget() const {
  const Block& b = program_->block(cur_);
  Fail("block " + b.name + " exceeded its dynamic-access budget: " +
       std::to_string(dyn_count_) + " > " + std::to_string(b.max_dynamic_accesses));
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void Executor::TouchReference(Addr addr, bool write) {
  if (!in_path_ || cur_ == kNoBlock) {
    FailTouchOutsideBlock();
  }
  dyn_count_++;
  machine_->DataAccessReference(addr, write);
}

void Executor::SetReg(std::uint8_t reg, std::int64_t value) {
  if (!in_path_ || cur_ == kNoBlock) {
    Fail("SetReg() outside a block");
  }
  // Validate against any loop-input declaration in the current function.
  if (charge_mode_ == ChargeMode::kReference) {
    // Seed cost profile: re-walk every block of the function per injection.
    // Validation outcomes are identical to the flattened table below.
    const Function& f = program_->function(program_->block(cur_).func);
    for (BlockId bid : f.blocks) {
      for (const LoopInput& in : program_->block(bid).loop_inputs) {
        if (in.reg == reg && (value < in.min || value > in.max)) {
          Fail("SetReg r" + std::to_string(reg) + "=" + std::to_string(value) +
               " outside declared loop-input range [" + std::to_string(in.min) + "," +
               std::to_string(in.max) + "] of " + program_->block(bid).name);
        }
      }
    }
  } else {
    for (const LoopInputDecl& in : program_->loop_inputs_of(program_->block(cur_).func)) {
      if (in.reg == reg && (value < in.min || value > in.max)) {
        Fail("SetReg r" + std::to_string(reg) + "=" + std::to_string(value) +
             " outside declared loop-input range [" + std::to_string(in.min) + "," +
             std::to_string(in.max) + "] of " + program_->block(in.block).name);
      }
    }
  }
  regs_[reg] = value;
  written_ |= static_cast<std::uint16_t>(1u << reg);
}

void Executor::End() {
  if (!in_path_) {
    Fail("End() outside a kernel path");
  }
  if (cur_ == kNoBlock) {
    Fail("End() before any block executed");
  }
  const Block& p = program_->block(cur_);
  if (!p.is_return) {
    Fail("End() in non-return block " + p.name);
  }
  if (!call_stack_.empty()) {
    Fail("End() with non-empty call stack");
  }
  LeaveCurrent();
  if (sink_ != nullptr) {
    CloseBlockWindow();
    TraceEvent e;
    e.kind = TraceEventKind::kKernelExit;
    e.cycle = machine_->Now();
    e.name = program_->function(entry_func_).name.c_str();
    e.id = entry_func_;
    sink_->OnEvent(e);
  }
  in_path_ = false;
  cur_ = kNoBlock;
  cur_block_ = nullptr;
  cur_cblock_ = nullptr;
  if (recording_) {
    trace_.end_cycle = machine_->Now();
  }
  FlushPathTally();
  FlushBlocksCharged();
}

Trace Executor::StopRecording() {
  recording_ = false;
  RefreshPlainPath();
  Trace t = trace_;
  trace_.Clear();
  return t;
}

}  // namespace pmk
