// Kernel IR executor: runs declared blocks against the machine model.
//
// The kernel's C++ code drives the executor: it announces each basic block it
// passes through (Executor::At) and each dynamically-addressed memory access
// it performs (Executor::Touch). The executor charges all costs to the
// hw::Machine, enforces that the dynamic path is a path of the declared CFG
// (calls, returns and successor edges), enforces per-block dynamic-access
// budgets, interprets the register-machine ops attached to loop blocks and
// cross-checks semantic branch conditions against the direction the C++ code
// actually took. Any divergence throws ExecError — in the paper's terms, the
// "binary" being analyzed would not match the kernel being run.

#ifndef SRC_KIR_EXECUTOR_H_
#define SRC_KIR_EXECUTOR_H_

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/kir/program.h"
#include "src/kir/trace.h"

namespace pmk {

class TraceSink;
class CompiledProgram;  // src/kir/compiled.h
struct CompiledBlock;

class ExecError : public std::logic_error {
 public:
  explicit ExecError(const std::string& what) : std::logic_error(what) {}
};

// Fault-injection seam (src/fault). The executor calls OnBlock for every
// block it is about to charge — after the CFG edge into the block has been
// validated, before the block's costs land on the machine. A hook that
// asserts an interrupt line here is therefore visible to the kernel's very
// next PreemptPending() check: asserting on a preemption-point block models
// an interrupt arriving exactly at that boundary. Hooks must not charge
// modelled cycles; they observe and poke hardware state only.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // |b| is the block becoming current; |is_preemption_point| mirrors the
  // block's CFG flag so hooks need not look the block up again.
  virtual void OnBlock(BlockId b, bool is_preemption_point) = 0;
};

class Executor {
 public:
  static constexpr std::size_t kNumRegs = 16;

  // How block costs are charged to the machine. All modes produce
  // bit-identical modelled results (cycles, counters, cache state, traces);
  // they differ only in host-side cost. hotpath_equivalence_test verifies the
  // bit-identity.
  enum class ChargeMode : std::uint8_t {
    // Interpreter: iterate the Layout()-precomputed I-fetch spans and
    // resolved static access addresses. Requires the machine's L1I line size
    // to match Program::kPreparedLineBytes; selected when it does and the
    // compiled backend is off (hotpath::SetCompiledMode(false)).
    kPrepared,
    // Interpreter fallback: recompute spans and resolve static accesses per
    // execution. Selected for non-standard cache geometry with the compiled
    // backend off or uncompilable geometry.
    kGeneric,
    // Benchmark baseline: generic arithmetic through the out-of-line
    // division-based reference entries (Machine::InstrFetchReference /
    // DataAccessReference). Selected at construction when
    // pmk::hotpath::ReferenceMode() is on.
    kReference,
    // Compiled threaded-code backend (src/kir/compiled.h): one indirect jump
    // into the block's precompiled charge stream, cache geometry and BTB
    // indices constant-folded per machine specialisation. The default.
    kCompiled,
  };

  Executor(const Program* program, Machine* machine);

  ChargeMode charge_mode() const { return charge_mode_; }

  // Switches the charging implementation. Validates the mode against the
  // machine: kPrepared requires the L1I line size to match
  // Program::kPreparedLineBytes (a mismatch would silently mischarge I-fetch
  // spans), and kCompiled requires a compilable geometry; either violation
  // throws ExecError naming the geometry. Selecting kCompiled (re)binds the
  // program's specialisation for this machine.
  void set_charge_mode(ChargeMode mode);

  // Starts a kernel path at |entry_func|'s entry block.
  void Begin(FuncId entry_func);

  // Announces execution of block |b| (charges fetch, static accesses, branch
  // from the previous block, raw cycles; interprets register ops). Inline
  // dispatch: the compiled backend is the default mode and this is called
  // once per block, so the common case pays one predicted compare and a tail
  // call into AtCompiled. Reference mode goes through the out-of-line
  // AtReference twin that replicates the seed implementation's per-edge cost.
  void At(BlockId b) {
    if (charge_mode_ == ChargeMode::kCompiled) {
      AtCompiled(b);
      return;
    }
    AtInterpreted(b);
  }

  // One dynamically-addressed data access within the current block. Inline:
  // object-clearing loops issue one Touch per modelled line, so this is the
  // single hottest call site in long campaigns.
  void Touch(Addr addr, bool write = false) {
    if (charge_mode_ == ChargeMode::kReference) {
      TouchReference(addr, write);  // seed call depth: out-of-line end to end
      return;
    }
    if (!in_path_ || cur_ == kNoBlock) {
      FailTouchOutsideBlock();
    }
    dyn_count_++;
    if (charge_mode_ == ChargeMode::kCompiled && sink_ == nullptr) {
      machine_->DataAccessTallied(addr, write, tally_);
    } else {
      machine_->DataAccess(addr, write);
    }
  }

  // |count| dynamically-addressed accesses at base, base+stride, ... within
  // the current block, charged as one batch (Machine::DataAccessRun): the
  // kernel's object-clearing loops issue one call per chunk instead of one
  // Touch per modelled line. Bit-identical to the equivalent Touch loop; in
  // reference mode the loop is replayed per element to preserve the seed
  // cost profile.
  void TouchRun(Addr base, std::uint32_t count, std::uint32_t stride, bool write = false) {
    if (count == 0) {
      return;
    }
    if (charge_mode_ == ChargeMode::kReference) {
      for (std::uint32_t i = 0; i < count; ++i) {
        TouchReference(base + static_cast<Addr>(i) * stride, write);
      }
      return;
    }
    if (!in_path_ || cur_ == kNoBlock) {
      FailTouchOutsideBlock();
    }
    dyn_count_ += count;
    machine_->DataAccessRun(
        base, count, stride, write,
        charge_mode_ == ChargeMode::kCompiled && sink_ == nullptr ? &tally_ : nullptr);
  }

  // Injects a runtime value into register |reg| (a loop input). Validated
  // against the declared LoopInput range of the current function's loops.
  void SetReg(std::uint8_t reg, std::int64_t value);

  // Ends the kernel path; the current block must be a return block of the
  // entry function and the call stack must be empty.
  void End();

  bool InPath() const { return in_path_; }
  BlockId CurrentBlock() const { return cur_; }

  // Trace recording (off by default).
  void StartRecording() {
    recording_ = true;
    RefreshPlainPath();
  }
  Trace StopRecording();

  // Structured event tracing (src/obs): kernel entry/exit, per-block cycle
  // and cache-miss attribution, preemption-point hit/taken events. A null
  // sink (the default) reduces every instrumentation site to one pointer
  // test; with or without a sink, no modelled cycles are charged. Sink block
  // windows read the machine's PMU counters at block boundaries, so a sink
  // forces the eager per-block counter flush; attaching one mid-path first
  // flushes the deferred tally so the first window starts from exact
  // counters.
  void set_trace_sink(TraceSink* sink) {
    if (in_path_) {
      FlushPathTally();
    }
    sink_ = sink;
    RefreshPlainPath();
  }
  TraceSink* trace_sink() const { return sink_; }

  // Fault-injection hook (off by default): invoked from At() for every block,
  // at zero modelled-cycle cost. See FaultHook above for the exact timing
  // contract relative to the kernel's PreemptPending() checks.
  void set_fault_hook(FaultHook* hook) {
    fault_hook_ = hook;
    RefreshPlainPath();
  }
  FaultHook* fault_hook() const { return fault_hook_; }

  const Program& program() const { return *program_; }
  Machine& machine() { return *machine_; }

 private:
  void LeaveCurrent();
  void ChargeBlock(const Block& b);
  // Prepared-mode charge path over the flat HotBlock table and pools.
  void ChargeBlockPrepared(const HotBlock& h);
  // Charges the branch ending the previous block via the fast inline
  // Machine::Branch, or via the out-of-line reference twin in reference mode.
  void ChargeBranch(Addr pc, BranchKind kind, bool taken);
  // Emits the kBlockCost event for the block being left (cycles and misses
  // accumulated since OpenBlockWindow) and re-snapshots the counters.
  void CloseBlockWindow();
  void OpenBlockWindow();
  [[noreturn]] void Fail(const std::string& msg) const;
  [[noreturn]] void FailTouchOutsideBlock() const;
  [[noreturn]] void FailDynBudget() const;
  // Reference-mode Touch body: replicates the seed's out-of-line
  // Touch -> DataAccess call chain so the benchmark baseline pays the
  // pre-optimisation call depth.
  void TouchReference(Addr addr, bool write);
  // Reference-mode At body: the seed's per-edge cost profile — full Block
  // struct lookups, heap successor-vector walks, per-edge branch-PC
  // recomputation — with identical validation, hooks and state transitions.
  void AtReference(BlockId bid);
  // Interpreter At body (kPrepared/kGeneric, and the kReference re-dispatch).
  void AtInterpreted(BlockId bid);
  // Compiled-mode At body: identical validation, hooks and state transitions
  // to At(), with edge checks over the CompiledBlock record and block costs
  // charged through the block's precompiled stream (CompiledProgram::Run).
  void AtCompiled(BlockId bid);
  // Flushes the deferred path tally (compiled mode, no sink) into the
  // machine's counters and cache stats. Called at End(), before throwing
  // from Fail(), and when a sink attaches mid-path. Harmless no-op sums in
  // the eager modes, where the tally stays zero.
  void FlushPathTally() const {
    machine_->ApplyPathTally(tally_);
    tally_ = Machine::PathTally{};
  }
  // Records the sim.exec.charge_mode{mode=...} labeled counter.
  static void CountChargeMode(ChargeMode mode);
  // Recomputes the cached plain_path_ flag (see its declaration).
  void RefreshPlainPath() {
    plain_path_ = sink_ == nullptr && fault_hook_ == nullptr && !recording_;
  }
  // Flushes blocks_pending_ into the sim.exec.blocks_charged counter; called
  // from End() so the hot path pays one local increment per block.
  void FlushBlocksCharged();

  struct Frame {
    BlockId resume = kNoBlock;
    std::array<std::int64_t, kNumRegs> regs{};
    std::uint16_t written = 0;
  };

  const Program* program_;
  Machine* machine_;
  ChargeMode charge_mode_;

  // Compiled-backend specialisation for machine_'s geometry; bound at
  // construction / set_charge_mode(kCompiled), null in other modes.
  const CompiledProgram* compiled_ = nullptr;
  // I-fetch memo, one slot per block: the machine's L1I line-state generation
  // (Cache::Gen) at the last run in which the block's I-lines all hit, or 0.
  // While the generation is unchanged the lines are still resident and the
  // probes can be skipped bit-identically (CompiledBlock::hit_ops).
  std::vector<std::uint64_t> iline_gen_;

  bool in_path_ = false;
  BlockId cur_ = kNoBlock;
  const Block* cur_block_ = nullptr;   // &program_->block(cur_), cached
  const HotBlock* cur_hot_ = nullptr;  // &program_->hot(cur_), cached
  const CompiledBlock* cur_cblock_ = nullptr;  // &compiled_->block(cur_), cached
  FuncId entry_func_ = kNoFunc;
  std::uint32_t dyn_count_ = 0;
  std::uint64_t blocks_pending_ = 0;  // blocks charged since the last flush
  // Deferred path accounting (compiled mode, no sink): counter and cache-stat
  // deltas for the in-flight path, flushed by FlushPathTally(). Mutable so
  // the [[noreturn]] const Fail() can flush before throwing.
  mutable Machine::PathTally tally_;
  std::vector<Frame> call_stack_;
  std::array<std::int64_t, kNumRegs> regs_{};
  std::uint16_t written_ = 0;

  bool recording_ = false;
  Trace trace_;

  // True when no observer is attached (no sink, no fault hook, no trace
  // recording) — the common campaign/bench configuration. AtCompiled's
  // per-block observer tail then reduces to this single test; kept in sync
  // by RefreshPlainPath() from every setter.
  bool plain_path_ = true;
  TraceSink* sink_ = nullptr;
  FaultHook* fault_hook_ = nullptr;
  Cycles blk_start_cycle_ = 0;  // counter snapshot at current-block entry
  std::uint64_t blk_start_imiss_ = 0;
  std::uint64_t blk_start_dmiss_ = 0;
};

}  // namespace pmk

#endif  // SRC_KIR_EXECUTOR_H_
