#include "src/kir/program.h"

#include <cassert>
#include <stdexcept>

namespace pmk {

namespace {
constexpr std::uint32_t kInstrBytes = 4;

Addr AlignUp(Addr a, Addr align) { return (a + align - 1) & ~(align - 1); }
}  // namespace

FuncId Program::AddFunction(std::string_view name, std::uint32_t frame_bytes) {
  assert(!laid_out_);
  Function f;
  f.id = static_cast<FuncId>(funcs_.size());
  f.name = std::string(name);
  f.frame_bytes = frame_bytes;
  funcs_.push_back(std::move(f));
  return funcs_.back().id;
}

SymId Program::AddSymbol(std::string_view name, std::uint32_t size) {
  assert(!laid_out_);
  DataSymbol s;
  s.id = static_cast<SymId>(syms_.size());
  s.name = std::string(name);
  s.size = size;
  syms_.push_back(std::move(s));
  return syms_.back().id;
}

BlockId Program::AddBlock(FuncId func, Block block) {
  assert(!laid_out_);
  assert(func < funcs_.size());
  block.id = static_cast<BlockId>(blocks_.size());
  block.func = func;
  if (funcs_[func].blocks.empty()) {
    funcs_[func].entry = block.id;
  }
  funcs_[func].blocks.push_back(block.id);
  blocks_.push_back(std::move(block));
  return blocks_.back().id;
}

void Program::AddEdge(BlockId from, BlockId to) {
  assert(!laid_out_);
  assert(from < blocks_.size() && to < blocks_.size());
  assert(blocks_[from].func == blocks_[to].func && "edges are intra-function");
  blocks_[from].succs.push_back(to);
}

std::uint32_t Program::CallDepth(FuncId f, std::vector<int>& state) const {
  // state: -1 unvisited, -2 in progress, >=0 computed depth.
  if (state[f] == -2) {
    throw std::logic_error("recursion in kernel call graph: " + funcs_[f].name);
  }
  if (state[f] >= 0) {
    return static_cast<std::uint32_t>(state[f]);
  }
  state[f] = -2;
  std::uint32_t depth = 0;
  for (BlockId b : funcs_[f].blocks) {
    if (blocks_[b].callee != kNoFunc) {
      depth = std::max(depth, CallDepth(blocks_[b].callee, state) + 1);
    }
  }
  state[f] = static_cast<int>(depth);
  return depth;
}

void Program::Layout() {
  assert(!laid_out_);
  // Validate structure and assign text addresses.
  Addr pc = kTextBase;
  for (Function& f : funcs_) {
    if (f.blocks.empty()) {
      throw std::logic_error("function with no blocks: " + f.name);
    }
    for (BlockId bid : f.blocks) {
      Block& b = blocks_[bid];
      if (b.instr_count == 0) {
        throw std::logic_error("empty block: " + b.name);
      }
      if (b.is_return) {
        if (!b.succs.empty()) {
          throw std::logic_error("return block with successors: " + b.name);
        }
        b.branch = BranchKind::kReturn;
      } else if (b.succs.empty()) {
        throw std::logic_error("non-return block with no successors: " + b.name);
      } else if (b.succs.size() == 1) {
        if (b.branch == BranchKind::kConditional) {
          throw std::logic_error("conditional block with one successor: " + b.name);
        }
      } else if (b.succs.size() == 2) {
        b.branch = BranchKind::kConditional;
      } else {
        throw std::logic_error("block with >2 successors: " + b.name);
      }
      if (b.callee != kNoFunc && b.succs.size() != 1) {
        throw std::logic_error("call block must have exactly one successor: " + b.name);
      }
      b.address = pc;
      pc += static_cast<Addr>(b.instr_count) * kInstrBytes;
      // Keep blocks from straddling a function boundary unrealistically;
      // align each block start to 4 bytes (already true).
    }
    pc = AlignUp(pc, 32);  // function alignment, one cache line
  }
  text_bytes_ = pc - kTextBase;

  // Data symbols.
  Addr dp = kDataBase;
  for (DataSymbol& s : syms_) {
    dp = AlignUp(dp, 8);
    s.address = dp;
    dp += s.size;
  }

  // Frame addresses from call-graph depth: deeper callees get lower frames,
  // modelling the single kernel stack growing down. CallDepth computes the
  // height above leaf functions; entry-point functions (maximal height) sit
  // at the top of the stack.
  std::vector<int> state(funcs_.size(), -1);
  std::uint32_t max_frame = 0;
  std::uint32_t max_height = 0;
  for (const Function& f : funcs_) {
    max_frame = std::max(max_frame, f.frame_bytes);
    max_height = std::max(max_height, CallDepth(f.id, state));
  }
  for (Function& f : funcs_) {
    const std::uint32_t height = CallDepth(f.id, state);
    f.frame_addr =
        kStackTop - static_cast<Addr>(max_height - height + 1) * AlignUp(max_frame, 32);
  }
  laid_out_ = true;

  // Precompute per-block execution data now that all addresses are final:
  // the branch PC, the I-fetch line span (for kPreparedLineBytes-sized
  // lines) and the resolved addresses of all static accesses. The executor's
  // hot path iterates these instead of redoing the arithmetic per execution.
  for (Block& b : blocks_) {
    b.branch_pc = b.address + (static_cast<Addr>(b.instr_count) - 1) * kInstrBytes;
    const Addr first = b.address / kPreparedLineBytes;
    const Addr last =
        (b.address + static_cast<Addr>(b.instr_count) * kInstrBytes - 1) / kPreparedLineBytes;
    b.ifetch_first_line = first * kPreparedLineBytes;
    b.ifetch_line_count = static_cast<std::uint32_t>(last - first + 1);
    b.prepared_accesses.clear();
    b.prepared_accesses.reserve(b.static_accesses.size());
    for (const StaticAccess& a : b.static_accesses) {
      b.prepared_accesses.push_back({ResolveStatic(b, a), a.write});
    }
  }

  // Flatten the execution-relevant fields into the hot-block table and the
  // shared pools (see HotBlock in program.h).
  hot_blocks_.clear();
  hot_blocks_.reserve(blocks_.size());
  prepared_pool_.clear();
  regop_pool_.clear();
  std::size_t n_prepared = 0;
  std::size_t n_regops = 0;
  for (const Block& b : blocks_) {
    n_prepared += b.prepared_accesses.size();
    n_regops += b.reg_ops.size();
  }
  prepared_pool_.reserve(n_prepared);
  regop_pool_.reserve(n_regops);
  for (const Block& b : blocks_) {
    HotBlock h;
    h.branch_pc = b.branch_pc;
    h.ifetch_first_line = b.ifetch_first_line;
    h.ifetch_line_count = b.ifetch_line_count;
    h.instr_count = b.instr_count;
    h.raw_cycles = b.raw_cycles;
    h.max_dynamic_accesses = b.max_dynamic_accesses;
    h.prepared_begin = static_cast<std::uint32_t>(prepared_pool_.size());
    h.prepared_count = static_cast<std::uint32_t>(b.prepared_accesses.size());
    prepared_pool_.insert(prepared_pool_.end(), b.prepared_accesses.begin(),
                          b.prepared_accesses.end());
    h.regop_begin = static_cast<std::uint32_t>(regop_pool_.size());
    h.regop_count = static_cast<std::uint32_t>(b.reg_ops.size());
    regop_pool_.insert(regop_pool_.end(), b.reg_ops.begin(), b.reg_ops.end());
    h.callee = b.callee;
    h.callee_entry = b.callee != kNoFunc ? funcs_[b.callee].entry : kNoBlock;
    h.succ0 = b.succs.empty() ? kNoBlock : b.succs[0];
    h.succ1 = b.succs.size() == 2 ? b.succs[1] : kNoBlock;
    h.nsuccs = static_cast<std::uint8_t>(b.succs.size());
    h.branch = b.branch;
    h.is_return = b.is_return;
    h.is_preemption_point = b.is_preemption_point;
    h.has_cond_semantics = b.cond.HasSemantics();
    h.cond = b.cond;
    hot_blocks_.push_back(h);
  }

  // Flatten loop-input declarations per function for O(declared inputs)
  // SetReg validation (see LoopInputDecl in program.h).
  RebuildLoopInputs();

  compiled_ = detail::NewCompiledCache();
}

void Program::RebuildLoopInputs() const {
  func_loop_inputs_.assign(funcs_.size(), {});
  for (const Function& f : funcs_) {
    for (BlockId bid : f.blocks) {
      for (const LoopInput& in : blocks_[bid].loop_inputs) {
        func_loop_inputs_[f.id].push_back({in.reg, in.min, in.max, bid});
      }
    }
  }
  loop_inputs_stale_ = false;
}

Addr Program::ResolveStatic(const Block& b, const StaticAccess& a) const {
  assert(laid_out_);
  if (a.region == StaticAccess::Region::kStack) {
    return funcs_[b.func].frame_addr + a.offset;
  }
  assert(a.symbol < syms_.size());
  assert(a.offset < syms_[a.symbol].size);
  return syms_[a.symbol].address + a.offset;
}

std::vector<Addr> Program::BlockLineAddrs(BlockId id, std::uint32_t line_bytes) const {
  assert(laid_out_);
  const Block& b = blocks_[id];
  std::vector<Addr> out;
  const Addr first = b.address / line_bytes;
  const Addr last = (b.address + static_cast<Addr>(b.instr_count) * kInstrBytes - 1) / line_bytes;
  for (Addr l = first; l <= last; ++l) {
    out.push_back(l * line_bytes);
  }
  return out;
}

FuncId Program::FindFunction(std::string_view name) const {
  for (const Function& f : funcs_) {
    if (f.name == name) {
      return f.id;
    }
  }
  return kNoFunc;
}

}  // namespace pmk
