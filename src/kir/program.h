// Kernel IR: the program ("kernel binary image").
//
// Owns all functions, blocks and data symbols; assigns text and data
// addresses at Layout() time the way a linker would. The compiled seL4 binary
// of the paper is 36 KiB of text; our image lands in the same ballpark so the
// I-cache behaviour (16 KiB L1, 128 KiB L2) is comparable.

#ifndef SRC_KIR_PROGRAM_H_
#define SRC_KIR_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/kir/block.h"

namespace pmk {

class CompiledProgram;
struct MachineConfig;

namespace detail {
struct CompiledCache;
std::shared_ptr<CompiledCache> NewCompiledCache();
}  // namespace detail

// Compact per-block execution descriptor, one flat array entry per Block,
// built by Program::Layout(). The executor's inner loop reads only this
// (plus the shared prepared-access / reg-op pools), so advancing a block
// touches one or two contiguous cache lines instead of chasing the vectors
// inside the full Block. Snapshotted at Layout() time: structural block
// fields must not change afterwards (Block documents the same contract).
struct HotBlock {
  Addr branch_pc = 0;
  Addr ifetch_first_line = 0;
  std::uint32_t ifetch_line_count = 0;
  std::uint32_t instr_count = 0;
  std::uint32_t raw_cycles = 0;
  std::uint32_t max_dynamic_accesses = 0;
  std::uint32_t prepared_begin = 0;  // into Program::prepared_pool()
  std::uint32_t prepared_count = 0;
  std::uint32_t regop_begin = 0;  // into Program::regop_pool()
  std::uint32_t regop_count = 0;
  FuncId callee = kNoFunc;
  BlockId callee_entry = kNoBlock;  // funcs_[callee].entry, prefetched
  BlockId succ0 = kNoBlock;         // fall-through / not-taken edge
  BlockId succ1 = kNoBlock;         // taken edge (two-successor blocks)
  std::uint8_t nsuccs = 0;
  BranchKind branch = BranchKind::kNone;
  bool is_return = false;
  bool is_preemption_point = false;
  bool has_cond_semantics = false;
  BranchCond cond;
};

// One loop-input declaration of a function, flattened by Program::Layout()
// into the per-function table Executor::SetReg validates against — O(declared
// inputs) per injection instead of a walk over every block of the function.
// |block| is the declaring loop-header block, kept for the error message.
struct LoopInputDecl {
  std::uint8_t reg = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  BlockId block = kNoBlock;
};

class Program {
 public:
  // Text / data / stack layout constants (physical addresses on the modelled
  // 128 MiB board; kernel lives at the top like seL4's kernel window).
  static constexpr Addr kTextBase = 0x0010'0000;
  static constexpr Addr kDataBase = 0x0020'0000;
  static constexpr Addr kStackTop = 0x0030'0000;  // grows down

  // Cache-line size assumed by the per-block precomputed I-fetch spans
  // (Block::ifetch_first_line / ifetch_line_count). Matches the 32-byte lines
  // of the modelled ARM1136/i.MX31 caches; the executor falls back to its
  // generic (bit-identical) charge path if a machine is configured with a
  // different L1I line size.
  static constexpr std::uint32_t kPreparedLineBytes = 32;

  FuncId AddFunction(std::string_view name, std::uint32_t frame_bytes = 32);
  SymId AddSymbol(std::string_view name, std::uint32_t size);

  // Adds a block to |func|; the first block added becomes the entry.
  BlockId AddBlock(FuncId func, Block block);

  // Adds the intra-function edge from -> to. Edge order defines the
  // fall-through (first) vs. taken (second) convention.
  void AddEdge(BlockId from, BlockId to);

  // Assigns addresses to blocks (sequential within each function, functions
  // laid out in id order), to data symbols, and per-function frame addresses
  // from call-graph depth. Must be called once after construction; validates
  // structural well-formedness (entry exists, successors consistent with
  // branch kinds, no recursion).
  void Layout();
  bool laid_out() const { return laid_out_; }

  const Block& block(BlockId id) const { return blocks_[id]; }
  Block& mutable_block(BlockId id) {
    // Post-layout mutation (a single-threaded test/bench affordance) may add
    // or change loop-input declarations; mark the flattened table for a lazy
    // rebuild so loop_inputs_of() stays in sync with the Block structs.
    if (laid_out_) {
      loop_inputs_stale_ = true;
    }
    return blocks_[id];
  }

  // Hot-path views (valid after Layout()).
  const HotBlock& hot(BlockId id) const { return hot_blocks_[id]; }
  const PreparedAccess* prepared_pool() const { return prepared_pool_.data(); }
  const RegOp* regop_pool() const { return regop_pool_.data(); }
  // All loop-input declarations of |f|, in block order (valid after Layout()).
  const std::vector<LoopInputDecl>& loop_inputs_of(FuncId f) const {
    if (loop_inputs_stale_) {
      RebuildLoopInputs();
    }
    return func_loop_inputs_[f];
  }
  const Function& function(FuncId id) const { return funcs_[id]; }
  const DataSymbol& symbol(SymId id) const { return syms_[id]; }

  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t num_functions() const { return funcs_.size(); }
  std::size_t num_symbols() const { return syms_.size(); }

  // Total text size in bytes (valid after Layout()).
  std::uint64_t text_bytes() const { return text_bytes_; }

  // Returns the compiled-backend specialisation for |mc|'s machine geometry
  // (src/kir/compiled.h), lowering the program on first use and caching one
  // CompiledProgram per distinct geometry for the image's lifetime.
  // Thread-safe: Programs are shared across cloned Systems and campaign
  // worker threads; lookups are lock-free, builders serialise on a mutex.
  const CompiledProgram* CompiledFor(const MachineConfig& mc) const;

  // Resolves a static access to its absolute address.
  Addr ResolveStatic(const Block& b, const StaticAccess& a) const;

  // Line addresses of a block's instruction footprint (for cache pinning).
  std::vector<Addr> BlockLineAddrs(BlockId id, std::uint32_t line_bytes) const;

  FuncId FindFunction(std::string_view name) const;

 private:
  std::uint32_t CallDepth(FuncId f, std::vector<int>& state) const;
  // Reflattens func_loop_inputs_ from the Block structs (Layout(), and the
  // lazy refresh after a post-layout mutable_block()). Mutation after layout
  // is single-threaded by contract, so the lazy rebuild never races the
  // shared-Program campaign readers — they only ever see a clean flag.
  void RebuildLoopInputs() const;

  std::vector<Function> funcs_;
  std::vector<Block> blocks_;
  std::vector<DataSymbol> syms_;
  std::vector<HotBlock> hot_blocks_;
  std::vector<PreparedAccess> prepared_pool_;
  std::vector<RegOp> regop_pool_;
  // Flattened loop-input declarations, indexed by FuncId; rebuilt lazily when
  // a post-layout mutable_block() may have changed the declarations.
  mutable std::vector<std::vector<LoopInputDecl>> func_loop_inputs_;
  mutable bool loop_inputs_stale_ = false;
  std::uint64_t text_bytes_ = 0;
  bool laid_out_ = false;
  // Compiled-backend specialisations, created (empty) at Layout() time so the
  // pointer itself is immutable once the Program is shared across threads;
  // entries are added lazily by CompiledFor (defined in compiled.cc).
  mutable std::shared_ptr<detail::CompiledCache> compiled_;
};

}  // namespace pmk

#endif  // SRC_KIR_PROGRAM_H_
