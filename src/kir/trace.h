// Execution traces of kernel IR paths.
//
// A trace is the dynamic block sequence of one kernel entry (exception vector
// to kernel exit). Traces are used to (a) validate dynamic execution against
// the declared CFG, (b) replay paths under the conservative analysis cost
// model for the computed-vs-observed comparison (paper Sections 5.4, 6.2).

#ifndef SRC_KIR_TRACE_H_
#define SRC_KIR_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/hw/cycles.h"
#include "src/kir/block.h"

namespace pmk {

struct Trace {
  std::vector<BlockId> blocks;
  Cycles start_cycle = 0;
  Cycles end_cycle = 0;

  Cycles Duration() const { return end_cycle - start_cycle; }
  void Clear() {
    blocks.clear();
    start_cycle = end_cycle = 0;
  }
};

}  // namespace pmk

#endif  // SRC_KIR_TRACE_H_
