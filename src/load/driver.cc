#include "src/load/driver.h"

namespace pmk::load {

UserStep::Generator TwoPhaseDriver::Program() {
  return [this](System& sys) { return Next(sys); };
}

std::optional<UserStep> TwoPhaseDriver::Next(System& sys) {
  for (;;) {
    switch (state_) {
      case State::kAck: {
        // Phase 1, first action after every wake (and between batches):
        // re-enable the line so the device can interrupt again.
        state_ = State::kIsrTail;
        acks_issued_++;
        SyscallArgs ack;
        ack.label = InvLabel::kIrqAck;
        return UserStep::Syscall(SysOp::kCall, cfg_.ack_cptr, ack);
      }
      case State::kIsrTail:
        // The rest of the minimal ISR: note work pending, hand off to the
        // deferred loop. Kept tiny — everything heavy belongs to phase 2.
        state_ = State::kDrain;
        batch_left_ = cfg_.batch_budget;
        return UserStep::Compute(cfg_.isr_cost);
      case State::kDrain: {
        if (ring_->Empty()) {
          state_ = State::kRecv;
          continue;
        }
        if (batch_left_ == 0) {
          // Batch exhausted with frames left: re-ack before the next batch
          // so a frame asserted while we processed is re-delivered promptly.
          state_ = State::kAck;
          continue;
        }
        const FrameDesc d = *ring_->Pop();
        batch_left_--;
        frames_processed_++;
        const Cycles now = sys.machine().Now();
        frame_delay_.Record(now >= d.enqueued ? now - d.enqueued : 0);
        return UserStep::Compute(cfg_.per_frame_cost + (d.len >> cfg_.len_cost_shift));
      }
      case State::kRecv:
        // Ring empty and line unmasked: safe to block. A notification that
        // raced this decision is already pending on the endpoint, so Recv
        // returns immediately instead of blocking.
        state_ = State::kAck;
        return UserStep::Syscall(SysOp::kRecv, cfg_.recv_cptr);
    }
  }
}

}  // namespace pmk::load
