// Two-phase NIC driver: minimal ISR at IRQ delivery, heavy per-frame work
// deferred to a driver-loop thread.
//
// The picokernel irq_ring idiom, on top of the modelled kernel's IRQ
// machinery: the kernel masks the NIC line at delivery and notifies the
// handler endpoint; the driver thread — typically the highest-priority
// thread in the system — wakes from Recv and runs a strict state machine:
//
//   Recv returns -> ACK (IrqAck: unmask, so new frames interrupt again)
//               -> ISR tail (tiny compute: "mark work pending")
//               -> drain up to batch_budget frames (per-frame deferred cost)
//               -> ring still non-empty? re-ACK and drain another batch
//               -> ring empty? block in Recv
//
// The ordering is load-bearing twice over. Acking FIRST after every wake
// bounds the masked window (assert -> kernel mask -> driver ack) to the
// scheduling latency of the highest-priority thread plus one small syscall —
// that keeps observed interrupt response under the analyzed bound even at
// saturation. And the drain loop re-checks the ring before ever blocking, so
// the driver blocks in Recv only when the ring is empty AND the line is
// unmasked — a frame arriving in any interleaving either finds the line
// enabled (fresh interrupt) or a pending notification (Recv returns
// immediately): no lost wakeup, no starvation.
//
// The driver runs as a Runner kDynamic step: each scheduling turn consults
// Next() for the following concrete action, so the script adapts to live
// ring state while staying deterministic (no RNG, no wall clock).

#ifndef SRC_LOAD_DRIVER_H_
#define SRC_LOAD_DRIVER_H_

#include <cstdint>

#include "src/load/ring.h"
#include "src/obs/histogram.h"
#include "src/sim/runner.h"

namespace pmk::load {

class TwoPhaseDriver {
 public:
  struct Config {
    std::uint32_t ack_cptr = 0;      // IrqHandler cap (driver's cspace)
    std::uint32_t recv_cptr = 0;     // notification endpoint cap
    Cycles isr_cost = 120;           // phase 1: ack bookkeeping ("mark pending")
    Cycles per_frame_cost = 800;     // phase 2: deferred per-frame processing
    std::uint32_t len_cost_shift = 4;  // plus len >> shift cycles per frame
    std::uint32_t batch_budget = 4;  // frames drained between re-acks
  };

  TwoPhaseDriver(DeviceRing* ring, const Config& cfg) : ring_(ring), cfg_(cfg) {
    if (cfg_.batch_budget == 0) {
      cfg_.batch_budget = 1;
    }
  }

  // The driver program; install with UserStep::Dynamic(driver.Program()).
  // The TwoPhaseDriver must outlive the Runner run.
  UserStep::Generator Program();

  // Deferred-path queueing delay: frame arrival to the cycle the driver-loop
  // popped it. This is NOT the enforced interrupt-response latency (the
  // kernel measures that at ack time); it is the end-to-end device story.
  const LatencyHistogram& frame_delay() const { return frame_delay_; }
  std::uint64_t frames_processed() const { return frames_processed_; }
  std::uint64_t acks_issued() const { return acks_issued_; }

 private:
  enum class State : std::uint8_t { kAck, kIsrTail, kDrain, kRecv };

  std::optional<UserStep> Next(System& sys);

  DeviceRing* ring_;
  Config cfg_;
  State state_ = State::kDrain;  // boot: ring empty -> falls through to Recv
  std::uint32_t batch_left_ = 0;
  LatencyHistogram frame_delay_;
  std::uint64_t frames_processed_ = 0;
  std::uint64_t acks_issued_ = 0;
};

}  // namespace pmk::load

#endif  // SRC_LOAD_DRIVER_H_
