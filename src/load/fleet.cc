#include "src/load/fleet.h"

#include <stdexcept>

namespace pmk::load {

const char* ArrivalShapeName(ArrivalShape s) {
  switch (s) {
    case ArrivalShape::kOpenLoop:
      return "open";
    case ArrivalShape::kClosedLoop:
      return "closed";
    case ArrivalShape::kBurstyStorm:
      return "storm";
  }
  return "?";
}

namespace {

// Smallest radix whose slot count covers |clients| (min 1 bit).
std::uint8_t FleetRadixBits(std::uint32_t clients) {
  std::uint8_t bits = 1;
  while ((1u << bits) < clients && bits < 31) {
    bits++;
  }
  return bits;
}

}  // namespace

Fleet BuildClientFleet(System& sys, const FleetSpec& spec) {
  if (spec.clients == 0 || spec.servers == 0) {
    throw std::invalid_argument("BuildClientFleet: clients and servers must be nonzero");
  }
  Kernel& k = sys.kernel();
  Fleet fleet;
  fleet.clients.reserve(spec.clients);
  fleet.client_cptrs.reserve(spec.clients);

  // Endpoints and server threads first: their addresses precede the fleet's,
  // matching the historical badge_server boot order.
  for (std::uint32_t s = 0; s < spec.servers; ++s) {
    EndpointObj* ep = nullptr;
    fleet.ep_cptrs.push_back(sys.AddEndpoint(&ep));
    fleet.endpoints.push_back(ep);
    fleet.endpoint_addrs.push_back(ep->base);
  }
  for (std::uint32_t s = 0; s < spec.servers; ++s) {
    TcbObj* t = sys.AddThread(spec.server_prio);
    fleet.servers.push_back(t);
    fleet.server_addrs.push_back(t->base);
  }

  if (spec.mint_via_kernel) {
    // badge_server path: the first server mints each badge through a charged
    // kCNodeMint on the root CNode. Clients share the root cspace.
    Cap root_cap;
    root_cap.type = ObjType::kCNode;
    root_cap.obj = sys.root()->base;
    fleet.root_cptr = sys.AddCap(root_cap);
    k.DirectSetCurrent(fleet.servers[0]);
    for (std::uint32_t i = 0; i < spec.clients; ++i) {
      SyscallArgs mint;
      mint.label = InvLabel::kCNodeMint;
      mint.arg0 = fleet.ep_cptrs[i % spec.servers];
      mint.dest_index = spec.first_mint_slot + i;
      mint.badge = spec.badge_base + i;
      k.Syscall(SysOp::kCall, fleet.root_cptr, mint);
      fleet.client_cptrs.push_back(spec.first_mint_slot + i);
      if (spec.on_mint) {
        spec.on_mint(spec.badge_base + i, i, spec.first_mint_slot + i);
      }
    }
    for (std::uint32_t i = 0; i < spec.clients; ++i) {
      TcbObj* t = sys.AddThread(spec.client_prio);
      if (spec.resume_threads) {
        k.DirectResume(t);
      }
      fleet.clients.push_back(t);
      fleet.client_addrs.push_back(t->base);
    }
    if (spec.resume_threads) {
      for (TcbObj* s : fleet.servers) {
        k.DirectResume(s);
      }
    }
    return fleet;
  }

  // Direct path: a dedicated one-level fleet CNode (guard + radix == 32, so
  // a cptr is a plain slot index and the IPC fastpath stays eligible) shared
  // as every client's cspace root. Scales to thousands of clients without
  // touching the 256-slot root CNode.
  const std::uint8_t radix = FleetRadixBits(spec.clients);
  CNodeObj* cn = k.DirectCNode(radix, static_cast<std::uint8_t>(32 - radix), 0);
  fleet.fleet_cnode = cn;
  fleet.fleet_cnode_addr = cn->base;
  for (std::uint32_t i = 0; i < spec.clients; ++i) {
    TcbObj* t = k.DirectTcb(spec.client_prio, cn);
    if (spec.resume_threads) {
      k.DirectResume(t);
    }
    fleet.clients.push_back(t);
    fleet.client_addrs.push_back(t->base);
  }
  for (std::uint32_t i = 0; i < spec.clients; ++i) {
    Cap cap;
    cap.type = ObjType::kEndpoint;
    cap.obj = fleet.endpoints[i % spec.servers]->base;
    cap.badge = spec.badge_base + i;
    k.DirectCap(cn, i, cap);
    fleet.client_cptrs.push_back(i);
    if (spec.on_mint) {
      spec.on_mint(spec.badge_base + i, i, i);
    }
  }
  if (spec.resume_threads) {
    for (TcbObj* s : fleet.servers) {
      k.DirectResume(s);
    }
  }
  return fleet;
}

Fleet ResolveFleet(System& sys, const Fleet& fleet) {
  ObjectTable& objs = sys.kernel().objects();
  Fleet out = fleet;  // copies cptrs, addresses, partition shape
  for (std::size_t i = 0; i < fleet.client_addrs.size(); ++i) {
    out.clients[i] = objs.Get<TcbObj>(fleet.client_addrs[i]);
    if (out.clients[i] == nullptr) {
      throw std::logic_error("ResolveFleet: client TCB missing in clone");
    }
  }
  for (std::size_t i = 0; i < fleet.server_addrs.size(); ++i) {
    out.servers[i] = objs.Get<TcbObj>(fleet.server_addrs[i]);
    if (out.servers[i] == nullptr) {
      throw std::logic_error("ResolveFleet: server TCB missing in clone");
    }
  }
  for (std::size_t i = 0; i < fleet.endpoint_addrs.size(); ++i) {
    out.endpoints[i] = objs.Get<EndpointObj>(fleet.endpoint_addrs[i]);
    if (out.endpoints[i] == nullptr) {
      throw std::logic_error("ResolveFleet: endpoint missing in clone");
    }
  }
  out.fleet_cnode = fleet.fleet_cnode_addr == 0
                        ? nullptr
                        : objs.Get<CNodeObj>(fleet.fleet_cnode_addr);
  return out;
}

}  // namespace pmk::load
