// Client-fleet generator: thousands of badged IPC clients against a bank of
// endpoint server threads.
//
// Section 3.4's badged-endpoint sessions, at saturation scale. Each client
// gets one badged capability to one of the server endpoints (clients are
// partitioned round-robin over servers so no endpoint queue outgrows the
// analysis bound of 256 queued senders), and every badge is unique —
// badge_base + client index — so a server can authenticate each request.
//
// Two boot paths share this builder:
//
//   - the DIRECT path (default) installs caps in a dedicated one-level fleet
//     CNode (radix sized to the client count, zero guard) via the uncharged
//     Direct API — thousands of clients boot in microseconds, and the fleet
//     CNode's guard+radix == 32 shape keeps the IPC fastpath eligible;
//   - the KERNEL-MINT path issues charged kCNodeMint syscalls from the first
//     server into root-CNode slots, exactly what examples/badge_server did by
//     hand — that example now runs on this builder, so there is one badged-
//     client boot path in the tree.
//
// A Fleet records the base address of every object it created, and
// ResolveFleet() re-binds those addresses to live pointers inside a forked
// System clone — the ScenarioCheckpoint pattern: boot one fleet, checkpoint,
// fork per load point.

#ifndef SRC_LOAD_FLEET_H_
#define SRC_LOAD_FLEET_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/workload.h"

namespace pmk::load {

// How a client paces its requests (used by the traffic harness; the fleet
// builder itself is shape-agnostic).
enum class ArrivalShape : std::uint8_t {
  kOpenLoop,     // jittered think time, independent of service completions
  kClosedLoop,   // fixed short think: next request as soon as replied
  kBurstyStorm,  // long synchronized silences, then back-to-back bursts
};
const char* ArrivalShapeName(ArrivalShape s);

struct FleetSpec {
  std::uint32_t clients = 1000;
  std::uint32_t servers = 8;  // one endpoint per server thread
  std::uint8_t client_prio = 50;
  std::uint8_t server_prio = 100;
  std::uint64_t badge_base = 100;  // client i gets badge badge_base + i

  // Kernel-mint mode: charged kCNodeMint syscalls into root slots
  // first_mint_slot.. (the badge_server path; requires the root CNode to fit
  // the fleet). Default: uncharged direct installs into a fleet CNode.
  bool mint_via_kernel = false;
  std::uint32_t first_mint_slot = 30;

  // In direct mode, newly created threads are resumed (runnable) so a Runner
  // can schedule the fleet immediately. Kernel-mint mode never resumes —
  // badge_server drives scheduling by hand via DirectSetCurrent.
  bool resume_threads = true;

  // Invoked after each badge is installed: (badge, client index, cptr).
  std::function<void(std::uint64_t, std::uint32_t, std::uint32_t)> on_mint;
};

struct Fleet {
  std::vector<TcbObj*> clients;
  std::vector<TcbObj*> servers;
  std::vector<EndpointObj*> endpoints;      // one per server
  std::vector<std::uint32_t> ep_cptrs;      // root cptr per endpoint
  std::vector<std::uint32_t> client_cptrs;  // badged ep cap, in client i's cspace
  std::uint32_t root_cptr = 0;              // kernel-mint mode: root CNode self-cap
  CNodeObj* fleet_cnode = nullptr;          // direct mode only

  // Base addresses of the same objects, for re-resolution after a fork.
  std::vector<Addr> client_addrs;
  std::vector<Addr> server_addrs;
  std::vector<Addr> endpoint_addrs;
  Addr fleet_cnode_addr = 0;

  // Server endpoint serving client i (round-robin partition).
  std::uint32_t ServerOf(std::uint32_t client) const {
    return client % static_cast<std::uint32_t>(servers.size());
  }
};

// Boots the fleet onto |sys| (objects, caps, badges; threads resumed per
// spec). Deterministic: the same spec against the same System produces the
// same object addresses and charged-cycle sequence.
Fleet BuildClientFleet(System& sys, const FleetSpec& spec);

// Re-binds |fleet|'s recorded base addresses to the live objects inside
// |sys| — a clone of the System the fleet was built on. cptrs carry over
// unchanged (cspace structure is part of the clone).
Fleet ResolveFleet(System& sys, const Fleet& fleet);

}  // namespace pmk::load

#endif  // SRC_LOAD_FLEET_H_
