// Modelled NIC/DMA descriptor ring: the device half of the two-phase driver.
//
// A single-producer/single-consumer ring of frame descriptors, shaped like a
// real NIC RX ring (picokernel's irq_ring idiom): the device (FrameSource)
// pushes descriptors at its offered rate, the driver-loop thread pops and
// processes them after a minimal ISR acked the interrupt. Indices are
// monotonic 64-bit head/tail counters over a power-of-two slot array — the
// lock-free SPSC layout — so Size() is one subtraction and wraparound never
// needs a modulo branch. In the deterministic simulation both sides run on
// the modelled core, so the "lock-free" property we actually rely on is the
// layout's value semantics: the ring is a plain copyable value, which is what
// makes checkpoint forks of a mid-burst scenario replay identically
// (tests/load_ring_test.cc).
//
// Overrun policy is drop-newest, as hardware does when the host stalls: a
// Push onto a full ring discards the frame and bumps dropped() — goodput vs
// offered load is exactly this counter's story under saturation.

#ifndef SRC_LOAD_RING_H_
#define SRC_LOAD_RING_H_

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/hw/cycles.h"

namespace pmk::load {

// One RX descriptor: which frame, when the device delivered it, how big.
struct FrameDesc {
  std::uint64_t seq = 0;   // device-global frame sequence number
  Cycles enqueued = 0;     // modelled cycle the device posted the descriptor
  std::uint32_t len = 0;   // payload bytes (drives deferred per-frame cost)
};

class DeviceRing {
 public:
  // |capacity| is rounded up to a power of two (min 2) so slot selection is
  // a mask, matching real descriptor rings.
  explicit DeviceRing(std::uint32_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("DeviceRing: capacity must be nonzero");
    }
    std::uint32_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
  }

  // Producer side. Returns false (and counts the drop) when the ring is full.
  bool Push(const FrameDesc& d) {
    produced_++;
    if (Full()) {
      dropped_++;
      return false;
    }
    slots_[static_cast<std::size_t>(head_ & Mask())] = d;
    head_++;
    return true;
  }

  // Consumer side. FIFO: descriptors pop in push order.
  std::optional<FrameDesc> Pop() {
    if (Empty()) {
      return std::nullopt;
    }
    FrameDesc d = slots_[static_cast<std::size_t>(tail_ & Mask())];
    tail_++;
    consumed_++;
    return d;
  }

  bool Empty() const { return head_ == tail_; }
  bool Full() const { return head_ - tail_ == slots_.size(); }
  std::uint32_t Size() const { return static_cast<std::uint32_t>(head_ - tail_); }
  std::uint32_t capacity() const { return static_cast<std::uint32_t>(slots_.size()); }

  // Monotonic accounting. produced() counts every Push attempt, so
  // produced() == dropped() + (frames accepted); consumed() counts Pops.
  std::uint64_t produced() const { return produced_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t consumed() const { return consumed_; }

 private:
  std::uint64_t Mask() const { return slots_.size() - 1; }

  std::vector<FrameDesc> slots_;
  std::uint64_t head_ = 0;  // monotonic producer index
  std::uint64_t tail_ = 0;  // monotonic consumer index
  std::uint64_t produced_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace pmk::load

#endif  // SRC_LOAD_RING_H_
