// Device-side frame source: the modelled NIC's DMA engine.
//
// Runs on the Runner's disturbance seam — Tick(now) is called at the top of
// every scheduling iteration, i.e. at every point where hardware could act
// while userland runs — and posts every frame whose scheduled arrival cycle
// has passed: descriptor pushed onto the ring, interrupt line asserted with
// the ARRIVAL cycle (not the tick cycle), so measured response latency
// includes the model-granularity delay between device action and the next
// point the core could notice, exactly as on hardware.
//
// Arrival processes are integer-only SplitMix64 draws (no libm, no floats)
// so a given (seed, config) produces the same frame schedule on every host —
// the byte-identity contract of the traffic harness rests on this.
//
//   - steady (burst == 1): jittered open-loop arrivals around mean_gap, with
//     an occasional 4x long-tail gap (1 in 16) so queues drain and refill;
//   - storm (burst > 1): back-to-back bursts of |burst| frames, separated by
//     burst_silence plus jitter — the adversarial shape whose latencies
//     include device-side masking windows.
//
// Value type: copyable alongside the ring, so a forked checkpoint replays
// the identical remaining schedule (the fork-safety test relies on it).

#ifndef SRC_LOAD_SOURCE_H_
#define SRC_LOAD_SOURCE_H_

#include <cstdint>

#include "src/hw/irq.h"
#include "src/load/ring.h"
#include "src/sim/rng.h"

namespace pmk::load {

class FrameSource {
 public:
  struct Config {
    std::uint32_t line = 1;        // NIC interrupt line (0 is the timer)
    Cycles mean_gap = 4096;        // mean inter-arrival gap (cycles)
    std::uint32_t burst = 1;       // frames per arrival event (>1 = storm)
    Cycles burst_silence = 0;      // storm: extra silence between bursts
    std::uint32_t len_min = 64;    // frame length range (bytes)
    std::uint32_t len_max = 1500;
  };

  FrameSource(const Config& cfg, SplitMix64 rng) : cfg_(cfg), rng_(rng) {
    if (cfg_.mean_gap == 0) {
      cfg_.mean_gap = 1;
    }
    if (cfg_.burst == 0) {
      cfg_.burst = 1;
    }
    next_arrival_ = cfg_.mean_gap;  // first frame one mean gap into the run
  }

  // Posts every frame due at or before |now|: descriptor onto |ring|
  // (drop-newest when full), line asserted on |ic| at the arrival cycle.
  // The line is asserted even for dropped frames — hardware raises RX-overrun
  // interrupts too, and the driver must cope.
  void Tick(Cycles now, DeviceRing& ring, InterruptController& ic) {
    while (next_arrival_ <= now) {
      FrameDesc d;
      d.seq = seq_++;
      d.enqueued = next_arrival_;
      d.len = cfg_.len_min +
              static_cast<std::uint32_t>(rng_.Below(cfg_.len_max - cfg_.len_min + 1));
      ring.Push(d);
      ic.Assert(cfg_.line, next_arrival_);
      offered_++;
      next_arrival_ += NextGap();
    }
  }

  std::uint64_t offered() const { return offered_; }
  Cycles next_arrival() const { return next_arrival_; }

 private:
  Cycles NextGap() {
    if (cfg_.burst > 1) {
      // Storm: |burst| frames back-to-back, then silence.
      if (++in_burst_ < cfg_.burst) {
        return 1;
      }
      in_burst_ = 0;
      return cfg_.burst_silence + cfg_.mean_gap / 2 + rng_.Below(cfg_.mean_gap);
    }
    // Steady: jitter around the mean, occasional 4x long-tail gap.
    Cycles gap = cfg_.mean_gap / 2 + rng_.Below(cfg_.mean_gap);
    if (rng_.Below(16) == 0) {
      gap *= 4;
    }
    return gap;
  }

  Config cfg_;
  SplitMix64 rng_;
  Cycles next_arrival_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t offered_ = 0;
  std::uint32_t in_burst_ = 0;
};

}  // namespace pmk::load

#endif  // SRC_LOAD_SOURCE_H_
