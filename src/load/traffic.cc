#include "src/load/traffic.h"

#include <cstdio>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "src/engine/checkpoint.h"
#include "src/engine/job_pool.h"
#include "src/engine/serialize.h"
#include "src/engine/shard.h"
#include "src/engine/wire.h"
#include "src/load/source.h"
#include "src/obs/metrics.h"
#include "src/sim/latency.h"
#include "src/sim/rng.h"

namespace pmk::load {

namespace {

// One point in the scenario grid (shape-major, load-minor ordinal order).
struct ScenarioSpec {
  ArrivalShape shape = ArrivalShape::kOpenLoop;
  std::uint32_t load_point = 0;
  Cycles frame_gap = 0;
};

std::vector<ScenarioSpec> BuildGrid(const TrafficOptions& opts) {
  std::vector<ScenarioSpec> grid;
  grid.reserve(opts.shapes.size() * opts.load_gaps.size());
  for (const ArrivalShape shape : opts.shapes) {
    for (std::uint32_t li = 0; li < opts.load_gaps.size(); ++li) {
      grid.push_back({shape, li, opts.load_gaps[li]});
    }
  }
  return grid;
}

// Kernel-side world shared by every scenario: fleet + driver thread + NIC
// binding, built once and checkpointed. Only addresses/cptrs cross the fork.
struct BootInfo {
  Fleet fleet;
  Addr driver_addr = 0;
  std::uint32_t ack_cptr = 0;
  std::uint32_t recv_cptr = 0;
};

BootInfo BootTrafficWorld(System& sys, const TrafficOptions& opts) {
  BootInfo boot;
  FleetSpec fs;
  fs.clients = opts.clients;
  fs.servers = opts.servers;
  fs.client_prio = opts.client_prio;
  fs.server_prio = opts.server_prio;
  boot.fleet = BuildClientFleet(sys, fs);

  Kernel& k = sys.kernel();
  EndpointObj* irq_ep = nullptr;
  boot.recv_cptr = sys.AddEndpoint(&irq_ep);
  TcbObj* driver = sys.AddThread(opts.driver_prio);
  k.DirectResume(driver);
  boot.driver_addr = driver->base;
  IrqHandlerObj* handler = k.DirectIrqHandler(opts.nic_line);
  Cap hcap;
  hcap.type = ObjType::kIrqHandler;
  hcap.obj = handler->base;
  boot.ack_cptr = sys.AddCap(hcap);
  k.DirectBindIrq(opts.nic_line, irq_ep);
  k.DirectSetCurrent(driver);
  return boot;
}

// Per-run aggregate the client generators write into.
struct ClientStats {
  std::uint64_t calls = 0;
};

// Builds client i's arrival-process generator. All state lives in the
// closure; every draw comes from the per-(scenario, client) child stream, so
// the program is a pure function of (seed, ordinal, i).
UserStep::Generator ClientProgram(std::uint32_t cptr, ArrivalShape shape, Cycles gap,
                                  Cycles closed_think, SplitMix64 rng, ClientStats* stats) {
  struct State {
    SplitMix64 rng;
    bool next_is_call = false;
    std::uint32_t burst_pos = 0;
    explicit State(SplitMix64 r) : rng(r) {}
  };
  auto st = std::make_shared<State>(rng);
  return [cptr, shape, gap, closed_think, st, stats](System&) -> std::optional<UserStep> {
    if (!st->next_is_call) {
      st->next_is_call = true;
      Cycles think = closed_think;
      switch (shape) {
        case ArrivalShape::kClosedLoop:
          break;  // fixed short think: re-request as soon as replied
        case ArrivalShape::kOpenLoop:
          think = gap / 2 + st->rng.Below(gap);
          break;
        case ArrivalShape::kBurstyStorm:
          // Eight back-to-back requests, then a long synchronized silence.
          st->burst_pos = (st->burst_pos + 1) % 8;
          think = st->burst_pos != 0 ? 50 : gap * 16;
          break;
      }
      return UserStep::Compute(think);
    }
    st->next_is_call = false;
    stats->calls++;
    SyscallArgs call;
    call.msg_len = 2;
    return UserStep::Syscall(SysOp::kCall, cptr, call);
  };
}

TrafficResult RunScenario(const engine::SystemCheckpoint& cp, const BootInfo& boot,
                          const TrafficOptions& opts, const ScenarioSpec& scen,
                          std::size_t ordinal) {
  std::unique_ptr<System> sys = cp.Fork();
  const Fleet fleet = ResolveFleet(*sys, boot.fleet);
  TcbObj* driver_tcb = sys->kernel().objects().Get<TcbObj>(boot.driver_addr);
  if (driver_tcb == nullptr) {
    throw std::logic_error("traffic: driver TCB missing in forked clone");
  }

  // Device side: ring + frame source on the disturbance seam. A storm
  // scenario fires 32-frame back-to-back bursts; steady shapes use the
  // jittered open-loop schedule. All draws come from Split(ordinal).
  const SplitMix64 base = SplitMix64(opts.seed).Split(ordinal);
  DeviceRing ring(opts.ring_capacity);
  FrameSource::Config sc;
  sc.line = opts.nic_line;
  sc.mean_gap = scen.frame_gap;
  if (scen.shape == ArrivalShape::kBurstyStorm) {
    sc.burst = 32;
    sc.burst_silence = scen.frame_gap * 8;
  }
  FrameSource source(sc, base.Split(0));

  TwoPhaseDriver::Config dc = opts.driver;
  dc.ack_cptr = boot.ack_cptr;
  dc.recv_cptr = boot.recv_cptr;
  TwoPhaseDriver driver(&ring, dc);

  Runner runner(sys.get());
  runner.SetComputeSliceCycles(opts.compute_slice);
  runner.SetDisturbance([&](Cycles now) { source.Tick(now, ring, sys->machine().irq()); });
  runner.SetProgram(driver_tcb, {UserStep::Dynamic(driver.Program())});
  for (std::size_t s = 0; s < fleet.servers.size(); ++s) {
    runner.SetProgram(fleet.servers[s],
                      {UserStep::Syscall(SysOp::kReplyRecv, fleet.ep_cptrs[s])});
  }
  ClientStats stats;
  for (std::uint32_t i = 0; i < fleet.clients.size(); ++i) {
    runner.SetProgram(fleet.clients[i],
                      {UserStep::Dynamic(ClientProgram(
                          fleet.client_cptrs[i], scen.shape, scen.frame_gap,
                          opts.client_think, base.Split(i + 1), &stats))});
  }

  // Each completed server ReplyRecv after a server's first one delivered a
  // reply to a waiting client — the goodput measure. Counting server-side is
  // exact even when the replied client is never rescheduled before the run
  // ends (at 1000+ runnable clients, most aren't).
  std::map<const TcbObj*, std::uint64_t> server_steps;
  for (TcbObj* s : fleet.servers) {
    server_steps[s] = 0;
  }
  runner.SetStepHook([&server_steps](TcbObj* t, std::size_t) {
    auto it = server_steps.find(t);
    if (it != server_steps.end()) {
      it->second++;
    }
  });

  sys->machine().timer().set_period(opts.timer_period);
  sys->machine().timer().Restart(sys->machine().Now());
  const std::uint64_t steps = runner.Run(opts.run_cycles);
  sys->machine().timer().set_period(0);
  sys->kernel().CheckInvariants();

  TrafficResult res;
  res.shape = ArrivalShapeName(scen.shape);
  res.load_point = scen.load_point;
  res.frame_gap = scen.frame_gap;
  for (const Cycles lat : sys->kernel().irq_latencies()) {
    res.irq_hist.Record(lat);
  }
  res.frame_delay = driver.frame_delay();
  res.frames_offered = source.offered();
  res.frames_dropped = ring.dropped();
  res.frames_processed = driver.frames_processed();
  res.driver_acks = driver.acks_issued();
  res.client_calls = stats.calls;
  for (const auto& [t, n] : server_steps) {
    res.requests_served += n > 0 ? n - 1 : 0;
  }
  res.spurious_acks = sys->machine().irq().spurious_acks();
  res.coalesced_asserts = sys->machine().irq().coalesced_asserts();
  res.steps = steps;
  return res;
}

std::uint64_t TrafficContextDigest(const TrafficOptions& opts) {
  engine::WireWriter w;
  w.U64(engine::StateSerializer::KernelImageDigest(KernelConfig::After()));
  w.U64(opts.seed);
  w.U32(opts.clients);
  w.U32(opts.servers);
  w.U32(opts.ring_capacity);
  w.U64(opts.run_cycles);
  w.U64(opts.timer_period);
  w.U64(opts.compute_slice);
  for (const ArrivalShape s : opts.shapes) {
    w.U8(static_cast<std::uint8_t>(s));
  }
  for (const Cycles g : opts.load_gaps) {
    w.U64(g);
  }
  const std::vector<std::uint8_t>& b = w.bytes();
  return engine::Fnv1a64(b.data(), b.size());
}

}  // namespace

std::vector<std::uint8_t> EncodeTrafficResult(const TrafficResult& r) {
  engine::WireWriter w;
  w.Str(r.shape);
  w.U32(r.load_point);
  w.U64(r.frame_gap);
  engine::StateSerializer::WriteHistogram(w, r.irq_hist);
  engine::StateSerializer::WriteHistogram(w, r.frame_delay);
  w.U64(r.frames_offered);
  w.U64(r.frames_dropped);
  w.U64(r.frames_processed);
  w.U64(r.driver_acks);
  w.U64(r.client_calls);
  w.U64(r.requests_served);
  w.U64(r.spurious_acks);
  w.U64(r.coalesced_asserts);
  w.U64(r.steps);
  return w.Take();
}

TrafficResult DecodeTrafficResult(const std::vector<std::uint8_t>& bytes) {
  engine::WireReader rd(bytes.data(), bytes.size());
  TrafficResult r;
  r.shape = rd.Str();
  r.load_point = rd.U32();
  r.frame_gap = rd.U64();
  r.irq_hist = engine::StateSerializer::ReadHistogram(rd);
  r.frame_delay = engine::StateSerializer::ReadHistogram(rd);
  r.frames_offered = rd.U64();
  r.frames_dropped = rd.U64();
  r.frames_processed = rd.U64();
  r.driver_acks = rd.U64();
  r.client_calls = rd.U64();
  r.requests_served = rd.U64();
  r.spurious_acks = rd.U64();
  r.coalesced_asserts = rd.U64();
  r.steps = rd.U64();
  rd.ExpectEnd("traffic result");
  return r;
}

TrafficReport RunTrafficSweep(const TrafficOptions& opts) {
  static obs::Counter sweeps("load.traffic.sweeps");
  static obs::Timer boot_nanos("load.traffic.boot_nanos");
  sweeps.Inc();

  const std::vector<ScenarioSpec> grid = BuildGrid(opts);
  TrafficReport report;
  report.seed = opts.seed;
  if (grid.empty()) {
    return report;
  }

  // Boot once, checkpoint, fork per scenario.
  std::unique_ptr<engine::SystemCheckpoint> cp;
  BootInfo boot;
  {
    const auto scope = boot_nanos.Measure();
    System base(KernelConfig::After(), EvalMachine(false));
    boot = BootTrafficWorld(base, opts);
    cp = std::make_unique<engine::SystemCheckpoint>(base);
  }

  if (opts.shards == 0) {
    report.results = engine::ParallelMap<TrafficResult>(
        grid.size(), opts.jobs,
        [&](std::size_t i) { return RunScenario(*cp, boot, opts, grid[i], i); });
  } else {
    const std::uint64_t digest = TrafficContextDigest(opts);
    engine::ShardOptions sopts;
    sopts.shards = opts.shards;
    sopts.jobs_per_shard = opts.jobs;
    sopts.task_timeout_ms = opts.shard_timeout_ms;
    sopts.max_attempts = opts.shard_max_attempts;
    sopts.journal_dir = opts.journal_dir;
    sopts.journal_digest = digest;
    sopts.seed = opts.seed;
    std::vector<engine::ShardTask> tasks;
    tasks.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const ScenarioSpec& scen = grid[i];
      char key[128];
      std::snprintf(key, sizeof(key), "traffic|%s|%u|%llu", ArrivalShapeName(scen.shape),
                    scen.load_point, static_cast<unsigned long long>(scen.frame_gap));
      tasks.push_back({key, [&cp, &boot, &opts, scen, i] {
                         return EncodeTrafficResult(RunScenario(*cp, boot, opts, scen, i));
                       }});
    }
    const engine::ShardOutcome out = engine::ShardSupervisor(std::move(tasks), sopts).Run();
    report.results.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!out.completed[i]) {
        throw std::runtime_error("traffic: scenario failed supervised execution: " +
                                 std::string(ArrivalShapeName(grid[i].shape)));
      }
      report.results.push_back(DecodeTrafficResult(out.payloads[i]));
    }
    report.shard.sharded = true;
    report.shard.tasks = grid.size();
    report.shard.journal_hits = out.journal_hits;
    report.shard.retries = out.retries;
    report.shard.timeouts = out.timeouts;
    report.shard.worker_deaths = out.worker_deaths;
    report.shard.workers_spawned = out.workers_spawned;
    report.shard.used_fallback = out.used_fallback;
    report.shard.resumed = out.resumed;
  }

  // Telemetry feed — observer only, after every deterministic byte is fixed.
  std::uint64_t offered = 0, dropped = 0, processed = 0, served = 0;
  std::uint64_t spurious = 0, coalesced = 0;
  for (const TrafficResult& r : report.results) {
    offered += r.frames_offered;
    dropped += r.frames_dropped;
    processed += r.frames_processed;
    served += r.requests_served;
    spurious += r.spurious_acks;
    coalesced += r.coalesced_asserts;
  }
  static obs::Counter m_offered("load.frames.offered");
  static obs::Counter m_dropped("load.frames.dropped");
  static obs::Counter m_processed("load.frames.processed");
  static obs::Counter m_served("load.requests.served");
  m_offered.Inc(offered);
  m_dropped.Inc(dropped);
  m_processed.Inc(processed);
  m_served.Inc(served);
  RecordIrqControllerMetrics(spurious, coalesced);
  return report;
}

std::string RenderTrafficTable(const TrafficReport& report) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %-7s %8s %8s %7s %9s %7s %7s %8s %8s %8s %9s\n",
                "shape", "gap", "offered", "drops", "processed", "calls", "served",
                "irq_p50", "irq_p99", "irq_max", "coalesced");
  out += buf;
  for (const TrafficResult& r : report.results) {
    const LatencyHistogram::Summary s = r.irq_hist.Summarize();
    std::snprintf(buf, sizeof(buf),
                  "  %-7s %8llu %8llu %7llu %9llu %7llu %7llu %8llu %8llu %8llu %9llu\n",
                  r.shape.c_str(), static_cast<unsigned long long>(r.frame_gap),
                  static_cast<unsigned long long>(r.frames_offered),
                  static_cast<unsigned long long>(r.frames_dropped),
                  static_cast<unsigned long long>(r.frames_processed),
                  static_cast<unsigned long long>(r.client_calls),
                  static_cast<unsigned long long>(r.requests_served),
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p99),
                  static_cast<unsigned long long>(s.max),
                  static_cast<unsigned long long>(r.coalesced_asserts));
    out += buf;
  }
  return out;
}

void WriteTrafficCsv(const TrafficReport& report, std::ostream& os) {
  os << "shape,load_point,frame_gap,frames_offered,frames_dropped,frames_processed,"
        "driver_acks,client_calls,requests_served,irq_count,irq_p50,irq_p90,irq_p99,"
        "irq_max,delay_p50,delay_max,spurious_acks,coalesced_asserts,steps\n";
  for (const TrafficResult& r : report.results) {
    const LatencyHistogram::Summary s = r.irq_hist.Summarize();
    const LatencyHistogram::Summary d = r.frame_delay.Summarize();
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s,%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%llu,%llu,%llu,%llu\n",
                  r.shape.c_str(), r.load_point,
                  static_cast<unsigned long long>(r.frame_gap),
                  static_cast<unsigned long long>(r.frames_offered),
                  static_cast<unsigned long long>(r.frames_dropped),
                  static_cast<unsigned long long>(r.frames_processed),
                  static_cast<unsigned long long>(r.driver_acks),
                  static_cast<unsigned long long>(r.client_calls),
                  static_cast<unsigned long long>(r.requests_served),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p90),
                  static_cast<unsigned long long>(s.p99),
                  static_cast<unsigned long long>(s.max),
                  static_cast<unsigned long long>(d.p50),
                  static_cast<unsigned long long>(d.max),
                  static_cast<unsigned long long>(r.spurious_acks),
                  static_cast<unsigned long long>(r.coalesced_asserts),
                  static_cast<unsigned long long>(r.steps));
    os << buf;
  }
}

void FeedObservatory(const TrafficReport& report, obs::TailObservatory& observatory,
                     const std::string& config_label) {
  for (const TrafficResult& r : report.results) {
    char label[96];
    std::snprintf(label, sizeof(label), "traffic/%s/g%llu", r.shape.c_str(),
                  static_cast<unsigned long long>(r.frame_gap));
    const std::string scenario(label);
    if (r.shape == ArrivalShapeName(ArrivalShape::kBurstyStorm)) {
      observatory.SetUnenforced(scenario);
    }
    observatory.Touch(config_label, scenario);
    observatory.RecordHistogram(config_label, scenario, r.irq_hist);
    observatory.RecordIrqCounters(config_label, scenario, r.spurious_acks,
                                  r.coalesced_asserts);
  }
}

void WriteTrafficBenchJson(const TrafficReport& report, Cycles bound, double wall_seconds,
                           std::ostream& os) {
  os << "{\n  \"benchmarks\": [\n";
  // Group points by shape, preserving scenario order within each shape.
  std::vector<std::string> shapes;
  for (const TrafficResult& r : report.results) {
    bool seen = false;
    for (const std::string& s : shapes) {
      seen = seen || s == r.shape;
    }
    if (!seen) {
      shapes.push_back(r.shape);
    }
  }
  for (std::size_t si = 0; si < shapes.size(); ++si) {
    os << "    {\n      \"name\": \"traffic/" << shapes[si] << "\",\n";
    os << "      \"seed\": " << report.seed << ",\n";
    os << "      \"bound_cycles\": " << bound << ",\n";
    if (wall_seconds >= 0) {
      char wbuf[64];
      std::snprintf(wbuf, sizeof(wbuf), "      \"sweep_wall_seconds\": %.6f,\n",
                    wall_seconds);
      os << wbuf;
    }
    os << "      \"points\": [\n";
    bool first = true;
    for (const TrafficResult& r : report.results) {
      if (r.shape != shapes[si]) {
        continue;
      }
      const LatencyHistogram::Summary s = r.irq_hist.Summarize();
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "%s        {\"frame_gap\": %llu, \"offered\": %llu, \"dropped\": %llu, "
                    "\"processed\": %llu, \"served\": %llu, \"irq_p50\": %llu, "
                    "\"irq_p99\": %llu, \"irq_max\": %llu}",
                    first ? "" : ",\n", static_cast<unsigned long long>(r.frame_gap),
                    static_cast<unsigned long long>(r.frames_offered),
                    static_cast<unsigned long long>(r.frames_dropped),
                    static_cast<unsigned long long>(r.frames_processed),
                    static_cast<unsigned long long>(r.requests_served),
                    static_cast<unsigned long long>(s.p50),
                    static_cast<unsigned long long>(s.p99),
                    static_cast<unsigned long long>(s.max));
      os << buf;
      first = false;
    }
    os << "\n      ]\n    }" << (si + 1 < shapes.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace pmk::load
