// Saturation harness: offered-load sweeps over the badged client fleet and
// the modelled NIC ring, with interrupt-response tails checked live against
// the analyzed WCET bound.
//
// One scenario = (arrival shape, offered-load point): a forked clone of a
// single checkpointed fleet boot runs clients + servers + the two-phase
// driver for a fixed modelled duration while the FrameSource streams frames
// at the scenario's rate. Results carry full latency histograms plus
// throughput/goodput/drop/coalesce counters, and are byte-identical for a
// given seed at ANY parallelism:
//
//   - scenarios fan out over engine::RunJobs threads (--jobs), inputs a pure
//     function of the scenario ordinal (SplitMix64::Split(ordinal));
//   - or over engine::ShardSupervisor worker processes (--shards), results
//     travelling as wire-encoded TrafficResult records, collected in ordinal
//     order either way.
//
// The boot-once/fork-per-scenario checkpoint pattern is what makes a
// thousand-client sweep cheap: the fleet is built exactly once.

#ifndef SRC_LOAD_TRAFFIC_H_
#define SRC_LOAD_TRAFFIC_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/load/driver.h"
#include "src/load/fleet.h"
#include "src/obs/tail_observatory.h"

namespace pmk::load {

struct TrafficOptions {
  std::uint64_t seed = 42;

  // Fleet shape.
  std::uint32_t clients = 1000;
  std::uint32_t servers = 8;
  std::uint8_t client_prio = 50;
  std::uint8_t server_prio = 100;
  std::uint8_t driver_prio = 200;  // drains above everything else

  // Device model.
  std::uint32_t nic_line = 1;  // line 0 is the timer
  std::uint32_t ring_capacity = 64;
  TwoPhaseDriver::Config driver;  // ack/recv cptrs are filled by the harness

  // Scenario grid: every shape at every offered-load point (device mean
  // inter-frame gap in cycles; smaller = hotter). Client think time scales
  // with the same gap so IPC pressure rises with device pressure.
  std::vector<ArrivalShape> shapes = {ArrivalShape::kOpenLoop, ArrivalShape::kClosedLoop,
                                      ArrivalShape::kBurstyStorm};
  std::vector<Cycles> load_gaps = {16384, 4096, 1024, 384};

  // Run shape.
  Cycles run_cycles = 600'000;
  Cycles timer_period = 8192;     // periodic tick, bounds idle fast-forward
  Cycles compute_slice = 400;     // Runner compute slicing granularity
  Cycles client_think = 200;      // closed-loop think time

  // Parallelism.
  unsigned jobs = 1;        // in-process fan-out threads
  std::uint32_t shards = 0;  // >0: fork-per-shard supervision
  std::string journal_dir;   // optional crash-safe result journal
  std::uint32_t shard_timeout_ms = 120'000;
  std::uint32_t shard_max_attempts = 2;
};

// One scenario's deterministic outcome (modelled values only).
struct TrafficResult {
  std::string shape;           // ArrivalShapeName of the scenario shape
  std::uint32_t load_point = 0;  // index into load_gaps
  std::uint64_t frame_gap = 0;   // the device mean inter-frame gap swept

  LatencyHistogram irq_hist;     // kernel-measured assert->ack responses
  LatencyHistogram frame_delay;  // frame arrival -> driver pop (informational)

  std::uint64_t frames_offered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_processed = 0;
  std::uint64_t driver_acks = 0;
  std::uint64_t client_calls = 0;     // IPC requests issued
  std::uint64_t requests_served = 0;  // completed call/reply round trips
  std::uint64_t spurious_acks = 0;
  std::uint64_t coalesced_asserts = 0;
  std::uint64_t steps = 0;  // total Runner steps completed
};

// Wire codec for the shard result pipe / journal (StateSerializer histogram
// encoding inside a WireWriter record). Decode throws WireError on corrupt
// bytes.
std::vector<std::uint8_t> EncodeTrafficResult(const TrafficResult& r);
TrafficResult DecodeTrafficResult(const std::vector<std::uint8_t>& bytes);

struct TrafficShardStats {
  bool sharded = false;
  std::uint64_t tasks = 0;
  std::uint64_t journal_hits = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t workers_spawned = 0;
  bool used_fallback = false;
  bool resumed = false;
};

struct TrafficReport {
  std::uint64_t seed = 0;
  std::vector<TrafficResult> results;  // scenario-ordinal order
  TrafficShardStats shard;             // supervision outcome; NOT golden-able
};

// Runs the full sweep. Boots the fleet once, checkpoints, forks per
// scenario; fan-out per |opts.jobs| / |opts.shards|. Throws on a scenario
// that fails even quarantined re-execution.
TrafficReport RunTrafficSweep(const TrafficOptions& opts);

// Deterministic renderings (modelled values only — golden-able bytes).
std::string RenderTrafficTable(const TrafficReport& report);
void WriteTrafficCsv(const TrafficReport& report, std::ostream& os);

// Feeds per-scenario histograms + controller counters into the observatory
// under scenario label "traffic/<shape>/g<gap>". Storm scenarios are marked
// unenforced: their latencies include device-side masked windows the kernel
// analysis deliberately excludes.
void FeedObservatory(const TrafficReport& report, obs::TailObservatory& observatory,
                     const std::string& config_label);

// Offered-load vs tail-latency trajectory in the BENCH_*.json house format.
// |bound| annotates each point with the analyzed interrupt-response bound;
// |wall_seconds| (optional, <0 to omit) records sweep wall time.
void WriteTrafficBenchJson(const TrafficReport& report, Cycles bound, double wall_seconds,
                           std::ostream& os);

}  // namespace pmk::load

#endif  // SRC_LOAD_TRAFFIC_H_
