#include "src/obs/block_profile.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace pmk {

void BlockProfiler::OnEvent(const TraceEvent& event) {
  if (event.kind != TraceEventKind::kBlockCost) {
    return;
  }
  if (event.id >= stats_.size()) {
    stats_.resize(event.id + 1);
  }
  BlockStats& s = stats_[event.id];
  s.block = event.id;
  s.execs++;
  s.total_cycles += event.arg0;
  s.max_cycles = std::max(s.max_cycles, Cycles{event.arg0});
  s.l1i_misses += event.arg1;
  s.l1d_misses += event.arg2;
}

BlockStats BlockProfiler::StatsFor(BlockId id) const {
  if (id < stats_.size() && stats_[id].execs != 0) {
    return stats_[id];
  }
  BlockStats empty;
  empty.block = id;
  return empty;
}

Cycles BlockProfiler::TotalCycles() const {
  Cycles total = 0;
  for (const BlockStats& s : stats_) {
    total += s.total_cycles;
  }
  return total;
}

std::vector<BlockStats> BlockProfiler::Ranked() const {
  std::vector<BlockStats> out;
  for (const BlockStats& s : stats_) {
    if (s.execs != 0) {
      out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end(), [](const BlockStats& a, const BlockStats& b) {
    if (a.total_cycles != b.total_cycles) {
      return a.total_cycles > b.total_cycles;
    }
    return a.block < b.block;
  });
  return out;
}

void BlockProfiler::PrintHotBlocks(const Program& program, std::size_t top_n,
                                   const std::vector<Cycles>* bounds, std::ostream& os) const {
  const std::vector<BlockStats> ranked = Ranked();
  char buf[256];
  if (bounds != nullptr) {
    std::snprintf(buf, sizeof(buf), "  %-28s %8s %10s %8s %6s %6s %8s %7s\n", "block", "execs",
                  "cycles", "max", "l1i_m", "l1d_m", "bound", "max/bd");
  } else {
    std::snprintf(buf, sizeof(buf), "  %-28s %8s %10s %8s %6s %6s\n", "block", "execs", "cycles",
                  "max", "l1i_m", "l1d_m");
  }
  os << buf;
  const std::size_t n = std::min(top_n, ranked.size());
  for (std::size_t i = 0; i < n; ++i) {
    const BlockStats& s = ranked[i];
    const Block& b = program.block(s.block);
    std::string label = program.function(b.func).name + ":" + b.name;
    if (label.size() > 28) {
      label.resize(28);
    }
    if (bounds != nullptr) {
      const Cycles bound = s.block < bounds->size() ? (*bounds)[s.block] : 0;
      std::snprintf(buf, sizeof(buf), "  %-28s %8llu %10llu %8llu %6llu %6llu %8llu %6.0f%%\n",
                    label.c_str(), static_cast<unsigned long long>(s.execs),
                    static_cast<unsigned long long>(s.total_cycles),
                    static_cast<unsigned long long>(s.max_cycles),
                    static_cast<unsigned long long>(s.l1i_misses),
                    static_cast<unsigned long long>(s.l1d_misses),
                    static_cast<unsigned long long>(bound),
                    bound == 0 ? 0.0
                               : 100.0 * static_cast<double>(s.max_cycles) /
                                     static_cast<double>(bound));
    } else {
      std::snprintf(buf, sizeof(buf), "  %-28s %8llu %10llu %8llu %6llu %6llu\n", label.c_str(),
                    static_cast<unsigned long long>(s.execs),
                    static_cast<unsigned long long>(s.total_cycles),
                    static_cast<unsigned long long>(s.max_cycles),
                    static_cast<unsigned long long>(s.l1i_misses),
                    static_cast<unsigned long long>(s.l1d_misses));
    }
    os << buf;
  }
}

bool BlockProfiler::CheckAgainstBounds(const std::vector<Cycles>& bounds,
                                       std::ostream* err) const {
  bool ok = true;
  for (const BlockStats& s : stats_) {
    if (s.execs == 0) {
      continue;
    }
    const Cycles bound = s.block < bounds.size() ? bounds[s.block] : 0;
    if (s.max_cycles > bound) {
      ok = false;
      if (err != nullptr) {
        *err << "block " << s.block << ": observed max " << s.max_cycles << " > bound " << bound
             << "\n";
      }
    }
  }
  return ok;
}

}  // namespace pmk
