// Per-block cost profiler: aggregates kBlockCost trace events by BlockId.
//
// For each basic block executed under tracing, accumulates execution count,
// total / maximum observed cycles, and L1 I/D-cache misses. The hot-block
// table ranks blocks by total observed cycles and sets the per-execution
// maximum against the static per-block WCET ceiling
// (WcetAnalyzer::PerBlockBounds), the per-block analogue of the paper's
// computed-vs-observed comparison (Section 6.2 / Figure 8).

#ifndef SRC_OBS_BLOCK_PROFILE_H_
#define SRC_OBS_BLOCK_PROFILE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/kir/program.h"
#include "src/obs/trace_sink.h"

namespace pmk {

struct BlockStats {
  BlockId block = kNoBlock;
  std::uint64_t execs = 0;
  Cycles total_cycles = 0;
  Cycles max_cycles = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t l1d_misses = 0;
};

class BlockProfiler : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override;

  void Reset() { stats_.clear(); }

  // Stats for one block (zeroed entry if never executed).
  BlockStats StatsFor(BlockId id) const;
  const std::vector<BlockStats>& raw() const { return stats_; }

  // Total cycles attributed across all profiled blocks.
  Cycles TotalCycles() const;

  // Executed blocks ranked by total observed cycles, descending.
  std::vector<BlockStats> Ranked() const;

  // Prints the top |top_n| blocks: execs, total/max cycles, misses, and —
  // when |bounds| (indexed by BlockId) is given — the per-execution WCET
  // ceiling and the max/bound ratio.
  void PrintHotBlocks(const Program& program, std::size_t top_n,
                      const std::vector<Cycles>* bounds, std::ostream& os) const;

  // True iff every profiled block's max per-execution cost is within its
  // bound. Blocks beyond |bounds|'s range fail the check.
  bool CheckAgainstBounds(const std::vector<Cycles>& bounds, std::ostream* err = nullptr) const;

 private:
  std::vector<BlockStats> stats_;  // indexed by BlockId, grown on demand
};

}  // namespace pmk

#endif  // SRC_OBS_BLOCK_PROFILE_H_
