#include "src/obs/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>

namespace pmk {

namespace {

constexpr int kKernelTid = 0;
constexpr int kUserTidBase = 100;

std::string JsonEscape(const char* s) {
  std::string out;
  if (s == nullptr) {
    return out;
  }
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class EventPrinter {
 public:
  explicit EventPrinter(std::ostream& os) : os_(os) {}

  // Starts one event object and emits the common fields.
  void Begin(const char* ph, const std::string& name, const char* cat, double ts, int pid,
             int tid) {
    os_ << (first_ ? "" : ",\n") << "  {\"name\":\"" << name << "\",\"cat\":\"" << cat
        << "\",\"ph\":\"" << ph << "\",\"ts\":" << Num(ts) << ",\"pid\":" << pid
        << ",\"tid\":" << tid;
    first_ = false;
  }
  void Field(const char* key, const std::string& raw_value) {
    os_ << ",\"" << key << "\":" << raw_value;
  }
  void End() { os_ << "}"; }

  static std::string Num(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void ChromeTraceWriter::Write(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  EventPrinter p(os);

  const auto us = [this](Cycles c) {
    return clock_.ToMicros(c);
  };

  // Track metadata.
  p.Begin("M", "process_name", "__metadata", 0, 0, kKernelTid);
  p.Field("args", "{\"name\":\"pmk (modelled ARM1136)\"}");
  p.End();
  p.Begin("M", "thread_name", "__metadata", 0, 0, kKernelTid);
  p.Field("args", "{\"name\":\"kernel\"}");
  p.End();
  std::set<std::uint32_t> named_threads;
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceEventKind::kUserCompute && named_threads.insert(e.id).second) {
      char name[48];
      std::snprintf(name, sizeof(name), "{\"name\":\"thread %u\"}", e.id);
      p.Begin("M", "thread_name", "__metadata", 0, 0, kUserTidBase + static_cast<int>(e.id));
      p.Field("args", name);
      p.End();
    }
  }

  // Async-span ids: one fresh id per IRQ assertion, matched per line.
  std::map<std::uint32_t, std::uint64_t> open_irq;  // line -> span id
  std::uint64_t next_irq_id = 1;
  char buf[160];

  for (const TraceEvent& e : events_) {
    const std::string name = JsonEscape(e.name);
    switch (e.kind) {
      case TraceEventKind::kKernelEntry:
        p.Begin("B", name, "kernel", us(e.cycle), 0, kKernelTid);
        p.End();
        break;
      case TraceEventKind::kKernelExit:
        p.Begin("E", name, "kernel", us(e.cycle), 0, kKernelTid);
        p.End();
        break;
      case TraceEventKind::kSyscallOp:
        p.Begin("i", name, "syscall", us(e.cycle), 0, kKernelTid);
        p.Field("s", "\"t\"");
        std::snprintf(buf, sizeof(buf), "{\"cptr\":%llu}",
                      static_cast<unsigned long long>(e.arg0));
        p.Field("args", buf);
        p.End();
        break;
      case TraceEventKind::kBlockCost:
        if (!include_blocks_) {
          break;
        }
        p.Begin("X", name, "block", us(e.cycle - e.arg0), 0, kKernelTid);
        p.Field("dur", EventPrinter::Num(us(e.arg0)));
        std::snprintf(buf, sizeof(buf),
                      "{\"cycles\":%llu,\"l1i_miss\":%llu,\"l1d_miss\":%llu}",
                      static_cast<unsigned long long>(e.arg0),
                      static_cast<unsigned long long>(e.arg1),
                      static_cast<unsigned long long>(e.arg2));
        p.Field("args", buf);
        p.End();
        break;
      case TraceEventKind::kPreemptPointHit:
      case TraceEventKind::kPreemptPointTaken:
        p.Begin("i", name, "preempt", us(e.cycle), 0, kKernelTid);
        p.Field("s", "\"t\"");
        p.Field("args", e.kind == TraceEventKind::kPreemptPointTaken
                            ? "{\"taken\":true}"
                            : "{\"taken\":false}");
        p.End();
        break;
      case TraceEventKind::kIrqAssert: {
        const std::uint64_t id = next_irq_id++;
        open_irq[e.id] = id;
        std::snprintf(buf, sizeof(buf), "irq%u", e.id);
        p.Begin("b", buf, "irq", us(e.cycle), 0, kKernelTid);
        std::snprintf(buf, sizeof(buf), "\"%llu\"", static_cast<unsigned long long>(id));
        p.Field("id", buf);
        p.End();
        break;
      }
      case TraceEventKind::kIrqDeliver: {
        const auto it = open_irq.find(e.id);
        std::uint64_t id;
        if (it != open_irq.end()) {
          id = it->second;
          open_irq.erase(it);
        } else {
          // The assertion predates sink attachment: synthesize the begin
          // from the recorded assert cycle so the span still appears.
          id = next_irq_id++;
          std::snprintf(buf, sizeof(buf), "irq%u", e.id);
          p.Begin("b", buf, "irq", us(e.arg0), 0, kKernelTid);
          std::snprintf(buf, sizeof(buf), "\"%llu\"", static_cast<unsigned long long>(id));
          p.Field("id", buf);
          p.End();
        }
        std::snprintf(buf, sizeof(buf), "irq%u", e.id);
        p.Begin("e", buf, "irq", us(e.cycle), 0, kKernelTid);
        std::snprintf(buf, sizeof(buf), "\"%llu\"", static_cast<unsigned long long>(id));
        p.Field("id", buf);
        std::snprintf(buf, sizeof(buf), "{\"latency_cycles\":%llu}",
                      static_cast<unsigned long long>(e.arg1));
        p.Field("args", buf);
        p.End();
        break;
      }
      case TraceEventKind::kUserCompute:
        p.Begin("X", "compute", "user", us(e.cycle - e.arg0), 0,
                kUserTidBase + static_cast<int>(e.id));
        p.Field("dur", EventPrinter::Num(us(e.arg0)));
        p.End();
        break;
      case TraceEventKind::kThreadSwitch:
        p.Begin("i", "switch", "sched", us(e.cycle), 0, kKernelTid);
        p.Field("s", "\"t\"");
        std::snprintf(buf, sizeof(buf), "{\"thread\":%u}", e.id);
        p.Field("args", buf);
        p.End();
        break;
      case TraceEventKind::kIrqSpuriousAck:
        p.Begin("i", "spurious-ack", "irq", us(e.cycle), 0, kKernelTid);
        p.Field("s", "\"t\"");
        std::snprintf(buf, sizeof(buf), "{\"line\":%u}", e.id);
        p.Field("args", buf);
        p.End();
        break;
      case TraceEventKind::kIrqCoalesced:
        p.Begin("i", "coalesced", "irq", us(e.cycle), 0, kKernelTid);
        p.Field("s", "\"t\"");
        std::snprintf(buf, sizeof(buf), "{\"line\":%u,\"first_assert\":%llu}", e.id,
                      static_cast<unsigned long long>(e.arg0));
        p.Field("args", buf);
        p.End();
        break;
      case TraceEventKind::kFaultInject:
        p.Begin("i", "inject", "fault", us(e.cycle), 0, kKernelTid);
        p.Field("s", "\"t\"");
        std::snprintf(buf, sizeof(buf), "{\"line\":%u,\"ordinal\":%llu,\"burst\":%llu}", e.id,
                      static_cast<unsigned long long>(e.arg0),
                      static_cast<unsigned long long>(e.arg1));
        p.Field("args", buf);
        p.End();
        break;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  Write(f);
  return static_cast<bool>(f);
}

}  // namespace pmk
