// Chrome trace_event JSON exporter.
//
// Buffers TraceEvents and writes them in the Chrome tracing JSON Array /
// Object format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
//  - kernel entry/exit become duration ("B"/"E") events on the kernel track;
//  - block costs become complete ("X") events nested inside the kernel span;
//  - IRQ assert -> deliver pairs become async ("b"/"e") spans, one per
//    assertion, whose length is exactly the interrupt response time;
//  - syscall ops and preemption points become instant ("i") events;
//  - user compute bursts become "X" events on per-thread tracks.
// Timestamps are modelled cycles converted to microseconds at the machine's
// clock (the "ts" unit Perfetto expects).

#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "src/hw/cycles.h"
#include "src/obs/trace_sink.h"

namespace pmk {

class ChromeTraceWriter : public TraceSink {
 public:
  explicit ChromeTraceWriter(const ClockSpec& clock) : clock_(clock) {}

  // Include per-block "X" events (one per basic-block execution). On by
  // default; switch off for long runs where only the span structure matters.
  void set_include_blocks(bool include) { include_blocks_ = include; }

  // Event names are interned into writer-owned storage: producers (the kir
  // executor) point them at block-name strings owned by the running System,
  // and a process-wide writer (bench::GlobalTrace) outlives those Systems.
  void OnEvent(const TraceEvent& event) override {
    TraceEvent copy = event;
    if (copy.name != nullptr) {
      copy.name = names_.insert(copy.name).first->c_str();
    }
    events_.push_back(copy);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() {
    events_.clear();
    names_.clear();
  }

  // Serializes the buffered events as {"traceEvents":[...]}.
  void Write(std::ostream& os) const;

  // Convenience: Write() to |path|; returns false if the file cannot be
  // opened.
  bool WriteFile(const std::string& path) const;

 private:
  ClockSpec clock_;
  bool include_blocks_ = true;
  std::vector<TraceEvent> events_;
  std::set<std::string> names_;  // stable addresses backing events_[i].name
};

}  // namespace pmk

#endif  // SRC_OBS_CHROME_TRACE_H_
