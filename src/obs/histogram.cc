#include "src/obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace pmk {

namespace {
constexpr std::uint32_t kSubBuckets = 1u << LatencyHistogram::kSubBucketBits;  // 16
}

std::size_t LatencyHistogram::BucketIndex(Cycles v) {
  if (v < kSubBuckets) {
    return static_cast<std::size_t>(v);
  }
  // Normalize so (v >> shift) lands in [kSubBuckets, 2*kSubBuckets): one
  // octave of 16 linear sub-buckets.
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - static_cast<int>(kSubBucketBits);
  return (static_cast<std::size_t>(shift + 1) << kSubBucketBits) |
         (static_cast<std::size_t>(v >> shift) & (kSubBuckets - 1));
}

Cycles LatencyHistogram::BucketUpperBound(std::size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  const int shift = static_cast<int>(index >> kSubBucketBits) - 1;
  const Cycles base = (Cycles{(index & (kSubBuckets - 1)) + kSubBuckets}) << shift;
  return base + ((Cycles{1} << shift) - 1);
}

void LatencyHistogram::Record(Cycles value, std::uint64_t times) {
  if (times == 0) {
    return;
  }
  const std::size_t idx = BucketIndex(value);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  buckets_[idx] += times;
  count_ += times;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(times);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  buckets_.clear();
  count_ = 0;
  min_ = ~Cycles{0};
  max_ = 0;
  sum_ = 0;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Cycles LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  Summary s;
  s.count = count_;
  s.min = min();
  s.p50 = Percentile(50);
  s.p90 = Percentile(90);
  s.p99 = Percentile(99);
  s.max = max_;
  s.mean = Mean();
  return s;
}

std::string LatencyHistogram::FormatSummary(const ClockSpec* clock) const {
  const Summary s = Summarize();
  char buf[192];
  if (clock != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  "n=%llu  min=%.1fus  p50=%.1fus  p90=%.1fus  p99=%.1fus  max=%.1fus",
                  static_cast<unsigned long long>(s.count), clock->ToMicros(s.min),
                  clock->ToMicros(s.p50), clock->ToMicros(s.p90), clock->ToMicros(s.p99),
                  clock->ToMicros(s.max));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "n=%llu  min=%llu  p50=%llu  p90=%llu  p99=%llu  max=%llu (cycles)",
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.min),
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p90),
                  static_cast<unsigned long long>(s.p99),
                  static_cast<unsigned long long>(s.max));
  }
  return buf;
}

std::string LatencyHistogram::FormatAscii(int width) const {
  std::string out;
  if (count_ == 0) {
    return "  (empty)\n";
  }
  std::uint64_t peak = 0;
  for (const std::uint64_t b : buckets_) {
    peak = std::max(peak, b);
  }
  char buf[192];
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const int bar = static_cast<int>(static_cast<double>(buckets_[i]) /
                                         static_cast<double>(peak) * width +
                                     0.5);
    std::snprintf(buf, sizeof(buf), "  <=%10llu  %8llu  |%s\n",
                  static_cast<unsigned long long>(BucketUpperBound(i)),
                  static_cast<unsigned long long>(buckets_[i]),
                  std::string(static_cast<std::size_t>(std::max(bar, 1)), '#').c_str());
    out += buf;
  }
  return out;
}

}  // namespace pmk
