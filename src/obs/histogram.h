// HDR-style latency histogram: logarithmic buckets with linear sub-buckets.
//
// Replaces max-only latency reporting (paper Section 5.4 reports only the
// worst observed run) with full distributions: p50/p90/p99/max at a bounded
// relative error. Buckets follow the HdrHistogram layout — 16 linear
// sub-buckets per power-of-two octave — so any recorded value is resolved to
// better than 1/16 (6.25%) relative error while the whole 64-bit cycle range
// needs only ~1000 buckets. Min, max and mean are tracked exactly.

#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/cycles.h"

namespace pmk {

namespace engine {
class StateSerializer;  // full-state (de)serialization, src/engine/serialize.h
}

class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 4;  // 16 sub-buckets/octave

  void Record(Cycles value) { Record(value, 1); }
  void Record(Cycles value, std::uint64_t times);
  void Merge(const LatencyHistogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  Cycles min() const { return count_ == 0 ? 0 : min_; }
  Cycles max() const { return max_; }
  double Mean() const;

  // Throughput/mean reporting accessors: total recordings and the exact sum
  // of all recorded values (0 for an empty histogram). Sum()/Count() equals
  // Mean(); exposing the sum lets aggregators merge means without losing the
  // exact totals.
  std::uint64_t Count() const { return count_; }
  double Sum() const { return count_ == 0 ? 0.0 : sum_; }

  // Value at the given percentile (p in [0,100]): the upper bound of the
  // bucket containing the p-th ranked recording, clamped to the exact
  // observed [min, max]. Percentile(100) == max() exactly.
  Cycles Percentile(double p) const;

  struct Summary {
    std::uint64_t count = 0;
    Cycles min = 0;
    Cycles p50 = 0;
    Cycles p90 = 0;
    Cycles p99 = 0;
    Cycles max = 0;
    double mean = 0;
  };
  Summary Summarize() const;

  // One-line "n=  min=  p50=  p90=  p99=  max=" rendering, in cycles, or in
  // microseconds when a clock is given.
  std::string FormatSummary(const ClockSpec* clock = nullptr) const;

  // Multi-line ASCII rendering of the non-empty bucket range.
  std::string FormatAscii(int width = 40) const;

  // Exposed for tests: the bucket index a value lands in and the largest
  // value mapping to that bucket.
  static std::size_t BucketIndex(Cycles value);
  static Cycles BucketUpperBound(std::size_t index);

 private:
  friend class engine::StateSerializer;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  Cycles min_ = ~Cycles{0};
  Cycles max_ = 0;
  double sum_ = 0;
};

}  // namespace pmk

#endif  // SRC_OBS_HISTOGRAM_H_
