#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace pmk::obs {

std::atomic<bool> MetricsRegistry::enabled_{true};

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kTimer:
      return "timer";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// One thread's private slice of every counter/histogram metric. The owning
// thread takes |mu| around each record; Snapshot/Reset take it around the
// merge. In steady state the mutex is uncontended, so a record costs one
// atomic acquire/release pair plus the array write.
struct MetricsRegistry::Shard {
  std::mutex mu;
  std::vector<std::uint64_t> counters;
  std::vector<LatencyHistogram> hists;

  void EnsureSize(std::size_t n) {
    if (counters.size() < n) {
      counters.resize(n, 0);
      hists.resize(n);
    }
  }
};

struct MetricsRegistry::Impl {
  std::mutex mu;  // guards names/ids/gauges/shard list/retired
  std::map<std::string, std::uint32_t> ids;
  std::vector<std::pair<MetricKind, std::string>> metrics;  // by id
  // Gauges live in the registry itself (unique_ptr keeps addresses stable
  // across registration growth).
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges;
  std::vector<Shard*> shards;  // live per-thread shards (owned)
  Shard retired;               // merged contributions of exited threads

  std::size_t num_metrics() const { return metrics.size(); }
};

namespace {

// Registered per thread on first record; merges the shard's contents into
// the registry's retired accumulator when the thread exits, so no sample is
// ever lost.
struct ShardHandle {
  MetricsRegistry::Impl* impl = nullptr;
  MetricsRegistry::Shard* shard = nullptr;
  ~ShardHandle();
};

void MergeShardInto(MetricsRegistry::Shard& dst, const MetricsRegistry::Shard& src) {
  dst.EnsureSize(src.counters.size());
  for (std::size_t i = 0; i < src.counters.size(); ++i) {
    dst.counters[i] += src.counters[i];
    dst.hists[i].Merge(src.hists[i]);
  }
}

ShardHandle::~ShardHandle() {
  if (impl == nullptr || shard == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> reg_lock(impl->mu);
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    MergeShardInto(impl->retired, *shard);
  }
  auto it = std::find(impl->shards.begin(), impl->shards.end(), shard);
  if (it != impl->shards.end()) {
    impl->shards.erase(it);
  }
  delete shard;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked on purpose (see header): must outlive thread_local destructors
  // and static handle destructors in any order.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::uint32_t MetricsRegistry::Register(MetricKind kind, const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->ids.find(name);
  if (it != impl_->ids.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(impl_->metrics.size());
  impl_->ids.emplace(name, id);
  impl_->metrics.emplace_back(kind, name);
  impl_->gauges.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  return id;
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    auto* shard = new Shard();
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->shards.push_back(shard);
    }
    handle.impl = impl_;
    handle.shard = shard;
  }
  return *handle.shard;
}

void MetricsRegistry::Add(std::uint32_t id, std::uint64_t delta) {
  Shard& s = LocalShard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.EnsureSize(id + 1);
  s.counters[id] += delta;
}

void MetricsRegistry::RecordValue(std::uint32_t id, std::uint64_t value) {
  Shard& s = LocalShard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.EnsureSize(id + 1);
  s.hists[id].Record(value);
  s.counters[id] += 1;
}

void MetricsRegistry::MergeHistogram(std::uint32_t id, const LatencyHistogram& hist) {
  Shard& s = LocalShard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.EnsureSize(id + 1);
  s.hists[id].Merge(hist);
  s.counters[id] += hist.count();
}

void MetricsRegistry::GaugeSet(std::uint32_t id, std::int64_t value) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (id < impl_->gauges.size()) {
    impl_->gauges[id]->store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::GaugeAdd(std::uint32_t id, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (id < impl_->gauges.size()) {
    impl_->gauges[id]->fetch_add(delta, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::size_t n = impl_->num_metrics();

  // Merge every live shard plus the retired accumulator. Counter addition
  // and histogram bucket merges are commutative and associative, so the
  // result is independent of shard order and thread interleaving.
  Shard merged;
  merged.EnsureSize(n);
  MergeShardInto(merged, impl_->retired);
  for (Shard* s : impl_->shards) {
    std::lock_guard<std::mutex> shard_lock(s->mu);
    MergeShardInto(merged, *s);
  }

  snap.rows.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    MetricRow row;
    row.kind = impl_->metrics[id].first;
    row.name = impl_->metrics[id].second;
    row.counter = id < merged.counters.size() ? merged.counters[id] : 0;
    row.gauge = impl_->gauges[id]->load(std::memory_order_relaxed);
    if (id < merged.hists.size()) {
      row.hist = merged.hists[id];
    }
    snap.rows.push_back(std::move(row));
  }
  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto clear = [](Shard& s) {
    std::fill(s.counters.begin(), s.counters.end(), 0);
    for (LatencyHistogram& h : s.hists) {
      h.Reset();
    }
  };
  {
    std::lock_guard<std::mutex> shard_lock(impl_->retired.mu);
    clear(impl_->retired);
  }
  for (Shard* s : impl_->shards) {
    std::lock_guard<std::mutex> shard_lock(s->mu);
    clear(*s);
  }
  for (auto& g : impl_->gauges) {
    g->store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------- snapshot I/O

const MetricRow* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricRow& r : rows) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const MetricRow* r = Find(name);
  return r == nullptr ? 0 : r->counter;
}

namespace {

void JsonEscape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void WriteHistFields(std::ostream& os, const LatencyHistogram& h) {
  const LatencyHistogram::Summary s = h.Summarize();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"count\":%llu,\"min\":%llu,\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,"
                "\"max\":%llu,\"mean\":%.3f",
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.min),
                static_cast<unsigned long long>(s.p50),
                static_cast<unsigned long long>(s.p90),
                static_cast<unsigned long long>(s.p99),
                static_cast<unsigned long long>(s.max), s.mean);
  os << buf;
}

}  // namespace

void MetricsSnapshot::WriteJsonl(std::ostream& os) const {
  for (const MetricRow& r : rows) {
    os << "{\"metric\":\"";
    JsonEscape(os, r.name);
    os << "\",\"kind\":\"" << MetricKindName(r.kind) << "\",";
    switch (r.kind) {
      case MetricKind::kCounter:
        os << "\"value\":" << r.counter;
        break;
      case MetricKind::kGauge:
        os << "\"value\":" << r.gauge;
        break;
      case MetricKind::kTimer:
      case MetricKind::kHistogram:
        WriteHistFields(os, r.hist);
        break;
    }
    os << "}\n";
  }
}

void MetricsSnapshot::WriteCsv(std::ostream& os) const {
  os << "metric,kind,count,value,min,p50,p90,p99,max,mean\n";
  for (const MetricRow& r : rows) {
    os << r.name << ',' << MetricKindName(r.kind) << ',';
    if (r.kind == MetricKind::kCounter) {
      os << r.counter << ',' << r.counter << ",,,,,,\n";
    } else if (r.kind == MetricKind::kGauge) {
      os << 1 << ',' << r.gauge << ",,,,,,\n";
    } else {
      const LatencyHistogram::Summary s = r.hist.Summarize();
      char buf[224];
      std::snprintf(buf, sizeof(buf), "%llu,,%llu,%llu,%llu,%llu,%llu,%.3f\n",
                    static_cast<unsigned long long>(s.count),
                    static_cast<unsigned long long>(s.min),
                    static_cast<unsigned long long>(s.p50),
                    static_cast<unsigned long long>(s.p90),
                    static_cast<unsigned long long>(s.p99),
                    static_cast<unsigned long long>(s.max), s.mean);
      os << buf;
    }
  }
}

std::string MetricsSnapshot::FormatText() const {
  std::string out;
  char buf[320];
  for (const MetricRow& r : rows) {
    switch (r.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "  %-44s %12llu\n", r.name.c_str(),
                      static_cast<unsigned long long>(r.counter));
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "  %-44s %12lld\n", r.name.c_str(),
                      static_cast<long long>(r.gauge));
        break;
      case MetricKind::kTimer:
      case MetricKind::kHistogram:
        std::snprintf(buf, sizeof(buf), "  %-44s %s\n", r.name.c_str(),
                      r.hist.FormatSummary().c_str());
        break;
    }
    out += buf;
  }
  return out;
}

std::string ObsLabeled(const std::string& name, const std::string& key,
                       const std::string& value) {
  return name + "{" + key + "=" + value + "}";
}

}  // namespace pmk::obs
