// Process-wide telemetry: a thread-safe metrics registry.
//
// Every subsystem (engine, wcet, fault, sim, bench drivers) records named
// counters, gauges and LatencyHistogram-backed timers/value distributions
// through cheap handles. The design goals, in order:
//
//  1. OBSERVER, NEVER INPUT. Nothing in this header reads back into modelled
//     state: recording a metric cannot change a campaign CSV, a WCET bound or
//     a golden report byte. The digest harness and the telemetry-on/off CI
//     diff enforce this.
//  2. Lock-cheap recording. Counters and histograms land in per-thread
//     shards guarded by a per-shard mutex that only the owning thread and a
//     snapshotting reader ever touch — uncontended in steady state, so a
//     record is a relaxed enabled-check, one lock-free CAS-acquired mutex and
//     an array write. Gauges are single process-wide atomics (writes are
//     rare: queue depths, shard progress).
//  3. Deterministic snapshots. Snapshot() merges shards commutatively
//     (counter sums, histogram bucket adds) and sorts rows by name, so the
//     merged result is independent of thread interleaving and shard count.
//
// Naming scheme: dot-separated "<subsystem>.<object>.<measure>[_unit]",
// e.g. "engine.checkpoint.fork_nanos", "wcet.memo.hit",
// "sim.irq.response_cycles". Wall-clock measures end in _nanos; modelled
// quantities in _cycles. Labels are folded into the name with
// ObsLabeled("fault.runs", "mode", "storm") -> "fault.runs{mode=storm}".
//
// Telemetry is ON by default (the instrumentation sits at run/solve
// granularity, not per modelled cycle — see BENCH_obs.json for the <3%
// hot-path overhead budget); MetricsRegistry::SetEnabled(false) turns every
// record site into a single relaxed load.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/histogram.h"

namespace pmk::obs {

enum class MetricKind : std::uint8_t {
  kCounter,    // monotonically increasing count
  kGauge,      // last-written signed level (queue depth, progress)
  kTimer,      // LatencyHistogram of wall-clock nanoseconds
  kHistogram,  // LatencyHistogram of modelled values (cycles, sizes)
};
const char* MetricKindName(MetricKind kind);

// One merged metric in a snapshot.
struct MetricRow {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  std::uint64_t counter = 0;  // kCounter
  std::int64_t gauge = 0;     // kGauge
  LatencyHistogram hist;      // kTimer / kHistogram
};

// A point-in-time merge of every shard, rows sorted by name.
struct MetricsSnapshot {
  std::vector<MetricRow> rows;

  const MetricRow* Find(const std::string& name) const;
  std::uint64_t CounterValue(const std::string& name) const;  // 0 if absent

  // One JSON object per line ("{\"metric\":...,\"kind\":...,...}"), the
  // machine-readable export behind --metrics-json=.
  void WriteJsonl(std::ostream& os) const;
  // metric,kind,count,value,min,p50,p90,p99,max,mean
  void WriteCsv(std::ostream& os) const;
  // Aligned human-readable rendering (the --progress / report footer form).
  std::string FormatText() const;
};

class MetricsRegistry {
 public:
  // Implementation types, public only so metrics.cc's thread-exit handle can
  // name them; not part of the API surface.
  struct Shard;
  struct Impl;

  // The process-wide registry. Intentionally leaked: instrumentation handles
  // live in function-local statics and thread shards retire from
  // thread_local destructors, so the registry must outlive both.
  static MetricsRegistry& Get();

  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Idempotent: one stable dense id per name; the kind of the first
  // registration wins. Thread-safe.
  std::uint32_t Register(MetricKind kind, const std::string& name);

  void Add(std::uint32_t id, std::uint64_t delta);
  void RecordValue(std::uint32_t id, std::uint64_t value);
  void MergeHistogram(std::uint32_t id, const LatencyHistogram& hist);
  void GaugeSet(std::uint32_t id, std::int64_t value);
  void GaugeAdd(std::uint32_t id, std::int64_t delta);

  MetricsSnapshot Snapshot();
  // Zeroes every counter, gauge and histogram (registrations survive).
  void Reset();

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;

  Shard& LocalShard();

  static std::atomic<bool> enabled_;
  Impl* impl_;
};

// ---------------------------------------------------------------- handles
//
// Construct once (function-local static at the instrumentation site) and
// record through; recording with telemetry disabled is one relaxed load.

class Counter {
 public:
  explicit Counter(const char* name)
      : id_(MetricsRegistry::Get().Register(MetricKind::kCounter, name)) {}
  void Inc(std::uint64_t n = 1) const {
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Get().Add(id_, n);
    }
  }

 private:
  std::uint32_t id_;
};

class Gauge {
 public:
  explicit Gauge(const char* name)
      : id_(MetricsRegistry::Get().Register(MetricKind::kGauge, name)) {}
  void Set(std::int64_t v) const {
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Get().GaugeSet(id_, v);
    }
  }
  void Add(std::int64_t d) const {
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Get().GaugeAdd(id_, d);
    }
  }

 private:
  std::uint32_t id_;
};

// Distribution of modelled values (cycles, counts); unit is in the name.
class ValueHistogram {
 public:
  explicit ValueHistogram(const char* name)
      : id_(MetricsRegistry::Get().Register(MetricKind::kHistogram, name)) {}
  void Record(std::uint64_t v) const {
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Get().RecordValue(id_, v);
    }
  }
  void Merge(const LatencyHistogram& h) const {
    if (MetricsRegistry::Enabled() && !h.empty()) {
      MetricsRegistry::Get().MergeHistogram(id_, h);
    }
  }

 private:
  std::uint32_t id_;
};

// Wall-clock timer; Scope records steady_clock nanoseconds on destruction.
// When telemetry is disabled a Scope never reads the clock.
class Timer {
 public:
  explicit Timer(const char* name)
      : id_(MetricsRegistry::Get().Register(MetricKind::kTimer, name)) {}
  void RecordNanos(std::uint64_t ns) const {
    if (MetricsRegistry::Enabled()) {
      MetricsRegistry::Get().RecordValue(id_, ns);
    }
  }

  class Scope {
   public:
    explicit Scope(const Timer& t) : timer_(&t), armed_(MetricsRegistry::Enabled()) {
      if (armed_) {
        start_ = std::chrono::steady_clock::now();
      }
    }
    ~Scope() {
      if (armed_) {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        timer_->RecordNanos(static_cast<std::uint64_t>(ns));
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const Timer* timer_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
  };
  Scope Measure() const { return Scope(*this); }

 private:
  std::uint32_t id_;
};

// "name{key=value}" — the label folding used throughout the registry.
std::string ObsLabeled(const std::string& name, const std::string& key,
                       const std::string& value);

}  // namespace pmk::obs

#endif  // SRC_OBS_METRICS_H_
