#include "src/obs/pmu.h"

#include <cstdio>

namespace pmk {

PmuSnapshot PmuSnapshot::operator-(const PmuSnapshot& earlier) const {
  PmuSnapshot d;
  d.cycles = cycles - earlier.cycles;
  d.instructions = instructions - earlier.instructions;
  d.l1i_accesses = l1i_accesses - earlier.l1i_accesses;
  d.l1i_misses = l1i_misses - earlier.l1i_misses;
  d.l1d_accesses = l1d_accesses - earlier.l1d_accesses;
  d.l1d_misses = l1d_misses - earlier.l1d_misses;
  d.l2_accesses = l2_accesses - earlier.l2_accesses;
  d.l2_misses = l2_misses - earlier.l2_misses;
  d.branches = branches - earlier.branches;
  d.branch_mispredicts = branch_mispredicts - earlier.branch_mispredicts;
  d.mem_stall_cycles = mem_stall_cycles - earlier.mem_stall_cycles;
  return d;
}

PmuSnapshot ReadPmu(const Machine& machine) {
  PmuSnapshot s;
  const HwCounters& c = machine.counters();
  s.cycles = machine.Now();
  s.instructions = c.instructions;
  s.l1i_accesses = c.l1i_accesses;
  s.l1i_misses = c.l1i_misses;
  s.l1d_accesses = c.l1d_accesses;
  s.l1d_misses = c.l1d_misses;
  s.l2_accesses = c.l2_accesses;
  s.l2_misses = c.l2_misses;
  s.branches = c.branches;
  s.branch_mispredicts = c.branch_mispredicts;
  s.mem_stall_cycles = c.mem_stall_cycles;
  return s;
}

std::string FormatPmuDelta(const PmuSnapshot& d, const ClockSpec& clock) {
  char buf[256];
  std::string out;
  const auto line = [&](const char* name, std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "  %-22s %12llu\n", name,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  line("cycles", d.cycles);
  std::snprintf(buf, sizeof(buf), "  %-22s %12.2f\n", "micros", clock.ToMicros(d.cycles));
  out += buf;
  line("instructions", d.instructions);
  line("l1i_misses", d.l1i_misses);
  line("l1d_misses", d.l1d_misses);
  line("l2_accesses", d.l2_accesses);
  line("l2_misses", d.l2_misses);
  line("branches", d.branches);
  line("branch_mispredicts", d.branch_mispredicts);
  line("mem_stall_cycles", d.mem_stall_cycles);
  if (d.instructions != 0) {
    std::snprintf(buf, sizeof(buf), "  %-22s %12.2f\n", "cpi",
                  static_cast<double>(d.cycles) / static_cast<double>(d.instructions));
    out += buf;
  }
  if (d.cycles != 0) {
    std::snprintf(buf, sizeof(buf), "  %-22s %11.1f%%\n", "stall_fraction",
                  100.0 * static_cast<double>(d.mem_stall_cycles) /
                      static_cast<double>(d.cycles));
    out += buf;
  }
  return out;
}

}  // namespace pmk
