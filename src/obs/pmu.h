// PMU facade: ARM1136-style event counters with snapshot/delta semantics.
//
// The paper measures with the ARM1136 performance monitoring unit: a cycle
// counter plus two configurable event counters (cache misses, stalls,
// mispredicts). The modelled machine keeps all interesting events counting
// simultaneously in monotonic hardware counters (hw::Machine::counters());
// this facade packages them into the snapshot/delta idiom of PMU-based
// measurement: read CCNT and the event counters before and after a region,
// subtract.
//
// Reading a snapshot charges no modelled cycles (a real PMU read costs a few
// MCR instructions; the paper's measurements subtract that overhead out).

#ifndef SRC_OBS_PMU_H_
#define SRC_OBS_PMU_H_

#include <string>

#include "src/hw/machine.h"

namespace pmk {

struct PmuSnapshot {
  Cycles cycles = 0;                    // CCNT
  std::uint64_t instructions = 0;       // instructions executed
  std::uint64_t l1i_accesses = 0;       // I-cache line lookups
  std::uint64_t l1i_misses = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_accesses = 0;        // L1-miss refills reaching the L2
  std::uint64_t l2_misses = 0;
  std::uint64_t branches = 0;           // charged branch events
  std::uint64_t branch_mispredicts = 0;
  std::uint64_t mem_stall_cycles = 0;   // cycles stalled on refills

  // Counter-wise difference (this - earlier).
  PmuSnapshot operator-(const PmuSnapshot& earlier) const;
};

// Reads all counters at once. Purely observational: no state change, no
// modelled cost.
PmuSnapshot ReadPmu(const Machine& machine);

// Formats a delta as a small human-readable table body: one "name value"
// line per counter, plus derived CPI and miss ratios.
std::string FormatPmuDelta(const PmuSnapshot& delta, const ClockSpec& clock);

}  // namespace pmk

#endif  // SRC_OBS_PMU_H_
