#include "src/obs/tail_observatory.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace pmk::obs {

double TailObservatory::Row::headroom() const {
  if (bound == 0 || hist.empty() || hist.max() == 0) {
    return 0;
  }
  return static_cast<double>(bound) / static_cast<double>(hist.max());
}

void TailObservatory::SetBound(const std::string& config, Cycles bound) {
  std::lock_guard<std::mutex> lock(mu_);
  bounds_[config] = bound;
}

void TailObservatory::SetUnenforced(const std::string& scenario) {
  std::lock_guard<std::mutex> lock(mu_);
  unenforced_[scenario] = true;
}

void TailObservatory::Touch(const std::string& config, const std::string& scenario) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_[Key{config, scenario}];
}

void TailObservatory::Record(const std::string& config, const std::string& scenario,
                             Cycles latency) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_[Key{config, scenario}].hist.Record(latency);
}

void TailObservatory::RecordHistogram(const std::string& config,
                                      const std::string& scenario,
                                      const LatencyHistogram& hist) {
  if (hist.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  cells_[Key{config, scenario}].hist.Merge(hist);
}

void TailObservatory::RecordIrqCounters(const std::string& config,
                                        const std::string& scenario,
                                        std::uint64_t spurious_acks,
                                        std::uint64_t coalesced_asserts) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[Key{config, scenario}];
  cell.spurious_acks += spurious_acks;
  cell.coalesced_asserts += coalesced_asserts;
}

std::vector<TailObservatory::Row> TailObservatory::Rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> rows;
  rows.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    Row row;
    row.config = key.config;
    row.scenario = key.scenario;
    row.hist = cell.hist;
    row.spurious_acks = cell.spurious_acks;
    row.coalesced_asserts = cell.coalesced_asserts;
    const auto bit = bounds_.find(key.config);
    row.bound = bit == bounds_.end() ? 0 : bit->second;
    row.enforced = unenforced_.find(key.scenario) == unenforced_.end();
    rows.push_back(std::move(row));
  }
  return rows;  // std::map iteration is already (config, scenario) sorted
}

bool TailObservatory::AnyExceedance() const {
  for (const Row& row : Rows()) {
    if (row.enforced && row.exceeded()) {
      return true;
    }
  }
  return false;
}

std::string TailObservatory::RenderTable() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %-14s %-24s %7s %8s %8s %8s %8s %8s %9s %s\n",
                "config", "scenario", "n", "p50", "p90", "p99", "max", "bound",
                "headroom", "status");
  out += buf;
  for (const Row& row : Rows()) {
    const LatencyHistogram::Summary s = row.hist.Summarize();
    char bound_buf[32];
    if (row.bound == 0) {
      std::snprintf(bound_buf, sizeof(bound_buf), "%8s", "-");
    } else {
      std::snprintf(bound_buf, sizeof(bound_buf), "%8llu",
                    static_cast<unsigned long long>(row.bound));
    }
    char head_buf[32];
    if (row.headroom() == 0) {
      std::snprintf(head_buf, sizeof(head_buf), "%9s", "-");
    } else {
      std::snprintf(head_buf, sizeof(head_buf), "%8.2fx", row.headroom());
    }
    const char* status = "ok";
    if (row.hist.empty()) {
      status = "no-irqs";
    } else if (row.exceeded()) {
      status = row.enforced ? "EXCEEDED" : "info-exceeded";
    } else if (!row.enforced) {
      status = "info";
    }
    std::snprintf(buf, sizeof(buf), "  %-14s %-24s %7llu %8llu %8llu %8llu %8llu %s %s %s\n",
                  row.config.c_str(), row.scenario.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p90),
                  static_cast<unsigned long long>(s.p99),
                  static_cast<unsigned long long>(s.max), bound_buf, head_buf, status);
    out += buf;
  }
  return out;
}

void TailObservatory::WriteCsv(std::ostream& os) const {
  os << "config,scenario,count,min,p50,p90,p99,max,bound,headroom,enforced,exceeded,"
        "spurious_acks,coalesced_asserts\n";
  for (const Row& row : Rows()) {
    const LatencyHistogram::Summary s = row.hist.Summarize();
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "%s,%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.4f,%d,%d,%llu,%llu\n",
                  row.config.c_str(), row.scenario.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.min),
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p90),
                  static_cast<unsigned long long>(s.p99),
                  static_cast<unsigned long long>(s.max),
                  static_cast<unsigned long long>(row.bound), row.headroom(),
                  row.enforced ? 1 : 0, row.exceeded() ? 1 : 0,
                  static_cast<unsigned long long>(row.spurious_acks),
                  static_cast<unsigned long long>(row.coalesced_asserts));
    os << buf;
  }
}

void TailObservatory::WriteJsonl(std::ostream& os) const {
  for (const Row& row : Rows()) {
    const LatencyHistogram::Summary s = row.hist.Summarize();
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"config\":\"%s\",\"scenario\":\"%s\",\"count\":%llu,"
                  "\"min\":%llu,\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,"
                  "\"max\":%llu,\"bound\":%llu,\"headroom\":%.4f,"
                  "\"enforced\":%s,\"exceeded\":%s,"
                  "\"spurious_acks\":%llu,\"coalesced_asserts\":%llu}\n",
                  row.config.c_str(), row.scenario.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.min),
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p90),
                  static_cast<unsigned long long>(s.p99),
                  static_cast<unsigned long long>(s.max),
                  static_cast<unsigned long long>(row.bound), row.headroom(),
                  row.enforced ? "true" : "false", row.exceeded() ? "true" : "false",
                  static_cast<unsigned long long>(row.spurious_acks),
                  static_cast<unsigned long long>(row.coalesced_asserts));
    os << buf;
  }
}

void TailSink::Flush() {
  if (flushed_ || observatory_ == nullptr) {
    return;
  }
  observatory_->Touch(config_, scenario_);
  observatory_->RecordHistogram(config_, scenario_, hist_);
  flushed_ = true;
}

TailSink::~TailSink() { Flush(); }

}  // namespace pmk::obs
