// The interrupt-response tail observatory.
//
// The paper proves a *worst-case* interrupt-response bound; the observatory
// tells the throughput-vs-tail story around it. Every modelled IRQ
// assert->deliver span observed by a sweep, a campaign mode or a TraceSink is
// accumulated into a LatencyHistogram keyed by (kernel config, scenario), and
// each config carries the statically analyzed
// WcetAnalyzer::InterruptResponseBound() for that kernel. The report then
// shows observed p50/p90/p99/max against the bound with a headroom ratio
// (bound / observed max), and AnyExceedance() drives a loud nonzero process
// exit when an *enforced* scenario ever beats the bound — soundness of the
// analysis, checked continuously instead of once per paper figure.
//
// Enforcement is per-scenario: canonical sweep and campaign latencies are
// kernel-induced and must stay under the bound; storm-mode latencies include
// device-side masking windows the kernel analysis deliberately excludes, so
// those rows are recorded and reported but not enforced.
//
// Like the rest of src/obs, the observatory is an observer, never an input:
// it is fed copies of histograms already collected on the deterministic
// path, so attaching it cannot perturb a campaign CSV or golden report.

#ifndef SRC_OBS_TAIL_OBSERVATORY_H_
#define SRC_OBS_TAIL_OBSERVATORY_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/hw/cycles.h"
#include "src/obs/histogram.h"
#include "src/obs/trace_sink.h"

namespace pmk::obs {

class TailObservatory {
 public:
  struct Row {
    std::string config;    // kernel-config label ("after", "after-pinned", ...)
    std::string scenario;  // scenario label ("sweep/retype", "campaign/storm", ...)
    LatencyHistogram hist;
    Cycles bound = 0;      // InterruptResponseBound for |config|; 0 = unknown
    bool enforced = true;  // exceedance counts toward AnyExceedance()

    // Controller-side robustness counters for the scenario (see
    // InterruptController): acks absorbed with no pending line, and asserts
    // coalesced into an already-pending one. Saturating device rings drive
    // the coalesce count; both are exported to CSV/JSONL (not the table).
    std::uint64_t spurious_acks = 0;
    std::uint64_t coalesced_asserts = 0;

    bool exceeded() const { return bound != 0 && hist.max() > bound; }
    // bound / observed-max; 0 when either side is missing.
    double headroom() const;
  };

  // Associates the analyzed bound with every present and future row of
  // |config|. Thread-safe, idempotent.
  void SetBound(const std::string& config, Cycles bound);

  // Marks rows of |scenario| (any config) as informational: recorded and
  // reported, but exceedance does not fail the run.
  void SetUnenforced(const std::string& scenario);

  // Ensures the (config, scenario) row exists even if no IRQ ever fires, so
  // reports show an explicit n=0 row instead of silently omitting it.
  void Touch(const std::string& config, const std::string& scenario);

  void Record(const std::string& config, const std::string& scenario, Cycles latency);
  void RecordHistogram(const std::string& config, const std::string& scenario,
                       const LatencyHistogram& hist);

  // Accumulates interrupt-controller robustness counters into the row (the
  // caller harvests InterruptController::spurious_acks()/coalesced_asserts()
  // deltas on the deterministic path, like the histograms).
  void RecordIrqCounters(const std::string& config, const std::string& scenario,
                         std::uint64_t spurious_acks, std::uint64_t coalesced_asserts);

  // Rows sorted by (config, scenario). Thread-safe snapshot.
  std::vector<Row> Rows() const;

  bool AnyExceedance() const;

  // Aligned bound-vs-observed table; modelled cycles only, so output is
  // golden-able. Returns the rendered text.
  std::string RenderTable() const;
  // config,scenario,count,min,p50,p90,p99,max,bound,headroom,enforced,
  // exceeded,spurious_acks,coalesced_asserts
  void WriteCsv(std::ostream& os) const;
  // One JSON object per row (same fields as the CSV).
  void WriteJsonl(std::ostream& os) const;

 private:
  struct Key {
    std::string config;
    std::string scenario;
    bool operator<(const Key& o) const {
      return config != o.config ? config < o.config : scenario < o.scenario;
    }
  };
  struct Cell {
    LatencyHistogram hist;
    std::uint64_t spurious_acks = 0;
    std::uint64_t coalesced_asserts = 0;
  };

  mutable std::mutex mu_;
  std::map<Key, Cell> cells_;
  std::map<std::string, Cycles> bounds_;        // by config
  std::map<std::string, bool> unenforced_;      // by scenario
};

// TraceSink adapter: harvests kIrqDeliver response latencies (arg1) from a
// live Runner/System trace stream into an observatory cell. Zero modelled
// cycle cost, like every sink.
class TailSink : public TraceSink {
 public:
  TailSink(TailObservatory* observatory, std::string config, std::string scenario)
      : observatory_(observatory), config_(std::move(config)),
        scenario_(std::move(scenario)) {}

  void OnEvent(const TraceEvent& event) override {
    if (event.kind == TraceEventKind::kIrqDeliver) {
      hist_.Record(static_cast<Cycles>(event.arg1));
    }
  }

  const LatencyHistogram& hist() const { return hist_; }

  // Merges everything seen so far into the observatory (call after the run;
  // also invoked by the destructor).
  void Flush();
  ~TailSink() override;

 private:
  TailObservatory* observatory_;
  std::string config_;
  std::string scenario_;
  LatencyHistogram hist_;
  bool flushed_ = false;
};

}  // namespace pmk::obs

#endif  // SRC_OBS_TAIL_OBSERVATORY_H_
