// Structured kernel event tracing: the TraceSink interface.
//
// Producers (the kir executor, the kernel entry points, the interrupt
// controller and the sim runner) emit TraceEvents through a nullable
// TraceSink pointer. With no sink attached the instrumentation is a null
// pointer test; in neither case does it charge modelled cycles — event
// timestamps are read from the machine's cycle counter, never advanced by it,
// the analogue of an on-chip trace unit (ETM) observing the PMU.
//
// This header is deliberately dependency-free (hw/cycles.h only) so that the
// hardware layer can emit events without linking against the obs library.

#ifndef SRC_OBS_TRACE_SINK_H_
#define SRC_OBS_TRACE_SINK_H_

#include <cstdint>
#include <vector>

#include "src/hw/cycles.h"

namespace pmk {

enum class TraceEventKind : std::uint8_t {
  kKernelEntry,       // exception vector entered; name = entry function
  kKernelExit,        // kernel path ended (back to user); name = entry function
  kSyscallOp,         // syscall dispatch; name = op, id = op code
  kBlockCost,         // one basic-block execution closed out; id = BlockId,
                      // arg0 = cycles, arg1 = L1I misses, arg2 = L1D misses
  kPreemptPointHit,   // a preemption-point block executed; id = BlockId
  kPreemptPointTaken, // its preempted exit edge was followed; id = BlockId
  kIrqAssert,         // interrupt line newly asserted; id = line
  kIrqDeliver,        // kernel acknowledged the line; id = line,
                      // arg0 = assert cycle, arg1 = response latency (cycles)
  kUserCompute,       // a user compute burst completed; id = thread ordinal,
                      // arg0 = burst cycles, arg1 = TCB address
  kThreadSwitch,      // current thread changed; id = thread ordinal,
                      // arg1 = TCB address (0 = idle)
  kIrqSpuriousAck,    // ack of a non-pending line; id = line
  kIrqCoalesced,      // re-assert of an already-pending line; id = line,
                      // arg0 = surviving (first) assert cycle
  kFaultInject,       // fault injector fired; id = line,
                      // arg0 = injection ordinal, arg1 = burst length
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kKernelEntry;
  Cycles cycle = 0;           // machine cycle counter at the event
  const char* name = nullptr; // static-lifetime label (block/function/op name)
  std::uint32_t id = 0;       // kind-specific: block id, irq line, op, thread
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Records every event verbatim; the test and analysis workhorse.
class EventLog : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

// Fans one producer out to several consumers (e.g. a Chrome-trace writer and
// a block profiler observing the same run).
class MultiSink : public TraceSink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void Add(TraceSink* sink) { sinks_.push_back(sink); }

  void OnEvent(const TraceEvent& event) override {
    for (TraceSink* s : sinks_) {
      s->OnEvent(event);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace pmk

#endif  // SRC_OBS_TRACE_SINK_H_
