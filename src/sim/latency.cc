#include "src/sim/latency.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace pmk {

namespace {

// Modelled IRQ assert->deliver spans, process-wide. Recorded after the
// modelled run from latencies the kernel already logged — zero modelled
// cycles, no feedback into any measurement.
obs::ValueHistogram& IrqResponseHist() {
  static obs::ValueHistogram h("sim.irq.response_cycles");
  return h;
}

}  // namespace

Cycles MeasureEntry(System& sys, const std::function<void()>& enter,
                    const std::function<void()>& reset, const MeasureOptions& opts) {
  Cycles worst = 0;
  for (std::uint32_t r = 0; r < std::max<std::uint32_t>(opts.runs, 1); ++r) {
    if (opts.pollute_caches) {
      sys.machine().PolluteCaches();
    }
    const Cycles t0 = sys.machine().Now();
    enter();
    const Cycles d = sys.machine().Now() - t0;
    worst = std::max(worst, d);
    if (opts.histogram != nullptr) {
      opts.histogram->Record(d);
    }
    if (reset) {
      reset();
    }
  }
  return worst;
}

Cycles MeasureIrqDelivery(System& sys, const MeasureOptions& opts) {
  Cycles worst = 0;
  for (std::uint32_t r = 0; r < std::max<std::uint32_t>(opts.runs, 1); ++r) {
    if (opts.pollute_caches) {
      sys.machine().PolluteCaches();
    }
    sys.machine().irq().Unmask(InterruptController::kTimerLine);
    sys.machine().irq().Assert(InterruptController::kTimerLine, sys.machine().Now());
    const Cycles t0 = sys.machine().Now();
    sys.kernel().HandleIrqEntry();
    const Cycles d = sys.machine().Now() - t0;
    worst = std::max(worst, d);
    if (opts.histogram != nullptr) {
      opts.histogram->Record(d);
    }
    IrqResponseHist().Record(d);
  }
  return worst;
}

LongOpResult RunLongOpWithTimer(System& sys, SysOp op, std::uint32_t cptr,
                                const SyscallArgs& args, Cycles timer_period) {
  LongOpResult res;
  sys.kernel().ClearIrqLatencies();
  sys.machine().timer().set_period(timer_period);
  sys.machine().timer().Restart(sys.machine().Now());
  const Cycles t0 = sys.machine().Now();
  for (;;) {
    const KernelExit e = sys.kernel().Syscall(op, cptr, args);
    if (e == KernelExit::kPreempted) {
      res.preemptions++;
      // The preempted entry already serviced (acked + masked) the interrupt;
      // model the handler finishing and re-enabling the line.
      sys.machine().irq().Unmask(InterruptController::kTimerLine);
      continue;
    }
    break;
  }
  // An interrupt that arrived during a non-preemptible stretch is still
  // pending at kernel exit; the user is interrupted immediately, and the
  // response time includes the whole blackout.
  if (sys.machine().irq().AnyPending()) {
    sys.kernel().HandleIrqEntry();
    sys.machine().irq().Unmask(InterruptController::kTimerLine);
  }
  sys.machine().timer().set_period(0);
  res.total_cycles = sys.machine().Now() - t0;
  for (Cycles c : sys.kernel().irq_latencies()) {
    res.max_irq_latency = std::max(res.max_irq_latency, c);
    res.irq_hist.Record(c);
  }
  IrqResponseHist().Merge(res.irq_hist);
  return res;
}

void RecordIrqControllerMetrics(std::uint64_t spurious_acks,
                                std::uint64_t coalesced_asserts) {
  static obs::Counter spurious("sim.irq.spurious_acks");
  static obs::Counter coalesced("sim.irq.coalesced_asserts");
  if (spurious_acks > 0) {
    spurious.Inc(spurious_acks);
  }
  if (coalesced_asserts > 0) {
    coalesced.Inc(coalesced_asserts);
  }
}

}  // namespace pmk
