// Measurement helpers: worst-case-search execution timing (paper Section 5.4)
// and interrupt-response measurement.

#ifndef SRC_SIM_LATENCY_H_
#define SRC_SIM_LATENCY_H_

#include <cstdint>
#include <functional>

#include "src/obs/histogram.h"
#include "src/sim/workload.h"

namespace pmk {

struct MeasureOptions {
  bool pollute_caches = true;  // dirty caches before each run (Section 5.4)
  std::uint32_t runs = 1;      // take the max over this many runs
  // Optional: record every run's duration, not just the max, so callers can
  // report the full latency distribution (p50/p90/p99) alongside it.
  LatencyHistogram* histogram = nullptr;
};

// Times one charged kernel entry under the given options. |enter| performs
// exactly one kernel entry (e.g. a Syscall call) and is invoked once per run;
// |reset| (optional) restores the scenario between runs. Returns the maximum
// observed duration in cycles.
Cycles MeasureEntry(System& sys, const std::function<void()>& enter,
                    const std::function<void()>& reset, const MeasureOptions& opts);

// Asserts the timer IRQ and immediately delivers it from userland (the
// best-case interrupt path); returns the measured response latency.
Cycles MeasureIrqDelivery(System& sys, const MeasureOptions& opts);

// Runs a (possibly preempted and restarted) long operation to completion:
// re-issues the syscall while it keeps returning kPreempted, servicing the
// pending interrupt after each preemption. Returns the number of preemptions
// and, via |max_latency|, the worst interrupt response observed.
struct LongOpResult {
  std::uint32_t preemptions = 0;
  Cycles max_irq_latency = 0;
  Cycles total_cycles = 0;
  LatencyHistogram irq_hist;  // every observed interrupt response latency
};
LongOpResult RunLongOpWithTimer(System& sys, SysOp op, std::uint32_t cptr,
                                const SyscallArgs& args, Cycles timer_period);

// Surfaces interrupt-controller robustness counters into the process-wide
// telemetry registry as "sim.irq.spurious_acks" / "sim.irq.coalesced_asserts"
// counter rows. Call with per-run DELTAS after a modelled run completes —
// observer only, zero modelled cycles.
void RecordIrqControllerMetrics(std::uint64_t spurious_acks, std::uint64_t coalesced_asserts);

}  // namespace pmk

#endif  // SRC_SIM_LATENCY_H_
