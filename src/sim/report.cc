#include "src/sim/report.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <ostream>

namespace pmk {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::Print() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row, bool left_first) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c == 0 && left_first) {
        std::printf("%-*s", static_cast<int>(width[c]), row[c].c_str());
      } else {
        std::printf("  %*s", static_cast<int>(width[c]), row[c].c_str());
      }
    }
    std::printf("\n");
  };
  print_row(headers_, true);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    print_row(row, true);
  }
}

namespace {

std::string CsvCell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  const auto print_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << CsvCell(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv() const { PrintCsv(std::cout); }

std::string Table::Us(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", micros);
  return buf;
}

std::string Table::Cyc(std::uint64_t cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(cycles));
  return buf;
}

std::string Table::Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", r);
  return buf;
}

std::string Table::Pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", frac * 100.0);
  return buf;
}

std::string Bar(double value, double max, int width) {
  const int n = max > 0 ? static_cast<int>(value / max * width + 0.5) : 0;
  return std::string(static_cast<std::size_t>(std::clamp(n, 0, width)), '#');
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return "";
}

}  // namespace pmk
