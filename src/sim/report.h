// Table/figure formatting for the benchmark binaries: fixed-width text
// tables matching the layout of the paper's tables, plus simple ASCII bar
// charts for the figures.

#ifndef SRC_SIM_REPORT_H_
#define SRC_SIM_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pmk {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Prints to stdout with a separator under the header.
  void Print() const;
  // RFC-4180-style CSV (header row first; cells containing comma, quote or
  // newline are quoted). The bench binaries expose this via --csv.
  void PrintCsv(std::ostream& os) const;
  void PrintCsv() const;  // to stdout

  static std::string Us(double micros);          // "123.4"
  static std::string Cyc(std::uint64_t cycles);  // "123456"
  static std::string Ratio(double r);            // "3.26"
  static std::string Pct(double frac);           // "46%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal ASCII bar: value scaled to |width| characters at |max|.
std::string Bar(double value, double max, int width = 40);

// Tiny argv helpers for the bench binaries' output flags.
// True if |flag| (exact match, e.g. "--csv") appears in argv.
bool HasFlag(int argc, char** argv, const std::string& flag);
// Value of the first "--name=value" argument matching |prefix| (e.g.
// "--trace-json="); empty string if absent.
std::string FlagValue(int argc, char** argv, const std::string& prefix);

}  // namespace pmk

#endif  // SRC_SIM_REPORT_H_
