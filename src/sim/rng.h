// Deterministic PRNG shared by the fault campaigns and the parallel engine.
//
// SplitMix64 (Steele/Lea/Flood): 64-bit state, one multiply-xorshift round
// per draw. Chosen over std::mt19937 because its output sequence is fixed by
// the algorithm itself, not by library implementation details — a report for
// a given seed must be byte-identical across standard libraries and
// platforms, whether it was produced serially or by a sharded parallel run.

#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace pmk {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    return Mix64(z);
  }

  // Uniform draw in [0, bound). |bound| must be nonzero. The modulo bias is
  // ~bound/2^64 — irrelevant for scheduling fuzz, and keeping the draw a
  // single Next() call makes the consumed-stream position easy to reason
  // about when reproducing a scenario by hand.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Derives the |stream_id|-th independent child stream without advancing
  // this generator. This is the sharding primitive of the parallel engine:
  // every job derives its stream from (campaign seed, job ordinal) alone, so
  // the values a job draws are a pure function of its ordinal — never of
  // which worker thread ran it or in what order jobs finished. Running with
  // --jobs N therefore consumes exactly the same per-job sequences as
  // --jobs 1. The child seed passes through the output finalizer, so child
  // streams do not overlap the parent's plain additive state walk.
  SplitMix64 Split(std::uint64_t stream_id) const {
    return SplitMix64(Mix64(state_ + 0x9E3779B97F4A7C15ull * (stream_id + 1)));
  }

  // The SplitMix64 output finalizer as a pure function.
  static std::uint64_t Mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace pmk

#endif  // SRC_SIM_RNG_H_
