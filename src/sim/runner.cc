#include "src/sim/runner.h"

#include "src/obs/trace_sink.h"

namespace pmk {

void Runner::SetProgram(TcbObj* t, std::vector<UserStep> program, bool loop) {
  ThreadProgram p;
  p.steps = std::move(program);
  p.loop = loop;
  programs_[t] = std::move(p);
}

std::uint64_t Runner::StepsCompleted(const TcbObj* t) const {
  const auto it = programs_.find(t);
  return it == programs_.end() ? 0 : it->second.completed;
}

void Runner::DeliverIrq() {
  // Interrupts are taken immediately while userland runs.
  sys_->kernel().HandleIrqEntry();
  ReenableUnboundLines();
}

std::uint32_t Runner::ThreadOrdinal(const TcbObj* t) {
  const auto [it, inserted] = ordinals_.emplace(t, static_cast<std::uint32_t>(ordinals_.size()));
  (void)inserted;
  return it->second;
}

void Runner::NoteCurrentThread() {
  if (sink_ == nullptr) {
    return;
  }
  const TcbObj* cur = sys_->kernel().current();
  if (cur == last_traced_) {
    return;
  }
  last_traced_ = cur;
  TraceEvent ev;
  ev.kind = TraceEventKind::kThreadSwitch;
  ev.cycle = sys_->machine().Now();
  ev.name = cur == sys_->kernel().idle() ? "idle" : "thread";
  ev.id = ThreadOrdinal(cur);
  ev.arg1 = cur == sys_->kernel().idle() ? 0 : cur->base;
  sink_->OnEvent(ev);
}

void Runner::ReenableUnboundLines() {
  // The kernel masks a line when it services it; a bound line is re-enabled
  // by its handler's IRQAck. For unbound lines the runner plays the driver
  // and re-enables immediately, so periodic sources keep firing.
  for (std::uint32_t line = 0; line < InterruptController::kNumLines; ++line) {
    if (sys_->kernel().irq_binding(line) == nullptr) {
      sys_->machine().irq().Unmask(line);
    }
  }
}

std::uint64_t Runner::Run(Cycles duration) {
  Machine& m = sys_->machine();
  Kernel& k = sys_->kernel();
  const Cycles end = m.Now() + duration;
  std::uint64_t total_steps = 0;

  while (m.Now() < end) {
    if (disturbance_) {
      disturbance_(m.Now());
    }
    NoteCurrentThread();
    if (m.irq().AnyPending() && k.current() != k.idle()) {
      DeliverIrq();
      continue;
    }
    TcbObj* cur = k.current();
    if (cur == k.idle()) {
      // Fast-forward: nothing to run until the next timer firing (if any).
      if (m.timer().period() == 0) {
        break;  // nothing will ever wake the system
      }
      m.RawCycles(m.timer().period() / 4 + 1);
      if (m.irq().AnyPending()) {
        DeliverIrq();
      }
      continue;
    }
    const auto it = programs_.find(cur);
    if (it == programs_.end()) {
      // No program: the thread just burns cycles (best-effort background).
      m.RawCycles(500);
      continue;
    }
    ThreadProgram& p = it->second;
    if (p.pc >= p.steps.size()) {
      if (!p.loop) {
        // Program finished: the thread yields forever.
        k.Syscall(SysOp::kYield, 0, SyscallArgs{});
        if (k.current() == cur) {
          m.RawCycles(200);  // nothing else runnable; idle-spin
        }
        continue;
      }
      p.pc = 0;
    }
    const UserStep* step = &p.steps[p.pc];
    bool dynamic = false;
    if (step->kind == UserStep::Kind::kDynamic) {
      dynamic = true;
      if (!p.dyn_active.has_value()) {
        std::optional<UserStep> next = step->gen ? step->gen(*sys_) : std::nullopt;
        if (!next.has_value()) {
          // Generator exhausted: the dynamic step completes like any other.
          p.pc++;
          p.completed++;
          total_steps++;
          if (hook_) {
            hook_(cur, p.pc - 1);
          }
          continue;
        }
        p.dyn_active = std::move(next);
      }
      step = &*p.dyn_active;
    }
    bool step_done = false;
    switch (step->kind) {
      case UserStep::Kind::kCompute: {
        const Cycles left = p.compute_left > 0 ? p.compute_left : step->compute;
        if (compute_slice_ > 0 && left > compute_slice_) {
          // Partial burst: burn one slice, then loop back so devices and
          // pending interrupts are re-checked before the next slice.
          m.RawCycles(compute_slice_);
          p.compute_left = left - compute_slice_;
          continue;
        }
        m.RawCycles(left);
        p.compute_left = 0;
        if (sink_ != nullptr) {
          TraceEvent ev;
          ev.kind = TraceEventKind::kUserCompute;
          ev.cycle = m.Now();
          ev.name = "compute";
          ev.id = ThreadOrdinal(cur);
          ev.arg0 = step->compute;
          ev.arg1 = cur->base;
          sink_->OnEvent(ev);
        }
        step_done = true;
        break;
      }
      case UserStep::Kind::kSyscall: {
        const KernelExit e = k.Syscall(step->op, step->cptr, step->args);
        if (e == KernelExit::kPreempted) {
          // Restartable system call: keep the program counter (and any
          // in-flight dynamic sub-step) in place; the thread re-issues the
          // same syscall when it next runs. The interrupt was serviced (and
          // its line masked) inside the entry.
          ReenableUnboundLines();
          p.retry = true;
          break;
        }
        p.retry = false;
        step_done = true;
        break;
      }
      case UserStep::Kind::kDynamic:
        // A generator must yield concrete sub-steps; a nested dynamic step
        // completes as a no-op rather than recursing.
        step_done = true;
        break;
    }
    if (!step_done) {
      continue;
    }
    if (dynamic) {
      p.dyn_active.reset();  // next visit consults the generator again
    } else {
      p.pc++;
    }
    p.completed++;
    total_steps++;
    if (hook_) {
      hook_(cur, dynamic ? p.pc : (p.pc == 0 ? p.steps.size() - 1 : p.pc - 1));
    }
  }
  return total_steps;
}

}  // namespace pmk
