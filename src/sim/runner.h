// User-program runner: scripted userland on top of the kernel.
//
// Each thread gets a program — a sequence of compute bursts and system calls
// — and the runner drives the whole system the way hardware would: the
// current thread executes its next step, pending interrupts preempt userland
// immediately, preempted (restartable) system calls are re-issued when the
// thread runs again, and idle time fast-forwards to the next timer firing.
// This is the substrate for the mixed-criticality example and for
// integration tests that need realistic multi-threaded schedules.

#ifndef SRC_SIM_RUNNER_H_
#define SRC_SIM_RUNNER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/sim/workload.h"

namespace pmk {

class TraceSink;

struct UserStep {
  enum class Kind : std::uint8_t { kCompute, kSyscall, kDynamic };
  Kind kind = Kind::kCompute;
  Cycles compute = 0;  // kCompute: cycles of user-mode work

  // kSyscall:
  SysOp op = SysOp::kYield;
  std::uint32_t cptr = 0;
  SyscallArgs args;

  // kDynamic: a generator consulted each time the thread is scheduled at this
  // step. It returns the next concrete sub-step (kCompute or kSyscall) to
  // execute in place, or nullopt to complete the dynamic step and advance.
  // This is how event-driven threads (e.g. the two-phase NIC driver in
  // src/load) script themselves against live system state: the generator may
  // inspect — but not enter — the kernel. A preempted sub-syscall is
  // re-issued without re-consulting the generator, preserving the
  // restartable-syscall contract.
  using Generator = std::function<std::optional<UserStep>(System&)>;
  Generator gen;

  static UserStep Compute(Cycles c) {
    UserStep s;
    s.kind = Kind::kCompute;
    s.compute = c;
    return s;
  }
  static UserStep Syscall(SysOp op, std::uint32_t cptr, SyscallArgs args = {}) {
    UserStep s;
    s.kind = Kind::kSyscall;
    s.op = op;
    s.cptr = cptr;
    s.args = args;
    return s;
  }
  static UserStep Dynamic(Generator g) {
    UserStep s;
    s.kind = Kind::kDynamic;
    s.gen = std::move(g);
    return s;
  }
};

class Runner {
 public:
  explicit Runner(System* sys) : sys_(sys) {}

  // Installs |program| for |t|. When |loop| is set the program restarts from
  // the beginning after its last step.
  void SetProgram(TcbObj* t, std::vector<UserStep> program, bool loop = true);

  // Optional per-step hook, called after each completed step with the thread
  // and its step index (before advancing).
  void SetStepHook(std::function<void(TcbObj*, std::size_t)> hook) { hook_ = std::move(hook); }

  // Attaches a sink for user-side events: compute bursts (kUserCompute) and
  // thread switches (kThreadSwitch). Kernel-side events come from
  // System::AttachTraceSink; attach the same sink to both for a full trace.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  // Optional device-side disturbance, called with the current cycle at the
  // top of every scheduling iteration — i.e. at every point where hardware
  // could act while userland runs. Fault campaigns use this to assert IRQ
  // storms and spurious acks against the controller; the hook must not enter
  // the kernel itself (the runner delivers any pending interrupt right after).
  void SetDisturbance(std::function<void(Cycles)> hook) { disturbance_ = std::move(hook); }

  // Opt-in compute slicing: a kCompute burst longer than |slice| advances the
  // machine in |slice|-cycle chunks, re-checking devices and pending
  // interrupts between chunks, instead of as one atomic block. This bounds
  // the latency a user-mode think burst can add to modelled IRQ delivery —
  // the saturation workloads need it so client compute never dominates the
  // measured response tail. 0 (the default) keeps the historical atomic
  // behaviour; traces and hooks still fire once, at burst completion.
  void SetComputeSliceCycles(Cycles slice) { compute_slice_ = slice; }

  // Runs the system for |duration| modelled cycles (approximately: the last
  // step may overshoot). Returns the number of steps completed.
  std::uint64_t Run(Cycles duration);

  // Steps completed by |t| so far.
  std::uint64_t StepsCompleted(const TcbObj* t) const;

 private:
  struct ThreadProgram {
    std::vector<UserStep> steps;
    bool loop = true;
    std::size_t pc = 0;           // next step
    bool retry = false;           // re-issue the current syscall (restart)
    std::uint64_t completed = 0;
    Cycles compute_left = 0;      // sliced kCompute: cycles still to burn
    std::optional<UserStep> dyn_active;  // in-flight sub-step of a kDynamic step
  };

  // Delivers a pending interrupt from userland.
  void DeliverIrq();
  // Re-enables serviced lines that have no handler endpoint bound.
  void ReenableUnboundLines();

  // Stable small ordinal per TCB for trace track ids (assigned on first use).
  std::uint32_t ThreadOrdinal(const TcbObj* t);
  // Emits kThreadSwitch when the scheduled thread changed since last noted.
  void NoteCurrentThread();

  System* sys_;
  Cycles compute_slice_ = 0;  // 0 = atomic compute bursts (historical)
  std::map<const TcbObj*, ThreadProgram> programs_;
  std::function<void(TcbObj*, std::size_t)> hook_;
  std::function<void(Cycles)> disturbance_;
  TraceSink* sink_ = nullptr;
  std::map<const TcbObj*, std::uint32_t> ordinals_;
  const TcbObj* last_traced_ = nullptr;
};

}  // namespace pmk

#endif  // SRC_SIM_RUNNER_H_
