#include "src/sim/workload.h"

#include <stdexcept>

namespace pmk {

MachineConfig EvalMachine(bool l2_enabled, bool bpred_enabled) {
  MachineConfig mc;
  mc.l2_enabled = l2_enabled;
  mc.bpred.enabled = bpred_enabled;
  return mc;
}

System::System(const KernelConfig& kc, const MachineConfig& mc)
    : kernel_config(kc), machine_config(mc) {
  machine_ = std::make_unique<Machine>(mc);
  kernel_ = std::make_unique<Kernel>(kc, machine_.get());
  // One-level 32-bit cspace: 24 guard bits of zero + 8-bit radix.
  root_ = kernel_->DirectCNode(/*radix_bits=*/8, /*guard_bits=*/24, /*guard_value=*/0);
  if (kc.vspace == VSpaceKind::kAsid) {
    kernel_->DirectRegisterAsidPool(kernel_->DirectAsidPool());
  }
}

std::unique_ptr<System> System::Clone() const {
  std::unique_ptr<System> copy(new System());
  copy->kernel_config = kernel_config;
  copy->machine_config = machine_config;
  copy->machine_ = std::make_unique<Machine>(*machine_);
  copy->kernel_ = kernel_->Clone(copy->machine_.get());
  copy->root_ = copy->kernel_->objects().Get<CNodeObj>(root_->base);
  if (copy->root_ == nullptr) {
    throw std::logic_error("System::Clone: root CNode missing from cloned heap");
  }
  copy->next_slot_ = next_slot_;
  return copy;
}

void System::AttachTraceSink(TraceSink* sink) {
  kernel_->exec().set_trace_sink(sink);
  machine_->irq().set_trace_sink(sink);
}

std::uint32_t System::AddCap(Cap cap, CapSlot* parent) {
  while (next_slot_ < root_->NumSlots() && !root_->slots[next_slot_].IsNull()) {
    next_slot_++;
  }
  if (next_slot_ >= root_->NumSlots()) {
    throw std::runtime_error("System::AddCap: root CNode full");
  }
  kernel_->DirectCap(root_, next_slot_, cap, parent);
  return next_slot_++;
}

TcbObj* System::AddThread(std::uint8_t prio) {
  TcbObj* t = kernel_->DirectTcb(prio, root_);
  return t;
}

std::uint32_t System::AddEndpoint(EndpointObj** out) {
  EndpointObj* ep = kernel_->DirectEndpoint();
  if (out != nullptr) {
    *out = ep;
  }
  Cap cap;
  cap.type = ObjType::kEndpoint;
  cap.obj = ep->base;
  return AddCap(cap);
}

std::uint32_t System::AddUntyped(std::uint8_t size_bits, UntypedObj** out) {
  UntypedObj* ut = kernel_->DirectUntyped(size_bits);
  if (out != nullptr) {
    *out = ut;
  }
  Cap cap;
  cap.type = ObjType::kUntyped;
  cap.obj = ut->base;
  return AddCap(cap);
}

std::uint32_t System::BuildDeepCapSpace(TcbObj* t, Cap target, std::uint32_t levels) {
  if (levels == 0 || levels > 32) {
    throw std::logic_error("BuildDeepCapSpace: levels must be in [1,32]");
  }
  // Chain of |levels| CNodes. The first (root) consumes 32-(levels-1) bits
  // via its guard so that the remaining levels-1 CNodes each consume exactly
  // one bit (radix 1, guard 0) — the Figure 7 shape.
  const std::uint32_t first_bits = 32 - (levels - 1);
  // Root: radix 1, guard first_bits-1 zero bits.
  CNodeObj* first = kernel_->DirectCNode(1, static_cast<std::uint8_t>(first_bits - 1), 0);
  CNodeObj* cn = first;
  for (std::uint32_t i = 1; i < levels; ++i) {
    CNodeObj* next = kernel_->DirectCNode(1, 0, 0);
    Cap link;
    link.type = ObjType::kCNode;
    link.obj = next->base;
    kernel_->DirectCap(cn, 0, link);  // bit 0 at each level
    cn = next;
  }
  kernel_->DirectCap(cn, 0, target);
  t->cspace_root = first->base;
  return 0;  // cptr: all zero bits decode through the chain
}

std::vector<TcbObj*> System::QueueSenders(EndpointObj* ep, std::uint32_t n,
                                          const std::vector<std::uint64_t>& badges,
                                          std::uint8_t prio) {
  std::vector<TcbObj*> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TcbObj* t = AddThread(prio);
    const std::uint64_t badge = badges.empty() ? kBadgeNone : badges[i % badges.size()];
    kernel_->DirectBlockOnSend(t, ep, badge);
    out.push_back(t);
  }
  return out;
}

std::vector<TcbObj*> System::MakeStaleRunQueue(EndpointObj* ep, std::uint32_t n,
                                               std::uint8_t prio) {
  std::vector<TcbObj*> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TcbObj* t = AddThread(prio);
    kernel_->DirectResume(t);  // enqueue
    // Blocks while staying in the run queue: the lazy-scheduling leftover.
    kernel_->DirectBlockOnSend(t, ep, kBadgeNone, /*is_call=*/false,
                               /*leave_in_run_queue=*/true);
    out.push_back(t);
  }
  return out;
}

System::WorstIpc System::BuildWorstCaseIpc() {
  WorstIpc w;
  w.receiver = AddThread(/*prio=*/50);
  w.caller = AddThread(/*prio=*/50);

  EndpointObj* ep = nullptr;
  w.reply_cptr = AddEndpoint(&ep);
  Cap ep_cap;
  ep_cap.type = ObjType::kEndpoint;
  ep_cap.obj = ep->base;

  // Caller's cspace: 32-level decode for the endpoint cap. Receive slot and
  // granted caps live in the shared root so the receiver can accept them.
  w.ep_cptr = BuildDeepCapSpace(w.caller, ep_cap, 32);

  // Receiver waits on the endpoint.
  kernel_->DirectBlockOnRecv(w.receiver, ep);
  w.receiver->cspace_root = root_->base;
  w.receiver->recv_slot = 200;

  // Full-length message plus the maximum number of granted caps. Each extra
  // cap is decoded in the caller's cspace — which is the 32-level chain, so
  // each decode is another worst-case traversal. The chain ends at the
  // endpoint cap; granting it is legal.
  w.args.msg_len = KernelConfig::kMaxMsgWords;
  w.args.n_extra = KernelConfig::kMaxExtraCaps;
  for (std::uint32_t i = 0; i < KernelConfig::kMaxExtraCaps; ++i) {
    w.args.extra_caps[i] = 0;  // decodes through all 32 levels
  }
  kernel_->DirectSetCurrent(w.caller);
  return w;
}

}  // namespace pmk
