// Workload and scenario builders for tests, examples and benchmarks.
//
// A System couples one modelled machine with one kernel instance and offers
// helpers that construct the scenarios of the paper's evaluation: pathological
// capability spaces (Figure 7), deep endpoint queues (Sections 3.3/3.4),
// stale lazy-scheduling run queues (Section 3.1), and the worst-case IPC
// (Section 6.1).

#ifndef SRC_SIM_WORKLOAD_H_
#define SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/kernel/kernel.h"

namespace pmk {

class TraceSink;

namespace engine {
class StateSerializer;  // full-state (de)serialization, src/engine/serialize.h
}

class System {
 public:
  System(const KernelConfig& kernel_config, const MachineConfig& machine_config);

  // Deep-copies the whole simulation state — machine (caches, branch
  // predictor, IRQ controller, timer, cycle/PMU counters) and kernel (object
  // heap with remapped pointers, scheduler, bindings) — sharing only the
  // immutable kernel image. The clone replays cycle-for-cycle identically to
  // the original; src/engine checkpoints are built on this. Trace sinks and
  // fault hooks are not carried over. Must be called between kernel entries.
  std::unique_ptr<System> Clone() const;

  Machine& machine() { return *machine_; }
  Kernel& kernel() { return *kernel_; }

  // Attaches |sink| to every kernel-side event producer: the kir executor
  // (entry/exit, block costs, preemption points) and the interrupt controller
  // (IRQ assertions). Pass nullptr to detach. User-side events additionally
  // need Runner::set_trace_sink.
  void AttachTraceSink(TraceSink* sink);

  // Root CNode: one level consuming all 32 bits (guard 24 bits of zero +
  // 8-bit radix), so plain cptrs are slot indices and the fastpath applies.
  CNodeObj* root() { return root_; }

  // Installs |cap| in the next free root slot; returns its cptr.
  std::uint32_t AddCap(Cap cap, CapSlot* parent = nullptr);
  CapSlot* SlotOf(std::uint32_t cptr) { return &root_->slots[cptr & 0xFF]; }

  // Creates a thread whose cspace is the shared root CNode.
  TcbObj* AddThread(std::uint8_t prio);
  // Creates an endpoint and a root cap for it; returns the cptr.
  std::uint32_t AddEndpoint(EndpointObj** out = nullptr);

  // Figure 7: a chain of |levels| one-bit CNodes ending at |target| (placed
  // in a fresh deep cspace assigned to |t|). Returns the cptr whose decode
  // traverses all |levels| levels. levels in [1, 32].
  std::uint32_t BuildDeepCapSpace(TcbObj* t, Cap target, std::uint32_t levels);

  // Queues |n| threads blocked sending to |ep| with the given badge cycle
  // (badges[i % badges.size()]).
  std::vector<TcbObj*> QueueSenders(EndpointObj* ep, std::uint32_t n,
                                    const std::vector<std::uint64_t>& badges,
                                    std::uint8_t prio = 10);

  // Lazy-scheduling pathology: |n| threads that blocked while remaining in
  // the run queue (only meaningful under SchedulerKind::kLazy).
  std::vector<TcbObj*> MakeStaleRunQueue(EndpointObj* ep, std::uint32_t n,
                                         std::uint8_t prio);

  // The paper's worst-case system call (Section 6.1): a Call through a
  // 32-level cspace, full-length message, three granted caps each decoded
  // through 32 levels, to a receiver that is already waiting.
  struct WorstIpc {
    TcbObj* caller = nullptr;
    TcbObj* receiver = nullptr;
    std::uint32_t ep_cptr = 0;     // caller side: 32-level decode
    std::uint32_t reply_cptr = 0;  // receiver side: root-CNode cptr for ReplyRecv
    SyscallArgs args;
  };
  WorstIpc BuildWorstCaseIpc();

  // A large untyped region plus a root cap for it; returns the cptr.
  std::uint32_t AddUntyped(std::uint8_t size_bits, UntypedObj** out = nullptr);

  KernelConfig kernel_config;
  MachineConfig machine_config;

 private:
  friend class engine::StateSerializer;

  System() = default;  // Clone() and DeserializeSystem() assemble the members

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
  CNodeObj* root_ = nullptr;
  std::uint32_t next_slot_ = 1;  // slot 0 reserved
};

// Machine configuration used throughout the evaluation: i.MX31 defaults with
// the branch predictor and L2 switched per experiment.
MachineConfig EvalMachine(bool l2_enabled, bool bpred_enabled = false);

}  // namespace pmk

#endif  // SRC_SIM_WORKLOAD_H_
