#include "src/wcet/analysis.h"

#include "src/obs/metrics.h"
#include "src/wcet/refmode.h"

namespace pmk {

namespace {

// Analyzer telemetry: memoization effectiveness plus per-stage wall time.
// Pure observers — the analysis result is a function of (image, options)
// regardless of what gets counted.
obs::Counter& MemoHitCounter() {
  static obs::Counter c("wcet.memo.hit");
  return c;
}
obs::Counter& MemoMissCounter() {
  static obs::Counter c("wcet.memo.miss");
  return c;
}
obs::Timer& GraphTimer() {
  static obs::Timer t("wcet.stage.graph_nanos");
  return t;
}
obs::Timer& LoopBoundTimer() {
  static obs::Timer t("wcet.stage.loopbound_nanos");
  return t;
}
obs::Timer& CostTimer() {
  static obs::Timer t("wcet.stage.cost_nanos");
  return t;
}
obs::Timer& IpetTimer() {
  static obs::Timer t("wcet.stage.ipet_nanos");
  return t;
}

}  // namespace

const char* EntryPointName(EntryPoint e) {
  switch (e) {
    case EntryPoint::kSyscall:
      return "System call";
    case EntryPoint::kUndefined:
      return "Undefined instruction";
    case EntryPoint::kPageFault:
      return "Page fault";
    case EntryPoint::kInterrupt:
      return "Interrupt";
  }
  return "?";
}

CostModelOptions BuildCostModelOptions(const KernelImage& image, const AnalysisOptions& options) {
  CostModelOptions cost_opts;
  cost_opts.l2_enabled = options.l2_enabled;
  if (options.l2_kernel_pinning) {
    // The whole kernel (text, data, stack) is way-locked into the L2: any
    // statically-addressed kernel access misses no further than the L2.
    cost_opts.l2_kernel_pinned = true;
    cost_opts.l2_pinned_lo = Program::kTextBase;
    cost_opts.l2_pinned_hi = Program::kStackTop;
  }
  if (options.cache_pinning) {
    const std::size_t capacity = (4096 / cost_opts.line_bytes) * options.pin_ways;
    const PinnedLines pins = SelectPinnedLines(image, cost_opts.line_bytes, capacity);
    cost_opts.pinned_ilines.insert(pins.ilines.begin(), pins.ilines.end());
    cost_opts.pinned_dlines.insert(pins.dlines.begin(), pins.dlines.end());
    // The locked region shrinks the cache available to everything else: the
    // direct-mapped approximation loses the locked ways.
    cost_opts.way_bytes = 4096;  // unchanged: one way is already the model
  }
  return cost_opts;
}

FuncId AnalysisEntryFunc(const KernelImage& image, EntryPoint e) {
  switch (e) {
    case EntryPoint::kSyscall:
      return image.b.sys.fn;
    case EntryPoint::kUndefined:
      return image.b.undef.fn;
    case EntryPoint::kPageFault:
      return image.b.fault.fn;
    case EntryPoint::kInterrupt:
      return image.b.irq.fn;
  }
  return kNoFunc;
}

WcetAnalyzer::WcetAnalyzer(const KernelImage& image, const AnalysisOptions& options)
    : image_(&image), opts_(options) {
  cost_opts_ = BuildCostModelOptions(image, options);
  memoize_ = !wcet::ReferenceMode();
}

FuncId WcetAnalyzer::EntryFunc(EntryPoint e) const { return AnalysisEntryFunc(*image_, e); }

const CostModelCache& WcetAnalyzer::BlockCache() const {
  std::call_once(block_cache_once_, [&] {
    block_cache_ = std::make_unique<CostModelCache>(image_->prog, cost_opts_);
  });
  return *block_cache_;
}

EntryResult WcetAnalyzer::AnalyzeUncached(EntryPoint entry) const {
  EntryResult res;
  res.entry = entry;

  std::unique_ptr<InlinedGraph> graph;
  {
    const auto scope = GraphTimer().Measure();
    graph = std::make_unique<InlinedGraph>(image_->prog, EntryFunc(entry));
  }
  res.nodes = graph->nodes().size();
  res.edges = graph->edges().size();

  std::vector<LoopBoundResult> bounds;
  {
    const auto scope = LoopBoundTimer().Measure();
    bounds = ComputeLoopBounds(*graph);
  }
  for (const LoopBoundResult& b : bounds) {
    if (b.source == LoopBoundResult::Source::kComputed) {
      res.loops_bounded_auto++;
    } else if (b.source != LoopBoundResult::Source::kUnknown) {
      res.loops_bounded_annot++;
    }
  }

  CostResult costs;
  {
    const auto scope = CostTimer().Measure();
    costs = memoize_ ? ComputeNodeCosts(*graph, BlockCache())
                     : ComputeNodeCosts(*graph, cost_opts_);
  }

  IpetOptions iopts;
  iopts.irq_pending = opts_.irq_pending;
  const auto ipet_scope = IpetTimer().Measure();
  const IpetResult ipet = RunIpet(*graph, costs, iopts, opts_.constraints);
  res.status = ipet.status;
  if (ipet.status == SolveStatus::kOptimal) {
    res.wcet = ipet.wcet;
    res.micros = ClockSpec{}.ToMicros(ipet.wcet);
    res.worst_trace = ExtractWorstTrace(*graph, ipet);
  }
  return res;
}

EntryResult WcetAnalyzer::Analyze(EntryPoint entry) const {
  if (!memoize_) {
    MemoMissCounter().Inc();
    return AnalyzeUncached(entry);
  }
  EntryState& st = entries_[static_cast<std::size_t>(entry)];
  if (st.ready.load(std::memory_order_acquire)) {
    MemoHitCounter().Inc();
  } else {
    MemoMissCounter().Inc();
  }
  std::call_once(st.once, [&] {
    st.result = std::make_unique<EntryResult>(AnalyzeUncached(entry));
    st.ready.store(true, std::memory_order_release);
  });
  return *st.result;
}

Cycles WcetAnalyzer::EvaluateTrace(const Trace& trace) const {
  if (!memoize_) {
    return EvaluateTraceCost(image_->prog, trace, cost_opts_);
  }
  return EvaluateTraceCost(BlockCache(), trace);
}

std::vector<Cycles> WcetAnalyzer::PerBlockBounds() const {
  std::vector<Cycles> bounds(image_->prog.num_blocks(), 0);
  if (memoize_) {
    const CostModelCache& cache = BlockCache();
    for (BlockId id = 0; id < bounds.size(); ++id) {
      bounds[id] = cache.worst_case(id);
    }
    return bounds;
  }
  for (BlockId id = 0; id < bounds.size(); ++id) {
    bounds[id] = BlockWorstCaseCost(image_->prog, id, cost_opts_);
  }
  return bounds;
}

Cycles WcetAnalyzer::InterruptResponseBound() const {
  Cycles longest = 0;
  for (EntryPoint e : {EntryPoint::kSyscall, EntryPoint::kUndefined, EntryPoint::kPageFault}) {
    const EntryResult r = Analyze(e);
    longest = std::max(longest, r.wcet);
  }
  const EntryResult irq = Analyze(EntryPoint::kInterrupt);
  return longest + irq.wcet;
}

}  // namespace pmk
