// End-to-end WCET analysis driver (paper Section 5).
//
// Ties the pipeline together: virtual inlining, automatic loop bounds,
// conservative cache/pipeline cost model, IPET/ILP — and produces per-entry
// WCET bounds, concrete worst-case traces, and forced-path evaluations for
// the computed-vs-observed comparison.

#ifndef SRC_WCET_ANALYSIS_H_
#define SRC_WCET_ANALYSIS_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/kernel/image.h"
#include "src/wcet/cost.h"
#include "src/wcet/ipet.h"
#include "src/wcet/loopbound.h"

namespace pmk {

struct AnalysisOptions {
  bool l2_enabled = false;
  bool irq_pending = true;         // interrupt-latency mode
  bool cache_pinning = false;      // Section 4: L1 way-locking
  bool l2_kernel_pinning = false;  // Sections 6.4/8: whole kernel in the L2
  std::uint32_t pin_ways = 1;      // 1/4 of each 4-way L1
  std::vector<ManualConstraint> constraints;
};

// The four analyzed kernel entry points.
enum class EntryPoint : std::uint8_t { kSyscall, kUndefined, kPageFault, kInterrupt };
const char* EntryPointName(EntryPoint e);

// Derives the cost-model configuration (L2, pinning, locked line sets) that
// |options| implies for |image|. Shared by WcetAnalyzer and
// IncrementalWcetAnalyzer so both derive identical cost models.
CostModelOptions BuildCostModelOptions(const KernelImage& image, const AnalysisOptions& options);

// The entry function of |e| in |image| (kernel exception vector).
FuncId AnalysisEntryFunc(const KernelImage& image, EntryPoint e);

struct EntryResult {
  EntryPoint entry = EntryPoint::kSyscall;
  SolveStatus status = SolveStatus::kInfeasible;
  Cycles wcet = 0;
  double micros = 0;  // at the modelled 532 MHz clock
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t loops_bounded_auto = 0;   // Section 5.3
  std::size_t loops_bounded_annot = 0;
  Trace worst_trace;
};

// Analysis driver for one (kernel image, options) pair.
//
// The expensive intermediate state — the block-level cost-model cache and,
// per entry point, the inlined graph / loop bounds / abstract-cache fixpoint
// / IPET solution — is derived once on first use and memoized, shared by
// Analyze, EvaluateTrace, InterruptResponseBound and PerBlockBounds.
// Memoization is thread-safe (std::call_once per cache), so one analyzer may
// be driven concurrently from engine::RunJobs workers. Analyzers constructed
// while pmk::wcet::ReferenceMode() is on skip all memoization and re-derive
// everything per call, reproducing the seed cost profile for benchmarking.
class WcetAnalyzer {
 public:
  WcetAnalyzer(const KernelImage& image, const AnalysisOptions& options);

  EntryResult Analyze(EntryPoint entry) const;

  // Computed cost of a specific concrete path under the conservative model
  // (forcing the analysis onto a measured path, Sections 5.4/6.2).
  Cycles EvaluateTrace(const Trace& trace) const;

  // Worst-case interrupt response time: WCET(longest entry) + WCET(interrupt
  // path) (paper Section 6).
  Cycles InterruptResponseBound() const;

  // Unconditional per-block cost ceilings (all non-pinned accesses miss),
  // indexed by BlockId. Valid for any cache state; the block profiler checks
  // observed per-execution costs against these.
  std::vector<Cycles> PerBlockBounds() const;

  const CostModelOptions& cost_options() const { return cost_opts_; }

 private:
  struct EntryState {
    std::once_flag once;
    std::unique_ptr<EntryResult> result;
    // Set (release) after |result| is populated; lets the memo-hit telemetry
    // probe the cache state without racing the call_once writer.
    std::atomic<bool> ready{false};
  };

  FuncId EntryFunc(EntryPoint e) const;
  EntryResult AnalyzeUncached(EntryPoint entry) const;
  const CostModelCache& BlockCache() const;

  const KernelImage* image_;
  AnalysisOptions opts_;
  CostModelOptions cost_opts_;
  bool memoize_ = true;  // false when constructed in reference mode

  mutable std::array<EntryState, 4> entries_;
  mutable std::once_flag block_cache_once_;
  mutable std::unique_ptr<CostModelCache> block_cache_;
};

}  // namespace pmk

#endif  // SRC_WCET_ANALYSIS_H_
