#include "src/wcet/cfg.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pmk {

InlinedGraph::InlinedGraph(const Program& program, FuncId entry)
    : program_(&program), entry_(entry) {
  const CloneResult root = Clone(entry);
  entry_node_ = root.entry;
  source_edge_ = NewEdge(kNoNode, entry_node_, InlinedEdge::Kind::kSource);
  // Path ends: flagged blocks, plus the entry function's return nodes (the
  // kernel-exit blocks are flagged anyway; this keeps the sink total).
  for (const InlinedNode& n : nodes_) {
    if (program.block(n.block).is_path_end) {
      sink_edges_.push_back(NewEdge(n.id, kNoNode, InlinedEdge::Kind::kSink));
    }
  }
  if (sink_edges_.empty()) {
    throw std::logic_error("InlinedGraph: entry function has no path-end blocks");
  }
  FindLoops();
  ComputeTopoOrder();
}

NodeId InlinedGraph::NewNode(BlockId block, std::uint32_t instance) {
  InlinedNode n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.block = block;
  n.instance = instance;
  nodes_.push_back(std::move(n));
  instances_[instance].push_back(nodes_.back().id);
  return nodes_.back().id;
}

EdgeId InlinedGraph::NewEdge(NodeId from, NodeId to, InlinedEdge::Kind kind) {
  InlinedEdge e;
  e.id = static_cast<EdgeId>(edges_.size());
  e.from = from;
  e.to = to;
  e.kind = kind;
  edges_.push_back(e);
  if (from != kNoNode) {
    nodes_[from].out.push_back(e.id);
  }
  if (to != kNoNode) {
    nodes_[to].in.push_back(e.id);
  }
  return e.id;
}

InlinedGraph::CloneResult InlinedGraph::Clone(FuncId func) {
  const std::uint32_t instance = static_cast<std::uint32_t>(instances_.size());
  instances_.emplace_back();
  const Function& f = program_->function(func);

  // First create all nodes of this instance.
  std::vector<NodeId> local(program_->num_blocks(), kNoNode);
  for (BlockId b : f.blocks) {
    local[b] = NewNode(b, instance);
  }
  CloneResult res;
  res.entry = local[f.entry];

  // Then wire edges, recursing into callees.
  for (BlockId bid : f.blocks) {
    const Block& b = program_->block(bid);
    if (b.is_return) {
      res.returns.push_back(local[bid]);
      continue;
    }
    if (b.callee != kNoFunc) {
      const CloneResult callee = Clone(b.callee);
      NewEdge(local[bid], callee.entry, InlinedEdge::Kind::kCall);
      for (NodeId r : callee.returns) {
        NewEdge(r, local[b.succs[0]], InlinedEdge::Kind::kReturn);
      }
      continue;
    }
    for (std::size_t i = 0; i < b.succs.size(); ++i) {
      NewEdge(local[bid], local[b.succs[i]],
              i == 0 ? InlinedEdge::Kind::kFallThrough : InlinedEdge::Kind::kTaken);
    }
  }
  return res;
}

void InlinedGraph::FindLoops() {
  // Iterative DFS to find back edges (structured graphs: target on stack).
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(nodes_.size(), kWhite);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  std::vector<std::pair<NodeId, NodeId>> backedges;  // (from, head)

  stack.emplace_back(entry_node_, 0);
  color[entry_node_] = kGrey;
  while (!stack.empty()) {
    auto& [n, i] = stack.back();
    if (i >= nodes_[n].out.size()) {
      color[n] = kBlack;
      stack.pop_back();
      continue;
    }
    const InlinedEdge& e = edges_[nodes_[n].out[i++]];
    if (e.to == kNoNode) {
      continue;  // sink edge
    }
    if (color[e.to] == kWhite) {
      color[e.to] = kGrey;
      stack.emplace_back(e.to, 0);
    } else if (color[e.to] == kGrey) {
      backedges.emplace_back(n, e.to);
    }
  }

  // Natural loop per head: body = head + nodes that reach any back-edge
  // source without passing the head (reverse reachability).
  std::vector<NodeId> heads;
  for (const auto& [from, head] : backedges) {
    if (std::find(heads.begin(), heads.end(), head) == heads.end()) {
      heads.push_back(head);
    }
  }
  for (NodeId head : heads) {
    InlinedLoop loop;
    loop.head = head;
    std::vector<bool> in_body(nodes_.size(), false);
    in_body[head] = true;
    std::vector<NodeId> work;
    for (const auto& [from, h] : backedges) {
      if (h == head && !in_body[from]) {
        in_body[from] = true;
        work.push_back(from);
      }
    }
    while (!work.empty()) {
      const NodeId n = work.back();
      work.pop_back();
      for (EdgeId eid : nodes_[n].in) {
        const InlinedEdge& e = edges_[eid];
        if (e.from != kNoNode && !in_body[e.from]) {
          in_body[e.from] = true;
          work.push_back(e.from);
        }
      }
    }
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (in_body[n]) {
        loop.body.push_back(n);
      }
    }
    for (EdgeId eid : nodes_[head].in) {
      const InlinedEdge& e = edges_[eid];
      if (e.from == kNoNode) {
        continue;
      }
      if (in_body[e.from]) {
        loop.backedges.push_back(eid);
      } else {
        loop.entries.push_back(eid);
      }
    }
    if (loop.entries.empty()) {
      throw std::logic_error("InlinedGraph: loop head with no entry edges");
    }
    loops_.push_back(std::move(loop));
  }
}

void InlinedGraph::ComputeTopoOrder() {
  // Back edges to ignore.
  std::vector<bool> is_back(edges_.size(), false);
  for (const InlinedLoop& l : loops_) {
    for (EdgeId e : l.backedges) {
      is_back[e] = true;
    }
  }
  // Kahn's algorithm on the remaining DAG.
  std::vector<std::uint32_t> indeg(nodes_.size(), 0);
  for (const InlinedEdge& e : edges_) {
    if (e.from != kNoNode && e.to != kNoNode && !is_back[e.id]) {
      indeg[e.to]++;
    }
  }
  std::vector<NodeId> order;
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (indeg[n] == 0) {
      ready.push_back(n);
    }
  }
  while (!ready.empty()) {
    const NodeId n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (EdgeId eid : nodes_[n].out) {
      const InlinedEdge& e = edges_[eid];
      if (e.to == kNoNode || is_back[eid]) {
        continue;
      }
      if (--indeg[e.to] == 0) {
        ready.push_back(e.to);
      }
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error("InlinedGraph: quasi-topological order incomplete (irreducible?)");
  }
  topo_order_ = std::move(order);
}

}  // namespace pmk
