// Virtually-inlined control-flow graph for WCET analysis (paper Section 5.2).
//
// The analysis inlines every function at every call site so that cache and
// path analysis are context-sensitive: "the processor's cache will often be
// in wildly different states depending on the execution history". The result
// is a DAG of function instances whose only cycles are intra-function loops.

#ifndef SRC_WCET_CFG_H_
#define SRC_WCET_CFG_H_

#include <cstdint>
#include <vector>

#include "src/kir/program.h"

namespace pmk {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct InlinedNode {
  NodeId id = kNoNode;
  BlockId block = kNoBlock;    // underlying kir block
  std::uint32_t instance = 0;  // function-instance index (context)
  std::vector<EdgeId> in;
  std::vector<EdgeId> out;
};

struct InlinedEdge {
  EdgeId id = 0;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  enum class Kind : std::uint8_t {
    kFallThrough,  // succs[0]
    kTaken,        // succs[1]
    kCall,
    kReturn,
    kSource,  // virtual entry edge
    kSink,    // path-end -> virtual sink
  } kind = Kind::kFallThrough;
};

// A natural loop within one function instance.
struct InlinedLoop {
  NodeId head = kNoNode;
  std::vector<NodeId> body;       // includes head
  std::vector<EdgeId> entries;    // edges into head from outside the body
  std::vector<EdgeId> backedges;  // edges into head from inside the body
  std::uint32_t bound = 0;        // max head executions per entry (0=unknown)
};

class InlinedGraph {
 public:
  // Builds the inlined graph for kernel entry point |entry|.
  InlinedGraph(const Program& program, FuncId entry);

  const Program& program() const { return *program_; }
  FuncId entry() const { return entry_; }

  const std::vector<InlinedNode>& nodes() const { return nodes_; }
  const std::vector<InlinedEdge>& edges() const { return edges_; }
  const std::vector<InlinedLoop>& loops() const { return loops_; }
  std::vector<InlinedLoop>& mutable_loops() { return loops_; }

  NodeId entry_node() const { return entry_node_; }
  EdgeId source_edge() const { return source_edge_; }
  const std::vector<EdgeId>& sink_edges() const { return sink_edges_; }

  const Block& BlockOf(NodeId n) const { return program_->block(nodes_[n].block); }

  // Nodes of one function instance in that function's block order.
  const std::vector<NodeId>& InstanceNodes(std::uint32_t instance) const {
    return instances_[instance];
  }
  std::size_t NumInstances() const { return instances_.size(); }

  // Topological order of nodes ignoring loop back edges (for dataflow).
  // Computed once at construction (the edge set never changes afterwards)
  // and shared by every dataflow pass over this graph.
  const std::vector<NodeId>& QuasiTopoOrder() const { return topo_order_; }

 private:
  // Recursively clones |func|; returns (entry node, return nodes).
  struct CloneResult {
    NodeId entry = kNoNode;
    std::vector<NodeId> returns;
  };
  CloneResult Clone(FuncId func);
  NodeId NewNode(BlockId block, std::uint32_t instance);
  EdgeId NewEdge(NodeId from, NodeId to, InlinedEdge::Kind kind);
  void FindLoops();
  void ComputeTopoOrder();

  const Program* program_;
  FuncId entry_;
  std::vector<InlinedNode> nodes_;
  std::vector<InlinedEdge> edges_;
  std::vector<InlinedLoop> loops_;
  std::vector<std::vector<NodeId>> instances_;
  NodeId entry_node_ = kNoNode;
  EdgeId source_edge_ = 0;
  std::vector<EdgeId> sink_edges_;
  std::vector<NodeId> topo_order_;
};

}  // namespace pmk

#endif  // SRC_WCET_CFG_H_
